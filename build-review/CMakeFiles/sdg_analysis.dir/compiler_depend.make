# Empty compiler generated dependencies file for sdg_analysis.
# This may be replaced when dependencies are built.
