file(REMOVE_RECURSE
  "CMakeFiles/sdg_analysis.dir/examples/sdg_analysis.cpp.o"
  "CMakeFiles/sdg_analysis.dir/examples/sdg_analysis.cpp.o.d"
  "sdg_analysis"
  "sdg_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdg_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
