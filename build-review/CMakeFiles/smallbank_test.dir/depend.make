# Empty dependencies file for smallbank_test.
# This may be replaced when dependencies are built.
