file(REMOVE_RECURSE
  "CMakeFiles/smallbank_test.dir/tests/smallbank_test.cc.o"
  "CMakeFiles/smallbank_test.dir/tests/smallbank_test.cc.o.d"
  "smallbank_test"
  "smallbank_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smallbank_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
