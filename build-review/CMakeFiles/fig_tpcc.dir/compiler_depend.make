# Empty compiler generated dependencies file for fig_tpcc.
# This may be replaced when dependencies are built.
