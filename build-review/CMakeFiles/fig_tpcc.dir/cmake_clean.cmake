file(REMOVE_RECURSE
  "CMakeFiles/fig_tpcc.dir/bench/fig_tpcc.cc.o"
  "CMakeFiles/fig_tpcc.dir/bench/fig_tpcc.cc.o.d"
  "fig_tpcc"
  "fig_tpcc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_tpcc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
