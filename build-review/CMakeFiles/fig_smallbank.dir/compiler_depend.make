# Empty compiler generated dependencies file for fig_smallbank.
# This may be replaced when dependencies are built.
