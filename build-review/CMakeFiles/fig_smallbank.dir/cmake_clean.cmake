file(REMOVE_RECURSE
  "CMakeFiles/fig_smallbank.dir/bench/fig_smallbank.cc.o"
  "CMakeFiles/fig_smallbank.dir/bench/fig_smallbank.cc.o.d"
  "fig_smallbank"
  "fig_smallbank.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_smallbank.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
