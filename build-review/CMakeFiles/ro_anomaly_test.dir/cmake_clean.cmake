file(REMOVE_RECURSE
  "CMakeFiles/ro_anomaly_test.dir/tests/ro_anomaly_test.cc.o"
  "CMakeFiles/ro_anomaly_test.dir/tests/ro_anomaly_test.cc.o.d"
  "ro_anomaly_test"
  "ro_anomaly_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ro_anomaly_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
