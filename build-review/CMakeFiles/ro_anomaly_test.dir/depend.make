# Empty dependencies file for ro_anomaly_test.
# This may be replaced when dependencies are built.
