file(REMOVE_RECURSE
  "CMakeFiles/siread_index_test.dir/tests/siread_index_test.cc.o"
  "CMakeFiles/siread_index_test.dir/tests/siread_index_test.cc.o.d"
  "siread_index_test"
  "siread_index_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/siread_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
