# Empty dependencies file for siread_index_test.
# This may be replaced when dependencies are built.
