file(REMOVE_RECURSE
  "CMakeFiles/select_for_update_test.dir/tests/select_for_update_test.cc.o"
  "CMakeFiles/select_for_update_test.dir/tests/select_for_update_test.cc.o.d"
  "select_for_update_test"
  "select_for_update_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/select_for_update_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
