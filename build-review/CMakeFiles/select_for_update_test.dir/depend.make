# Empty dependencies file for select_for_update_test.
# This may be replaced when dependencies are built.
