# Empty compiler generated dependencies file for fig_sibench.
# This may be replaced when dependencies are built.
