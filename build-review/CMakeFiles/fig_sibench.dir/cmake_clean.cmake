file(REMOVE_RECURSE
  "CMakeFiles/fig_sibench.dir/bench/fig_sibench.cc.o"
  "CMakeFiles/fig_sibench.dir/bench/fig_sibench.cc.o.d"
  "fig_sibench"
  "fig_sibench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_sibench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
