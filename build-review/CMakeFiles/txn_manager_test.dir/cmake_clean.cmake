file(REMOVE_RECURSE
  "CMakeFiles/txn_manager_test.dir/tests/txn_manager_test.cc.o"
  "CMakeFiles/txn_manager_test.dir/tests/txn_manager_test.cc.o.d"
  "txn_manager_test"
  "txn_manager_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/txn_manager_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
