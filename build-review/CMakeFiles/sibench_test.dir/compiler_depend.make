# Empty compiler generated dependencies file for sibench_test.
# This may be replaced when dependencies are built.
