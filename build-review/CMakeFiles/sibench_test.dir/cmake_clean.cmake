file(REMOVE_RECURSE
  "CMakeFiles/sibench_test.dir/tests/sibench_test.cc.o"
  "CMakeFiles/sibench_test.dir/tests/sibench_test.cc.o.d"
  "sibench_test"
  "sibench_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sibench_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
