# Empty dependencies file for interleaving_test.
# This may be replaced when dependencies are built.
