file(REMOVE_RECURSE
  "CMakeFiles/interleaving_test.dir/tests/interleaving_test.cc.o"
  "CMakeFiles/interleaving_test.dir/tests/interleaving_test.cc.o.d"
  "interleaving_test"
  "interleaving_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interleaving_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
