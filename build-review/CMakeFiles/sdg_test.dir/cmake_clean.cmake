file(REMOVE_RECURSE
  "CMakeFiles/sdg_test.dir/tests/sdg_test.cc.o"
  "CMakeFiles/sdg_test.dir/tests/sdg_test.cc.o.d"
  "sdg_test"
  "sdg_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
