# Empty compiler generated dependencies file for conflict_tracker_test.
# This may be replaced when dependencies are built.
