file(REMOVE_RECURSE
  "CMakeFiles/conflict_tracker_test.dir/tests/conflict_tracker_test.cc.o"
  "CMakeFiles/conflict_tracker_test.dir/tests/conflict_tracker_test.cc.o.d"
  "conflict_tracker_test"
  "conflict_tracker_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/conflict_tracker_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
