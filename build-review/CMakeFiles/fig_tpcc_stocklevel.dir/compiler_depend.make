# Empty compiler generated dependencies file for fig_tpcc_stocklevel.
# This may be replaced when dependencies are built.
