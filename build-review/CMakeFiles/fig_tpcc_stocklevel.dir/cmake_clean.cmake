file(REMOVE_RECURSE
  "CMakeFiles/fig_tpcc_stocklevel.dir/bench/fig_tpcc_stocklevel.cc.o"
  "CMakeFiles/fig_tpcc_stocklevel.dir/bench/fig_tpcc_stocklevel.cc.o.d"
  "fig_tpcc_stocklevel"
  "fig_tpcc_stocklevel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_tpcc_stocklevel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
