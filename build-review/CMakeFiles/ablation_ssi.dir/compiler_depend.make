# Empty compiler generated dependencies file for ablation_ssi.
# This may be replaced when dependencies are built.
