file(REMOVE_RECURSE
  "CMakeFiles/ablation_ssi.dir/bench/ablation_ssi.cc.o"
  "CMakeFiles/ablation_ssi.dir/bench/ablation_ssi.cc.o.d"
  "ablation_ssi"
  "ablation_ssi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_ssi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
