# Empty dependencies file for fix_comparison.
# This may be replaced when dependencies are built.
