file(REMOVE_RECURSE
  "CMakeFiles/fix_comparison.dir/bench/fix_comparison.cc.o"
  "CMakeFiles/fix_comparison.dir/bench/fix_comparison.cc.o.d"
  "fix_comparison"
  "fix_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fix_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
