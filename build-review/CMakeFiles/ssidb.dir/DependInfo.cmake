
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/benchlib/driver.cc" "CMakeFiles/ssidb.dir/src/benchlib/driver.cc.o" "gcc" "CMakeFiles/ssidb.dir/src/benchlib/driver.cc.o.d"
  "/root/repo/src/benchlib/stats.cc" "CMakeFiles/ssidb.dir/src/benchlib/stats.cc.o" "gcc" "CMakeFiles/ssidb.dir/src/benchlib/stats.cc.o.d"
  "/root/repo/src/common/encoding.cc" "CMakeFiles/ssidb.dir/src/common/encoding.cc.o" "gcc" "CMakeFiles/ssidb.dir/src/common/encoding.cc.o.d"
  "/root/repo/src/common/random.cc" "CMakeFiles/ssidb.dir/src/common/random.cc.o" "gcc" "CMakeFiles/ssidb.dir/src/common/random.cc.o.d"
  "/root/repo/src/common/status.cc" "CMakeFiles/ssidb.dir/src/common/status.cc.o" "gcc" "CMakeFiles/ssidb.dir/src/common/status.cc.o.d"
  "/root/repo/src/db/db.cc" "CMakeFiles/ssidb.dir/src/db/db.cc.o" "gcc" "CMakeFiles/ssidb.dir/src/db/db.cc.o.d"
  "/root/repo/src/lock/lock_manager.cc" "CMakeFiles/ssidb.dir/src/lock/lock_manager.cc.o" "gcc" "CMakeFiles/ssidb.dir/src/lock/lock_manager.cc.o.d"
  "/root/repo/src/lock/siread_index.cc" "CMakeFiles/ssidb.dir/src/lock/siread_index.cc.o" "gcc" "CMakeFiles/ssidb.dir/src/lock/siread_index.cc.o.d"
  "/root/repo/src/sgt/history.cc" "CMakeFiles/ssidb.dir/src/sgt/history.cc.o" "gcc" "CMakeFiles/ssidb.dir/src/sgt/history.cc.o.d"
  "/root/repo/src/sgt/mvsg.cc" "CMakeFiles/ssidb.dir/src/sgt/mvsg.cc.o" "gcc" "CMakeFiles/ssidb.dir/src/sgt/mvsg.cc.o.d"
  "/root/repo/src/sgt/sdg.cc" "CMakeFiles/ssidb.dir/src/sgt/sdg.cc.o" "gcc" "CMakeFiles/ssidb.dir/src/sgt/sdg.cc.o.d"
  "/root/repo/src/sgt/sdg_catalog.cc" "CMakeFiles/ssidb.dir/src/sgt/sdg_catalog.cc.o" "gcc" "CMakeFiles/ssidb.dir/src/sgt/sdg_catalog.cc.o.d"
  "/root/repo/src/ssi/conflict_tracker.cc" "CMakeFiles/ssidb.dir/src/ssi/conflict_tracker.cc.o" "gcc" "CMakeFiles/ssidb.dir/src/ssi/conflict_tracker.cc.o.d"
  "/root/repo/src/storage/catalog.cc" "CMakeFiles/ssidb.dir/src/storage/catalog.cc.o" "gcc" "CMakeFiles/ssidb.dir/src/storage/catalog.cc.o.d"
  "/root/repo/src/storage/table.cc" "CMakeFiles/ssidb.dir/src/storage/table.cc.o" "gcc" "CMakeFiles/ssidb.dir/src/storage/table.cc.o.d"
  "/root/repo/src/storage/version.cc" "CMakeFiles/ssidb.dir/src/storage/version.cc.o" "gcc" "CMakeFiles/ssidb.dir/src/storage/version.cc.o.d"
  "/root/repo/src/txn/executor.cc" "CMakeFiles/ssidb.dir/src/txn/executor.cc.o" "gcc" "CMakeFiles/ssidb.dir/src/txn/executor.cc.o.d"
  "/root/repo/src/txn/log_manager.cc" "CMakeFiles/ssidb.dir/src/txn/log_manager.cc.o" "gcc" "CMakeFiles/ssidb.dir/src/txn/log_manager.cc.o.d"
  "/root/repo/src/txn/transaction.cc" "CMakeFiles/ssidb.dir/src/txn/transaction.cc.o" "gcc" "CMakeFiles/ssidb.dir/src/txn/transaction.cc.o.d"
  "/root/repo/src/txn/txn_manager.cc" "CMakeFiles/ssidb.dir/src/txn/txn_manager.cc.o" "gcc" "CMakeFiles/ssidb.dir/src/txn/txn_manager.cc.o.d"
  "/root/repo/src/workloads/sibench.cc" "CMakeFiles/ssidb.dir/src/workloads/sibench.cc.o" "gcc" "CMakeFiles/ssidb.dir/src/workloads/sibench.cc.o.d"
  "/root/repo/src/workloads/smallbank.cc" "CMakeFiles/ssidb.dir/src/workloads/smallbank.cc.o" "gcc" "CMakeFiles/ssidb.dir/src/workloads/smallbank.cc.o.d"
  "/root/repo/src/workloads/tpcc_loader.cc" "CMakeFiles/ssidb.dir/src/workloads/tpcc_loader.cc.o" "gcc" "CMakeFiles/ssidb.dir/src/workloads/tpcc_loader.cc.o.d"
  "/root/repo/src/workloads/tpcc_schema.cc" "CMakeFiles/ssidb.dir/src/workloads/tpcc_schema.cc.o" "gcc" "CMakeFiles/ssidb.dir/src/workloads/tpcc_schema.cc.o.d"
  "/root/repo/src/workloads/tpcc_txns.cc" "CMakeFiles/ssidb.dir/src/workloads/tpcc_txns.cc.o" "gcc" "CMakeFiles/ssidb.dir/src/workloads/tpcc_txns.cc.o.d"
  "/root/repo/src/workloads/tpcc_workload.cc" "CMakeFiles/ssidb.dir/src/workloads/tpcc_workload.cc.o" "gcc" "CMakeFiles/ssidb.dir/src/workloads/tpcc_workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
