# Empty compiler generated dependencies file for ssidb.
# This may be replaced when dependencies are built.
