file(REMOVE_RECURSE
  "libssidb.a"
)
