# Empty dependencies file for sgt_test.
# This may be replaced when dependencies are built.
