file(REMOVE_RECURSE
  "CMakeFiles/sgt_test.dir/tests/sgt_test.cc.o"
  "CMakeFiles/sgt_test.dir/tests/sgt_test.cc.o.d"
  "sgt_test"
  "sgt_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sgt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
