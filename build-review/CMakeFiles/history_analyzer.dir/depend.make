# Empty dependencies file for history_analyzer.
# This may be replaced when dependencies are built.
