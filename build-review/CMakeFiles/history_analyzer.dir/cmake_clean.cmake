file(REMOVE_RECURSE
  "CMakeFiles/history_analyzer.dir/examples/history_analyzer.cpp.o"
  "CMakeFiles/history_analyzer.dir/examples/history_analyzer.cpp.o.d"
  "history_analyzer"
  "history_analyzer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/history_analyzer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
