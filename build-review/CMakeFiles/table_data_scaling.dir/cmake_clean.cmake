file(REMOVE_RECURSE
  "CMakeFiles/table_data_scaling.dir/bench/table_data_scaling.cc.o"
  "CMakeFiles/table_data_scaling.dir/bench/table_data_scaling.cc.o.d"
  "table_data_scaling"
  "table_data_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_data_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
