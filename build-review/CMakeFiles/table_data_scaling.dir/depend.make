# Empty dependencies file for table_data_scaling.
# This may be replaced when dependencies are built.
