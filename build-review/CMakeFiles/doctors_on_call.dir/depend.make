# Empty dependencies file for doctors_on_call.
# This may be replaced when dependencies are built.
