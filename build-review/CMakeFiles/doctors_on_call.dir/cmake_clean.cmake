file(REMOVE_RECURSE
  "CMakeFiles/doctors_on_call.dir/examples/doctors_on_call.cpp.o"
  "CMakeFiles/doctors_on_call.dir/examples/doctors_on_call.cpp.o.d"
  "doctors_on_call"
  "doctors_on_call.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/doctors_on_call.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
