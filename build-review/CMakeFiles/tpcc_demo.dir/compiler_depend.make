# Empty compiler generated dependencies file for tpcc_demo.
# This may be replaced when dependencies are built.
