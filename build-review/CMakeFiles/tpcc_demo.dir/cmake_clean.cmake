file(REMOVE_RECURSE
  "CMakeFiles/tpcc_demo.dir/examples/tpcc_demo.cpp.o"
  "CMakeFiles/tpcc_demo.dir/examples/tpcc_demo.cpp.o.d"
  "tpcc_demo"
  "tpcc_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpcc_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
