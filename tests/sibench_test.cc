// sibench workload tests (§5.2): query/update semantics, the SumValues
// oracle, and the paper's claim that the workload's single rw-edge admits
// neither deadlock nor write skew.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>

#include "src/sgt/mvsg.h"
#include "src/workloads/sibench.h"

namespace ssidb::workloads {
namespace {

using bench::SeriesConfig;

SeriesConfig Series(IsolationLevel iso) { return {"x", iso, std::nullopt}; }

TEST(SiBenchTest, SetupRejectsZeroItems) {
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open({}, &db).ok());
  std::unique_ptr<SiBench> wl;
  EXPECT_TRUE(
      SiBench::Setup(db.get(), SiBenchConfig{.items = 0}, &wl)
          .IsInvalidArgument());
}

TEST(SiBenchTest, InitialStateSumsToZero) {
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open({}, &db).ok());
  std::unique_ptr<SiBench> wl;
  ASSERT_TRUE(SiBench::Setup(db.get(), SiBenchConfig{.items = 25}, &wl).ok());
  int64_t sum = -1;
  ASSERT_TRUE(wl->SumValues(db.get(), &sum).ok());
  EXPECT_EQ(sum, 0);
}

TEST(SiBenchTest, QueryFindsMinimumValueRow) {
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open({}, &db).ok());
  std::unique_ptr<SiBench> wl;
  ASSERT_TRUE(SiBench::Setup(db.get(), SiBenchConfig{.items = 5}, &wl).ok());
  // Bump every row except id 3; the query must then report id 3.
  auto series = Series(IsolationLevel::kSerializableSSI);
  for (uint64_t id : {0u, 1u, 2u, 4u}) {
    ASSERT_TRUE(wl->IncrementValue(db.get(), series, id).ok());
  }
  uint64_t min_id = 99;
  ASSERT_TRUE(wl->MinValueQuery(db.get(), series, &min_id).ok());
  EXPECT_EQ(min_id, 3u);
}

TEST(SiBenchTest, SumEqualsCommittedUpdates) {
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open({}, &db).ok());
  std::unique_ptr<SiBench> wl;
  ASSERT_TRUE(SiBench::Setup(db.get(), SiBenchConfig{.items = 10}, &wl).ok());
  auto series = Series(IsolationLevel::kSerializableSSI);
  Random rng(3);
  int committed = 0;
  for (int i = 0; i < 40; ++i) {
    if (wl->IncrementValue(db.get(), series, rng.Uniform(10)).ok()) {
      ++committed;
    }
  }
  int64_t sum = 0;
  ASSERT_TRUE(wl->SumValues(db.get(), &sum).ok());
  EXPECT_EQ(sum, committed);
}

/// The §5.2 claim, validated concurrently per isolation level: no
/// deadlocks, no write-skew (updates conflict only write-write and resolve
/// via blocking), and the increment count is conserved.
class SiBenchConcurrencyTest
    : public ::testing::TestWithParam<IsolationLevel> {};

TEST_P(SiBenchConcurrencyTest, ConcurrentMixConservesIncrements) {
  DBOptions opts;
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(opts, &db).ok());
  std::unique_ptr<SiBench> wl;
  ASSERT_TRUE(SiBench::Setup(db.get(), SiBenchConfig{.items = 10}, &wl).ok());
  auto series = Series(GetParam());

  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 60;
  std::atomic<int> committed_updates{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Random rng(100 + t);
      for (int i = 0; i < kOpsPerThread; ++i) {
        if (rng.Bernoulli(0.5)) {
          wl->MinValueQuery(db.get(), series, nullptr);
        } else if (wl->IncrementValue(db.get(), series, rng.Uniform(10))
                       .ok()) {
          committed_updates.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  int64_t sum = 0;
  ASSERT_TRUE(wl->SumValues(db.get(), &sum).ok());
  EXPECT_EQ(sum, committed_updates.load());
  // §5.2: "no transactions deadlocked or experienced write skew".
  // Updates serialize on the row lock thanks to late snapshots (§4.5);
  // queries never write. SSI may still flag rare unsafe patterns between
  // a query and two updates, so we assert only on deadlocks here.
  EXPECT_EQ(db->GetStats().deadlocks, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllIsolationLevels, SiBenchConcurrencyTest,
    ::testing::Values(IsolationLevel::kSnapshot,
                      IsolationLevel::kSerializableSSI,
                      IsolationLevel::kSerializable2PL),
    [](const ::testing::TestParamInfo<IsolationLevel>& info) {
      switch (info.param) {
        case IsolationLevel::kSnapshot: return "SI";
        case IsolationLevel::kSerializableSSI: return "SSI";
        case IsolationLevel::kSerializable2PL: return "S2PL";
      }
      return "unknown";
    });

TEST(SiBenchTest, MixRatioRoughlyHonoured) {
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open({}, &db).ok());
  std::unique_ptr<SiBench> wl;
  ASSERT_TRUE(SiBench::Setup(
                  db.get(),
                  SiBenchConfig{.items = 10, .queries_per_update = 10}, &wl)
                  .ok());
  // With 10 queries per update, after N ops the value sum (== update
  // count) should be near N/11.
  auto series = Series(IsolationLevel::kSnapshot);
  Random rng(17);
  const int n = 1100;
  for (int i = 0; i < n; ++i) {
    wl->RunOne(db.get(), series, 0, &rng);
  }
  int64_t sum = 0;
  ASSERT_TRUE(wl->SumValues(db.get(), &sum).ok());
  EXPECT_NEAR(static_cast<double>(sum), n / 11.0, n / 11.0 * 0.5);
}

}  // namespace
}  // namespace ssidb::workloads
