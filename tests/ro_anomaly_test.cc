// The read-only transaction anomaly under snapshot isolation (Fekete,
// O'Neil & O'Neil, "A read-only transaction anomaly under snapshot
// isolation"; the paper's §2.5.1 cites the dangerous-structure theorem it
// motivates). This is the scenario PostgreSQL's isolation suite tests as
// serializable-parallel.spec: a *read-only* third transaction turns an
// otherwise serializable pair into a non-serializable history, because its
// snapshot observes one of the writers but not the other.
//
// Schedule (batch deposit X->savings account Y, withdrawal from X):
//   T2 (withdrawal):  r(X)=0  r(Y)=0            w(X)=-11  commit
//   T1 (deposit):                r(Y)=0 w(Y)=20 commit
//   T3 (report):                     r(X)=0 r(Y)=20 commit
// Under SI all three commit; T3 printed {X=0, Y=20}, a state no serial
// order produces (if T1 before T2, the withdrawal would have seen the
// deposit and incurred no overdraft penalty; with T3 reporting Y=20 and
// X=0, T1 must precede T3 and T2 follow T3 — but T2 read Y=0, so T2
// precedes T1: a cycle). Under SSI the cycle manifests as T2 carrying
// in-conflict (from T3's read of X, which T2 overwrites) and out-conflict
// (to T1, whose new Y it ignored): T2 is a pivot and must abort (kUnsafe).
// Without T3's read, both permutations are serializable and SSI admits
// them — the paper's false-positive discussion (§3.4) notwithstanding,
// this particular pair commits because T2's out-partner structure never
// completes.

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "src/db/db.h"

namespace ssidb {
namespace {

class ROAnomalyTest : public ::testing::TestWithParam<ConflictTracking> {
 protected:
  void SetUp() override { OpenFreshEngine(); }

  /// Fresh engine with accounts X = Y = 0; callable again mid-test when a
  /// scenario needs a clean slate.
  void OpenFreshEngine() {
    DBOptions opts;
    opts.conflict_tracking = GetParam();
    std::unique_ptr<DB> db;
    ASSERT_TRUE(DB::Open(opts, &db).ok());
    db_ = std::move(db);
    ASSERT_TRUE(db_->CreateTable("bank_account", &table_).ok());
    auto seed = db_->Begin({IsolationLevel::kSnapshot});
    ASSERT_TRUE(seed->Insert(table_, "X", "0").ok());
    ASSERT_TRUE(seed->Insert(table_, "Y", "0").ok());
    ASSERT_TRUE(seed->Commit().ok());
  }

  std::unique_ptr<DB> db_;
  TableId table_ = 0;
};

/// Permutation 1 of the spec: without the read-only transaction's
/// snapshot, T1 and T2 are serializable (T2 before T1) and both commit —
/// under SI *and* SSI.
TEST_P(ROAnomalyTest, WithoutReaderBothWritersCommitUnderSSI) {
  bool first = true;
  for (IsolationLevel iso :
       {IsolationLevel::kSnapshot, IsolationLevel::kSerializableSSI}) {
    if (!first) OpenFreshEngine();  // Fresh engine per isolation level.
    first = false;
    auto t2 = db_->Begin({iso});
    auto t1 = db_->Begin({iso});
    std::string v;
    EXPECT_TRUE(t2->Get(table_, "X", &v).ok());
    EXPECT_TRUE(t2->Get(table_, "Y", &v).ok());
    EXPECT_TRUE(t1->Get(table_, "Y", &v).ok());
    EXPECT_TRUE(t1->Put(table_, "Y", "20").ok());
    EXPECT_TRUE(t1->Commit().ok());
    EXPECT_TRUE(t2->Put(table_, "X", "-11").ok());
    EXPECT_TRUE(t2->Commit().ok()) << "iso=" << static_cast<int>(iso);
  }
}

/// Permutation 2 under plain SI: the anomaly is *observed* — all three
/// transactions commit and the read-only report sees {X=0, Y=20}, which
/// no serial order of the committed transactions can produce.
TEST_P(ROAnomalyTest, AnomalyObservedUnderSI) {
  const TxnOptions si{IsolationLevel::kSnapshot};
  auto t2 = db_->Begin(si);
  auto t1 = db_->Begin(si);
  std::string v;
  ASSERT_TRUE(t2->Get(table_, "X", &v).ok());
  EXPECT_EQ(v, "0");
  ASSERT_TRUE(t2->Get(table_, "Y", &v).ok());
  EXPECT_EQ(v, "0");
  ASSERT_TRUE(t1->Get(table_, "Y", &v).ok());
  ASSERT_TRUE(t1->Put(table_, "Y", "20").ok());
  ASSERT_TRUE(t1->Commit().ok());

  auto t3 = db_->Begin(si);
  std::string x3, y3;
  ASSERT_TRUE(t3->Get(table_, "X", &x3).ok());
  ASSERT_TRUE(t3->Get(table_, "Y", &y3).ok());
  ASSERT_TRUE(t3->Commit().ok());
  EXPECT_EQ(x3, "0");   // T2's withdrawal invisible...
  EXPECT_EQ(y3, "20");  // ...but T1's deposit observed: the anomaly.

  ASSERT_TRUE(t2->Put(table_, "X", "-11").ok());
  EXPECT_TRUE(t2->Commit().ok());  // SI admits the non-serializable run.
}

/// Permutation 2 under SSI: once the read-only transaction observes T1's
/// deposit and T2 then overwrites what it read, T2 is a pivot with both
/// an in- and an out-conflict whose out-partner committed first — the
/// dangerous structure. T2 aborts kUnsafe; the other two commit.
TEST_P(ROAnomalyTest, AnomalyPreventedUnderSSI) {
  const TxnOptions ssi{IsolationLevel::kSerializableSSI};
  auto t2 = db_->Begin(ssi);
  auto t1 = db_->Begin(ssi);
  std::string v;
  ASSERT_TRUE(t2->Get(table_, "X", &v).ok());
  ASSERT_TRUE(t2->Get(table_, "Y", &v).ok());
  ASSERT_TRUE(t1->Get(table_, "Y", &v).ok());
  ASSERT_TRUE(t1->Put(table_, "Y", "20").ok());
  ASSERT_TRUE(t1->Commit().ok());  // T2 -rw-> T1 recorded (Y).

  auto t3 = db_->Begin(ssi);
  std::string x3, y3;
  ASSERT_TRUE(t3->Get(table_, "X", &x3).ok());
  ASSERT_TRUE(t3->Get(table_, "Y", &y3).ok());
  EXPECT_EQ(y3, "20");
  ASSERT_TRUE(t3->Commit().ok());  // Read-only: never a pivot itself.

  // T2's write to X finds T3's retained SIREAD lock: T3 -rw-> T2 closes
  // the structure with T2 as pivot. The abort may fire here (§3.7.1
  // abort-early) or at commit; either way T2 ends kUnsafe.
  Status st = t2->Put(table_, "X", "-11");
  if (st.ok()) {
    st = t2->Commit();
  }
  EXPECT_TRUE(st.IsUnsafe()) << st.ToString();
  EXPECT_GE(db_->GetStats().unsafe_aborts, 1u);

  // The committed state is the serializable one: only the deposit.
  auto check = db_->Begin({IsolationLevel::kSnapshot});
  ASSERT_TRUE(check->Get(table_, "X", &v).ok());
  EXPECT_EQ(v, "0");
  ASSERT_TRUE(check->Get(table_, "Y", &v).ok());
  EXPECT_EQ(v, "20");
  ASSERT_TRUE(check->Commit().ok());
}

/// The retry the paper prescribes: after T2's unsafe abort, re-running the
/// withdrawal succeeds and produces a state equivalent to the serial order
/// T1, T3, T2.
TEST_P(ROAnomalyTest, AbortedWriterSucceedsOnRetry) {
  const TxnOptions ssi{IsolationLevel::kSerializableSSI};
  auto t2 = db_->Begin(ssi);
  auto t1 = db_->Begin(ssi);
  std::string v;
  ASSERT_TRUE(t2->Get(table_, "X", &v).ok());
  ASSERT_TRUE(t2->Get(table_, "Y", &v).ok());
  ASSERT_TRUE(t1->Put(table_, "Y", "20").ok());
  ASSERT_TRUE(t1->Commit().ok());
  auto t3 = db_->Begin(ssi);
  ASSERT_TRUE(t3->Get(table_, "X", &v).ok());
  ASSERT_TRUE(t3->Get(table_, "Y", &v).ok());
  ASSERT_TRUE(t3->Commit().ok());
  Status st = t2->Put(table_, "X", "-11");
  if (st.ok()) st = t2->Commit();
  ASSERT_TRUE(st.IsUnsafe());

  auto retry = db_->Begin(ssi);
  ASSERT_TRUE(retry->Get(table_, "X", &v).ok());
  ASSERT_TRUE(retry->Get(table_, "Y", &v).ok());
  EXPECT_EQ(v, "20");  // The retry sees the deposit: no anomaly.
  ASSERT_TRUE(retry->Put(table_, "X", "-1").ok());
  EXPECT_TRUE(retry->Commit().ok());
}

INSTANTIATE_TEST_SUITE_P(TrackingModes, ROAnomalyTest,
                         ::testing::Values(ConflictTracking::kFlags,
                                           ConflictTracking::kReferences),
                         [](const auto& info) {
                           return info.param == ConflictTracking::kFlags
                                      ? "Flags"
                                      : "References";
                         });

}  // namespace
}  // namespace ssidb
