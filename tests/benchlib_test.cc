// Tests for the benchmark library: abort classification, row formatting,
// and the MPL worker-pool driver end-to-end on a trivial workload.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>

#include "src/benchlib/driver.h"
#include "src/benchlib/stats.h"
#include "src/common/encoding.h"

namespace ssidb::bench {
namespace {

TEST(RunResultTest, CountClassifiesByStatusCode) {
  RunResult r;
  r.Count(Status::OK());
  r.Count(Status::OK());
  r.Count(Status::Deadlock());
  r.Count(Status::UpdateConflict());
  r.Count(Status::Unsafe());
  r.Count(Status::TimedOut());
  r.Count(Status::NotFound());         // App-level.
  r.Count(Status::InvalidArgument());  // App-level.
  EXPECT_EQ(r.commits, 2u);
  EXPECT_EQ(r.deadlocks, 1u);
  EXPECT_EQ(r.update_conflicts, 1u);
  EXPECT_EQ(r.unsafe, 1u);
  EXPECT_EQ(r.timeouts, 1u);
  EXPECT_EQ(r.app_rollbacks, 2u);
  EXPECT_EQ(r.TotalAborts(), 4u);
}

TEST(RunResultTest, ThroughputAndErrorRates) {
  RunResult r;
  r.seconds = 2.0;
  r.commits = 100;
  r.unsafe = 5;
  EXPECT_DOUBLE_EQ(r.Throughput(), 50.0);
  EXPECT_DOUBLE_EQ(r.ErrorsPerCommit(), 0.05);
  RunResult empty;
  EXPECT_DOUBLE_EQ(empty.Throughput(), 0.0);
  EXPECT_DOUBLE_EQ(empty.ErrorsPerCommit(), 0.0);
}

TEST(RunResultTest, RowFormattingIsStable) {
  RunResult r;
  r.seconds = 1.0;
  r.commits = 10;
  r.unsafe = 1;
  const std::string row = ResultRow("figX", "SSI", 4, r);
  EXPECT_EQ(row, "figX,SSI,4,10.0,0.0000,0.0000,0.1000,10");
  EXPECT_NE(ResultHeader().find("commits_per_sec"), std::string::npos);
}

TEST(SeriesConfigTest, ReadOnlyIsolationOverride) {
  SeriesConfig mixed{"SSI+SIRO", IsolationLevel::kSerializableSSI,
                     IsolationLevel::kSnapshot};
  EXPECT_EQ(mixed.For(false), IsolationLevel::kSerializableSSI);
  EXPECT_EQ(mixed.For(true), IsolationLevel::kSnapshot);
  SeriesConfig plain{"SSI", IsolationLevel::kSerializableSSI, std::nullopt};
  EXPECT_EQ(plain.For(true), IsolationLevel::kSerializableSSI);
}

TEST(SeriesConfigTest, StandardSeriesCoversAllThreeModes) {
  auto series = StandardSeries();
  ASSERT_EQ(series.size(), 3u);
  EXPECT_EQ(series[0].name, "S2PL");
  EXPECT_EQ(series[1].name, "SI");
  EXPECT_EQ(series[2].name, "SSI");
}

/// A workload that counts its own invocations and sometimes "aborts".
class CountingWorkload : public Workload {
 public:
  Status RunOne(DB* db, const SeriesConfig& series, uint64_t worker,
                Random* rng) override {
    (void)series;
    (void)worker;
    auto txn = db->Begin({series.For(false)});
    Status st = txn->Put(table, EncodeU64Key(rng->Uniform(64)), "v");
    if (st.ok()) st = txn->Commit();
    if (!st.ok() && txn->active()) txn->Abort();
    calls.fetch_add(1, std::memory_order_relaxed);
    return st;
  }

  TableId table = 0;
  std::atomic<uint64_t> calls{0};
};

TEST(DriverTest, RunsWorkloadAcrossWorkersAndCounts) {
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open({}, &db).ok());
  CountingWorkload workload;
  ASSERT_TRUE(db->CreateTable("t", &workload.table).ok());
  DriverConfig config;
  config.mpl = 4;
  config.warmup_seconds = 0.01;
  config.measure_seconds = 0.05;
  SeriesConfig series{"SSI", IsolationLevel::kSerializableSSI, std::nullopt};
  RunResult r = RunWorkload(db.get(), &workload, series, config);
  EXPECT_GT(r.commits, 0u);
  EXPECT_GT(r.seconds, 0.0);
  EXPECT_GE(workload.calls.load(), r.commits);  // Warmup calls not counted.
  EXPECT_EQ(db->GetStats().active_txns, 0u);    // Workers cleaned up.
}

TEST(DriverTest, EnvParsingHelpers) {
  setenv("SSIDB_BENCH_SECONDS", "1.5", 1);
  EXPECT_DOUBLE_EQ(EnvSeconds(0.3), 1.5);
  unsetenv("SSIDB_BENCH_SECONDS");
  EXPECT_DOUBLE_EQ(EnvSeconds(0.3), 0.3);

  setenv("SSIDB_BENCH_MPLS", "1,4,16", 1);
  EXPECT_EQ(EnvMpls({2}), (std::vector<int>{1, 4, 16}));
  setenv("SSIDB_BENCH_MPLS", "garbage", 1);
  EXPECT_EQ(EnvMpls({2}), (std::vector<int>{2}));
  unsetenv("SSIDB_BENCH_MPLS");
  EXPECT_EQ(EnvMpls({2}), (std::vector<int>{2}));

  setenv("SSIDB_FLUSH_US", "250", 1);
  EXPECT_EQ(EnvFlushUs(1000), 250u);
  unsetenv("SSIDB_FLUSH_US");
  EXPECT_EQ(EnvFlushUs(1000), 1000u);
}

}  // namespace
}  // namespace ssidb::bench
