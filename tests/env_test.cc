// Env seam unit tests: the POSIX passthrough round trip and the
// FaultInjectingEnv schedule semantics — scripted skip/count windows, path
// filters, every FaultKind's observable behaviour (EIO, ENOSPC, short
// write, torn write, fsync failure), device-loss mode, the seeded random
// schedule's determinism, and the injected_faults counter the DB exports
// as io.injected_faults.

#include <gtest/gtest.h>

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <string>

#include "src/io/env.h"
#include "tests/test_util.h"

namespace ssidb {
namespace {

using io::Env;
using io::FaultInjectingEnv;
using FaultKind = FaultInjectingEnv::FaultKind;

int OpenRW(Env* env, const std::string& path) {
  return env->Open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
}

TEST(EnvTest, DefaultEnvRoundTrip) {
  ScratchDir dir;
  Env* env = Env::Default();
  ASSERT_TRUE(env->CreateDirs(dir.path + "/a/b").ok());

  const std::string path = dir.path + "/a/b/file";
  const int fd = OpenRW(env, path);
  ASSERT_GE(fd, 0);
  ASSERT_EQ(env->Write(fd, "hello", 5), 5);
  ASSERT_EQ(env->Pwrite(fd, "HE", 2, 0), 2);
  ASSERT_EQ(env->Fsync(fd), 0);
  char buf[8] = {};
  ASSERT_EQ(env->Pread(fd, buf, 5, 0), 5);
  EXPECT_EQ(std::string(buf, 5), "HEllo");
  ASSERT_EQ(env->Close(fd), 0);

  ASSERT_TRUE(env->ResizeFile(path, 2).ok());
  const std::string moved = dir.path + "/a/b/file2";
  ASSERT_TRUE(env->Rename(path, moved).ok());
  const int fd2 = env->Open(moved.c_str(), O_RDONLY, 0);
  ASSERT_GE(fd2, 0);
  ASSERT_EQ(env->Read(fd2, buf, sizeof(buf)), 2);
  EXPECT_EQ(std::string(buf, 2), "HE");
  ASSERT_EQ(env->Close(fd2), 0);
  ASSERT_TRUE(env->RemoveFile(moved).ok());
  EXPECT_EQ(env->injected_faults(), 0u);
}

TEST(EnvTest, ScriptedWriteFaultSkipsThenFails) {
  ScratchDir dir;
  FaultInjectingEnv env;
  const int fd = OpenRW(&env, dir.path + "/f");
  ASSERT_GE(fd, 0);
  // Let two write-class ops through, then fail exactly one.
  env.InjectFault(FaultKind::kWriteError, "", /*skip=*/2, /*count=*/1);
  EXPECT_EQ(env.Write(fd, "a", 1), 1);
  EXPECT_EQ(env.Write(fd, "b", 1), 1);
  errno = 0;
  EXPECT_EQ(env.Write(fd, "c", 1), -1);
  EXPECT_EQ(errno, EIO);
  EXPECT_EQ(env.Write(fd, "d", 1), 1);  // Window exhausted.
  EXPECT_EQ(env.injected_faults(), 1u);
  env.Close(fd);
}

TEST(EnvTest, PathSubstringFilterSelectsTargets) {
  ScratchDir dir;
  FaultInjectingEnv env;
  const int wal = OpenRW(&env, dir.path + "/wal-0001");
  const int run = OpenRW(&env, dir.path + "/run-0001");
  ASSERT_GE(wal, 0);
  ASSERT_GE(run, 0);
  env.InjectFault(FaultKind::kWriteError, "wal-");
  EXPECT_EQ(env.Write(run, "x", 1), 1);  // Not matched: passes.
  errno = 0;
  EXPECT_EQ(env.Write(wal, "x", 1), -1);
  EXPECT_EQ(errno, EIO);
  env.ClearFaults();
  EXPECT_EQ(env.Write(wal, "x", 1), 1);  // Disk fixed.
  env.Close(wal);
  env.Close(run);
}

TEST(EnvTest, ShortWriteReturnsShortCount) {
  ScratchDir dir;
  FaultInjectingEnv env;
  const int fd = OpenRW(&env, dir.path + "/f");
  ASSERT_GE(fd, 0);
  env.InjectFault(FaultKind::kShortWrite, "", 0, 1);
  const ssize_t n = env.Pwrite(fd, "abcdefgh", 8, 0);
  EXPECT_EQ(n, 4);  // Half landed, reported as a short success.
  char buf[8] = {};
  ASSERT_EQ(env.Pread(fd, buf, 8, 0), 4);
  EXPECT_EQ(std::string(buf, 4), "abcd");
  env.Close(fd);
}

TEST(EnvTest, TornWriteLandsHalfThenFails) {
  ScratchDir dir;
  FaultInjectingEnv env;
  const int fd = OpenRW(&env, dir.path + "/f");
  ASSERT_GE(fd, 0);
  env.InjectFault(FaultKind::kTornWrite, "", 0, 1);
  errno = 0;
  EXPECT_EQ(env.Pwrite(fd, "abcdefgh", 8, 0), -1);
  EXPECT_EQ(errno, EIO);
  // The tear is real: the first half is on disk.
  char buf[8] = {};
  ASSERT_EQ(env.Pread(fd, buf, 8, 0), 4);
  EXPECT_EQ(std::string(buf, 4), "abcd");
  env.Close(fd);
}

TEST(EnvTest, FsyncAndReadFaults) {
  ScratchDir dir;
  FaultInjectingEnv env;
  const int fd = OpenRW(&env, dir.path + "/f");
  ASSERT_GE(fd, 0);
  ASSERT_EQ(env.Write(fd, "x", 1), 1);
  env.InjectFault(FaultKind::kFsyncError, "", 0, 1);
  env.InjectFault(FaultKind::kReadError, "", 0, 1);
  errno = 0;
  EXPECT_EQ(env.Fsync(fd), -1);
  EXPECT_EQ(errno, EIO);
  char c;
  errno = 0;
  EXPECT_EQ(env.Pread(fd, &c, 1, 0), -1);
  EXPECT_EQ(errno, EIO);
  EXPECT_EQ(env.Fsync(fd), 0);  // Both windows exhausted.
  EXPECT_EQ(env.Pread(fd, &c, 1, 0), 1);
  EXPECT_EQ(env.injected_faults(), 2u);
  env.Close(fd);
}

TEST(EnvTest, NoSpaceFailsWritesAndCreates) {
  ScratchDir dir;
  FaultInjectingEnv env;
  const int fd = OpenRW(&env, dir.path + "/f");
  ASSERT_GE(fd, 0);
  env.InjectFault(FaultKind::kNoSpace, "");
  errno = 0;
  EXPECT_EQ(env.Write(fd, "x", 1), -1);
  EXPECT_EQ(errno, ENOSPC);
  // O_CREAT opens are write-class for ENOSPC purposes.
  errno = 0;
  EXPECT_LT(OpenRW(&env, dir.path + "/g"), 0);
  EXPECT_EQ(errno, ENOSPC);
  // Deletes must never fault: cleanup paths depend on them.
  ASSERT_EQ(env.Close(fd), 0);
  EXPECT_TRUE(env.RemoveFile(dir.path + "/f").ok());
}

TEST(EnvTest, FailWritesAfterCountsDownThenFailsEverything) {
  ScratchDir dir;
  FaultInjectingEnv env;
  const int fd = OpenRW(&env, dir.path + "/f");  // Creating open is
  ASSERT_GE(fd, 0);                              // write-class too.
  env.FailWritesAfter(2);
  EXPECT_EQ(env.Write(fd, "a", 1), 1);
  EXPECT_EQ(env.Write(fd, "b", 1), 1);
  errno = 0;
  EXPECT_EQ(env.Write(fd, "c", 1), -1);  // Device gone.
  EXPECT_EQ(errno, EIO);
  EXPECT_EQ(env.Fsync(fd), -1);  // Fsync is untrustworthy too.
  char buf[2];
  EXPECT_EQ(env.Pread(fd, buf, 2, 0), 2);  // Reads keep serving.
  env.ClearFaults();
  EXPECT_EQ(env.Write(fd, "c", 1), 1);
  env.Close(fd);
}

TEST(EnvTest, SeededRandomScheduleIsDeterministic) {
  ScratchDir dir;
  auto run = [&](uint64_t seed, const char* name) {
    FaultInjectingEnv env;
    env.InjectRandom(seed, /*denominator=*/4);
    const int fd = OpenRW(&env, dir.path + name);
    EXPECT_GE(fd, 0);
    std::string outcome;
    for (int i = 0; i < 64; ++i) {
      outcome.push_back(env.Write(fd, "x", 1) == 1 ? 'o' : 'x');
    }
    env.Close(fd);
    return outcome;
  };
  const std::string a = run(42, "/a");
  const std::string b = run(42, "/b");
  const std::string c = run(43, "/c");
  EXPECT_EQ(a, b) << "same seed, same op sequence, same faults";
  EXPECT_NE(a.find('x'), std::string::npos) << "1/4 rate must fire in 64 ops";
  EXPECT_NE(a.find('o'), std::string::npos);
  EXPECT_NE(a, c) << "different seed should differ (64 ops at 1/4)";
}

}  // namespace
}  // namespace ssidb
