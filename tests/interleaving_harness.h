// Shared §4.7 exhaustive-interleaving harness: transaction programs, the
// interleaving enumerator, and a deterministic single-threaded replayer.
// Used by interleaving_test.cc (the thesis's validation methodology) and
// commit_combiner_test.cc (differential certification: batched combiner vs
// the serial reference engine must abort identical transaction sets).

#ifndef SSIDB_TESTS_INTERLEAVING_HARNESS_H_
#define SSIDB_TESTS_INTERLEAVING_HARNESS_H_

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/db/db.h"
#include "src/sgt/mvsg.h"

namespace ssidb {
namespace interleave {

struct Op {
  int txn;  // Index into the transaction set.
  enum Kind { kRead, kWrite, kCommit } kind;
  std::string key;
};

/// The thesis's §4.7 test set:
///   T1: b1 r1(x) c1
///   T2: b2 r2(y) w2(x) c2
///   T3: b3 w3(y) c3
/// Note this set produces only a chain T1 -rw-> T2 -rw-> T3 (never a
/// cycle), so every execution is serializable — it probes the *conservative*
/// side of the detector: SSI may abort (T2 is a structural pivot) but must
/// never be needed for correctness here.
inline std::vector<std::vector<Op>> TestSetPrograms() {
  return {
      {{0, Op::kRead, "x"}, {0, Op::kCommit, ""}},
      {{1, Op::kRead, "y"}, {1, Op::kWrite, "x"}, {1, Op::kCommit, ""}},
      {{2, Op::kWrite, "y"}, {2, Op::kCommit, ""}},
  };
}

/// The classic write-skew pair (Example 2, Fig 2.1): interleavings where
/// both transactions read before either commits are genuinely
/// non-serializable under SI.
inline std::vector<std::vector<Op>> WriteSkewPrograms() {
  return {
      {{0, Op::kRead, "x"},
       {0, Op::kRead, "y"},
       {0, Op::kWrite, "x"},
       {0, Op::kCommit, ""}},
      {{1, Op::kRead, "x"},
       {1, Op::kRead, "y"},
       {1, Op::kWrite, "y"},
       {1, Op::kCommit, ""}},
  };
}

/// All merges of the per-transaction sequences, preserving each program's
/// internal order (standard multiset-permutation enumeration).
inline void EnumerateInterleavings(const std::vector<std::vector<Op>>& programs,
                                   std::vector<Op>* current,
                                   std::vector<size_t>* pos,
                                   std::vector<std::vector<Op>>* out) {
  bool done = true;
  for (size_t i = 0; i < programs.size(); ++i) {
    if ((*pos)[i] < programs[i].size()) {
      done = false;
      current->push_back(programs[i][(*pos)[i]]);
      (*pos)[i]++;
      EnumerateInterleavings(programs, current, pos, out);
      (*pos)[i]--;
      current->pop_back();
    }
  }
  if (done) out->push_back(*current);
}

inline std::vector<std::vector<Op>> AllInterleavings(
    const std::vector<std::vector<Op>>& programs) {
  std::vector<std::vector<Op>> out;
  std::vector<Op> current;
  std::vector<size_t> pos(programs.size(), 0);
  EnumerateInterleavings(programs, &current, &pos, &out);
  return out;
}

struct ReplayResult {
  int committed = 0;
  int unsafe_aborts = 0;
  int other_aborts = 0;
  bool history_serializable = true;
  /// Which transaction indices committed (for exact differential
  /// comparison, not just counts).
  std::vector<int> committed_txns;
};

/// Replay one interleaving of `num_txns` programs at `iso` against a fresh
/// engine built from `opts` (history recording and a short lock timeout
/// are forced on — S2PL interleavings can block and must fail fast). A
/// transaction that aborts mid-stream skips its remaining operations (as a
/// real client would). Single-threaded and fully deterministic for a given
/// (interleaving, opts) pair.
inline ReplayResult Replay(const std::vector<Op>& interleaving, int num_txns,
                           IsolationLevel iso, DBOptions opts = DBOptions{}) {
  opts.record_history = true;
  opts.lock_timeout_ms = 100;
  std::unique_ptr<DB> db;
  EXPECT_TRUE(DB::Open(opts, &db).ok());
  TableId table = 0;
  EXPECT_TRUE(db->CreateTable("t", &table).ok());
  {
    auto seed = db->Begin({IsolationLevel::kSnapshot});
    EXPECT_TRUE(seed->Put(table, "x", "0").ok());
    EXPECT_TRUE(seed->Put(table, "y", "0").ok());
    EXPECT_TRUE(seed->Commit().ok());
  }

  std::vector<std::unique_ptr<Transaction>> txns;
  for (int i = 0; i < num_txns; ++i) txns.push_back(db->Begin({iso}));
  std::vector<bool> dead(num_txns, false);

  ReplayResult result;
  for (const Op& op : interleaving) {
    Transaction* txn = txns[op.txn].get();
    if (dead[op.txn] || !txn->active()) {
      if (!dead[op.txn]) {
        dead[op.txn] = true;
      }
      continue;
    }
    Status s;
    switch (op.kind) {
      case Op::kRead: {
        std::string v;
        s = txn->Get(table, op.key, &v);
        break;
      }
      case Op::kWrite:
        s = txn->Put(table, op.key, "1");
        break;
      case Op::kCommit:
        s = txn->Commit();
        if (s.ok()) {
          ++result.committed;
          result.committed_txns.push_back(op.txn);
          dead[op.txn] = true;
          continue;
        }
        break;
    }
    if (!s.ok()) {
      dead[op.txn] = true;
      if (txn->active()) txn->Abort();
      if (s.IsUnsafe()) {
        ++result.unsafe_aborts;
      } else if (s.IsAbort()) {
        ++result.other_aborts;
      }
    }
  }
  for (auto& txn : txns) {
    if (txn->active()) txn->Abort();
  }
  result.history_serializable =
      sgt::AnalyzeHistory(db->history()->Snapshot()).serializable;
  return result;
}

}  // namespace interleave
}  // namespace ssidb

#endif  // SSIDB_TESTS_INTERLEAVING_HARNESS_H_
