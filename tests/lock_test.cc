// Unit tests for the lock manager: mode compatibility, the non-blocking
// SIREAD mode and its rw-conflict evidence (both acquisition orders, §3.2),
// deadlock detection (immediate and periodic), timeouts, and the SIREAD
// retention/cleanup lifecycle hooks.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <thread>

#include "src/lock/lock_manager.h"

namespace ssidb {
namespace {

LockKey Row(const std::string& key, TableId table = 1) {
  return LockKey{table, LockKind::kRow, key};
}

LockKey Gap(const std::string& key, TableId table = 1) {
  return LockKey{table, LockKind::kGap, key};
}

LockManager::Config FastConfig() {
  LockManager::Config c;
  c.lock_timeout_ms = 200;
  return c;
}

TEST(LockManagerTest, SharedLocksAreCompatible) {
  LockManager lm(FastConfig());
  EXPECT_TRUE(lm.Acquire(1, Row("a"), LockMode::kShared).status.ok());
  EXPECT_TRUE(lm.Acquire(2, Row("a"), LockMode::kShared).status.ok());
  EXPECT_TRUE(lm.Holds(1, Row("a"), LockMode::kShared));
  EXPECT_TRUE(lm.Holds(2, Row("a"), LockMode::kShared));
}

TEST(LockManagerTest, ExclusiveBlocksSharedUntilRelease) {
  LockManager lm(FastConfig());
  ASSERT_TRUE(lm.Acquire(1, Row("a"), LockMode::kExclusive).status.ok());
  std::atomic<bool> granted{false};
  std::thread t([&] {
    Status s = lm.Acquire(2, Row("a"), LockMode::kShared).status;
    if (s.ok()) granted.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(granted.load());  // Still blocked.
  lm.ReleaseAll(1);
  t.join();
  EXPECT_TRUE(granted.load());
}

TEST(LockManagerTest, ExclusiveConflictsWithExclusive) {
  LockManager lm(FastConfig());
  ASSERT_TRUE(lm.Acquire(1, Row("a"), LockMode::kExclusive).status.ok());
  // Second requester times out (200ms config).
  Status s = lm.Acquire(2, Row("a"), LockMode::kExclusive).status;
  EXPECT_TRUE(s.IsTimedOut());
}

TEST(LockManagerTest, SIReadNeverBlocksAgainstExclusive) {
  LockManager lm(FastConfig());
  ASSERT_TRUE(lm.Acquire(1, Row("a"), LockMode::kExclusive).status.ok());
  const auto start = std::chrono::steady_clock::now();
  AcquireResult r = lm.Acquire(2, Row("a"), LockMode::kSIRead);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_TRUE(r.status.ok());
  EXPECT_LT(elapsed, std::chrono::milliseconds(50));
  // Fig 3.4 line 3: the SIREAD acquisition reports the exclusive holder.
  ASSERT_EQ(r.rw_conflicts.size(), 1u);
  EXPECT_EQ(r.rw_conflicts[0], 1u);
}

TEST(LockManagerTest, ExclusiveDoesNotBlockOnSIRead) {
  LockManager lm(FastConfig());
  ASSERT_TRUE(lm.Acquire(1, Row("a"), LockMode::kSIRead).status.ok());
  AcquireResult r = lm.Acquire(2, Row("a"), LockMode::kExclusive);
  EXPECT_TRUE(r.status.ok());
  // Fig 3.5 line 4: the exclusive acquisition reports SIREAD holders.
  ASSERT_EQ(r.rw_conflicts.size(), 1u);
  EXPECT_EQ(r.rw_conflicts[0], 1u);
}

TEST(LockManagerTest, SIReadCoexistsWithShared) {
  LockManager lm(FastConfig());
  EXPECT_TRUE(lm.Acquire(1, Row("a"), LockMode::kShared).status.ok());
  AcquireResult r = lm.Acquire(2, Row("a"), LockMode::kSIRead);
  EXPECT_TRUE(r.status.ok());
  EXPECT_TRUE(r.rw_conflicts.empty());  // S and SIREAD are both reads.
}

TEST(LockManagerTest, MultipleSIReadHoldersAllReported) {
  LockManager lm(FastConfig());
  ASSERT_TRUE(lm.Acquire(1, Row("a"), LockMode::kSIRead).status.ok());
  ASSERT_TRUE(lm.Acquire(2, Row("a"), LockMode::kSIRead).status.ok());
  AcquireResult r = lm.Acquire(3, Row("a"), LockMode::kExclusive);
  EXPECT_TRUE(r.status.ok());
  EXPECT_EQ(r.rw_conflicts.size(), 2u);
}

TEST(LockManagerTest, OwnSIReadNotReportedAsConflict) {
  LockManager lm(FastConfig());
  ASSERT_TRUE(lm.Acquire(1, Row("a"), LockMode::kSIRead).status.ok());
  AcquireResult r = lm.Acquire(1, Row("a"), LockMode::kExclusive);
  EXPECT_TRUE(r.status.ok());
  EXPECT_TRUE(r.rw_conflicts.empty());
}

TEST(LockManagerTest, UpgradeDropsOwnSIReadWhenConfigured) {
  // §3.7.3: EXCLUSIVE replaces the transaction's own SIREAD.
  LockManager::Config cfg = FastConfig();
  cfg.upgrade_siread_locks = true;
  LockManager lm(cfg);
  ASSERT_TRUE(lm.Acquire(1, Row("a"), LockMode::kSIRead).status.ok());
  ASSERT_TRUE(lm.Acquire(1, Row("a"), LockMode::kExclusive).status.ok());
  EXPECT_FALSE(lm.Holds(1, Row("a"), LockMode::kSIRead));
  EXPECT_TRUE(lm.Holds(1, Row("a"), LockMode::kExclusive));
  EXPECT_FALSE(lm.HoldsAnySIRead(1));
}

TEST(LockManagerTest, UpgradeKeepsSIReadWhenDisabled) {
  LockManager::Config cfg = FastConfig();
  cfg.upgrade_siread_locks = false;
  LockManager lm(cfg);
  ASSERT_TRUE(lm.Acquire(1, Row("a"), LockMode::kSIRead).status.ok());
  ASSERT_TRUE(lm.Acquire(1, Row("a"), LockMode::kExclusive).status.ok());
  EXPECT_TRUE(lm.Holds(1, Row("a"), LockMode::kSIRead));
  EXPECT_TRUE(lm.Holds(1, Row("a"), LockMode::kExclusive));
}

TEST(LockManagerTest, SharedUpgradesToExclusiveWhenAlone) {
  LockManager lm(FastConfig());
  ASSERT_TRUE(lm.Acquire(1, Row("a"), LockMode::kShared).status.ok());
  EXPECT_TRUE(lm.Acquire(1, Row("a"), LockMode::kExclusive).status.ok());
  EXPECT_TRUE(lm.Holds(1, Row("a"), LockMode::kExclusive));
}

TEST(LockManagerTest, ReacquireHeldModeIsNoOp) {
  LockManager lm(FastConfig());
  ASSERT_TRUE(lm.Acquire(1, Row("a"), LockMode::kExclusive).status.ok());
  EXPECT_TRUE(lm.Acquire(1, Row("a"), LockMode::kExclusive).status.ok());
  EXPECT_EQ(lm.GrantCount(), 1u);
}

TEST(LockManagerTest, ReleaseAllFreesEveryKey) {
  LockManager lm(FastConfig());
  ASSERT_TRUE(lm.Acquire(1, Row("a"), LockMode::kExclusive).status.ok());
  ASSERT_TRUE(lm.Acquire(1, Row("b"), LockMode::kShared).status.ok());
  ASSERT_TRUE(lm.Acquire(1, Gap("c"), LockMode::kSIRead).status.ok());
  EXPECT_EQ(lm.GrantCount(), 3u);
  lm.ReleaseAll(1);
  EXPECT_EQ(lm.GrantCount(), 0u);
  EXPECT_FALSE(lm.Holds(1, Row("a"), LockMode::kExclusive));
  // Freed for others immediately.
  EXPECT_TRUE(lm.Acquire(2, Row("a"), LockMode::kExclusive).status.ok());
}

TEST(LockManagerTest, ReleaseAllExceptSIReadKeepsOnlySIRead) {
  // Fig 3.2 line 9: commit drops S/X but retains SIREAD for suspension.
  LockManager lm(FastConfig());
  ASSERT_TRUE(lm.Acquire(1, Row("a"), LockMode::kExclusive).status.ok());
  ASSERT_TRUE(lm.Acquire(1, Row("b"), LockMode::kSIRead).status.ok());
  lm.ReleaseAllExceptSIRead(1);
  EXPECT_FALSE(lm.Holds(1, Row("a"), LockMode::kExclusive));
  EXPECT_TRUE(lm.Holds(1, Row("b"), LockMode::kSIRead));
  EXPECT_TRUE(lm.HoldsAnySIRead(1));
  lm.ReleaseAll(1);  // Suspended-cleanup path.
  EXPECT_FALSE(lm.HoldsAnySIRead(1));
}

TEST(LockManagerTest, RetainedSIReadStillReportsConflicts) {
  // A suspended (committed) transaction's SIREAD must keep producing
  // rw-evidence for later writers (§3.3).
  LockManager lm(FastConfig());
  ASSERT_TRUE(lm.Acquire(1, Row("a"), LockMode::kSIRead).status.ok());
  lm.ReleaseAllExceptSIRead(1);
  AcquireResult r = lm.Acquire(2, Row("a"), LockMode::kExclusive);
  EXPECT_TRUE(r.status.ok());
  ASSERT_EQ(r.rw_conflicts.size(), 1u);
  EXPECT_EQ(r.rw_conflicts[0], 1u);
}

TEST(LockManagerTest, GapAndRowLocksOnSameKeyDoNotInteract) {
  // §2.5.2: a gap lock on x is logically a different key than x itself.
  LockManager lm(FastConfig());
  ASSERT_TRUE(lm.Acquire(1, Row("a"), LockMode::kExclusive).status.ok());
  EXPECT_TRUE(lm.Acquire(2, Gap("a"), LockMode::kExclusive).status.ok());
  EXPECT_TRUE(lm.Acquire(3, Gap("a"), LockMode::kSIRead).status.ok());
}

TEST(LockManagerTest, InsertIntentionGapLocksDoNotBlockEachOther) {
  // §2.5.2 InnoDB gap semantics: two inserts into the same gap both take
  // EXCLUSIVE gap locks and must not serialize against each other.
  LockManager lm(FastConfig());
  ASSERT_TRUE(lm.Acquire(1, Gap("m"), LockMode::kExclusive).status.ok());
  const auto start = std::chrono::steady_clock::now();
  EXPECT_TRUE(lm.Acquire(2, Gap("m"), LockMode::kExclusive).status.ok());
  EXPECT_LT(std::chrono::steady_clock::now() - start,
            std::chrono::milliseconds(50));
}

TEST(LockManagerTest, SharedGapLockBlocksInsertIntention) {
  // An S2PL scanner's shared gap lock must block concurrent inserts into
  // the protected gap (phantom prevention).
  LockManager lm(FastConfig());
  ASSERT_TRUE(lm.Acquire(1, Gap("m"), LockMode::kShared).status.ok());
  Status s = lm.Acquire(2, Gap("m"), LockMode::kExclusive).status;
  EXPECT_TRUE(s.IsTimedOut()) << s.ToString();
  // And symmetrically: a scanner blocks behind a pending insert.
  LockManager lm2(FastConfig());
  ASSERT_TRUE(lm2.Acquire(1, Gap("m"), LockMode::kExclusive).status.ok());
  Status s2 = lm2.Acquire(2, Gap("m"), LockMode::kShared).status;
  EXPECT_TRUE(s2.IsTimedOut()) << s2.ToString();
}

TEST(LockManagerTest, SIReadGapLockDetectsInsertWithoutBlocking) {
  // The SSI scanner's gap SIREAD neither blocks nor is blocked by an
  // insert's gap EXCLUSIVE — but the coexistence is reported both ways
  // (Figs 3.6/3.7).
  LockManager lm(FastConfig());
  ASSERT_TRUE(lm.Acquire(1, Gap("m"), LockMode::kSIRead).status.ok());
  AcquireResult insert = lm.Acquire(2, Gap("m"), LockMode::kExclusive);
  EXPECT_TRUE(insert.status.ok());
  ASSERT_EQ(insert.rw_conflicts.size(), 1u);
  EXPECT_EQ(insert.rw_conflicts[0], 1u);

  AcquireResult scan = lm.Acquire(3, Gap("m"), LockMode::kSIRead);
  EXPECT_TRUE(scan.status.ok());
  ASSERT_EQ(scan.rw_conflicts.size(), 1u);
  EXPECT_EQ(scan.rw_conflicts[0], 2u);
}

TEST(LockManagerTest, SupremumGapBehavesLikeGap) {
  LockManager lm(FastConfig());
  const LockKey sup{1, LockKind::kSupremum, ""};
  ASSERT_TRUE(lm.Acquire(1, sup, LockMode::kExclusive).status.ok());
  EXPECT_TRUE(lm.Acquire(2, sup, LockMode::kExclusive).status.ok());
  Status s = lm.Acquire(3, sup, LockMode::kShared).status;
  EXPECT_TRUE(s.IsTimedOut());
}

TEST(LockManagerTest, TablesPartitionTheKeySpace) {
  LockManager lm(FastConfig());
  ASSERT_TRUE(lm.Acquire(1, Row("a", 1), LockMode::kExclusive).status.ok());
  EXPECT_TRUE(lm.Acquire(2, Row("a", 2), LockMode::kExclusive).status.ok());
}

TEST(LockManagerTest, ImmediateDeadlockDetection) {
  LockManager lm(FastConfig());
  ASSERT_TRUE(lm.Acquire(1, Row("a"), LockMode::kExclusive).status.ok());
  ASSERT_TRUE(lm.Acquire(2, Row("b"), LockMode::kExclusive).status.ok());

  // T1 blocks on b; T2 then requests a, closing the cycle: T2 must get an
  // immediate kDeadlock while T1 eventually acquires b.
  auto f1 = std::async(std::launch::async, [&] {
    return lm.Acquire(1, Row("b"), LockMode::kExclusive).status;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  Status s2 = lm.Acquire(2, Row("a"), LockMode::kExclusive).status;
  EXPECT_TRUE(s2.IsDeadlock()) << s2.ToString();
  lm.ReleaseAll(2);
  Status s1 = f1.get();
  EXPECT_TRUE(s1.ok()) << s1.ToString();
  EXPECT_GE(lm.deadlocks_detected(), 1u);
}

TEST(LockManagerTest, PeriodicDeadlockDetectorBreaksCycle) {
  LockManager::Config cfg;
  cfg.deadlock_policy = DeadlockPolicy::kPeriodic;
  cfg.deadlock_scan_interval_ms = 20;
  cfg.lock_timeout_ms = 3000;
  LockManager lm(cfg);
  ASSERT_TRUE(lm.Acquire(1, Row("a"), LockMode::kExclusive).status.ok());
  ASSERT_TRUE(lm.Acquire(2, Row("b"), LockMode::kExclusive).status.ok());

  // Each client aborts (releases everything) when chosen as the victim, as
  // a real transaction would, unblocking the survivor.
  auto run = [&lm](TxnId id, const LockKey& second) {
    Status s = lm.Acquire(id, second, LockMode::kExclusive).status;
    if (!s.ok()) lm.ReleaseAll(id);
    return s;
  };
  auto f1 = std::async(std::launch::async, run, 1, Row("b"));
  auto f2 = std::async(std::launch::async, run, 2, Row("a"));
  Status s1 = f1.get();
  Status s2 = f2.get();
  // Exactly one of the two is the victim; the other acquires and finishes.
  EXPECT_NE(s1.IsDeadlock(), s2.IsDeadlock())
      << "s1=" << s1.ToString() << " s2=" << s2.ToString();
  EXPECT_TRUE(s1.ok() || s2.ok());
  EXPECT_GE(lm.deadlocks_detected(), 1u);
  lm.ReleaseAll(1);
  lm.ReleaseAll(2);
}

TEST(LockManagerTest, WaitCounterIncrements) {
  LockManager lm(FastConfig());
  ASSERT_TRUE(lm.Acquire(1, Row("a"), LockMode::kExclusive).status.ok());
  std::thread t([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    lm.ReleaseAll(1);
  });
  EXPECT_TRUE(lm.Acquire(2, Row("a"), LockMode::kExclusive).status.ok());
  t.join();
  EXPECT_GE(lm.waits(), 1u);
}

TEST(LockManagerTest, ManyTransactionsStress) {
  // Hammer a few keys from many threads; the invariant is no lost grants
  // and an empty table at the end.
  LockManager::Config cfg;
  cfg.lock_timeout_ms = 5000;
  LockManager lm(cfg);
  constexpr int kThreads = 8;
  constexpr int kIters = 200;
  std::atomic<int> deadlocks{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        const TxnId id = static_cast<TxnId>(t * kIters + i + 1);
        const std::string k1 = std::string(1, 'a' + (i % 3));
        const std::string k2 = std::string(1, 'a' + ((i + t) % 3));
        Status s = lm.Acquire(id, Row(k1), LockMode::kExclusive).status;
        if (s.ok() && k2 != k1) {
          s = lm.Acquire(id, Row(k2), LockMode::kExclusive).status;
        }
        if (s.IsDeadlock()) deadlocks.fetch_add(1);
        lm.ReleaseAll(id);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(lm.GrantCount(), 0u);
}

}  // namespace
}  // namespace ssidb
