// Page-granularity (Berkeley DB mode, §4.1-§4.3) tests: page-level locks,
// page-level first-committer-wins, phantom safety without gap locks, and
// the §6.1.5 false-positive effect of coarse lock units.

#include <gtest/gtest.h>

#include <memory>

#include "src/common/encoding.h"
#include "src/common/random.h"
#include "src/db/db.h"
#include "src/sgt/mvsg.h"

namespace ssidb {
namespace {

DBOptions PageOptions(uint32_t rows_per_page = 20) {
  DBOptions opts;
  opts.granularity = LockGranularity::kPage;
  opts.rows_per_page = rows_per_page;
  opts.record_history = true;
  opts.lock_timeout_ms = 1000;
  return opts;
}

struct Env {
  std::unique_ptr<DB> db;
  TableId table = 0;

  explicit Env(DBOptions opts) {
    EXPECT_TRUE(DB::Open(opts, &db).ok());
    EXPECT_TRUE(db->CreateTable("t", &table).ok());
  }

  void SeedRange(uint64_t n) {
    auto txn = db->Begin({IsolationLevel::kSnapshot});
    for (uint64_t i = 0; i < n; ++i) {
      ASSERT_TRUE(txn->Put(table, EncodeU64Key(i), "0").ok());
    }
    ASSERT_TRUE(txn->Commit().ok());
  }
};

TEST(PageGranularityTest, BasicCrudStillWorks) {
  Env env(PageOptions());
  env.SeedRange(100);
  auto txn = env.db->Begin({IsolationLevel::kSerializableSSI});
  std::string v;
  EXPECT_TRUE(txn->Get(env.table, EncodeU64Key(5), &v).ok());
  EXPECT_TRUE(txn->Put(env.table, EncodeU64Key(5), "1").ok());
  EXPECT_TRUE(txn->Commit().ok());
}

TEST(PageGranularityTest, SameKeyWritesStillConflict) {
  Env env(PageOptions());
  env.SeedRange(40);
  auto t1 = env.db->Begin({IsolationLevel::kSnapshot});
  auto t2 = env.db->Begin({IsolationLevel::kSnapshot});
  std::string v;
  ASSERT_TRUE(t1->Get(env.table, EncodeU64Key(0), &v).ok());
  ASSERT_TRUE(t2->Get(env.table, EncodeU64Key(0), &v).ok());
  ASSERT_TRUE(t1->Put(env.table, EncodeU64Key(0), "1").ok());
  ASSERT_TRUE(t1->Commit().ok());
  Status s = t2->Put(env.table, EncodeU64Key(0), "2");
  EXPECT_TRUE(s.IsUpdateConflict()) << s.ToString();
}

TEST(PageGranularityTest, DifferentKeysSamePageConflictUnderFCW) {
  // §4.2: Berkeley DB versions whole pages, so two transactions updating
  // *different* rows of one page violate page-level first-committer-wins —
  // a conflict row-level engines would not raise.
  Env env(PageOptions(/*rows_per_page=*/20));
  env.SeedRange(40);
  auto t1 = env.db->Begin({IsolationLevel::kSnapshot});
  auto t2 = env.db->Begin({IsolationLevel::kSnapshot});
  std::string v;
  // Pin both snapshots first (late-snapshot would otherwise rescue t2).
  ASSERT_TRUE(t1->Get(env.table, EncodeU64Key(30), &v).ok());
  ASSERT_TRUE(t2->Get(env.table, EncodeU64Key(30), &v).ok());
  // Keys 2 and 3 share page 0.
  ASSERT_TRUE(t1->Put(env.table, EncodeU64Key(2), "1").ok());
  ASSERT_TRUE(t1->Commit().ok());
  Status s = t2->Put(env.table, EncodeU64Key(3), "2");
  EXPECT_TRUE(s.IsUpdateConflict()) << s.ToString();
}

TEST(PageGranularityTest, DifferentPagesDoNotConflict) {
  Env env(PageOptions(/*rows_per_page=*/20));
  env.SeedRange(40);
  auto t1 = env.db->Begin({IsolationLevel::kSnapshot});
  auto t2 = env.db->Begin({IsolationLevel::kSnapshot});
  std::string v;
  ASSERT_TRUE(t1->Get(env.table, EncodeU64Key(0), &v).ok());
  ASSERT_TRUE(t2->Get(env.table, EncodeU64Key(0), &v).ok());
  ASSERT_TRUE(t1->Put(env.table, EncodeU64Key(2), "1").ok());   // Page 0.
  ASSERT_TRUE(t1->Commit().ok());
  EXPECT_TRUE(t2->Put(env.table, EncodeU64Key(25), "2").ok());  // Page 1.
  EXPECT_TRUE(t2->Commit().ok());
}

TEST(PageGranularityTest, WriteSkewStillPreventedUnderSSI) {
  Env env(PageOptions(/*rows_per_page=*/20));
  env.SeedRange(60);
  // x and y on different pages so this is a genuine rw-skew, not FCW.
  const std::string x = EncodeU64Key(0);   // Page 0.
  const std::string y = EncodeU64Key(30);  // Page 1.
  auto t1 = env.db->Begin({IsolationLevel::kSerializableSSI});
  auto t2 = env.db->Begin({IsolationLevel::kSerializableSSI});
  std::string v;
  Status s = t1->Get(env.table, x, &v);
  if (s.ok()) s = t1->Get(env.table, y, &v);
  if (s.ok()) s = t2->Get(env.table, x, &v);
  if (s.ok()) s = t2->Get(env.table, y, &v);
  if (s.ok()) s = t1->Put(env.table, x, "1");
  Status c1 = s.ok() ? t1->Commit() : s;
  Status w2 = t2->active() ? t2->Put(env.table, y, "1") : Status::Unsafe("");
  Status c2 = w2.ok() ? t2->Commit() : w2;
  EXPECT_NE(c1.ok(), c2.ok());
  EXPECT_TRUE(sgt::AnalyzeHistory(env.db->history()->Snapshot())
                  .serializable);
  if (t1->active()) t1->Abort();
  if (t2->active()) t2->Abort();
}

TEST(PageGranularityTest, PhantomPreventedWithoutGapLocks) {
  // §3.5: page locks subsume phantom protection — an insert into a scanned
  // range touches a page the scanner locked.
  Env env(PageOptions(/*rows_per_page=*/20));
  env.SeedRange(20);
  auto scanner = env.db->Begin({IsolationLevel::kSerializableSSI});
  auto inserter = env.db->Begin({IsolationLevel::kSerializableSSI});
  int count = 0;
  ASSERT_TRUE(scanner->Scan(env.table, EncodeU64Key(0), EncodeU64Key(9),
                            [&count](Slice, Slice) {
                              ++count;
                              return true;
                            })
                  .ok());
  EXPECT_EQ(count, 10);
  // Inserter adds a row into the scanned range (same page) and also reads
  // something the scanner writes, completing a dangerous structure.
  std::string v;
  Status s = inserter->Delete(env.table, EncodeU64Key(5));
  Status c2;
  if (s.ok()) {
    c2 = inserter->Commit();
  } else {
    c2 = s;
  }
  // Scanner re-verifies its predicate and writes: the page-level conflict
  // must be detected by SSI on one side.
  Status w = scanner->active() ? scanner->Put(env.table, EncodeU64Key(1), "9")
                               : Status::Unsafe("");
  Status c1 = w.ok() ? scanner->Commit() : w;
  EXPECT_FALSE(c1.ok() && c2.ok())
      << "c1=" << c1.ToString() << " c2=" << c2.ToString();
  if (scanner->active()) scanner->Abort();
  if (inserter->active()) inserter->Abort();
}

TEST(PageGranularityTest, ScanCoversEmptyInteriorPages) {
  // The phantom hole interval locking closes: a page-mode scan must lock
  // every page overlapping [lo, hi], including pages holding *no entry* —
  // an insert into an empty interior page is still a phantom. With only
  // entry-derived page locks, T2's insert into page 2 below touches no
  // page T1 locked, the T1->T2 rw-edge goes unrecorded, and both commits
  // succeed on a non-serializable history.
  Env env(PageOptions(/*rows_per_page=*/10));
  {
    // Pages 0 and 5 populated; pages 1-4 empty interior.
    auto seed = env.db->Begin({IsolationLevel::kSnapshot});
    for (uint64_t i = 0; i < 10; ++i) {
      ASSERT_TRUE(seed->Put(env.table, EncodeU64Key(i), "0").ok());
    }
    for (uint64_t i = 50; i < 60; ++i) {
      ASSERT_TRUE(seed->Put(env.table, EncodeU64Key(i), "0").ok());
    }
    ASSERT_TRUE(seed->Commit().ok());
  }
  auto t1 = env.db->Begin({IsolationLevel::kSerializableSSI});
  auto t2 = env.db->Begin({IsolationLevel::kSerializableSSI});
  std::string v;
  // T2 reads key 0, which T1 writes below: the T2->T1 rw-edge. The
  // T1->T2 edge is the scan-vs-insert phantom — detectable only through
  // the empty page 2's lock.
  ASSERT_TRUE(t2->Get(env.table, EncodeU64Key(0), &v).ok());
  int count = 0;
  ASSERT_TRUE(t1->Scan(env.table, EncodeU64Key(0), EncodeU64Key(59),
                       [&count](Slice, Slice) {
                         ++count;
                         return true;
                       })
                  .ok());
  EXPECT_EQ(count, 20);
  Status s = t2->Insert(env.table, EncodeU64Key(25), "x");  // Page 2.
  Status c2 = s.ok() ? t2->Commit() : s;
  Status w = t1->active() ? t1->Put(env.table, EncodeU64Key(0), "9")
                          : Status::Unsafe("marked");
  Status c1 = w.ok() ? t1->Commit() : w;
  EXPECT_FALSE(c1.ok() && c2.ok())
      << "c1=" << c1.ToString() << " c2=" << c2.ToString();
  EXPECT_TRUE(
      sgt::AnalyzeHistory(env.db->history()->Snapshot()).serializable);
  if (t1->active()) t1->Abort();
  if (t2->active()) t2->Abort();
}

TEST(PageGranularityTest, FalsePositivesFromPageSharingOnly) {
  // §6.1.5's claim isolated: a workload whose keys never collide at row
  // level but whose *pages* form a cross read/write pattern. Row-level SSI
  // commits everything; page-level SSI sees a dangerous structure and
  // aborts — pure false positives from lock-unit coarsening.
  auto run = [](LockGranularity granularity) {
    DBOptions opts;
    opts.granularity = granularity;
    opts.rows_per_page = 10;
    std::unique_ptr<DB> db;
    EXPECT_TRUE(DB::Open(opts, &db).ok());
    TableId table = 0;
    EXPECT_TRUE(db->CreateTable("t", &table).ok());
    {
      auto seed = db->Begin({IsolationLevel::kSnapshot});
      for (uint64_t i = 0; i < 20; ++i) {
        EXPECT_TRUE(seed->Put(table, EncodeU64Key(i), "0").ok());
      }
      EXPECT_TRUE(seed->Commit().ok());
    }
    // A reads key 0 (page 0) and writes key 10 (page 1);
    // B reads key 11 (page 1) and writes key 1 (page 0).
    // All four keys are distinct: no row-level conflict whatsoever. At
    // page level: A reads page0/writes page1, B reads page1/writes page0 —
    // the Fig 2.1 write-skew shape on pages.
    uint64_t aborts = 0;
    for (int round = 0; round < 50; ++round) {
      auto a = db->Begin({IsolationLevel::kSerializableSSI});
      auto b = db->Begin({IsolationLevel::kSerializableSSI});
      std::string v;
      Status s = a->Get(table, EncodeU64Key(0), &v);
      if (s.ok()) s = b->Get(table, EncodeU64Key(11), &v);
      if (s.ok()) s = a->Put(table, EncodeU64Key(10), "1");
      Status ca = s.ok() ? a->Commit() : s;
      Status wb = b->active() ? b->Put(table, EncodeU64Key(1), "1")
                              : Status::Unsafe("marked");
      Status cb = wb.ok() ? b->Commit() : wb;
      if (!ca.ok()) ++aborts;
      if (!cb.ok()) ++aborts;
      if (a->active()) a->Abort();
      if (b->active()) b->Abort();
    }
    return aborts;
  };
  EXPECT_EQ(run(LockGranularity::kRow), 0u);
  EXPECT_GT(run(LockGranularity::kPage), 0u);
}

TEST(PageGranularityTest, ScanLocksPagesNotRows) {
  Env env(PageOptions(/*rows_per_page=*/10));
  env.SeedRange(100);
  auto txn = env.db->Begin({IsolationLevel::kSerializableSSI});
  int count = 0;
  ASSERT_TRUE(txn->Scan(env.table, EncodeU64Key(0), EncodeU64Key(99),
                        [&count](Slice, Slice) {
                          ++count;
                          return true;
                        })
                  .ok());
  EXPECT_EQ(count, 100);
  // 100 rows over 10 pages: the lock table should hold ~10 page locks,
  // far fewer than 100 row locks (plus its own bookkeeping).
  EXPECT_LE(env.db->GetStats().lock_grants, 15u);
  txn->Commit();
}

}  // namespace
}  // namespace ssidb
