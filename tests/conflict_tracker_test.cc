// Direct unit tests of the SSI conflict tracker (Ch. 3), below the DB
// layer: flag/reference state transitions, the dangerous-structure
// predicate in both representations, victim dispatch, and the overlap
// filters of Figs 3.4/3.5.

#include <gtest/gtest.h>

#include <memory>

#include "src/lock/lock_manager.h"
#include "src/ssi/conflict_tracker.h"
#include "src/txn/log_manager.h"
#include "src/txn/txn_manager.h"

namespace ssidb {
namespace {

class TrackerTest : public ::testing::Test {
 protected:
  void Init(ConflictTracking tracking,
            VictimPolicy victim = VictimPolicy::kPivot,
            bool abort_early = true) {
    options_.conflict_tracking = tracking;
    options_.victim_policy = victim;
    options_.abort_early = abort_early;
    log_ = std::make_unique<LogManager>(options_.log);
    locks_ = std::make_unique<LockManager>(LockManager::Config{});
    mgr_ = std::make_unique<TxnManager>(options_, locks_.get(), log_.get());
    tracker_ = std::make_unique<ConflictTracker>(options_, mgr_.get());
  }

  std::shared_ptr<TxnState> BeginSSI() {
    auto t = mgr_->Begin(IsolationLevel::kSerializableSSI);
    mgr_->EnsureSnapshot(t.get());
    return t;
  }

  Status Commit(const std::shared_ptr<TxnState>& t) {
    return mgr_->Commit(
        t, [this](TxnState* x) { return tracker_->CommitCheck(x); }, {});
  }

  /// Commit with a synthetic write so the commit allocates a ring
  /// timestamp. Read-only commits carry the watermark as their timestamp
  /// (and may tie); tests about commit *order* need distinct timestamps.
  Status CommitW(const std::shared_ptr<TxnState>& t) {
    auto chain = std::make_unique<VersionChain>();
    bool replaced = false;
    Version* v = chain->InstallUncommitted(t->id, "v", false, &replaced);
    t->write_set.push_back(
        TxnState::WriteRecord{0, "k", chain.get(), v, nullptr});
    chains_.push_back(std::move(chain));
    return Commit(t);
  }

  /// Record the rw-antidependency reader -> writer via the lock-manager
  /// detection point (writer saw the reader's SIREAD).
  Status MarkRw(const std::shared_ptr<TxnState>& reader,
                const std::shared_ptr<TxnState>& writer) {
    return tracker_->OnWriterSawSIReadHolder(writer.get(), reader->id);
  }

  DBOptions options_;
  std::vector<std::unique_ptr<VersionChain>> chains_;
  std::unique_ptr<LogManager> log_;
  std::unique_ptr<LockManager> locks_;
  std::unique_ptr<TxnManager> mgr_;
  std::unique_ptr<ConflictTracker> tracker_;
};

TEST_F(TrackerTest, FlagsSingleEdgeDoesNotAbort) {
  Init(ConflictTracking::kFlags);
  auto r = BeginSSI();
  auto w = BeginSSI();
  EXPECT_TRUE(MarkRw(r, w).ok());
  EXPECT_TRUE(r->out_conflict_flag);
  EXPECT_TRUE(w->in_conflict_flag);
  EXPECT_TRUE(Commit(r).ok());
  EXPECT_TRUE(Commit(w).ok());
}

TEST_F(TrackerTest, FlagsPivotAbortsAtCommit) {
  Init(ConflictTracking::kFlags, VictimPolicy::kPivot,
       /*abort_early=*/false);
  auto in = BeginSSI();
  auto pivot = BeginSSI();
  auto out = BeginSSI();
  EXPECT_TRUE(MarkRw(in, pivot).ok());   // in -> pivot.
  EXPECT_TRUE(MarkRw(pivot, out).ok());  // pivot -> out.
  EXPECT_TRUE(pivot->in_conflict_flag);
  EXPECT_TRUE(pivot->out_conflict_flag);
  Status st = Commit(pivot);
  EXPECT_TRUE(st.IsUnsafe()) << st.ToString();
  EXPECT_TRUE(Commit(in).ok());
  EXPECT_TRUE(Commit(out).ok());
  EXPECT_EQ(tracker_->unsafe_aborts(), 1u);
}

TEST_F(TrackerTest, AbortEarlyFiresAtTheMarkingOperation) {
  Init(ConflictTracking::kFlags, VictimPolicy::kPivot, /*abort_early=*/true);
  auto in = BeginSSI();
  auto pivot = BeginSSI();
  auto out = BeginSSI();
  EXPECT_TRUE(MarkRw(in, pivot).ok());
  // The second edge completes the structure; pivot is the victim, but the
  // caller here is `out`'s thread... the call is made on behalf of the
  // *writer* (out): victim=pivot is not the caller, so the call succeeds
  // and the pivot is marked for asynchronous abort.
  EXPECT_TRUE(MarkRw(pivot, out).ok());
  EXPECT_TRUE(pivot->marked_for_abort.load());
  Status st = Commit(pivot);
  EXPECT_TRUE(st.IsUnsafe());
}

TEST_F(TrackerTest, VictimIsCallerWhenPivotCallsIn) {
  Init(ConflictTracking::kFlags);
  auto in = BeginSSI();
  auto pivot = BeginSSI();
  auto out = BeginSSI();
  // First the out-edge, then the pivot itself (as reader) detects the
  // in-edge: the pivot is the caller on the reader side of edge in->pivot?
  // No: in->pivot has reader=in, writer=pivot. To make the pivot the
  // caller we use the reader-side detection point for the pivot->out edge
  // after in->pivot already exists.
  EXPECT_TRUE(MarkRw(in, pivot).ok());
  Status st = tracker_->OnReaderSawExclusiveHolder(pivot.get(), out->id);
  EXPECT_TRUE(st.IsUnsafe());  // The pivot (caller) must abort itself.
  EXPECT_FALSE(in->marked_for_abort.load());
  EXPECT_FALSE(out->marked_for_abort.load());
}

TEST_F(TrackerTest, ReferencesOutPartnerNotCommittedIsSafe) {
  Init(ConflictTracking::kReferences);
  auto in = BeginSSI();
  auto pivot = BeginSSI();
  auto out = BeginSSI();
  EXPECT_TRUE(MarkRw(in, pivot).ok());
  EXPECT_TRUE(MarkRw(pivot, out).ok());
  // §3.6: dangerous only if the out-partner committed first. It has not,
  // so the pivot commits fine — and that commit precedes out's commit,
  // making the structure permanently safe.
  EXPECT_TRUE(Commit(pivot).ok());
  EXPECT_TRUE(Commit(in).ok());
  EXPECT_TRUE(Commit(out).ok());
  EXPECT_EQ(tracker_->unsafe_aborts(), 0u);
}

TEST_F(TrackerTest, ReferencesOutCommittedFirstAborts) {
  Init(ConflictTracking::kReferences);
  auto in = BeginSSI();
  auto pivot = BeginSSI();
  auto out = BeginSSI();
  EXPECT_TRUE(MarkRw(in, pivot).ok());
  EXPECT_TRUE(MarkRw(pivot, out).ok());
  EXPECT_TRUE(Commit(out).ok());  // Out commits first: now dangerous.
  Status st = Commit(pivot);
  EXPECT_TRUE(st.IsUnsafe()) << st.ToString();
  EXPECT_TRUE(Commit(in).ok());
}

TEST_F(TrackerTest, ReferencesInCommittedBeforeOutIsSafe) {
  // The Fig 3.8 order: in commits, then out, then the pivot. out did not
  // commit before in, so there is no cycle and no abort. Both partners
  // commit with writes: the §3.6 test is about commit-timestamp order,
  // which only writing commits carry distinctly.
  Init(ConflictTracking::kReferences);
  auto in = BeginSSI();
  auto pivot = BeginSSI();
  auto out = BeginSSI();
  EXPECT_TRUE(MarkRw(in, pivot).ok());
  EXPECT_TRUE(CommitW(in).ok());
  EXPECT_TRUE(MarkRw(pivot, out).ok());
  EXPECT_TRUE(CommitW(out).ok());
  Status st = Commit(pivot);
  EXPECT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(tracker_->unsafe_aborts(), 0u);
}

TEST_F(TrackerTest, ReferencesMultipleOutPartnersDegradeConservatively) {
  // Two distinct out-partners collapse the reference to kSelf, which the
  // danger test treats as "may have committed first".
  Init(ConflictTracking::kReferences, VictimPolicy::kPivot,
       /*abort_early=*/false);
  auto in = BeginSSI();
  auto pivot = BeginSSI();
  auto out1 = BeginSSI();
  auto out2 = BeginSSI();
  EXPECT_TRUE(MarkRw(pivot, out1).ok());
  EXPECT_TRUE(MarkRw(pivot, out2).ok());
  EXPECT_TRUE(MarkRw(in, pivot).ok());
  EXPECT_EQ(pivot->out_ref.kind, ConflictRef::Kind::kSelf);
  Status st = Commit(pivot);
  EXPECT_TRUE(st.IsUnsafe()) << st.ToString();
  EXPECT_TRUE(Commit(in).ok());
  EXPECT_TRUE(Commit(out1).ok());
  EXPECT_TRUE(Commit(out2).ok());
}

TEST_F(TrackerTest, AbortedPartnerEdgeVanishes) {
  Init(ConflictTracking::kReferences);
  auto in = BeginSSI();
  auto pivot = BeginSSI();
  auto out = BeginSSI();
  EXPECT_TRUE(MarkRw(in, pivot).ok());
  EXPECT_TRUE(MarkRw(pivot, out).ok());
  mgr_->Abort(out);  // The out-edge's partner disappears from the MVSG.
  EXPECT_TRUE(Commit(pivot).ok());
  EXPECT_TRUE(Commit(in).ok());
}

TEST_F(TrackerTest, NonParticipantsIgnored) {
  // SI and S2PL transactions are transparent to the tracker (§3.8).
  Init(ConflictTracking::kReferences);
  auto si = mgr_->Begin(IsolationLevel::kSnapshot);
  mgr_->EnsureSnapshot(si.get());
  auto ssi = BeginSSI();
  EXPECT_TRUE(
      tracker_->OnWriterSawSIReadHolder(ssi.get(), si->id).ok());
  EXPECT_FALSE(ssi->in_ref.IsSet());
  EXPECT_TRUE(tracker_->MarkReadOfNewerVersion(si.get(), ssi->id, 1).ok());
  EXPECT_FALSE(si->out_ref.IsSet());
  mgr_->Abort(si);
  mgr_->Abort(ssi);
}

TEST_F(TrackerTest, Fig35OverlapFilterSkipsNonOverlappingReader) {
  // Fig 3.5: "where rl.owner has not committed or commit(rl.owner) >
  // begin(T)". A reader that committed before the writer's snapshot does
  // not overlap: no conflict is recorded.
  Init(ConflictTracking::kReferences);
  auto reader = BeginSSI();
  locks_->Acquire(reader->id, LockKey{1, LockKind::kRow, "k"},
                  LockMode::kSIRead);
  ASSERT_TRUE(Commit(reader).ok());  // Suspended, SIREAD retained.

  auto writer = BeginSSI();  // Snapshot after the reader's commit.
  EXPECT_TRUE(MarkRw(reader, writer).ok());
  EXPECT_FALSE(writer->in_ref.IsSet());
  mgr_->Abort(writer);
}

TEST_F(TrackerTest, CommittedSuspendedReaderStillConflictsWhenOverlapping) {
  Init(ConflictTracking::kReferences);
  auto keeper = BeginSSI();  // Makes the reader overlap something.
  auto reader = BeginSSI();
  locks_->Acquire(reader->id, LockKey{1, LockKind::kRow, "k"},
                  LockMode::kSIRead);

  auto writer = BeginSSI();  // Overlaps the reader (begins before commit).
  {
    // Advance the watermark past the writer's snapshot: the reader's
    // read-only commit timestamp is the watermark, and the Fig 3.5 filter
    // only records the edge when commit(reader) > begin(writer).
    auto bump = mgr_->Begin(IsolationLevel::kSnapshot);
    mgr_->EnsureSnapshot(bump.get());
    ASSERT_TRUE(CommitW(bump).ok());
  }
  ASSERT_TRUE(Commit(reader).ok());
  EXPECT_TRUE(MarkRw(reader, writer).ok());
  EXPECT_TRUE(writer->in_ref.IsSet());  // Conflict recorded.
  mgr_->Abort(writer);
  mgr_->Abort(keeper);
}

TEST_F(TrackerTest, YoungestPolicySparesThePivot) {
  Init(ConflictTracking::kFlags, VictimPolicy::kYoungest);
  auto pivot = BeginSSI();  // Older (smaller id).
  auto in = BeginSSI();
  auto out = BeginSSI();  // Youngest.
  EXPECT_TRUE(MarkRw(in, pivot).ok());
  // Completing edge, caller = out (writer side): victim should be the
  // younger endpoint of this edge — out itself — so the call returns
  // unsafe to the caller and the pivot survives.
  Status st = MarkRw(pivot, out);
  EXPECT_TRUE(st.IsUnsafe());
  EXPECT_FALSE(pivot->marked_for_abort.load());
  EXPECT_TRUE(Commit(pivot).ok());
  EXPECT_TRUE(Commit(in).ok());
}

TEST_F(TrackerTest, SelfConflictIgnored) {
  Init(ConflictTracking::kReferences);
  auto t = BeginSSI();
  EXPECT_TRUE(MarkRw(t, t).ok());
  EXPECT_FALSE(t->in_ref.IsSet());
  EXPECT_FALSE(t->out_ref.IsSet());
  EXPECT_TRUE(Commit(t).ok());
}

TEST_F(TrackerTest, UnknownPartnerIdIgnored) {
  // The creator of an old version may be long gone (cleaned up): marking
  // against it is a no-op (§3.4: a departed pure update cannot pivot).
  Init(ConflictTracking::kReferences);
  auto t = BeginSSI();
  EXPECT_TRUE(tracker_->MarkReadOfNewerVersion(t.get(), 999999, 5).ok());
  EXPECT_FALSE(t->out_ref.IsSet());
  mgr_->Abort(t);
}

}  // namespace
}  // namespace ssidb
