// Differential properties across isolation levels.
//
// 1. Serial equivalence: a single-threaded stream of transactions is a
//    serial execution, so ALL isolation levels must produce bit-identical
//    final states — any divergence is an engine bug, not a concurrency
//    anomaly. Random programs across seeds make this a cheap, wide oracle.
// 2. Retry progress: the paper argues (§3) that SSI's unsafe aborts do not
//    livelock — a retried transaction re-reads fresh snapshots and the
//    conflict pattern dissolves. Concurrent workloads with retry loops
//    must complete a fixed amount of work.

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "src/common/encoding.h"
#include "src/common/random.h"
#include "src/db/db.h"

namespace ssidb {
namespace {

/// One deterministic pseudo-random transaction program: a few reads,
/// writes, deletes and scans derived from `seed`.
void RunProgram(DB* db, TableId table, IsolationLevel iso, uint64_t seed) {
  Random rng(seed);
  auto txn = db->Begin({iso});
  const int ops = 1 + static_cast<int>(rng.Uniform(6));
  bool ok = true;
  for (int i = 0; i < ops && ok; ++i) {
    const uint64_t k = rng.Uniform(16);
    switch (rng.Uniform(5)) {
      case 0: {
        std::string v;
        Status s = txn->Get(table, EncodeU64Key(k), &v);
        ok = s.ok() || s.IsNotFound();
        break;
      }
      case 1:
        ok = txn->Put(table, EncodeU64Key(k),
                      "v" + std::to_string(rng.Uniform(100)))
                 .ok();
        break;
      case 2: {
        Status s = txn->Insert(table, EncodeU64Key(k),
                               "i" + std::to_string(rng.Uniform(100)));
        ok = s.ok() || s.IsDuplicateKey();
        break;
      }
      case 3: {
        Status s = txn->Delete(table, EncodeU64Key(k));
        ok = s.ok() || s.IsNotFound();
        break;
      }
      case 4: {
        ok = txn->Scan(table, EncodeU64Key(0), EncodeU64Key(15),
                       [](Slice, Slice) { return true; })
                 .ok();
        break;
      }
    }
  }
  if (ok && rng.Bernoulli(0.9)) {
    EXPECT_TRUE(txn->Commit().ok());
  } else if (txn->active()) {
    txn->Abort();
  }
}

std::map<std::string, std::string> Dump(DB* db, TableId table) {
  std::map<std::string, std::string> out;
  auto txn = db->Begin({IsolationLevel::kSnapshot});
  EXPECT_TRUE(txn->Scan(table, EncodeU64Key(0), EncodeU64Key(UINT64_MAX),
                        [&out](Slice k, Slice v) {
                          out[k.ToString()] = v.ToString();
                          return true;
                        })
                  .ok());
  txn->Commit();
  return out;
}

class SerialEquivalenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SerialEquivalenceTest, AllIsolationLevelsAgreeOnSerialStreams) {
  const uint64_t seed = GetParam();
  std::map<std::string, std::string> reference;
  bool first = true;
  for (IsolationLevel iso :
       {IsolationLevel::kSnapshot, IsolationLevel::kSerializableSSI,
        IsolationLevel::kSerializable2PL}) {
    for (LockGranularity granularity :
         {LockGranularity::kRow, LockGranularity::kPage}) {
      DBOptions opts;
      opts.granularity = granularity;
      std::unique_ptr<DB> db;
      ASSERT_TRUE(DB::Open(opts, &db).ok());
      TableId table = 0;
      ASSERT_TRUE(db->CreateTable("t", &table).ok());
      for (int p = 0; p < 60; ++p) {
        RunProgram(db.get(), table, iso, seed * 1000 + p);
      }
      auto state = Dump(db.get(), table);
      if (first) {
        reference = state;
        first = false;
      } else {
        EXPECT_EQ(state, reference)
            << "divergent final state (iso=" << static_cast<int>(iso)
            << ", granularity=" << static_cast<int>(granularity) << ")";
      }
    }
  }
  EXPECT_FALSE(reference.empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SerialEquivalenceTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

class RetryProgressTest : public ::testing::TestWithParam<IsolationLevel> {};

TEST_P(RetryProgressTest, ContendedWorkloadFinishesWithRetries) {
  // Every worker must complete its quota of write-skew-shaped transactions
  // by retrying engine aborts — no livelock, no starvation (§3's argument
  // that retried transactions do not repeat their conflict pattern).
  DBOptions opts;
  opts.lock_timeout_ms = 5000;
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(opts, &db).ok());
  TableId table = 0;
  ASSERT_TRUE(db->CreateTable("t", &table).ok());
  {
    auto seed = db->Begin({IsolationLevel::kSnapshot});
    for (uint64_t i = 0; i < 4; ++i) {
      ASSERT_TRUE(seed->Insert(table, EncodeU64Key(i), "0").ok());
    }
    ASSERT_TRUE(seed->Commit().ok());
  }
  constexpr int kThreads = 4;
  constexpr int kQuota = 40;
  constexpr int kMaxAttempts = 200 * kQuota;
  std::vector<std::thread> threads;
  std::atomic<bool> livelock{false};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Random rng(7 + t);
      int done = 0;
      int attempts = 0;
      while (done < kQuota && attempts < kMaxAttempts) {
        ++attempts;
        const uint64_t a = rng.Uniform(4);
        const uint64_t b = (a + 1 + rng.Uniform(2)) % 4;
        auto txn = db->Begin({GetParam()});
        std::string v;
        Status s = txn->Get(table, EncodeU64Key(a), &v);
        if (s.ok()) s = txn->Get(table, EncodeU64Key(b), &v);
        if (s.ok()) {
          s = txn->Put(table, EncodeU64Key(rng.Bernoulli(0.5) ? a : b),
                       std::to_string(done));
        }
        if (s.ok()) s = txn->Commit();
        if (s.ok()) {
          ++done;
        } else if (txn->active()) {
          txn->Abort();
        }
      }
      if (done < kQuota) livelock.store(true);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_FALSE(livelock.load()) << "a worker failed to make progress";
}

INSTANTIATE_TEST_SUITE_P(
    AllIsolationLevels, RetryProgressTest,
    ::testing::Values(IsolationLevel::kSnapshot,
                      IsolationLevel::kSerializableSSI,
                      IsolationLevel::kSerializable2PL),
    [](const ::testing::TestParamInfo<IsolationLevel>& info) {
      switch (info.param) {
        case IsolationLevel::kSnapshot: return "SI";
        case IsolationLevel::kSerializableSSI: return "SSI";
        case IsolationLevel::kSerializable2PL: return "S2PL";
      }
      return "unknown";
    });

}  // namespace
}  // namespace ssidb
