// Concurrency stress tests: many threads, random operations, invariants
// checked at the end. These are the property-based complement to the
// deterministic interleavings of interleaving_test.cc: serializability is
// validated with the MVSG oracle over full recorded histories, and
// domain invariants (conservation of money, constraint maintenance) are
// validated against the final state.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "src/common/encoding.h"
#include "src/common/random.h"
#include "src/db/db.h"
#include "src/sgt/mvsg.h"

namespace ssidb {
namespace {

int64_t DecodeI64(Slice v) {
  size_t off = 0;
  int64_t out = 0;
  GetI64(v, &off, &out);
  return out;
}

std::string EncodeI64(int64_t v) {
  std::string s;
  PutI64(&s, v);
  return s;
}

/// Money-transfer stress: N accounts, random transfers; the total is
/// invariant under any serializable execution. SI would also conserve the
/// total here (transfers write both accounts, so FCW protects them) — the
/// point of this test is crash-free concurrency and lost-update freedom.
class TransferStressTest : public ::testing::TestWithParam<IsolationLevel> {};

TEST_P(TransferStressTest, TotalConserved) {
  DBOptions opts;
  opts.lock_timeout_ms = 5000;
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(opts, &db).ok());
  TableId table = 0;
  ASSERT_TRUE(db->CreateTable("accounts", &table).ok());
  constexpr uint64_t kAccounts = 20;
  constexpr int64_t kInitial = 1000;
  {
    auto seed = db->Begin({IsolationLevel::kSnapshot});
    for (uint64_t i = 0; i < kAccounts; ++i) {
      ASSERT_TRUE(
          seed->Insert(table, EncodeU64Key(i), EncodeI64(kInitial)).ok());
    }
    ASSERT_TRUE(seed->Commit().ok());
  }

  constexpr int kThreads = 4;
  constexpr int kOps = 100;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Random rng(31 + t);
      for (int i = 0; i < kOps; ++i) {
        const uint64_t from = rng.Uniform(kAccounts);
        uint64_t to = rng.Uniform(kAccounts);
        if (to == from) to = (to + 1) % kAccounts;
        const int64_t amount = rng.UniformRange(1, 50);
        auto txn = db->Begin({GetParam()});
        std::string v;
        Status s = txn->Get(table, EncodeU64Key(from), &v);
        const int64_t from_balance = s.ok() ? DecodeI64(v) : 0;
        if (s.ok()) s = txn->Get(table, EncodeU64Key(to), &v);
        const int64_t to_balance = s.ok() ? DecodeI64(v) : 0;
        if (s.ok()) {
          s = txn->Put(table, EncodeU64Key(from),
                       EncodeI64(from_balance - amount));
        }
        if (s.ok()) {
          s = txn->Put(table, EncodeU64Key(to),
                       EncodeI64(to_balance + amount));
        }
        if (s.ok()) {
          txn->Commit();
        } else if (txn->active()) {
          txn->Abort();
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  auto check = db->Begin({IsolationLevel::kSnapshot});
  int64_t total = 0;
  ASSERT_TRUE(check->Scan(table, EncodeU64Key(0), EncodeU64Key(UINT64_MAX),
                          [&total](Slice, Slice v) {
                            total += DecodeI64(v);
                            return true;
                          })
                  .ok());
  check->Commit();
  EXPECT_EQ(total, static_cast<int64_t>(kAccounts) * kInitial);
  EXPECT_EQ(db->GetStats().active_txns, 0u);
  EXPECT_EQ(db->GetStats().lock_grants, 0u);  // Everything released.
}

INSTANTIATE_TEST_SUITE_P(
    AllIsolationLevels, TransferStressTest,
    ::testing::Values(IsolationLevel::kSnapshot,
                      IsolationLevel::kSerializableSSI,
                      IsolationLevel::kSerializable2PL),
    [](const ::testing::TestParamInfo<IsolationLevel>& info) {
      switch (info.param) {
        case IsolationLevel::kSnapshot: return "SI";
        case IsolationLevel::kSerializableSSI: return "SSI";
        case IsolationLevel::kSerializable2PL: return "S2PL";
      }
      return "unknown";
    });

/// Write-skew stress: pairs of items related by the constraint
/// a + b >= 0; each transaction reads both and decrements one. Under SSI
/// and S2PL the constraint must hold at the end; under SI it breaks (which
/// we *assert*, to prove the workload has teeth).
class SkewStressTest : public ::testing::TestWithParam<IsolationLevel> {
 protected:
  /// Returns the number of constraint-violating pairs after the run.
  int Run(IsolationLevel iso) {
    DBOptions opts;
    opts.lock_timeout_ms = 5000;
    std::unique_ptr<DB> db;
    EXPECT_TRUE(DB::Open(opts, &db).ok());
    TableId table = 0;
    EXPECT_TRUE(db->CreateTable("t", &table).ok());
    constexpr uint64_t kPairs = 10;
    {
      auto seed = db->Begin({IsolationLevel::kSnapshot});
      for (uint64_t i = 0; i < 2 * kPairs; ++i) {
        EXPECT_TRUE(seed->Insert(table, EncodeU64Key(i), EncodeI64(1)).ok());
      }
      EXPECT_TRUE(seed->Commit().ok());
    }
    constexpr int kThreads = 4;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        Random rng(101 + t);
        for (int i = 0; i < 300; ++i) {
          const uint64_t pair = rng.Uniform(kPairs);
          const uint64_t a = 2 * pair;
          const uint64_t b = a + 1;
          auto txn = db->Begin({iso});
          if (rng.Bernoulli(0.3)) {
            // Refill: reset the pair to (1, 0) so the racy sum==1 state
            // keeps recurring. Blind writes; conflicts resolve via FCW.
            Status s = txn->Put(table, EncodeU64Key(a), EncodeI64(1));
            if (s.ok()) s = txn->Put(table, EncodeU64Key(b), EncodeI64(0));
            if (s.ok()) {
              txn->Commit();
            } else if (txn->active()) {
              txn->Abort();
            }
            continue;
          }
          const uint64_t victim = rng.Bernoulli(0.5) ? a : b;
          std::string va, vb;
          Status s = txn->Get(table, EncodeU64Key(a), &va);
          if (s.ok()) s = txn->Get(table, EncodeU64Key(b), &vb);
          // Widen the read->write window so concurrent transactions
          // genuinely interleave even on a single core.
          std::this_thread::sleep_for(std::chrono::microseconds(200));
          if (s.ok()) {
            // Decrement one side only if the pair sum stays >= 0.
            if (DecodeI64(va) + DecodeI64(vb) >= 1) {
              s = txn->Put(table, EncodeU64Key(victim),
                           EncodeI64((victim == a ? DecodeI64(va)
                                                  : DecodeI64(vb)) -
                                     1));
              if (s.ok()) s = txn->Commit();
            } else {
              txn->Abort();
              continue;
            }
          }
          if (!s.ok() && txn->active()) txn->Abort();
        }
      });
    }
    for (auto& t : threads) t.join();

    int violations = 0;
    auto check = db->Begin({IsolationLevel::kSnapshot});
    for (uint64_t pair = 0; pair < kPairs; ++pair) {
      std::string va, vb;
      EXPECT_TRUE(check->Get(table, EncodeU64Key(2 * pair), &va).ok());
      EXPECT_TRUE(check->Get(table, EncodeU64Key(2 * pair + 1), &vb).ok());
      if (DecodeI64(va) + DecodeI64(vb) < 0) ++violations;
    }
    check->Commit();
    return violations;
  }
};

TEST_F(SkewStressTest, SSIMaintainsConstraint) {
  EXPECT_EQ(Run(IsolationLevel::kSerializableSSI), 0);
}

TEST_F(SkewStressTest, S2PLMaintainsConstraint) {
  EXPECT_EQ(Run(IsolationLevel::kSerializable2PL), 0);
}

TEST_F(SkewStressTest, SnapshotIsolationViolatesConstraintDeterministic) {
  // The same decrement-if-sum-positive programs, with the race forced by a
  // barrier: from pair state (1, 0), both transactions read sum == 1, then
  // each decrements a different element. SI commits both (write skew) and
  // the constraint a + b >= 0 breaks — deterministically, proving the
  // stress workload above has teeth.
  DBOptions opts;
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(opts, &db).ok());
  TableId table = 0;
  ASSERT_TRUE(db->CreateTable("t", &table).ok());
  {
    auto seed = db->Begin({IsolationLevel::kSnapshot});
    ASSERT_TRUE(seed->Insert(table, EncodeU64Key(0), EncodeI64(1)).ok());
    ASSERT_TRUE(seed->Insert(table, EncodeU64Key(1), EncodeI64(0)).ok());
    ASSERT_TRUE(seed->Commit().ok());
  }
  auto t1 = db->Begin({IsolationLevel::kSnapshot});
  auto t2 = db->Begin({IsolationLevel::kSnapshot});
  auto read_pair = [&](Transaction* txn, int64_t* sum) {
    std::string va, vb;
    Status s = txn->Get(table, EncodeU64Key(0), &va);
    if (s.ok()) s = txn->Get(table, EncodeU64Key(1), &vb);
    if (s.ok()) *sum = DecodeI64(va) + DecodeI64(vb);
    return s;
  };
  int64_t sum1 = 0, sum2 = 0;
  ASSERT_TRUE(read_pair(t1.get(), &sum1).ok());  // Barrier point: both
  ASSERT_TRUE(read_pair(t2.get(), &sum2).ok());  // read before any write.
  ASSERT_EQ(sum1, 1);
  ASSERT_EQ(sum2, 1);
  ASSERT_TRUE(t1->Put(table, EncodeU64Key(0), EncodeI64(0)).ok());
  ASSERT_TRUE(t2->Put(table, EncodeU64Key(1), EncodeI64(-1)).ok());
  EXPECT_TRUE(t1->Commit().ok());
  EXPECT_TRUE(t2->Commit().ok());  // SI admits the skew.

  auto check = db->Begin({IsolationLevel::kSnapshot});
  std::string va, vb;
  ASSERT_TRUE(check->Get(table, EncodeU64Key(0), &va).ok());
  ASSERT_TRUE(check->Get(table, EncodeU64Key(1), &vb).ok());
  check->Commit();
  EXPECT_LT(DecodeI64(va) + DecodeI64(vb), 0);  // Constraint violated.
}

/// Full-history stress: random point ops + scans, history recorded, MVSG
/// oracle at the end. The strongest end-to-end property we can check.
class HistoryOracleStressTest
    : public ::testing::TestWithParam<IsolationLevel> {};

TEST_P(HistoryOracleStressTest, CommittedHistoryIsSerializable) {
  DBOptions opts;
  opts.record_history = true;
  opts.lock_timeout_ms = 5000;
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(opts, &db).ok());
  TableId table = 0;
  ASSERT_TRUE(db->CreateTable("t", &table).ok());
  {
    auto seed = db->Begin({IsolationLevel::kSnapshot});
    for (uint64_t i = 0; i < 10; ++i) {
      ASSERT_TRUE(seed->Insert(table, EncodeU64Key(i), EncodeI64(0)).ok());
    }
    ASSERT_TRUE(seed->Commit().ok());
  }
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Random rng(11 + t);
      for (int i = 0; i < 80; ++i) {
        auto txn = db->Begin({GetParam()});
        Status s;
        const int ops = 1 + static_cast<int>(rng.Uniform(3));
        for (int o = 0; o < ops && s.ok(); ++o) {
          const uint64_t k = rng.Uniform(12);  // Includes missing keys.
          switch (rng.Uniform(4)) {
            case 0: {
              std::string v;
              s = txn->Get(table, EncodeU64Key(k), &v);
              if (s.IsNotFound()) s = Status::OK();
              break;
            }
            case 1:
              s = txn->Put(table, EncodeU64Key(k), EncodeI64(i));
              break;
            case 2: {
              s = txn->Delete(table, EncodeU64Key(k));
              if (s.IsNotFound()) s = Status::OK();
              break;
            }
            case 3: {
              const uint64_t lo = rng.Uniform(10);
              s = txn->Scan(table, EncodeU64Key(lo), EncodeU64Key(lo + 3),
                            [](Slice, Slice) { return true; });
              break;
            }
          }
        }
        if (s.ok()) {
          txn->Commit();
        } else if (txn->active()) {
          txn->Abort();
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  auto result = sgt::AnalyzeHistory(db->history()->Snapshot());
  EXPECT_TRUE(result.serializable)
      << sgt::DescribeResult(result);
  EXPECT_GT(result.committed_txns, 50u);  // The stress did real work.
}

INSTANTIATE_TEST_SUITE_P(
    SerializableLevels, HistoryOracleStressTest,
    ::testing::Values(IsolationLevel::kSerializableSSI,
                      IsolationLevel::kSerializable2PL),
    [](const ::testing::TestParamInfo<IsolationLevel>& info) {
      return info.param == IsolationLevel::kSerializableSSI ? "SSI" : "S2PL";
    });

/// Mixed-isolation stress (§3.8): SSI updates + SI read-only queries. The
/// update sub-history must stay serializable.
TEST(MixedIsolationStressTest, UpdateSubHistorySerializable) {
  DBOptions opts;
  opts.record_history = true;
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(opts, &db).ok());
  TableId table = 0;
  ASSERT_TRUE(db->CreateTable("t", &table).ok());
  {
    auto seed = db->Begin({IsolationLevel::kSnapshot});
    for (uint64_t i = 0; i < 8; ++i) {
      ASSERT_TRUE(seed->Insert(table, EncodeU64Key(i), EncodeI64(1)).ok());
    }
    ASSERT_TRUE(seed->Commit().ok());
  }
  std::vector<std::thread> threads;
  for (int t = 0; t < 2; ++t) {
    // Updaters at SSI.
    threads.emplace_back([&, t] {
      Random rng(61 + t);
      for (int i = 0; i < 100; ++i) {
        auto txn = db->Begin({IsolationLevel::kSerializableSSI});
        const uint64_t a = rng.Uniform(8);
        const uint64_t b = (a + 1 + rng.Uniform(6)) % 8;
        std::string v;
        Status s = txn->Get(table, EncodeU64Key(a), &v);
        if (s.ok()) s = txn->Put(table, EncodeU64Key(b), EncodeI64(i));
        if (s.ok()) {
          txn->Commit();
        } else if (txn->active()) {
          txn->Abort();
        }
      }
    });
    // Queries at plain SI: never abort.
    threads.emplace_back([&, t] {
      Random rng(81 + t);
      for (int i = 0; i < 100; ++i) {
        auto txn = db->Begin({IsolationLevel::kSnapshot});
        Status s = txn->Scan(table, EncodeU64Key(0), EncodeU64Key(7),
                             [](Slice, Slice) { return true; });
        EXPECT_TRUE(s.ok()) << s.ToString();
        EXPECT_TRUE(txn->Commit().ok());
      }
    });
  }
  for (auto& t : threads) t.join();

  // Filter the history to the SSI updates (queries recorded no writes, so
  // dropping them cannot hide update-only cycles; we analyze the full
  // history too, which may legitimately be non-serializable, §3.8).
  auto ops = db->history()->Snapshot();
  std::vector<sgt::HistoryOp> update_ops;
  std::set<TxnId> writers;
  for (const auto& op : ops) {
    if (op.type == sgt::OpType::kWrite) writers.insert(op.txn);
  }
  for (const auto& op : ops) {
    if (writers.count(op.txn) > 0) update_ops.push_back(op);
  }
  EXPECT_TRUE(sgt::AnalyzeHistory(update_ops).serializable);
}

}  // namespace
}  // namespace ssidb
