// Unit tests for src/storage: version-chain visibility, first-committer-wins
// evidence, tombstones, pruning, and the ordered table index (next-key
// queries that feed the gap-locking protocol).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/common/encoding.h"
#include "src/storage/table.h"
#include "src/storage/version.h"

namespace ssidb {
namespace {

/// Install an uncommitted version and stamp it committed at `cts`, the way
/// the transaction manager does.
Version* CommitVersion(VersionChain* chain, TxnId txn, Slice value,
                       Timestamp cts, bool tombstone = false) {
  bool replaced = false;
  Version* v = chain->InstallUncommitted(txn, value, tombstone, &replaced);
  v->commit_ts.store(cts);
  return v;
}

TEST(VersionChainTest, EmptyChainReadsNothing) {
  VersionChain chain;
  std::string value;
  ReadResult r = chain.Read(/*reader=*/1, /*read_ts=*/100, &value);
  EXPECT_FALSE(r.found);
  EXPECT_FALSE(r.own_write);
  EXPECT_TRUE(r.newer.empty());
}

TEST(VersionChainTest, SnapshotSeesVersionCommittedAtOrBeforeReadTs) {
  VersionChain chain;
  CommitVersion(&chain, 1, "v1", 10);
  std::string value;
  ReadResult r = chain.Read(2, 10, &value);
  EXPECT_TRUE(r.found);
  EXPECT_EQ(value, "v1");
  EXPECT_EQ(r.version_cts, 10u);
  r = chain.Read(2, 9, &value);
  EXPECT_FALSE(r.found);
}

TEST(VersionChainTest, SnapshotIgnoresNewerVersionsAndReportsThem) {
  // Fig 3.4 lines 8-9: the ignored newer versions are rw-conflict evidence.
  VersionChain chain;
  CommitVersion(&chain, 1, "v1", 10);
  CommitVersion(&chain, 2, "v2", 20);
  CommitVersion(&chain, 3, "v3", 30);
  std::string value;
  ReadResult r = chain.Read(9, /*read_ts=*/15, &value);
  EXPECT_TRUE(r.found);
  EXPECT_EQ(value, "v1");
  ASSERT_EQ(r.newer.size(), 2u);
  // Newest first.
  EXPECT_EQ(r.newer[0].creator_txn_id, 3u);
  EXPECT_EQ(r.newer[0].commit_ts, 30u);
  EXPECT_EQ(r.newer[1].creator_txn_id, 2u);
  EXPECT_EQ(r.newer[1].commit_ts, 20u);
}

TEST(VersionChainTest, ReaderSeesOwnUncommittedWrite) {
  VersionChain chain;
  CommitVersion(&chain, 1, "committed", 10);
  bool replaced = false;
  chain.InstallUncommitted(7, "mine", false, &replaced);
  EXPECT_FALSE(replaced);
  std::string value;
  ReadResult r = chain.Read(7, 15, &value);
  EXPECT_TRUE(r.found);
  EXPECT_TRUE(r.own_write);
  EXPECT_EQ(value, "mine");
  // Another reader does not see it.
  r = chain.Read(8, 15, &value);
  EXPECT_FALSE(r.own_write);
  EXPECT_EQ(value, "committed");
}

TEST(VersionChainTest, SecondOwnWriteReplacesInPlace) {
  VersionChain chain;
  bool replaced = false;
  chain.InstallUncommitted(7, "a", false, &replaced);
  EXPECT_FALSE(replaced);
  chain.InstallUncommitted(7, "b", false, &replaced);
  EXPECT_TRUE(replaced);
  EXPECT_EQ(chain.size(), 1u);
  std::string value;
  ReadResult r = chain.Read(7, 1, &value);
  EXPECT_EQ(value, "b");
}

TEST(VersionChainTest, UncommittedVersionInvisibleAfterRemove) {
  VersionChain chain;
  CommitVersion(&chain, 1, "v1", 10);
  bool replaced = false;
  chain.InstallUncommitted(7, "doomed", false, &replaced);
  chain.RemoveUncommitted(7);
  std::string value;
  ReadResult r = chain.Read(7, 15, &value);
  EXPECT_FALSE(r.own_write);
  EXPECT_EQ(value, "v1");
  EXPECT_EQ(chain.size(), 1u);
}

TEST(VersionChainTest, RemoveUncommittedIsNoOpWithoutOwnVersion) {
  VersionChain chain;
  CommitVersion(&chain, 1, "v1", 10);
  chain.RemoveUncommitted(42);
  EXPECT_EQ(chain.size(), 1u);
}

TEST(VersionChainTest, TombstoneHidesKeyButReportsVersion) {
  VersionChain chain;
  CommitVersion(&chain, 1, "v1", 10);
  CommitVersion(&chain, 2, "", 20, /*tombstone=*/true);
  std::string value;
  ReadResult r = chain.Read(9, 25, &value);
  EXPECT_FALSE(r.found);           // Deleted as of ts 25...
  EXPECT_EQ(r.version_cts, 20u);   // ...but the tombstone version is known.
  r = chain.Read(9, 15, &value);
  EXPECT_TRUE(r.found);            // Still visible before the delete.
  EXPECT_EQ(value, "v1");
  ASSERT_EQ(r.newer.size(), 1u);   // The tombstone is rw-conflict evidence.
  EXPECT_EQ(r.newer[0].creator_txn_id, 2u);
}

TEST(VersionChainTest, FirstCommitterWinsDetectsNewerCommit) {
  VersionChain chain;
  CommitVersion(&chain, 1, "v1", 10);
  EXPECT_TRUE(chain.HasCommittedVersionAfter(5));
  EXPECT_FALSE(chain.HasCommittedVersionAfter(10));
  EXPECT_FALSE(chain.HasCommittedVersionAfter(15));
}

TEST(VersionChainTest, LatestCommittedSkipsUncommittedHead) {
  VersionChain chain;
  CommitVersion(&chain, 1, "v1", 10);
  bool replaced = false;
  chain.InstallUncommitted(7, "pending", false, &replaced);
  Timestamp cts = 0;
  bool tomb = true;
  ASSERT_TRUE(chain.LatestCommitted(&cts, &tomb));
  EXPECT_EQ(cts, 10u);
  EXPECT_FALSE(tomb);
}

TEST(VersionChainTest, LatestCommittedFalseOnEmptyOrAllUncommitted) {
  VersionChain chain;
  Timestamp cts = 0;
  bool tomb = false;
  EXPECT_FALSE(chain.LatestCommitted(&cts, &tomb));
  bool replaced = false;
  chain.InstallUncommitted(7, "pending", false, &replaced);
  EXPECT_FALSE(chain.LatestCommitted(&cts, &tomb));
}

TEST(VersionChainTest, S2PLReadWithMaxTsSeesLatestCommitted) {
  VersionChain chain;
  CommitVersion(&chain, 1, "v1", 10);
  CommitVersion(&chain, 2, "v2", 20);
  std::string value;
  ReadResult r = chain.Read(9, kMaxTimestamp, &value);
  EXPECT_TRUE(r.found);
  EXPECT_EQ(value, "v2");
  EXPECT_TRUE(r.newer.empty());
}

TEST(VersionChainTest, PruneKeepsVersionsReachableBySnapshots) {
  VersionChain chain;
  CommitVersion(&chain, 1, "v1", 10);
  CommitVersion(&chain, 2, "v2", 20);
  CommitVersion(&chain, 3, "v3", 30);
  ASSERT_EQ(chain.size(), 3u);
  // A snapshot at 25 still needs v2 (newest <= 25), but not v1.
  EXPECT_EQ(chain.Prune(/*min_read_ts=*/25), 1u);
  EXPECT_EQ(chain.size(), 2u);
  std::string value;
  ReadResult r = chain.Read(9, 25, &value);
  EXPECT_EQ(value, "v2");
  // Snapshot at 35 only needs v3.
  EXPECT_EQ(chain.Prune(35), 1u);
  EXPECT_EQ(chain.size(), 1u);
  r = chain.Read(9, 35, &value);
  EXPECT_EQ(value, "v3");
}

TEST(VersionChainTest, PruneNeverDropsUncommittedOrNewestCommitted) {
  VersionChain chain;
  CommitVersion(&chain, 1, "v1", 10);
  bool replaced = false;
  chain.InstallUncommitted(7, "pending", false, &replaced);
  EXPECT_EQ(chain.Prune(kMaxTimestamp), 0u);
  EXPECT_EQ(chain.size(), 2u);
}

TEST(TableTest, FindAndGetOrCreate) {
  Table t(1, "t");
  EXPECT_EQ(t.Find("a"), nullptr);
  VersionChain* c = t.GetOrCreate("a");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(t.Find("a"), c);
  EXPECT_EQ(t.GetOrCreate("a"), c);
  EXPECT_EQ(t.EntryCount(), 1u);
}

TEST(TableTest, NextKeyFindsStrictSuccessor) {
  Table t(1, "t");
  t.GetOrCreate("b");
  t.GetOrCreate("d");
  t.GetOrCreate("f");
  EXPECT_EQ(t.NextKey("a").value(), "b");
  EXPECT_EQ(t.NextKey("b").value(), "d");
  EXPECT_EQ(t.NextKey("c").value(), "d");
  EXPECT_EQ(t.NextKey("e").value(), "f");
  EXPECT_FALSE(t.NextKey("f").has_value());  // Supremum.
  EXPECT_FALSE(t.NextKey("z").has_value());
}

TEST(TableTest, SeekCeil) {
  Table t(1, "t");
  t.GetOrCreate("b");
  t.GetOrCreate("d");
  EXPECT_EQ(t.SeekCeil("a").value(), "b");
  EXPECT_EQ(t.SeekCeil("b").value(), "b");
  EXPECT_EQ(t.SeekCeil("c").value(), "d");
  EXPECT_FALSE(t.SeekCeil("e").has_value());
}

TEST(TableTest, CollectRangeReturnsEntriesAndSuccessor) {
  Table t(1, "t");
  for (const char* k : {"a", "c", "e", "g"}) t.GetOrCreate(k);
  std::vector<ScanEntry> entries;
  std::optional<std::string> successor;
  t.CollectRange("b", "f", &entries, &successor);
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].key, "c");
  EXPECT_EQ(entries[1].key, "e");
  ASSERT_TRUE(successor.has_value());
  EXPECT_EQ(*successor, "g");

  // Range covering the tail reports the supremum.
  t.CollectRange("f", "z", &entries, &successor);
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].key, "g");
  EXPECT_FALSE(successor.has_value());
}

TEST(TableTest, CollectRangeInclusiveBounds) {
  Table t(1, "t");
  for (const char* k : {"a", "b", "c"}) t.GetOrCreate(k);
  std::vector<ScanEntry> entries;
  std::optional<std::string> successor;
  t.CollectRange("a", "c", &entries, &successor);
  EXPECT_EQ(entries.size(), 3u);
  EXPECT_FALSE(successor.has_value());
}

TEST(TableTest, CollectRangeEmptyRange) {
  Table t(1, "t");
  t.GetOrCreate("m");
  std::vector<ScanEntry> entries;
  std::optional<std::string> successor;
  t.CollectRange("a", "b", &entries, &successor);
  EXPECT_TRUE(entries.empty());
  ASSERT_TRUE(successor.has_value());
  EXPECT_EQ(*successor, "m");  // Phantom protection still has a next key.
}

TEST(TableTest, ForEachChainVisitsInOrder) {
  Table t(1, "t");
  for (const char* k : {"c", "a", "b"}) t.GetOrCreate(k);
  std::vector<std::string> keys;
  t.ForEachChain([&keys](const std::string& k, VersionChain*) {
    keys.push_back(k);
  });
  EXPECT_EQ(keys, (std::vector<std::string>{"a", "b", "c"}));
}

TEST(TableTest, PageOfMapsU64KeysContiguously) {
  // id / rows_per_page: ids 0..19 on page 0, 20..39 on page 1, ...
  EXPECT_EQ(Table::PageOf(EncodeU64Key(0), 20), 0u);
  EXPECT_EQ(Table::PageOf(EncodeU64Key(19), 20), 0u);
  EXPECT_EQ(Table::PageOf(EncodeU64Key(20), 20), 1u);
  EXPECT_EQ(Table::PageOf(EncodeU64Key(399), 20), 19u);
}

TEST(TableTest, PageOfNonU64KeysIsStable) {
  const uint64_t p = Table::PageOf("some-name-key", 20);
  EXPECT_EQ(Table::PageOf("some-name-key", 20), p);
}

/// Property sweep: for random key populations, NextKey agrees with a naive
/// reference computed from the sorted key list.
class TableNextKeyProperty : public ::testing::TestWithParam<int> {};

TEST_P(TableNextKeyProperty, MatchesNaiveReference) {
  const int n = GetParam();
  Table t(1, "t");
  std::vector<std::string> keys;
  for (int i = 0; i < n; ++i) {
    std::string k = EncodeU64Key(static_cast<uint64_t>(i) * 7919 % 1000);
    t.GetOrCreate(k);
    keys.push_back(k);
  }
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  for (uint64_t probe = 0; probe < 1000; probe += 13) {
    const std::string pk = EncodeU64Key(probe);
    auto it = std::upper_bound(keys.begin(), keys.end(), pk);
    auto got = t.NextKey(pk);
    if (it == keys.end()) {
      EXPECT_FALSE(got.has_value());
    } else {
      ASSERT_TRUE(got.has_value());
      EXPECT_EQ(*got, *it);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, TableNextKeyProperty,
                         ::testing::Values(1, 10, 100, 500));

/// Model-based property test: drive a VersionChain with a random script of
/// installs, commits, aborts and prunes, mirroring every step in a plain
/// vector model; visibility answers must always agree.
class VersionChainModelTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(VersionChainModelTest, AgreesWithReferenceModel) {
  struct ModelVersion {
    TxnId creator;
    Timestamp cts;  // 0 = uncommitted.
    bool tombstone;
    std::string value;
  };
  VersionChain chain;
  std::vector<ModelVersion> model;  // Oldest first.

  uint64_t seed = GetParam();
  auto next_rand = [&seed]() {
    seed = seed * 6364136223846793005ULL + 1442695040888963407ULL;
    return seed >> 33;
  };

  Timestamp clock = 0;
  TxnId next_txn = 1;
  TxnId pending = 0;  // At most one uncommitted writer (the write lock).
  Version* pending_version = nullptr;

  for (int step = 0; step < 400; ++step) {
    switch (next_rand() % 5) {
      case 0: {  // Install (or overwrite) an uncommitted version.
        if (pending == 0) {
          pending = next_txn++;
          model.push_back(ModelVersion{pending, 0, false, ""});
        }
        const bool tombstone = next_rand() % 4 == 0;
        const std::string value = "v" + std::to_string(next_rand() % 100);
        bool replaced = false;
        pending_version =
            chain.InstallUncommitted(pending, value, tombstone, &replaced);
        model.back() = ModelVersion{pending, 0, tombstone, value};
        break;
      }
      case 1: {  // Commit the pending version.
        if (pending != 0 && pending_version != nullptr) {
          pending_version->commit_ts.store(++clock);
          model.back().cts = clock;
          pending = 0;
          pending_version = nullptr;
        }
        break;
      }
      case 2: {  // Abort the pending version.
        if (pending != 0) {
          chain.RemoveUncommitted(pending);
          if (pending_version != nullptr) model.pop_back();
          pending = 0;
          pending_version = nullptr;
        }
        break;
      }
      case 3: {  // Prune at a random watermark.
        const Timestamp min_ts = next_rand() % (clock + 1);
        chain.Prune(min_ts);
        // Model prune: drop everything older than the newest committed
        // version with cts <= min_ts.
        int anchor = -1;
        for (int i = static_cast<int>(model.size()) - 1; i >= 0; --i) {
          if (model[i].cts != 0 && model[i].cts <= min_ts) {
            anchor = i;
            break;
          }
        }
        if (anchor > 0) {
          model.erase(model.begin(), model.begin() + anchor);
        }
        break;
      }
      case 4: {  // Probe: compare visibility at a random snapshot.
        const Timestamp read_ts = next_rand() % (clock + 2);
        const TxnId reader = 1000000 + next_rand() % 3;  // Never a writer.
        std::string got;
        ReadResult rr = chain.Read(reader, read_ts, &got);
        // Model answer: newest version with 0 < cts <= read_ts.
        const ModelVersion* expected = nullptr;
        for (int i = static_cast<int>(model.size()) - 1; i >= 0; --i) {
          if (model[i].cts != 0 && model[i].cts <= read_ts) {
            expected = &model[i];
            break;
          }
        }
        if (expected == nullptr) {
          ASSERT_FALSE(rr.found) << "step " << step;
        } else {
          ASSERT_EQ(rr.found, !expected->tombstone) << "step " << step;
          if (rr.found) ASSERT_EQ(got, expected->value) << "step " << step;
          ASSERT_EQ(rr.version_cts, expected->cts) << "step " << step;
        }
        // The newer-version report must list exactly the committed
        // versions above the snapshot, newest first.
        std::vector<Timestamp> expected_newer;
        for (int i = static_cast<int>(model.size()) - 1; i >= 0; --i) {
          if (model[i].cts > read_ts) expected_newer.push_back(model[i].cts);
        }
        ASSERT_EQ(rr.newer.size(), expected_newer.size()) << "step " << step;
        for (size_t i = 0; i < expected_newer.size(); ++i) {
          ASSERT_EQ(rr.newer[i].commit_ts, expected_newer[i]);
        }
        break;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VersionChainModelTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

}  // namespace
}  // namespace ssidb
