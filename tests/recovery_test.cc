// Durability subsystem tests: WAL segment format, checkpoint images, and
// the crash-recovery kill-point matrix.
//
// The kill-point tests fork a child process that opens a DB on a WAL
// directory, commits transactions, reports each *acknowledged* commit to
// the parent over a pipe, and then dies by _exit — skipping every
// destructor, exactly like a crash: the flusher thread is torn down
// mid-flight and nothing past the last write() survives in the log. The
// parent then reopens the directory and asserts the recovery contract:
//   * every acknowledged flushed commit is present, atomically, with its
//     original commit timestamp;
//   * no unacknowledged write is visible;
//   * without flush_on_commit, the recovered state is a clean prefix of
//     the acknowledged sequence (group commit preserves append order).

#include <gtest/gtest.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <functional>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "src/common/encoding.h"
#include "src/db/db.h"
#include "src/db/session.h"
#include "src/recovery/checkpoint.h"
#include "src/recovery/recovery.h"
#include "src/recovery/wal.h"
#include "src/workloads/sibench.h"
#include "src/workloads/tpcc_workload.h"

namespace ssidb {
namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// Harness helpers.
// ---------------------------------------------------------------------------

/// A fresh scratch directory, removed on destruction.
struct TempDir {
  TempDir() {
    char tmpl[] = "/tmp/ssidb_recovery_XXXXXX";
    path = mkdtemp(tmpl);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  std::string path;
};

DBOptions DurableOptions(const std::string& dir, bool flush_on_commit) {
  DBOptions opts;
  opts.log.wal_dir = dir;
  opts.log.flush_on_commit = flush_on_commit;
  return opts;
}

/// One acknowledgment from the child: a sequence number plus the commit
/// timestamp the engine assigned.
struct Ack {
  uint64_t seq = 0;
  uint64_t commit_ts = 0;
};

void SendAck(int fd, uint64_t seq, uint64_t commit_ts) {
  Ack a{seq, commit_ts};
  ssize_t n = write(fd, &a, sizeof(a));
  if (n != sizeof(a)) _exit(3);
}

struct ChildRun {
  std::vector<Ack> acks;
  int exit_code = -1;
};

/// Fork, run `body(ack_fd)` in the child (which must end in _exit), and
/// collect the acks the child streamed before dying.
ChildRun RunCrashingChild(const std::function<void(int)>& body) {
  int fds[2];
  EXPECT_EQ(pipe(fds), 0);
  fflush(nullptr);  // Do not duplicate buffered test output into the child.
  const pid_t pid = fork();
  EXPECT_GE(pid, 0);
  if (pid == 0) {
    close(fds[0]);
    body(fds[1]);
    _exit(0);
  }
  close(fds[1]);
  ChildRun run;
  Ack a;
  for (;;) {
    const ssize_t n = read(fds[0], &a, sizeof(a));
    if (n != sizeof(a)) break;
    run.acks.push_back(a);
  }
  close(fds[0]);
  int wstatus = 0;
  waitpid(pid, &wstatus, 0);
  run.exit_code = WIFEXITED(wstatus) ? WEXITSTATUS(wstatus) : -1;
  return run;
}

/// Keys written by kill-point transaction `seq`.
std::string TxnKey(uint64_t seq, int j) {
  return "txn" + std::to_string(seq) + ":k" + std::to_string(j);
}
std::string TxnValue(uint64_t seq, int j) {
  return "value-" + std::to_string(seq) + "-" + std::to_string(j);
}
constexpr int kKeysPerTxn = 3;

/// The child body shared by the kill-point tests: open the DB, commit
/// `txns` transactions of kKeysPerTxn keys each, ack each one, then start
/// one more transaction, write through it, and crash without committing.
void CommitterChild(const std::string& dir, bool flush_on_commit,
                    uint64_t txns, int ack_fd) {
  std::unique_ptr<DB> db;
  if (!DB::Open(DurableOptions(dir, flush_on_commit), &db).ok()) _exit(2);
  TableId t = 0;
  if (!db->CreateTable("kill", &t).ok()) _exit(2);
  for (uint64_t i = 1; i <= txns; ++i) {
    auto txn = db->Begin({IsolationLevel::kSerializableSSI});
    for (int j = 0; j < kKeysPerTxn; ++j) {
      if (!txn->Put(t, TxnKey(i, j), TxnValue(i, j)).ok()) _exit(2);
    }
    if (!txn->Commit().ok()) _exit(2);
    SendAck(ack_fd, i, txn->commit_ts());
  }
  // An unacknowledged, uncommitted transaction: must never be recovered.
  auto orphan = db->Begin({IsolationLevel::kSerializableSSI});
  for (int j = 0; j < kKeysPerTxn; ++j) {
    orphan->Put(t, TxnKey(txns + 1, j), TxnValue(txns + 1, j));
  }
  db.release();  // Crash: no destructors, no final flush.
  _exit(0);
}

/// Which of transactions 1..max_seq are fully present after recovery, and
/// assert per-transaction atomicity (all keys or none) and value fidelity.
std::vector<uint64_t> PresentTxns(DB* db, TableId t, uint64_t max_seq) {
  std::vector<uint64_t> present;
  auto txn = db->Begin({IsolationLevel::kSnapshot});
  for (uint64_t i = 1; i <= max_seq; ++i) {
    int found = 0;
    for (int j = 0; j < kKeysPerTxn; ++j) {
      std::string v;
      Status st = txn->Get(t, TxnKey(i, j), &v);
      if (st.ok()) {
        EXPECT_EQ(v, TxnValue(i, j));
        ++found;
      }
    }
    EXPECT_TRUE(found == 0 || found == kKeysPerTxn)
        << "transaction " << i << " recovered partially (" << found << "/"
        << kKeysPerTxn << " keys)";
    if (found == kKeysPerTxn) present.push_back(i);
  }
  EXPECT_TRUE(txn->Commit().ok());
  return present;
}

/// (name, size) of every file in `dir` — for asserting recovery writes
/// nothing.
std::map<std::string, uintmax_t> DirContents(const std::string& dir) {
  std::map<std::string, uintmax_t> out;
  for (const auto& entry : fs::directory_iterator(dir)) {
    out[entry.path().filename().string()] = fs::file_size(entry.path());
  }
  return out;
}

// ---------------------------------------------------------------------------
// WAL segment format.
// ---------------------------------------------------------------------------

LogRecord MakeCommitRecord(uint64_t seq) {
  LogRecord r;
  r.txn_id = seq;
  r.commit_ts = seq + 1000;
  r.redo.push_back(
      RedoEntry{0, "key" + std::to_string(seq), "val" + std::to_string(seq),
                false});
  return r;
}

TEST(WalTest, WriterReaderRoundTripWithRotation) {
  TempDir dir;
  const std::string wal = dir.path + "/wal";
  {
    recovery::WalWriter writer(wal, /*segment_bytes=*/128, /*fsync=*/false);
    std::vector<recovery::WalFrame> frames;
    for (uint64_t i = 1; i <= 20; ++i) {
      frames.push_back(recovery::MakeWalFrame(MakeCommitRecord(i)));
    }
    ASSERT_TRUE(writer.AppendBatch(frames).ok());
    EXPECT_GT(writer.segments_created(), 1u);  // 128-byte segments rotate.
  }
  std::vector<std::string> segments;
  ASSERT_TRUE(recovery::ListWalSegments(wal, &segments).ok());
  ASSERT_GT(segments.size(), 1u);
  uint64_t next = 1;
  for (const std::string& path : segments) {
    recovery::WalScanResult scan;
    ASSERT_TRUE(recovery::ScanWalSegment(path, &scan).ok());
    EXPECT_TRUE(scan.tail.ok()) << scan.tail.ToString();
    for (const LogRecord& r : scan.records) {
      EXPECT_EQ(r.txn_id, next);
      EXPECT_EQ(r.commit_ts, next + 1000);
      ++next;
    }
  }
  EXPECT_EQ(next, 21u);  // All 20 records, in order, across segments.
}

TEST(WalTest, NewWriterNeverAppendsToExistingSegments) {
  TempDir dir;
  const std::string wal = dir.path + "/wal";
  {
    recovery::WalWriter writer(wal, 1 << 20, false);
    ASSERT_TRUE(
        writer.AppendBatch({recovery::MakeWalFrame(MakeCommitRecord(1))})
            .ok());
  }
  {
    recovery::WalWriter writer(wal, 1 << 20, false);
    ASSERT_TRUE(
        writer.AppendBatch({recovery::MakeWalFrame(MakeCommitRecord(2))})
            .ok());
  }
  std::vector<std::string> segments;
  ASSERT_TRUE(recovery::ListWalSegments(wal, &segments).ok());
  // Each writer opened a fresh segment: a possibly-torn pre-crash tail is
  // never buried mid-segment.
  EXPECT_EQ(segments.size(), 2u);
}

TEST(WalTest, TornTailStopsScanCleanly) {
  TempDir dir;
  const std::string wal = dir.path + "/wal";
  {
    recovery::WalWriter writer(wal, 1 << 20, false);
    ASSERT_TRUE(
        writer
            .AppendBatch({recovery::MakeWalFrame(MakeCommitRecord(1)),
                          recovery::MakeWalFrame(MakeCommitRecord(2))})
            .ok());
  }
  std::vector<std::string> segments;
  ASSERT_TRUE(recovery::ListWalSegments(wal, &segments).ok());
  ASSERT_EQ(segments.size(), 1u);
  // Tear the final record: drop its last byte.
  const uintmax_t size = fs::file_size(segments[0]);
  fs::resize_file(segments[0], size - 1);
  recovery::WalScanResult scan;
  ASSERT_TRUE(recovery::ScanWalSegment(segments[0], &scan).ok());
  ASSERT_EQ(scan.records.size(), 1u);  // The complete prefix survives.
  EXPECT_EQ(scan.records[0].txn_id, 1u);
  EXPECT_TRUE(scan.tail.IsTruncated()) << scan.tail.ToString();
}

// ---------------------------------------------------------------------------
// Checkpoint images.
// ---------------------------------------------------------------------------

TEST(CheckpointTest, WriteLoadRoundTrip) {
  TempDir dir;
  Catalog catalog;
  TableId accounts = 0, audit = 0;
  ASSERT_TRUE(catalog.CreateTable("accounts", &accounts).ok());
  ASSERT_TRUE(catalog.CreateTable("audit", &audit).ok());
  catalog.table(accounts)->RecoverVersion("alice", "100", false, 5);
  catalog.table(accounts)->RecoverVersion("bob", "200", false, 7);
  // A tombstone at the watermark: the key is omitted from the image.
  catalog.table(accounts)->RecoverVersion("carol", "", true, 8);
  // Committed after the watermark: invisible to the sweep.
  catalog.table(audit)->RecoverVersion("evt1", "late", false, 50);

  ASSERT_TRUE(recovery::WriteCheckpoint(catalog, /*watermark=*/10,
                                        /*prev_watermark=*/0, dir.path, false)
                  .ok());

  recovery::CheckpointData data;
  bool found = false;
  ASSERT_TRUE(
      recovery::LoadLatestCheckpoint(dir.path, &data, &found).ok());
  ASSERT_TRUE(found);
  EXPECT_EQ(data.watermark, 10u);
  ASSERT_EQ(data.tables.size(), 2u);
  EXPECT_EQ(data.tables[0].name, "accounts");
  ASSERT_EQ(data.tables[0].entries.size(), 2u);  // carol's tombstone omitted
  EXPECT_EQ(data.tables[0].entries[0].key, "alice");
  EXPECT_EQ(data.tables[0].entries[0].value, "100");
  EXPECT_EQ(data.tables[0].entries[0].commit_ts, 5u);
  EXPECT_EQ(data.tables[1].name, "audit");
  EXPECT_TRUE(data.tables[1].entries.empty());  // ts 50 > watermark 10
}

TEST(CheckpointTest, DamagedNewerImageFallsBackToOlderValid) {
  TempDir dir;
  Catalog catalog;
  TableId t = 0;
  ASSERT_TRUE(catalog.CreateTable("t", &t).ok());
  catalog.table(t)->RecoverVersion("k", "v", false, 3);
  ASSERT_TRUE(recovery::WriteCheckpoint(catalog, 5, 0, dir.path, false).ok());

  // A "newer" checkpoint that a crash cut short: a valid prefix with no
  // footer, plus an abandoned .tmp. Neither may be trusted.
  const std::string valid =
      dir.path + "/" + recovery::CheckpointFileName(5);
  std::string prefix;
  {
    FILE* f = fopen(valid.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    char buf[4096];
    const size_t n = fread(buf, 1, sizeof(buf), f);
    fclose(f);
    prefix.assign(buf, n / 2);
  }
  const std::string torn =
      dir.path + "/" + recovery::CheckpointFileName(99);
  {
    FILE* f = fopen(torn.c_str(), "wb");
    fwrite(prefix.data(), 1, prefix.size(), f);
    fclose(f);
  }
  {
    FILE* f = fopen((torn + ".tmp").c_str(), "wb");
    fwrite(prefix.data(), 1, prefix.size(), f);
    fclose(f);
  }

  recovery::CheckpointData data;
  bool found = false;
  ASSERT_TRUE(
      recovery::LoadLatestCheckpoint(dir.path, &data, &found).ok());
  ASSERT_TRUE(found);
  EXPECT_EQ(data.watermark, 5u);  // The torn watermark-99 image was skipped.
}

// ---------------------------------------------------------------------------
// End-to-end recovery through DB::Open.
// ---------------------------------------------------------------------------

TEST(RecoveryTest, CleanCloseReopenRestoresEverything) {
  TempDir dir;
  Timestamp cts_alice = 0;
  {
    std::unique_ptr<DB> db;
    ASSERT_TRUE(
        DB::Open(DurableOptions(dir.path, /*flush=*/false), &db).ok());
    TableId t = 0;
    ASSERT_TRUE(db->CreateTable("t", &t).ok());
    auto txn = db->Begin();
    ASSERT_TRUE(txn->Put(t, "alice", "1").ok());
    ASSERT_TRUE(txn->Commit().ok());
    cts_alice = txn->commit_ts();
    auto txn2 = db->Begin();
    ASSERT_TRUE(txn2->Put(t, "bob", "2").ok());
    ASSERT_TRUE(txn2->Delete(t, "alice").ok());
    ASSERT_TRUE(txn2->Commit().ok());
    // Clean close: the LogManager destructor drains the pending batches.
  }
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(DurableOptions(dir.path, false), &db).ok());
  TableId t = 0;
  ASSERT_TRUE(db->FindTable("t", &t).ok());
  auto txn = db->Begin();
  std::string v;
  EXPECT_TRUE(txn->Get(t, "bob", &v).ok());
  EXPECT_EQ(v, "2");
  EXPECT_TRUE(txn->Get(t, "alice", &v).IsNotFound());  // Tombstone replayed.
  EXPECT_TRUE(txn->Commit().ok());
  // Original commit timestamps survive in the version chains.
  Timestamp cts = 0;
  bool tombstone = false;
  ASSERT_TRUE(
      db->table(t)->Find("alice")->LatestCommitted(&cts, &tombstone));
  EXPECT_TRUE(tombstone);
  EXPECT_GT(cts, cts_alice);
}

TEST(RecoveryTest, KillAfterFlushedCommitsRecoversAcknowledgedExactly) {
  TempDir dir;
  constexpr uint64_t kTxns = 25;
  ChildRun run = RunCrashingChild([&](int ack_fd) {
    CommitterChild(dir.path, /*flush_on_commit=*/true, kTxns, ack_fd);
  });
  ASSERT_EQ(run.exit_code, 0);
  ASSERT_EQ(run.acks.size(), kTxns);

  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(DurableOptions(dir.path, true), &db).ok());
  TableId t = 0;
  ASSERT_TRUE(db->FindTable("kill", &t).ok());
  // Every acknowledged commit is present (flush_on_commit: the ack implies
  // the record was fsynced); the orphan transaction is not.
  const std::vector<uint64_t> present =
      PresentTxns(db.get(), t, kTxns + 1);
  ASSERT_EQ(present.size(), kTxns);
  for (uint64_t i = 0; i < kTxns; ++i) EXPECT_EQ(present[i], i + 1);
  // Original commit timestamps survive recovery.
  for (const Ack& a : run.acks) {
    Timestamp cts = 0;
    ASSERT_TRUE(db->table(t)
                    ->Find(TxnKey(a.seq, 0))
                    ->LatestCommitted(&cts, nullptr));
    EXPECT_EQ(cts, a.commit_ts) << "txn " << a.seq;
  }
  // New transactions draw timestamps above every recovered commit.
  auto txn = db->Begin();
  ASSERT_TRUE(txn->Put(t, "post", "1").ok());
  ASSERT_TRUE(txn->Commit().ok());
  EXPECT_GT(txn->commit_ts(), run.acks.back().commit_ts);
}

TEST(RecoveryTest, KillBeforeFlushRecoversCleanPrefix) {
  TempDir dir;
  constexpr uint64_t kTxns = 40;
  ChildRun run = RunCrashingChild([&](int ack_fd) {
    CommitterChild(dir.path, /*flush_on_commit=*/false, kTxns, ack_fd);
  });
  ASSERT_EQ(run.exit_code, 0);
  ASSERT_EQ(run.acks.size(), kTxns);

  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(DurableOptions(dir.path, false), &db).ok());
  TableId t = 0;
  // Without flush_on_commit the tail may be lost — but what survives must
  // be a gap-free prefix of the acknowledged sequence, each transaction
  // atomic. (The table itself may be lost if the crash beat the flusher.)
  if (db->FindTable("kill", &t).IsNotFound()) return;
  const std::vector<uint64_t> present =
      PresentTxns(db.get(), t, kTxns + 1);
  EXPECT_LE(present.size(), kTxns);
  for (size_t i = 0; i < present.size(); ++i) {
    EXPECT_EQ(present[i], i + 1) << "recovered set is not a prefix";
  }
}

TEST(RecoveryTest, TornFinalRecordLosesOnlyTheLastCommit) {
  TempDir dir;
  constexpr uint64_t kTxns = 8;
  ChildRun run = RunCrashingChild([&](int ack_fd) {
    CommitterChild(dir.path, true, kTxns, ack_fd);
  });
  ASSERT_EQ(run.exit_code, 0);
  // Tear the final record of the newest segment, as a crash mid-write
  // would.
  std::vector<std::string> segments;
  ASSERT_TRUE(recovery::ListWalSegments(dir.path, &segments).ok());
  ASSERT_FALSE(segments.empty());
  const std::string& last = segments.back();
  fs::resize_file(last, fs::file_size(last) - 3);

  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(DurableOptions(dir.path, true), &db).ok());
  EXPECT_TRUE(db->recovery_stats().torn_tail);
  TableId t = 0;
  ASSERT_TRUE(db->FindTable("kill", &t).ok());
  const std::vector<uint64_t> present =
      PresentTxns(db.get(), t, kTxns + 1);
  // Exactly the acknowledged prefix minus the single torn record.
  ASSERT_EQ(present.size(), kTxns - 1);
  for (size_t i = 0; i < present.size(); ++i) EXPECT_EQ(present[i], i + 1);
}

TEST(RecoveryTest, TornTailIsRepairedSoLaterSessionsStillOpen) {
  // The session after a crash tolerates the torn tail; because recovery
  // truncates it, the session after THAT (whose newest segment is now a
  // later one) must not find the tear mid-log and refuse to open.
  TempDir dir;
  constexpr uint64_t kTxns = 6;
  ChildRun run = RunCrashingChild([&](int ack_fd) {
    CommitterChild(dir.path, true, kTxns, ack_fd);
  });
  ASSERT_EQ(run.exit_code, 0);
  std::vector<std::string> segments;
  ASSERT_TRUE(recovery::ListWalSegments(dir.path, &segments).ok());
  const std::string& first_log = segments.back();
  fs::resize_file(first_log, fs::file_size(first_log) - 3);  // The tear.

  // Session 2: opens past the tear, writes (a new segment), closes clean.
  {
    std::unique_ptr<DB> db;
    ASSERT_TRUE(DB::Open(DurableOptions(dir.path, true), &db).ok());
    EXPECT_TRUE(db->recovery_stats().torn_tail);
    TableId t = 0;
    ASSERT_TRUE(db->FindTable("kill", &t).ok());
    auto txn = db->Begin();
    ASSERT_TRUE(txn->Put(t, "session2", "alive").ok());
    ASSERT_TRUE(txn->Commit().ok());
  }
  // Session 3: the once-torn segment is no longer the newest; it must
  // scan clean (repaired), not fail as mid-log corruption.
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(DurableOptions(dir.path, true), &db).ok());
  EXPECT_FALSE(db->recovery_stats().torn_tail);
  TableId t = 0;
  ASSERT_TRUE(db->FindTable("kill", &t).ok());
  EXPECT_EQ(PresentTxns(db.get(), t, kTxns).size(), kTxns - 1);
  auto txn = db->Begin({IsolationLevel::kSnapshot});
  std::string v;
  EXPECT_TRUE(txn->Get(t, "session2", &v).ok());
  EXPECT_EQ(v, "alive");
  EXPECT_TRUE(txn->Commit().ok());
}

TEST(RecoveryTest, CheckpointGarbageCollectsCoveredSegments) {
  TempDir dir;
  DBOptions opts = DurableOptions(dir.path, true);
  opts.log.wal_segment_bytes = 96;  // Tiny: force many segments.
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(opts, &db).ok());
  TableId t = 0;
  ASSERT_TRUE(db->CreateTable("t", &t).ok());
  for (int i = 0; i < 30; ++i) {
    auto txn = db->Begin();
    ASSERT_TRUE(txn->Put(t, "k" + std::to_string(i), "v").ok());
    ASSERT_TRUE(txn->Commit().ok());
  }
  std::vector<std::string> before;
  ASSERT_TRUE(recovery::ListWalSegments(dir.path, &before).ok());
  ASSERT_GT(before.size(), 3u);
  const uint64_t scans_before = recovery::ScanWalSegmentCalls();
  ASSERT_TRUE(db->Checkpoint().ok());
  // Metadata-driven GC: coverage was decided from per-segment counters,
  // never by re-reading a segment from disk.
  EXPECT_EQ(recovery::ScanWalSegmentCalls(), scans_before);
  std::vector<std::string> after;
  ASSERT_TRUE(recovery::ListWalSegments(dir.path, &after).ok());
  // Every sealed segment is covered by the base image — including the
  // first one, whose table-create record binds an id the image captured
  // (the create-watermark rule). Only the flusher's live (highest)
  // segment survives.
  EXPECT_LT(after.size(), before.size());
  ASSERT_EQ(after.size(), 1u);
  uint64_t remaining_seq = 0;
  ASSERT_TRUE(recovery::ParseWalSegmentSeq(after[0], &remaining_seq));
  EXPECT_GT(remaining_seq, 1u);  // Segment 1 (the create) was reclaimed.
  EXPECT_GT(db->wal_segments_deleted(), 0u);
  EXPECT_EQ(db->GetStats().wal_segments_deleted, db->wal_segments_deleted());
  db.reset();

  // The pruned directory still recovers everything.
  std::unique_ptr<DB> reopened;
  ASSERT_TRUE(DB::Open(DurableOptions(dir.path, true), &reopened).ok());
  EXPECT_TRUE(reopened->recovery_stats().used_checkpoint);
  ASSERT_TRUE(reopened->FindTable("t", &t).ok());
  auto txn = reopened->Begin({IsolationLevel::kSnapshot});
  std::string v;
  for (int i = 0; i < 30; ++i) {
    EXPECT_TRUE(txn->Get(t, "k" + std::to_string(i), &v).ok()) << i;
  }
  EXPECT_TRUE(txn->Commit().ok());
}

TEST(WalTest, SegmentMetadataTracksCommitsAndCreates) {
  TempDir dir;
  const std::string wal = dir.path + "/wal";
  recovery::WalWriter writer(wal, /*segment_bytes=*/128, /*fsync=*/false);
  LogRecord create;
  create.type = LogRecordType::kTableCreate;
  create.redo.push_back(RedoEntry{3, "orders", "", false});
  std::vector<recovery::WalFrame> frames{recovery::MakeWalFrame(create)};
  for (uint64_t i = 1; i <= 10; ++i) {
    frames.push_back(recovery::MakeWalFrame(MakeCommitRecord(i)));
  }
  ASSERT_TRUE(writer.AppendBatch(frames).ok());
  const auto meta = writer.SegmentMetadata();
  ASSERT_GT(meta.size(), 1u);  // 128-byte segments rotate.
  uint64_t records = 0;
  Timestamp max_cts = 0, min_cts = 0;
  bool create_seen = false;
  uint32_t max_created_id = 0;
  for (const auto& [seq, m] : meta) {
    EXPECT_EQ(m.seq, seq);
    records += m.record_count;
    if (m.max_commit_ts > max_cts) max_cts = m.max_commit_ts;
    if (m.min_commit_ts != 0 &&
        (min_cts == 0 || m.min_commit_ts < min_cts)) {
      min_cts = m.min_commit_ts;
    }
    if (m.has_table_create) {
      create_seen = true;
      if (m.max_table_id_created > max_created_id) {
        max_created_id = m.max_table_id_created;
      }
    }
  }
  EXPECT_EQ(records, 11u);
  EXPECT_EQ(min_cts, 1001u);  // MakeCommitRecord(i) commits at i + 1000.
  EXPECT_EQ(max_cts, 1010u);
  EXPECT_TRUE(create_seen);
  EXPECT_EQ(max_created_id, 3u);
}

TEST(CheckpointTest, DeltaRoundTripChainsOffBaseWithTombstones) {
  TempDir dir;
  Catalog catalog;
  TableId t = 0;
  ASSERT_TRUE(catalog.CreateTable("t", &t).ok());
  catalog.table(t)->RecoverVersion("a", "1", false, 5);
  catalog.table(t)->RecoverVersion("c", "x", false, 4);
  // Base at watermark 10 captures a@5 and c@4.
  ASSERT_TRUE(recovery::WriteCheckpoint(catalog, 10, 0, dir.path, false).ok());
  // Window (10, 20]: b inserted, c deleted; a untouched.
  catalog.table(t)->RecoverVersion("b", "2", false, 12);
  catalog.table(t)->RecoverVersion("c", "", true, 13);
  recovery::CheckpointWriteResult res;
  ASSERT_TRUE(
      recovery::WriteCheckpoint(catalog, 20, /*prev=*/10, dir.path, false,
                                &res)
          .ok());
  EXPECT_EQ(res.entries, 2u);  // b + c's tombstone; a is in the base cut.

  recovery::LoadedCheckpointChain chain;
  bool found = false;
  ASSERT_TRUE(recovery::LoadCheckpointChain(dir.path, &chain, &found).ok());
  ASSERT_TRUE(found);
  EXPECT_EQ(chain.base.watermark, 10u);
  ASSERT_EQ(chain.deltas.size(), 1u);
  EXPECT_EQ(chain.tip, 20u);
  EXPECT_FALSE(chain.truncated);
  const recovery::CheckpointData& delta = chain.deltas[0];
  EXPECT_EQ(delta.prev_watermark, 10u);
  ASSERT_EQ(delta.tables.size(), 1u);
  ASSERT_EQ(delta.tables[0].entries.size(), 2u);
  EXPECT_EQ(delta.tables[0].entries[0].key, "b");
  EXPECT_EQ(delta.tables[0].entries[0].value, "2");
  EXPECT_FALSE(delta.tables[0].entries[0].tombstone);
  EXPECT_EQ(delta.tables[0].entries[1].key, "c");
  EXPECT_TRUE(delta.tables[0].entries[1].tombstone);
  EXPECT_EQ(delta.tables[0].entries[1].commit_ts, 13u);
}

TEST(RecoveryTest, DeltaCheckpointIsIncrementalAndGcScanFree) {
  TempDir dir;
  constexpr int kKeys = 1200;
  constexpr int kTouched = 9;
  DBOptions opts = DurableOptions(dir.path, /*flush=*/false);
  opts.log.checkpoint_max_deltas = 8;
  uint64_t base_bytes = 0, delta_bytes = 0;
  {
    std::unique_ptr<DB> db;
    ASSERT_TRUE(DB::Open(opts, &db).ok());
    TableId t = 0;
    ASSERT_TRUE(db->CreateTable("t", &t).ok());
    const std::string pad(48, 'v');
    for (int i = 0; i < kKeys; i += 100) {
      auto txn = db->Begin();
      for (int j = i; j < i + 100; ++j) {
        ASSERT_TRUE(txn->Put(t, "key" + std::to_string(j), pad).ok());
      }
      ASSERT_TRUE(txn->Commit().ok());
    }
    const uint64_t scans_before = recovery::ScanWalSegmentCalls();
    ASSERT_TRUE(db->Checkpoint().ok());  // First image: a full base, O(N).
    base_bytes = db->checkpoint_bytes_written();
    auto touch = db->Begin();
    for (int j = 0; j < kTouched; ++j) {
      ASSERT_TRUE(
          touch->Put(t, "key" + std::to_string(j), "updated").ok());
    }
    ASSERT_TRUE(touch->Commit().ok());
    ASSERT_TRUE(db->Checkpoint().ok());  // Second image: a delta, O(k).
    delta_bytes = db->checkpoint_bytes_written() - base_bytes;
    // Incrementality, demonstrated: the delta after touching k of N keys
    // is a small fraction of the base sweep.
    EXPECT_GT(delta_bytes, 0u);
    EXPECT_LT(delta_bytes * 20, base_bytes);
    // O(1) GC: no ScanWalSegment re-read happened in either checkpoint.
    EXPECT_EQ(recovery::ScanWalSegmentCalls(), scans_before);
    EXPECT_EQ(db->GetStats().checkpoints_taken, 2u);
    EXPECT_EQ(db->GetStats().checkpoint_bytes_written,
              base_bytes + delta_bytes);
    // A checkpoint with nothing new is a no-op, not an empty delta.
    ASSERT_TRUE(db->Checkpoint().ok());
    EXPECT_EQ(db->checkpoints_taken(), 2u);
  }
  // The delta file exists on disk alongside the base.
  bool saw_delta = false;
  for (const auto& entry : fs::directory_iterator(dir.path)) {
    Timestamp prev = 0, wm = 0;
    if (recovery::ParseDeltaCheckpointFileName(
            entry.path().filename().string(), &prev, &wm)) {
      saw_delta = true;
      EXPECT_GT(prev, 0u);
      EXPECT_GT(wm, prev);
    }
  }
  EXPECT_TRUE(saw_delta);

  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(opts, &db).ok());
  EXPECT_TRUE(db->recovery_stats().used_checkpoint);
  EXPECT_EQ(db->recovery_stats().delta_links_applied, 1u);
  EXPECT_GT(db->recovery_stats().base_watermark, 0u);
  EXPECT_GT(db->recovery_stats().checkpoint_ts,
            db->recovery_stats().base_watermark);
  TableId t = 0;
  ASSERT_TRUE(db->FindTable("t", &t).ok());
  auto txn = db->Begin({IsolationLevel::kSnapshot});
  std::string v;
  for (int j = 0; j < kKeys; ++j) {
    ASSERT_TRUE(txn->Get(t, "key" + std::to_string(j), &v).ok()) << j;
    EXPECT_EQ(v, j < kTouched ? "updated" : std::string(48, 'v')) << j;
  }
  EXPECT_TRUE(txn->Commit().ok());
}

TEST(RecoveryTest, DeltaChainCompactsIntoFreshBase) {
  TempDir dir;
  DBOptions opts = DurableOptions(dir.path, false);
  opts.log.checkpoint_max_deltas = 2;
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(opts, &db).ok());
  TableId t = 0;
  ASSERT_TRUE(db->CreateTable("t", &t).ok());
  const auto commit_one = [&](const std::string& key) {
    auto txn = db->Begin();
    ASSERT_TRUE(txn->Put(t, key, "v").ok());
    ASSERT_TRUE(txn->Commit().ok());
  };
  // base, delta, delta, then the chain is full: the 4th image compacts.
  for (int i = 0; i < 4; ++i) {
    commit_one("k" + std::to_string(i));
    ASSERT_TRUE(db->Checkpoint().ok());
  }
  EXPECT_EQ(db->checkpoints_taken(), 4u);
  size_t bases = 0, deltas = 0;
  for (const auto& entry : fs::directory_iterator(dir.path)) {
    const std::string name = entry.path().filename().string();
    Timestamp a = 0, b = 0;
    if (recovery::ParseDeltaCheckpointFileName(name, &a, &b)) {
      ++deltas;
    } else if (name.rfind("checkpoint-", 0) == 0 &&
               name.find(".ckpt") != std::string::npos &&
               name.find(".tmp") == std::string::npos) {
      ++bases;
    }
  }
  // Compaction superseded the old base and its whole delta chain.
  EXPECT_EQ(bases, 1u);
  EXPECT_EQ(deltas, 0u);
  db.reset();
  std::unique_ptr<DB> reopened;
  ASSERT_TRUE(DB::Open(opts, &reopened).ok());
  EXPECT_TRUE(reopened->recovery_stats().used_checkpoint);
  EXPECT_EQ(reopened->recovery_stats().delta_links_applied, 0u);
  ASSERT_TRUE(reopened->FindTable("t", &t).ok());
  auto txn = reopened->Begin({IsolationLevel::kSnapshot});
  std::string v;
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(txn->Get(t, "k" + std::to_string(i), &v).ok()) << i;
  }
  EXPECT_TRUE(txn->Commit().ok());
}

TEST(RecoveryTest, CrashBetweenBaseAndDeltaRecoversBasePlusWal) {
  TempDir dir;
  constexpr uint64_t kTxns = 12;
  ChildRun run = RunCrashingChild([&](int ack_fd) {
    std::unique_ptr<DB> db;
    DBOptions opts = DurableOptions(dir.path, true);
    opts.log.checkpoint_max_deltas = 8;
    if (!DB::Open(opts, &db).ok()) _exit(2);
    TableId t = 0;
    if (!db->CreateTable("kill", &t).ok()) _exit(2);
    for (uint64_t i = 1; i <= kTxns; ++i) {
      auto txn = db->Begin();
      for (int j = 0; j < kKeysPerTxn; ++j) {
        if (!txn->Put(t, TxnKey(i, j), TxnValue(i, j)).ok()) _exit(2);
      }
      if (!txn->Commit().ok()) _exit(2);
      SendAck(ack_fd, i, txn->commit_ts());
      if (i == kTxns / 2) {
        if (!db->Checkpoint().ok()) _exit(2);  // The base image.
      }
    }
    db.release();  // Crash before any delta is written.
    _exit(0);
  });
  ASSERT_EQ(run.exit_code, 0);

  DBOptions opts = DurableOptions(dir.path, true);
  opts.log.checkpoint_max_deltas = 8;
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(opts, &db).ok());
  EXPECT_TRUE(db->recovery_stats().used_checkpoint);
  EXPECT_EQ(db->recovery_stats().delta_links_applied, 0u);
  EXPECT_EQ(db->recovery_stats().checkpoint_ts,
            db->recovery_stats().base_watermark);
  TableId t = 0;
  ASSERT_TRUE(db->FindTable("kill", &t).ok());
  // Base covers the first half; WAL replay past it restores the rest.
  ASSERT_EQ(PresentTxns(db.get(), t, kTxns + 1).size(), kTxns);
}

TEST(RecoveryTest, KillMidDeltaWriteFallsBackToBasePlusWal) {
  TempDir dir;
  constexpr uint64_t kTxns = 16;
  ChildRun run = RunCrashingChild([&](int ack_fd) {
    std::unique_ptr<DB> db;
    DBOptions opts = DurableOptions(dir.path, true);
    opts.log.checkpoint_max_deltas = 8;
    if (!DB::Open(opts, &db).ok()) _exit(2);
    TableId t = 0;
    if (!db->CreateTable("kill", &t).ok()) _exit(2);
    for (uint64_t i = 1; i <= kTxns; ++i) {
      auto txn = db->Begin();
      for (int j = 0; j < kKeysPerTxn; ++j) {
        if (!txn->Put(t, TxnKey(i, j), TxnValue(i, j)).ok()) _exit(2);
      }
      if (!txn->Commit().ok()) _exit(2);
      SendAck(ack_fd, i, txn->commit_ts());
      if (i == kTxns / 4) {
        if (!db->Checkpoint().ok()) _exit(2);  // Base.
      } else if (i == kTxns / 2) {
        if (!db->Checkpoint().ok()) _exit(2);  // Delta.
      }
    }
    db.release();
    _exit(0);
  });
  ASSERT_EQ(run.exit_code, 0);

  // Simulate the checkpointer dying mid-delta-write: truncate the delta so
  // its footer is gone, and strand a .tmp from a younger attempt.
  bool damaged = false;
  for (const auto& entry : fs::directory_iterator(dir.path)) {
    Timestamp prev = 0, wm = 0;
    if (recovery::ParseDeltaCheckpointFileName(
            entry.path().filename().string(), &prev, &wm)) {
      const size_t half = static_cast<size_t>(fs::file_size(entry.path()) / 2);
      std::string partial;
      {
        FILE* f = fopen(entry.path().string().c_str(), "rb");
        ASSERT_NE(f, nullptr);
        partial.resize(half);
        ASSERT_EQ(fread(partial.data(), 1, half, f), half);
        fclose(f);
      }
      {
        FILE* f = fopen((entry.path().string() + ".tmp").c_str(), "wb");
        fwrite(partial.data(), 1, partial.size(), f);
        fclose(f);
      }
      fs::resize_file(entry.path(), half);
      damaged = true;
    }
  }
  ASSERT_TRUE(damaged);

  DBOptions opts = DurableOptions(dir.path, true);
  opts.log.checkpoint_max_deltas = 8;
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(opts, &db).ok());
  // The chain was cut before the torn delta; the base plus WAL replay
  // (segment GC never reclaims past the base watermark) restores all.
  EXPECT_TRUE(db->recovery_stats().used_checkpoint);
  EXPECT_TRUE(db->recovery_stats().chain_truncated);
  EXPECT_EQ(db->recovery_stats().delta_links_applied, 0u);
  TableId t = 0;
  ASSERT_TRUE(db->FindTable("kill", &t).ok());
  ASSERT_EQ(PresentTxns(db.get(), t, kTxns + 1).size(), kTxns);
}

TEST(RecoveryTest, DamagedMiddleDeltaLinkFallsBackToOlderCutPlusWal) {
  TempDir dir;
  DBOptions opts = DurableOptions(dir.path, true);
  opts.log.checkpoint_max_deltas = 8;
  constexpr int kBatches = 5;  // base + 3 deltas, batch 5 only in the WAL.
  {
    std::unique_ptr<DB> db;
    ASSERT_TRUE(DB::Open(opts, &db).ok());
    TableId t = 0;
    ASSERT_TRUE(db->CreateTable("t", &t).ok());
    for (int b = 0; b < kBatches; ++b) {
      auto txn = db->Begin();
      for (int j = 0; j < 4; ++j) {
        ASSERT_TRUE(txn->Put(t,
                             "b" + std::to_string(b) + ":" +
                                 std::to_string(j),
                             "v" + std::to_string(b))
                        .ok());
      }
      ASSERT_TRUE(txn->Commit().ok());
      if (b < kBatches - 1) {
        ASSERT_TRUE(db->Checkpoint().ok());
      }
    }
    ASSERT_EQ(db->checkpoints_taken(), 4u);
  }
  // Damage the *middle* delta link (the second of three by watermark).
  std::vector<std::pair<Timestamp, std::string>> deltas;
  for (const auto& entry : fs::directory_iterator(dir.path)) {
    Timestamp prev = 0, wm = 0;
    if (recovery::ParseDeltaCheckpointFileName(
            entry.path().filename().string(), &prev, &wm)) {
      deltas.emplace_back(wm, entry.path().string());
    }
  }
  ASSERT_EQ(deltas.size(), 3u);
  std::sort(deltas.begin(), deltas.end());
  {
    const std::string& middle = deltas[1].second;
    FILE* f = fopen(middle.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    const long mid = static_cast<long>(fs::file_size(middle) / 2);
    fseek(f, mid, SEEK_SET);
    const int original = fgetc(f);
    fseek(f, mid, SEEK_SET);
    fputc(original ^ 0x5a, f);
    fclose(f);
  }

  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(opts, &db).ok());
  EXPECT_TRUE(db->recovery_stats().used_checkpoint);
  // Chain cut at the damaged middle link: only the first delta applied...
  EXPECT_EQ(db->recovery_stats().delta_links_applied, 1u);
  EXPECT_TRUE(db->recovery_stats().chain_truncated);
  EXPECT_EQ(db->recovery_stats().checkpoint_ts, deltas[0].first);
  // ...and WAL replay past the older cut still restores every batch.
  TableId t = 0;
  ASSERT_TRUE(db->FindTable("t", &t).ok());
  auto txn = db->Begin({IsolationLevel::kSnapshot});
  std::string v;
  for (int b = 0; b < kBatches; ++b) {
    for (int j = 0; j < 4; ++j) {
      ASSERT_TRUE(
          txn->Get(t, "b" + std::to_string(b) + ":" + std::to_string(j), &v)
              .ok())
          << b << ":" << j;
      EXPECT_EQ(v, "v" + std::to_string(b));
    }
  }
  EXPECT_TRUE(txn->Commit().ok());
}

TEST(RecoveryTest, CorruptFinalRecordIsAlsoATornWrite) {
  // A torn write need not be short: the crash can leave a full-length
  // frame of garbage (partial sector). Damage — not truncation — at the
  // newest segment's tail must recover like a torn tail, losing only the
  // damaged record.
  TempDir dir;
  constexpr uint64_t kTxns = 8;
  ChildRun run = RunCrashingChild([&](int ack_fd) {
    CommitterChild(dir.path, true, kTxns, ack_fd);
  });
  ASSERT_EQ(run.exit_code, 0);
  std::vector<std::string> segments;
  ASSERT_TRUE(recovery::ListWalSegments(dir.path, &segments).ok());
  ASSERT_FALSE(segments.empty());
  const std::string& last = segments.back();
  {
    FILE* f = fopen(last.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    const long pos = static_cast<long>(fs::file_size(last)) - 5;
    fseek(f, pos, SEEK_SET);
    const int original = fgetc(f);
    fseek(f, pos, SEEK_SET);
    fputc(original ^ 0x5a, f);
    fclose(f);
  }
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(DurableOptions(dir.path, true), &db).ok());
  EXPECT_TRUE(db->recovery_stats().torn_tail);
  TableId t = 0;
  ASSERT_TRUE(db->FindTable("kill", &t).ok());
  const std::vector<uint64_t> present =
      PresentTxns(db.get(), t, kTxns + 1);
  ASSERT_EQ(present.size(), kTxns - 1);
  for (size_t i = 0; i < present.size(); ++i) EXPECT_EQ(present[i], i + 1);
}

TEST(RecoveryTest, MidLogCorruptionFailsOpen) {
  TempDir dir;
  {
    // Tiny segments force multiple files.
    DBOptions opts = DurableOptions(dir.path, true);
    opts.log.wal_segment_bytes = 96;
    std::unique_ptr<DB> db;
    ASSERT_TRUE(DB::Open(opts, &db).ok());
    TableId t = 0;
    ASSERT_TRUE(db->CreateTable("t", &t).ok());
    for (int i = 0; i < 10; ++i) {
      auto txn = db->Begin();
      ASSERT_TRUE(
          txn->Put(t, "k" + std::to_string(i), "v").ok());
      ASSERT_TRUE(txn->Commit().ok());
    }
  }
  std::vector<std::string> segments;
  ASSERT_TRUE(recovery::ListWalSegments(dir.path, &segments).ok());
  ASSERT_GT(segments.size(), 1u);
  // Damage a byte in the middle of the FIRST segment: not a torn tail, and
  // recovery must refuse rather than resurrect a hole-y history.
  {
    FILE* f = fopen(segments[0].c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    const long mid = static_cast<long>(fs::file_size(segments[0]) / 2);
    fseek(f, mid, SEEK_SET);
    const int original = fgetc(f);
    fseek(f, mid, SEEK_SET);
    fputc(original ^ 0x5a, f);  // XOR: guaranteed to change the byte.
    fclose(f);
  }
  std::unique_ptr<DB> db;
  EXPECT_TRUE(DB::Open(DurableOptions(dir.path, true), &db).IsCorruption());
}

TEST(RecoveryTest, KillMidCheckpointFallsBackToWal) {
  TempDir dir;
  constexpr uint64_t kTxns = 12;
  ChildRun run = RunCrashingChild([&](int ack_fd) {
    std::unique_ptr<DB> db;
    if (!DB::Open(DurableOptions(dir.path, true), &db).ok()) _exit(2);
    TableId t = 0;
    if (!db->CreateTable("kill", &t).ok()) _exit(2);
    for (uint64_t i = 1; i <= kTxns; ++i) {
      auto txn = db->Begin();
      for (int j = 0; j < kKeysPerTxn; ++j) {
        if (!txn->Put(t, TxnKey(i, j), TxnValue(i, j)).ok()) _exit(2);
      }
      if (!txn->Commit().ok()) _exit(2);
      SendAck(ack_fd, i, txn->commit_ts());
      if (i == kTxns / 2) {
        if (!db->Checkpoint().ok()) _exit(2);
      }
    }
    db.release();
    _exit(0);
  });
  ASSERT_EQ(run.exit_code, 0);

  // Simulate the checkpointer dying mid-write: truncate the image so its
  // footer is gone, and strand a .tmp from a second, younger attempt.
  bool damaged = false;
  for (const auto& entry : fs::directory_iterator(dir.path)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("checkpoint-", 0) == 0 &&
        name.find(".ckpt") != std::string::npos) {
      fs::resize_file(entry.path(), fs::file_size(entry.path()) / 2);
      damaged = true;
    }
  }
  ASSERT_TRUE(damaged);

  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(DurableOptions(dir.path, true), &db).ok());
  // The WAL alone reconstructs everything the damaged image covered.
  EXPECT_FALSE(db->recovery_stats().used_checkpoint);
  TableId t = 0;
  ASSERT_TRUE(db->FindTable("kill", &t).ok());
  const std::vector<uint64_t> present =
      PresentTxns(db.get(), t, kTxns + 1);
  ASSERT_EQ(present.size(), kTxns);
}

TEST(RecoveryTest, CheckpointPlusTailReplayAndIdempotentReopen) {
  TempDir dir;
  constexpr uint64_t kTxns = 16;
  Timestamp last_cts = 0;
  {
    std::unique_ptr<DB> db;
    ASSERT_TRUE(DB::Open(DurableOptions(dir.path, true), &db).ok());
    TableId t = 0;
    ASSERT_TRUE(db->CreateTable("kill", &t).ok());
    for (uint64_t i = 1; i <= kTxns; ++i) {
      auto txn = db->Begin();
      for (int j = 0; j < kKeysPerTxn; ++j) {
        ASSERT_TRUE(txn->Put(t, TxnKey(i, j), TxnValue(i, j)).ok());
      }
      ASSERT_TRUE(txn->Commit().ok());
      last_cts = txn->commit_ts();
      if (i == kTxns / 2) {
        ASSERT_TRUE(db->Checkpoint().ok());
      }
    }
    ASSERT_EQ(db->checkpoints_taken(), 1u);
  }
  // First reopen: checkpoint covers the first half, WAL replay the rest
  // (records below the watermark replay idempotently over the image).
  {
    std::unique_ptr<DB> db;
    ASSERT_TRUE(DB::Open(DurableOptions(dir.path, true), &db).ok());
    EXPECT_TRUE(db->recovery_stats().used_checkpoint);
    EXPECT_GT(db->recovery_stats().commit_records_applied, 0u);
    TableId t = 0;
    ASSERT_TRUE(db->FindTable("kill", &t).ok());
    EXPECT_EQ(PresentTxns(db.get(), t, kTxns).size(), kTxns);
    EXPECT_EQ(db->recovery_stats().max_commit_ts, last_cts);
  }
  // "Crash during replay": recovery is read-only, so a process that dies
  // right after recovering (before committing anything new) leaves the
  // directory byte-identical — any number of reopens recover the same
  // state. Verified twice: once with a clean close, once comparing
  // recovered contents.
  const auto before = DirContents(dir.path);
  {
    std::unique_ptr<DB> db;
    ASSERT_TRUE(DB::Open(DurableOptions(dir.path, true), &db).ok());
    TableId t = 0;
    ASSERT_TRUE(db->FindTable("kill", &t).ok());
    EXPECT_TRUE(db->recovery_stats().used_checkpoint);
    // >= rather than ==: the previous block's verification transactions
    // committed (empty-redo records with fresh timestamps) before closing.
    EXPECT_GE(db->recovery_stats().max_commit_ts, last_cts);
  }
  EXPECT_EQ(DirContents(dir.path), before);
  {
    std::unique_ptr<DB> db;
    ASSERT_TRUE(DB::Open(DurableOptions(dir.path, true), &db).ok());
    TableId t = 0;
    ASSERT_TRUE(db->FindTable("kill", &t).ok());
    EXPECT_EQ(PresentTxns(db.get(), t, kTxns).size(), kTxns);
  }
}

TEST(RecoveryTest, BackgroundCheckpointerProducesUsableImages) {
  TempDir dir;
  {
    DBOptions opts = DurableOptions(dir.path, false);
    opts.log.checkpoint_interval_ms = 20;
    std::unique_ptr<DB> db;
    ASSERT_TRUE(DB::Open(opts, &db).ok());
    TableId t = 0;
    ASSERT_TRUE(db->CreateTable("t", &t).ok());
    for (int i = 0; i < 50; ++i) {
      auto txn = db->Begin();
      ASSERT_TRUE(txn->Put(t, "k" + std::to_string(i), "v").ok());
      ASSERT_TRUE(txn->Commit().ok());
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    EXPECT_GE(db->checkpoints_taken(), 1u);
  }
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(DurableOptions(dir.path, false), &db).ok());
  EXPECT_TRUE(db->recovery_stats().used_checkpoint);
  TableId t = 0;
  ASSERT_TRUE(db->FindTable("t", &t).ok());
  auto txn = db->Begin();
  std::string v;
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(txn->Get(t, "k" + std::to_string(i), &v).ok()) << i;
  }
  EXPECT_TRUE(txn->Commit().ok());
}

TEST(RecoveryTest, KillMidAsyncPipelineRecoversAckedNeverTorn) {
  // The asynchronous commit pipeline under crash: a session submits a
  // burst of CommitAsync transactions and the child _exits from INSIDE the
  // acknowledgment callback once kAckTarget acks have streamed out — the
  // process dies on the flusher thread, mid-pipeline, with most of the
  // burst submitted-but-unacknowledged. The recovery contract is exactly
  // the blocking one: every acknowledged commit is present atomically
  // (flush_on_commit: the ack fired only after the covering fsync), and
  // every unacknowledged submission is all-or-nothing — never torn.
  TempDir dir;
  constexpr uint64_t kSubmit = 40;
  constexpr uint64_t kAckTarget = 12;
  ChildRun run = RunCrashingChild([&](int ack_fd) {
    std::unique_ptr<DB> db;
    if (!DB::Open(DurableOptions(dir.path, /*flush_on_commit=*/true), &db)
             .ok()) {
      _exit(2);
    }
    TableId t = 0;
    if (!db->CreateTable("kill", &t).ok()) _exit(2);
    auto session = db->CreateSession();
    static std::atomic<uint64_t> acked{0};
    for (uint64_t i = 1; i <= kSubmit; ++i) {
      const TxnHandle h = session->Begin({IsolationLevel::kSerializableSSI});
      for (int j = 0; j < kKeysPerTxn; ++j) {
        if (!session->Put(h, t, TxnKey(i, j), TxnValue(i, j)).ok()) _exit(2);
      }
      session->CommitAsync(h, [ack_fd, i](Status st) {
        if (!st.ok()) _exit(2);
        SendAck(ack_fd, i, 0);
        if (acked.fetch_add(1) + 1 == kAckTarget) _exit(0);  // The crash.
      });
    }
    // Park: the acknowledgment thread kills the process. (The pipeline
    // will certainly reach kAckTarget acks — all kSubmit are submitted.)
    for (;;) std::this_thread::sleep_for(std::chrono::seconds(1));
  });
  ASSERT_EQ(run.exit_code, 0);
  ASSERT_EQ(run.acks.size(), kAckTarget);

  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(DurableOptions(dir.path, true), &db).ok());
  TableId t = 0;
  ASSERT_TRUE(db->FindTable("kill", &t).ok());
  // PresentTxns asserts per-transaction atomicity for everything 1..40:
  // no submission — acked or not — may recover torn.
  const std::vector<uint64_t> present = PresentTxns(db.get(), t, kSubmit);
  std::vector<bool> is_present(kSubmit + 1, false);
  for (const uint64_t seq : present) is_present[seq] = true;
  for (const Ack& a : run.acks) {
    EXPECT_TRUE(is_present[a.seq])
        << "acknowledged transaction " << a.seq << " lost";
  }
  // Unacknowledged submissions may go either way (flushed-but-unacked
  // survives, unflushed is lost) — but never below the acked floor.
  EXPECT_GE(present.size(), kAckTarget);
}

// ---------------------------------------------------------------------------
// Workload-level recovery: sibench and a small TPC-C load.
// ---------------------------------------------------------------------------

TEST(RecoveryWorkloadTest, SibenchAcknowledgedIncrementsSurviveKill) {
  TempDir dir;
  constexpr uint64_t kItems = 20;
  constexpr uint64_t kIncrements = 30;
  ChildRun run = RunCrashingChild([&](int ack_fd) {
    std::unique_ptr<DB> db;
    if (!DB::Open(DurableOptions(dir.path, true), &db).ok()) _exit(2);
    workloads::SiBenchConfig config;
    config.items = kItems;
    std::unique_ptr<workloads::SiBench> workload;
    if (!workloads::SiBench::Setup(db.get(), config, &workload).ok()) {
      _exit(2);
    }
    bench::SeriesConfig ssi{"SSI", IsolationLevel::kSerializableSSI, {}};
    uint64_t committed = 0;
    for (uint64_t i = 0; committed < kIncrements; ++i) {
      if (workload->IncrementValue(db.get(), ssi, i % kItems).ok()) {
        ++committed;
        SendAck(ack_fd, committed, 0);
      }
    }
    db.release();
    _exit(0);
  });
  ASSERT_EQ(run.exit_code, 0);
  ASSERT_EQ(run.acks.size(), kIncrements);

  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(DurableOptions(dir.path, true), &db).ok());
  TableId t = 0;
  ASSERT_TRUE(db->FindTable("sitest", &t).ok());
  // The sibench oracle: the sum of all values equals the number of
  // acknowledged committed increments.
  int64_t sum = 0;
  uint64_t rows = 0;
  auto txn = db->Begin({IsolationLevel::kSnapshot});
  ASSERT_TRUE(txn->Scan(t, EncodeU64Key(0), EncodeU64Key(UINT64_MAX),
                        [&](Slice, Slice value) {
                          size_t off = 0;
                          int64_t v = 0;
                          EXPECT_TRUE(GetI64(value, &off, &v));
                          sum += v;
                          ++rows;
                          return true;
                        })
                  .ok());
  ASSERT_TRUE(txn->Commit().ok());
  EXPECT_EQ(rows, kItems);
  EXPECT_EQ(sum, static_cast<int64_t>(kIncrements));
}

TEST(RecoveryWorkloadTest, TinyTpccLoadSurvivesKillAfterCheckpoint) {
  TempDir dir;
  // Table name -> entry count, reported by the child after its checkpoint.
  const std::vector<std::string> tables = {
      "warehouse", "district", "customer", "item",
      "stock",     "order",    "new_order"};
  ChildRun run = RunCrashingChild([&](int ack_fd) {
    std::unique_ptr<DB> db;
    // Async WAL (no per-commit fsync) to keep the load fast; the explicit
    // checkpoint below makes the loaded state durable.
    if (!DB::Open(DurableOptions(dir.path, false), &db).ok()) _exit(2);
    workloads::tpcc::TpccConfig config;
    config.warehouses = 1;
    config.tiny = true;
    std::unique_ptr<workloads::tpcc::TpccWorkload> workload;
    if (!workloads::tpcc::TpccWorkload::Setup(db.get(), config, 7, &workload)
             .ok()) {
      _exit(2);
    }
    bench::SeriesConfig ssi{"SSI", IsolationLevel::kSerializableSSI, {}};
    Random rng(99);
    uint64_t committed = 0;
    while (committed < 5) {
      Status st = workload->RunOp(db.get(), ssi,
                                  workloads::tpcc::TpccOp::kNewOrder, &rng);
      if (st.ok()) ++committed;
      if (st.IsInvalidArgument()) _exit(2);
    }
    if (!db->Checkpoint().ok()) _exit(2);
    for (size_t i = 0; i < tables.size(); ++i) {
      TableId id = 0;
      if (!db->FindTable(tables[i], &id).ok()) _exit(2);
      SendAck(ack_fd, i, db->table(id)->EntryCount());
    }
    db.release();
    _exit(0);
  });
  ASSERT_EQ(run.exit_code, 0);
  ASSERT_EQ(run.acks.size(), tables.size());

  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(DurableOptions(dir.path, false), &db).ok());
  EXPECT_TRUE(db->recovery_stats().used_checkpoint);
  for (size_t i = 0; i < tables.size(); ++i) {
    TableId id = 0;
    ASSERT_TRUE(db->FindTable(tables[i], &id).ok()) << tables[i];
    EXPECT_EQ(db->table(id)->EntryCount(), run.acks[i].commit_ts)
        << tables[i];
  }
  // The recovered engine keeps serving reads against the reloaded schema.
  TableId district = 0;
  ASSERT_TRUE(db->FindTable("district", &district).ok());
  EXPECT_EQ(db->table(district)->EntryCount(), 10u);  // 10 districts/WH.
}

}  // namespace
}  // namespace ssidb
