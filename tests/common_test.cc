// Unit tests for src/common: Status, Slice, order-preserving encoding, and
// the random distributions the workloads depend on.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "src/common/encoding.h"
#include "src/common/random.h"
#include "src/common/slice.h"
#include "src/common/status.h"

namespace ssidb {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_FALSE(s.IsAbort());
  EXPECT_EQ(s.code(), Status::Code::kOk);
}

TEST(StatusTest, FactoryCodesRoundTrip) {
  EXPECT_TRUE(Status::NotFound().IsNotFound());
  EXPECT_TRUE(Status::DuplicateKey().IsDuplicateKey());
  EXPECT_TRUE(Status::Deadlock().IsDeadlock());
  EXPECT_TRUE(Status::UpdateConflict().IsUpdateConflict());
  EXPECT_TRUE(Status::Unsafe().IsUnsafe());
  EXPECT_TRUE(Status::TxnInvalid().IsTxnInvalid());
  EXPECT_TRUE(Status::InvalidArgument().IsInvalidArgument());
  EXPECT_TRUE(Status::TimedOut().IsTimedOut());
}

TEST(StatusTest, AbortClassMatchesPaperErrorTaxonomy) {
  // §6.1.1: deadlocks, FCW conflicts and unsafe errors abort and retry.
  EXPECT_TRUE(Status::Deadlock().IsAbort());
  EXPECT_TRUE(Status::UpdateConflict().IsAbort());
  EXPECT_TRUE(Status::Unsafe().IsAbort());
  EXPECT_TRUE(Status::TimedOut().IsAbort());
  // Application-level outcomes do not.
  EXPECT_FALSE(Status::NotFound().IsAbort());
  EXPECT_FALSE(Status::DuplicateKey().IsAbort());
  EXPECT_FALSE(Status::InvalidArgument().IsAbort());
  EXPECT_FALSE(Status::OK().IsAbort());
}

TEST(StatusTest, ToStringContainsCodeAndMessage) {
  const Status s = Status::Unsafe("pivot detected");
  EXPECT_NE(s.ToString().find("unsafe"), std::string::npos);
  EXPECT_NE(s.ToString().find("pivot detected"), std::string::npos);
}

TEST(StatusTest, EqualityComparesCodesOnly) {
  EXPECT_EQ(Status::Deadlock("a"), Status::Deadlock("b"));
  EXPECT_FALSE(Status::Deadlock() == Status::Unsafe());
}

TEST(SliceTest, BasicAccessors) {
  Slice s("hello");
  EXPECT_EQ(s.size(), 5u);
  EXPECT_FALSE(s.empty());
  EXPECT_EQ(s[1], 'e');
  EXPECT_EQ(s.ToString(), "hello");
  EXPECT_TRUE(Slice().empty());
}

TEST(SliceTest, ComparisonIsBytewiseWithLengthTiebreak) {
  EXPECT_TRUE(Slice("a") < Slice("b"));
  EXPECT_TRUE(Slice("a") < Slice("aa"));
  EXPECT_EQ(Slice("abc").compare(Slice("abc")), 0);
  EXPECT_GT(Slice("abd").compare(Slice("abc")), 0);
  EXPECT_TRUE(Slice("x") == Slice(std::string("x")));
  EXPECT_TRUE(Slice("x") != Slice("y"));
}

TEST(SliceTest, EmbeddedNulBytesCompare) {
  const std::string a("a\0b", 3);
  const std::string b("a\0c", 3);
  EXPECT_TRUE(Slice(a) < Slice(b));
  EXPECT_EQ(Slice(a).size(), 3u);
}

TEST(EncodingTest, Big32RoundTrip) {
  for (uint32_t v : {0u, 1u, 255u, 256u, 65535u, 1u << 31, UINT32_MAX}) {
    std::string s;
    PutBig32(&s, v);
    ASSERT_EQ(s.size(), 4u);
    size_t off = 0;
    uint32_t out = 0;
    ASSERT_TRUE(GetBig32(s, &off, &out));
    EXPECT_EQ(out, v);
    EXPECT_EQ(off, 4u);
  }
}

TEST(EncodingTest, Big64RoundTrip) {
  for (uint64_t v : {uint64_t{0}, uint64_t{1}, uint64_t{1} << 40,
                     uint64_t{UINT64_MAX}}) {
    std::string s;
    PutBig64(&s, v);
    size_t off = 0;
    uint64_t out = 0;
    ASSERT_TRUE(GetBig64(s, &off, &out));
    EXPECT_EQ(out, v);
  }
}

TEST(EncodingTest, BigEndianPreservesOrder) {
  // The property next-key locking depends on (§2.5.2): byte order of the
  // encoded keys equals numeric order.
  std::vector<uint64_t> values = {0, 1, 2, 255, 256, 1000, 1u << 20,
                                  uint64_t{1} << 40, UINT64_MAX};
  for (size_t i = 0; i + 1 < values.size(); ++i) {
    EXPECT_LT(EncodeU64Key(values[i]), EncodeU64Key(values[i + 1]))
        << values[i] << " vs " << values[i + 1];
  }
}

TEST(EncodingTest, DecodeU64KeyInvertsEncode) {
  for (uint64_t v : {uint64_t{0}, uint64_t{42}, UINT64_MAX}) {
    EXPECT_EQ(DecodeU64Key(EncodeU64Key(v)), v);
  }
}

TEST(EncodingTest, I64RoundTripIncludingNegatives) {
  for (int64_t v : {int64_t{0}, int64_t{-1}, int64_t{123456789},
                    int64_t{-987654321}, INT64_MIN, INT64_MAX}) {
    std::string s;
    PutI64(&s, v);
    size_t off = 0;
    int64_t out = 0;
    ASSERT_TRUE(GetI64(s, &off, &out));
    EXPECT_EQ(out, v);
  }
}

TEST(EncodingTest, LengthPrefixedRoundTrip) {
  std::string s;
  PutLengthPrefixed(&s, "hello");
  PutLengthPrefixed(&s, "");
  PutLengthPrefixed(&s, std::string("a\0b", 3));
  size_t off = 0;
  std::string out;
  ASSERT_TRUE(GetLengthPrefixed(s, &off, &out));
  EXPECT_EQ(out, "hello");
  ASSERT_TRUE(GetLengthPrefixed(s, &off, &out));
  EXPECT_EQ(out, "");
  ASSERT_TRUE(GetLengthPrefixed(s, &off, &out));
  EXPECT_EQ(out, std::string("a\0b", 3));
  EXPECT_EQ(off, s.size());
}

TEST(EncodingTest, DecodersRejectTruncatedInput) {
  std::string s;
  PutBig32(&s, 7);
  size_t off = 2;
  uint32_t v32 = 0;
  EXPECT_FALSE(GetBig32(s, &off, &v32));
  uint64_t v64 = 0;
  off = 0;
  EXPECT_FALSE(GetBig64(s, &off, &v64));  // Only 4 bytes present.
  std::string out;
  off = 1;
  EXPECT_FALSE(GetLengthPrefixed(s, &off, &out));
}

TEST(RandomTest, DeterministicPerSeed) {
  Random a(123), b(123), c(124);
  EXPECT_EQ(a.Next(), b.Next());
  EXPECT_EQ(a.Next(), b.Next());
  Random a2(123);
  EXPECT_NE(a2.Next(), c.Next());
}

TEST(RandomTest, UniformStaysInRange) {
  Random rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
    const int64_t v = rng.UniformRange(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RandomTest, UniformRangeCoversEndpoints) {
  Random rng(9);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformRange(1, 3));
  EXPECT_EQ(seen, (std::set<int64_t>{1, 2, 3}));
}

TEST(RandomTest, BernoulliExtremes) {
  Random rng(11);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RandomTest, BernoulliRoughlyCalibrated) {
  Random rng(13);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.25);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.02);
}

TEST(RandomTest, NURandStaysInRangeAndIsNonUniform) {
  Random rng(17);
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 30000; ++i) {
    const uint64_t v = rng.NURand(255, 1, 1000);
    ASSERT_GE(v, 1u);
    ASSERT_LE(v, 1000u);
    counts[v]++;
  }
  // NURand concentrates mass: the most popular value should be well above
  // the uniform expectation of 30 hits.
  int max_count = 0;
  for (const auto& [v, c] : counts) max_count = std::max(max_count, c);
  EXPECT_GT(max_count, 60);
}

TEST(RandomTest, AlphaStringRespectsBoundsAndAlphabet) {
  Random rng(19);
  for (int i = 0; i < 200; ++i) {
    const std::string s = rng.AlphaString(3, 9);
    EXPECT_GE(s.size(), 3u);
    EXPECT_LE(s.size(), 9u);
    for (char c : s) EXPECT_TRUE(isalnum(static_cast<unsigned char>(c)));
  }
}

TEST(RandomTest, ShuffleIsAPermutation) {
  Random rng(23);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[i] = i;
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, orig);
  EXPECT_NE(v, orig);  // Astronomically unlikely to be identity.
}

TEST(ZipfTest, StaysInRangeAndSkews) {
  Random rng(29);
  ZipfGenerator zipf(1000, 0.99);
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 30000; ++i) {
    const uint64_t v = zipf.Next(&rng);
    ASSERT_LT(v, 1000u);
    counts[v]++;
  }
  // Rank-0 should dominate the median element by a wide margin.
  EXPECT_GT(counts[0], 30 * std::max(1, counts[500]));
}

/// Parameterized sweep: encoding order preservation holds for composite
/// (hi, lo) keys the TPC-C schema uses.
class CompositeKeyOrderTest
    : public ::testing::TestWithParam<std::pair<uint32_t, uint32_t>> {};

TEST_P(CompositeKeyOrderTest, LexOrderMatchesTupleOrder) {
  const auto [w, d] = GetParam();
  std::string base;
  PutBig32(&base, w);
  PutBig32(&base, d);
  // Successor in the second component.
  std::string next_d;
  PutBig32(&next_d, w);
  PutBig32(&next_d, d + 1);
  EXPECT_LT(base, next_d);
  // Successor in the first component dominates any second component.
  std::string next_w;
  PutBig32(&next_w, w + 1);
  PutBig32(&next_w, 0);
  EXPECT_LT(base, next_w);
  EXPECT_LT(next_d, next_w);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CompositeKeyOrderTest,
    ::testing::Values(std::pair{0u, 0u}, std::pair{1u, 9u},
                      std::pair{255u, 255u}, std::pair{65535u, 1u},
                      std::pair{1u << 30, 1u << 30}));

}  // namespace
}  // namespace ssidb
