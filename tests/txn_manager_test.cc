// Direct unit tests for the transaction manager: lifecycle, timestamps,
// snapshot allocation (§4.5), suspension and eager cleanup (§3.3/§4.6.1),
// and the page-level first-committer-wins bookkeeping (§4.2).

#include <gtest/gtest.h>

#include <memory>

#include "src/lock/lock_manager.h"
#include "src/txn/log_manager.h"
#include "src/txn/txn_manager.h"

namespace ssidb {
namespace {

class TxnManagerTest : public ::testing::Test {
 protected:
  explicit TxnManagerTest(DBOptions opts = {})
      : options_(opts),
        log_(options_.log),
        locks_(LockManager::Config{}),
        mgr_(options_, &locks_, &log_) {}

  Status CommitNoCheck(const std::shared_ptr<TxnState>& txn) {
    return mgr_.Commit(txn, nullptr, {});
  }

  DBOptions options_;
  LogManager log_;
  LockManager locks_;
  TxnManager mgr_;
};

TEST_F(TxnManagerTest, BeginAssignsUniqueIds) {
  auto t1 = mgr_.Begin(IsolationLevel::kSerializableSSI);
  auto t2 = mgr_.Begin(IsolationLevel::kSerializableSSI);
  EXPECT_NE(t1->id, t2->id);
  EXPECT_EQ(mgr_.active_count(), 2u);
  mgr_.Abort(t1);
  mgr_.Abort(t2);
  EXPECT_EQ(mgr_.active_count(), 0u);
}

TEST_F(TxnManagerTest, LateSnapshotStartsUnassigned) {
  // §4.5: SI/SSI transactions defer their snapshot to the first statement.
  auto t = mgr_.Begin(IsolationLevel::kSerializableSSI);
  EXPECT_EQ(t->read_ts.load(), 0u);
  mgr_.EnsureSnapshot(t.get());
  EXPECT_GT(t->read_ts.load(), 0u);
  const Timestamp first = t->read_ts.load();
  mgr_.EnsureSnapshot(t.get());  // Idempotent.
  EXPECT_EQ(t->read_ts.load(), first);
  mgr_.Abort(t);
}

TEST_F(TxnManagerTest, S2PLGetsSnapshotImmediately) {
  auto t = mgr_.Begin(IsolationLevel::kSerializable2PL);
  EXPECT_GT(t->read_ts.load(), 0u);
  mgr_.Abort(t);
}

TEST_F(TxnManagerTest, CommitAssignsMonotonicTimestamps) {
  auto t1 = mgr_.Begin(IsolationLevel::kSnapshot);
  mgr_.EnsureSnapshot(t1.get());
  ASSERT_TRUE(CommitNoCheck(t1).ok());
  auto t2 = mgr_.Begin(IsolationLevel::kSnapshot);
  mgr_.EnsureSnapshot(t2.get());
  ASSERT_TRUE(CommitNoCheck(t2).ok());
  EXPECT_GT(t1->commit_ts.load(), 0u);
  EXPECT_GT(t2->commit_ts.load(), t1->commit_ts.load());
  EXPECT_TRUE(t1->IsCommitted());
}

TEST_F(TxnManagerTest, CommitCheckFailureAborts) {
  auto t = mgr_.Begin(IsolationLevel::kSerializableSSI);
  mgr_.EnsureSnapshot(t.get());
  Status st = mgr_.Commit(
      t, [](TxnState*) { return Status::Unsafe("nope"); }, {});
  EXPECT_TRUE(st.IsUnsafe());
  EXPECT_EQ(t->status.load(), TxnStatus::kAborted);
  EXPECT_EQ(mgr_.active_count(), 0u);
}

TEST_F(TxnManagerTest, MarkedForAbortHonouredAtCommit) {
  auto t = mgr_.Begin(IsolationLevel::kSerializableSSI);
  mgr_.EnsureSnapshot(t.get());
  t->marked_for_abort.store(true);
  t->abort_reason = Status::Unsafe("victim");
  Status st = CommitNoCheck(t);
  EXPECT_TRUE(st.IsUnsafe());
  EXPECT_EQ(t->status.load(), TxnStatus::kAborted);
}

TEST_F(TxnManagerTest, DoubleCommitRejected) {
  auto t = mgr_.Begin(IsolationLevel::kSnapshot);
  mgr_.EnsureSnapshot(t.get());
  ASSERT_TRUE(CommitNoCheck(t).ok());
  EXPECT_TRUE(CommitNoCheck(t).IsTxnInvalid());
}

TEST_F(TxnManagerTest, AbortIsIdempotent) {
  auto t = mgr_.Begin(IsolationLevel::kSnapshot);
  mgr_.Abort(t);
  mgr_.Abort(t);  // No crash, no double-release.
  EXPECT_EQ(t->status.load(), TxnStatus::kAborted);
}

TEST_F(TxnManagerTest, SSICommitWithSIReadLocksSuspends) {
  // Fig 3.2 line 11: a committing SSI transaction holding SIREAD locks is
  // retained; without any overlapping transaction it is cleaned up by the
  // next commit's sweep.
  auto overlap = mgr_.Begin(IsolationLevel::kSerializableSSI);
  mgr_.EnsureSnapshot(overlap.get());

  auto t = mgr_.Begin(IsolationLevel::kSerializableSSI);
  mgr_.EnsureSnapshot(t.get());
  locks_.Acquire(t->id, LockKey{1, LockKind::kRow, "k"}, LockMode::kSIRead);
  ASSERT_TRUE(CommitNoCheck(t).ok());
  EXPECT_EQ(mgr_.suspended_count(), 1u);
  EXPECT_TRUE(locks_.HoldsAnySIRead(t->id));  // Locks retained.

  // Find still resolves the suspended transaction (needed for conflict
  // marking against committed partners).
  EXPECT_NE(mgr_.Find(t->id), nullptr);

  // Once the overlapping transaction finishes, the sweep releases it.
  ASSERT_TRUE(CommitNoCheck(overlap).ok());
  EXPECT_EQ(mgr_.suspended_count(), 0u);
  EXPECT_FALSE(locks_.HoldsAnySIRead(t->id));
  EXPECT_EQ(mgr_.Find(t->id), nullptr);
}

TEST_F(TxnManagerTest, CommitWithoutSIReadLocksDoesNotLingerForConflicts) {
  // A pure writer (SIREAD upgraded away) has no vulnerable reads; §3.4
  // argues it cannot be a pivot, so nothing requires long retention. We
  // only check its locks are fully released at commit.
  auto t = mgr_.Begin(IsolationLevel::kSerializableSSI);
  mgr_.EnsureSnapshot(t.get());
  locks_.Acquire(t->id, LockKey{1, LockKind::kRow, "k"},
                 LockMode::kExclusive);
  ASSERT_TRUE(CommitNoCheck(t).ok());
  EXPECT_EQ(locks_.GrantCount(), 0u);
}

TEST_F(TxnManagerTest, MinActiveReadTsTracksOldestSnapshot) {
  const Timestamp idle = mgr_.min_active_read_ts();
  auto t1 = mgr_.Begin(IsolationLevel::kSerializableSSI);
  mgr_.EnsureSnapshot(t1.get());
  const Timestamp t1_snap = t1->read_ts.load();
  EXPECT_GE(idle, 1u);
  EXPECT_LE(mgr_.min_active_read_ts(), t1_snap);

  auto t2 = mgr_.Begin(IsolationLevel::kSerializableSSI);
  mgr_.EnsureSnapshot(t2.get());
  EXPECT_LE(mgr_.min_active_read_ts(), t1_snap);  // Oldest still t1.
  mgr_.Abort(t1);
  EXPECT_GE(mgr_.min_active_read_ts(), t1_snap);  // Advanced past t1.
  mgr_.Abort(t2);
}

TEST_F(TxnManagerTest, PageWriteBookkeeping) {
  const LockKey page{1, LockKind::kPage, "p0"};
  EXPECT_EQ(mgr_.PageLastWriteTs(page), 0u);

  auto t = mgr_.Begin(IsolationLevel::kSnapshot);
  mgr_.EnsureSnapshot(t.get());
  t->page_writes.push_back(page);
  ASSERT_TRUE(CommitNoCheck(t).ok());

  Timestamp ts = 0;
  TxnId writer = 0;
  ASSERT_TRUE(mgr_.PageLastWrite(page, &ts, &writer));
  EXPECT_EQ(ts, t->commit_ts.load());
  EXPECT_EQ(writer, t->id);

  // A later writer supersedes the slot.
  auto t2 = mgr_.Begin(IsolationLevel::kSnapshot);
  mgr_.EnsureSnapshot(t2.get());
  t2->page_writes.push_back(page);
  ASSERT_TRUE(CommitNoCheck(t2).ok());
  ASSERT_TRUE(mgr_.PageLastWrite(page, &ts, &writer));
  EXPECT_EQ(writer, t2->id);
}

TEST_F(TxnManagerTest, AbortedPageWritesLeaveNoTrace) {
  const LockKey page{1, LockKind::kPage, "p1"};
  auto t = mgr_.Begin(IsolationLevel::kSnapshot);
  mgr_.EnsureSnapshot(t.get());
  t->page_writes.push_back(page);
  mgr_.Abort(t);
  EXPECT_EQ(mgr_.PageLastWriteTs(page), 0u);
}

TEST_F(TxnManagerTest, SuspendedChainCleanupInCommitOrder) {
  // Three overlapping SSI readers commit in order while a fourth keeps
  // them all alive; ending the fourth releases all three at once.
  auto keeper = mgr_.Begin(IsolationLevel::kSerializableSSI);
  mgr_.EnsureSnapshot(keeper.get());
  std::vector<std::shared_ptr<TxnState>> readers;
  for (int i = 0; i < 3; ++i) {
    auto r = mgr_.Begin(IsolationLevel::kSerializableSSI);
    mgr_.EnsureSnapshot(r.get());
    locks_.Acquire(r->id, LockKey{1, LockKind::kRow, std::to_string(i)},
                   LockMode::kSIRead);
    readers.push_back(r);
  }
  for (auto& r : readers) ASSERT_TRUE(CommitNoCheck(r).ok());
  EXPECT_EQ(mgr_.suspended_count(), 3u);
  mgr_.Abort(keeper);  // Abort also sweeps.
  EXPECT_EQ(mgr_.suspended_count(), 0u);
  EXPECT_EQ(locks_.GrantCount(), 0u);
}

}  // namespace
}  // namespace ssidb
