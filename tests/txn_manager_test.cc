// Direct unit tests for the transaction manager and the commit pipeline:
// lifecycle, timestamps, snapshot allocation (§4.5), suspension and eager
// cleanup (§3.3/§4.6.1), page-level first-committer-wins bookkeeping
// (§4.2), the commit-slot ring (wraparound, backpressure, watermark
// safety), and the sharded registry's min-active maintenance.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "src/lock/lock_manager.h"
#include "src/txn/commit_ring.h"
#include "src/txn/log_manager.h"
#include "src/txn/txn_manager.h"

namespace ssidb {
namespace {

class TxnManagerTest : public ::testing::Test {
 protected:
  explicit TxnManagerTest(DBOptions opts = {})
      : options_(opts),
        log_(options_.log),
        locks_(LockManager::Config{}),
        mgr_(options_, &locks_, &log_) {}

  Status CommitNoCheck(const std::shared_ptr<TxnState>& txn) {
    return mgr_.Commit(txn, nullptr, {});
  }

  /// Commit with a synthetic write, so the commit allocates a commit-ring
  /// timestamp and advances the watermark (read-only commits carry the
  /// watermark itself as their timestamp).
  Status CommitWithWrite(const std::shared_ptr<TxnState>& txn) {
    auto chain = std::make_unique<VersionChain>();
    bool replaced = false;
    Version* v = chain->InstallUncommitted(txn->id, "v", false, &replaced);
    txn->write_set.push_back(
        TxnState::WriteRecord{0, "k", chain.get(), v, nullptr});
    chains_.push_back(std::move(chain));
    return CommitNoCheck(txn);
  }

  /// Commit a throwaway writer: advances the stable watermark by one.
  void AdvanceWatermark() {
    auto t = mgr_.Begin(IsolationLevel::kSnapshot);
    mgr_.EnsureSnapshot(t.get());
    ASSERT_TRUE(CommitWithWrite(t).ok());
  }

  DBOptions options_;
  LogManager log_;
  LockManager locks_;
  TxnManager mgr_;
  std::vector<std::unique_ptr<VersionChain>> chains_;
};

TEST_F(TxnManagerTest, BeginAssignsUniqueIds) {
  auto t1 = mgr_.Begin(IsolationLevel::kSerializableSSI);
  auto t2 = mgr_.Begin(IsolationLevel::kSerializableSSI);
  EXPECT_NE(t1->id, t2->id);
  EXPECT_EQ(mgr_.active_count(), 2u);
  mgr_.Abort(t1);
  mgr_.Abort(t2);
  EXPECT_EQ(mgr_.active_count(), 0u);
}

TEST_F(TxnManagerTest, LateSnapshotStartsUnassigned) {
  // §4.5: SI/SSI transactions defer their snapshot to the first statement.
  auto t = mgr_.Begin(IsolationLevel::kSerializableSSI);
  EXPECT_EQ(t->read_ts.load(), 0u);
  mgr_.EnsureSnapshot(t.get());
  EXPECT_GT(t->read_ts.load(), 0u);
  const Timestamp first = t->read_ts.load();
  mgr_.EnsureSnapshot(t.get());  // Idempotent.
  EXPECT_EQ(t->read_ts.load(), first);
  mgr_.Abort(t);
}

TEST_F(TxnManagerTest, S2PLGetsSnapshotImmediately) {
  auto t = mgr_.Begin(IsolationLevel::kSerializable2PL);
  EXPECT_GT(t->read_ts.load(), 0u);
  mgr_.Abort(t);
}

TEST_F(TxnManagerTest, WritingCommitsGetMonotonicTimestamps) {
  auto t1 = mgr_.Begin(IsolationLevel::kSnapshot);
  mgr_.EnsureSnapshot(t1.get());
  ASSERT_TRUE(CommitWithWrite(t1).ok());
  auto t2 = mgr_.Begin(IsolationLevel::kSnapshot);
  mgr_.EnsureSnapshot(t2.get());
  ASSERT_TRUE(CommitWithWrite(t2).ok());
  EXPECT_GT(t1->commit_ts.load(), 0u);
  EXPECT_GT(t2->commit_ts.load(), t1->commit_ts.load());
  EXPECT_TRUE(t1->IsCommitted());
  // Acknowledged commits are covered by the watermark.
  EXPECT_GE(mgr_.stable_ts(), t2->commit_ts.load());
}

TEST_F(TxnManagerTest, ReadOnlyCommitsCarryTheWatermark) {
  // A read-only commit publishes nothing: its commit timestamp is the
  // stable watermark — the snapshot boundary it read at — and it never
  // enters the commit ring.
  AdvanceWatermark();
  const Timestamp wm = mgr_.stable_ts();
  auto t = mgr_.Begin(IsolationLevel::kSnapshot);
  mgr_.EnsureSnapshot(t.get());
  ASSERT_TRUE(CommitNoCheck(t).ok());
  EXPECT_EQ(t->commit_ts.load(), wm);
  EXPECT_EQ(mgr_.stable_ts(), wm);  // Watermark unmoved.
}

TEST_F(TxnManagerTest, CommitCheckFailureAborts) {
  auto t = mgr_.Begin(IsolationLevel::kSerializableSSI);
  mgr_.EnsureSnapshot(t.get());
  // The check is only consulted for transactions with recorded conflict
  // state (certification triage, txn_manager.h); give this one a pivot's
  // shape so the failing verdict actually runs.
  t->in_conflict_flag = true;
  t->out_conflict_flag = true;
  Status st = mgr_.Commit(
      t, [](TxnState*) { return Status::Unsafe("nope"); }, {});
  EXPECT_TRUE(st.IsUnsafe());
  EXPECT_EQ(t->status.load(), TxnStatus::kAborted);
  EXPECT_EQ(mgr_.active_count(), 0u);
  EXPECT_EQ(mgr_.commit_fastpath(), 0u);
}

TEST_F(TxnManagerTest, ConflictFreeSSICommitSkipsCertification) {
  // Certification triage class 2 (txn_manager.h): an SSI commit whose
  // conflict state is entirely clear under its own latch can be nobody's
  // partner, so the check hook is never consulted — even one that would
  // refuse the commit.
  auto t = mgr_.Begin(IsolationLevel::kSerializableSSI);
  mgr_.EnsureSnapshot(t.get());
  bool check_ran = false;
  Status st = mgr_.Commit(
      t,
      [&](TxnState*) {
        check_ran = true;
        return Status::Unsafe("must not run");
      },
      {});
  EXPECT_TRUE(st.ok());
  EXPECT_FALSE(check_ran);
  EXPECT_EQ(t->status.load(), TxnStatus::kCommitted);
  EXPECT_EQ(mgr_.commit_fastpath(), 1u);
  EXPECT_EQ(mgr_.commit_combined_txns(), 0u);
}

TEST_F(TxnManagerTest, AnyConflictStateForcesCertification) {
  // Triage class 3: one recorded edge — of either polarity, in either
  // representation — routes the commit through the certification stage.
  int checks_ran = 0;
  auto check = [&](TxnState*) {
    ++checks_ran;
    return Status::OK();
  };
  auto t1 = mgr_.Begin(IsolationLevel::kSerializableSSI);
  mgr_.EnsureSnapshot(t1.get());
  t1->out_conflict_flag = true;  // Basic (kFlags) representation.
  EXPECT_TRUE(mgr_.Commit(t1, check, {}).ok());
  auto t2 = mgr_.Begin(IsolationLevel::kSerializableSSI);
  mgr_.EnsureSnapshot(t2.get());
  t2->in_ref.SetSelf();  // Precise (kReferences) representation.
  EXPECT_TRUE(mgr_.Commit(t2, check, {}).ok());
  EXPECT_EQ(checks_ran, 2);
  EXPECT_EQ(mgr_.commit_fastpath(), 0u);
  EXPECT_EQ(mgr_.commit_combined_txns(), 2u);
  EXPECT_GE(mgr_.commit_combine_batches(), 1u);
  EXPECT_GE(mgr_.commit_max_batch(), 1u);
}

TEST_F(TxnManagerTest, MarkedForAbortHonouredAtCommit) {
  auto t = mgr_.Begin(IsolationLevel::kSerializableSSI);
  mgr_.EnsureSnapshot(t.get());
  t->marked_for_abort.store(true);
  t->abort_reason = Status::Unsafe("victim");
  Status st = CommitNoCheck(t);
  EXPECT_TRUE(st.IsUnsafe());
  EXPECT_EQ(t->status.load(), TxnStatus::kAborted);
}

TEST_F(TxnManagerTest, DoubleCommitRejected) {
  auto t = mgr_.Begin(IsolationLevel::kSnapshot);
  mgr_.EnsureSnapshot(t.get());
  ASSERT_TRUE(CommitNoCheck(t).ok());
  EXPECT_TRUE(CommitNoCheck(t).IsTxnInvalid());
}

TEST_F(TxnManagerTest, AbortIsIdempotent) {
  auto t = mgr_.Begin(IsolationLevel::kSnapshot);
  mgr_.Abort(t);
  mgr_.Abort(t);  // No crash, no double-release.
  EXPECT_EQ(t->status.load(), TxnStatus::kAborted);
}

TEST_F(TxnManagerTest, SSICommitWithSIReadLocksSuspends) {
  // Fig 3.2 line 11: a committing SSI transaction holding SIREAD locks is
  // retained while a concurrent transaction overlaps it; once none does,
  // the next commit's sweep releases it.
  auto overlap = mgr_.Begin(IsolationLevel::kSerializableSSI);
  mgr_.EnsureSnapshot(overlap.get());
  // Watermark past overlap's snapshot: the reader's read-only commit
  // timestamp is the watermark, and retention requires
  // commit(reader) > begin(overlap).
  AdvanceWatermark();

  auto t = mgr_.Begin(IsolationLevel::kSerializableSSI);
  mgr_.EnsureSnapshot(t.get());
  locks_.Acquire(t->id, LockKey{1, LockKind::kRow, "k"}, LockMode::kSIRead);
  ASSERT_TRUE(CommitNoCheck(t).ok());
  EXPECT_EQ(mgr_.suspended_count(), 1u);
  EXPECT_TRUE(locks_.HoldsAnySIRead(t->id));  // Locks retained.

  // Find still resolves the suspended transaction (needed for conflict
  // marking against committed partners).
  EXPECT_NE(mgr_.Find(t->id), nullptr);

  // Once the overlapping transaction finishes, the sweep releases it.
  ASSERT_TRUE(CommitNoCheck(overlap).ok());
  EXPECT_EQ(mgr_.suspended_count(), 0u);
  EXPECT_FALSE(locks_.HoldsAnySIRead(t->id));
  EXPECT_EQ(mgr_.Find(t->id), nullptr);
}

TEST_F(TxnManagerTest, ReadOnlyBypassStillRetiresSuspendedTxns) {
  // Read-only commits bypass the ring entirely; the suspended list must
  // still drain through them (their cleanup runs with the maintained
  // min-active, no watermark nudge required).
  auto overlap = mgr_.Begin(IsolationLevel::kSerializableSSI);
  mgr_.EnsureSnapshot(overlap.get());
  AdvanceWatermark();

  auto reader = mgr_.Begin(IsolationLevel::kSerializableSSI);
  mgr_.EnsureSnapshot(reader.get());
  locks_.Acquire(reader->id, LockKey{1, LockKind::kRow, "k"},
                 LockMode::kSIRead);
  ASSERT_TRUE(CommitNoCheck(reader).ok());
  ASSERT_EQ(mgr_.suspended_count(), 1u);

  // The overlap commits read-only; its cleanup sweep must release the
  // suspended reader even though no ring slot was ever touched.
  ASSERT_TRUE(CommitNoCheck(overlap).ok());
  EXPECT_EQ(mgr_.suspended_count(), 0u);
  EXPECT_FALSE(locks_.HoldsAnySIRead(reader->id));
}

TEST_F(TxnManagerTest, NonSSICommitsAreNotRetained) {
  // SI/S2PL transactions never participate in SSI conflict tracking:
  // nothing resolves them after commit, so they skip the suspended list
  // and leave the registry at commit.
  auto overlap = mgr_.Begin(IsolationLevel::kSerializableSSI);
  mgr_.EnsureSnapshot(overlap.get());
  AdvanceWatermark();

  auto si = mgr_.Begin(IsolationLevel::kSnapshot);
  mgr_.EnsureSnapshot(si.get());
  ASSERT_TRUE(CommitWithWrite(si).ok());
  EXPECT_EQ(mgr_.suspended_count(), 0u);
  EXPECT_EQ(mgr_.Find(si->id), nullptr);
  mgr_.Abort(overlap);
}

TEST_F(TxnManagerTest, CommitWithoutSIReadLocksDoesNotLingerForConflicts) {
  // A pure writer (SIREAD upgraded away) has no vulnerable reads; §3.4
  // argues it cannot be a pivot, so nothing requires long retention. We
  // only check its locks are fully released at commit.
  auto t = mgr_.Begin(IsolationLevel::kSerializableSSI);
  mgr_.EnsureSnapshot(t.get());
  locks_.Acquire(t->id, LockKey{1, LockKind::kRow, "k"},
                 LockMode::kExclusive);
  ASSERT_TRUE(CommitNoCheck(t).ok());
  EXPECT_EQ(locks_.GrantCount(), 0u);
}

TEST_F(TxnManagerTest, MinActiveReadTsTracksOldestSnapshot) {
  const Timestamp idle = mgr_.min_active_read_ts();
  auto t1 = mgr_.Begin(IsolationLevel::kSerializableSSI);
  mgr_.EnsureSnapshot(t1.get());
  const Timestamp t1_snap = t1->read_ts.load();
  EXPECT_GE(idle, 1u);
  EXPECT_LE(mgr_.min_active_read_ts(), t1_snap);

  auto t2 = mgr_.Begin(IsolationLevel::kSerializableSSI);
  mgr_.EnsureSnapshot(t2.get());
  EXPECT_LE(mgr_.min_active_read_ts(), t1_snap);  // Oldest still t1.
  mgr_.Abort(t1);
  EXPECT_GE(mgr_.min_active_read_ts(), t1_snap);  // Advanced past t1.
  mgr_.Abort(t2);
}

TEST_F(TxnManagerTest, MinActiveCorrectAcrossRegistryShards) {
  // Sequential ids land on consecutive registry shards; the maintained
  // minimum must stay exact as transactions with distinct snapshots begin
  // and finish across all of them — this is the sharded replacement for
  // the old global O(active) rescan.
  constexpr int kTxns = 64;  // Several laps around the default 16 shards.
  std::vector<std::shared_ptr<TxnState>> txns;
  std::vector<Timestamp> snaps;
  for (int i = 0; i < kTxns; ++i) {
    auto t = mgr_.Begin(IsolationLevel::kSerializableSSI);
    mgr_.EnsureSnapshot(t.get());
    txns.push_back(t);
    snaps.push_back(t->read_ts.load());
    // Stagger snapshots: every 4th iteration a writer bumps the
    // watermark, so shards hold genuinely different minima.
    if (i % 4 == 3) AdvanceWatermark();
  }
  // Finish in an order that exercises per-shard recomputation: evens
  // forward (commit), odds backward (abort).
  for (int i = 0; i < kTxns; i += 2) {
    const Timestamp oldest_live = snaps[i];
    EXPECT_LE(mgr_.min_active_read_ts(), oldest_live);
    ASSERT_TRUE(CommitNoCheck(txns[i]).ok());
  }
  for (int i = kTxns - 1; i >= 1; i -= 2) {
    EXPECT_LE(mgr_.min_active_read_ts(), snaps[1]);
    mgr_.Abort(txns[i]);
  }
  // Registry empty: the minimum returns to the watermark.
  EXPECT_EQ(mgr_.active_count(), 0u);
  EXPECT_EQ(mgr_.min_active_read_ts(), mgr_.stable_ts());
}

TEST_F(TxnManagerTest, PageWriteBookkeeping) {
  const LockKey page{1, LockKind::kPage, "p0"};
  EXPECT_EQ(mgr_.PageLastWriteTs(page), 0u);

  auto t = mgr_.Begin(IsolationLevel::kSnapshot);
  mgr_.EnsureSnapshot(t.get());
  t->page_writes.push_back(page);
  ASSERT_TRUE(CommitNoCheck(t).ok());

  Timestamp ts = 0;
  TxnId writer = 0;
  ASSERT_TRUE(mgr_.PageLastWrite(page, &ts, &writer));
  EXPECT_EQ(ts, t->commit_ts.load());
  EXPECT_EQ(writer, t->id);

  // A later writer supersedes the slot.
  auto t2 = mgr_.Begin(IsolationLevel::kSnapshot);
  mgr_.EnsureSnapshot(t2.get());
  t2->page_writes.push_back(page);
  ASSERT_TRUE(CommitNoCheck(t2).ok());
  ASSERT_TRUE(mgr_.PageLastWrite(page, &ts, &writer));
  EXPECT_EQ(writer, t2->id);
}

TEST_F(TxnManagerTest, AbortedPageWritesLeaveNoTrace) {
  const LockKey page{1, LockKind::kPage, "p1"};
  auto t = mgr_.Begin(IsolationLevel::kSnapshot);
  mgr_.EnsureSnapshot(t.get());
  t->page_writes.push_back(page);
  mgr_.Abort(t);
  EXPECT_EQ(mgr_.PageLastWriteTs(page), 0u);
}

TEST_F(TxnManagerTest, SuspendedChainCleanupInCommitOrder) {
  // Three overlapping SSI readers commit in order while a fourth keeps
  // them all alive; ending the fourth releases all three at once.
  auto keeper = mgr_.Begin(IsolationLevel::kSerializableSSI);
  mgr_.EnsureSnapshot(keeper.get());
  AdvanceWatermark();  // Readers' commit timestamps exceed keeper's snap.
  std::vector<std::shared_ptr<TxnState>> readers;
  for (int i = 0; i < 3; ++i) {
    auto r = mgr_.Begin(IsolationLevel::kSerializableSSI);
    mgr_.EnsureSnapshot(r.get());
    locks_.Acquire(r->id, LockKey{1, LockKind::kRow, std::to_string(i)},
                   LockMode::kSIRead);
    readers.push_back(r);
  }
  for (auto& r : readers) ASSERT_TRUE(CommitNoCheck(r).ok());
  EXPECT_EQ(mgr_.suspended_count(), 3u);
  mgr_.Abort(keeper);  // Abort also sweeps.
  EXPECT_EQ(mgr_.suspended_count(), 0u);
  EXPECT_EQ(locks_.GrantCount(), 0u);
}

TEST_F(TxnManagerTest, CheckpointFloorCapsPruneHorizon) {
  // BeginCheckpointSweep publishes the sweep watermark as a floor on
  // pruning; commits landing during the sweep may advance the watermark
  // and the min-active past it, but prune_horizon() must stay at or
  // below the returned watermark until the sweep ends.
  AdvanceWatermark();
  const Timestamp w = mgr_.BeginCheckpointSweep();
  EXPECT_EQ(w, mgr_.stable_ts());
  AdvanceWatermark();
  AdvanceWatermark();
  EXPECT_GT(mgr_.stable_ts(), w);
  EXPECT_GT(mgr_.min_active_read_ts(), w);
  EXPECT_LE(mgr_.prune_horizon(), w);
  mgr_.EndCheckpointSweep();
  EXPECT_GT(mgr_.prune_horizon(), w);
}

// ---------------------------------------------------------------------------
// Commit-ring property tests (tiny rings; the ring is the unit under
// test — TxnManager::Commit drives it with allocation/stamping fused, so
// the adversarial interleavings are constructed here directly).
// ---------------------------------------------------------------------------

TEST(CommitRingTest, WatermarkNeverPassesAnUnstampedSlot) {
  CommitRing ring(8);
  const Timestamp t1 = ring.Allocate();
  const Timestamp t2 = ring.Allocate();
  const Timestamp t3 = ring.Allocate();
  ASSERT_EQ(t2, t1 + 1);
  ASSERT_EQ(t3, t2 + 1);
  // Stamp out of order: t2 and t3 first. The watermark must hold below
  // t1 — it may never cover a commit whose versions are not stamped.
  ring.Publish(t2);
  ring.Publish(t3);
  EXPECT_EQ(ring.stable(), t1 - 1);
  ring.Publish(t1);
  EXPECT_EQ(ring.stable(), t3);
}

TEST(CommitRingTest, WraparoundPastManyLaps) {
  // 10 laps around a tiny ring, alternating in-order and out-of-order
  // publication of small in-flight windows.
  CommitRing ring(4);
  const uint64_t n = ring.slots();
  for (uint64_t lap = 0; lap < 10 * n; ++lap) {
    const Timestamp a = ring.Allocate();
    const Timestamp b = ring.Allocate();
    if (lap % 2 == 0) {
      ring.Publish(b);  // Out of order: watermark waits for a.
      EXPECT_EQ(ring.stable(), a - 1);
      ring.Publish(a);
    } else {
      ring.Publish(a);
      ring.Publish(b);
    }
    EXPECT_EQ(ring.stable(), b);
    ring.WaitCovered(b);  // Fast path; must not block.
  }
  EXPECT_EQ(ring.full_stalls(), 0u);  // Window (2) never exceeded 4 slots.
}

TEST(CommitRingTest, RingFullBackpressureBlocksUntilCovered) {
  CommitRing ring(2);
  const uint64_t n = ring.slots();  // 2.
  // Allocate n + 1 timestamps: the last one's slot is still owned by the
  // first (uncovered) commit, so its Publish must stall.
  std::vector<Timestamp> ts;
  for (uint64_t i = 0; i < n + 1; ++i) ts.push_back(ring.Allocate());

  std::atomic<bool> published{false};
  std::thread straggler([&] {
    ring.Publish(ts.back());  // Parks: stable < ts.back() - n.
    published.store(true);
  });
  // Give the straggler time to park; the watermark must not have moved
  // and the publication must not have happened.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(published.load());
  EXPECT_EQ(ring.stable(), ts.front() - 1);

  // Covering the first commit frees the straggler's slot.
  ring.Publish(ts[0]);
  ring.Publish(ts[1]);
  straggler.join();
  EXPECT_TRUE(published.load());
  EXPECT_GE(ring.full_stalls(), 1u);
  EXPECT_EQ(ring.stable(), ts.back());
}

TEST(CommitRingTest, ConcurrentPublishersConvergeAndWake) {
  // Hammer a small ring from several threads; every allocation must end
  // up covered, the watermark must equal the clock at quiescence, and no
  // waiter may be left behind.
  CommitRing ring(8);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 2000;
  std::vector<std::thread> workers;
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        const Timestamp ts = ring.Allocate();
        ring.Publish(ts);
        ring.WaitCovered(ts);
      }
    });
  }
  for (auto& t : workers) t.join();
  EXPECT_EQ(ring.stable(), ring.clock());
  EXPECT_EQ(ring.clock(), 1u + kThreads * kPerThread);
  EXPECT_GE(ring.max_depth(), 1u);
}

TEST(CommitRingTest, AdvanceToJumpsClockAndWatermark) {
  CommitRing ring(8);
  ring.AdvanceTo(1000);
  EXPECT_EQ(ring.clock(), 1000u);
  EXPECT_EQ(ring.stable(), 1000u);
  ring.AdvanceTo(500);  // Monotonic: never moves backwards.
  EXPECT_EQ(ring.clock(), 1000u);
  const Timestamp next = ring.Allocate();
  EXPECT_EQ(next, 1001u);
  ring.Publish(next);
  EXPECT_EQ(ring.stable(), 1001u);
}

// ---------------------------------------------------------------------------
// Tiny-ring TxnManager integration: backpressure and wraparound through
// the real commit path.
// ---------------------------------------------------------------------------

class TinyRingTxnManagerTest : public TxnManagerTest {
 protected:
  static DBOptions TinyRingOptions() {
    DBOptions o;
    o.commit_ring_slots = 2;
    o.txn_registry_shards = 2;
    return o;
  }
  TinyRingTxnManagerTest() : TxnManagerTest(TinyRingOptions()) {}
};

TEST_F(TinyRingTxnManagerTest, ManyLapsOfWritingCommits) {
  // 64 sequential writing commits lap the 2-slot ring 32 times; every
  // commit must acknowledge covered and the watermark must track the
  // commit clock exactly.
  for (int i = 0; i < 64; ++i) {
    auto t = mgr_.Begin(IsolationLevel::kSnapshot);
    mgr_.EnsureSnapshot(t.get());
    ASSERT_TRUE(CommitWithWrite(t).ok());
    ASSERT_EQ(mgr_.stable_ts(), t->commit_ts.load());
  }
  EXPECT_EQ(mgr_.ring_full_stalls(), 0u);  // Sequential: window depth 1.
}

TEST_F(TinyRingTxnManagerTest, ConcurrentWritersSurviveBackpressure) {
  // 4 threads × 200 writing commits through a 2-slot ring: backpressure
  // and out-of-order stamping happen constantly; everything must drain.
  constexpr int kThreads = 4;
  constexpr int kPerThread = 200;
  std::atomic<uint64_t> committed{0};
  std::vector<std::thread> workers;
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([&] {
      std::vector<std::unique_ptr<VersionChain>> local_chains;
      for (int i = 0; i < kPerThread; ++i) {
        auto t = mgr_.Begin(IsolationLevel::kSnapshot);
        mgr_.EnsureSnapshot(t.get());
        auto chain = std::make_unique<VersionChain>();
        bool replaced = false;
        Version* v =
            chain->InstallUncommitted(t->id, "v", false, &replaced);
        t->write_set.push_back(
            TxnState::WriteRecord{0, "k", chain.get(), v, nullptr});
        local_chains.push_back(std::move(chain));
        ASSERT_TRUE(mgr_.Commit(t, nullptr, {}).ok());
        committed.fetch_add(1);
      }
    });
  }
  for (auto& t : workers) t.join();
  EXPECT_EQ(committed.load(), uint64_t{kThreads} * kPerThread);
  EXPECT_EQ(mgr_.active_count(), 0u);
  // Watermark caught up with every allocated commit timestamp.
  EXPECT_EQ(mgr_.stable_ts(), mgr_.clock_now());
}

}  // namespace
}  // namespace ssidb
