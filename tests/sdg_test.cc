// Tests for the static dependency graph analyzer (§2.6, Definition 1,
// Theorem 3) against the paper's own analyses: SmallBank's single pivot,
// the four fixes removing it, TPC-C's serializability under SI, TPC-C++'s
// two pivots, and sibench's single-edge graph.

#include <gtest/gtest.h>

#include <algorithm>

#include "src/sgt/sdg.h"
#include "src/sgt/sdg_catalog.h"

namespace ssidb::sgt {
namespace {

bool HasVulnerableEdge(const SdgAnalysis& a, const std::string& from,
                       const std::string& to) {
  for (const SdgEdge& e : a.edges) {
    if (e.from == from && e.to == to && e.type == SdgEdgeType::kRW &&
        e.vulnerable) {
      return true;
    }
  }
  return false;
}

bool HasWwEdge(const SdgAnalysis& a, const std::string& from,
               const std::string& to) {
  for (const SdgEdge& e : a.edges) {
    if (e.from == from && e.to == to && e.type == SdgEdgeType::kWW) {
      return true;
    }
  }
  return false;
}

TEST(SdgTest, EmptyAndSingleProgramAreSafe) {
  EXPECT_TRUE(AnalyzeSdg({}).serializable_under_si());
  auto a = AnalyzeSdg({Program{"P", {"x"}, {"x"}}});
  EXPECT_TRUE(a.serializable_under_si());
}

TEST(SdgTest, WriteSkewPairIsDangerous) {
  // Fig 2.1 as programs: P1 reads {x,y} writes x; P2 reads {x,y} writes y.
  auto a = AnalyzeSdg({
      Program{"P1", {"x", "y"}, {"x"}},
      Program{"P2", {"x", "y"}, {"y"}},
  });
  EXPECT_FALSE(a.serializable_under_si());
  // Both are pivots (Tin == Tout case).
  auto pivots = a.Pivots();
  EXPECT_EQ(pivots.size(), 2u);
}

TEST(SdgTest, SharedWriteShieldsTheEdge) {
  // Adding a common written item removes the vulnerability (§2.6: the
  // materialize/promote principle).
  auto a = AnalyzeSdg({
      Program{"P1", {"x", "y"}, {"x", "z"}},
      Program{"P2", {"x", "y"}, {"y", "z"}},
  });
  EXPECT_TRUE(a.serializable_under_si());
  EXPECT_FALSE(HasVulnerableEdge(a, "P1", "P2"));
  EXPECT_TRUE(HasWwEdge(a, "P1", "P2"));
}

TEST(SdgTest, ConsecutiveVulnerableEdgesAlwaysCloseAtClassGranularity) {
  // Definition 1(c) asks for a path Q ->* R, but at item-class granularity
  // it is automatically satisfied whenever (a) and (b) are: the rw edge
  // R -> P on item x coexists with its mirror wr edge P -> R (P writes x,
  // R reads x), and likewise Q -wr-> P — so Q -> P -> R is always a path.
  // This three-program chain therefore IS dangerous, with pivot P.
  auto a = AnalyzeSdg({
      Program{"R", {"x"}, {}},       // reads x -> vulnerable into P.
      Program{"P", {"y"}, {"x"}},    // pivot: reads y, writes x.
      Program{"Q", {}, {"y", "z"}},  // writes y (P -> Q vulnerable).
      Program{"S", {"z"}, {"w"}},    // A bystander reader of z.
  });
  EXPECT_FALSE(a.serializable_under_si());
  ASSERT_FALSE(a.dangerous_structures.empty());
  EXPECT_EQ(a.dangerous_structures[0].in, "R");
  EXPECT_EQ(a.dangerous_structures[0].pivot, "P");
  EXPECT_EQ(a.dangerous_structures[0].out, "Q");
  // The bystander never becomes a pivot (no vulnerable out-edge... it has
  // one into Q, but nothing vulnerable enters S).
  for (const auto& d : a.dangerous_structures) {
    EXPECT_NE(d.pivot, "S");
  }
}

TEST(SdgTest, SmallBankHasExactlyTheWriteCheckPivot) {
  auto a = AnalyzeSdg(SmallBankPrograms());
  EXPECT_FALSE(a.serializable_under_si());
  auto pivots = a.Pivots();
  ASSERT_EQ(pivots.size(), 1u);
  EXPECT_EQ(pivots[0], "WC");  // §2.8.4's conclusion.
  // The dangerous cycle is Bal -> WC -> TS (-> Bal).
  bool found = false;
  for (const auto& d : a.dangerous_structures) {
    if (d.in == "Bal" && d.pivot == "WC" && d.out == "TS") found = true;
  }
  EXPECT_TRUE(found);
}

TEST(SdgTest, SmallBankEdgeVulnerabilitiesMatchFig29) {
  auto a = AnalyzeSdg(SmallBankPrograms());
  // Dashed (vulnerable) edges of Fig 2.9.
  EXPECT_TRUE(HasVulnerableEdge(a, "Bal", "DC"));
  EXPECT_TRUE(HasVulnerableEdge(a, "Bal", "TS"));
  EXPECT_TRUE(HasVulnerableEdge(a, "Bal", "Amg"));
  EXPECT_TRUE(HasVulnerableEdge(a, "Bal", "WC"));
  EXPECT_TRUE(HasVulnerableEdge(a, "WC", "TS"));
  // §2.8.4's subtle cases: WC -> Amg is NOT vulnerable (Amg writes both
  // accounts), and update programs shield each other via ww conflicts.
  EXPECT_FALSE(HasVulnerableEdge(a, "WC", "Amg"));
  EXPECT_FALSE(HasVulnerableEdge(a, "DC", "Amg"));
  EXPECT_FALSE(HasVulnerableEdge(a, "TS", "Amg"));
  EXPECT_TRUE(HasWwEdge(a, "WC", "Amg"));
}

class SmallBankFixSdgTest
    : public ::testing::TestWithParam<std::vector<Program> (*)()> {};

TEST_P(SmallBankFixSdgTest, FixRemovesEveryDangerousStructure) {
  auto a = AnalyzeSdg(GetParam()());
  EXPECT_TRUE(a.serializable_under_si())
      << DescribeSdg(GetParam()(), a);
}

INSTANTIATE_TEST_SUITE_P(AllFixes, SmallBankFixSdgTest,
                         ::testing::Values(&SmallBankMaterializeWT,
                                           &SmallBankPromoteWT,
                                           &SmallBankMaterializeBW,
                                           &SmallBankPromoteBW));

TEST(SdgTest, TpccIsSerializableUnderSI) {
  // The Fekete et al. 2005 result the paper leans on (§2.8.1): TPC-C's
  // SDG has no dangerous structure.
  auto programs = TpccPrograms();
  auto a = AnalyzeSdg(programs);
  EXPECT_TRUE(a.serializable_under_si()) << DescribeSdg(programs, a);
  // But vulnerable edges exist (e.g. read-only programs into NEWO):
  EXPECT_TRUE(HasVulnerableEdge(a, "SLEV", "NEWO"));
  EXPECT_TRUE(HasVulnerableEdge(a, "DLVY1", "NEWO"));
}

TEST(SdgTest, TpccPlusPlusHasTheTwoPivots) {
  // §5.3.3: "there are two pivots: New Order and Credit Check".
  auto a = AnalyzeSdg(TpccPlusPlusPrograms());
  EXPECT_FALSE(a.serializable_under_si());
  auto pivots = a.Pivots();
  EXPECT_NE(std::find(pivots.begin(), pivots.end(), "NEWO"), pivots.end());
  EXPECT_NE(std::find(pivots.begin(), pivots.end(), "CCHECK"), pivots.end());
  // The simplest cycle: CCHECK <-> NEWO (the straightforward write skew).
  bool two_cycle = false;
  for (const auto& d : a.dangerous_structures) {
    if (d.pivot == "CCHECK" && d.in == "NEWO" && d.out == "NEWO") {
      two_cycle = true;
    }
  }
  EXPECT_TRUE(two_cycle);
  // Fig 5.3's CCHECK ww self-loop (two concurrent checks on one customer).
  EXPECT_TRUE(HasWwEdge(a, "CCHECK", "CCHECK"));
}

TEST(SdgTest, SiBenchSingleEdgeNoDanger) {
  // §5.2: "there is only a single edge in the static dependency graph" —
  // one vulnerable rw from Query to Update, no possibility of write skew.
  auto a = AnalyzeSdg(SiBenchPrograms());
  EXPECT_TRUE(a.serializable_under_si());
  EXPECT_TRUE(HasVulnerableEdge(a, "Query", "Update"));
  EXPECT_FALSE(HasVulnerableEdge(a, "Update", "Query"));
}

TEST(SdgTest, DescribeMentionsPivotOrTheorem) {
  auto programs = SmallBankPrograms();
  auto a = AnalyzeSdg(programs);
  EXPECT_NE(DescribeSdg(programs, a).find("pivot: WC"), std::string::npos);
  auto safe = TpccPrograms();
  auto b = AnalyzeSdg(safe);
  EXPECT_NE(DescribeSdg(safe, b).find("Theorem 3"), std::string::npos);
}

}  // namespace
}  // namespace ssidb::sgt
