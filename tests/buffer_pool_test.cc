// Buffer pool + run file tests: the pin/victim discipline (hash lookup,
// pin refcounts, clock second-chance eviction, dirty writeback), the run
// file format (CRC-framed sorted pages, fence index, durability envelope),
// and a concurrent pin/evict/read stress that the TSan CI job runs to
// prove the frame state machine race-free.

#include <gtest/gtest.h>

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/common/encoding.h"
#include "src/common/random.h"
#include "src/storage/buffer_pool.h"
#include "src/storage/run_file.h"
#include "tests/test_util.h"

namespace ssidb {
namespace {

constexpr uint32_t kPage = 512;

std::shared_ptr<PoolFile> OpenPoolFile(const std::string& path, uint64_t id) {
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  EXPECT_GE(fd, 0);
  return std::make_shared<PoolFile>(id, fd);
}

/// Fill `page` with a recognizable pattern derived from its number.
void FillPattern(uint8_t* page, uint32_t page_no) {
  for (uint32_t i = 0; i < kPage; ++i) {
    page[i] = static_cast<uint8_t>((page_no * 31 + i) & 0xFF);
  }
}

bool CheckPattern(const uint8_t* page, uint32_t page_no) {
  for (uint32_t i = 0; i < kPage; ++i) {
    if (page[i] != static_cast<uint8_t>((page_no * 31 + i) & 0xFF)) {
      return false;
    }
  }
  return true;
}

/// Write `pages` patterned pages into `file` through the pool and flush.
void WritePages(BufferPool* pool, uint64_t file_id, uint32_t pages) {
  for (uint32_t p = 0; p < pages; ++p) {
    BufferPool::WritePin wp;
    ASSERT_TRUE(pool->PinForWrite(file_id, p, &wp).ok());
    FillPattern(wp.data, p);
    pool->Unpin(wp.frame);
  }
  ASSERT_TRUE(pool->FlushFile(file_id).ok());
}

TEST(BufferPoolTest, HitAndMissCounting) {
  ScratchDir dir;
  BufferPool pool(4 * kPage, kPage);
  ASSERT_EQ(pool.frame_count(), 4u);
  auto file = OpenPoolFile(dir.path + "/f", 1);
  pool.RegisterFile(file);
  WritePages(&pool, 1, 2);

  // Both pages are still resident from the write path: pure hits.
  const uint64_t misses_before = pool.misses();
  for (int round = 0; round < 3; ++round) {
    for (uint32_t p = 0; p < 2; ++p) {
      BufferPool::Pin pin;
      ASSERT_TRUE(pool.PinPage(1, p, &pin).ok());
      EXPECT_TRUE(CheckPattern(pin.data, p));
      pool.Unpin(pin.frame);
    }
  }
  EXPECT_EQ(pool.misses(), misses_before);
  EXPECT_GE(pool.hits(), 6u);
}

TEST(BufferPoolTest, EvictionWritesBackAndReloads) {
  ScratchDir dir;
  BufferPool pool(4 * kPage, kPage);
  auto file = OpenPoolFile(dir.path + "/f", 1);
  pool.RegisterFile(file);
  // 12 dirty pages through a 4-frame pool: the victim scan must reclaim
  // and write back frames mid-write.
  WritePages(&pool, 1, 12);
  EXPECT_GT(pool.evictions(), 0u);
  EXPECT_GE(pool.writebacks(), 8u);  // At least the evicted dirty frames.

  // Every page reads back intact, through the pool (reloads count misses).
  const uint64_t misses_before = pool.misses();
  for (uint32_t p = 0; p < 12; ++p) {
    BufferPool::Pin pin;
    ASSERT_TRUE(pool.PinPage(1, p, &pin).ok());
    EXPECT_TRUE(CheckPattern(pin.data, p)) << "page " << p;
    pool.Unpin(pin.frame);
  }
  EXPECT_GT(pool.misses(), misses_before);
}

TEST(BufferPoolTest, FlushedPagesSurvivePoolDestruction) {
  ScratchDir dir;
  const std::string path = dir.path + "/f";
  {
    BufferPool pool(4 * kPage, kPage);
    pool.RegisterFile(OpenPoolFile(path, 1));
    WritePages(&pool, 1, 6);
  }
  // Read the bytes straight from the file: the pool (and its descriptor)
  // are gone; only FlushFile's pwrites remain.
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  ASSERT_GE(fd, 0);
  uint8_t page[kPage];
  for (uint32_t p = 0; p < 6; ++p) {
    ASSERT_EQ(pread(fd, page, kPage, static_cast<off_t>(p) * kPage),
              static_cast<ssize_t>(kPage));
    EXPECT_TRUE(CheckPattern(page, p)) << "page " << p;
  }
  close(fd);
}

TEST(BufferPoolTest, PinnedFramesAreNeverVictims) {
  ScratchDir dir;
  BufferPool pool(4 * kPage, kPage);
  auto file = OpenPoolFile(dir.path + "/f", 1);
  pool.RegisterFile(file);
  WritePages(&pool, 1, 8);

  // Pin all four frames and hold them.
  std::vector<BufferPool::Pin> held;
  for (uint32_t p = 0; p < 4; ++p) {
    BufferPool::Pin pin;
    ASSERT_TRUE(pool.PinPage(1, p, &pin).ok());
    held.push_back(pin);
  }
  // A fifth page has no frame to claim: bounded retry, then kIOError.
  BufferPool::Pin extra;
  Status st = pool.PinPage(1, 7, &extra);
  EXPECT_TRUE(st.IsIOError()) << st.ToString();
  // The held pins are intact and their bytes untouched.
  for (uint32_t p = 0; p < 4; ++p) {
    EXPECT_TRUE(CheckPattern(held[p].data, p));
    pool.Unpin(held[p].frame);
  }
  // With the pins dropped the same request succeeds.
  ASSERT_TRUE(pool.PinPage(1, 7, &extra).ok());
  EXPECT_TRUE(CheckPattern(extra.data, 7));
  pool.Unpin(extra.frame);
}

TEST(BufferPoolTest, PurgeDropsFramesAndRegistration) {
  ScratchDir dir;
  BufferPool pool(8 * kPage, kPage);
  pool.RegisterFile(OpenPoolFile(dir.path + "/a", 1));
  WritePages(&pool, 1, 4);
  pool.Purge(1);
  // The purged file's frames are free again: a second file can fill the
  // whole pool without evicting anything.
  pool.RegisterFile(OpenPoolFile(dir.path + "/b", 2));
  const uint64_t evictions_before = pool.evictions();
  WritePages(&pool, 2, 8);
  EXPECT_EQ(pool.evictions(), evictions_before);
  for (uint32_t p = 0; p < 8; ++p) {
    BufferPool::Pin pin;
    ASSERT_TRUE(pool.PinPage(2, p, &pin).ok());
    EXPECT_TRUE(CheckPattern(pin.data, p));
    pool.Unpin(pin.frame);
  }
}

/// Concurrent pin/evict/reload stress (the TSan job's target): readers
/// hammer a file 8x the pool size so every pin races the clock scan, frame
/// retagging, and load publication.
TEST(BufferPoolTest, ConcurrentPinEvictStress) {
  ScratchDir dir;
  constexpr uint32_t kPages = 64;
  BufferPool pool(8 * kPage, kPage);
  auto file = OpenPoolFile(dir.path + "/f", 1);
  // Seed the file directly so the test starts from a cold pool.
  {
    uint8_t page[kPage];
    for (uint32_t p = 0; p < kPages; ++p) {
      FillPattern(page, p);
      ASSERT_EQ(pwrite(file->fd(), page, kPage,
                       static_cast<off_t>(p) * kPage),
                static_cast<ssize_t>(kPage));
    }
  }
  pool.RegisterFile(file);

  constexpr int kThreads = 4;
  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Random rng(static_cast<uint64_t>(t) * 977 + 5);
      for (int i = 0; i < 4000 && !failed.load(std::memory_order_relaxed);
           ++i) {
        const uint32_t p = static_cast<uint32_t>(rng.Uniform(kPages));
        BufferPool::Pin pin;
        Status st = pool.PinPage(1, p, &pin);
        if (!st.ok() || !CheckPattern(pin.data, p)) {
          failed.store(true, std::memory_order_relaxed);
          break;
        }
        pool.Unpin(pin.frame);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_FALSE(failed.load());
  EXPECT_GT(pool.evictions(), 0u);
  // Conservation: every miss loaded into a frame that was either free or
  // evicted; the pool never grew past its fixed frame count.
  EXPECT_EQ(pool.frame_count(), 8u);
}

// ---------------------------------------------------------------------------
// Run files.
// ---------------------------------------------------------------------------

std::vector<RunEntry> MakeEntries(uint64_t n, Timestamp base_cts) {
  std::vector<RunEntry> entries;
  for (uint64_t i = 0; i < n; ++i) {
    RunEntry e;
    e.key = EncodeU64Key(i);
    e.value = "value-" + std::to_string(i);
    e.commit_ts = base_cts + i;
    e.tombstone = (i % 7) == 0;
    entries.push_back(std::move(e));
  }
  return entries;
}

TEST(RunFileTest, CreateLookupRoundTripAcrossPages) {
  ScratchDir dir;
  BufferPool pool(4 * kPage, kPage);
  const auto entries = MakeEntries(200, /*base_cts=*/100);
  std::shared_ptr<RunFile> run;
  ASSERT_TRUE(RunFile::Create(dir.path + "/t.run", /*table_id=*/3, /*seq=*/1,
                              /*file_id=*/1, kPage, entries, &pool,
                              /*fsync=*/true, &run)
                  .ok());
  EXPECT_EQ(run->entry_count(), 200u);
  EXPECT_GT(run->page_count(), 1u) << "entries must span several pages";

  // Every entry comes back exact: key, value, commit_ts, tombstone.
  for (const RunEntry& want : entries) {
    RunEntry got;
    bool found = false;
    ASSERT_TRUE(run->Lookup(&pool, want.key, &got, &found).ok());
    ASSERT_TRUE(found) << want.key;
    EXPECT_EQ(got.value, want.value);
    EXPECT_EQ(got.commit_ts, want.commit_ts);
    EXPECT_EQ(got.tombstone, want.tombstone);
  }
  // Absent keys (below, between, above) report not-found with OK status.
  for (const std::string& key :
       {std::string("\x00", 1), EncodeU64Key(5) + "x", EncodeU64Key(9999)}) {
    RunEntry got;
    bool found = true;
    ASSERT_TRUE(run->Lookup(&pool, key, &got, &found).ok());
    EXPECT_FALSE(found);
  }
}

TEST(RunFileTest, OpenValidatesAndForEachScans) {
  ScratchDir dir;
  const std::string path = dir.path + "/t.run";
  const auto entries = MakeEntries(64, /*base_cts=*/7);
  {
    BufferPool pool(4 * kPage, kPage);
    std::shared_ptr<RunFile> run;
    ASSERT_TRUE(RunFile::Create(path, 3, 9, 1, kPage, entries, &pool, true,
                                &run)
                    .ok());
  }
  BufferPool pool(4 * kPage, kPage);
  std::shared_ptr<RunFile> run;
  ASSERT_TRUE(RunFile::Open(path, /*file_id=*/5, &pool, &run).ok());
  EXPECT_EQ(run->table_id(), 3u);
  EXPECT_EQ(run->seq(), 9u);
  EXPECT_EQ(run->entry_count(), 64u);
  // ForEachEntry yields the full sorted contents (the compaction path).
  size_t i = 0;
  ASSERT_TRUE(run->ForEachEntry([&](const RunEntry& e) {
                    EXPECT_EQ(e.key, entries[i].key);
                    EXPECT_EQ(e.commit_ts, entries[i].commit_ts);
                    ++i;
                  })
                  .ok());
  EXPECT_EQ(i, 64u);
}

TEST(RunFileTest, CorruptDataPageIsDetectedByLookup) {
  ScratchDir dir;
  const std::string path = dir.path + "/t.run";
  const auto entries = MakeEntries(64, /*base_cts=*/7);
  {
    BufferPool pool(4 * kPage, kPage);
    std::shared_ptr<RunFile> run;
    ASSERT_TRUE(
        RunFile::Create(path, 3, 1, 1, kPage, entries, &pool, true, &run)
            .ok());
  }
  // Flip a byte in the middle of data page 1 (file page 2).
  {
    const int fd = ::open(path.c_str(), O_RDWR | O_CLOEXEC);
    ASSERT_GE(fd, 0);
    uint8_t b = 0;
    const off_t off = 2 * kPage + 100;
    ASSERT_EQ(pread(fd, &b, 1, off), 1);
    b ^= 0x40;
    ASSERT_EQ(pwrite(fd, &b, 1, off), 1);
    close(fd);
  }
  BufferPool pool(4 * kPage, kPage);
  std::shared_ptr<RunFile> run;
  ASSERT_TRUE(RunFile::Open(path, 1, &pool, &run).ok());
  // A key on the damaged page fails with corruption, not a wrong answer.
  bool hit_corruption = false;
  for (const RunEntry& want : entries) {
    RunEntry got;
    bool found = false;
    Status st = run->Lookup(&pool, want.key, &got, &found);
    if (!st.ok()) {
      EXPECT_TRUE(st.IsCorruption()) << st.ToString();
      hit_corruption = true;
    } else if (found) {
      EXPECT_EQ(got.value, want.value);
    }
  }
  EXPECT_TRUE(hit_corruption);
}

TEST(RunFileTest, TruncatedTrailerFailsOpen) {
  ScratchDir dir;
  const std::string path = dir.path + "/t.run";
  {
    BufferPool pool(4 * kPage, kPage);
    std::shared_ptr<RunFile> run;
    ASSERT_TRUE(RunFile::Create(path, 3, 1, 1, kPage, MakeEntries(10, 1),
                                &pool, true, &run)
                    .ok());
  }
  {
    // Chop the trailer off.
    std::error_code ec;
    const auto size = std::filesystem::file_size(path, ec);
    ASSERT_FALSE(ec);
    std::filesystem::resize_file(path, size - 8, ec);
    ASSERT_FALSE(ec);
  }
  BufferPool pool(4 * kPage, kPage);
  std::shared_ptr<RunFile> run;
  EXPECT_FALSE(RunFile::Open(path, 1, &pool, &run).ok());
}

}  // namespace
}  // namespace ssidb
