// TPC-C++ tests (§5.3): schema encoding, loader cardinalities, the six
// transaction programs' semantics, the §5.3.3 Credit Check anomaly, and the
// spec consistency conditions under concurrent execution.

#include <gtest/gtest.h>

#include <memory>
#include <thread>

#include "src/sgt/mvsg.h"
#include "src/workloads/tpcc_workload.h"

namespace ssidb::workloads::tpcc {
namespace {

TEST(TpccSchemaTest, RowEncodingsRoundTrip) {
  WarehouseRow w{.name = "wh", .tax_bp = 1234, .ytd_cents = 987654321};
  WarehouseRow w2;
  ASSERT_TRUE(WarehouseRow::Decode(w.Encode(), &w2));
  EXPECT_EQ(w2.name, "wh");
  EXPECT_EQ(w2.tax_bp, 1234);
  EXPECT_EQ(w2.ytd_cents, 987654321);

  DistrictRow d{.name = "d", .tax_bp = 1, .ytd_cents = 2, .next_o_id = 3001};
  DistrictRow d2;
  ASSERT_TRUE(DistrictRow::Decode(d.Encode(), &d2));
  EXPECT_EQ(d2.next_o_id, 3001u);

  CustomerRow c;
  c.first = "first";
  c.last = "BARBARBAR";
  c.credit_lim_cents = 5000000;
  c.discount_bp = 432;
  c.balance_cents = -1000;
  c.ytd_payment_cents = 777;
  c.payment_cnt = 3;
  c.delivery_cnt = 2;
  CustomerRow c2;
  ASSERT_TRUE(CustomerRow::Decode(c.Encode(), &c2));
  EXPECT_EQ(c2.last, "BARBARBAR");
  EXPECT_EQ(c2.balance_cents, -1000);
  EXPECT_EQ(c2.delivery_cnt, 2u);

  // The partitioned credit byte (§5.3.3).
  Credit credit = Credit::kGood;
  ASSERT_TRUE(DecodeCredit(EncodeCredit(Credit::kBad), &credit));
  EXPECT_EQ(credit, Credit::kBad);
  EXPECT_FALSE(DecodeCredit("", &credit));
  EXPECT_FALSE(DecodeCredit("xy", &credit));

  ItemRow i{.name = "item", .price_cents = 500, .data = "data"};
  ItemRow i2;
  ASSERT_TRUE(ItemRow::Decode(i.Encode(), &i2));
  EXPECT_EQ(i2.price_cents, 500);

  StockRow s{.quantity = -3, .ytd = 10, .order_cnt = 4, .remote_cnt = 1,
             .data = "sd"};
  StockRow s2;
  ASSERT_TRUE(StockRow::Decode(s.Encode(), &s2));
  EXPECT_EQ(s2.quantity, -3);  // Quantities may go negative pre-restock.
  EXPECT_EQ(s2.remote_cnt, 1u);

  OrderRow o{.c_id = 9, .carrier_id = 0, .ol_cnt = 7, .entry_d = 1234};
  OrderRow o2;
  ASSERT_TRUE(OrderRow::Decode(o.Encode(), &o2));
  EXPECT_EQ(o2.ol_cnt, 7u);

  OrderLineRow l{.i_id = 55, .supply_w_id = 2, .quantity = 6,
                 .amount_cents = 4242, .delivery_d = 0};
  OrderLineRow l2;
  ASSERT_TRUE(OrderLineRow::Decode(l.Encode(), &l2));
  EXPECT_EQ(l2.amount_cents, 4242);
}

TEST(TpccSchemaTest, KeysOrderByTupleComponents) {
  EXPECT_LT(OrderKey(1, 1, 5), OrderKey(1, 1, 6));
  EXPECT_LT(OrderKey(1, 1, 999), OrderKey(1, 2, 0));
  EXPECT_LT(OrderKey(1, 10, 999), OrderKey(2, 1, 0));
  EXPECT_LT(OrderLineKey(1, 1, 5, 1), OrderLineKey(1, 1, 5, 2));
  EXPECT_LT(OrderLineKey(1, 1, 5, 15), OrderLineKey(1, 1, 6, 1));
}

TEST(TpccSchemaTest, OrderIdFromKeyRecoversTrailingComponent) {
  EXPECT_EQ(OrderIdFromKey(OrderKey(3, 7, 12345)), 12345u);
  EXPECT_EQ(OrderIdFromKey(NewOrderKey(1, 1, 1)), 1u);
  EXPECT_EQ(OrderIdFromKey(OrderCustomerKey(1, 2, 3, 77)), 77u);
}

TEST(TpccSchemaTest, CustomerNamePrefixCoversAllIds) {
  const std::string prefix = CustomerNamePrefix(1, 2, "BARBARBAR");
  const std::string k1 = CustomerNameKey(1, 2, "BARBARBAR", 1);
  const std::string k2 = CustomerNameKey(1, 2, "BARBARBAR", 4000000);
  EXPECT_EQ(k1.compare(0, prefix.size(), prefix), 0);
  EXPECT_EQ(k2.compare(0, prefix.size(), prefix), 0);
  // A different name does not share the prefix.
  const std::string other = CustomerNameKey(1, 2, "BARBAROUGHT", 1);
  EXPECT_NE(other.compare(0, prefix.size(), prefix), 0);
}

TEST(TpccSchemaTest, LastNameSyllables) {
  EXPECT_EQ(LastName(0), "BARBARBAR");
  EXPECT_EQ(LastName(1), "BARBAROUGHT");
  EXPECT_EQ(LastName(371), "PRICALLYOUGHT");
  EXPECT_EQ(LastName(999), "EINGEINGEING");
}

/// Shared tiny-scale environment: loading is the slow part, so the
/// semantic tests share one instance.
class TpccEnv : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    db_ = new std::unique_ptr<DB>;
    ASSERT_TRUE(DB::Open({}, db_).ok());
    TpccConfig cfg;
    cfg.warehouses = 1;
    cfg.tiny = true;
    workload_ = new std::unique_ptr<TpccWorkload>;
    Status st = TpccWorkload::Setup(db_->get(), cfg, 42, workload_);
    ASSERT_TRUE(st.ok()) << st.ToString();
  }
  static void TearDownTestSuite() {
    delete workload_;
    delete db_;
  }

  DB* db() { return db_->get(); }
  const TpccContext& ctx() { return (*workload_)->context(); }
  TpccWorkload* workload() { return workload_->get(); }

  static std::unique_ptr<DB>* db_;
  static std::unique_ptr<TpccWorkload>* workload_;
};

std::unique_ptr<DB>* TpccEnv::db_ = nullptr;
std::unique_ptr<TpccWorkload>* TpccEnv::workload_ = nullptr;

TEST_F(TpccEnv, LoaderCardinalities) {
  // Tiny scale: 1000 items, 1 warehouse, 10 districts, 100 customers each.
  auto txn = db()->Begin({IsolationLevel::kSnapshot});
  auto count_range = [&](TableId t, std::string lo, std::string hi) {
    int n = 0;
    EXPECT_TRUE(
        txn->Scan(t, lo, hi, [&n](Slice, Slice) { ++n; return true; }).ok());
    return n;
  };
  EXPECT_EQ(count_range(ctx().tables->item, ItemKey(0), ItemKey(UINT32_MAX)),
            1000);
  EXPECT_EQ(count_range(ctx().tables->district, DistrictKey(1, 0),
                        DistrictKey(1, UINT32_MAX)),
            10);
  EXPECT_EQ(count_range(ctx().tables->customer, CustomerKey(1, 1, 0),
                        CustomerKey(1, 1, UINT32_MAX)),
            100);
  EXPECT_EQ(count_range(ctx().tables->stock, StockKey(1, 0),
                        StockKey(1, UINT32_MAX)),
            1000);
  // 100 initial orders per district, ~30% undelivered.
  EXPECT_EQ(count_range(ctx().tables->order, OrderKey(1, 1, 0),
                        OrderKey(1, 1, UINT32_MAX)),
            100);
  const int new_orders = count_range(ctx().tables->new_order,
                                     NewOrderKey(1, 1, 0),
                                     NewOrderKey(1, 1, UINT32_MAX));
  EXPECT_EQ(new_orders, 30);
  txn->Commit();
}

TEST_F(TpccEnv, NewOrderCreatesRowsAndBumpsDistrict) {
  NewOrderInput in;
  in.w = 1;
  in.d = 2;
  in.c = 5;
  in.lines = {{1, 1, 3}, {2, 1, 1}};
  NewOrderOutput out;
  Status st =
      NewOrder(ctx(), IsolationLevel::kSerializableSSI, in, &out);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_GT(out.o_id, 100u);  // Past the initial population.
  EXPECT_GT(out.total_cents, 0);

  auto txn = db()->Begin({IsolationLevel::kSnapshot});
  std::string v;
  EXPECT_TRUE(txn->Get(ctx().tables->order, OrderKey(1, 2, out.o_id), &v).ok());
  OrderRow order;
  ASSERT_TRUE(OrderRow::Decode(v, &order));
  EXPECT_EQ(order.c_id, 5u);
  EXPECT_EQ(order.ol_cnt, 2u);
  EXPECT_TRUE(
      txn->Get(ctx().tables->new_order, NewOrderKey(1, 2, out.o_id), &v).ok());
  EXPECT_TRUE(txn->Get(ctx().tables->order_line,
                       OrderLineKey(1, 2, out.o_id, 2), &v)
                  .ok());
  // District next_o_id advanced past the new order.
  EXPECT_TRUE(txn->Get(ctx().tables->district, DistrictKey(1, 2), &v).ok());
  DistrictRow d;
  ASSERT_TRUE(DistrictRow::Decode(v, &d));
  EXPECT_EQ(d.next_o_id, out.o_id + 1);
  txn->Commit();
}

TEST_F(TpccEnv, NewOrderUnusedItemRollsBackWholeTransaction) {
  // Read the district's next_o_id before and after: must be unchanged.
  auto before = db()->Begin({IsolationLevel::kSnapshot});
  std::string v;
  ASSERT_TRUE(before->Get(ctx().tables->district, DistrictKey(1, 3), &v).ok());
  DistrictRow d_before;
  ASSERT_TRUE(DistrictRow::Decode(v, &d_before));
  before->Commit();

  NewOrderInput in;
  in.w = 1;
  in.d = 3;
  in.c = 1;
  in.lines = {{1, 1, 1}, {ctx().config.items() + 1, 1, 1}};  // Unused id.
  Status st = NewOrder(ctx(), IsolationLevel::kSerializableSSI, in, nullptr);
  EXPECT_TRUE(st.IsNotFound()) << st.ToString();

  auto after = db()->Begin({IsolationLevel::kSnapshot});
  ASSERT_TRUE(after->Get(ctx().tables->district, DistrictKey(1, 3), &v).ok());
  DistrictRow d_after;
  ASSERT_TRUE(DistrictRow::Decode(v, &d_after));
  EXPECT_EQ(d_after.next_o_id, d_before.next_o_id);
  after->Commit();
}

TEST_F(TpccEnv, PaymentByIdUpdatesBalancesAndYtd) {
  PaymentInput in;
  in.w = 1;
  in.d = 4;
  in.customer = {1, 4, false, 7, ""};
  in.amount_cents = 12345;

  auto read_customer = [&](CustomerRow* c) {
    auto txn = db()->Begin({IsolationLevel::kSnapshot});
    std::string v;
    ASSERT_TRUE(txn->Get(ctx().tables->customer, CustomerKey(1, 4, 7), &v).ok());
    ASSERT_TRUE(CustomerRow::Decode(v, c));
    txn->Commit();
  };
  CustomerRow before;
  read_customer(&before);
  ASSERT_TRUE(Payment(ctx(), IsolationLevel::kSerializableSSI, in).ok());
  CustomerRow after;
  read_customer(&after);
  EXPECT_EQ(after.balance_cents, before.balance_cents - 12345);
  EXPECT_EQ(after.ytd_payment_cents, before.ytd_payment_cents + 12345);
  EXPECT_EQ(after.payment_cnt, before.payment_cnt + 1);
}

TEST_F(TpccEnv, PaymentByLastNamePicksMedian) {
  // Tiny scale: customers 1..100 have last names LastName(0..99), each
  // unique, so by-name lookup must resolve to exactly that customer.
  PaymentInput in;
  in.w = 1;
  in.d = 5;
  in.customer.w = 1;
  in.customer.d = 5;
  in.customer.by_name = true;
  in.customer.last_name = LastName(41);  // Customer id 42.
  in.amount_cents = 100;
  auto read_balance = [&](uint32_t c) {
    auto txn = db()->Begin({IsolationLevel::kSnapshot});
    std::string v;
    EXPECT_TRUE(txn->Get(ctx().tables->customer, CustomerKey(1, 5, c), &v).ok());
    CustomerRow row;
    EXPECT_TRUE(CustomerRow::Decode(v, &row));
    txn->Commit();
    return row.balance_cents;
  };
  const int64_t before = read_balance(42);
  ASSERT_TRUE(Payment(ctx(), IsolationLevel::kSerializableSSI, in).ok());
  EXPECT_EQ(read_balance(42), before - 100);
}

TEST_F(TpccEnv, OrderStatusReturnsMostRecentOrder) {
  // Give customer 9 a fresh order so "most recent" is known.
  NewOrderInput in;
  in.w = 1;
  in.d = 6;
  in.c = 9;
  in.lines = {{3, 1, 2}};
  NewOrderOutput out;
  ASSERT_TRUE(NewOrder(ctx(), IsolationLevel::kSerializableSSI, in, &out).ok());

  OrderStatusOutput status;
  CustomerSelector sel{1, 6, false, 9, ""};
  ASSERT_TRUE(
      OrderStatus(ctx(), IsolationLevel::kSerializableSSI, sel, &status).ok());
  EXPECT_EQ(status.o_id, out.o_id);
  EXPECT_EQ(status.carrier_id, 0u);  // Not yet delivered.
  ASSERT_EQ(status.lines.size(), 1u);
  EXPECT_EQ(status.lines[0].i_id, 3u);
}

TEST_F(TpccEnv, DeliveryDeliversOldestAndPaysCustomer) {
  // District 7: find the oldest undelivered order and its customer.
  uint32_t oldest = 0;
  {
    auto txn = db()->Begin({IsolationLevel::kSnapshot});
    txn->Scan(ctx().tables->new_order, NewOrderKey(1, 7, 0),
              NewOrderKey(1, 7, UINT32_MAX), [&oldest](Slice k, Slice) {
                oldest = OrderIdFromKey(k);
                return false;
              });
    txn->Commit();
  }
  ASSERT_GT(oldest, 0u);

  uint32_t delivered = 0;
  DeliveryInput in{1, 5};
  ASSERT_TRUE(
      Delivery(ctx(), IsolationLevel::kSerializableSSI, in, &delivered).ok());
  EXPECT_GE(delivered, 1u);

  auto txn = db()->Begin({IsolationLevel::kSnapshot});
  std::string v;
  // The new_order row is gone; the order has the carrier set.
  EXPECT_TRUE(txn->Get(ctx().tables->new_order, NewOrderKey(1, 7, oldest), &v)
                  .IsNotFound());
  ASSERT_TRUE(txn->Get(ctx().tables->order, OrderKey(1, 7, oldest), &v).ok());
  OrderRow order;
  ASSERT_TRUE(OrderRow::Decode(v, &order));
  EXPECT_EQ(order.carrier_id, 5u);
  // Its order lines carry a delivery date now.
  ASSERT_TRUE(
      txn->Get(ctx().tables->order_line, OrderLineKey(1, 7, oldest, 1), &v)
          .ok());
  OrderLineRow line;
  ASSERT_TRUE(OrderLineRow::Decode(v, &line));
  EXPECT_NE(line.delivery_d, 0u);
  txn->Commit();
}

TEST_F(TpccEnv, StockLevelCountsLowStockDistinctItems) {
  StockLevelInput in{1, 8, /*threshold=*/200};  // Above max: counts all.
  uint32_t low = 0;
  ASSERT_TRUE(
      StockLevel(ctx(), IsolationLevel::kSerializableSSI, in, &low).ok());
  EXPECT_GT(low, 0u);
  // Threshold below min quantity (loader floor is 10 with restock at 91):
  // nothing qualifies. Quantities can dip below 10 transiently between
  // NEWO updates, so allow a small count.
  StockLevelInput none{1, 8, -1000};
  uint32_t zero = 99;
  ASSERT_TRUE(
      StockLevel(ctx(), IsolationLevel::kSerializableSSI, none, &zero).ok());
  EXPECT_EQ(zero, 0u);
}

TEST_F(TpccEnv, CreditCheckFlagsOverLimitCustomer) {
  // Construct an over-limit customer: put a huge undelivered order on
  // district 9's customer 3.
  NewOrderInput in;
  in.w = 1;
  in.d = 9;
  in.c = 3;
  for (int i = 0; i < 15; ++i) in.lines.push_back({static_cast<uint32_t>(
      800 + i), 1, 10});
  ASSERT_TRUE(NewOrder(ctx(), IsolationLevel::kSerializableSSI, in, nullptr)
                  .ok());
  // Shrink the credit limit so the order total exceeds it.
  {
    auto txn = db()->Begin({IsolationLevel::kSnapshot});
    std::string v;
    ASSERT_TRUE(txn->Get(ctx().tables->customer, CustomerKey(1, 9, 3), &v).ok());
    CustomerRow c;
    ASSERT_TRUE(CustomerRow::Decode(v, &c));
    c.credit_lim_cents = 1;
    ASSERT_TRUE(
        txn->Put(ctx().tables->customer, CustomerKey(1, 9, 3), c.Encode()).ok());
    ASSERT_TRUE(txn->Commit().ok());
  }
  Credit credit = Credit::kGood;
  ASSERT_TRUE(CreditCheck(ctx(), IsolationLevel::kSerializableSSI,
                          CreditCheckInput{1, 9, 3}, &credit)
                  .ok());
  EXPECT_EQ(credit, Credit::kBad);

  // Deliver everything in the district and re-check: undelivered balance
  // drops; the customer's own balance grows by the delivered amount, so
  // raise the limit to cover it and expect good credit again.
  uint32_t delivered = 1;
  while (delivered > 0) {
    ASSERT_TRUE(Delivery(ctx(), IsolationLevel::kSerializableSSI,
                         DeliveryInput{1, 2}, &delivered)
                    .ok());
  }
  {
    auto txn = db()->Begin({IsolationLevel::kSnapshot});
    std::string v;
    ASSERT_TRUE(txn->Get(ctx().tables->customer, CustomerKey(1, 9, 3), &v).ok());
    CustomerRow c;
    ASSERT_TRUE(CustomerRow::Decode(v, &c));
    c.credit_lim_cents = c.balance_cents + 1000000000;
    ASSERT_TRUE(
        txn->Put(ctx().tables->customer, CustomerKey(1, 9, 3), c.Encode()).ok());
    ASSERT_TRUE(txn->Commit().ok());
  }
  ASSERT_TRUE(CreditCheck(ctx(), IsolationLevel::kSerializableSSI,
                          CreditCheckInput{1, 9, 3}, &credit)
                  .ok());
  EXPECT_EQ(credit, Credit::kGood);
}

TEST_F(TpccEnv, ConsistencyHoldsAfterSequentialMix) {
  Random rng(99);
  bench::SeriesConfig series{"SSI", IsolationLevel::kSerializableSSI,
                             std::nullopt};
  for (int i = 0; i < 200; ++i) {
    workload()->RunOne(db(), series, 0, &rng);
  }
  Status st = workload()->CheckConsistency(db());
  EXPECT_TRUE(st.ok()) << st.ToString();
}

/// §5.3.3 Example 5: the Credit Check anomaly, deterministically
/// interleaved. The Credit Check overlaps a Payment and a New Order such
/// that at SI it computes a stale unpaid total and publishes "bad credit"
/// *after* the customer successfully placed an order under "good credit".
class CreditCheckAnomalyTest : public ::testing::Test {
 protected:
  void Setup(IsolationLevel iso) {
    iso_ = iso;
    ASSERT_TRUE(DB::Open({}, &db_).ok());
    TpccConfig cfg;
    cfg.warehouses = 1;
    cfg.tiny = true;
    ASSERT_TRUE(TpccWorkload::Setup(db_.get(), cfg, 7, &workload_).ok());
  }

  /// Returns true if the §5.3.3 outcome occurred: the final New Order saw
  /// good credit while an overlapping Credit Check committed bad credit
  /// from stale data.
  bool RunScenario() {
    const TpccContext& ctx = workload_->context();
    const uint32_t w = 1, d = 1, c = 1;
    // Stage: give the customer a credit limit of $1000, an unpaid
    // (delivered) balance of $900, good credit, and pin the prices of the
    // items the scenario orders ($100 each) so totals are deterministic.
    {
      auto txn = db_->Begin({IsolationLevel::kSnapshot});
      std::string v;
      EXPECT_TRUE(
          txn->Get(ctx.tables->customer, CustomerKey(w, d, c), &v).ok());
      CustomerRow row;
      EXPECT_TRUE(CustomerRow::Decode(v, &row));
      row.credit_lim_cents = 1000 * 100;
      row.balance_cents = 900 * 100;
      row.discount_bp = 0;
      EXPECT_TRUE(
          txn->Put(ctx.tables->customer, CustomerKey(w, d, c), row.Encode())
              .ok());
      EXPECT_TRUE(txn->Put(ctx.tables->customer_credit, CustomerKey(w, d, c),
                           EncodeCredit(Credit::kGood))
                      .ok());
      for (uint32_t item : {1u, 2u, 3u}) {
        EXPECT_TRUE(txn->Get(ctx.tables->item, ItemKey(item), &v).ok());
        ItemRow irow;
        EXPECT_TRUE(ItemRow::Decode(v, &irow));
        irow.price_cents = 100 * 100;  // $100.
        EXPECT_TRUE(
            txn->Put(ctx.tables->item, ItemKey(item), irow.Encode()).ok());
      }
      EXPECT_TRUE(txn->Commit().ok());
    }
    // Drain existing new orders for the district so CCHECK sums only ours.
    uint32_t delivered = 1;
    while (delivered > 0) {
      Status st = Delivery(ctx, iso_, DeliveryInput{w, 1}, &delivered);
      if (!st.ok()) return false;
    }
    // The delivery raised c_balance; restore the staged $900.
    {
      auto txn = db_->Begin({IsolationLevel::kSnapshot});
      std::string v;
      EXPECT_TRUE(
          txn->Get(ctx.tables->customer, CustomerKey(w, d, c), &v).ok());
      CustomerRow row;
      EXPECT_TRUE(CustomerRow::Decode(v, &row));
      row.balance_cents = 900 * 100;
      EXPECT_TRUE(
          txn->Put(ctx.tables->customer, CustomerKey(w, d, c), row.Encode())
              .ok());
      EXPECT_TRUE(txn->Commit().ok());
    }

    // Step 1: NEWO #1 — 2 x $100 = $200 of undelivered orders, bringing
    // the unpaid total to $1100, over the $1000 limit.
    NewOrderInput no1{w, d, c, {{1, w, 2}}};
    if (!NewOrder(ctx, iso_, no1, nullptr).ok()) return false;

    // Step 2: Credit Check begins: under SI it snapshots *now*.
    // We hold the transaction open across the payment by inlining the
    // program body: read customer, scan new orders — then wait — then
    // write c_credit.
    auto cc = db_->Begin({iso_});
    std::string v;
    Status st = cc->Get(ctx.tables->customer, CustomerKey(w, d, c), &v);
    if (!st.ok()) return false;
    CustomerRow cc_row;
    if (!CustomerRow::Decode(v, &cc_row)) return false;
    int64_t neworder_balance = 0;
    std::vector<uint32_t> undelivered;
    st = cc->Scan(ctx.tables->new_order, NewOrderKey(w, d, 0),
                  NewOrderKey(w, d, UINT32_MAX),
                  [&undelivered](Slice k, Slice) {
                    undelivered.push_back(OrderIdFromKey(k));
                    return true;
                  });
    if (!st.ok()) {
      cc->Abort();
      return false;
    }
    for (uint32_t o : undelivered) {
      st = cc->Get(ctx.tables->order, OrderKey(w, d, o), &v);
      if (!st.ok()) {
        cc->Abort();
        return false;
      }
      OrderRow order;
      if (!OrderRow::Decode(v, &order) || order.c_id != c) continue;
      st = cc->Scan(ctx.tables->order_line, OrderLineKey(w, d, o, 0),
                    OrderLineKey(w, d, o, UINT32_MAX),
                    [&neworder_balance](Slice, Slice val) {
                      OrderLineRow ol;
                      if (OrderLineRow::Decode(val, &ol)) {
                        neworder_balance += ol.amount_cents;
                      }
                      return true;
                    });
      if (!st.ok()) {
        cc->Abort();
        return false;
      }
    }

    // Step 3: Payment ($500) commits while the credit check is open.
    PaymentInput pay{w, d, {w, d, false, c, ""}, 500 * 100};
    if (!Payment(ctx, iso_, pay).ok()) {
      cc->Abort();
      return false;
    }

    // Step 4: NEWO #2 ($100-ish) — the customer is back under the limit,
    // so a serial execution after the payment shows good credit.
    NewOrderOutput no2_out;
    NewOrderInput no2{w, d, c, {{2, w, 1}}};
    if (!NewOrder(ctx, iso_, no2, &no2_out).ok()) {
      cc->Abort();
      return false;
    }

    // Step 5: the credit check publishes its verdict from the stale
    // snapshot ($900 balance + $200 undelivered > $1000 -> BC) into the
    // c_credit partition (Fig 5.1 line 19).
    const Credit verdict =
        cc_row.balance_cents + neworder_balance > cc_row.credit_lim_cents
            ? Credit::kBad
            : Credit::kGood;
    Status commit;
    if (cc->active()) {
      st = cc->Put(ctx.tables->customer_credit, CustomerKey(w, d, c),
                   EncodeCredit(verdict));
      commit = st.ok() ? cc->Commit() : st;
    } else {
      commit = Status::Unsafe("marked for abort");
    }
    if (cc->active()) cc->Abort();

    // Step 6: NEWO #3 — what credit does the customer see now?
    NewOrderOutput no3_out;
    NewOrderInput no3{w, d, c, {{3, w, 1}}};
    if (!NewOrder(ctx, iso_, no3, &no3_out).ok()) return false;

    // The anomaly fired if the credit check committed "bad credit" from
    // its stale read, even though NEWO #2 already ran under good credit
    // after the payment: no serial order explains (good at #2, then BC
    // from a state predating the payment).
    return commit.ok() && verdict == Credit::kBad &&
           no2_out.customer_credit == Credit::kGood &&
           no3_out.customer_credit == Credit::kBad;
  }

  IsolationLevel iso_ = IsolationLevel::kSnapshot;
  std::unique_ptr<DB> db_;
  std::unique_ptr<TpccWorkload> workload_;
};

TEST_F(CreditCheckAnomalyTest, SnapshotIsolationAdmitsExample5) {
  Setup(IsolationLevel::kSnapshot);
  EXPECT_TRUE(RunScenario())
      << "SI should let the stale credit check commit";
}

TEST_F(CreditCheckAnomalyTest, SerializableSSIPreventsExample5) {
  Setup(IsolationLevel::kSerializableSSI);
  EXPECT_FALSE(RunScenario())
      << "SSI must abort one of the transactions in the Example 5 cycle";
}

TEST(TpccMultiWarehouseTest, RemotePaymentCrossesWarehouses) {
  // Spec 2.5.1.2: 15% of payments are collected at one warehouse for a
  // customer of another. The YTD goes to the collecting warehouse, the
  // balance change to the remote customer.
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open({}, &db).ok());
  TpccConfig cfg;
  cfg.warehouses = 2;
  cfg.tiny = true;
  std::unique_ptr<TpccWorkload> workload;
  ASSERT_TRUE(TpccWorkload::Setup(db.get(), cfg, 17, &workload).ok());
  const TpccContext& ctx = workload->context();

  PaymentInput in;
  in.w = 1;
  in.d = 1;
  in.customer = {2, 3, false, 7, ""};  // Customer of warehouse 2.
  in.amount_cents = 5000;
  ASSERT_TRUE(Payment(ctx, IsolationLevel::kSerializableSSI, in).ok());

  auto txn = db->Begin({IsolationLevel::kSnapshot});
  std::string v;
  // Collecting warehouse 1 got the YTD.
  ASSERT_TRUE(txn->Get(ctx.tables->warehouse, WarehouseKey(1), &v).ok());
  WarehouseRow w1;
  ASSERT_TRUE(WarehouseRow::Decode(v, &w1));
  EXPECT_EQ(w1.ytd_cents, 30000000 + 5000);
  ASSERT_TRUE(txn->Get(ctx.tables->warehouse, WarehouseKey(2), &v).ok());
  WarehouseRow w2;
  ASSERT_TRUE(WarehouseRow::Decode(v, &w2));
  EXPECT_EQ(w2.ytd_cents, 30000000);
  // Remote customer's balance dropped.
  ASSERT_TRUE(txn->Get(ctx.tables->customer, CustomerKey(2, 3, 7), &v).ok());
  CustomerRow c;
  ASSERT_TRUE(CustomerRow::Decode(v, &c));
  EXPECT_EQ(c.balance_cents, kInitialBalanceCents - 5000);
  txn->Commit();

  // The consistency condition holds across both warehouses... but note
  // remote payments credit W1's YTD and D1's YTD together, so it stays
  // balanced by construction.
  EXPECT_TRUE(workload->CheckConsistency(db.get()).ok());
}

TEST(TpccDeliveryTest, EmptyDistrictsAreSkipped) {
  // The DLVY1 case (§2.8.1): districts with no undelivered orders are
  // skipped without failing the transaction.
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open({}, &db).ok());
  TpccConfig cfg;
  cfg.warehouses = 1;
  cfg.tiny = true;
  std::unique_ptr<TpccWorkload> workload;
  ASSERT_TRUE(TpccWorkload::Setup(db.get(), cfg, 19, &workload).ok());
  const TpccContext& ctx = workload->context();

  // Drain everything: 30 undelivered per district, 10 per call.
  uint32_t delivered = 1;
  int calls = 0;
  while (delivered > 0 && calls < 100) {
    ++calls;
    ASSERT_TRUE(Delivery(ctx, IsolationLevel::kSerializableSSI,
                         DeliveryInput{1, 3}, &delivered)
                    .ok());
  }
  // Now every district is empty: the transaction still commits, zero
  // orders delivered.
  uint32_t none = 99;
  ASSERT_TRUE(Delivery(ctx, IsolationLevel::kSerializableSSI,
                       DeliveryInput{1, 4}, &none)
                  .ok());
  EXPECT_EQ(none, 0u);
  EXPECT_TRUE(workload->CheckConsistency(db.get()).ok());
}

TEST(TpccStockLevelScanTest, OrderLineScanRaisesTheRwEdgeSsiNeeds) {
  // Regression pin for the Stock Level predicate read. A planning note
  // once claimed the stock-level benchmark "never calls Scan" and merely
  // approximates the §2.8.2.2 window read; that premise is false —
  // StockLevel reads the last-20-orders order-line window through
  // txn->Scan (tpcc_txns.cc, StockLevel) and has since the workload
  // landed. This test pins the property that claim was really about: the
  // window Scan acquires SIREAD locks on every line it reads, so a
  // concurrent writer touching the window raises the rw-antidependency
  // §3.2 needs and SSI breaks the cycle. If StockLevel's read ever
  // regresses to an unlocked approximation, the history below becomes
  // admissible and this test fails.
  DBOptions opts;
  opts.record_history = true;
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(opts, &db).ok());
  TpccConfig cfg;
  cfg.warehouses = 1;
  cfg.tiny = true;
  std::unique_ptr<TpccWorkload> workload;
  ASSERT_TRUE(TpccWorkload::Setup(db.get(), cfg, 23, &workload).ok());
  const TpccTables& t = *workload->context().tables;

  // The window StockLevel computes: the last 20 orders of district (1,1).
  uint32_t hi_o = 0;
  {
    auto setup = db->Begin({IsolationLevel::kSnapshot});
    std::string v;
    ASSERT_TRUE(setup->Get(t.district, DistrictKey(1, 1), &v).ok());
    DistrictRow d;
    ASSERT_TRUE(DistrictRow::Decode(v, &d));
    hi_o = d.next_o_id;
    ASSERT_TRUE(setup->Commit().ok());
  }
  ASSERT_GT(hi_o, 20u);
  const uint32_t lo_o = hi_o - 20;

  auto slev = db->Begin({IsolationLevel::kSerializableSSI});
  auto writer = db->Begin({IsolationLevel::kSerializableSSI});
  // slev issues the program's exact predicate read.
  std::string line_key;
  OrderLineRow first_line;
  ASSERT_TRUE(slev->Scan(t.order_line, OrderLineKey(1, 1, lo_o, 0),
                         OrderLineKey(1, 1, hi_o - 1, UINT32_MAX),
                         [&](Slice key, Slice value) {
                           if (line_key.empty()) {
                             line_key = key.ToString();
                             EXPECT_TRUE(
                                 OrderLineRow::Decode(value, &first_line));
                           }
                           return true;
                         })
                  .ok());
  ASSERT_FALSE(line_key.empty());
  // writer reads the stock row slev is about to write, then re-stamps a
  // line inside slev's scanned window (Delivery's shape): writer -rw-> slev
  // on the stock row, slev -rw-> writer on the scanned line — a cycle that
  // exists only because the Scan left SIREAD locks behind.
  std::string sv;
  ASSERT_TRUE(writer->Get(t.stock, StockKey(1, first_line.i_id), &sv).ok());
  OrderLineRow restamped = first_line;
  restamped.delivery_d = 777;
  const Status wline = writer->Put(t.order_line, line_key,
                                   restamped.Encode());
  // The spec's SLEV is read-only; the stock write stands in for any
  // successor that would complete the pivot.
  StockRow stock;
  ASSERT_TRUE(StockRow::Decode(sv, &stock));
  stock.quantity -= 1;
  const Status wstock =
      slev->Put(t.stock, StockKey(1, first_line.i_id), stock.Encode());
  Status c1 = wstock.ok() ? slev->Commit() : wstock;
  if (slev->active()) slev->Abort();
  Status c2 = wline.ok() ? writer->Commit() : wline;
  if (writer->active()) writer->Abort();
  EXPECT_FALSE(c1.ok() && c2.ok())
      << "both sides of the scan-window cycle committed";
  EXPECT_TRUE(sgt::AnalyzeHistory(db->history()->Snapshot()).serializable);
}

TEST(TpccStockLevelScanTest, ConcurrentStockLevelMixStaysSerializable) {
  // The §6.4.3 mix (New Order + Stock Level) under SSI, checked against
  // the multiversion serialization graph: the windows Stock Level scans
  // overlap the lines New Order inserts and the stock rows it updates, so
  // any gap in the Scan's predicate locking shows up as a cycle here.
  DBOptions opts;
  opts.record_history = true;
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(opts, &db).ok());
  TpccConfig cfg;
  cfg.warehouses = 1;
  cfg.tiny = true;
  cfg.mix = Mix::kStockLevel;
  std::unique_ptr<TpccWorkload> workload;
  ASSERT_TRUE(TpccWorkload::Setup(db.get(), cfg, 29, &workload).ok());
  bench::SeriesConfig series{"SSI", IsolationLevel::kSerializableSSI,
                             std::nullopt};
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Random rng(900 + t);
      for (int i = 0; i < 50; ++i) {
        workload->RunOne(db.get(), series, t, &rng);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_TRUE(workload->CheckConsistency(db.get()).ok());
  auto analysis = sgt::AnalyzeHistory(db->history()->Snapshot());
  EXPECT_TRUE(analysis.serializable) << sgt::DescribeResult(analysis);
}

TEST(TpccConcurrencyTest, ConcurrentStandardMixStaysConsistent) {
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open({}, &db).ok());
  TpccConfig cfg;
  cfg.warehouses = 1;
  cfg.tiny = true;
  std::unique_ptr<TpccWorkload> workload;
  ASSERT_TRUE(TpccWorkload::Setup(db.get(), cfg, 11, &workload).ok());
  bench::SeriesConfig series{"SSI", IsolationLevel::kSerializableSSI,
                             std::nullopt};
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Random rng(500 + t);
      for (int i = 0; i < 50; ++i) {
        workload->RunOne(db.get(), series, t, &rng);
      }
    });
  }
  for (auto& th : threads) th.join();
  Status st = workload->CheckConsistency(db.get());
  EXPECT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(db->GetStats().active_txns, 0u);
}

TEST(TpccMixTest, StandardMixProportions) {
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open({}, &db).ok());
  TpccConfig cfg;
  cfg.warehouses = 1;
  cfg.tiny = true;
  std::unique_ptr<TpccWorkload> workload;
  ASSERT_TRUE(TpccWorkload::Setup(db.get(), cfg, 13, &workload).ok());
  Random rng(21);
  int counts[6] = {0};
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    counts[static_cast<int>(workload->NextOp(&rng))]++;
  }
  EXPECT_NEAR(counts[0] / double(n), 0.41, 0.02);  // NEWO
  EXPECT_NEAR(counts[1] / double(n), 0.43, 0.02);  // PAY
  EXPECT_NEAR(counts[2] / double(n), 0.04, 0.01);  // CCHECK
  EXPECT_NEAR(counts[3] / double(n), 0.04, 0.01);  // DLVY
  EXPECT_NEAR(counts[4] / double(n), 0.04, 0.01);  // OSTAT
  EXPECT_NEAR(counts[5] / double(n), 0.04, 0.01);  // SLEV
}

TEST(TpccMixTest, StockLevelMixProportions) {
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open({}, &db).ok());
  TpccConfig cfg;
  cfg.warehouses = 1;
  cfg.tiny = true;
  cfg.mix = Mix::kStockLevel;
  std::unique_ptr<TpccWorkload> workload;
  ASSERT_TRUE(TpccWorkload::Setup(db.get(), cfg, 13, &workload).ok());
  Random rng(22);
  int newo = 0, slev = 0, other = 0;
  const int n = 11000;
  for (int i = 0; i < n; ++i) {
    switch (workload->NextOp(&rng)) {
      case TpccOp::kNewOrder: ++newo; break;
      case TpccOp::kStockLevel: ++slev; break;
      default: ++other; break;
    }
  }
  EXPECT_EQ(other, 0);
  EXPECT_NEAR(slev / double(newo), 10.0, 1.5);  // §5.3.5's 10:1.
}

}  // namespace
}  // namespace ssidb::workloads::tpcc
