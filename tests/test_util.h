// Shared helpers for the DB-level test suites.

#ifndef SSIDB_TESTS_TEST_UTIL_H_
#define SSIDB_TESTS_TEST_UTIL_H_

#include <gtest/gtest.h>
#include <stdlib.h>

#include <filesystem>
#include <string>

#include "src/db/db.h"

namespace ssidb {

/// A fresh scratch directory, removed on destruction. Used by the disk-tier
/// suites for run directories and WALs.
struct ScratchDir {
  ScratchDir() {
    char tmpl[] = "/tmp/ssidb_test_XXXXXX";
    path = mkdtemp(tmpl);
  }
  ~ScratchDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
  std::string path;
};

/// Advance the stable watermark by committing a throwaway write. Needed
/// wherever a test wants a read-only commit to genuinely overlap an
/// earlier-begun transaction: a read-only commit's timestamp is the
/// watermark, so retention/edge semantics require the watermark to have
/// moved past the overlapping transaction's snapshot first.
inline void BumpWatermark(DB* db, TableId table) {
  auto bump = db->Begin({IsolationLevel::kSnapshot});
  ASSERT_TRUE(bump->Put(table, "bump", "1").ok());
  ASSERT_TRUE(bump->Commit().ok());
}

}  // namespace ssidb

#endif  // SSIDB_TESTS_TEST_UTIL_H_
