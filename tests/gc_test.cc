// Regression tests for the two unbounded-memory leaks and the storage-GC
// machinery that bounds them:
//
//   * The kPage first-committer-wins map (TxnManager::page_write_ts_) was
//     insert-only: entries were added at commit and never erased. It is
//     now swept during CleanupSuspended — entries at or below
//     min_active_read_ts can never again fail the §4.2 FCW test or mark an
//     rw-conflict (every current and future snapshot is at or past them,
//     and a missing entry already means "never written").
//
//   * Cold version chains leaked: inline pruning fires only when the
//     *same key* is written again, so versions that piled up on a
//     read-mostly key behind a long snapshot were never reclaimed once the
//     writes stopped. The DB's background sweep
//     (DBOptions::version_gc_interval_ms) is the backstop.
//
// Plus the per-shard max-commit-ts hint that lets incremental checkpoints
// skip cold shards latch-free, and the DBStats durability counters.

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>

#include "src/db/db.h"
#include "src/storage/table.h"

namespace ssidb {
namespace {

namespace fs = std::filesystem;

struct TempDir {
  TempDir() {
    char tmpl[] = "/tmp/ssidb_gc_XXXXXX";
    path = mkdtemp(tmpl);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  std::string path;
};

/// Spin until `pred` holds or ~5s elapse (background threads are on their
/// own schedule).
template <typename Pred>
bool WaitFor(const Pred& pred) {
  for (int i = 0; i < 500; ++i) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return pred();
}

TEST(PageFcwMapTest, EntriesPrunedOnceBelowSnapshotWatermark) {
  DBOptions opts;
  opts.granularity = LockGranularity::kPage;
  opts.rows_per_page = 1;  // Every key is its own page: map entry per key.
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(opts, &db).ok());
  TableId t = 0;
  ASSERT_TRUE(db->CreateTable("t", &t).ok());

  // Pin a snapshot so commits stay above min_active_read_ts and the sweep
  // (which runs every few cleanups) cannot reclaim their entries yet.
  auto pin = db->Begin({IsolationLevel::kSnapshot});
  std::string v;
  EXPECT_TRUE(pin->Get(t, "pin", &v).IsNotFound());  // Assigns the snapshot.

  constexpr int kPages = 120;
  for (int i = 0; i < kPages; ++i) {
    auto txn = db->Begin({IsolationLevel::kSnapshot});
    ASSERT_TRUE(txn->Put(t, "page" + std::to_string(i), "v").ok());
    ASSERT_TRUE(txn->Commit().ok());
  }
  const size_t pinned_size = db->txn_manager()->page_write_entries();
  EXPECT_GE(pinned_size, static_cast<size_t>(kPages));
  EXPECT_EQ(db->GetStats().page_fcw_entries, pinned_size);

  // Release the pin and drive enough commits for a periodic sweep: every
  // entry now sits at or below the watermark and must be erased.
  ASSERT_TRUE(pin->Commit().ok());
  for (int i = 0; i < 20; ++i) {
    auto txn = db->Begin({IsolationLevel::kSnapshot});
    ASSERT_TRUE(txn->Put(t, "extra" + std::to_string(i), "v").ok());
    ASSERT_TRUE(txn->Commit().ok());
  }
  const size_t after = db->txn_manager()->page_write_entries();
  EXPECT_LT(after, pinned_size);
  EXPECT_LT(after, 64u);  // The old generation is gone, not just trimmed.
  EXPECT_GT(db->txn_manager()->page_entries_pruned(), 0u);

  // The map's semantics survive pruning: a missing entry reads as "never
  // written", so a fresh writer is not spuriously conflicted.
  auto txn = db->Begin({IsolationLevel::kSnapshot});
  ASSERT_TRUE(txn->Put(t, "page0", "again").ok());
  ASSERT_TRUE(txn->Commit().ok());
}

TEST(VersionGcTest, BackgroundSweepReclaimsColdChainWithoutManualPrune) {
  DBOptions opts;
  opts.version_gc_interval_ms = 5;
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(opts, &db).ok());
  TableId t = 0;
  ASSERT_TRUE(db->CreateTable("t", &t).ok());

  // A long-running snapshot pins the prune horizon while "hot" is
  // rewritten: inline pruning (write path) cannot reclaim anything.
  auto pin = db->Begin({IsolationLevel::kSnapshot});
  std::string v;
  EXPECT_TRUE(pin->Get(t, "hot", &v).IsNotFound());
  constexpr int kWrites = 20;
  for (int i = 0; i < kWrites; ++i) {
    auto txn = db->Begin({IsolationLevel::kSnapshot});
    ASSERT_TRUE(txn->Put(t, "hot", std::to_string(i)).ok());
    ASSERT_TRUE(txn->Commit().ok());
  }
  VersionChain* chain = db->table(t)->Find("hot");
  ASSERT_NE(chain, nullptr);
  EXPECT_GE(chain->size(), static_cast<size_t>(kWrites) / 2);

  // Release the pin and never write "hot" again: this is the read-mostly
  // key the inline path can never reach. Only the background sweep can
  // bring the chain back to one version.
  ASSERT_TRUE(pin->Commit().ok());
  EXPECT_TRUE(WaitFor([&] { return chain->size() == 1; }))
      << "chain still holds " << chain->size() << " versions";
  EXPECT_GT(db->GetStats().versions_pruned, 0u);

  auto reader = db->Begin({IsolationLevel::kSnapshot});
  ASSERT_TRUE(reader->Get(t, "hot", &v).ok());
  EXPECT_EQ(v, std::to_string(kWrites - 1));  // Latest value survives.
  EXPECT_TRUE(reader->Commit().ok());
}

TEST(TableHintTest, FilteredForEachChainSkipsColdShardsLatchFree) {
  Table table(0, "t", /*split_threshold=*/4);
  const auto key = [](int i) {
    char buf[8];
    snprintf(buf, sizeof(buf), "k%03d", i);
    return std::string(buf);
  };
  for (int i = 0; i < 32; ++i) {
    table.GetOrCreate(key(i));
    table.NoteCommit(key(i), 10);
  }
  ASSERT_GT(table.ShardCount(), 2u);  // Threshold 4 forces splits.
  // One commit past the watermark lands in exactly one shard.
  table.NoteCommit(key(0), 100);

  size_t visited = 0;
  table.ForEachChain(/*since=*/50,
                     [&](const std::string&, VersionChain*) { ++visited; });
  EXPECT_GT(visited, 0u);   // The hot shard is visited...
  EXPECT_LT(visited, 32u);  // ...every cold shard is skipped.

  // since=0 visits everything (all hints are > 0 once stamped).
  size_t all = 0;
  table.ForEachChain(/*since=*/0,
                     [&](const std::string&, VersionChain*) { ++all; });
  EXPECT_EQ(all, 32u);
}

TEST(PruneHorizonTest, CheckpointSweepFloorsPruning) {
  // A checkpoint sweep at watermark W must not lose a key whose newest
  // version <= W gets superseded mid-sweep: while the sweep is active the
  // prune horizon is capped at W even as min_active_read_ts runs past it.
  DBOptions opts;
  opts.version_gc_interval_ms = 0;  // Drive pruning by hand.
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(opts, &db).ok());
  TableId t = 0;
  ASSERT_TRUE(db->CreateTable("t", &t).ok());
  const auto commit_one = [&](const std::string& v) {
    auto txn = db->Begin({IsolationLevel::kSnapshot});
    ASSERT_TRUE(txn->Put(t, "k", v).ok());
    ASSERT_TRUE(txn->Commit().ok());
  };
  commit_one("old");
  TxnManager* tm = db->txn_manager();
  const Timestamp wm = tm->BeginCheckpointSweep();
  // The key is overwritten after the sweep began: its pre-overwrite
  // version is the one a sweep at `wm` still has to serialize.
  commit_one("new");
  EXPECT_GT(tm->min_active_read_ts(), wm);
  EXPECT_EQ(tm->prune_horizon(), wm);
  // A prune during the sweep keeps the watermark-visible version.
  db->PruneVersions(t);
  EXPECT_GE(db->table(t)->Find("k")->size(), 2u);
  tm->EndCheckpointSweep();
  EXPECT_GT(tm->prune_horizon(), wm);
  db->PruneVersions(t);
  EXPECT_EQ(db->table(t)->Find("k")->size(), 1u);
}

TEST(DBStatsTest, DurabilityCountersFoldIntoOneRecord) {
  TempDir dir;
  DBOptions opts;
  opts.log.wal_dir = dir.path;
  opts.log.wal_fsync = false;  // Format-only: keep the test fast.
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(opts, &db).ok());
  TableId t = 0;
  ASSERT_TRUE(db->CreateTable("t", &t).ok());
  for (int i = 0; i < 10; ++i) {
    auto txn = db->Begin();
    ASSERT_TRUE(txn->Put(t, "k" + std::to_string(i), "v").ok());
    ASSERT_TRUE(txn->Commit().ok());
  }
  ASSERT_TRUE(db->Checkpoint().ok());
  const DBStats stats = db->GetStats();
  EXPECT_EQ(stats.checkpoints_taken, 1u);
  EXPECT_EQ(stats.checkpoints_taken, db->checkpoints_taken());
  EXPECT_GT(stats.checkpoint_bytes_written, 0u);
  EXPECT_EQ(stats.checkpoint_bytes_written, db->checkpoint_bytes_written());
  EXPECT_EQ(stats.wal_segments_deleted, db->wal_segments_deleted());
  EXPECT_EQ(stats.page_fcw_entries, 0u);  // kRow granularity.

  // Manual pruning is folded into the same counter the background sweep
  // and the inline write path feed.
  const uint64_t before = stats.versions_pruned;
  db->PruneVersions(t);
  EXPECT_GE(db->GetStats().versions_pruned, before);
}

}  // namespace
}  // namespace ssidb
