// SmallBank workload tests (§2.8.2-§2.8.5, §5.1): program semantics, the
// money-conservation oracle, the SDG-derived anomaly (Bal -> WC -> TS ->
// Bal with WriteCheck as pivot) and the four §2.8.5 serializability fixes.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>

#include "src/common/encoding.h"
#include "src/sgt/mvsg.h"
#include "src/workloads/smallbank.h"

namespace ssidb::workloads {
namespace {

using bench::SeriesConfig;

struct Env {
  std::unique_ptr<DB> db;
  std::unique_ptr<SmallBank> bank;

  explicit Env(SmallBankConfig config = {}, DBOptions opts = {}) {
    opts.record_history = true;
    EXPECT_TRUE(DB::Open(opts, &db).ok());
    Status st = SmallBank::Setup(db.get(), config, &bank);
    EXPECT_TRUE(st.ok()) << st.ToString();
  }
};

SeriesConfig SSI() {
  return {"SSI", IsolationLevel::kSerializableSSI, std::nullopt};
}
SeriesConfig SI() { return {"SI", IsolationLevel::kSnapshot, std::nullopt}; }

TEST(SmallBankTest, SetupLoadsInitialBalances) {
  Env env(SmallBankConfig{.customers = 10});
  int64_t total = 0;
  ASSERT_TRUE(env.bank->TotalBalance(env.db.get(), &total).ok());
  // $100 in each of saving and checking per customer.
  EXPECT_EQ(total, 10 * 2 * 100 * 100);
}

TEST(SmallBankTest, DepositCheckingIncreasesTotal) {
  Env env(SmallBankConfig{.customers = 4});
  Status st = env.bank->RunOp(env.db.get(), SSI(),
                              SmallBankOp::kDepositChecking, 1, 0, 5000);
  ASSERT_TRUE(st.ok()) << st.ToString();
  int64_t total = 0;
  ASSERT_TRUE(env.bank->TotalBalance(env.db.get(), &total).ok());
  EXPECT_EQ(total, 4 * 2 * 10000 + 5000);
}

TEST(SmallBankTest, TransactSavingRejectsOverdraw) {
  Env env(SmallBankConfig{.customers = 2});
  // Withdraw more than the $100 saving balance: program rolls back.
  Status st = env.bank->RunOp(env.db.get(), SSI(),
                              SmallBankOp::kTransactSaving, 0, 0, -20000);
  EXPECT_TRUE(st.IsInvalidArgument());
  int64_t total = 0;
  ASSERT_TRUE(env.bank->TotalBalance(env.db.get(), &total).ok());
  EXPECT_EQ(total, 2 * 2 * 10000);  // Unchanged.
}

TEST(SmallBankTest, AmalgamateMovesEverything) {
  Env env(SmallBankConfig{.customers = 3});
  Status st =
      env.bank->RunOp(env.db.get(), SSI(), SmallBankOp::kAmalgamate, 0, 1, 0);
  ASSERT_TRUE(st.ok()) << st.ToString();
  // Totals conserved; customer 0 drained.
  int64_t total = 0;
  ASSERT_TRUE(env.bank->TotalBalance(env.db.get(), &total).ok());
  EXPECT_EQ(total, 3 * 2 * 10000);
}

TEST(SmallBankTest, WriteCheckChargesPenaltyOnOverdraft) {
  Env env(SmallBankConfig{.customers = 2});
  // Balance is $200 across accounts; writing a $300 check overdraws and
  // costs the extra $1.
  Status st = env.bank->RunOp(env.db.get(), SSI(), SmallBankOp::kWriteCheck,
                              0, 0, 30000);
  ASSERT_TRUE(st.ok()) << st.ToString();
  int64_t total = 0;
  ASSERT_TRUE(env.bank->TotalBalance(env.db.get(), &total).ok());
  EXPECT_EQ(total, 2 * 2 * 10000 - 30000 - 100);
}

TEST(SmallBankTest, WriteCheckNoPenaltyWhenCovered) {
  Env env(SmallBankConfig{.customers = 2});
  Status st = env.bank->RunOp(env.db.get(), SSI(), SmallBankOp::kWriteCheck,
                              0, 0, 5000);
  ASSERT_TRUE(st.ok()) << st.ToString();
  int64_t total = 0;
  ASSERT_TRUE(env.bank->TotalBalance(env.db.get(), &total).ok());
  EXPECT_EQ(total, 2 * 2 * 10000 - 5000);
}

TEST(SmallBankTest, UnknownCustomerRollsBack) {
  Env env(SmallBankConfig{.customers = 2});
  Status st = env.bank->RunOp(env.db.get(), SSI(), SmallBankOp::kBalance,
                              999, 0, 0);
  EXPECT_TRUE(st.IsNotFound());
}

/// The §2.8.4 anomaly replayed deterministically. WC alone conflicting
/// with TS is a plain chain (WC -rw-> TS, serializable); the SmallBank
/// dangerous structure needs the read-only Balance query:
///   Bal -rw-> WC -rw-> TS -wr-> Bal
/// Interleaving (the Fekete et al. 2004 read-only anomaly shape):
///   1. WC snapshots (sav=$100, chk=$100), so the $150 check looks covered.
///   2. TS withdraws $90 from saving and commits.
///   3. Bal runs after TS: sees sav=$10, chk=$100.
///   4. WC debits checking without the overdraft penalty and commits.
/// Bal's reading (total $110, no check cashed) is impossible in any serial
/// order where WC precedes TS.
struct AnomalyDriver {
  /// Returns the commit statuses (wc, ts, bal).
  static std::tuple<Status, Status, Status> Run(Env* env,
                                                IsolationLevel iso) {
    DB* db = env->db.get();
    SmallBank* bank = env->bank.get();
    TableId sav = bank->saving_table();
    TableId chk = bank->checking_table();
    auto read_i64 = [](Transaction* t, TableId tab, uint64_t id,
                       int64_t* out) {
      std::string v;
      Status s = t->Get(tab, EncodeU64Key(id), &v);
      if (s.ok()) {
        size_t off = 0;
        GetI64(v, &off, out);
      }
      return s;
    };
    auto write_i64 = [](Transaction* t, TableId tab, uint64_t id,
                        int64_t val) {
      std::string v;
      PutI64(&v, val);
      return t->Put(tab, EncodeU64Key(id), v);
    };

    auto wc = db->Begin({iso});
    int64_t wc_s = 0, wc_c = 0;
    Status s = read_i64(wc.get(), sav, 0, &wc_s);        // Step 1.
    if (s.ok()) s = read_i64(wc.get(), chk, 0, &wc_c);

    Status c_ts;
    {
      auto ts = db->Begin({iso});                        // Step 2.
      int64_t ts_s = 0;
      Status s2 = read_i64(ts.get(), sav, 0, &ts_s);
      if (s2.ok()) s2 = write_i64(ts.get(), sav, 0, ts_s - 9000);
      c_ts = s2.ok() ? ts->Commit() : s2;
      if (ts->active()) ts->Abort();
    }

    Status c_bal;
    {
      auto bal = db->Begin({iso});                       // Step 3.
      int64_t b_s = 0, b_c = 0;
      Status s3 = read_i64(bal.get(), sav, 0, &b_s);
      if (s3.ok()) s3 = read_i64(bal.get(), chk, 0, &b_c);
      c_bal = s3.ok() ? bal->Commit() : s3;
      if (bal->active()) bal->Abort();
    }

    Status c_wc;
    if (s.ok() && wc->active()) {                        // Step 4.
      const int64_t check = 15000;
      const int64_t debit = (wc_s + wc_c < check) ? check + 100 : check;
      Status w = write_i64(wc.get(), chk, 0, wc_c - debit);
      c_wc = w.ok() ? wc->Commit() : w;
    } else {
      c_wc = s.ok() ? Status::Unsafe("marked") : s;
    }
    if (wc->active()) wc->Abort();
    return {c_wc, c_ts, c_bal};
  }
};

TEST(SmallBankTest, ReadOnlyAnomalyUnderSI) {
  Env env(SmallBankConfig{.customers = 1});
  auto [c_wc, c_ts, c_bal] =
      AnomalyDriver::Run(&env, IsolationLevel::kSnapshot);
  EXPECT_TRUE(c_wc.ok());
  EXPECT_TRUE(c_ts.ok());
  EXPECT_TRUE(c_bal.ok());
  // All three committed: no penalty charged (WC saw $200 covering $150)
  // even though the withdrawal landed first — and Bal observed the
  // impossible intermediate state.
  int64_t total = 0;
  ASSERT_TRUE(env.bank->TotalBalance(env.db.get(), &total).ok());
  EXPECT_EQ(total, 2 * 10000 - 9000 - 15000);
  EXPECT_FALSE(
      sgt::AnalyzeHistory(env.db->history()->Snapshot()).serializable);
}

TEST(SmallBankTest, ReadOnlyAnomalyPreventedUnderSSI) {
  Env env(SmallBankConfig{.customers = 1});
  auto [c_wc, c_ts, c_bal] =
      AnomalyDriver::Run(&env, IsolationLevel::kSerializableSSI);
  // The structure must be broken: not all three can commit.
  EXPECT_FALSE(c_wc.ok() && c_ts.ok() && c_bal.ok())
      << "wc=" << c_wc.ToString() << " ts=" << c_ts.ToString()
      << " bal=" << c_bal.ToString();
  EXPECT_TRUE(
      sgt::AnalyzeHistory(env.db->history()->Snapshot()).serializable);
}

/// §2.8.5: each fix must close the SDG dangerous structure so the WC/TS
/// write-skew pair cannot both commit at plain SI.
class SmallBankFixTest : public ::testing::TestWithParam<SmallBankFix> {};

TEST_P(SmallBankFixTest, FixPreventsWcTsSkewAtSI) {
  Env env(SmallBankConfig{.customers = 1, .ops_per_txn = 1,
                          .fix = GetParam()});
  DB* db = env.db.get();
  SmallBank* bank = env.bank.get();
  SeriesConfig si = SI();
  // Run WC and TS concurrently via the workload's own programs, with the
  // interleaving forced by two client transactions is impossible through
  // RunOp (it owns the txn); instead run them back-to-back in two threads
  // many times and verify the conservation invariant never breaks.
  // With the fix in place, the FCW rule forces one of each conflicting
  // pair to abort, so the penalty-miscalculation can never materialize.
  int64_t initial = 0;
  ASSERT_TRUE(bank->TotalBalance(db, &initial).ok());
  int64_t expected_delta = 0;
  for (int round = 0; round < 20; ++round) {
    std::atomic<int> wc_ok{0}, ts_ok{0};
    std::thread a([&] {
      Status s = bank->RunOp(db, si, SmallBankOp::kWriteCheck, 0, 0, 15000);
      if (s.ok()) wc_ok.store(1);
    });
    std::thread b([&] {
      Status s = bank->RunOp(db, si, SmallBankOp::kTransactSaving, 0, 0,
                             10000);
      if (s.ok()) ts_ok.store(1);
    });
    a.join();
    b.join();
    // Recompute expectation from the actual post-state: what matters is
    // conservation, checked below via serializability of the history.
    (void)wc_ok;
    (void)ts_ok;
    (void)expected_delta;
  }
  // The oracle over the recorded history is the real check: with the fix,
  // every SI execution must be serializable.
  EXPECT_TRUE(
      sgt::AnalyzeHistory(env.db->history()->Snapshot()).serializable);
}

INSTANTIATE_TEST_SUITE_P(
    AllFixes, SmallBankFixTest,
    ::testing::Values(SmallBankFix::kMaterializeWT, SmallBankFix::kPromoteWT,
                      SmallBankFix::kPromoteWTSelectForUpdate,
                      SmallBankFix::kMaterializeBW, SmallBankFix::kPromoteBW),
    [](const ::testing::TestParamInfo<SmallBankFix>& info) {
      switch (info.param) {
        case SmallBankFix::kMaterializeWT: return "MaterializeWT";
        case SmallBankFix::kPromoteWT: return "PromoteWT";
        case SmallBankFix::kPromoteWTSelectForUpdate: return "PromoteWT_SFU";
        case SmallBankFix::kMaterializeBW: return "MaterializeBW";
        case SmallBankFix::kPromoteBW: return "PromoteBW";
        default: return "None";
      }
    });

/// Concurrency soak: run the full mix at every isolation level; under SSI
/// and S2PL the recorded history must stay serializable, and the books
/// must balance (deposits/checks tracked by the oracle's serializability,
/// not exact totals, since amounts are random).
class SmallBankSoakTest : public ::testing::TestWithParam<IsolationLevel> {};

TEST_P(SmallBankSoakTest, ConcurrentMixKeepsHistorySerializable) {
  Env env(SmallBankConfig{.customers = 8});  // Small: force contention.
  DB* db = env.db.get();
  SmallBank* bank = env.bank.get();
  SeriesConfig series{"x", GetParam(), std::nullopt};
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 50;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Random rng(1000 + t);
      for (int i = 0; i < kOpsPerThread; ++i) {
        bank->RunOne(db, series, t, &rng);  // Outcome irrelevant; retry-free.
      }
    });
  }
  for (auto& th : threads) th.join();
  if (GetParam() != IsolationLevel::kSnapshot) {
    EXPECT_TRUE(
        sgt::AnalyzeHistory(env.db->history()->Snapshot()).serializable);
  }
  // Engine-level sanity regardless of isolation.
  DBStats stats = db->GetStats();
  EXPECT_EQ(stats.active_txns, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllIsolationLevels, SmallBankSoakTest,
    ::testing::Values(IsolationLevel::kSnapshot,
                      IsolationLevel::kSerializableSSI,
                      IsolationLevel::kSerializable2PL),
    [](const ::testing::TestParamInfo<IsolationLevel>& info) {
      switch (info.param) {
        case IsolationLevel::kSnapshot: return "SI";
        case IsolationLevel::kSerializableSSI: return "SSI";
        case IsolationLevel::kSerializable2PL: return "S2PL";
      }
      return "unknown";
    });

TEST(SmallBankTest, MultiOpTransactionsCommit) {
  Env env(SmallBankConfig{.customers = 16, .ops_per_txn = 10});
  Random rng(7);
  SeriesConfig series = SSI();
  int ok = 0;
  for (int i = 0; i < 30; ++i) {
    if (env.bank->RunOne(env.db.get(), series, 0, &rng).ok()) ++ok;
  }
  EXPECT_GT(ok, 20);  // Single-threaded: nearly everything commits.
}

}  // namespace
}  // namespace ssidb::workloads
