// EpochReclaimer unit + stress tests (src/common/epoch.h): collection
// horizon semantics, duplicate epochs, the lock-free oldest-epoch fast
// path, cross-thread retire/collect visibility, and — under TSan in CI —
// the raise-then-verify protocol that keeps a concurrent Retire from being
// leaked past a Collect forever.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "src/common/epoch.h"

namespace ssidb {
namespace {

TEST(EpochReclaimerTest, CollectRespectsHorizon) {
  EpochReclaimer<uint64_t> r(/*slots=*/4);
  for (uint64_t e = 1; e <= 10; ++e) r.Retire(e, e * 100);
  EXPECT_EQ(r.size(), 10u);
  EXPECT_EQ(r.oldest(), 1u);

  std::vector<uint64_t> got;
  EXPECT_EQ(r.Collect(5, [&](uint64_t v) { got.push_back(v); }), 5u);
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, (std::vector<uint64_t>{100, 200, 300, 400, 500}));
  EXPECT_EQ(r.size(), 5u);
  EXPECT_EQ(r.oldest(), 6u);

  // Same horizon again: nothing left at or below it.
  EXPECT_EQ(r.Collect(5, [&](uint64_t) { FAIL(); }), 0u);

  // Drain.
  got.clear();
  EXPECT_EQ(r.Collect(EpochReclaimer<uint64_t>::kMaxEpoch,
                      [&](uint64_t v) { got.push_back(v); }),
            5u);
  EXPECT_EQ(r.size(), 0u);
  EXPECT_EQ(r.oldest(), EpochReclaimer<uint64_t>::kMaxEpoch);
}

TEST(EpochReclaimerTest, DuplicateEpochsAllCollected) {
  // Read-only commits share commit timestamps: duplicates must coexist
  // and all come out.
  EpochReclaimer<int> r(/*slots=*/1);
  r.Retire(7, 1);
  r.Retire(7, 2);
  r.Retire(7, 3);
  int n = 0;
  EXPECT_EQ(r.Collect(7, [&](int) { ++n; }), 3u);
  EXPECT_EQ(n, 3);
}

TEST(EpochReclaimerTest, FastPathSkipsWhenNothingCollectible) {
  EpochReclaimer<int> r(/*slots=*/2);
  EXPECT_EQ(r.Collect(1000, [](int) { FAIL(); }), 0u);  // Empty.
  r.Retire(50, 1);
  // Horizon below the oldest retired epoch: the atomic fast path declines
  // without touching any slot.
  EXPECT_EQ(r.Collect(49, [](int) { FAIL(); }), 0u);
  EXPECT_EQ(r.size(), 1u);
  EXPECT_EQ(r.Collect(50, [](int) {}), 1u);
}

TEST(EpochReclaimerTest, RetiresFromManyThreadsAllVisibleToOneCollect) {
  // Retire lands in per-thread slots; a single Collect must still scan
  // them all (TxnManager::CleanupSuspended runs on whichever thread
  // commits last, not the retiring thread).
  EpochReclaimer<uint64_t> r(/*slots=*/0);  // Topology-sized.
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        const uint64_t e = static_cast<uint64_t>(t) * kPerThread + i + 1;
        r.Retire(e, e);
      }
    });
  }
  for (auto& t : threads) t.join();
  ASSERT_EQ(r.size(), kThreads * kPerThread);

  std::vector<uint64_t> got;
  r.Collect(EpochReclaimer<uint64_t>::kMaxEpoch,
            [&](uint64_t v) { got.push_back(v); });
  ASSERT_EQ(got.size(), kThreads * kPerThread);
  std::sort(got.begin(), got.end());
  for (uint64_t i = 0; i < got.size(); ++i) EXPECT_EQ(got[i], i + 1);
}

/// The TSan-wired stress: concurrent retirers and collectors. Checks the
/// header's leak-freedom claim — every retired item is eventually
/// collected exactly once, never at a horizon below its epoch — while
/// TSan validates the slot/oldest_ synchronization.
TEST(EpochReclaimerStressTest, ConcurrentRetireAndCollectLosesNothing) {
  EpochReclaimer<uint64_t> r(/*slots=*/4);
  constexpr int kRetirers = 4;
  constexpr int kCollectors = 2;
  constexpr uint64_t kPerRetirer = 2000;

  std::atomic<uint64_t> epoch_clock{0};
  std::atomic<bool> stop{false};
  std::mutex collected_mu;
  std::vector<uint64_t> collected;

  std::vector<std::thread> threads;
  for (int t = 0; t < kRetirers; ++t) {
    threads.emplace_back([&] {
      for (uint64_t i = 0; i < kPerRetirer; ++i) {
        const uint64_t e =
            epoch_clock.fetch_add(1, std::memory_order_relaxed) + 1;
        r.Retire(e, e);
      }
    });
  }
  for (int t = 0; t < kCollectors; ++t) {
    threads.emplace_back([&] {
      std::vector<uint64_t> local;
      while (!stop.load(std::memory_order_relaxed)) {
        const uint64_t now = epoch_clock.load(std::memory_order_relaxed);
        const uint64_t horizon = now > 32 ? now - 32 : 0;
        r.Collect(horizon, [&](uint64_t v) {
          EXPECT_LE(v, horizon);  // Never collects past the horizon.
          local.push_back(v);
        });
        std::this_thread::yield();
      }
      std::lock_guard<std::mutex> guard(collected_mu);
      collected.insert(collected.end(), local.begin(), local.end());
    });
  }
  for (int t = 0; t < kRetirers; ++t) threads[t].join();
  stop.store(true);
  for (size_t t = kRetirers; t < threads.size(); ++t) threads[t].join();

  // Final drain picks up whatever the horizon lag left behind.
  r.Collect(EpochReclaimer<uint64_t>::kMaxEpoch,
            [&](uint64_t v) { collected.push_back(v); });

  // Exactly-once: the multiset of collected items is 1..N.
  const uint64_t total = kRetirers * kPerRetirer;
  ASSERT_EQ(collected.size(), total);
  std::sort(collected.begin(), collected.end());
  for (uint64_t i = 0; i < total; ++i) ASSERT_EQ(collected[i], i + 1);
  EXPECT_EQ(r.size(), 0u);
}

}  // namespace
}  // namespace ssidb
