// Tests for the serialization-graph oracle (src/sgt): history recording,
// MVSG edge derivation (ww / wr / rw, vulnerability), cycle detection and
// dangerous-structure identification (§2.5.1, Figs 2.1/2.2).

#include <gtest/gtest.h>

#include <vector>

#include "src/sgt/history.h"
#include "src/sgt/mvsg.h"

namespace ssidb::sgt {
namespace {

/// Builder for hand-crafted histories.
class HistoryBuilder {
 public:
  HistoryBuilder& Begin(TxnId t, Timestamp snap) {
    rec_.Begin(t, snap);
    return *this;
  }
  HistoryBuilder& Read(TxnId t, const std::string& k, Timestamp version_cts) {
    rec_.Read(t, 1, k, version_cts, false);
    return *this;
  }
  HistoryBuilder& Write(TxnId t, const std::string& k) {
    rec_.Write(t, 1, k, false);
    return *this;
  }
  HistoryBuilder& Scan(TxnId t, const std::string& lo, const std::string& hi,
                       Timestamp snap) {
    rec_.Scan(t, 1, lo, hi, snap);
    return *this;
  }
  HistoryBuilder& Commit(TxnId t, Timestamp cts) {
    rec_.Commit(t, cts);
    return *this;
  }
  HistoryBuilder& Abort(TxnId t) {
    rec_.Abort(t);
    return *this;
  }
  MVSGResult Analyze() { return AnalyzeHistory(rec_.Snapshot()); }

 private:
  HistoryRecorder rec_;
};

bool HasEdge(const MVSGResult& r, TxnId from, TxnId to, EdgeType type) {
  for (const Edge& e : r.edges) {
    if (e.from == from && e.to == to && e.type == type) return true;
  }
  return false;
}

TEST(HistoryRecorderTest, RecordsInCompletionOrder) {
  HistoryRecorder rec;
  rec.Begin(1, 10);
  rec.Read(1, 1, "x", 5, false);
  rec.Commit(1, 20);
  auto ops = rec.Snapshot();
  ASSERT_EQ(ops.size(), 3u);
  EXPECT_LT(ops[0].seq, ops[1].seq);
  EXPECT_LT(ops[1].seq, ops[2].seq);
  EXPECT_EQ(ops[0].type, OpType::kBegin);
  EXPECT_EQ(ops[2].type, OpType::kCommit);
  EXPECT_EQ(rec.size(), 3u);
  rec.Clear();
  EXPECT_EQ(rec.size(), 0u);
}

TEST(MVSGTest, EmptyHistoryIsSerializable) {
  HistoryBuilder h;
  auto r = h.Analyze();
  EXPECT_TRUE(r.serializable);
  EXPECT_EQ(r.committed_txns, 0u);
}

TEST(MVSGTest, SingleTransactionIsSerializable) {
  HistoryBuilder h;
  auto r = h.Begin(1, 10).Write(1, "x").Commit(1, 20).Analyze();
  EXPECT_TRUE(r.serializable);
  EXPECT_EQ(r.committed_txns, 1u);
  EXPECT_TRUE(r.edges.empty());
}

TEST(MVSGTest, AbortedTransactionsAreExcluded) {
  HistoryBuilder h;
  auto r = h.Begin(1, 10)
               .Write(1, "x")
               .Abort(1)
               .Begin(2, 11)
               .Write(2, "x")
               .Commit(2, 20)
               .Analyze();
  EXPECT_TRUE(r.serializable);
  EXPECT_EQ(r.committed_txns, 1u);
  EXPECT_TRUE(r.edges.empty());
}

TEST(MVSGTest, WwEdgeFollowsCommitOrder) {
  HistoryBuilder h;
  auto r = h.Begin(1, 10)
               .Write(1, "x")
               .Commit(1, 20)
               .Begin(2, 25)
               .Write(2, "x")
               .Commit(2, 30)
               .Analyze();
  EXPECT_TRUE(r.serializable);
  EXPECT_TRUE(HasEdge(r, 1, 2, EdgeType::kWW));
  EXPECT_FALSE(HasEdge(r, 2, 1, EdgeType::kWW));
}

TEST(MVSGTest, WrEdgeFromVersionCreatorToReader) {
  HistoryBuilder h;
  auto r = h.Begin(1, 10)
               .Write(1, "x")
               .Commit(1, 20)
               .Begin(2, 25)
               .Read(2, "x", 20)  // Reads T1's version.
               .Commit(2, 30)
               .Analyze();
  EXPECT_TRUE(r.serializable);
  EXPECT_TRUE(HasEdge(r, 1, 2, EdgeType::kWR));
}

TEST(MVSGTest, RwEdgeFromReaderOfOlderVersion) {
  // T1 reads version 5 of x; T2 later creates version 30: rw T1 -> T2.
  HistoryBuilder h;
  auto r = h.Begin(1, 10)
               .Read(1, "x", 5)
               .Commit(1, 40)
               .Begin(2, 20)
               .Write(2, "x")
               .Commit(2, 30)
               .Analyze();
  EXPECT_TRUE(r.serializable);
  bool found = false;
  for (const Edge& e : r.edges) {
    if (e.from == 1 && e.to == 2 && e.type == EdgeType::kRW) {
      found = true;
      // Lifetimes [10,40] and [20,30] overlap: vulnerable.
      EXPECT_TRUE(e.vulnerable);
    }
  }
  EXPECT_TRUE(found);
}

TEST(MVSGTest, RwEdgeNotVulnerableWithoutOverlap) {
  // T1 commits at 15, T2 begins at 20: rw edge exists but not vulnerable.
  HistoryBuilder h;
  auto r = h.Begin(1, 10)
               .Read(1, "x", 5)
               .Commit(1, 15)
               .Begin(2, 20)
               .Write(2, "x")
               .Commit(2, 30)
               .Analyze();
  for (const Edge& e : r.edges) {
    if (e.from == 1 && e.to == 2 && e.type == EdgeType::kRW) {
      EXPECT_FALSE(e.vulnerable);
    }
  }
}

TEST(MVSGTest, WriteSkewCycleDetected) {
  // Fig 2.1: T1 reads y writes x, T2 reads x writes y, concurrent.
  HistoryBuilder h;
  auto r = h.Begin(1, 10)
               .Read(1, "y", 5)
               .Write(1, "x")
               .Begin(2, 10)
               .Read(2, "x", 5)
               .Write(2, "y")
               .Commit(1, 20)
               .Commit(2, 21)
               .Analyze();
  EXPECT_FALSE(r.serializable);
  ASSERT_FALSE(r.cycle.empty());
  // Both transactions are pivots here (Tin == Tout case of Theorem 2).
  EXPECT_FALSE(r.dangerous_structures.empty());
}

TEST(MVSGTest, ReadOnlyAnomalyCycleDetected) {
  // Example 3 runtime shape (Fig 2.3(a)):
  //   Tout (id 2) writes y,z commits at 20.
  //   Tin (id 3) begins at 25, reads x (old, version 0) and z (version 20).
  //   Tpivot (id 1) began at 10, read y (version 0), writes x, commits 30.
  HistoryBuilder h;
  auto r = h.Begin(1, 10)
               .Read(1, "y", 0)
               .Begin(2, 10)
               .Write(2, "y")
               .Write(2, "z")
               .Commit(2, 20)
               .Begin(3, 25)
               .Read(3, "x", 0)
               .Read(3, "z", 20)
               .Commit(3, 26)
               .Write(1, "x")
               .Commit(1, 30)
               .Analyze();
  EXPECT_FALSE(r.serializable);
  // The cycle: pivot -rw-> out -wr-> in -rw-> pivot.
  EXPECT_FALSE(r.dangerous_structures.empty());
  bool pivot_found = false;
  for (const auto& d : r.dangerous_structures) {
    if (d.pivot == 1) pivot_found = true;
  }
  EXPECT_TRUE(pivot_found);
}

TEST(MVSGTest, SerialHistoryHasNoVulnerableEdges) {
  HistoryBuilder h;
  auto r = h.Begin(1, 10)
               .Read(1, "x", 0)
               .Write(1, "y")
               .Commit(1, 15)
               .Begin(2, 20)
               .Read(2, "y", 15)
               .Write(2, "x")
               .Commit(2, 25)
               .Analyze();
  EXPECT_TRUE(r.serializable);
  for (const Edge& e : r.edges) EXPECT_FALSE(e.vulnerable);
  EXPECT_TRUE(r.dangerous_structures.empty());
}

TEST(MVSGTest, PredicateRwEdgeFromScan) {
  // T1 scans [a, c] at snapshot 10; T2 writes "b" committing at 20 > 10:
  // a predicate rw edge T1 -> T2 (the phantom case, §2.5.2).
  HistoryBuilder h;
  auto r = h.Begin(1, 10)
               .Scan(1, "a", "c", 10)
               .Commit(1, 30)
               .Begin(2, 15)
               .Write(2, "b")
               .Commit(2, 20)
               .Analyze();
  EXPECT_TRUE(HasEdge(r, 1, 2, EdgeType::kRW));
}

TEST(MVSGTest, ScanOutsideRangeNoEdge) {
  HistoryBuilder h;
  auto r = h.Begin(1, 10)
               .Scan(1, "a", "c", 10)
               .Commit(1, 30)
               .Begin(2, 15)
               .Write(2, "z")  // Outside [a, c].
               .Commit(2, 20)
               .Analyze();
  EXPECT_FALSE(HasEdge(r, 1, 2, EdgeType::kRW));
}

TEST(MVSGTest, PhantomWriteSkewCycleDetected) {
  // Two scanners, each inserting into the other's range.
  HistoryBuilder h;
  auto r = h.Begin(1, 10)
               .Scan(1, "b", "bz", 10)
               .Write(1, "a2")
               .Begin(2, 10)
               .Scan(2, "a", "az", 10)
               .Write(2, "b2")
               .Commit(1, 20)
               .Commit(2, 21)
               .Analyze();
  EXPECT_FALSE(r.serializable);
}

TEST(MVSGTest, ThreeTxnChainNoCycle) {
  HistoryBuilder h;
  auto r = h.Begin(1, 10)
               .Write(1, "a")
               .Commit(1, 11)
               .Begin(2, 12)
               .Read(2, "a", 11)
               .Write(2, "b")
               .Commit(2, 13)
               .Begin(3, 14)
               .Read(3, "b", 13)
               .Commit(3, 15)
               .Analyze();
  EXPECT_TRUE(r.serializable);
  EXPECT_EQ(r.committed_txns, 3u);
  EXPECT_TRUE(HasEdge(r, 1, 2, EdgeType::kWR));
  EXPECT_TRUE(HasEdge(r, 2, 3, EdgeType::kWR));
}

TEST(MVSGTest, DescribeResultMentionsOutcome) {
  HistoryBuilder h;
  auto r = h.Begin(1, 10).Write(1, "x").Commit(1, 20).Analyze();
  EXPECT_NE(DescribeResult(r).find("serializable"), std::string::npos);
}

}  // namespace
}  // namespace ssidb::sgt
