// §4.7 exhaustive interleaving testing, reproduced as a gtest harness.
//
// The thesis validated the InnoDB prototype by generating *every*
// interleaving of a transaction set known to exhibit write skew and checking
// that (a) at snapshot isolation all interleavings commit (the anomaly), and
// (b) at Serializable SI at least one transaction aborts with the unsafe
// error in every non-serializable interleaving — and nothing worse happens
// in the serializable ones.
//
// We enumerate interleavings of operation sequences and, for every one,
// replay it against a fresh engine at each isolation level, then run the
// MVSG oracle over the recorded history: committed transactions must always
// form an acyclic graph under SSI and S2PL. The program sets, enumerator
// and replayer live in interleaving_harness.h (shared with the
// certification differential tests).

#include <gtest/gtest.h>

#include "tests/interleaving_harness.h"

namespace ssidb {
namespace {

using interleave::AllInterleavings;
using interleave::Replay;
using interleave::ReplayResult;
using interleave::TestSetPrograms;
using interleave::WriteSkewPrograms;

TEST(InterleavingTest, EnumerationCountMatchesMultinomial) {
  // |T1|=2, |T2|=3, |T3|=2 -> 7! / (2! 3! 2!) = 210 interleavings.
  EXPECT_EQ(AllInterleavings(TestSetPrograms()).size(), 210u);
  // |T1|=|T2|=4 -> 8! / (4! 4!) = 70 interleavings.
  EXPECT_EQ(AllInterleavings(WriteSkewPrograms()).size(), 70u);
}

TEST(InterleavingTest, SSICommittedHistoriesAlwaysSerializable) {
  int total_unsafe = 0;
  int total_committed = 0;
  for (const auto& interleaving : AllInterleavings(TestSetPrograms())) {
    ReplayResult r =
        Replay(interleaving, 3, IsolationLevel::kSerializableSSI);
    EXPECT_TRUE(r.history_serializable)
        << "SSI admitted a non-serializable execution";
    total_unsafe += r.unsafe_aborts;
    total_committed += r.committed;
  }
  // The §4.7 observation: concurrent interleavings trigger unsafe aborts
  // even though this set never forms a cycle (conservative detection)...
  EXPECT_GT(total_unsafe, 0);
  // ...but most transactions still commit.
  EXPECT_GT(total_committed, 400);
}

TEST(InterleavingTest, SSIWriteSkewPairAllInterleavingsSafe) {
  int total_unsafe = 0;
  for (const auto& interleaving : AllInterleavings(WriteSkewPrograms())) {
    ReplayResult r =
        Replay(interleaving, 2, IsolationLevel::kSerializableSSI);
    EXPECT_TRUE(r.history_serializable)
        << "SSI admitted a non-serializable write-skew interleaving";
    total_unsafe += r.unsafe_aborts;
  }
  EXPECT_GT(total_unsafe, 0);  // The concurrent interleavings were caught.
}

TEST(InterleavingTest, SnapshotIsolationAdmitsNonSerializableInterleavings) {
  int nonserializable = 0;
  for (const auto& interleaving : AllInterleavings(WriteSkewPrograms())) {
    ReplayResult r = Replay(interleaving, 2, IsolationLevel::kSnapshot);
    EXPECT_EQ(r.unsafe_aborts, 0);  // SI never raises unsafe.
    if (!r.history_serializable) ++nonserializable;
  }
  // The whole point of the write-skew pair: plain SI lets the anomaly
  // through whenever the reads of both transactions precede both writes.
  EXPECT_GT(nonserializable, 0);
}

TEST(InterleavingTest, S2PLHistoriesAlwaysSerializable) {
  for (const auto& interleaving : AllInterleavings(TestSetPrograms())) {
    ReplayResult r =
        Replay(interleaving, 3, IsolationLevel::kSerializable2PL);
    EXPECT_TRUE(r.history_serializable)
        << "S2PL admitted a non-serializable execution";
  }
  for (const auto& interleaving : AllInterleavings(WriteSkewPrograms())) {
    ReplayResult r =
        Replay(interleaving, 2, IsolationLevel::kSerializable2PL);
    EXPECT_TRUE(r.history_serializable)
        << "S2PL admitted a non-serializable write-skew interleaving";
  }
}

TEST(InterleavingTest, FlagsModeAlsoPreventsAllAnomalies) {
  // The basic (Fig 3.1-3.5) algorithm is conservative: it may abort more,
  // but must never admit a non-serializable execution either.
  DBOptions opts;
  opts.conflict_tracking = ConflictTracking::kFlags;
  for (const auto& interleaving : AllInterleavings(WriteSkewPrograms())) {
    ReplayResult r =
        Replay(interleaving, 2, IsolationLevel::kSerializableSSI, opts);
    EXPECT_TRUE(r.history_serializable)
        << "flags-mode SSI admitted a non-serializable interleaving";
  }
}

}  // namespace
}  // namespace ssidb
