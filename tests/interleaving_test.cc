// §4.7 exhaustive interleaving testing, reproduced as a gtest harness.
//
// The thesis validated the InnoDB prototype by generating *every*
// interleaving of a transaction set known to exhibit write skew and checking
// that (a) at snapshot isolation all interleavings commit (the anomaly), and
// (b) at Serializable SI at least one transaction aborts with the unsafe
// error in every non-serializable interleaving — and nothing worse happens
// in the serializable ones.
//
// We enumerate interleavings of operation sequences and, for every one,
// replay it against a fresh engine at each isolation level, then run the
// MVSG oracle over the recorded history: committed transactions must always
// form an acyclic graph under SSI and S2PL.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "src/db/db.h"
#include "src/sgt/mvsg.h"

namespace ssidb {
namespace {

struct Op {
  int txn;  // Index into the transaction set.
  enum Kind { kRead, kWrite, kCommit } kind;
  std::string key;
};

/// The thesis's §4.7 test set:
///   T1: b1 r1(x) c1
///   T2: b2 r2(y) w2(x) c2
///   T3: b3 w3(y) c3
/// Note this set produces only a chain T1 -rw-> T2 -rw-> T3 (never a
/// cycle), so every execution is serializable — it probes the *conservative*
/// side of the detector: SSI may abort (T2 is a structural pivot) but must
/// never be needed for correctness here.
std::vector<std::vector<Op>> TestSetPrograms() {
  return {
      {{0, Op::kRead, "x"}, {0, Op::kCommit, ""}},
      {{1, Op::kRead, "y"}, {1, Op::kWrite, "x"}, {1, Op::kCommit, ""}},
      {{2, Op::kWrite, "y"}, {2, Op::kCommit, ""}},
  };
}

/// The classic write-skew pair (Example 2, Fig 2.1): interleavings where
/// both transactions read before either commits are genuinely
/// non-serializable under SI.
std::vector<std::vector<Op>> WriteSkewPrograms() {
  return {
      {{0, Op::kRead, "x"},
       {0, Op::kRead, "y"},
       {0, Op::kWrite, "x"},
       {0, Op::kCommit, ""}},
      {{1, Op::kRead, "x"},
       {1, Op::kRead, "y"},
       {1, Op::kWrite, "y"},
       {1, Op::kCommit, ""}},
  };
}

/// All merges of the per-transaction sequences, preserving each program's
/// internal order (standard multiset-permutation enumeration).
void EnumerateInterleavings(const std::vector<std::vector<Op>>& programs,
                            std::vector<Op>* current,
                            std::vector<size_t>* pos,
                            std::vector<std::vector<Op>>* out) {
  bool done = true;
  for (size_t i = 0; i < programs.size(); ++i) {
    if ((*pos)[i] < programs[i].size()) {
      done = false;
      current->push_back(programs[i][(*pos)[i]]);
      (*pos)[i]++;
      EnumerateInterleavings(programs, current, pos, out);
      (*pos)[i]--;
      current->pop_back();
    }
  }
  if (done) out->push_back(*current);
}

std::vector<std::vector<Op>> AllInterleavings(
    const std::vector<std::vector<Op>>& programs) {
  std::vector<std::vector<Op>> out;
  std::vector<Op> current;
  std::vector<size_t> pos(programs.size(), 0);
  EnumerateInterleavings(programs, &current, &pos, &out);
  return out;
}

struct ReplayResult {
  int committed = 0;
  int unsafe_aborts = 0;
  int other_aborts = 0;
  bool history_serializable = true;
};

/// Replay one interleaving of `num_txns` programs at `iso`. A transaction
/// that aborts mid-stream skips its remaining operations (as a real client
/// would).
ReplayResult Replay(const std::vector<Op>& interleaving, int num_txns,
                    IsolationLevel iso) {
  DBOptions opts;
  opts.record_history = true;
  opts.lock_timeout_ms = 100;  // S2PL interleavings can block; fail fast.
  std::unique_ptr<DB> db;
  EXPECT_TRUE(DB::Open(opts, &db).ok());
  TableId table = 0;
  EXPECT_TRUE(db->CreateTable("t", &table).ok());
  {
    auto seed = db->Begin({IsolationLevel::kSnapshot});
    EXPECT_TRUE(seed->Put(table, "x", "0").ok());
    EXPECT_TRUE(seed->Put(table, "y", "0").ok());
    EXPECT_TRUE(seed->Commit().ok());
  }

  std::vector<std::unique_ptr<Transaction>> txns;
  for (int i = 0; i < num_txns; ++i) txns.push_back(db->Begin({iso}));
  std::vector<bool> dead(num_txns, false);

  ReplayResult result;
  for (const Op& op : interleaving) {
    Transaction* txn = txns[op.txn].get();
    if (dead[op.txn] || !txn->active()) {
      if (!dead[op.txn]) {
        dead[op.txn] = true;
      }
      continue;
    }
    Status s;
    switch (op.kind) {
      case Op::kRead: {
        std::string v;
        s = txn->Get(table, op.key, &v);
        break;
      }
      case Op::kWrite:
        s = txn->Put(table, op.key, "1");
        break;
      case Op::kCommit:
        s = txn->Commit();
        if (s.ok()) {
          ++result.committed;
          dead[op.txn] = true;
          continue;
        }
        break;
    }
    if (!s.ok()) {
      dead[op.txn] = true;
      if (txn->active()) txn->Abort();
      if (s.IsUnsafe()) {
        ++result.unsafe_aborts;
      } else if (s.IsAbort()) {
        ++result.other_aborts;
      }
    }
  }
  for (auto& txn : txns) {
    if (txn->active()) txn->Abort();
  }
  result.history_serializable =
      sgt::AnalyzeHistory(db->history()->Snapshot()).serializable;
  return result;
}

TEST(InterleavingTest, EnumerationCountMatchesMultinomial) {
  // |T1|=2, |T2|=3, |T3|=2 -> 7! / (2! 3! 2!) = 210 interleavings.
  EXPECT_EQ(AllInterleavings(TestSetPrograms()).size(), 210u);
  // |T1|=|T2|=4 -> 8! / (4! 4!) = 70 interleavings.
  EXPECT_EQ(AllInterleavings(WriteSkewPrograms()).size(), 70u);
}

TEST(InterleavingTest, SSICommittedHistoriesAlwaysSerializable) {
  int total_unsafe = 0;
  int total_committed = 0;
  for (const auto& interleaving : AllInterleavings(TestSetPrograms())) {
    ReplayResult r =
        Replay(interleaving, 3, IsolationLevel::kSerializableSSI);
    EXPECT_TRUE(r.history_serializable)
        << "SSI admitted a non-serializable execution";
    total_unsafe += r.unsafe_aborts;
    total_committed += r.committed;
  }
  // The §4.7 observation: concurrent interleavings trigger unsafe aborts
  // even though this set never forms a cycle (conservative detection)...
  EXPECT_GT(total_unsafe, 0);
  // ...but most transactions still commit.
  EXPECT_GT(total_committed, 400);
}

TEST(InterleavingTest, SSIWriteSkewPairAllInterleavingsSafe) {
  int total_unsafe = 0;
  for (const auto& interleaving : AllInterleavings(WriteSkewPrograms())) {
    ReplayResult r =
        Replay(interleaving, 2, IsolationLevel::kSerializableSSI);
    EXPECT_TRUE(r.history_serializable)
        << "SSI admitted a non-serializable write-skew interleaving";
    total_unsafe += r.unsafe_aborts;
  }
  EXPECT_GT(total_unsafe, 0);  // The concurrent interleavings were caught.
}

TEST(InterleavingTest, SnapshotIsolationAdmitsNonSerializableInterleavings) {
  int nonserializable = 0;
  for (const auto& interleaving : AllInterleavings(WriteSkewPrograms())) {
    ReplayResult r = Replay(interleaving, 2, IsolationLevel::kSnapshot);
    EXPECT_EQ(r.unsafe_aborts, 0);  // SI never raises unsafe.
    if (!r.history_serializable) ++nonserializable;
  }
  // The whole point of the write-skew pair: plain SI lets the anomaly
  // through whenever the reads of both transactions precede both writes.
  EXPECT_GT(nonserializable, 0);
}

TEST(InterleavingTest, S2PLHistoriesAlwaysSerializable) {
  for (const auto& interleaving : AllInterleavings(TestSetPrograms())) {
    ReplayResult r =
        Replay(interleaving, 3, IsolationLevel::kSerializable2PL);
    EXPECT_TRUE(r.history_serializable)
        << "S2PL admitted a non-serializable execution";
  }
  for (const auto& interleaving : AllInterleavings(WriteSkewPrograms())) {
    ReplayResult r =
        Replay(interleaving, 2, IsolationLevel::kSerializable2PL);
    EXPECT_TRUE(r.history_serializable)
        << "S2PL admitted a non-serializable write-skew interleaving";
  }
}

TEST(InterleavingTest, FlagsModeAlsoPreventsAllAnomalies) {
  // The basic (Fig 3.1-3.5) algorithm is conservative: it may abort more,
  // but must never admit a non-serializable execution either.
  for (const auto& interleaving : AllInterleavings(WriteSkewPrograms())) {
    DBOptions opts;
    opts.record_history = true;
    opts.conflict_tracking = ConflictTracking::kFlags;
    // Replay inline (Replay() hard-codes default options).
    std::unique_ptr<DB> db;
    ASSERT_TRUE(DB::Open(opts, &db).ok());
    TableId table = 0;
    ASSERT_TRUE(db->CreateTable("t", &table).ok());
    {
      auto seed = db->Begin({IsolationLevel::kSnapshot});
      ASSERT_TRUE(seed->Put(table, "x", "0").ok());
      ASSERT_TRUE(seed->Put(table, "y", "0").ok());
      ASSERT_TRUE(seed->Commit().ok());
    }
    std::vector<std::unique_ptr<Transaction>> txns;
    for (int i = 0; i < 3; ++i) {
      txns.push_back(db->Begin({IsolationLevel::kSerializableSSI}));
    }
    std::vector<bool> dead(3, false);
    for (const Op& op : interleaving) {
      Transaction* txn = txns[op.txn].get();
      if (dead[op.txn] || !txn->active()) continue;
      Status s;
      std::string v;
      switch (op.kind) {
        case Op::kRead: s = txn->Get(table, op.key, &v); break;
        case Op::kWrite: s = txn->Put(table, op.key, "1"); break;
        case Op::kCommit: s = txn->Commit(); break;
      }
      if (!s.ok() || op.kind == Op::kCommit) {
        dead[op.txn] = true;
        if (txn->active()) txn->Abort();
      }
    }
    for (auto& txn : txns) {
      if (txn->active()) txn->Abort();
    }
    EXPECT_TRUE(
        sgt::AnalyzeHistory(db->history()->Snapshot()).serializable);
  }
}

}  // namespace
}  // namespace ssidb
