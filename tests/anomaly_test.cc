// The paper's anomaly catalogue as executable tests.
//
// Each test constructs a specific interleaving from Chapter 2/3 and checks
// the required outcome per isolation level: snapshot isolation admits the
// anomaly (that is the bug the paper fixes), Serializable SI and S2PL must
// prevent it — SSI by aborting one transaction with kUnsafe, S2PL by
// blocking/deadlocking.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>

#include "src/db/db.h"
#include "src/sgt/mvsg.h"
#include "tests/test_util.h"

namespace ssidb {
namespace {

struct Fixture {
  std::unique_ptr<DB> db;
  TableId table = 0;

  explicit Fixture(DBOptions opts = {}) {
    opts.record_history = true;
    EXPECT_TRUE(DB::Open(opts, &db).ok());
    EXPECT_TRUE(db->CreateTable("t", &table).ok());
  }

  void Seed(Slice key, Slice value) {
    auto txn = db->Begin({IsolationLevel::kSnapshot});
    ASSERT_TRUE(txn->Put(table, key, value).ok());
    ASSERT_TRUE(txn->Commit().ok());
  }

  int64_t GetInt(Slice key) {
    auto txn = db->Begin({IsolationLevel::kSnapshot});
    std::string v;
    EXPECT_TRUE(txn->Get(table, key, &v).ok());
    txn->Commit();
    return std::stoll(v);
  }

  bool HistorySerializable() {
    return sgt::AnalyzeHistory(db->history()->Snapshot()).serializable;
  }
};

/// Abort forensics captured from the write-skew pair before the
/// transaction handles die: the taxonomy checks assert each anomaly abort
/// maps to a *specific* reason (and partner), not just "aborted".
struct SkewForensics {
  TxnId id1 = 0, id2 = 0;
  AbortReason cause1 = AbortReason::kNone, cause2 = AbortReason::kNone;
  TxnId conflict1 = 0, conflict2 = 0;
};

bool IsSsiReason(AbortReason r) {
  return r == AbortReason::kSsiPivot || r == AbortReason::kSsiInSide ||
         r == AbortReason::kSsiOutSide;
}

/// Example 2 (§2.5.1): the bank write skew, constraint x + y > 0. Returns
/// the pair of commit statuses for (T1, T2) under `iso`.
std::pair<Status, Status> RunWriteSkew(Fixture* f, IsolationLevel iso,
                                       SkewForensics* fx = nullptr) {
  auto t1 = f->db->Begin({iso});
  auto t2 = f->db->Begin({iso});
  std::string v;
  // r1(x) r1(y) r2(x) r2(y) w1(x=-20) w2(y=-30) c1 c2
  Status s = t1->Get(f->table, "x", &v);
  if (s.ok()) s = t1->Get(f->table, "y", &v);
  if (s.ok()) s = t2->Get(f->table, "x", &v);
  if (s.ok()) s = t2->Get(f->table, "y", &v);
  if (s.ok()) s = t1->Put(f->table, "x", "-20");
  Status c1 = s.ok() ? t1->Commit() : s;
  if (s.ok()) s = t2->Put(f->table, "y", "-30");
  Status c2 = s.ok() ? t2->Commit() : s;
  if (t1->active()) t1->Abort();
  if (t2->active()) t2->Abort();
  if (fx != nullptr) {
    fx->id1 = t1->id();
    fx->id2 = t2->id();
    fx->cause1 = t1->abort_cause();
    fx->cause2 = t2->abort_cause();
    fx->conflict1 = t1->abort_conflict_txn();
    fx->conflict2 = t2->abort_conflict_txn();
  }
  return {c1, c2};
}

TEST(WriteSkewTest, SnapshotIsolationAdmitsIt) {
  Fixture f;
  f.Seed("x", "50");
  f.Seed("y", "50");
  auto [c1, c2] = RunWriteSkew(&f, IsolationLevel::kSnapshot);
  EXPECT_TRUE(c1.ok());
  EXPECT_TRUE(c2.ok());
  // The constraint x + y > 0 is violated: the anomaly the paper opens with.
  EXPECT_EQ(f.GetInt("x") + f.GetInt("y"), -50);
  // And the MVSG oracle confirms the execution was not serializable.
  EXPECT_FALSE(f.HistorySerializable());
}

TEST(WriteSkewTest, SerializableSSIPreventsIt) {
  Fixture f;
  f.Seed("x", "50");
  f.Seed("y", "50");
  SkewForensics fx;
  auto [c1, c2] = RunWriteSkew(&f, IsolationLevel::kSerializableSSI, &fx);
  // Exactly one transaction must fail, with the new unsafe error.
  EXPECT_NE(c1.ok(), c2.ok());
  const Status& failed = c1.ok() ? c2 : c1;
  EXPECT_TRUE(failed.IsUnsafe()) << failed.ToString();
  EXPECT_GT(f.GetInt("x") + f.GetInt("y"), 0);  // Constraint preserved.
  EXPECT_TRUE(f.HistorySerializable());
  EXPECT_EQ(f.db->GetStats().unsafe_aborts, 1u);
  // Taxonomy: the victim is classified to its role in the dangerous
  // structure (both transactions are pivots here, so any SSI reason is
  // legitimate depending on where detection fired), the recorded
  // conflicting transaction is its partner, and the survivor carries no
  // cause at all.
  const AbortReason victim = c1.ok() ? fx.cause2 : fx.cause1;
  EXPECT_TRUE(IsSsiReason(victim)) << AbortReasonName(victim);
  const TxnId conflict = c1.ok() ? fx.conflict2 : fx.conflict1;
  if (conflict != 0) EXPECT_EQ(conflict, c1.ok() ? fx.id1 : fx.id2);
  EXPECT_EQ(c1.ok() ? fx.cause1 : fx.cause2, AbortReason::kNone);
  EXPECT_EQ(f.db->GetStats().abort_breakdown().Count(victim), 1u);
}

TEST(WriteSkewTest, S2PLPreventsIt) {
  DBOptions opts;
  opts.lock_timeout_ms = 1000;
  Fixture f(opts);
  f.Seed("x", "50");
  f.Seed("y", "50");
  SkewForensics fx;
  auto [c1, c2] = RunWriteSkew(&f, IsolationLevel::kSerializable2PL, &fx);
  // Under S2PL the interleaving deadlocks (each writer waits on the
  // other's read lock): at most one commits.
  EXPECT_FALSE(c1.ok() && c2.ok());
  EXPECT_GT(f.GetInt("x") + f.GetInt("y"), 0);
  EXPECT_TRUE(f.HistorySerializable());
  // Taxonomy: the actual casualty is a lock-cycle abort (the program
  // shares one status chain, so the *other* transaction just gets rolled
  // back by the harness — kExplicit); neither side is an SSI reason.
  const auto is_lock_cycle = [](AbortReason r) {
    return r == AbortReason::kDeadlock || r == AbortReason::kLockTimeout;
  };
  EXPECT_TRUE(is_lock_cycle(fx.cause1) || is_lock_cycle(fx.cause2))
      << AbortReasonName(fx.cause1) << "/" << AbortReasonName(fx.cause2);
  EXPECT_FALSE(IsSsiReason(fx.cause1)) << AbortReasonName(fx.cause1);
  EXPECT_FALSE(IsSsiReason(fx.cause2)) << AbortReasonName(fx.cause2);
}

/// Example 1 (§1.2): doctors on call. The constraint (>= 1 doctor on duty
/// per shift) is checked by predicate read inside each transaction.
TEST(DoctorsOnCallTest, SSIPreventsBothGoingToReserve) {
  Fixture f;
  f.Seed("doc1", "onduty");
  f.Seed("doc2", "onduty");
  auto t1 = f.db->Begin({IsolationLevel::kSerializableSSI});
  auto t2 = f.db->Begin({IsolationLevel::kSerializableSSI});

  // Count doctors on duty; the predicate read itself may be unsafe-aborted
  // by SSI, which is a legitimate way to prevent the anomaly.
  auto on_duty_count = [&](Transaction* txn, Status* scan_status) {
    int count = 0;
    *scan_status = txn->Scan(f.table, "doc1", "doc9",
                             [&count](Slice, Slice v) {
                               if (v == Slice("onduty")) ++count;
                               return true;
                             });
    return count;
  };

  Status s1 = t1->Put(f.table, "doc1", "reserve");
  Status s2 = t2->Put(f.table, "doc2", "reserve");
  Status c1 = s1, c2 = s2;
  if (c1.ok()) {
    Status scan;
    const int on_duty = on_duty_count(t1.get(), &scan);
    c1 = !scan.ok() ? scan
                    : (on_duty >= 1 ? t1->Commit()
                                    : Status::InvalidArgument("constraint"));
  }
  if (c2.ok() && t2->active()) {
    // t2 checks the constraint on its own snapshot — it still sees doc1 on
    // duty — and would also commit under SI. SSI must intervene, either at
    // the predicate read or at commit.
    Status scan;
    const int on_duty = on_duty_count(t2.get(), &scan);
    c2 = !scan.ok() ? scan
                    : (on_duty >= 1 ? t2->Commit()
                                    : Status::InvalidArgument("constraint"));
  } else if (c2.ok()) {
    c2 = Status::Unsafe("marked for abort before constraint check");
  }
  EXPECT_FALSE(c1.ok() && c2.ok());
  int final_on_duty = 0;
  auto check = f.db->Begin({IsolationLevel::kSnapshot});
  check->Scan(f.table, "doc1", "doc9", [&](Slice, Slice v) {
    if (v == Slice("onduty")) ++final_on_duty;
    return true;
  });
  check->Commit();
  EXPECT_GE(final_on_duty, 1);  // The invariant survived.
  if (t1->active()) t1->Abort();
  if (t2->active()) t2->Abort();
}

TEST(DoctorsOnCallTest, SnapshotIsolationViolatesTheInvariant) {
  Fixture f;
  f.Seed("doc1", "onduty");
  f.Seed("doc2", "onduty");
  auto t1 = f.db->Begin({IsolationLevel::kSnapshot});
  auto t2 = f.db->Begin({IsolationLevel::kSnapshot});
  auto on_duty = [&](Transaction* txn) {
    int count = 0;
    EXPECT_TRUE(txn->Scan(f.table, "doc1", "doc9",
                          [&count](Slice, Slice v) {
                            if (v == Slice("onduty")) ++count;
                            return true;
                          })
                    .ok());
    return count;
  };
  ASSERT_TRUE(t1->Put(f.table, "doc1", "reserve").ok());
  ASSERT_TRUE(t2->Put(f.table, "doc2", "reserve").ok());
  EXPECT_GE(on_duty(t1.get()), 1);
  EXPECT_GE(on_duty(t2.get()), 1);
  EXPECT_TRUE(t1->Commit().ok());
  EXPECT_TRUE(t2->Commit().ok());  // Both commit: write skew.
  auto check = f.db->Begin({IsolationLevel::kSnapshot});
  int final_on_duty = 0;
  check->Scan(f.table, "doc1", "doc9", [&](Slice, Slice v) {
    if (v == Slice("onduty")) ++final_on_duty;
    return true;
  });
  check->Commit();
  EXPECT_EQ(final_on_duty, 0);  // Nobody on duty: the corruption.
}

/// Example 3 (§2.5.1, Fekete et al. 2004): the read-only anomaly.
///   Tpivot: r(y) w(x)    Tout: w(y) w(z)    Tin: r(x) r(z)
/// Interleaved as Fig 2.3(a): Tout commits first, then Tin reads a state
/// (new z, old x) that no serial order can produce.
TEST(ReadOnlyAnomalyTest, SnapshotIsolationAdmitsIt) {
  Fixture f;
  f.Seed("x", "0");
  f.Seed("y", "0");
  f.Seed("z", "0");
  auto pivot = f.db->Begin({IsolationLevel::kSnapshot});
  auto out = f.db->Begin({IsolationLevel::kSnapshot});
  std::string v;
  ASSERT_TRUE(pivot->Get(f.table, "y", &v).ok());  // rpivot(y): pin snapshot.
  ASSERT_TRUE(out->Put(f.table, "y", "1").ok());
  ASSERT_TRUE(out->Put(f.table, "z", "1").ok());
  ASSERT_TRUE(out->Commit().ok());
  // Tin starts after Tout committed: sees new z but (soon) old x.
  auto in = f.db->Begin({IsolationLevel::kSnapshot});
  ASSERT_TRUE(in->Get(f.table, "x", &v).ok());
  EXPECT_EQ(v, "0");
  ASSERT_TRUE(in->Get(f.table, "z", &v).ok());
  EXPECT_EQ(v, "1");
  ASSERT_TRUE(in->Commit().ok());
  ASSERT_TRUE(pivot->Put(f.table, "x", "1").ok());
  ASSERT_TRUE(pivot->Commit().ok());
  EXPECT_FALSE(f.HistorySerializable());  // The oracle sees the cycle.
}

TEST(ReadOnlyAnomalyTest, SerializableSSIPreventsIt) {
  Fixture f;
  f.Seed("x", "0");
  f.Seed("y", "0");
  f.Seed("z", "0");
  auto pivot = f.db->Begin({IsolationLevel::kSerializableSSI});
  auto out = f.db->Begin({IsolationLevel::kSerializableSSI});
  std::string v;
  Status s = pivot->Get(f.table, "y", &v);
  ASSERT_TRUE(s.ok());
  s = out->Put(f.table, "y", "1");
  ASSERT_TRUE(s.ok()) << s.ToString();
  s = out->Put(f.table, "z", "1");
  ASSERT_TRUE(s.ok());
  Status c_out = out->Commit();
  ASSERT_TRUE(c_out.ok()) << c_out.ToString();  // Tout commits first — fine.

  auto in = f.db->Begin({IsolationLevel::kSerializableSSI});
  Status r1 = in->Get(f.table, "x", &v);
  Status r2 = r1.ok() ? in->Get(f.table, "z", &v) : r1;
  Status c_in = r2.ok() ? in->Commit() : r2;
  Status w_pivot =
      pivot->active() ? pivot->Put(f.table, "x", "1") : Status::Unsafe("");
  Status c_pivot = w_pivot.ok() ? pivot->Commit() : w_pivot;

  // At least one of the three must have aborted with unsafe...
  EXPECT_FALSE(c_in.ok() && c_pivot.ok())
      << "in=" << c_in.ToString() << " pivot=" << c_pivot.ToString();
  EXPECT_TRUE(f.HistorySerializable());
  // ...and whichever went down is classified to a structural SSI reason.
  if (!c_in.ok()) {
    EXPECT_TRUE(IsSsiReason(in->abort_cause()))
        << AbortReasonName(in->abort_cause());
  }
  if (!c_pivot.ok()) {
    EXPECT_TRUE(IsSsiReason(pivot->abort_cause()))
        << AbortReasonName(pivot->abort_cause());
  }
  if (pivot->active()) pivot->Abort();
  if (in->active()) in->Abort();
}

/// §2.5.2/§3.5: phantom write skew. Two transactions each count the rows
/// matching a predicate and insert a row that changes the other's count.
/// Record-level SIREAD locks alone cannot see this; the gap extension must.
TEST(PhantomTest, SSIDetectsInsertPhantomConflict) {
  Fixture f;
  f.Seed("a1", "1");  // One existing row in each range.
  f.Seed("b1", "1");
  auto t1 = f.db->Begin({IsolationLevel::kSerializableSSI});
  auto t2 = f.db->Begin({IsolationLevel::kSerializableSSI});
  // T1 counts range b*, T2 counts range a*; then each inserts into the
  // range the other counted.
  int count1 = 0;
  Status s = t1->Scan(f.table, "b", "b~", [&count1](Slice, Slice) {
    ++count1;
    return true;
  });
  ASSERT_TRUE(s.ok());
  int count2 = 0;
  s = t2->Scan(f.table, "a", "a~", [&count2](Slice, Slice) {
    ++count2;
    return true;
  });
  ASSERT_TRUE(s.ok());
  Status i1 = t1->Insert(f.table, "a2", "1");
  Status i2 = t2->Insert(f.table, "b2", "1");
  Status c1 = i1.ok() ? t1->Commit() : i1;
  Status c2 = i2.ok() ? t2->Commit() : i2;
  EXPECT_FALSE(c1.ok() && c2.ok())
      << "c1=" << c1.ToString() << " c2=" << c2.ToString();
  // A phantom casualty is still an SSI-structure abort in the taxonomy
  // (the gap SIREAD lock just supplied the rw-edge).
  if (!c1.ok()) {
    EXPECT_TRUE(IsSsiReason(t1->abort_cause()))
        << AbortReasonName(t1->abort_cause());
  }
  if (!c2.ok()) {
    EXPECT_TRUE(IsSsiReason(t2->abort_cause()))
        << AbortReasonName(t2->abort_cause());
  }
  if (t1->active()) t1->Abort();
  if (t2->active()) t2->Abort();
}

TEST(PhantomTest, SnapshotIsolationAdmitsInsertPhantomSkew) {
  Fixture f;
  f.Seed("a1", "1");
  f.Seed("b1", "1");
  auto t1 = f.db->Begin({IsolationLevel::kSnapshot});
  auto t2 = f.db->Begin({IsolationLevel::kSnapshot});
  int count = 0;
  ASSERT_TRUE(t1->Scan(f.table, "b", "b~", [&count](Slice, Slice) {
    ++count;
    return true;
  }).ok());
  ASSERT_TRUE(t2->Scan(f.table, "a", "a~", [&count](Slice, Slice) {
    ++count;
    return true;
  }).ok());
  ASSERT_TRUE(t1->Insert(f.table, "a2", "1").ok());
  ASSERT_TRUE(t2->Insert(f.table, "b2", "1").ok());
  EXPECT_TRUE(t1->Commit().ok());
  EXPECT_TRUE(t2->Commit().ok());
  EXPECT_FALSE(f.HistorySerializable());
}

TEST(PhantomTest, DeletedRowStillConflictsViaTombstone) {
  // §3.5: a predicate read that sees a row deleted by a concurrent
  // transaction detects the conflict through the tombstone version.
  Fixture f;
  f.Seed("a1", "1");
  f.Seed("a2", "1");
  auto deleter = f.db->Begin({IsolationLevel::kSerializableSSI});
  auto scanner = f.db->Begin({IsolationLevel::kSerializableSSI});
  std::string v;
  ASSERT_TRUE(scanner->Get(f.table, "a1", &v).ok());  // Pin snapshot.
  ASSERT_TRUE(deleter->Delete(f.table, "a2").ok());
  // Deleter also reads something scanner will write -> pivot shape.
  ASSERT_TRUE(deleter->Get(f.table, "a1", &v).ok());
  ASSERT_TRUE(deleter->Commit().ok());
  // Scanner's predicate read ignores the tombstone (snapshot) but must
  // register the rw-conflict; writing a1 then makes scanner a pivot ->
  // somebody aborts.
  int count = 0;
  Status s = scanner->Scan(f.table, "a", "a~", [&count](Slice, Slice) {
    ++count;
    return true;
  });
  if (s.ok()) {
    EXPECT_EQ(count, 2);  // Snapshot still sees both rows.
    s = scanner->Put(f.table, "a1", "2");
  }
  Status c = s.ok() ? scanner->Commit() : s;
  EXPECT_TRUE(c.IsUnsafe()) << c.ToString();
  EXPECT_TRUE(IsSsiReason(scanner->abort_cause()))
      << AbortReasonName(scanner->abort_cause());
}

/// §3.8: queries at plain SI mixed with updates at Serializable SI. The
/// updates stay serializable among themselves; queries never abort.
TEST(MixedQueryTest, SIQueriesNeverAbortAndUpdatesStaySerializable) {
  Fixture f;
  f.Seed("x", "50");
  f.Seed("y", "50");
  // The write-skew pair at SSI, with a concurrent SI query in the middle.
  auto t1 = f.db->Begin({IsolationLevel::kSerializableSSI});
  auto t2 = f.db->Begin({IsolationLevel::kSerializableSSI});
  auto query = f.db->Begin({IsolationLevel::kSnapshot});
  std::string v;
  ASSERT_TRUE(query->Get(f.table, "x", &v).ok());
  ASSERT_TRUE(query->Get(f.table, "y", &v).ok());
  Status s = t1->Get(f.table, "x", &v);
  if (s.ok()) s = t1->Get(f.table, "y", &v);
  if (s.ok()) s = t2->Get(f.table, "x", &v);
  if (s.ok()) s = t2->Get(f.table, "y", &v);
  if (s.ok()) s = t1->Put(f.table, "x", "-20");
  Status c1 = s.ok() ? t1->Commit() : s;
  Status w2 = t2->active() ? t2->Put(f.table, "y", "-30") : Status::Unsafe("");
  Status c2 = w2.ok() ? t2->Commit() : w2;
  EXPECT_NE(c1.ok(), c2.ok());            // Updates: still protected.
  EXPECT_TRUE(query->Commit().ok());      // Query: never aborted.
  EXPECT_GT(f.GetInt("x") + f.GetInt("y"), 0);
  if (t1->active()) t1->Abort();
  if (t2->active()) t2->Abort();
}

/// Fig 3.8 (§3.6): a dangerous-looking structure that is actually
/// serializable because Tin committed before Tout. The precise
/// (kReferences) tracker must let all three commit; the basic flags
/// tracker aborts the pivot — the false positive the paper measures.
std::tuple<Status, Status, Status> RunFig38(
    Fixture* f, AbortReason* pivot_cause = nullptr) {
  const IsolationLevel iso = IsolationLevel::kSerializableSSI;
  auto in = f->db->Begin({iso});
  auto pivot = f->db->Begin({iso});
  std::string v;
  // rin(x) rin(z); cin  — Tin commits before Tout even begins writing.
  Status s = in->Get(f->table, "x", &v);
  if (s.ok()) s = in->Get(f->table, "z", &v);
  if (s.ok()) s = pivot->Get(f->table, "y", &v);  // rpivot(y)
  // Advance the watermark past the pivot's snapshot before Tin's
  // read-only commit: its commit timestamp is the watermark, and the
  // figure needs Tin concurrent with the pivot (cin > begin(pivot)).
  f->Seed("fig38_bump", "1");
  Status c_in = s.ok() ? in->Commit() : s;

  auto out = f->db->Begin({iso});
  if (s.ok()) s = out->Put(f->table, "y", "1");  // wout(y): pivot rw-> out
  if (s.ok()) s = out->Put(f->table, "z", "1");
  Status c_out = s.ok() ? out->Commit() : s;

  Status w = pivot->active() ? pivot->Put(f->table, "x", "1")
                             : Status::Unsafe("marked");
  Status c_pivot = w.ok() ? pivot->Commit() : w;
  if (in->active()) in->Abort();
  if (out->active()) out->Abort();
  if (pivot->active()) pivot->Abort();
  if (pivot_cause != nullptr) *pivot_cause = pivot->abort_cause();
  return {c_in, c_pivot, c_out};
}

TEST(FalsePositiveTest, ReferencesModeCommitsFig38) {
  DBOptions opts;
  opts.conflict_tracking = ConflictTracking::kReferences;
  Fixture f(opts);
  f.Seed("x", "0");
  f.Seed("y", "0");
  f.Seed("z", "0");
  AbortReason pivot_cause = AbortReason::kExplicit;
  auto [c_in, c_pivot, c_out] = RunFig38(&f, &pivot_cause);
  EXPECT_TRUE(c_in.ok()) << c_in.ToString();
  EXPECT_TRUE(c_out.ok()) << c_out.ToString();
  // The payoff of §3.6: no false-positive abort of the pivot.
  EXPECT_TRUE(c_pivot.ok()) << c_pivot.ToString();
  EXPECT_EQ(pivot_cause, AbortReason::kNone);  // Committed clean.
  EXPECT_TRUE(f.HistorySerializable());
}

TEST(FalsePositiveTest, FlagsModeAbortsFig38Pivot) {
  DBOptions opts;
  opts.conflict_tracking = ConflictTracking::kFlags;
  Fixture f(opts);
  f.Seed("x", "0");
  f.Seed("y", "0");
  f.Seed("z", "0");
  AbortReason pivot_cause = AbortReason::kNone;
  auto [c_in, c_pivot, c_out] = RunFig38(&f, &pivot_cause);
  EXPECT_TRUE(c_in.ok());
  EXPECT_TRUE(c_out.ok());
  // The basic algorithm cannot tell this apart from a real cycle.
  EXPECT_TRUE(c_pivot.IsUnsafe()) << c_pivot.ToString();
  // And the taxonomy records exactly where it fell: the flags-mode commit
  // check saw in- and out-conflict on the committer — a pivot abort.
  EXPECT_EQ(pivot_cause, AbortReason::kSsiPivot)
      << AbortReasonName(pivot_cause);
  EXPECT_TRUE(f.HistorySerializable());  // It was serializable all along.
}

/// §3.7.1 abort-early: with the option on, the doomed transaction fails at
/// the *operation* that completes the dangerous structure, not at commit.
TEST(AbortEarlyTest, OperationFailsBeforeCommit) {
  DBOptions opts;
  opts.abort_early = true;
  Fixture f(opts);
  f.Seed("x", "50");
  f.Seed("y", "50");
  auto t1 = f.db->Begin({IsolationLevel::kSerializableSSI});
  auto t2 = f.db->Begin({IsolationLevel::kSerializableSSI});
  std::string v;
  ASSERT_TRUE(t1->Get(f.table, "x", &v).ok());
  ASSERT_TRUE(t1->Get(f.table, "y", &v).ok());
  ASSERT_TRUE(t2->Get(f.table, "x", &v).ok());
  ASSERT_TRUE(t2->Get(f.table, "y", &v).ok());
  ASSERT_TRUE(t1->Put(f.table, "x", "-20").ok());
  ASSERT_TRUE(t1->Commit().ok());
  // t2's write gives t2 in+out conflicts; abort-early fires here.
  Status s = t2->Put(f.table, "y", "-30");
  Status c = s.ok() ? t2->Commit() : s;
  EXPECT_TRUE(c.IsUnsafe());
  EXPECT_TRUE(s.IsUnsafe()) << "expected early abort at the write, got "
                            << s.ToString();
  // Early or not, the abort is classified to its structural role.
  EXPECT_TRUE(IsSsiReason(t2->abort_cause()))
      << AbortReasonName(t2->abort_cause());
}

/// §3.7.2 victim selection: kYoungest aborts the younger transaction
/// instead of the pivot when both are still abortable.
TEST(VictimPolicyTest, YoungestPolicyChoosesYoungerTransaction) {
  DBOptions opts;
  opts.victim_policy = VictimPolicy::kYoungest;
  opts.conflict_tracking = ConflictTracking::kFlags;
  Fixture f(opts);
  f.Seed("x", "50");
  f.Seed("y", "50");
  // Older transaction becomes the pivot; the younger counterpart should be
  // sacrificed under kYoungest.
  auto older = f.db->Begin({IsolationLevel::kSerializableSSI});
  std::string v;
  ASSERT_TRUE(older->Get(f.table, "x", &v).ok());   // in-edge target later
  auto younger = f.db->Begin({IsolationLevel::kSerializableSSI});
  ASSERT_TRUE(younger->Get(f.table, "y", &v).ok());
  // younger reads y; older writes y => younger rw-> older (older gets in).
  ASSERT_TRUE(older->Put(f.table, "y", "1").ok());
  // older reads x... already done; younger writes x => older rw-> younger.
  Status s = younger->Put(f.table, "x", "1");
  // The dangerous structure (pivot = older) is complete at this write.
  // With kYoungest, the younger transaction should be the victim.
  Status c_young = s.ok() ? younger->Commit() : s;
  Status c_old = older->active() ? older->Commit() : Status::Unsafe("");
  EXPECT_NE(c_young.ok(), c_old.ok());
  EXPECT_FALSE(c_young.ok());  // Younger was chosen.
  EXPECT_TRUE(c_old.ok()) << c_old.ToString();
  // The sacrificed side is still taxonomy-classified, and the recorded
  // conflict partner is the surviving pivot.
  EXPECT_TRUE(IsSsiReason(younger->abort_cause()))
      << AbortReasonName(younger->abort_cause());
  if (younger->abort_conflict_txn() != 0) {
    EXPECT_EQ(younger->abort_conflict_txn(), older->id());
  }
  if (older->active()) older->Abort();
  if (younger->active()) younger->Abort();
}

// ---- Tiny-pool re-runs (storage tier, §2.5.1 under memory pressure) ----
//
// The write-skew programs again, but with a disk tier whose buffer pool is
// a handful of frames and with every seeded chain spilled to a run before
// the racing transactions start — so the programs' reads routinely fault
// through the pool mid-interleaving. The isolation verdicts must be
// IDENTICAL to the memory-only runs above: spilling is invisible to SSI
// certification, because a version is only spilled once its commit
// timestamp is at or below the prune horizon, hence at or below every
// active snapshot — it can never be the newer version an rw-conflict is
// made of.

DBOptions TinyPoolOptions(const std::string& dir) {
  DBOptions opts;
  opts.buffer_pool_bytes = 1 << 14;  // 4 frames of 4 KiB.
  opts.run_page_bytes = 4096;
  opts.data_dir = dir;
  opts.version_gc_interval_ms = 0;  // Spills are driven explicitly below.
  return opts;
}

/// Holds the run directory; a base class so it outlives Fixture's DB.
struct TinyPoolDir {
  ScratchDir dir;
};

struct TinyPoolFixture : TinyPoolDir, Fixture {
  TinyPoolFixture() : Fixture(TinyPoolOptions(dir.path)) {}

  /// Evict every seeded chain (two sweeps: clear clock bits, then spill).
  size_t SpillSeeds() {
    db->SpillChains(table);
    return db->SpillChains(table);
  }
};

TEST(WriteSkewTinyPoolTest, SnapshotIsolationStillAdmitsIt) {
  TinyPoolFixture f;
  f.Seed("x", "50");
  f.Seed("y", "50");
  ASSERT_EQ(f.SpillSeeds(), 2u);
  auto [c1, c2] = RunWriteSkew(&f, IsolationLevel::kSnapshot);
  EXPECT_TRUE(c1.ok());
  EXPECT_TRUE(c2.ok());
  EXPECT_EQ(f.GetInt("x") + f.GetInt("y"), -50);
  EXPECT_FALSE(f.HistorySerializable());
  EXPECT_GT(f.db->GetStats().faulted_chains, 0u)
      << "the program must actually have read through the disk tier";
}

TEST(WriteSkewTinyPoolTest, SSIVerdictUnchangedByFaulting) {
  TinyPoolFixture f;
  f.Seed("x", "50");
  f.Seed("y", "50");
  ASSERT_EQ(f.SpillSeeds(), 2u);
  SkewForensics fx;
  auto [c1, c2] = RunWriteSkew(&f, IsolationLevel::kSerializableSSI, &fx);
  // Same verdict as the memory-only run: exactly one aborts, kUnsafe.
  EXPECT_NE(c1.ok(), c2.ok());
  const Status& failed = c1.ok() ? c2 : c1;
  EXPECT_TRUE(failed.IsUnsafe()) << failed.ToString();
  EXPECT_GT(f.GetInt("x") + f.GetInt("y"), 0);
  EXPECT_TRUE(f.HistorySerializable());
  EXPECT_EQ(f.db->GetStats().unsafe_aborts, 1u);
  EXPECT_GT(f.db->GetStats().faulted_chains, 0u);
  // Faulting through the disk tier must not blur the classification.
  const AbortReason victim = c1.ok() ? fx.cause2 : fx.cause1;
  EXPECT_TRUE(IsSsiReason(victim)) << AbortReasonName(victim);
}

TEST(WriteSkewTinyPoolTest, S2PLVerdictUnchangedByFaulting) {
  ScratchDir dir;
  DBOptions opts = TinyPoolOptions(dir.path);
  opts.lock_timeout_ms = 1000;
  Fixture f(opts);
  f.Seed("x", "50");
  f.Seed("y", "50");
  f.db->SpillChains(f.table);
  ASSERT_EQ(f.db->SpillChains(f.table), 2u);
  auto [c1, c2] = RunWriteSkew(&f, IsolationLevel::kSerializable2PL);
  EXPECT_FALSE(c1.ok() && c2.ok());
  EXPECT_GT(f.GetInt("x") + f.GetInt("y"), 0);
  EXPECT_TRUE(f.HistorySerializable());
  EXPECT_GT(f.db->GetStats().faulted_chains, 0u);
}

TEST(WriteSkewTinyPoolTest, DoctorsOnCallPredicateReadsFaultSpilledRows) {
  // The doctors-on-call write skew driven through Scan: predicate reads
  // must surface spilled rows (a fault mid-scan), and SSI must still
  // prevent both doctors leaving.
  TinyPoolFixture f;
  f.Seed("doc1", "onduty");
  f.Seed("doc2", "onduty");
  ASSERT_EQ(f.SpillSeeds(), 2u);

  auto t1 = f.db->Begin({IsolationLevel::kSerializableSSI});
  auto t2 = f.db->Begin({IsolationLevel::kSerializableSSI});
  auto on_duty_count = [&](Transaction* txn, Status* scan_status) {
    int count = 0;
    *scan_status = txn->Scan(f.table, "doc1", "doc9",
                             [&count](Slice, Slice v) {
                               if (v == Slice("onduty")) ++count;
                               return true;
                             });
    return count;
  };

  Status s1 = t1->Put(f.table, "doc1", "reserve");
  Status s2 = t2->Put(f.table, "doc2", "reserve");
  Status c1 = s1, c2 = s2;
  if (c1.ok()) {
    Status scan;
    const int on_duty = on_duty_count(t1.get(), &scan);
    c1 = !scan.ok() ? scan
                    : (on_duty >= 1 ? t1->Commit()
                                    : Status::InvalidArgument("constraint"));
  }
  if (c2.ok()) {
    Status scan;
    const int on_duty = on_duty_count(t2.get(), &scan);
    c2 = !scan.ok() ? scan
                    : (on_duty >= 1 ? t2->Commit()
                                    : Status::InvalidArgument("constraint"));
  }
  if (t1->active()) t1->Abort();
  if (t2->active()) t2->Abort();

  // Identical outcome to the memory-only DoctorsOnCallTest: at most one
  // doctor actually leaves, and the execution stays serializable.
  EXPECT_FALSE(c1.ok() && c2.ok());
  int reserve = 0;
  {
    auto check = f.db->Begin({IsolationLevel::kSnapshot});
    std::string v;
    if (check->Get(f.table, "doc1", &v).ok() && v == "reserve") ++reserve;
    if (check->Get(f.table, "doc2", &v).ok() && v == "reserve") ++reserve;
    check->Commit();
  }
  EXPECT_LE(reserve, 1);
  EXPECT_TRUE(f.HistorySerializable());
  EXPECT_GT(f.db->GetStats().faulted_chains, 0u);
}

/// First-committer-wins (§2.2): a lost update attempt under plain SI is
/// not an anomaly SSI needs — FCW handles it — but it is an abort, and the
/// taxonomy must name it precisely (kFcwRow, not any SSI reason).
TEST(AbortTaxonomyTest, FirstCommitterWinsClassifiesFcwRow) {
  Fixture f;
  f.Seed("k", "0");
  auto t1 = f.db->Begin({IsolationLevel::kSnapshot});
  auto t2 = f.db->Begin({IsolationLevel::kSnapshot});
  // Pin t2's snapshot before t1 commits (snapshots are assigned lazily at
  // the first operation; without this read t2 would simply see t1's
  // version and not conflict at all).
  std::string v;
  ASSERT_TRUE(t2->Get(f.table, "k", &v).ok());
  ASSERT_TRUE(t1->Put(f.table, "k", "1").ok());
  ASSERT_TRUE(t1->Commit().ok());
  // t2's snapshot predates t1's commit: its write must fail FCW.
  Status s = t2->Put(f.table, "k", "2");
  Status c = s.ok() ? t2->Commit() : s;
  EXPECT_TRUE(c.IsUpdateConflict()) << c.ToString();
  EXPECT_EQ(t2->abort_cause(), AbortReason::kFcwRow)
      << AbortReasonName(t2->abort_cause());
  if (t2->active()) t2->Abort();
  DBStats stats = f.db->GetStats();
  EXPECT_EQ(stats.abort_breakdown().Count(AbortReason::kFcwRow), 1u);
  EXPECT_EQ(stats.abort_breakdown().Count(AbortReason::kSsiPivot), 0u);
}

/// An application rollback maps to kExplicit — the taxonomy's catch-all
/// for aborts the engine did not initiate.
TEST(AbortTaxonomyTest, ExplicitRollbackClassifiesExplicit) {
  Fixture f;
  auto txn = f.db->Begin({IsolationLevel::kSerializableSSI});
  ASSERT_TRUE(txn->Put(f.table, "k", "v").ok());
  txn->Abort();
  EXPECT_EQ(txn->abort_cause(), AbortReason::kExplicit);
  EXPECT_EQ(f.db->GetStats().abort_breakdown().Count(AbortReason::kExplicit),
            1u);
}

}  // namespace
}  // namespace ssidb
