// Tests for GetForUpdate — the paper's SELECT ... FOR UPDATE (§2.6.2):
// locking-read semantics, interaction with the §4.5 late snapshot, its use
// for promotion (making the write-skew pair safe at plain SI), and the
// PostgreSQL failure mode the paper documents (which our Oracle/InnoDB
// semantics must NOT exhibit).

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <thread>

#include "src/db/db.h"
#include "src/sgt/mvsg.h"

namespace ssidb {
namespace {

struct Env {
  std::unique_ptr<DB> db;
  TableId table = 0;

  explicit Env(DBOptions opts = {}) {
    opts.record_history = true;
    EXPECT_TRUE(DB::Open(opts, &db).ok());
    EXPECT_TRUE(db->CreateTable("t", &table).ok());
  }

  void Seed(Slice key, Slice value) {
    auto txn = db->Begin({IsolationLevel::kSnapshot});
    ASSERT_TRUE(txn->Put(table, key, value).ok());
    ASSERT_TRUE(txn->Commit().ok());
  }
};

TEST(GetForUpdateTest, ReadsValueAndHoldsExclusiveLock) {
  Env env;
  env.Seed("k", "v");
  auto txn = env.db->Begin({IsolationLevel::kSnapshot});
  std::string v;
  ASSERT_TRUE(txn->GetForUpdate(env.table, "k", &v).ok());
  EXPECT_EQ(v, "v");
  // A concurrent writer now blocks (and times out under a short limit).
  DBOptions unused;
  auto writer = env.db->Begin({IsolationLevel::kSnapshot});
  std::thread release([&txn] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    EXPECT_TRUE(txn->Commit().ok());
  });
  const auto start = std::chrono::steady_clock::now();
  Status s = writer->Put(env.table, "k", "w");
  const auto waited = std::chrono::steady_clock::now() - start;
  release.join();
  EXPECT_TRUE(s.ok()) << s.ToString();
  EXPECT_GE(waited, std::chrono::milliseconds(30));  // It really blocked.
  EXPECT_TRUE(writer->Commit().ok());
}

TEST(GetForUpdateTest, MissingKeyIsNotFoundButStillLocked) {
  Env env;
  auto txn = env.db->Begin({IsolationLevel::kSnapshot});
  std::string v;
  EXPECT_TRUE(txn->GetForUpdate(env.table, "nope", &v).IsNotFound());
  // The lock on the absent key is held: an insert by another transaction
  // must wait.
  DBOptions opts;
  opts.lock_timeout_ms = 100;
  // (Same engine; the timeout config is fixed at open, so use a thread.)
  auto inserter = env.db->Begin({IsolationLevel::kSnapshot});
  std::thread release([&txn] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    txn->Commit();
  });
  const auto start = std::chrono::steady_clock::now();
  Status s = inserter->Insert(env.table, "nope", "v");
  release.join();
  EXPECT_TRUE(s.ok());
  EXPECT_GE(std::chrono::steady_clock::now() - start,
            std::chrono::milliseconds(30));
  inserter->Commit();
}

TEST(GetForUpdateTest, FirstStatementAlwaysSeesLatestCommitted) {
  // §4.5: lock before snapshot. Two increment transactions back-to-back
  // both succeed; the second reads the first's result.
  Env env;
  env.Seed("counter", "0");
  auto t1 = env.db->Begin({IsolationLevel::kSnapshot});
  std::string v;
  ASSERT_TRUE(t1->GetForUpdate(env.table, "counter", &v).ok());
  ASSERT_TRUE(t1->Put(env.table, "counter", std::to_string(std::stoi(v) + 1))
                  .ok());

  auto t2 = env.db->Begin({IsolationLevel::kSnapshot});
  std::thread commit1([&t1] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    EXPECT_TRUE(t1->Commit().ok());
  });
  Status s = t2->GetForUpdate(env.table, "counter", &v);  // Blocks on t1.
  commit1.join();
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(v, "1");  // Latest committed, not a stale snapshot.
  ASSERT_TRUE(
      t2->Put(env.table, "counter", std::to_string(std::stoi(v) + 1)).ok());
  ASSERT_TRUE(t2->Commit().ok());

  auto check = env.db->Begin({IsolationLevel::kSnapshot});
  ASSERT_TRUE(check->Get(env.table, "counter", &v).ok());
  EXPECT_EQ(v, "2");  // No lost update, no abort needed.
  check->Commit();
}

TEST(GetForUpdateTest, StaleSnapshotTriggersFCW) {
  // Mid-transaction GetForUpdate with an old snapshot must behave like a
  // write under first-committer-wins: abort, do not silently read past
  // the snapshot.
  Env env;
  env.Seed("a", "0");
  env.Seed("k", "0");
  auto txn = env.db->Begin({IsolationLevel::kSnapshot});
  std::string v;
  ASSERT_TRUE(txn->Get(env.table, "a", &v).ok());  // Pins the snapshot.
  {
    auto other = env.db->Begin({IsolationLevel::kSnapshot});
    ASSERT_TRUE(other->Put(env.table, "k", "9").ok());
    ASSERT_TRUE(other->Commit().ok());
  }
  Status s = txn->GetForUpdate(env.table, "k", &v);
  EXPECT_TRUE(s.IsUpdateConflict()) << s.ToString();
  EXPECT_FALSE(txn->active());
}

TEST(GetForUpdateTest, PromotionMakesWriteSkewSafeAtPlainSI) {
  // §2.6.2: replacing one side's read by a locking read removes the
  // vulnerable edge — the classic write-skew pair cannot both commit even
  // at plain SI, and (unlike PostgreSQL's SELECT FOR UPDATE, whose
  // interleaving the paper shows slipping through) our lock-first
  // semantics closes *every* interleaving.
  Env env;
  env.Seed("x", "50");
  env.Seed("y", "50");
  auto t1 = env.db->Begin({IsolationLevel::kSnapshot});
  auto t2 = env.db->Begin({IsolationLevel::kSnapshot});
  std::string v;
  // T1 uses the promoted read on y (the item T2 writes).
  ASSERT_TRUE(t1->Get(env.table, "x", &v).ok());
  ASSERT_TRUE(t1->GetForUpdate(env.table, "y", &v).ok());
  // T2 reads both (snapshot pinned before T1 commits) and writes y.
  Status r1 = t2->Get(env.table, "x", &v);
  ASSERT_TRUE(r1.ok());
  Status w1 = t1->Put(env.table, "x", "-20");
  ASSERT_TRUE(w1.ok());
  ASSERT_TRUE(t1->Commit().ok());
  // T2 now writes y: its snapshot predates T1's commit, and T1's promoted
  // lock on y forces the FCW check to fire.
  Status w2 = t2->Put(env.table, "y", "-30");
  Status c2 = w2.ok() ? t2->Commit() : w2;
  EXPECT_FALSE(c2.ok()) << c2.ToString();
  EXPECT_TRUE(
      sgt::AnalyzeHistory(env.db->history()->Snapshot()).serializable);
}

TEST(GetForUpdateTest, WorksUnderSSIAndS2PL) {
  for (IsolationLevel iso : {IsolationLevel::kSerializableSSI,
                             IsolationLevel::kSerializable2PL}) {
    Env env;
    env.Seed("k", "7");
    auto txn = env.db->Begin({iso});
    std::string v;
    ASSERT_TRUE(txn->GetForUpdate(env.table, "k", &v).ok());
    EXPECT_EQ(v, "7");
    ASSERT_TRUE(txn->Put(env.table, "k", "8").ok());
    ASSERT_TRUE(txn->Commit().ok());
  }
}

TEST(GetForUpdateTest, SSIReadModifyWriteLeavesNoSIReadResidue) {
  // Under SSI a GetForUpdate acquires EXCLUSIVE directly, so the §3.7.3
  // upgrade concern does not arise: the transaction commits without any
  // retained SIREAD locks (no suspension needed).
  Env env;
  env.Seed("k", "1");
  auto txn = env.db->Begin({IsolationLevel::kSerializableSSI});
  std::string v;
  ASSERT_TRUE(txn->GetForUpdate(env.table, "k", &v).ok());
  ASSERT_TRUE(txn->Put(env.table, "k", "2").ok());
  ASSERT_TRUE(txn->Commit().ok());
  EXPECT_EQ(env.db->GetStats().suspended_txns, 0u);
}

}  // namespace
}  // namespace ssidb
