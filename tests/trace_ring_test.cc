// TraceRing: the bounded in-memory forensics ring. Roundtrip of every
// field, capacity bound under wraparound, the seqlock staying race-free
// under concurrent emit/snapshot (the TSan job runs this), the text dump
// format, and the engine actually landing abort records in DB::trace_ring.

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/db/db.h"
#include "src/obs/trace_ring.h"

namespace ssidb {
namespace {

using obs::TraceEvent;
using obs::TraceRing;

TEST(TraceRingTest, RoundTripsEveryField) {
  TraceRing ring(16);
  ring.Emit(TraceEvent::kAbort, /*txn=*/42, /*arg16=*/3, /*arg32=*/7,
            /*payload=*/99);
  ring.Emit(TraceEvent::kFault, /*txn=*/43, /*arg16=*/0, /*arg32=*/2,
            /*payload=*/123456);
  const std::vector<TraceRing::Record> records = ring.Snapshot();
  ASSERT_EQ(records.size(), 2u);
  // Snapshot sorts by timestamp: emission order on one thread.
  EXPECT_LE(records[0].ts_ns, records[1].ts_ns);
  EXPECT_EQ(records[0].event, TraceEvent::kAbort);
  EXPECT_EQ(records[0].txn, 42u);
  EXPECT_EQ(records[0].arg16, 3u);
  EXPECT_EQ(records[0].arg32, 7u);
  EXPECT_EQ(records[0].payload, 99u);
  EXPECT_EQ(records[1].event, TraceEvent::kFault);
  EXPECT_EQ(records[1].payload, 123456u);
  EXPECT_EQ(ring.dropped(), 0u);
}

TEST(TraceRingTest, WraparoundKeepsOnlyTheLastCapacity) {
  TraceRing ring(8);
  const size_t capacity = ring.shards() * ring.slots_per_shard();
  // Emit far more than capacity from one thread (one shard): the ring
  // keeps the newest slots_per_shard of that shard.
  for (uint64_t i = 0; i < 10 * capacity; ++i) {
    ring.Emit(TraceEvent::kCheckpoint, i, 0, 0, i);
  }
  const std::vector<TraceRing::Record> records = ring.Snapshot();
  EXPECT_LE(records.size(), capacity);
  EXPECT_GE(records.size(), ring.slots_per_shard());
  // Every surviving record is from the newest emissions.
  for (const TraceRing::Record& r : records) {
    EXPECT_GE(r.payload, 10 * capacity - ring.slots_per_shard());
  }
}

TEST(TraceRingTest, ConcurrentEmitAndSnapshotAreRaceFree) {
  TraceRing ring(64);
  constexpr int kWriters = 4;
  constexpr int kPerWriter = 20000;
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const auto records = ring.Snapshot();
      // Stable records must always decode to a known event.
      for (const auto& r : records) {
        EXPECT_GE(static_cast<uint16_t>(r.event), 1u);
        EXPECT_LE(static_cast<uint16_t>(r.event), 4u);
        // Writers always store payload == txn below; a torn read would
        // break the equality.
        EXPECT_EQ(r.payload, r.txn);
      }
    }
  });
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (int i = 0; i < kPerWriter; ++i) {
        const uint64_t id =
            static_cast<uint64_t>(w) * kPerWriter + static_cast<uint64_t>(i);
        ring.Emit(TraceEvent::kAbort, id, 1, 2, id);
      }
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true);
  reader.join();
  const auto records = ring.Snapshot();
  EXPECT_LE(records.size(), ring.shards() * ring.slots_per_shard());
  EXPECT_GT(records.size(), 0u);
}

TEST(TraceRingTest, DumpToWritesOneLinePerRecord) {
  TraceRing ring(16);
  ring.Emit(TraceEvent::kRingStall, 0, 0, 4096, 77);
  ring.Emit(TraceEvent::kAbort, 9, 1, 0, 8);
  char tmpl[] = "/tmp/ssidb_trace_XXXXXX";
  int fd = mkstemp(tmpl);
  ASSERT_GE(fd, 0);
  close(fd);
  const std::string path = tmpl;
  ASSERT_TRUE(ring.DumpTo(path).ok());
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  ASSERT_EQ(lines.size(), 2u);
  // Format: ts_ns event txn arg16 arg32 payload.
  EXPECT_NE(lines[0].find(" ring_stall 0 0 4096 77"), std::string::npos)
      << lines[0];
  EXPECT_NE(lines[1].find(" abort 9 1 0 8"), std::string::npos) << lines[1];
  std::remove(path.c_str());
}

TEST(TraceRingTest, EngineAbortsLandInTheRing) {
  DBOptions opts;
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(opts, &db).ok());
  TableId table = 0;
  ASSERT_TRUE(db->CreateTable("t", &table).ok());
  {
    auto seed = db->Begin({IsolationLevel::kSnapshot});
    ASSERT_TRUE(seed->Put(table, "x", "50").ok());
    ASSERT_TRUE(seed->Put(table, "y", "50").ok());
    ASSERT_TRUE(seed->Commit().ok());
  }
  // A write-skew pair: the SSI abort must show up as a kAbort record
  // carrying the taxonomy reason and the aborted transaction's id.
  TxnId victim_id = 0;
  {
    auto t1 = db->Begin({IsolationLevel::kSerializableSSI});
    auto t2 = db->Begin({IsolationLevel::kSerializableSSI});
    std::string v;
    ASSERT_TRUE(t1->Get(table, "x", &v).ok());
    ASSERT_TRUE(t1->Get(table, "y", &v).ok());
    ASSERT_TRUE(t2->Get(table, "x", &v).ok());
    ASSERT_TRUE(t2->Get(table, "y", &v).ok());
    ASSERT_TRUE(t1->Put(table, "x", "-20").ok());
    Status c1 = t1->Commit();
    Status w2 = t2->active() ? t2->Put(table, "y", "-30") : Status::Unsafe("");
    Status c2 = w2.ok() ? t2->Commit() : w2;
    EXPECT_NE(c1.ok(), c2.ok());
    victim_id = c1.ok() ? t2->id() : t1->id();
    if (t1->active()) t1->Abort();
    if (t2->active()) t2->Abort();
  }
  bool found = false;
  for (const auto& r : db->trace_ring()->Snapshot()) {
    if (r.event == TraceEvent::kAbort && r.txn == victim_id) {
      found = true;
      const auto reason = static_cast<AbortReason>(r.arg16);
      EXPECT_TRUE(reason == AbortReason::kSsiPivot ||
                  reason == AbortReason::kSsiInSide ||
                  reason == AbortReason::kSsiOutSide)
          << AbortReasonName(reason);
    }
  }
  EXPECT_TRUE(found) << "no abort record for txn " << victim_id;

  // DB::DumpTrace round-trips the same records through a file.
  char tmpl[] = "/tmp/ssidb_dbtrace_XXXXXX";
  int fd = mkstemp(tmpl);
  ASSERT_GE(fd, 0);
  close(fd);
  const std::string path = tmpl;
  ASSERT_TRUE(db->DumpTrace(path).ok());
  std::ifstream in(path);
  std::stringstream body;
  body << in.rdbuf();
  EXPECT_NE(body.str().find(" abort "), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace ssidb
