// The completion-driven commit pipeline: CommitRing completions
// (OnCovered), TxnManager::CommitAsync's submit/finalize split, the
// blocking-Commit-is-async-plus-wait equivalence, and the DB-level
// asynchronous acknowledgment path through Session::CommitAsync.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/common/encoding.h"
#include "src/db/db.h"
#include "src/db/session.h"
#include "src/lock/lock_manager.h"
#include "src/txn/commit_ring.h"
#include "src/txn/log_manager.h"
#include "src/txn/txn_manager.h"

namespace ssidb {
namespace {

// ---------------------------------------------------------------------------
// CommitRing completions.
// ---------------------------------------------------------------------------

TEST(CommitRingCompletionTest, FiresInlineWhenAlreadyCovered) {
  CommitRing ring(8);
  const Timestamp ts = ring.Allocate();
  ring.Publish(ts);
  ASSERT_GE(ring.stable(), ts);
  bool fired = false;
  ring.OnCovered(ts, [&] { fired = true; });
  EXPECT_TRUE(fired);  // Inline, on this thread, before OnCovered returns.
}

TEST(CommitRingCompletionTest, FiresWhenTheCoveringAdvanceHappens) {
  CommitRing ring(8);
  const Timestamp t1 = ring.Allocate();
  const Timestamp t2 = ring.Allocate();
  std::atomic<int> fired{0};
  // t2's slot is stamped but the watermark holds below t1: neither
  // completion may fire until t1 publishes.
  ring.Publish(t2);
  ring.OnCovered(t1, [&] { fired.fetch_add(1); });
  ring.OnCovered(t2, [&] { fired.fetch_add(1); });
  EXPECT_EQ(fired.load(), 0);
  ring.Publish(t1);  // Covers both; the publisher's drive drains them.
  EXPECT_EQ(fired.load(), 2);
}

TEST(CommitRingCompletionTest, CompletionSeesTheCoveringWatermark) {
  // A completion for ts observes stable() >= ts when it runs — the
  // acknowledgment ordering the finalize half builds on.
  CommitRing ring(4);
  for (int lap = 0; lap < 32; ++lap) {
    const Timestamp a = ring.Allocate();
    const Timestamp b = ring.Allocate();
    std::atomic<bool> ok_a{false}, ok_b{false};
    ring.Publish(b);
    ring.OnCovered(a, [&, a] { ok_a.store(ring.stable() >= a); });
    ring.OnCovered(b, [&, b] { ok_b.store(ring.stable() >= b); });
    ring.Publish(a);
    EXPECT_TRUE(ok_a.load());
    EXPECT_TRUE(ok_b.load());
  }
}

TEST(CommitRingCompletionTest, ConcurrentRegistrationNeverLosesACompletion) {
  // Threads allocate, publish, and register a completion for their own
  // timestamp — racing the concurrent drivers that may cover it before,
  // during, or after registration. Exactly one fire per registration.
  CommitRing ring(8);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 2000;
  std::atomic<uint64_t> fired{0};
  std::vector<std::thread> workers;
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        const Timestamp ts = ring.Allocate();
        ring.Publish(ts);
        ring.OnCovered(ts, [&] { fired.fetch_add(1); });
      }
    });
  }
  for (auto& t : workers) t.join();
  // A registration whose covering advance raced it drains itself; anything
  // left would need a later driver, and there is none — so all must have
  // fired by quiescence... except completions parked for a timestamp whose
  // covering Drive already took its shard snapshot. Those are exactly what
  // the re-check protocol exists for; assert it worked.
  ring.Drive();
  EXPECT_EQ(fired.load(), uint64_t{kThreads} * kPerThread);
  EXPECT_EQ(ring.stable(), ring.clock());
}

// ---------------------------------------------------------------------------
// LogManager flush subscriptions.
// ---------------------------------------------------------------------------

TEST(FlushSubscriptionTest, InlineWhenCommitsDoNotWaitOnFlushes) {
  LogOptions opts;  // flush_on_commit unset.
  LogManager log(opts);
  LogRecord rec;
  const Lsn lsn = log.Append(std::move(rec));
  bool fired = false;
  log.OnFlushed(lsn, [&](Status st) {
    fired = true;
    EXPECT_TRUE(st.ok());
  });
  EXPECT_TRUE(fired);
}

TEST(FlushSubscriptionTest, FiredByTheGroupCommitFlusher) {
  LogOptions opts;
  opts.flush_on_commit = true;
  opts.flush_latency_us = 100;
  LogManager log(opts);
  constexpr int kRecords = 16;
  std::atomic<int> fired{0};
  std::mutex mu;
  std::condition_variable cv;
  for (int i = 0; i < kRecords; ++i) {
    LogRecord rec;
    const Lsn lsn = log.Append(std::move(rec));
    log.OnFlushed(lsn, [&](Status st) {
      EXPECT_TRUE(st.ok());
      // Notify under the lock: the waiter owns cv/mu on its stack, so the
      // notify must complete before the waiter can observe the final
      // count and return (destroying them under the flusher thread).
      std::lock_guard<std::mutex> guard(mu);
      fired.fetch_add(1);
      cv.notify_all();
    });
  }
  std::unique_lock<std::mutex> guard(mu);
  ASSERT_TRUE(cv.wait_for(guard, std::chrono::seconds(10),
                          [&] { return fired.load() == kRecords; }));
  EXPECT_GE(log.flush_batches(), 1u);
}

TEST(FlushSubscriptionTest, ShutdownFiresEverySubscription) {
  // Subscriptions never covered by a flush must still fire (with the
  // sticky status) when the log shuts down — no completion is dropped.
  std::atomic<int> fired{0};
  {
    LogOptions opts;
    opts.flush_on_commit = true;
    opts.flush_latency_us = 100;
    LogManager log(opts);
    LogRecord rec;
    const Lsn lsn = log.Append(std::move(rec));
    // Subscribe past every appended LSN: no batch can mature it.
    log.OnFlushed(lsn + 100, [&](Status) { fired.fetch_add(1); });
  }
  EXPECT_EQ(fired.load(), 1);
}

// ---------------------------------------------------------------------------
// TxnManager::CommitAsync — the submit/finalize split.
// ---------------------------------------------------------------------------

class AsyncCommitTest : public ::testing::Test {
 protected:
  explicit AsyncCommitTest(DBOptions opts = {})
      : options_(opts),
        log_(options_.log),
        locks_(LockManager::Config{}),
        mgr_(options_, &locks_, &log_) {}

  /// Attach a synthetic write so the commit allocates a ring timestamp.
  void AttachWrite(const std::shared_ptr<TxnState>& txn) {
    auto chain = std::make_unique<VersionChain>();
    bool replaced = false;
    Version* v = chain->InstallUncommitted(txn->id, "v", false, &replaced);
    txn->write_set.push_back(
        TxnState::WriteRecord{0, "k", chain.get(), v, nullptr});
    chains_.push_back(std::move(chain));
  }

  /// Parked acknowledgment: Wait() re-drives the pipeline on a 1ms tick,
  /// exactly as the blocking wrapper does.
  struct Ack {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    Status status;
    TxnManager::CommitCallback Cb() {
      return [this](Status st) {
        // Notify under the lock so the waiter cannot destroy cv/mu while
        // this (possibly flusher-thread) callback is still inside notify.
        std::lock_guard<std::mutex> guard(mu);
        status = st;
        done = true;
        cv.notify_all();
      };
    }
    Status Wait(TxnManager* mgr) {
      std::unique_lock<std::mutex> guard(mu);
      while (!cv.wait_for(guard, std::chrono::milliseconds(1),
                          [&] { return done; })) {
        guard.unlock();
        mgr->DriveCommitPipeline();
        guard.lock();
      }
      return status;
    }
  };

  DBOptions options_;
  LogManager log_;
  LockManager locks_;
  TxnManager mgr_;
  std::vector<std::unique_ptr<VersionChain>> chains_;
};

TEST_F(AsyncCommitTest, WritingCommitAcknowledgesCoveredAndStamped) {
  auto t = mgr_.Begin(IsolationLevel::kSnapshot);
  mgr_.EnsureSnapshot(t.get());
  AttachWrite(t);
  Ack ack;
  mgr_.CommitAsync(t, nullptr, {}, ack.Cb());
  ASSERT_TRUE(ack.Wait(&mgr_).ok());
  EXPECT_EQ(t->status.load(), TxnStatus::kCommitted);
  EXPECT_GT(t->commit_ts.load(), 0u);
  // The acknowledgment ordering guarantee: done fired only after the
  // watermark covered the commit and the registry dropped it.
  EXPECT_GE(mgr_.stable_ts(), t->commit_ts.load());
  EXPECT_EQ(mgr_.active_count(), 0u);
  EXPECT_EQ(mgr_.commits_inflight(), 0u);
}

TEST_F(AsyncCommitTest, ReadOnlyCommitAcknowledgesInline) {
  auto t = mgr_.Begin(IsolationLevel::kSnapshot);
  mgr_.EnsureSnapshot(t.get());
  bool fired = false;
  mgr_.CommitAsync(t, nullptr, {}, [&](Status st) {
    fired = true;
    EXPECT_TRUE(st.ok());
  });
  EXPECT_TRUE(fired);  // Nothing published, nothing logged: inline ack.
  EXPECT_EQ(t->commit_ts.load(), mgr_.stable_ts());
}

TEST_F(AsyncCommitTest, AbortVerdictArrivesThroughTheCallback) {
  auto t = mgr_.Begin(IsolationLevel::kSerializableSSI);
  mgr_.EnsureSnapshot(t.get());
  t->in_conflict_flag = true;
  t->out_conflict_flag = true;
  Status verdict;
  bool fired = false;
  mgr_.CommitAsync(
      t, [](TxnState*) { return Status::Unsafe("nope"); }, {},
      [&](Status st) {
        fired = true;
        verdict = st;
      });
  EXPECT_TRUE(fired);  // Certification failed at submit: inline ack.
  EXPECT_TRUE(verdict.IsUnsafe());
  EXPECT_EQ(t->status.load(), TxnStatus::kAborted);
  EXPECT_EQ(mgr_.commits_inflight(), 0u);
}

TEST_F(AsyncCommitTest, DoubleCommitRejectedThroughTheCallback) {
  auto t = mgr_.Begin(IsolationLevel::kSnapshot);
  mgr_.EnsureSnapshot(t.get());
  ASSERT_TRUE(mgr_.Commit(t, nullptr, {}).ok());
  Status verdict;
  mgr_.CommitAsync(t, nullptr, {}, [&](Status st) { verdict = st; });
  EXPECT_TRUE(verdict.IsTxnInvalid());
}

TEST_F(AsyncCommitTest, BlockingAndAsyncAreTheSamePath) {
  // Differential pin for "one commit code path": an identical script of
  // commits — writers, a read-only, a certification failure — produces
  // identical verdicts AND identical commit-timestamp structure whether
  // driven through blocking Commit or through CommitAsync. The blocking
  // wrapper adds only the wait.
  struct Outcome {
    bool ok = false;
    bool unsafe = false;
    Timestamp commit_ts = 0;
  };
  auto run_script = [](bool async) {
    DBOptions opts;
    LogManager log(opts.log);
    LockManager locks{LockManager::Config{}};
    TxnManager mgr(opts, &locks, &log);
    std::vector<std::unique_ptr<VersionChain>> chains;
    auto commit = [&](const std::shared_ptr<TxnState>& t,
                      const TxnManager::CommitCheck& check) {
      if (!async) return mgr.Commit(t, check, {});
      Status verdict;
      bool done = false;
      mgr.CommitAsync(t, check, {}, [&](Status st) {
        verdict = st;
        done = true;
      });
      // Default options: no flush_on_commit, so the whole finalize half
      // ran inline on this thread.
      EXPECT_TRUE(done);
      return verdict;
    };
    std::vector<Outcome> out;
    auto record = [&](const std::shared_ptr<TxnState>& t, Status st) {
      out.push_back(Outcome{st.ok(), st.IsUnsafe(), t->commit_ts.load()});
    };
    for (int i = 0; i < 3; ++i) {  // Three writers: consecutive ring slots.
      auto t = mgr.Begin(IsolationLevel::kSnapshot);
      mgr.EnsureSnapshot(t.get());
      auto chain = std::make_unique<VersionChain>();
      bool replaced = false;
      Version* v = chain->InstallUncommitted(t->id, "v", false, &replaced);
      t->write_set.push_back(
          TxnState::WriteRecord{0, "k", chain.get(), v, nullptr});
      chains.push_back(std::move(chain));
      record(t, commit(t, nullptr));
    }
    {  // Read-only: commit_ts is the watermark.
      auto t = mgr.Begin(IsolationLevel::kSnapshot);
      mgr.EnsureSnapshot(t.get());
      record(t, commit(t, nullptr));
    }
    {  // Certification failure.
      auto t = mgr.Begin(IsolationLevel::kSerializableSSI);
      mgr.EnsureSnapshot(t.get());
      t->in_conflict_flag = true;
      t->out_conflict_flag = true;
      record(t, commit(t, [](TxnState*) {
               return Status::Unsafe("pivot");
             }));
    }
    return out;
  };
  const auto blocking = run_script(/*async=*/false);
  const auto async = run_script(/*async=*/true);
  ASSERT_EQ(blocking.size(), async.size());
  for (size_t i = 0; i < blocking.size(); ++i) {
    EXPECT_EQ(blocking[i].ok, async[i].ok) << "script step " << i;
    EXPECT_EQ(blocking[i].unsafe, async[i].unsafe) << "script step " << i;
    EXPECT_EQ(blocking[i].commit_ts, async[i].commit_ts)
        << "script step " << i;
  }
}

TEST_F(AsyncCommitTest, ManyInFlightDrainThroughTheFlusher) {
  // Durable-shaped pipeline without a disk: flush_on_commit with the
  // simulated latency. Submit a burst of async writers from one thread —
  // far more than one flush batch — and require every acknowledgment.
  DBOptions opts;
  opts.log.flush_on_commit = true;
  opts.log.flush_latency_us = 200;
  LogManager log(opts.log);
  LockManager locks{LockManager::Config{}};
  TxnManager mgr(opts, &locks, &log);
  std::vector<std::unique_ptr<VersionChain>> chains;
  constexpr int kBurst = 256;
  std::atomic<int> acked{0};
  std::mutex mu;
  std::condition_variable cv;
  uint64_t peak_inflight = 0;
  for (int i = 0; i < kBurst; ++i) {
    auto t = mgr.Begin(IsolationLevel::kSnapshot);
    mgr.EnsureSnapshot(t.get());
    auto chain = std::make_unique<VersionChain>();
    bool replaced = false;
    Version* v = chain->InstallUncommitted(t->id, "v", false, &replaced);
    t->write_set.push_back(
        TxnState::WriteRecord{0, "k", chain.get(), v, nullptr});
    chains.push_back(std::move(chain));
    mgr.CommitAsync(t, nullptr, {}, [&](Status st) {
      EXPECT_TRUE(st.ok());
      std::lock_guard<std::mutex> guard(mu);
      acked.fetch_add(1);
      cv.notify_all();  // Under the lock: see Cb() above.
    });
    peak_inflight = std::max(peak_inflight, mgr.commits_inflight());
  }
  EXPECT_GT(peak_inflight, 0u);  // Genuinely pipelined.
  {
    std::unique_lock<std::mutex> guard(mu);
    while (!cv.wait_for(guard, std::chrono::milliseconds(1),
                        [&] { return acked.load() == kBurst; })) {
      guard.unlock();
      mgr.DriveCommitPipeline();
      guard.lock();
    }
  }
  EXPECT_EQ(mgr.commits_inflight(), 0u);
  EXPECT_EQ(mgr.stable_ts(), mgr.clock_now());
  // The burst coalesced: far fewer fsync-equivalents than commits.
  EXPECT_LT(log.flush_batches(), uint64_t{kBurst});
}

// ---------------------------------------------------------------------------
// DB-level: Session::CommitAsync end to end.
// ---------------------------------------------------------------------------

TEST(SessionAsyncCommitTest, AckedWriteIsVisibleAndDurablyOrdered) {
  DBOptions opts;
  opts.log.flush_on_commit = true;
  opts.log.flush_latency_us = 100;
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(opts, &db).ok());
  TableId table = 0;
  ASSERT_TRUE(db->CreateTable("t", &table).ok());

  auto session = db->CreateSession();
  constexpr int kN = 64;
  std::atomic<int> acked{0};
  std::mutex mu;
  std::condition_variable cv;
  for (int i = 0; i < kN; ++i) {
    const TxnHandle h = session->Begin({IsolationLevel::kSerializableSSI});
    ASSERT_TRUE(
        session->Put(h, table, EncodeU64Key(i), EncodeU64Key(i)).ok());
    session->CommitAsync(h, [&](Status st) {
      EXPECT_TRUE(st.ok()) << st.ToString();
      std::lock_guard<std::mutex> guard(mu);
      acked.fetch_add(1);
      cv.notify_all();  // Under the lock: the waiter owns cv/mu.
    });
  }
  {
    std::unique_lock<std::mutex> guard(mu);
    while (!cv.wait_for(guard, std::chrono::milliseconds(1),
                        [&] { return acked.load() == kN; })) {
      guard.unlock();
      db->txn_manager()->DriveCommitPipeline();
      guard.lock();
    }
  }
  EXPECT_EQ(session->open_transactions(), 0u);
  // Every acknowledged write is visible to a fresh snapshot.
  auto check = db->Begin({IsolationLevel::kSnapshot});
  for (int i = 0; i < kN; ++i) {
    std::string v;
    EXPECT_TRUE(check->Get(table, EncodeU64Key(i), &v).ok()) << i;
    EXPECT_EQ(v, EncodeU64Key(i));
  }
  ASSERT_TRUE(check->Commit().ok());
}

TEST(SessionAsyncCommitTest, WriteSkewVerdictMatchesBlocking) {
  // The async path must certify exactly as the blocking path: a write-skew
  // pair driven through Session::CommitAsync produces the same
  // one-commits-one-aborts outcome Transaction::Commit gives.
  for (const bool async : {false, true}) {
    DBOptions opts;
    std::unique_ptr<DB> db;
    ASSERT_TRUE(DB::Open(opts, &db).ok());
    TableId table = 0;
    ASSERT_TRUE(db->CreateTable("t", &table).ok());
    {
      auto seed = db->Begin({IsolationLevel::kSnapshot});
      ASSERT_TRUE(seed->Put(table, "x", "0").ok());
      ASSERT_TRUE(seed->Put(table, "y", "0").ok());
      ASSERT_TRUE(seed->Commit().ok());
    }
    auto session = db->CreateSession();
    const TxnHandle a = session->Begin({IsolationLevel::kSerializableSSI});
    const TxnHandle b = session->Begin({IsolationLevel::kSerializableSSI});
    std::string v;
    ASSERT_TRUE(session->Get(a, table, "x", &v).ok());
    ASSERT_TRUE(session->Get(a, table, "y", &v).ok());
    ASSERT_TRUE(session->Get(b, table, "x", &v).ok());
    ASSERT_TRUE(session->Get(b, table, "y", &v).ok());
    Status wa = session->Put(a, table, "x", "1");
    Status wb = session->Put(b, table, "y", "1");
    auto commit = [&](TxnHandle h) {
      if (!async) return session->Commit(h);
      Status verdict;
      bool done = false;
      session->CommitAsync(h, [&](Status st) {
        verdict = st;
        done = true;
      });
      EXPECT_TRUE(done);  // No flush_on_commit: acknowledged inline.
      return verdict;
    };
    Status ca = wa.ok() ? commit(a) : wa;
    Status cb = wb.ok() ? commit(b) : wb;
    EXPECT_NE(ca.ok(), cb.ok())
        << "async=" << async << " ca=" << ca.ToString()
        << " cb=" << cb.ToString();
    EXPECT_TRUE(ca.IsUnsafe() || cb.IsUnsafe());
  }
}

}  // namespace
}  // namespace ssidb
