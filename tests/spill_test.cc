// Storage-tier integration tests: the spill / fault protocols between
// Table, VersionChain and StorageTier.
//
// The invariants under test (see version.h and storage_tier.h):
//   * a spill/fault round trip preserves the original commit timestamp,
//     value and tombstone flag of the chain anchor;
//   * reads, scans and write-path visibility checks transparently fault
//     evicted chains back in;
//   * the second-chance clock bit keeps hot chains resident;
//   * runs are the durable home of spilled keys across restarts (recovery
//     opens runs instead of replaying everything into RAM);
//   * compaction merges runs keeping the newest commit per key.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/common/encoding.h"
#include "src/common/random.h"
#include "src/db/db.h"
#include "src/storage/storage_tier.h"
#include "tests/test_util.h"

namespace ssidb {
namespace {

DBOptions TierOptions(const std::string& dir) {
  DBOptions opts;
  opts.buffer_pool_bytes = 1 << 16;  // 16 frames of 4 KiB.
  opts.run_page_bytes = 4096;
  opts.data_dir = dir;
  // The tests drive spilling explicitly; the background sweeper would race
  // the exact counts.
  opts.version_gc_interval_ms = 0;
  return opts;
}

struct TierFixture {
  ScratchDir dir;  // Declared first: outlives the DB (and its tier).
  std::unique_ptr<DB> db;
  TableId table = 0;

  TierFixture() {
    EXPECT_TRUE(DB::Open(TierOptions(dir.path), &db).ok());
    EXPECT_TRUE(db->CreateTable("t", &table).ok());
  }

  void Put(Slice key, Slice value) {
    auto txn = db->Begin({IsolationLevel::kSnapshot});
    ASSERT_TRUE(txn->Put(table, key, value).ok());
    ASSERT_TRUE(txn->Commit().ok());
  }

  void Del(Slice key) {
    auto txn = db->Begin({IsolationLevel::kSnapshot});
    ASSERT_TRUE(txn->Delete(table, key).ok());
    ASSERT_TRUE(txn->Commit().ok());
  }

  Status Get(Slice key, std::string* value) {
    auto txn = db->Begin({IsolationLevel::kSnapshot});
    Status st = txn->Get(table, key, value);
    txn->Commit();
    return st;
  }

  /// Evict every currently-cold committed chain: the first sweep clears
  /// the second-chance bits, the second evicts. Returns chains evicted.
  size_t SpillAll() {
    db->SpillChains(table);
    return db->SpillChains(table);
  }

  VersionChain* Chain(Slice key) { return db->table(table)->Find(key); }
};

TEST(SpillTest, RoundTripPreservesValueAndCommitTimestamp) {
  TierFixture f;
  constexpr uint64_t kKeys = 16;
  std::vector<Timestamp> cts(kKeys);
  for (uint64_t i = 0; i < kKeys; ++i) {
    f.Put(EncodeU64Key(i), "v" + std::to_string(i));
  }
  for (uint64_t i = 0; i < kKeys; ++i) {
    bool tomb = true;
    ASSERT_TRUE(f.Chain(EncodeU64Key(i))->LatestCommitted(&cts[i], &tomb));
    EXPECT_FALSE(tomb);
  }

  ASSERT_EQ(f.SpillAll(), kKeys);
  for (uint64_t i = 0; i < kKeys; ++i) {
    VersionChain* chain = f.Chain(EncodeU64Key(i));
    EXPECT_TRUE(chain->evicted());
    EXPECT_EQ(chain->size(), 0u) << "evicted chain must hold no versions";
  }

  // Reads fault the anchors back with value + commit_ts intact.
  for (uint64_t i = 0; i < kKeys; ++i) {
    std::string v;
    ASSERT_TRUE(f.Get(EncodeU64Key(i), &v).ok());
    EXPECT_EQ(v, "v" + std::to_string(i));
    VersionChain* chain = f.Chain(EncodeU64Key(i));
    EXPECT_FALSE(chain->evicted());
    Timestamp after = 0;
    bool tomb = true;
    ASSERT_TRUE(chain->LatestCommitted(&after, &tomb));
    EXPECT_EQ(after, cts[i]) << "fault must keep the original commit_ts";
    EXPECT_FALSE(tomb);
  }
  EXPECT_EQ(f.db->GetStats().faulted_chains, kKeys);
}

TEST(SpillTest, TombstonesSpillAndGateInserts) {
  TierFixture f;
  f.Put("gone", "x");
  f.Put("also-gone", "y");
  f.Del("gone");
  f.Del("also-gone");
  Timestamp del_cts = 0;
  bool tomb = false;
  ASSERT_TRUE(f.Chain("gone")->LatestCommitted(&del_cts, &tomb));
  ASSERT_TRUE(tomb);

  ASSERT_EQ(f.SpillAll(), 2u);
  EXPECT_TRUE(f.Chain("gone")->evicted());

  // A read faults the tombstone back and correctly reports not-found.
  std::string v;
  EXPECT_TRUE(f.Get("gone", &v).IsNotFound());
  Timestamp after = 0;
  ASSERT_TRUE(f.Chain("gone")->LatestCommitted(&after, &tomb));
  EXPECT_TRUE(tomb) << "tombstone flag must survive the round trip";
  EXPECT_EQ(after, del_cts);

  // Insert's duplicate check on the OTHER spilled tombstone exercises the
  // write-path fault loop (no prior read): the faulted tombstone says the
  // key does not exist, so the insert must succeed.
  {
    auto txn = f.db->Begin({IsolationLevel::kSnapshot});
    ASSERT_TRUE(txn->Insert(f.table, "also-gone", "back").ok());
    ASSERT_TRUE(txn->Commit().ok());
  }
  ASSERT_TRUE(f.Get("also-gone", &v).ok());
  EXPECT_EQ(v, "back");

  // And inserting over a spilled LIVE anchor must fail as a duplicate.
  f.Put("alive", "1");
  ASSERT_GE(f.SpillAll(), 1u);
  {
    auto txn = f.db->Begin({IsolationLevel::kSnapshot});
    EXPECT_TRUE(txn->Insert(f.table, "alive", "2").IsDuplicateKey());
    txn->Abort();
  }
}

TEST(SpillTest, ScansFaultEvictedChains) {
  TierFixture f;
  constexpr uint64_t kKeys = 24;
  for (uint64_t i = 0; i < kKeys; ++i) {
    f.Put(EncodeU64Key(i), std::to_string(i));
  }
  ASSERT_EQ(f.SpillAll(), kKeys);

  auto txn = f.db->Begin({IsolationLevel::kSnapshot});
  uint64_t seen = 0;
  ASSERT_TRUE(txn->Scan(f.table, EncodeU64Key(0), EncodeU64Key(kKeys),
                        [&](Slice key, Slice value) {
                          EXPECT_EQ(key, Slice(EncodeU64Key(seen)));
                          EXPECT_EQ(value, Slice(std::to_string(seen)));
                          ++seen;
                          return true;
                        })
                  .ok());
  ASSERT_TRUE(txn->Commit().ok());
  EXPECT_EQ(seen, kKeys) << "a scan must surface every spilled key";
  EXPECT_EQ(f.db->GetStats().faulted_chains, kKeys);
}

TEST(SpillTest, SecondChanceKeepsHotChainsResident) {
  TierFixture f;
  f.Put("hot", "h");
  f.Put("cold", "c");
  // First sweep clears both clock bits...
  EXPECT_EQ(f.db->SpillChains(f.table), 0u);
  // ...then a read re-arms the hot chain's bit.
  std::string v;
  ASSERT_TRUE(f.Get("hot", &v).ok());
  // The second sweep evicts only the cold chain (the hot one has its bit
  // cleared again, so a THIRD untouched sweep would take it).
  EXPECT_EQ(f.db->SpillChains(f.table), 1u);
  EXPECT_FALSE(f.Chain("hot")->evicted());
  EXPECT_TRUE(f.Chain("cold")->evicted());
}

TEST(SpillTest, UpdateAfterSpillFaultsAndSupersedes) {
  TierFixture f;
  f.Put("k", "old");
  ASSERT_EQ(f.SpillAll(), 1u);
  // Upsert over the evicted chain: unlike insert/delete, an upsert needs no
  // visibility check, so it installs at the head WITHOUT faulting the old
  // anchor in. The chain becomes hybrid: one resident version, still marked
  // evicted (the stale anchor lives only in the run).
  f.Put("k", "new");
  std::string v;
  ASSERT_TRUE(f.Get("k", &v).ok());
  EXPECT_EQ(v, "new");
  EXPECT_EQ(f.Chain("k")->size(), 1u);
  EXPECT_TRUE(f.Chain("k")->evicted()) << "hybrid: stale anchor still in run";

  // The hybrid chain re-spills through the normal path: its new head becomes
  // the new anchor, shadowing the stale run entry (newest-first lookup), and
  // a fresh fault returns the new value.
  ASSERT_EQ(f.SpillAll(), 1u);
  EXPECT_EQ(f.Chain("k")->size(), 0u);
  ASSERT_TRUE(f.Get("k", &v).ok());
  EXPECT_EQ(v, "new");
}

TEST(SpillTest, CompactionMergesRunsKeepingNewestCommit) {
  TierFixture f;
  StorageTier* tier = f.db->storage_tier();
  ASSERT_NE(tier, nullptr);
  constexpr uint64_t kKeys = 8;
  // Four waves of updates, each followed by a full spill: four runs, every
  // key present in each with increasing commit timestamps.
  for (int wave = 0; wave < 4; ++wave) {
    for (uint64_t i = 0; i < kKeys; ++i) {
      f.Put(EncodeU64Key(i), "w" + std::to_string(wave));
    }
    ASSERT_EQ(f.SpillAll(), kKeys);
  }
  ASSERT_EQ(tier->run_count(f.table), 4u);

  ASSERT_TRUE(tier->MaybeCompact(f.table).ok());
  EXPECT_EQ(tier->run_count(f.table), 1u);

  // Faults after compaction see the newest wave.
  for (uint64_t i = 0; i < kKeys; ++i) {
    std::string v;
    ASSERT_TRUE(f.Get(EncodeU64Key(i), &v).ok());
    EXPECT_EQ(v, "w3");
  }
}

TEST(SpillTest, RunsAreTheDurableHomeAcrossRestart) {
  ScratchDir dir;
  DBOptions opts = TierOptions(dir.path + "/runs");
  opts.log.wal_dir = dir.path + "/wal";
  constexpr uint64_t kKeys = 16;
  std::vector<Timestamp> cts(kKeys);
  {
    std::unique_ptr<DB> db;
    ASSERT_TRUE(DB::Open(opts, &db).ok());
    TableId table = 0;
    ASSERT_TRUE(db->CreateTable("t", &table).ok());
    {
      auto txn = db->Begin({IsolationLevel::kSnapshot});
      for (uint64_t i = 0; i < kKeys; ++i) {
        ASSERT_TRUE(txn->Put(table, EncodeU64Key(i), "d" + std::to_string(i))
                        .ok());
      }
      ASSERT_TRUE(txn->Commit().ok());
    }
    for (uint64_t i = 0; i < kKeys; ++i) {
      bool tomb = true;
      ASSERT_TRUE(
          db->table(table)->Find(EncodeU64Key(i))->LatestCommitted(&cts[i],
                                                                   &tomb));
    }
    db->SpillChains(table);
    ASSERT_EQ(db->SpillChains(table), kKeys);
    // The checkpoint's sweep skips the evicted chains — the runs, not the
    // image, are their durable home from here on.
    ASSERT_TRUE(db->Checkpoint().ok());
  }
  // Reopen: recovery must open the runs and leave the spilled chains on
  // disk (the checkpoint image does not contain them, so any resident
  // copy could only have come from a WAL segment the GC may keep or drop;
  // either way the values and their original commit timestamps survive).
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(opts, &db).ok());
  const TableId table = 0;
  ASSERT_GT(db->storage_tier()->run_count(table), 0u);
  for (uint64_t i = 0; i < kKeys; ++i) {
    auto txn = db->Begin({IsolationLevel::kSnapshot});
    std::string v;
    ASSERT_TRUE(txn->Get(table, EncodeU64Key(i), &v).ok()) << i;
    EXPECT_EQ(v, "d" + std::to_string(i));
    txn->Commit();
    Timestamp after = 0;
    bool tomb = true;
    ASSERT_TRUE(
        db->table(table)->Find(EncodeU64Key(i))->LatestCommitted(&after,
                                                                 &tomb));
    EXPECT_EQ(after, cts[i]) << "restart must keep the original commit_ts";
    EXPECT_FALSE(tomb);
  }
}

/// Concurrent readers/writers against a continuously spilling and
/// compacting table (the TSan job's integration stress): every read must
/// see a committed value, whatever the chain's residency at that instant.
TEST(SpillTest, ConcurrentSpillFaultStress) {
  TierFixture f;
  constexpr uint64_t kKeys = 64;
  for (uint64_t i = 0; i < kKeys; ++i) {
    f.Put(EncodeU64Key(i), "0");
  }

  std::atomic<bool> stop{false};
  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  // Spiller: plays the background sweeper, continuously.
  threads.emplace_back([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      f.db->SpillChains(f.table);
      f.db->storage_tier()->MaybeCompact(f.table);
    }
  });
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&, t] {
      Random rng(static_cast<uint64_t>(t) * 53 + 3);
      while (!stop.load(std::memory_order_relaxed)) {
        const std::string key = EncodeU64Key(rng.Uniform(kKeys));
        auto txn = f.db->Begin({IsolationLevel::kSnapshot});
        if (rng.Uniform(4) == 0) {
          txn->Put(f.table, key, std::to_string(rng.Uniform(1000)));
          txn->Commit();
        } else {
          std::string v;
          Status st = txn->Get(f.table, key, &v);
          // Transient IOError (fault retry exhaustion) is permitted by the
          // contract; a NotFound would mean a committed key vanished.
          if (st.IsNotFound()) failed.store(true);
          txn->Commit();
        }
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  stop.store(true);
  for (auto& th : threads) th.join();
  EXPECT_FALSE(failed.load()) << "a committed key disappeared";
  // Quiesced sanity: everything reads back.
  for (uint64_t i = 0; i < kKeys; ++i) {
    std::string v;
    EXPECT_TRUE(f.Get(EncodeU64Key(i), &v).ok()) << i;
  }
}

}  // namespace
}  // namespace ssidb
