// Tests of the SIREAD predicate index (src/lock/siread_index.h): the
// striped structure itself (heterogeneous probes, ownership chains, node
// recycling), the SIREAD lifetime rules it now owns — entries survive
// commit (suspension, Fig 3.2 line 9) and are dropped by suspended-
// transaction cleanup (§3.3) — and the cross-structure conflict evidence:
// OnWriterSawSIReadHolder's overlap filter must still see post-commit
// readers. The concurrency tests run under the TSan CI job.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/common/encoding.h"
#include "src/common/inline_vec.h"
#include "src/db/db.h"
#include "src/lock/lock_manager.h"
#include "src/lock/siread_index.h"
#include "tests/test_util.h"

namespace ssidb {
namespace {

LockKeyView RowView(const std::string& key, TableId table = 1) {
  return MakeLockKeyView(table, LockKind::kRow, key);
}

// ---------------------------------------------------------------------------
// InlineVec (the conflict/newer-version buffer type).
// ---------------------------------------------------------------------------

TEST(InlineVecTest, StaysInlineUpToCapacityThenSpills) {
  InlineVec<TxnId, 4> v;
  for (TxnId i = 1; i <= 4; ++i) v.push_back(i);
  EXPECT_TRUE(v.is_inline());
  v.push_back(5);
  EXPECT_FALSE(v.is_inline());
  ASSERT_EQ(v.size(), 5u);
  for (TxnId i = 1; i <= 5; ++i) EXPECT_EQ(v[i - 1], i);
}

TEST(InlineVecTest, ClearKeepsSpilledCapacity) {
  InlineVec<TxnId, 2> v;
  for (TxnId i = 0; i < 10; ++i) v.push_back(i);
  const size_t cap = v.capacity();
  v.clear();
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.capacity(), cap);  // Reused buffers stay allocation-free.
}

TEST(InlineVecTest, CopyAndMovePreserveElements) {
  InlineVec<TxnId, 2> v;
  for (TxnId i = 0; i < 6; ++i) v.push_back(i);
  InlineVec<TxnId, 2> copy(v);
  ASSERT_EQ(copy.size(), 6u);
  EXPECT_EQ(copy[5], 5u);
  InlineVec<TxnId, 2> moved(std::move(v));
  ASSERT_EQ(moved.size(), 6u);
  EXPECT_EQ(moved[0], 0u);
  EXPECT_TRUE(v.empty());  // NOLINT: moved-from is valid-but-empty here.
}

TEST(InlineVecTest, UnorderedEraseIsConstantTime) {
  InlineVec<int, 4> v;
  for (int i = 0; i < 4; ++i) v.push_back(i);
  v.unordered_erase(1);
  ASSERT_EQ(v.size(), 3u);
  // 1 was replaced by the last element.
  EXPECT_EQ(v[1], 3);
}

// ---------------------------------------------------------------------------
// SIReadIndex structure.
// ---------------------------------------------------------------------------

TEST(SIReadIndexTest, PublishHoldsRelease) {
  SIReadIndex idx;
  idx.Publish(1, RowView("a"));
  EXPECT_TRUE(idx.Holds(1, RowView("a")));
  EXPECT_FALSE(idx.Holds(2, RowView("a")));
  EXPECT_TRUE(idx.HoldsAny(1));
  EXPECT_EQ(idx.GrantCount(), 1u);
  idx.ReleaseAll(1);
  EXPECT_FALSE(idx.Holds(1, RowView("a")));
  EXPECT_FALSE(idx.HoldsAny(1));
  EXPECT_EQ(idx.GrantCount(), 0u);
  EXPECT_EQ(idx.EntryCount(), 0u);
}

TEST(SIReadIndexTest, PublishIsIdempotent) {
  SIReadIndex idx;
  idx.Publish(1, RowView("a"));
  idx.Publish(1, RowView("a"));
  EXPECT_EQ(idx.GrantCount(), 1u);
  idx.ReleaseAll(1);
  EXPECT_EQ(idx.GrantCount(), 0u);
}

TEST(SIReadIndexTest, TableAndKindPartitionTheKeySpace) {
  // Same bytes, different (table, kind): distinct entries.
  SIReadIndex idx;
  idx.Publish(1, MakeLockKeyView(1, LockKind::kRow, "k"));
  idx.Publish(2, MakeLockKeyView(2, LockKind::kRow, "k"));
  idx.Publish(3, MakeLockKeyView(1, LockKind::kGap, "k"));
  EXPECT_EQ(idx.EntryCount(), 3u);
  EXPECT_TRUE(idx.Holds(1, MakeLockKeyView(1, LockKind::kRow, "k")));
  EXPECT_FALSE(idx.Holds(1, MakeLockKeyView(2, LockKind::kRow, "k")));
  EXPECT_FALSE(idx.Holds(1, MakeLockKeyView(1, LockKind::kGap, "k")));
}

TEST(SIReadIndexTest, CollectHoldersExcludesSelfAndClearsNothing) {
  SIReadIndex idx;
  idx.Publish(1, RowView("a"));
  idx.Publish(2, RowView("a"));
  idx.Publish(3, RowView("a"));
  SIReadIndex::ConflictBuf buf;
  idx.CollectHolders(2, RowView("a"), &buf);
  ASSERT_EQ(buf.size(), 2u);
  for (TxnId t : buf) EXPECT_NE(t, 2u);
  // Append semantics: a second collect adds to the buffer.
  idx.CollectHolders(0, RowView("a"), &buf);
  EXPECT_EQ(buf.size(), 5u);
}

TEST(SIReadIndexTest, EraseOwnDropsOnlyThatKey) {
  // §3.7.3 upgrade: the writer's own SIREAD on the written key vanishes,
  // everything else it holds stays.
  SIReadIndex idx;
  idx.Publish(1, RowView("a"));
  idx.Publish(1, RowView("b"));
  idx.Publish(2, RowView("a"));
  idx.EraseOwn(1, RowView("a"));
  EXPECT_FALSE(idx.Holds(1, RowView("a")));
  EXPECT_TRUE(idx.Holds(2, RowView("a")));
  EXPECT_TRUE(idx.Holds(1, RowView("b")));
  EXPECT_TRUE(idx.HoldsAny(1));
  EXPECT_EQ(idx.GrantCount(), 2u);
  // Erasing a key never published is a no-op.
  idx.EraseOwn(1, RowView("zzz"));
  EXPECT_EQ(idx.GrantCount(), 2u);
}

TEST(SIReadIndexTest, ManyKeysGrowBucketsAndReleaseInOHeld) {
  SIReadIndex idx;
  constexpr int kKeys = 5000;
  for (int i = 0; i < kKeys; ++i) {
    idx.Publish(7, MakeLockKeyView(1, LockKind::kRow, EncodeU64Key(i)));
  }
  EXPECT_EQ(idx.GrantCount(), static_cast<size_t>(kKeys));
  EXPECT_EQ(idx.EntryCount(), static_cast<size_t>(kKeys));
  for (int i = 0; i < kKeys; ++i) {
    EXPECT_TRUE(idx.Holds(7, MakeLockKeyView(1, LockKind::kRow,
                                             EncodeU64Key(i))));
  }
  idx.ReleaseAll(7);
  EXPECT_EQ(idx.GrantCount(), 0u);
  EXPECT_EQ(idx.EntryCount(), 0u);
}

TEST(SIReadIndexTest, RecycledEntriesServeNewKeys) {
  // Release pushes entry/link nodes onto free lists; the next publish
  // reuses them (steady-state zero allocation is inspected, here we only
  // verify correctness across recycling).
  SIReadIndex idx;
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 100; ++i) {
      idx.Publish(10 + round,
                  MakeLockKeyView(1, LockKind::kRow, EncodeU64Key(i * 31)));
    }
    EXPECT_EQ(idx.EntryCount(), 100u);
    idx.ReleaseAll(10 + round);
    EXPECT_EQ(idx.EntryCount(), 0u);
    EXPECT_EQ(idx.GrantCount(), 0u);
  }
}

TEST(SIReadIndexTest, ManyOwnersOnOneHotKey) {
  // The owner list spills past its inline capacity and keeps reporting
  // every holder (the §3.3 retained-reader population on a hot key).
  SIReadIndex idx;
  constexpr TxnId kOwners = 100;
  for (TxnId t = 1; t <= kOwners; ++t) idx.Publish(t, RowView("hot"));
  SIReadIndex::ConflictBuf buf;
  idx.CollectHolders(0, RowView("hot"), &buf);
  EXPECT_EQ(buf.size(), static_cast<size_t>(kOwners));
  for (TxnId t = 1; t <= kOwners; ++t) idx.ReleaseAll(t);
  EXPECT_EQ(idx.EntryCount(), 0u);
}

TEST(SIReadIndexTest, ConcurrentPublishProbeRelease) {
  // TSan target: hammer a small keyspace with publishers, writers probing
  // holders, and releases. Invariant: the index drains to empty.
  SIReadIndex idx;
  constexpr int kThreads = 8;
  constexpr int kIters = 300;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&idx, t] {
      for (int i = 0; i < kIters; ++i) {
        const TxnId id = static_cast<TxnId>(t * kIters + i + 1);
        const std::string key = EncodeU64Key(i % 7);
        const LockKeyView v = MakeLockKeyView(1, LockKind::kRow, key);
        idx.Publish(id, v);
        SIReadIndex::ConflictBuf buf;
        idx.CollectHolders(id, v, &buf);
        if (i % 3 == 0) idx.EraseOwn(id, v);
        idx.ReleaseAll(id);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(idx.GrantCount(), 0u);
  EXPECT_EQ(idx.EntryCount(), 0u);
}

// ---------------------------------------------------------------------------
// SIREAD lifetime through the engine (suspension and cleanup, §3.3).
// ---------------------------------------------------------------------------

TEST(SIReadLifetimeTest, EntriesSurviveCommitWhileOverlapped) {
  // Fig 3.2 line 9: commit keeps the SIREAD entries; the suspended
  // transaction stays visible to the index until cleanup.
  DBOptions opts;
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(opts, &db).ok());
  TableId table = 0;
  ASSERT_TRUE(db->CreateTable("t", &table).ok());
  {
    auto setup = db->Begin({IsolationLevel::kSnapshot});
    ASSERT_TRUE(setup->Insert(table, "k", "v").ok());
    ASSERT_TRUE(setup->Commit().ok());
  }

  auto keeper = db->Begin({IsolationLevel::kSerializableSSI});
  std::string v;
  keeper->Get(table, "k", &v);  // Assigns keeper's snapshot.
  // Watermark past the keeper's snapshot: a read-only commit's timestamp
  // is the watermark, and retention requires it to exceed the snapshot.
  BumpWatermark(db.get(), table);

  auto reader = db->Begin({IsolationLevel::kSerializableSSI});
  ASSERT_TRUE(reader->Get(table, "k", &v).ok());
  const TxnId reader_id = reader->id();
  const SIReadIndex* idx = db->lock_manager()->siread_index();
  EXPECT_TRUE(idx->Holds(reader_id, MakeLockKeyView(table, LockKind::kRow,
                                                    "k")));
  ASSERT_TRUE(reader->Commit().ok());

  // Retained past commit: the keeper overlaps the reader.
  EXPECT_TRUE(db->lock_manager()->HoldsAnySIRead(reader_id));
  EXPECT_GE(db->GetStats().suspended_txns, 1u);

  // Once no overlap remains, the next cleanup sweep drops the entries.
  ASSERT_TRUE(keeper->Commit().ok());
  auto pulse = db->Begin({IsolationLevel::kSnapshot});
  pulse->Get(table, "k", &v);
  ASSERT_TRUE(pulse->Commit().ok());
  EXPECT_FALSE(db->lock_manager()->HoldsAnySIRead(reader_id));
  EXPECT_EQ(db->GetStats().suspended_txns, 0u);
}

TEST(SIReadLifetimeTest, AbortDropsEntriesImmediately) {
  // Aborted transactions never participate in conflicts: ReleaseAll
  // clears the index with no suspension.
  DBOptions opts;
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(opts, &db).ok());
  TableId table = 0;
  ASSERT_TRUE(db->CreateTable("t", &table).ok());
  auto reader = db->Begin({IsolationLevel::kSerializableSSI});
  std::string v;
  reader->Get(table, "k", &v);  // NotFound still publishes the SIREAD.
  EXPECT_TRUE(db->lock_manager()->HoldsAnySIRead(reader->id()));
  ASSERT_TRUE(reader->Abort().ok());
  EXPECT_FALSE(db->lock_manager()->HoldsAnySIRead(reader->id()));
}

TEST(SIReadLifetimeTest, WriterSeesPostCommitReaderThroughIndex) {
  // The Fig 3.5 overlap filter ("rl.owner has not committed or
  // commit(rl.owner) > begin(T)") applied to evidence coming from the
  // index: a reader that committed *after* the writer's snapshot was
  // taken still produces the rw-antidependency.
  DBOptions opts;
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(opts, &db).ok());
  TableId table = 0;
  ASSERT_TRUE(db->CreateTable("t", &table).ok());
  {
    auto setup = db->Begin({IsolationLevel::kSnapshot});
    ASSERT_TRUE(setup->Insert(table, "k", "v").ok());
    ASSERT_TRUE(setup->Commit().ok());
  }

  auto keeper = db->Begin({IsolationLevel::kSerializableSSI});
  std::string v;
  keeper->Get(table, "other", &v);  // Keeps the reader suspended later.

  auto writer = db->Begin({IsolationLevel::kSerializableSSI});
  writer->Get(table, "other", &v);  // Snapshot before the reader commits.
  // Watermark past the writer's snapshot: commit(reader) > begin(writer),
  // the Fig 3.5 overlap the test is about.
  BumpWatermark(db.get(), table);

  auto reader = db->Begin({IsolationLevel::kSerializableSSI});
  ASSERT_TRUE(reader->Get(table, "k", &v).ok());
  const TxnId reader_id = reader->id();
  ASSERT_TRUE(reader->Commit().ok());
  EXPECT_TRUE(db->lock_manager()->HoldsAnySIRead(reader_id));

  // The writer's EXCLUSIVE acquisition probes the index, finds the
  // suspended reader, and the tracker records reader -> writer.
  ASSERT_TRUE(writer->Put(table, "k", "w").ok());
  auto writer_state = db->txn_manager()->Find(writer->id());
  ASSERT_NE(writer_state, nullptr);
  {
    std::lock_guard<std::mutex> latch(writer_state->ssi_mu);
    EXPECT_TRUE(writer_state->in_ref.IsSet());
  }
  writer->Abort();
  keeper->Abort();
}

TEST(SIReadLifetimeTest, NonOverlappingCommittedReaderIsFiltered) {
  // Complement of the above: a reader that committed before the writer's
  // snapshot does not overlap — evidence is filtered, no edge recorded.
  DBOptions opts;
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(opts, &db).ok());
  TableId table = 0;
  ASSERT_TRUE(db->CreateTable("t", &table).ok());
  {
    auto setup = db->Begin({IsolationLevel::kSnapshot});
    ASSERT_TRUE(setup->Insert(table, "k", "v").ok());
    ASSERT_TRUE(setup->Commit().ok());
  }

  auto keeper = db->Begin({IsolationLevel::kSerializableSSI});
  std::string v;
  keeper->Get(table, "other", &v);
  // Keep the keeper genuinely overlapping the reader's commit.
  BumpWatermark(db.get(), table);

  auto reader = db->Begin({IsolationLevel::kSerializableSSI});
  ASSERT_TRUE(reader->Get(table, "k", &v).ok());
  const TxnId reader_id = reader->id();
  ASSERT_TRUE(reader->Commit().ok());
  EXPECT_TRUE(db->lock_manager()->HoldsAnySIRead(reader_id));

  // Writer begins after the reader committed: no overlap.
  auto writer = db->Begin({IsolationLevel::kSerializableSSI});
  ASSERT_TRUE(writer->Put(table, "k", "w").ok());
  auto writer_state = db->txn_manager()->Find(writer->id());
  ASSERT_NE(writer_state, nullptr);
  {
    std::lock_guard<std::mutex> latch(writer_state->ssi_mu);
    EXPECT_FALSE(writer_state->in_ref.IsSet());
  }
  writer->Abort();
  keeper->Abort();
}

TEST(SIReadLifetimeTest, ConcurrentReadersAndCleanupDrain) {
  // TSan target at the engine level: read-mostly SSI traffic with
  // overlapping lifetimes; afterwards everything must drain.
  DBOptions opts;
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(opts, &db).ok());
  TableId table = 0;
  ASSERT_TRUE(db->CreateTable("t", &table).ok());
  {
    auto setup = db->Begin({IsolationLevel::kSnapshot});
    for (int i = 0; i < 64; ++i) {
      ASSERT_TRUE(setup->Insert(table, EncodeU64Key(i), "v").ok());
    }
    ASSERT_TRUE(setup->Commit().ok());
  }
  constexpr int kThreads = 4;
  constexpr int kIters = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&db, table, t] {
      std::string v;
      for (int i = 0; i < kIters; ++i) {
        auto txn = db->Begin({IsolationLevel::kSerializableSSI});
        txn->Get(table, EncodeU64Key((t * 13 + i) % 64), &v);
        if (i % 10 == 0) {
          txn->Put(table, EncodeU64Key((t * 7 + i) % 64), "w");
        }
        txn->Commit();  // Unsafe/conflict aborts are fine.
      }
    });
  }
  for (auto& th : threads) th.join();
  // Final pulses retire every suspended transaction.
  for (int i = 0; i < 2; ++i) {
    auto pulse = db->Begin({IsolationLevel::kSnapshot});
    std::string v;
    pulse->Get(table, EncodeU64Key(0), &v);
    ASSERT_TRUE(pulse->Commit().ok());
  }
  EXPECT_EQ(db->GetStats().suspended_txns, 0u);
  EXPECT_EQ(db->lock_manager()->siread_index()->GrantCount(), 0u);
  EXPECT_EQ(db->GetStats().lock_grants, 0u);
}

}  // namespace
}  // namespace ssidb
