// Write-ahead log tests: record format, group commit batching, the
// flush-on-commit regimes of §6.1.2/§6.1.3 and the §4.4 early-lock-release
// ablation.

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "src/common/crc32c.h"
#include "src/common/encoding.h"
#include "src/db/db.h"
#include "src/txn/log_manager.h"

namespace ssidb {
namespace {

TEST(LogRecordTest, EncodeDecodeRoundTrip) {
  LogRecord r;
  r.txn_id = 42;
  r.commit_ts = 1234567;
  r.redo.push_back(RedoEntry{7, "alice", std::string("v\0zero", 6), false});
  r.redo.push_back(RedoEntry{9, "bob", "", true});
  LogRecord out;
  ASSERT_TRUE(LogRecord::Decode(r.Encode(), &out).ok());
  EXPECT_EQ(out.type, LogRecordType::kCommit);
  EXPECT_EQ(out.txn_id, 42u);
  EXPECT_EQ(out.commit_ts, 1234567u);
  ASSERT_EQ(out.redo.size(), 2u);
  EXPECT_EQ(out.redo[0].table, 7u);
  EXPECT_EQ(out.redo[0].key, "alice");
  EXPECT_EQ(out.redo[0].value, r.redo[0].value);
  EXPECT_FALSE(out.redo[0].tombstone);
  EXPECT_EQ(out.redo[1].key, "bob");
  EXPECT_TRUE(out.redo[1].tombstone);
}

TEST(LogRecordTest, TableCreateRoundTrip) {
  LogRecord r;
  r.type = LogRecordType::kTableCreate;
  r.redo.push_back(RedoEntry{3, "accounts", "", false});
  LogRecord out;
  ASSERT_TRUE(LogRecord::Decode(r.Encode(), &out).ok());
  EXPECT_EQ(out.type, LogRecordType::kTableCreate);
  ASSERT_EQ(out.redo.size(), 1u);
  EXPECT_EQ(out.redo[0].table, 3u);
  EXPECT_EQ(out.redo[0].key, "accounts");
}

// --- The corruption modes the recovery tail-scan distinguishes. ---

LogRecord SampleRecord() {
  LogRecord r;
  r.txn_id = 11;
  r.commit_ts = 22;
  r.redo.push_back(RedoEntry{1, "key", "value", false});
  return r;
}

TEST(LogRecordTest, DecodeShortHeaderIsTruncated) {
  // Fewer than the 8 header bytes: the torn-tail shape when the crash hit
  // inside the frame header.
  LogRecord out;
  EXPECT_TRUE(LogRecord::Decode("", &out).IsTruncated());
  EXPECT_TRUE(LogRecord::Decode("abc", &out).IsTruncated());
  const std::string frame = SampleRecord().Encode();
  EXPECT_TRUE(LogRecord::Decode(Slice(frame.data(), 7), &out).IsTruncated());
}

TEST(LogRecordTest, DecodeShortBodyIsTruncated) {
  // Header intact but the body stops early: torn mid-record.
  const std::string frame = SampleRecord().Encode();
  LogRecord out;
  for (size_t cut = 8; cut < frame.size(); ++cut) {
    EXPECT_TRUE(LogRecord::Decode(Slice(frame.data(), cut), &out)
                    .IsTruncated())
        << "cut at " << cut;
  }
}

TEST(LogRecordTest, DecodeBitFlipIsCorruption) {
  // Any damaged byte in a complete frame must fail the CRC, not parse.
  const std::string frame = SampleRecord().Encode();
  LogRecord out;
  for (size_t i = 8; i < frame.size(); ++i) {
    std::string bad = frame;
    bad[i] = static_cast<char>(bad[i] ^ 0x40);
    EXPECT_TRUE(LogRecord::Decode(bad, &out).IsCorruption())
        << "flip at " << i;
  }
}

TEST(LogRecordTest, DecodeImplausibleLengthIsCorruption) {
  // A huge frame length must be rejected before it drives an allocation
  // (a damaged length field would otherwise read as "truncated" forever).
  std::string bad;
  PutBig32(&bad, 0);            // crc (never checked: length bails first)
  PutBig32(&bad, 0x7fffffffu);  // body length ~2 GiB
  LogRecord out;
  EXPECT_TRUE(LogRecord::Decode(bad, &out).IsCorruption());
}

TEST(LogRecordTest, DecodeValidCrcMalformedBodyIsCorruption) {
  // A structurally bad body behind a *valid* CRC (an encoder bug or
  // deliberate tamper) is corruption, not truncation: redo_count promises
  // more entries than the body holds.
  std::string body;
  body.push_back(0);        // type kCommit
  PutBig64(&body, 1);       // txn_id
  PutBig64(&body, 2);       // commit_ts
  PutBig32(&body, 5);       // redo_count: lies
  std::string frame;
  PutBig32(&frame, Crc32c(body));
  PutBig32(&frame, static_cast<uint32_t>(body.size()));
  frame += body;
  LogRecord out;
  EXPECT_TRUE(LogRecord::Decode(frame, &out).IsCorruption());
}

TEST(LogRecordTest, DecodeUnknownTypeIsCorruption) {
  std::string body;
  body.push_back(9);  // no such record type
  PutBig64(&body, 1);
  PutBig64(&body, 2);
  PutBig32(&body, 0);
  std::string frame;
  PutBig32(&frame, Crc32c(body));
  PutBig32(&frame, static_cast<uint32_t>(body.size()));
  frame += body;
  LogRecord out;
  EXPECT_TRUE(LogRecord::Decode(frame, &out).IsCorruption());
}

TEST(LogRecordTest, DecodeFromAdvancesAcrossFrames) {
  LogRecord a = SampleRecord();
  LogRecord b = SampleRecord();
  b.txn_id = 99;
  const std::string stream = a.Encode() + b.Encode();
  size_t offset = 0;
  LogRecord out;
  ASSERT_TRUE(LogRecord::DecodeFrom(stream, &offset, &out).ok());
  EXPECT_EQ(out.txn_id, 11u);
  ASSERT_TRUE(LogRecord::DecodeFrom(stream, &offset, &out).ok());
  EXPECT_EQ(out.txn_id, 99u);
  EXPECT_EQ(offset, stream.size());
  // A truncated decode must not advance the offset.
  size_t torn_offset = 0;
  EXPECT_TRUE(LogRecord::DecodeFrom(Slice(stream.data(), 3), &torn_offset,
                                    &out)
                  .IsTruncated());
  EXPECT_EQ(torn_offset, 0u);
}

TEST(LogManagerTest, AppendAssignsMonotonicLsns) {
  LogOptions opts;
  LogManager log(opts);
  LogRecord r;
  r.txn_id = 1;
  const Lsn a = log.Append(r);
  const Lsn b = log.Append(r);
  EXPECT_LT(a, b);
  EXPECT_EQ(log.appended_records(), 2u);
}

TEST(LogManagerTest, NoFlushModeNeverBlocks) {
  LogOptions opts;
  opts.flush_on_commit = false;
  opts.flush_latency_us = 1000000;  // Would hurt if waited on.
  LogManager log(opts);
  LogRecord r;
  r.txn_id = 1;
  const auto start = std::chrono::steady_clock::now();
  const Lsn lsn = log.Append(r);
  log.WaitFlushed(lsn);  // Must return immediately.
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_LT(elapsed, std::chrono::milliseconds(100));
}

TEST(LogManagerTest, FlushModeWaitsForLatency) {
  LogOptions opts;
  opts.flush_on_commit = true;
  opts.flush_latency_us = 20000;  // 20ms.
  LogManager log(opts);
  LogRecord r;
  r.txn_id = 1;
  const auto start = std::chrono::steady_clock::now();
  const Lsn lsn = log.Append(r);
  log.WaitFlushed(lsn);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_GE(elapsed, std::chrono::milliseconds(15));
  EXPECT_GE(log.flush_batches(), 1u);
}

TEST(LogManagerTest, GroupCommitBatchesConcurrentCommitters) {
  // N threads appending concurrently should need far fewer flush batches
  // than N — the amortization that makes Fig 6.2 throughput climb with MPL.
  LogOptions opts;
  opts.flush_on_commit = true;
  opts.flush_latency_us = 10000;
  LogManager log(opts);
  constexpr int kThreads = 16;
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&log, i] {
      LogRecord r;
      r.txn_id = static_cast<TxnId>(i + 1);
      const Lsn lsn = log.Append(r);
      log.WaitFlushed(lsn);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(log.appended_records(), 16u);
  EXPECT_LE(log.flush_batches(), 8u);  // Batching happened.
}

TEST(LogManagerTest, RetainedRecordsDecodable) {
  LogOptions opts;
  LogManager log(opts);
  log.set_retain(true);
  LogRecord r;
  r.txn_id = 7;
  r.commit_ts = 9;
  r.redo.push_back(RedoEntry{0, "k", "p", false});
  log.Append(r);
  auto records = log.RetainedRecords();
  ASSERT_EQ(records.size(), 1u);
  LogRecord out;
  ASSERT_TRUE(LogRecord::Decode(records[0], &out).ok());
  EXPECT_EQ(out.txn_id, 7u);
}

TEST(LogIntegrationTest, CommitWritesOneRecordPerUpdateTxn) {
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open({}, &db).ok());
  TableId t = 0;
  ASSERT_TRUE(db->CreateTable("t", &t).ok());
  for (int i = 0; i < 3; ++i) {
    auto txn = db->Begin({IsolationLevel::kSnapshot});
    ASSERT_TRUE(txn->Put(t, "k" + std::to_string(i), "v").ok());
    ASSERT_TRUE(txn->Commit().ok());
  }
  EXPECT_EQ(db->GetStats().log_records, 3u);
}

TEST(LogIntegrationTest, ReadOnlyCommitAppendsNoRecord) {
  // Read-only transactions have nothing to redo: logging them would cost
  // a group-commit flush wait (a real fsync in durable mode) and
  // permanent WAL bytes for a no-op record.
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open({}, &db).ok());
  TableId t = 0;
  ASSERT_TRUE(db->CreateTable("t", &t).ok());
  {
    auto txn = db->Begin({IsolationLevel::kSnapshot});
    ASSERT_TRUE(txn->Put(t, "k", "v").ok());
    ASSERT_TRUE(txn->Commit().ok());
  }
  const uint64_t after_write = db->GetStats().log_records;
  EXPECT_EQ(after_write, 1u);
  for (auto iso : {IsolationLevel::kSnapshot,
                   IsolationLevel::kSerializableSSI,
                   IsolationLevel::kSerializable2PL}) {
    auto txn = db->Begin({iso});
    std::string v;
    ASSERT_TRUE(txn->Get(t, "k", &v).ok());
    ASSERT_TRUE(txn->Commit().ok());
  }
  EXPECT_EQ(db->GetStats().log_records, after_write);
}

TEST(LogIntegrationTest, FlushOnCommitSlowsCommitsDown) {
  DBOptions opts;
  opts.log.flush_on_commit = true;
  opts.log.flush_latency_us = 10000;  // 10ms/commit when alone.
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(opts, &db).ok());
  TableId t = 0;
  ASSERT_TRUE(db->CreateTable("t", &t).ok());
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < 3; ++i) {
    auto txn = db->Begin({IsolationLevel::kSnapshot});
    ASSERT_TRUE(txn->Put(t, "k", "v").ok());
    ASSERT_TRUE(txn->Commit().ok());
  }
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_GE(elapsed, std::chrono::milliseconds(25));
}

TEST(LogIntegrationTest, EarlyLockReleaseShortensLockWaits) {
  // §4.4: InnoDB originally released locks *before* the commit flush,
  // shortening lock hold times by the flush latency. Measure how long a
  // conflicting writer waits for the lock under both orderings.
  auto measure_wait_ms = [](bool early_release) {
    DBOptions opts;
    opts.log.flush_on_commit = true;
    opts.log.flush_latency_us = 50000;  // 50ms.
    opts.log.early_lock_release = early_release;
    std::unique_ptr<DB> db;
    EXPECT_TRUE(DB::Open(opts, &db).ok());
    TableId t = 0;
    EXPECT_TRUE(db->CreateTable("t", &t).ok());
    {
      auto seed = db->Begin({IsolationLevel::kSnapshot});
      EXPECT_TRUE(seed->Put(t, "k", "0").ok());
      EXPECT_TRUE(seed->Commit().ok());
    }
    auto t1_txn = db->Begin({IsolationLevel::kSnapshot});
    EXPECT_TRUE(t1_txn->Put(t, "k", "1").ok());  // Holds the lock.
    std::thread committer([&t1_txn] { EXPECT_TRUE(t1_txn->Commit().ok()); });
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    auto txn2 = db->Begin({IsolationLevel::kSnapshot});
    const auto start = std::chrono::steady_clock::now();
    Status s = txn2->Put(t, "k", "2");  // Blocks until t1 releases.
    const double wait_ms = std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now() - start)
                               .count();
    EXPECT_TRUE(s.ok()) << s.ToString();
    EXPECT_TRUE(txn2->Commit().ok());
    committer.join();
    return wait_ms;
  };
  // Early release: the lock frees as soon as the commit record is
  // appended, long before the 50ms flush completes.
  EXPECT_LT(measure_wait_ms(true), 40.0);
  // Default ordering: the waiter sits out (most of) the flush.
  EXPECT_GT(measure_wait_ms(false), 30.0);
}

}  // namespace
}  // namespace ssidb
