// Write-ahead log tests: record format, group commit batching, the
// flush-on-commit regimes of §6.1.2/§6.1.3 and the §4.4 early-lock-release
// ablation.

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "src/db/db.h"
#include "src/txn/log_manager.h"

namespace ssidb {
namespace {

TEST(LogRecordTest, EncodeDecodeRoundTrip) {
  LogRecord r;
  r.txn_id = 42;
  r.commit_ts = 1234567;
  r.payload = std::string("redo\0blob", 9);
  LogRecord out;
  ASSERT_TRUE(LogRecord::Decode(r.Encode(), &out));
  EXPECT_EQ(out.txn_id, 42u);
  EXPECT_EQ(out.commit_ts, 1234567u);
  EXPECT_EQ(out.payload, r.payload);
}

TEST(LogRecordTest, DecodeRejectsGarbage) {
  LogRecord out;
  EXPECT_FALSE(LogRecord::Decode("", &out));
  EXPECT_FALSE(LogRecord::Decode("abc", &out));
}

TEST(LogManagerTest, AppendAssignsMonotonicLsns) {
  LogOptions opts;
  LogManager log(opts);
  LogRecord r;
  r.txn_id = 1;
  const Lsn a = log.Append(r);
  const Lsn b = log.Append(r);
  EXPECT_LT(a, b);
  EXPECT_EQ(log.appended_records(), 2u);
}

TEST(LogManagerTest, NoFlushModeNeverBlocks) {
  LogOptions opts;
  opts.flush_on_commit = false;
  opts.flush_latency_us = 1000000;  // Would hurt if waited on.
  LogManager log(opts);
  LogRecord r;
  r.txn_id = 1;
  const auto start = std::chrono::steady_clock::now();
  const Lsn lsn = log.Append(r);
  log.WaitFlushed(lsn);  // Must return immediately.
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_LT(elapsed, std::chrono::milliseconds(100));
}

TEST(LogManagerTest, FlushModeWaitsForLatency) {
  LogOptions opts;
  opts.flush_on_commit = true;
  opts.flush_latency_us = 20000;  // 20ms.
  LogManager log(opts);
  LogRecord r;
  r.txn_id = 1;
  const auto start = std::chrono::steady_clock::now();
  const Lsn lsn = log.Append(r);
  log.WaitFlushed(lsn);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_GE(elapsed, std::chrono::milliseconds(15));
  EXPECT_GE(log.flush_batches(), 1u);
}

TEST(LogManagerTest, GroupCommitBatchesConcurrentCommitters) {
  // N threads appending concurrently should need far fewer flush batches
  // than N — the amortization that makes Fig 6.2 throughput climb with MPL.
  LogOptions opts;
  opts.flush_on_commit = true;
  opts.flush_latency_us = 10000;
  LogManager log(opts);
  constexpr int kThreads = 16;
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&log, i] {
      LogRecord r;
      r.txn_id = static_cast<TxnId>(i + 1);
      const Lsn lsn = log.Append(r);
      log.WaitFlushed(lsn);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(log.appended_records(), 16u);
  EXPECT_LE(log.flush_batches(), 8u);  // Batching happened.
}

TEST(LogManagerTest, RetainedRecordsDecodable) {
  LogOptions opts;
  LogManager log(opts);
  log.set_retain(true);
  LogRecord r;
  r.txn_id = 7;
  r.commit_ts = 9;
  r.payload = "p";
  log.Append(r);
  auto records = log.RetainedRecords();
  ASSERT_EQ(records.size(), 1u);
  LogRecord out;
  ASSERT_TRUE(LogRecord::Decode(records[0], &out));
  EXPECT_EQ(out.txn_id, 7u);
}

TEST(LogIntegrationTest, CommitWritesOneRecordPerUpdateTxn) {
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open({}, &db).ok());
  TableId t = 0;
  ASSERT_TRUE(db->CreateTable("t", &t).ok());
  for (int i = 0; i < 3; ++i) {
    auto txn = db->Begin({IsolationLevel::kSnapshot});
    ASSERT_TRUE(txn->Put(t, "k" + std::to_string(i), "v").ok());
    ASSERT_TRUE(txn->Commit().ok());
  }
  EXPECT_EQ(db->GetStats().log_records, 3u);
}

TEST(LogIntegrationTest, FlushOnCommitSlowsCommitsDown) {
  DBOptions opts;
  opts.log.flush_on_commit = true;
  opts.log.flush_latency_us = 10000;  // 10ms/commit when alone.
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(opts, &db).ok());
  TableId t = 0;
  ASSERT_TRUE(db->CreateTable("t", &t).ok());
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < 3; ++i) {
    auto txn = db->Begin({IsolationLevel::kSnapshot});
    ASSERT_TRUE(txn->Put(t, "k", "v").ok());
    ASSERT_TRUE(txn->Commit().ok());
  }
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_GE(elapsed, std::chrono::milliseconds(25));
}

TEST(LogIntegrationTest, EarlyLockReleaseShortensLockWaits) {
  // §4.4: InnoDB originally released locks *before* the commit flush,
  // shortening lock hold times by the flush latency. Measure how long a
  // conflicting writer waits for the lock under both orderings.
  auto measure_wait_ms = [](bool early_release) {
    DBOptions opts;
    opts.log.flush_on_commit = true;
    opts.log.flush_latency_us = 50000;  // 50ms.
    opts.log.early_lock_release = early_release;
    std::unique_ptr<DB> db;
    EXPECT_TRUE(DB::Open(opts, &db).ok());
    TableId t = 0;
    EXPECT_TRUE(db->CreateTable("t", &t).ok());
    {
      auto seed = db->Begin({IsolationLevel::kSnapshot});
      EXPECT_TRUE(seed->Put(t, "k", "0").ok());
      EXPECT_TRUE(seed->Commit().ok());
    }
    auto t1_txn = db->Begin({IsolationLevel::kSnapshot});
    EXPECT_TRUE(t1_txn->Put(t, "k", "1").ok());  // Holds the lock.
    std::thread committer([&t1_txn] { EXPECT_TRUE(t1_txn->Commit().ok()); });
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    auto txn2 = db->Begin({IsolationLevel::kSnapshot});
    const auto start = std::chrono::steady_clock::now();
    Status s = txn2->Put(t, "k", "2");  // Blocks until t1 releases.
    const double wait_ms = std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now() - start)
                               .count();
    EXPECT_TRUE(s.ok()) << s.ToString();
    EXPECT_TRUE(txn2->Commit().ok());
    committer.join();
    return wait_ms;
  };
  // Early release: the lock frees as soon as the commit record is
  // appended, long before the 50ms flush completes.
  EXPECT_LT(measure_wait_ms(true), 40.0);
  // Default ordering: the waiter sits out (most of) the flush.
  EXPECT_GT(measure_wait_ms(false), 30.0);
}

}  // namespace
}  // namespace ssidb
