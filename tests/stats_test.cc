// DBStats consistency contract (db.h): every counter is individually
// coherent and GetStats() may be called from any thread at any time,
// including while the engine is under full concurrent load. These tests
// hammer the engine from worker threads while a sampler thread reads
// stats continuously — under ThreadSanitizer this proves the counters are
// race-free now that no global system mutex orders them — and then check
// the quiesced totals against ground truth.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "src/common/encoding.h"
#include "src/common/epoch.h"
#include "src/common/random.h"
#include "src/db/db.h"
#include "tests/test_util.h"

namespace ssidb {
namespace {

TEST(StatsTest, SamplingUnderConcurrentLoadIsCoherent) {
  DBOptions opts;
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(opts, &db).ok());
  TableId table = 0;
  ASSERT_TRUE(db->CreateTable("t", &table).ok());
  constexpr uint64_t kKeys = 64;
  {
    auto seed = db->Begin({IsolationLevel::kSnapshot});
    for (uint64_t i = 0; i < kKeys; ++i) {
      ASSERT_TRUE(seed->Insert(table, EncodeU64Key(i), "0").ok());
    }
    ASSERT_TRUE(seed->Commit().ok());
  }

  constexpr int kWorkers = 4;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> committed{0};

  std::vector<std::thread> workers;
  for (int w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&, w] {
      Random rng(static_cast<uint64_t>(w) * 7919 + 1);
      while (!stop.load(std::memory_order_relaxed)) {
        auto txn = db->Begin({IsolationLevel::kSerializableSSI});
        const std::string key = EncodeU64Key(rng.Uniform(kKeys));
        std::string value;
        txn->Get(table, key, &value);
        txn->Put(table, key, "x");
        if (txn->Commit().ok()) {
          committed.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  // The sampler races GetStats against the workers: the assertions here
  // only use per-counter coherence (no cross-counter relation), which is
  // exactly what the contract promises.
  std::thread sampler([&] {
    uint64_t samples = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      DBStats s = db->GetStats();
      EXPECT_LE(s.active_txns, kWorkers + 1u);
      ++samples;
    }
    EXPECT_GT(samples, 0u);
  });

  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  stop.store(true);
  for (auto& t : workers) t.join();
  sampler.join();

  // Quiesced: totals must match ground truth exactly.
  DBStats s = db->GetStats();
  EXPECT_EQ(s.active_txns, 0u);
  // Every successful commit (including the seed load) appended one record.
  EXPECT_EQ(s.log_records, committed.load() + 1);
  EXPECT_GT(committed.load(), 0u);
}

TEST(StatsTest, GrantCountTracksLiveGrantsExactly) {
  DBOptions opts;
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(opts, &db).ok());
  TableId table = 0;
  ASSERT_TRUE(db->CreateTable("t", &table).ok());

  EXPECT_EQ(db->GetStats().lock_grants, 0u);
  {
    auto txn = db->Begin({IsolationLevel::kSerializable2PL});
    std::string v;
    txn->Get(table, "a", &v);            // kShared on row "a".
    txn->Put(table, "b", "1");           // kExclusive row + gap.
    EXPECT_GT(db->GetStats().lock_grants, 0u);
    ASSERT_TRUE(txn->Commit().ok());
  }
  // S2PL releases everything at commit; nothing is retained.
  EXPECT_EQ(db->GetStats().lock_grants, 0u);

  // An SSI reader's SIREAD locks are retained past commit (suspension,
  // §3.3) while a concurrent transaction overlaps it.
  auto overlap = db->Begin({IsolationLevel::kSerializableSSI});
  std::string v;
  overlap->Get(table, "b", &v);  // Assigns overlap's snapshot.
  // Watermark past overlap's snapshot so the reader's read-only commit
  // timestamp (the watermark) makes them genuinely concurrent.
  BumpWatermark(db.get(), table);
  auto reader = db->Begin({IsolationLevel::kSerializableSSI});
  reader->Get(table, "b", &v);
  ASSERT_TRUE(reader->Commit().ok());
  EXPECT_GT(db->GetStats().lock_grants, 0u);
  EXPECT_EQ(db->GetStats().suspended_txns, 1u);
  ASSERT_TRUE(overlap->Commit().ok());
  // Cleanup released the suspended reader's retained SIREAD locks.
  EXPECT_EQ(db->GetStats().lock_grants, 0u);
  EXPECT_EQ(db->GetStats().suspended_txns, 0u);
}

/// Counter monotonicity under load: sampled values of cumulative counters
/// never go backwards (each is a single relaxed atomic, so torn or
/// regressing reads would indicate a real bug).
TEST(StatsTest, CumulativeCountersAreMonotonicUnderLoad) {
  DBOptions opts;
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(opts, &db).ok());
  TableId table = 0;
  ASSERT_TRUE(db->CreateTable("t", &table).ok());

  std::atomic<bool> stop{false};
  std::vector<std::thread> workers;
  for (int w = 0; w < 3; ++w) {
    workers.emplace_back([&, w] {
      Random rng(static_cast<uint64_t>(w) + 42);
      while (!stop.load(std::memory_order_relaxed)) {
        // Force write-write conflicts on a tiny keyspace so deadlock /
        // unsafe / wait counters actually move.
        auto txn = db->Begin({IsolationLevel::kSerializableSSI});
        std::string value;
        txn->Get(table, EncodeU64Key(rng.Uniform(2)), &value);
        txn->Put(table, EncodeU64Key(rng.Uniform(2)), "x");
        txn->Commit();
      }
    });
  }

  uint64_t last_log = 0, last_unsafe = 0, last_deadlocks = 0, last_waits = 0;
  uint64_t last_by_reason[kAbortReasonCount] = {};
  for (int i = 0; i < 2000; ++i) {
    DBStats s = db->GetStats();
    EXPECT_GE(s.log_records, last_log);
    EXPECT_GE(s.unsafe_aborts, last_unsafe);
    EXPECT_GE(s.deadlocks, last_deadlocks);
    EXPECT_GE(s.lock_waits, last_waits);
    last_log = s.log_records;
    last_unsafe = s.unsafe_aborts;
    last_deadlocks = s.deadlocks;
    last_waits = s.lock_waits;
    // The abort taxonomy is cumulative too: each per-reason counter is a
    // single relaxed atomic bumped exactly once per abort, so sampled
    // values never regress either.
    for (size_t r = 0; r < kAbortReasonCount; ++r) {
      EXPECT_GE(s.aborts.by_reason[r], last_by_reason[r])
          << AbortReasonName(static_cast<AbortReason>(r));
      last_by_reason[r] = s.aborts.by_reason[r];
    }
  }
  stop.store(true);
  for (auto& t : workers) t.join();

  // Quiesced cross-check: SSI-classified aborts are bounded by the flat
  // unsafe counter (which counts detected dangerous structures; a victim
  // carrying an earlier cause, or a structure detected twice against the
  // same victim, makes the taxonomy side strictly smaller).
  DBStats s = db->GetStats();
  const uint64_t ssi_classified =
      s.aborts.Count(AbortReason::kSsiPivot) +
      s.aborts.Count(AbortReason::kSsiInSide) +
      s.aborts.Count(AbortReason::kSsiOutSide);
  EXPECT_LE(ssi_classified, s.unsafe_aborts);
}

/// Commit-pipeline counters (the lock-free commit-slot ring): folded into
/// DBStats, cumulative ones monotonic under sampling, and the window-depth
/// high-water mark reflects real concurrency.
TEST(StatsTest, CommitPipelineCountersFoldAndStayMonotonic) {
  DBOptions opts;
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(opts, &db).ok());
  TableId table = 0;
  ASSERT_TRUE(db->CreateTable("t", &table).ok());

  // Quiet engine: nothing waited, nothing woke, nothing stalled.
  DBStats s0 = db->GetStats();
  EXPECT_EQ(s0.commit_waits, 0u);
  EXPECT_EQ(s0.commit_wakeups, 0u);
  EXPECT_EQ(s0.ring_full_stalls, 0u);

  std::atomic<int> done{0};
  std::vector<std::thread> workers;
  for (int w = 0; w < 4; ++w) {
    workers.emplace_back([&, w] {
      Random rng(static_cast<uint64_t>(w) * 31 + 7);
      for (int i = 0; i < 500; ++i) {
        auto txn = db->Begin({IsolationLevel::kSnapshot});
        txn->Put(table, EncodeU64Key(rng.Uniform(256)), "x");
        txn->Commit();
      }
      done.fetch_add(1, std::memory_order_relaxed);
    });
  }

  // Sample while the workers run (fixed work, so commits are guaranteed
  // to have happened by the final check even on a single-core host).
  uint64_t last_waits = 0, last_wakeups = 0, last_stalls = 0;
  while (done.load(std::memory_order_relaxed) < 4) {
    DBStats s = db->GetStats();
    EXPECT_GE(s.commit_waits, last_waits);
    EXPECT_GE(s.commit_wakeups, last_wakeups);
    EXPECT_GE(s.ring_full_stalls, last_stalls);
    last_waits = s.commit_waits;
    last_wakeups = s.commit_wakeups;
    last_stalls = s.ring_full_stalls;
  }
  for (auto& t : workers) t.join();

  DBStats s1 = db->GetStats();
  // Every writing commit entered the window: the depth watermark is live.
  EXPECT_GE(s1.max_commit_window_depth, 1u);
  // The default 4096-slot ring cannot backpressure 4 writers.
  EXPECT_EQ(s1.ring_full_stalls, 0u);
}

/// Certification-stage counters: the conflict-free fast path and the
/// combiner are mutually exclusive classifications of an SSI commit, and
/// DBStats must attribute each commit to exactly one of them.
TEST(StatsTest, CertificationCountersSplitFastPathFromCombining) {
  DBOptions opts;
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(opts, &db).ok());
  TableId table = 0;
  ASSERT_TRUE(db->CreateTable("t", &table).ok());
  {
    // SI seeding never touches the certification stage (no commit check).
    auto seed = db->Begin({IsolationLevel::kSnapshot});
    ASSERT_TRUE(seed->Put(table, "x", "0").ok());
    ASSERT_TRUE(seed->Put(table, "y", "0").ok());
    ASSERT_TRUE(seed->Commit().ok());
    EXPECT_EQ(db->GetStats().commit_fastpath, 0u);
  }

  // A lone SSI writer has no conflict state: fast path, never combined.
  {
    auto t = db->Begin({IsolationLevel::kSerializableSSI});
    ASSERT_TRUE(t->Put(table, "x", "1").ok());
    ASSERT_TRUE(t->Commit().ok());
  }
  DBStats s0 = db->GetStats();
  EXPECT_EQ(s0.commit_fastpath, 1u);
  EXPECT_EQ(s0.commit_combined_txns, 0u);
  EXPECT_EQ(s0.commit_combine_batches, 0u);
  EXPECT_EQ(s0.commit_max_batch, 0u);

  // A write-skew pair: both transactions carry rw-antidependency state at
  // commit, so both must go through the combiner (whatever the verdicts).
  {
    auto t1 = db->Begin({IsolationLevel::kSerializableSSI});
    auto t2 = db->Begin({IsolationLevel::kSerializableSSI});
    std::string v;
    ASSERT_TRUE(t1->Get(table, "x", &v).ok());
    ASSERT_TRUE(t1->Get(table, "y", &v).ok());
    ASSERT_TRUE(t2->Get(table, "x", &v).ok());
    ASSERT_TRUE(t2->Get(table, "y", &v).ok());
    ASSERT_TRUE(t1->Put(table, "x", "1").ok());
    ASSERT_TRUE(t2->Put(table, "y", "1").ok());
    t1->Commit();  // Verdicts may differ by tracking mode; the
    t2->Commit();  // classification must not.
  }
  DBStats s1 = db->GetStats();
  EXPECT_EQ(s1.commit_fastpath, 1u);  // Unchanged: neither took it.
  EXPECT_GE(s1.commit_combined_txns, 1u);
  EXPECT_GE(s1.commit_combine_batches, 1u);
  EXPECT_LE(s1.commit_combine_batches, s1.commit_combined_txns);
  EXPECT_GE(s1.commit_max_batch, 1u);
  EXPECT_LE(s1.commit_max_batch, s1.commit_combined_txns);
}

/// The commit_ring_slots knob reaches the pipeline: a tiny ring under
/// concurrent writers still drains correctly (and records any stalls it
/// took doing so).
TEST(StatsTest, TinyCommitRingStillDrains) {
  DBOptions opts;
  opts.commit_ring_slots = 2;
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(opts, &db).ok());
  TableId table = 0;
  ASSERT_TRUE(db->CreateTable("t", &table).ok());

  std::atomic<uint64_t> committed{0};
  std::vector<std::thread> workers;
  for (int w = 0; w < 4; ++w) {
    workers.emplace_back([&, w] {
      Random rng(static_cast<uint64_t>(w) * 131 + 11);
      for (int i = 0; i < 300; ++i) {
        auto txn = db->Begin({IsolationLevel::kSnapshot});
        txn->Put(table, EncodeU64Key(w * 1000 + i), "x");
        if (txn->Commit().ok()) {
          committed.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& t : workers) t.join();
  EXPECT_EQ(committed.load(), 1200u);  // Disjoint keys: nothing aborts.
  DBStats s = db->GetStats();
  EXPECT_EQ(s.active_txns, 0u);
  // The in-flight window is bounded by the concurrent writer count (each
  // thread has at most one allocated-but-unstamped commit).
  EXPECT_LE(s.max_commit_window_depth, 4u);
}

/// The commit-ack waiter shards are sized from the runtime core topology
/// (ROADMAP item 3 leftover), floored at the previous fixed constant so
/// small machines keep the old footprint.
TEST(StatsTest, CommitAckWaiterShardsAreTopologySized) {
  DBOptions opts;
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(opts, &db).ok());
  const uint64_t shards = db->txn_manager()->commit_waiter_shards();
  EXPECT_EQ(shards, TopologyShards(/*floor=*/16));
  EXPECT_GE(shards, 16u);
  EXPECT_EQ(shards & (shards - 1), 0u) << "must be a power of two";
}

/// Disk-tier counters: all six stay zero while the tier is disabled, and a
/// spill/fault round trip moves each of them through DBStats.
TEST(StatsTest, DiskTierCountersFoldIntoStats) {
  {
    // Memory-only engine: the tier never initializes, counters stay 0.
    std::unique_ptr<DB> db;
    ASSERT_TRUE(DB::Open({}, &db).ok());
    TableId table = 0;
    ASSERT_TRUE(db->CreateTable("t", &table).ok());
    auto txn = db->Begin({IsolationLevel::kSnapshot});
    ASSERT_TRUE(txn->Put(table, "k", "v").ok());
    ASSERT_TRUE(txn->Commit().ok());
    EXPECT_EQ(db->SpillChains(table), 0u);
    DBStats s = db->GetStats();
    EXPECT_EQ(s.buffer_pool_hits, 0u);
    EXPECT_EQ(s.buffer_pool_misses, 0u);
    EXPECT_EQ(s.buffer_pool_evictions, 0u);
    EXPECT_EQ(s.buffer_pool_writebacks, 0u);
    EXPECT_EQ(s.spilled_chains, 0u);
    EXPECT_EQ(s.faulted_chains, 0u);
  }

  ScratchDir dir;
  DBOptions opts;
  opts.buffer_pool_bytes = 1 << 16;
  opts.run_page_bytes = 4096;
  opts.data_dir = dir.path;
  // Background sweeps would race the explicit SpillChains calls below and
  // blur the exact counter expectations.
  opts.version_gc_interval_ms = 0;
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(opts, &db).ok());
  TableId table = 0;
  ASSERT_TRUE(db->CreateTable("t", &table).ok());
  constexpr uint64_t kKeys = 32;
  {
    auto txn = db->Begin({IsolationLevel::kSnapshot});
    for (uint64_t i = 0; i < kKeys; ++i) {
      ASSERT_TRUE(txn->Put(table, EncodeU64Key(i), "v").ok());
    }
    ASSERT_TRUE(txn->Commit().ok());
  }
  // First sweep clears the clock bits, second evicts (second chance).
  EXPECT_EQ(db->SpillChains(table), 0u);
  EXPECT_EQ(db->SpillChains(table), kKeys);
  {
    auto txn = db->Begin({IsolationLevel::kSnapshot});
    std::string v;
    for (uint64_t i = 0; i < kKeys; ++i) {
      ASSERT_TRUE(txn->Get(table, EncodeU64Key(i), &v).ok());
      EXPECT_EQ(v, "v");
    }
    ASSERT_TRUE(txn->Commit().ok());
  }
  DBStats s = db->GetStats();
  EXPECT_EQ(s.spilled_chains, kKeys);
  EXPECT_EQ(s.faulted_chains, kKeys);
  // The run writer warms its own pages, so faults hit; the page reads all
  // went through the pool either way.
  EXPECT_GT(s.buffer_pool_hits + s.buffer_pool_misses, 0u);
  // Dirty run pages were written back by RunFile::Create's flush.
  EXPECT_GT(s.buffer_pool_writebacks, 0u);
}

}  // namespace
}  // namespace ssidb
