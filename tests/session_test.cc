// The session layer: handle-keyed multiplexing of many open transactions
// on few threads (src/db/session.h). Covers handle lifecycle (begin /
// retire / unknown-handle rejection), snapshot isolation between handles
// of one session, abort reaping, destructor cleanup, and the thousands-
// open-on-one-thread shape the layer exists for.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/common/encoding.h"
#include "src/db/db.h"
#include "src/db/session.h"

namespace ssidb {
namespace {

struct SessionTest : public ::testing::Test {
  void SetUp() override {
    ASSERT_TRUE(DB::Open(DBOptions{}, &db).ok());
    ASSERT_TRUE(db->CreateTable("t", &table).ok());
  }
  std::unique_ptr<DB> db;
  TableId table = 0;
};

TEST_F(SessionTest, ThousandsOpenOnOneThread) {
  // The point of the layer: one thread holds thousands of transactions
  // open simultaneously — impossible with one Transaction object + one
  // parked thread each — then drives them all to commit.
  constexpr uint64_t kOpen = 2000;
  auto session = db->CreateSession();
  std::vector<TxnHandle> handles;
  handles.reserve(kOpen);
  for (uint64_t i = 0; i < kOpen; ++i) {
    const TxnHandle h = session->Begin({IsolationLevel::kSnapshot});
    ASSERT_NE(h, 0u);
    // Disjoint keys: no write-write conflicts, every commit must succeed.
    ASSERT_TRUE(
        session->Put(h, table, EncodeU64Key(i), EncodeU64Key(i)).ok());
    handles.push_back(h);
  }
  EXPECT_EQ(session->open_transactions(), kOpen);
  for (const TxnHandle h : handles) {
    ASSERT_TRUE(session->Commit(h).ok());
  }
  EXPECT_EQ(session->open_transactions(), 0u);
  auto check = db->Begin({IsolationLevel::kSnapshot});
  for (uint64_t i = 0; i < kOpen; ++i) {
    std::string v;
    ASSERT_TRUE(check->Get(table, EncodeU64Key(i), &v).ok()) << i;
    EXPECT_EQ(v, EncodeU64Key(i));
  }
  ASSERT_TRUE(check->Commit().ok());
}

TEST_F(SessionTest, HandlesAreIsolatedTransactions) {
  auto session = db->CreateSession();
  const TxnHandle a = session->Begin({IsolationLevel::kSnapshot});
  const TxnHandle b = session->Begin({IsolationLevel::kSnapshot});
  EXPECT_NE(session->id(a), session->id(b));
  // b snapshots before a's write commits: a's write must stay invisible
  // to b even though both live in the same session.
  std::string v;
  EXPECT_TRUE(session->Get(b, table, "k", &v).IsNotFound());
  ASSERT_TRUE(session->Put(a, table, "k", "from-a").ok());
  EXPECT_TRUE(session->Get(b, table, "k", &v).IsNotFound());
  ASSERT_TRUE(session->Commit(a).ok());
  EXPECT_TRUE(session->Get(b, table, "k", &v).IsNotFound());
  ASSERT_TRUE(session->Commit(b).ok());
}

TEST_F(SessionTest, UnknownHandleIsRejected) {
  auto session = db->CreateSession();
  std::string v;
  EXPECT_TRUE(session->Get(0, table, "k", &v).IsTxnInvalid());
  EXPECT_TRUE(session->Put(99, table, "k", "v").IsTxnInvalid());
  EXPECT_TRUE(session->Commit(99).IsTxnInvalid());
  EXPECT_TRUE(session->Abort(99).ok());  // Idempotent, like Transaction.
  EXPECT_EQ(session->id(99), 0u);
  EXPECT_EQ(session->snapshot_ts(99), 0u);
  // A retired handle behaves exactly like an unknown one.
  const TxnHandle h = session->Begin();
  ASSERT_TRUE(session->Commit(h).ok());
  EXPECT_TRUE(session->Put(h, table, "k", "v").IsTxnInvalid());
  EXPECT_TRUE(session->Commit(h).IsTxnInvalid());
  bool fired = false;
  session->CommitAsync(h, [&](Status st) {
    fired = true;
    EXPECT_TRUE(st.IsTxnInvalid());
  });
  EXPECT_TRUE(fired);
}

TEST_F(SessionTest, AbortStatusReapsTheHandle) {
  // First-committer-wins: h writes under a snapshot older than a
  // concurrent committed write of the same key, so the write aborts. The
  // session must reap the handle at that point — a pipelined client never
  // revisits a rolled-back transaction.
  auto session = db->CreateSession();
  const TxnHandle h = session->Begin({IsolationLevel::kSnapshot});
  std::string v;
  EXPECT_TRUE(session->Get(h, table, "k", &v).IsNotFound());  // Snapshot.
  {
    auto winner = db->Begin({IsolationLevel::kSnapshot});
    ASSERT_TRUE(winner->Put(table, "k", "winner").ok());
    ASSERT_TRUE(winner->Commit().ok());
  }
  const Status st = session->Put(h, table, "k", "loser");
  ASSERT_TRUE(st.IsAbort()) << st.ToString();
  EXPECT_EQ(session->open_transactions(), 0u);
  EXPECT_TRUE(session->Get(h, table, "k", &v).IsTxnInvalid());
}

TEST_F(SessionTest, ExplicitAbortRetiresAndReleases) {
  auto session = db->CreateSession();
  const TxnHandle h = session->Begin({IsolationLevel::kSnapshot});
  ASSERT_TRUE(session->Put(h, table, "k", "doomed").ok());
  ASSERT_TRUE(session->Abort(h).ok());
  EXPECT_EQ(session->open_transactions(), 0u);
  // The write rolled back and its lock is free for the next writer.
  auto t = db->Begin({IsolationLevel::kSnapshot});
  std::string v;
  EXPECT_TRUE(t->Get(table, "k", &v).IsNotFound());
  ASSERT_TRUE(t->Put(table, "k", "next").ok());
  ASSERT_TRUE(t->Commit().ok());
}

TEST_F(SessionTest, DestructorAbortsEverythingStillOpen) {
  {
    auto session = db->CreateSession();
    for (uint64_t i = 0; i < 16; ++i) {
      const TxnHandle h = session->Begin({IsolationLevel::kSnapshot});
      ASSERT_TRUE(
          session->Put(h, table, EncodeU64Key(i), "abandoned").ok());
    }
    EXPECT_EQ(session->open_transactions(), 16u);
  }
  // Every abandoned transaction rolled back: no registry residue, no
  // visible writes, no stuck locks.
  EXPECT_EQ(db->txn_manager()->active_count(), 0u);
  auto t = db->Begin({IsolationLevel::kSnapshot});
  for (uint64_t i = 0; i < 16; ++i) {
    std::string v;
    EXPECT_TRUE(t->Get(table, EncodeU64Key(i), &v).IsNotFound());
    ASSERT_TRUE(t->Put(table, EncodeU64Key(i), "mine").ok());
  }
  ASSERT_TRUE(t->Commit().ok());
}

TEST_F(SessionTest, OpenSessionGaugeTracksLifetimes) {
  EXPECT_EQ(db->sessions_open(), 0u);
  auto s1 = db->CreateSession();
  EXPECT_EQ(db->sessions_open(), 1u);
  {
    auto s2 = db->CreateSession();
    EXPECT_EQ(db->sessions_open(), 2u);
  }
  EXPECT_EQ(db->sessions_open(), 1u);
  s1.reset();
  EXPECT_EQ(db->sessions_open(), 0u);
}

TEST_F(SessionTest, SnapshotTsReportsTheLateSnapshot) {
  // §4.5 late snapshot through the session surface: unassigned until the
  // first statement runs.
  auto session = db->CreateSession();
  const TxnHandle h = session->Begin({IsolationLevel::kSerializableSSI});
  EXPECT_EQ(session->snapshot_ts(h), 0u);
  std::string v;
  (void)session->Get(h, table, "k", &v);
  EXPECT_GT(session->snapshot_ts(h), 0u);
  ASSERT_TRUE(session->Commit(h).ok());
}

TEST_F(SessionTest, ScanThroughTheSession) {
  {
    auto seed = db->Begin({IsolationLevel::kSnapshot});
    for (uint64_t i = 0; i < 10; ++i) {
      ASSERT_TRUE(seed->Put(table, EncodeU64Key(i), EncodeU64Key(i)).ok());
    }
    ASSERT_TRUE(seed->Commit().ok());
  }
  auto session = db->CreateSession();
  const TxnHandle h = session->Begin({IsolationLevel::kSerializableSSI});
  size_t count = 0;
  ASSERT_TRUE(session
                  ->Scan(h, table, EncodeU64Key(2), EncodeU64Key(7),
                         [&](Slice, Slice) {
                           ++count;
                           return true;
                         })
                  .ok());
  EXPECT_EQ(count, 6u);
  ASSERT_TRUE(session->Commit(h).ok());
}

}  // namespace
}  // namespace ssidb
