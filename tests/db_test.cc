// Public API tests: table management, CRUD, scans, transaction lifecycle,
// snapshot visibility, first-committer-wins, and engine statistics —
// exercised at all three isolation levels where behaviour is shared.

#include <gtest/gtest.h>

#include <memory>
#include <tuple>
#include <string>
#include <vector>

#include "src/db/db.h"
#include "tests/test_util.h"

namespace ssidb {
namespace {

std::unique_ptr<DB> OpenDB(DBOptions opts = {}) {
  std::unique_ptr<DB> db;
  Status s = DB::Open(opts, &db);
  EXPECT_TRUE(s.ok()) << s.ToString();
  return db;
}

class DBBasicTest : public ::testing::TestWithParam<
                        std::tuple<IsolationLevel, LockGranularity>> {
 protected:
  void SetUp() override {
    DBOptions opts;
    opts.granularity = std::get<1>(GetParam());
    db_ = OpenDB(opts);
    ASSERT_TRUE(db_->CreateTable("t", &table_).ok());
  }

  std::unique_ptr<Transaction> Begin() {
    return db_->Begin({std::get<0>(GetParam())});
  }

  std::unique_ptr<DB> db_;
  TableId table_ = 0;
};

TEST_P(DBBasicTest, PutGetRoundTrip) {
  auto txn = Begin();
  EXPECT_TRUE(txn->Put(table_, "k", "v").ok());
  std::string v;
  EXPECT_TRUE(txn->Get(table_, "k", &v).ok());
  EXPECT_EQ(v, "v");
  EXPECT_TRUE(txn->Commit().ok());

  auto txn2 = Begin();
  EXPECT_TRUE(txn2->Get(table_, "k", &v).ok());
  EXPECT_EQ(v, "v");
  EXPECT_TRUE(txn2->Commit().ok());
}

TEST_P(DBBasicTest, GetMissingKeyIsNotFound) {
  auto txn = Begin();
  std::string v;
  EXPECT_TRUE(txn->Get(table_, "nope", &v).IsNotFound());
  EXPECT_TRUE(txn->Commit().ok());
}

TEST_P(DBBasicTest, InsertRejectsDuplicates) {
  auto txn = Begin();
  EXPECT_TRUE(txn->Insert(table_, "k", "v1").ok());
  EXPECT_TRUE(txn->Insert(table_, "k", "v2").IsDuplicateKey());
  EXPECT_TRUE(txn->Commit().ok());
  auto txn2 = Begin();
  EXPECT_TRUE(txn2->Insert(table_, "k", "v3").IsDuplicateKey());
  txn2->Abort();
}

TEST_P(DBBasicTest, DeleteHidesKeyAndReinsertRevivesIt) {
  {
    auto txn = Begin();
    ASSERT_TRUE(txn->Put(table_, "k", "v").ok());
    ASSERT_TRUE(txn->Commit().ok());
  }
  {
    auto txn = Begin();
    EXPECT_TRUE(txn->Delete(table_, "k").ok());
    std::string v;
    EXPECT_TRUE(txn->Get(table_, "k", &v).IsNotFound());
    ASSERT_TRUE(txn->Commit().ok());
  }
  {
    auto txn = Begin();
    std::string v;
    EXPECT_TRUE(txn->Get(table_, "k", &v).IsNotFound());
    EXPECT_TRUE(txn->Insert(table_, "k", "v2").ok());  // Tombstone revival.
    ASSERT_TRUE(txn->Commit().ok());
  }
  auto txn = Begin();
  std::string v;
  EXPECT_TRUE(txn->Get(table_, "k", &v).ok());
  EXPECT_EQ(v, "v2");
  txn->Abort();
}

TEST_P(DBBasicTest, DeleteMissingKeyIsNotFound) {
  auto txn = Begin();
  EXPECT_TRUE(txn->Delete(table_, "nope").IsNotFound());
  EXPECT_TRUE(txn->Commit().ok());
}

TEST_P(DBBasicTest, AbortDiscardsWrites) {
  {
    auto txn = Begin();
    ASSERT_TRUE(txn->Put(table_, "k", "doomed").ok());
    EXPECT_TRUE(txn->Abort().ok());
  }
  auto txn = Begin();
  std::string v;
  EXPECT_TRUE(txn->Get(table_, "k", &v).IsNotFound());
  txn->Abort();
}

TEST_P(DBBasicTest, OperationsAfterFinishAreRejected) {
  auto txn = Begin();
  ASSERT_TRUE(txn->Commit().ok());
  std::string v;
  EXPECT_TRUE(txn->Get(table_, "k", &v).IsTxnInvalid());
  EXPECT_TRUE(txn->Put(table_, "k", "v").IsTxnInvalid());
  EXPECT_TRUE(txn->Commit().IsTxnInvalid());
  EXPECT_FALSE(txn->active());
}

TEST_P(DBBasicTest, AbortIsIdempotent) {
  auto txn = Begin();
  EXPECT_TRUE(txn->Abort().ok());
  EXPECT_TRUE(txn->Abort().ok());
}

TEST_P(DBBasicTest, ScanVisitsRangeInOrder) {
  {
    auto txn = Begin();
    for (const char* k : {"b", "d", "a", "c", "e"}) {
      ASSERT_TRUE(txn->Put(table_, k, std::string("v") + k).ok());
    }
    ASSERT_TRUE(txn->Commit().ok());
  }
  auto txn = Begin();
  std::vector<std::string> keys;
  EXPECT_TRUE(txn->Scan(table_, "b", "d",
                        [&keys](Slice k, Slice v) {
                          EXPECT_EQ(v.ToString(), "v" + k.ToString());
                          keys.push_back(k.ToString());
                          return true;
                        })
                  .ok());
  EXPECT_EQ(keys, (std::vector<std::string>{"b", "c", "d"}));
  txn->Commit();
}

TEST_P(DBBasicTest, ScanSkipsTombstonesAndSeesOwnWrites) {
  {
    auto txn = Begin();
    for (const char* k : {"a", "b", "c"}) {
      ASSERT_TRUE(txn->Put(table_, k, "v").ok());
    }
    ASSERT_TRUE(txn->Commit().ok());
  }
  auto txn = Begin();
  ASSERT_TRUE(txn->Delete(table_, "b").ok());
  ASSERT_TRUE(txn->Put(table_, "d", "mine").ok());
  std::vector<std::string> keys;
  EXPECT_TRUE(txn->Scan(table_, "a", "z",
                        [&keys](Slice k, Slice) {
                          keys.push_back(k.ToString());
                          return true;
                        })
                  .ok());
  EXPECT_EQ(keys, (std::vector<std::string>{"a", "c", "d"}));
  txn->Abort();
}

TEST_P(DBBasicTest, ScanEarlyStop) {
  {
    auto txn = Begin();
    for (const char* k : {"a", "b", "c", "d"}) {
      ASSERT_TRUE(txn->Put(table_, k, "v").ok());
    }
    ASSERT_TRUE(txn->Commit().ok());
  }
  auto txn = Begin();
  int seen = 0;
  EXPECT_TRUE(txn->Scan(table_, "a", "z",
                        [&seen](Slice, Slice) { return ++seen < 2; })
                  .ok());
  EXPECT_EQ(seen, 2);
  txn->Commit();
}

TEST_P(DBBasicTest, MultipleTablesAreIndependent) {
  TableId t2 = 0;
  ASSERT_TRUE(db_->CreateTable("t2", &t2).ok());
  auto txn = Begin();
  ASSERT_TRUE(txn->Put(table_, "k", "v1").ok());
  ASSERT_TRUE(txn->Put(t2, "k", "v2").ok());
  ASSERT_TRUE(txn->Commit().ok());
  auto txn2 = Begin();
  std::string v;
  EXPECT_TRUE(txn2->Get(table_, "k", &v).ok());
  EXPECT_EQ(v, "v1");
  EXPECT_TRUE(txn2->Get(t2, "k", &v).ok());
  EXPECT_EQ(v, "v2");
  txn2->Commit();
}

TEST_P(DBBasicTest, UnknownTableIsInvalidArgument) {
  auto txn = Begin();
  std::string v;
  EXPECT_TRUE(txn->Get(9999, "k", &v).IsInvalidArgument());
  txn->Abort();
}

INSTANTIATE_TEST_SUITE_P(
    IsolationByGranularity, DBBasicTest,
    ::testing::Combine(::testing::Values(IsolationLevel::kSnapshot,
                                         IsolationLevel::kSerializableSSI,
                                         IsolationLevel::kSerializable2PL),
                       ::testing::Values(LockGranularity::kRow,
                                         LockGranularity::kPage)),
    [](const ::testing::TestParamInfo<
        std::tuple<IsolationLevel, LockGranularity>>& info) {
      std::string name;
      switch (std::get<0>(info.param)) {
        case IsolationLevel::kSnapshot: name = "SI"; break;
        case IsolationLevel::kSerializableSSI: name = "SSI"; break;
        case IsolationLevel::kSerializable2PL: name = "S2PL"; break;
      }
      name += std::get<1>(info.param) == LockGranularity::kRow ? "_Row"
                                                               : "_Page";
      return name;
    });

TEST(DBTest, CreateTableRejectsDuplicates) {
  auto db = OpenDB();
  TableId t = 0;
  ASSERT_TRUE(db->CreateTable("x", &t).ok());
  TableId t2 = 0;
  EXPECT_TRUE(db->CreateTable("x", &t2).IsInvalidArgument());
}

TEST(DBTest, FindTable) {
  auto db = OpenDB();
  TableId t = 0;
  ASSERT_TRUE(db->CreateTable("x", &t).ok());
  TableId found = 999;
  EXPECT_TRUE(db->FindTable("x", &found).ok());
  EXPECT_EQ(found, t);
  EXPECT_TRUE(db->FindTable("y", &found).IsNotFound());
}

TEST(DBTest, SnapshotReadersIgnoreLaterCommits) {
  auto db = OpenDB();
  TableId t = 0;
  ASSERT_TRUE(db->CreateTable("t", &t).ok());
  {
    auto w = db->Begin({IsolationLevel::kSnapshot});
    ASSERT_TRUE(w->Put(t, "k", "v1").ok());
    ASSERT_TRUE(w->Commit().ok());
  }
  auto reader = db->Begin({IsolationLevel::kSnapshot});
  std::string v;
  ASSERT_TRUE(reader->Get(t, "k", &v).ok());  // Pins the snapshot.
  EXPECT_EQ(v, "v1");
  {
    auto w = db->Begin({IsolationLevel::kSnapshot});
    ASSERT_TRUE(w->Put(t, "k", "v2").ok());
    ASSERT_TRUE(w->Commit().ok());
  }
  ASSERT_TRUE(reader->Get(t, "k", &v).ok());
  EXPECT_EQ(v, "v1");  // Still the snapshot value.
  reader->Commit();
  auto later = db->Begin({IsolationLevel::kSnapshot});
  ASSERT_TRUE(later->Get(t, "k", &v).ok());
  EXPECT_EQ(v, "v2");
  later->Commit();
}

TEST(DBTest, S2PLReadersSeeLatestCommitted) {
  auto db = OpenDB();
  TableId t = 0;
  ASSERT_TRUE(db->CreateTable("t", &t).ok());
  {
    auto w = db->Begin({IsolationLevel::kSnapshot});
    ASSERT_TRUE(w->Put(t, "k", "v1").ok());
    ASSERT_TRUE(w->Commit().ok());
  }
  auto reader = db->Begin({IsolationLevel::kSerializable2PL});
  std::string v;
  ASSERT_TRUE(reader->Get(t, "k", &v).ok());
  EXPECT_EQ(v, "v1");
  reader->Commit();
}

TEST(DBTest, FirstCommitterWinsOnConcurrentWrites) {
  // §2.5: two concurrent SI transactions writing the same item cannot both
  // commit. With write locks the second writer blocks, then aborts with
  // kUpdateConflict once the first commits (first-updater-wins flavour).
  DBOptions opts;
  opts.lock_timeout_ms = 500;
  auto db = OpenDB(opts);
  TableId t = 0;
  ASSERT_TRUE(db->CreateTable("t", &t).ok());
  {
    auto w = db->Begin({IsolationLevel::kSnapshot});
    ASSERT_TRUE(w->Put(t, "k", "v0").ok());
    ASSERT_TRUE(w->Commit().ok());
  }
  auto t1 = db->Begin({IsolationLevel::kSnapshot});
  auto t2 = db->Begin({IsolationLevel::kSnapshot});
  // Pin both snapshots before either writes.
  std::string v;
  ASSERT_TRUE(t1->Get(t, "k", &v).ok());
  ASSERT_TRUE(t2->Get(t, "k", &v).ok());
  ASSERT_TRUE(t1->Put(t, "k", "v1").ok());
  ASSERT_TRUE(t1->Commit().ok());
  Status s = t2->Put(t, "k", "v2");
  EXPECT_TRUE(s.IsUpdateConflict()) << s.ToString();
  EXPECT_FALSE(t2->active());  // Already rolled back.
}

TEST(DBTest, LateSnapshotAvoidsFCWForSingleStatementUpdates) {
  // §4.5: with late snapshot allocation, two back-to-back "increment"
  // transactions never abort: the second blocks on the lock, then reads
  // the first's result.
  auto db = OpenDB();
  TableId t = 0;
  ASSERT_TRUE(db->CreateTable("t", &t).ok());
  {
    auto w = db->Begin({IsolationLevel::kSnapshot});
    ASSERT_TRUE(w->Put(t, "k", "0").ok());
    ASSERT_TRUE(w->Commit().ok());
  }
  auto t1 = db->Begin({IsolationLevel::kSnapshot});
  // t1 writes first (acquiring the lock) but has not committed.
  ASSERT_TRUE(t1->Put(t, "k", "1").ok());
  auto t2 = db->Begin({IsolationLevel::kSnapshot});
  std::thread committer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    EXPECT_TRUE(t1->Commit().ok());
  });
  // t2's first statement blocks on the lock; once granted its snapshot is
  // chosen *after* t1's commit, so no FCW abort.
  Status s = t2->Put(t, "k", "2");
  committer.join();
  EXPECT_TRUE(s.ok()) << s.ToString();
  EXPECT_TRUE(t2->Commit().ok());
  auto check = db->Begin();
  std::string v;
  ASSERT_TRUE(check->Get(t, "k", &v).ok());
  EXPECT_EQ(v, "2");
  check->Commit();
}

TEST(DBTest, EagerSnapshotTriggersFCWInSameScenario) {
  // Ablation of §4.5: with late_snapshot off, the blocked writer keeps its
  // earlier snapshot and must abort under first-committer-wins.
  DBOptions opts;
  opts.late_snapshot = false;
  auto db = OpenDB(opts);
  TableId t = 0;
  ASSERT_TRUE(db->CreateTable("t", &t).ok());
  {
    auto w = db->Begin({IsolationLevel::kSnapshot});
    ASSERT_TRUE(w->Put(t, "k", "0").ok());
    ASSERT_TRUE(w->Commit().ok());
  }
  auto t1 = db->Begin({IsolationLevel::kSnapshot});
  ASSERT_TRUE(t1->Put(t, "k", "1").ok());
  auto t2 = db->Begin({IsolationLevel::kSnapshot});
  std::thread committer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    EXPECT_TRUE(t1->Commit().ok());
  });
  Status s = t2->Put(t, "k", "2");
  committer.join();
  EXPECT_TRUE(s.IsUpdateConflict()) << s.ToString();
}

TEST(DBTest, StatsTrackCommitsAndLocks) {
  auto db = OpenDB();
  TableId t = 0;
  ASSERT_TRUE(db->CreateTable("t", &t).ok());
  auto txn = db->Begin({IsolationLevel::kSerializableSSI});
  ASSERT_TRUE(txn->Put(t, "k", "v").ok());
  DBStats mid = db->GetStats();
  EXPECT_EQ(mid.active_txns, 1u);
  EXPECT_GE(mid.lock_grants, 1u);
  ASSERT_TRUE(txn->Commit().ok());
  DBStats after = db->GetStats();
  EXPECT_EQ(after.active_txns, 0u);
  EXPECT_GE(after.log_records, 1u);
}

TEST(DBTest, SuspendedTransactionsAreCleanedUp) {
  // §3.3/§4.6.1: a committed SSI reader stays suspended while a concurrent
  // transaction lives, and is reclaimed once none overlaps.
  auto db = OpenDB();
  TableId t = 0;
  ASSERT_TRUE(db->CreateTable("t", &t).ok());
  {
    auto w = db->Begin({IsolationLevel::kSnapshot});
    ASSERT_TRUE(w->Put(t, "k", "v").ok());
    ASSERT_TRUE(w->Commit().ok());
  }
  auto overlapping = db->Begin({IsolationLevel::kSerializableSSI});
  std::string v;
  ASSERT_TRUE(overlapping->Get(t, "k", &v).ok());  // Pin a snapshot.
  // Watermark past that snapshot: suspension requires
  // commit(reader) > begin(overlapping).
  BumpWatermark(db.get(), t);

  auto reader = db->Begin({IsolationLevel::kSerializableSSI});
  ASSERT_TRUE(reader->Get(t, "k", &v).ok());
  ASSERT_TRUE(reader->Commit().ok());  // Holds SIREAD -> suspended.
  EXPECT_GE(db->GetStats().suspended_txns, 1u);

  ASSERT_TRUE(overlapping->Commit().ok());
  // A fresh non-overlapping commit triggers the eager cleanup sweep.
  auto cleaner = db->Begin({IsolationLevel::kSerializableSSI});
  ASSERT_TRUE(cleaner->Get(t, "k", &v).ok());
  ASSERT_TRUE(cleaner->Commit().ok());
  auto cleaner2 = db->Begin({IsolationLevel::kSerializableSSI});
  ASSERT_TRUE(cleaner2->Get(t, "k", &v).ok());
  ASSERT_TRUE(cleaner2->Commit().ok());
  EXPECT_LE(db->GetStats().suspended_txns, 2u);
}

TEST(DBTest, PruneVersionsReclaimsOldVersions) {
  auto db = OpenDB();
  TableId t = 0;
  ASSERT_TRUE(db->CreateTable("t", &t).ok());
  for (int i = 0; i < 5; ++i) {
    auto w = db->Begin({IsolationLevel::kSnapshot});
    ASSERT_TRUE(w->Put(t, "k", std::to_string(i)).ok());
    ASSERT_TRUE(w->Commit().ok());
  }
  // The background sweep (version_gc_interval_ms) may beat the manual
  // call to the reclaim; either way the chain ends at one version.
  db->PruneVersions(t);
  EXPECT_EQ(db->table(t)->Find("k")->size(), 1u);
  EXPECT_GT(db->GetStats().versions_pruned, 0u);
  auto reader = db->Begin({IsolationLevel::kSnapshot});
  std::string v;
  ASSERT_TRUE(reader->Get(t, "k", &v).ok());
  EXPECT_EQ(v, "4");  // Latest survives.
  reader->Commit();
}

TEST(DBTest, OpenRejectsZeroRowsPerPage) {
  DBOptions opts;
  opts.rows_per_page = 0;
  std::unique_ptr<DB> db;
  EXPECT_TRUE(DB::Open(opts, &db).IsInvalidArgument());
}

TEST(DBTest, EmptyKeyWriteRejected) {
  auto db = OpenDB();
  TableId t = 0;
  ASSERT_TRUE(db->CreateTable("t", &t).ok());
  auto txn = db->Begin();
  EXPECT_TRUE(txn->Put(t, "", "v").IsInvalidArgument());
  EXPECT_TRUE(txn->Insert(t, "", "v").IsInvalidArgument());
  txn->Abort();
}

TEST(DBTest, ScanRejectsInvertedRange) {
  auto db = OpenDB();
  TableId t = 0;
  ASSERT_TRUE(db->CreateTable("t", &t).ok());
  auto txn = db->Begin();
  Status s = txn->Scan(t, "z", "a", [](Slice, Slice) { return true; });
  EXPECT_TRUE(s.IsInvalidArgument());
  txn->Abort();
}

TEST(DBTest, ScanOfEmptyTableSucceeds) {
  auto db = OpenDB();
  TableId t = 0;
  ASSERT_TRUE(db->CreateTable("t", &t).ok());
  for (IsolationLevel iso :
       {IsolationLevel::kSnapshot, IsolationLevel::kSerializableSSI,
        IsolationLevel::kSerializable2PL}) {
    auto txn = db->Begin({iso});
    int n = 0;
    EXPECT_TRUE(txn->Scan(t, "a", "z", [&n](Slice, Slice) {
      ++n;
      return true;
    }).ok());
    EXPECT_EQ(n, 0);
    EXPECT_TRUE(txn->Commit().ok());
  }
}

TEST(DBTest, LockTimeoutSurfacesAndAborts) {
  DBOptions opts;
  opts.lock_timeout_ms = 50;
  auto db = OpenDB(opts);
  TableId t = 0;
  ASSERT_TRUE(db->CreateTable("t", &t).ok());
  {
    auto seed = db->Begin({IsolationLevel::kSnapshot});
    ASSERT_TRUE(seed->Put(t, "k", "v").ok());
    ASSERT_TRUE(seed->Commit().ok());
  }
  auto holder = db->Begin({IsolationLevel::kSnapshot});
  ASSERT_TRUE(holder->Put(t, "k", "h").ok());
  auto waiter = db->Begin({IsolationLevel::kSnapshot});
  Status s = waiter->Put(t, "k", "w");
  EXPECT_TRUE(s.IsTimedOut()) << s.ToString();
  EXPECT_TRUE(s.IsAbort());          // Clients treat it as a retry.
  EXPECT_FALSE(waiter->active());    // Rolled back by the engine.
  EXPECT_TRUE(holder->Commit().ok());  // The holder is unaffected.
}

TEST(DBTest, DroppedTransactionAutoAborts) {
  auto db = OpenDB();
  TableId t = 0;
  ASSERT_TRUE(db->CreateTable("t", &t).ok());
  {
    auto txn = db->Begin({IsolationLevel::kSerializableSSI});
    ASSERT_TRUE(txn->Put(t, "k", "v").ok());
    // Destroyed without Commit/Abort: the destructor must roll back and
    // release every lock.
  }
  EXPECT_EQ(db->GetStats().active_txns, 0u);
  EXPECT_EQ(db->GetStats().lock_grants, 0u);
  auto check = db->Begin();
  std::string v;
  EXPECT_TRUE(check->Get(t, "k", &v).IsNotFound());
  check->Commit();
}

TEST(DBTest, EmptyTransactionCommits) {
  auto db = OpenDB();
  for (IsolationLevel iso :
       {IsolationLevel::kSnapshot, IsolationLevel::kSerializableSSI,
        IsolationLevel::kSerializable2PL}) {
    auto txn = db->Begin({iso});
    EXPECT_TRUE(txn->Commit().ok());
  }
}

}  // namespace
}  // namespace ssidb
