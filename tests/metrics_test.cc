// The obs metrics layer: log-linear histogram bucket math, shard-merge
// equivalence, the quantile error bound the header promises (<= 1/16,
// asserted at 12.5%), window deltas, registry collection, and the engine's
// stage histograms actually filling under load (metrics_sample_period = 1
// makes every commit record, so short tests are deterministic).

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/common/encoding.h"
#include "src/common/random.h"
#include "src/db/db.h"
#include "src/obs/exporter.h"
#include "src/obs/metrics.h"

namespace ssidb {
namespace {

using obs::Histogram;
using obs::HistogramSnapshot;

// ---- Bucket math ----------------------------------------------------------

TEST(HistogramBucketTest, LowValuesGetExactUnitBuckets) {
  for (uint64_t v = 0; v < 16; ++v) {
    EXPECT_EQ(Histogram::BucketOf(v), v);
    EXPECT_EQ(Histogram::BucketLower(static_cast<uint32_t>(v)), v);
    EXPECT_EQ(Histogram::BucketWidth(static_cast<uint32_t>(v)), 1u);
  }
}

TEST(HistogramBucketTest, BoundariesAreExactAcrossTheRange) {
  // For every reachable bucket: its lower bound maps into it, its last
  // value maps into it, and the next value maps into the next bucket —
  // i.e. BucketLower/BucketWidth are the exact inverse of BucketOf.
  const uint32_t last = Histogram::BucketOf(~uint64_t{0});
  ASSERT_LT(last, Histogram::kBuckets);
  for (uint32_t b = 0; b <= last; ++b) {
    const uint64_t lower = Histogram::BucketLower(b);
    const uint64_t width = Histogram::BucketWidth(b);
    EXPECT_EQ(Histogram::BucketOf(lower), b) << "lower of bucket " << b;
    EXPECT_EQ(Histogram::BucketOf(lower + width - 1), b)
        << "last value of bucket " << b;
    if (b < last) {
      EXPECT_EQ(Histogram::BucketLower(b + 1), lower + width)
          << "buckets must tile without gaps at " << b;
      EXPECT_EQ(Histogram::BucketOf(lower + width), b + 1)
          << "first value past bucket " << b;
    }
  }
}

TEST(HistogramBucketTest, BucketIndexIsMonotone) {
  uint32_t prev = 0;
  for (uint64_t v = 0; v < (1u << 20); v += 17) {
    const uint32_t b = Histogram::BucketOf(v);
    EXPECT_GE(b, prev);
    prev = b;
  }
}

// ---- Recording and merging ------------------------------------------------

TEST(HistogramTest, MergeOfShardsEqualsSerialRecording) {
  // The same value stream recorded (a) spread round-robin across every
  // shard and (b) serially into one shard must produce identical
  // snapshots: Snapshot() is a pure merge.
  Histogram sharded;
  Histogram serial;
  Random rng(97);
  const size_t shards = sharded.shards();
  for (int i = 0; i < 20000; ++i) {
    const uint64_t v = rng.Uniform(1u << 20);
    sharded.RecordAt(static_cast<size_t>(i) % shards, v);
    serial.RecordAt(0, v);
  }
  const HistogramSnapshot a = sharded.Snapshot();
  const HistogramSnapshot b = serial.Snapshot();
  EXPECT_EQ(a.count, b.count);
  EXPECT_EQ(a.sum, b.sum);
  EXPECT_EQ(a.max, b.max);
  ASSERT_EQ(a.buckets.size(), b.buckets.size());
  for (size_t i = 0; i < a.buckets.size(); ++i) {
    EXPECT_EQ(a.buckets[i], b.buckets[i]) << "bucket " << i;
  }
}

TEST(HistogramTest, QuantileRelativeErrorIsBounded) {
  // Log-linear with 8 sub-buckets: reporting the bucket midpoint is off by
  // at most half a bucket width relative to the bucket's lower bound,
  // i.e. <= 1/16. Assert 12.5% for slack, over several magnitudes.
  Histogram h;
  std::vector<uint64_t> values;
  Random rng(131);
  for (int i = 0; i < 50000; ++i) {
    // Log-uniform-ish spread: pick a magnitude, then a value within it.
    const uint32_t mag = static_cast<uint32_t>(rng.Uniform(30));
    const uint64_t v = (uint64_t{1} << mag) + rng.Uniform(uint64_t{1} << mag);
    values.push_back(v);
    h.Record(v);
  }
  std::sort(values.begin(), values.end());
  const HistogramSnapshot snap = h.Snapshot();
  ASSERT_EQ(snap.count, values.size());
  for (double q : {0.5, 0.9, 0.95, 0.99}) {
    const size_t rank = static_cast<size_t>(
        std::ceil(q * static_cast<double>(values.size())));
    const uint64_t exact = values[rank == 0 ? 0 : rank - 1];
    const uint64_t approx = snap.Quantile(q);
    const double err =
        std::abs(static_cast<double>(approx) - static_cast<double>(exact)) /
        static_cast<double>(exact);
    EXPECT_LE(err, 0.125) << "q=" << q << " exact=" << exact
                          << " approx=" << approx;
  }
  // Q(1.0) reports the top bucket's midpoint clamped to max: never above
  // max, never below the top bucket's lower bound.
  EXPECT_LE(snap.Quantile(1.0), snap.max);
  EXPECT_GE(snap.Quantile(1.0),
            Histogram::BucketLower(Histogram::BucketOf(snap.max)));
}

TEST(HistogramTest, QuantileExactForUnitBuckets) {
  Histogram h;
  for (uint64_t v = 1; v <= 10; ++v) h.Record(v);  // 1..10, all unit buckets.
  const HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.Quantile(0.5), 5u);
  EXPECT_EQ(snap.Quantile(1.0), 10u);
  EXPECT_EQ(snap.count, 10u);
  EXPECT_EQ(snap.sum, 55u);
  EXPECT_EQ(snap.max, 10u);
}

TEST(HistogramTest, DeltaIsolatesTheWindow) {
  Histogram h;
  for (int i = 0; i < 100; ++i) h.Record(3);
  const HistogramSnapshot before = h.Snapshot();
  for (int i = 0; i < 50; ++i) h.Record(7);
  const HistogramSnapshot window = h.Snapshot().Delta(before);
  EXPECT_EQ(window.count, 50u);
  EXPECT_EQ(window.sum, 50u * 7);
  EXPECT_EQ(window.Quantile(0.5), 7u);  // The pre-window 3s are gone.
  EXPECT_EQ(window.buckets[3], 0u);
  EXPECT_EQ(window.buckets[7], 50u);
}

TEST(HistogramTest, ConcurrentRecordersLoseNothing) {
  Histogram h;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50000;
  std::vector<std::thread> threads;
  std::atomic<bool> stop{false};
  // A snapshotter races the recorders; its only job is to not crash and
  // to see monotone counts (each shard counter is individually coherent).
  std::thread snapshotter([&] {
    uint64_t last = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      const uint64_t c = h.Snapshot().count;
      EXPECT_GE(c, last);
      last = c;
    }
  });
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Random rng(static_cast<uint64_t>(t) + 5);
      for (int i = 0; i < kPerThread; ++i) {
        h.RecordAt(static_cast<size_t>(t), rng.Uniform(1 << 16));
      }
    });
  }
  for (auto& t : threads) t.join();
  stop.store(true);
  snapshotter.join();
  EXPECT_EQ(h.Snapshot().count,
            static_cast<uint64_t>(kThreads) * kPerThread);
}

// ---- Sampling tick --------------------------------------------------------

TEST(SampleTest, MaskZeroAlwaysSamples) {
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(obs::SampleTick(0));
}

TEST(SampleTest, MaskFromPeriodSamplesOneInPeriod) {
  EXPECT_EQ(obs::SampleMask(0), 0u);
  EXPECT_EQ(obs::SampleMask(1), 0u);
  EXPECT_EQ(obs::SampleMask(16), 15u);
  EXPECT_EQ(obs::SampleMask(10), 15u);  // Rounded up to a power of two.
  const uint32_t mask = obs::SampleMask(16);
  int sampled = 0;
  for (int i = 0; i < 1600; ++i) {
    if (obs::SampleTick(mask)) ++sampled;
  }
  EXPECT_EQ(sampled, 100);
}

// ---- Registry -------------------------------------------------------------

TEST(MetricsRegistryTest, CollectsCountersGaugesAndHistogramsSorted) {
  obs::MetricsRegistry reg;
  std::atomic<uint64_t> c{42};
  reg.RegisterCounter("z.counter", [&] { return c.load(); });
  reg.RegisterCounter("a.counter", [] { return uint64_t{7}; });
  reg.RegisterGauge("g.gauge", [] { return uint64_t{3}; });
  Histogram h;
  h.Record(100);
  reg.RegisterHistogram("h.hist", &h);

  obs::MetricsSnapshot snap = reg.Collect();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].first, "a.counter");  // Sorted by name.
  EXPECT_EQ(snap.counters[1].second, 42u);
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_EQ(snap.gauges[0].second, 3u);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].second.count, 1u);

  // The callback reads live state: bump and re-collect.
  c.store(43);
  EXPECT_EQ(reg.Collect().counters[1].second, 43u);

  EXPECT_EQ(reg.FindHistogram("h.hist"), &h);
  EXPECT_EQ(reg.FindHistogram("nope"), nullptr);
}

// ---- Exporter -------------------------------------------------------------

TEST(ExporterTest, JsonAndPrometheusRenderAllSections) {
  obs::MetricsRegistry reg;
  reg.RegisterCounter("ssi.unsafe-aborts", [] { return uint64_t{5}; });
  reg.RegisterGauge("engine.active_txns", [] { return uint64_t{2}; });
  Histogram h;
  for (int i = 0; i < 100; ++i) h.Record(1000);
  reg.RegisterHistogram("commit.total_ns", &h);

  const std::string json = obs::Render(reg.Collect(), obs::MetricsFormat::kJson);
  EXPECT_NE(json.find("\"ssi.unsafe-aborts\":5"), std::string::npos) << json;
  EXPECT_NE(json.find("\"engine.active_txns\":2"), std::string::npos);
  EXPECT_NE(json.find("\"commit.total_ns\""), std::string::npos);
  EXPECT_NE(json.find("\"count\":100"), std::string::npos);
  EXPECT_EQ(json.find('\n'), std::string::npos) << "single line";

  const std::string prom =
      obs::Render(reg.Collect(), obs::MetricsFormat::kPrometheus);
  EXPECT_NE(prom.find("ssidb_ssi_unsafe_aborts 5"), std::string::npos) << prom;
  EXPECT_NE(prom.find("ssidb_commit_total_ns_count 100"), std::string::npos);
  EXPECT_NE(prom.find("quantile=\"0.99\""), std::string::npos);
}

// ---- Engine integration ---------------------------------------------------

TEST(EngineMetricsTest, StageHistogramsFillUnderCommitLoad) {
  DBOptions opts;
  opts.metrics_sample_period = 1;  // Every commit records its stages.
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(opts, &db).ok());
  TableId table = 0;
  ASSERT_TRUE(db->CreateTable("t", &table).ok());
  for (int i = 0; i < 64; ++i) {
    auto txn = db->Begin({IsolationLevel::kSerializableSSI});
    std::string v;
    txn->Get(table, EncodeU64Key(static_cast<uint64_t>(i)), &v);
    ASSERT_TRUE(txn->Put(table, EncodeU64Key(static_cast<uint64_t>(i)), "x")
                    .ok());
    ASSERT_TRUE(txn->Commit().ok());
  }

  // The six commit-pipeline stage histograms all saw every commit.
  const char* kStages[] = {"commit.certify_ns",  "commit.stamp_publish_ns",
                           "commit.watermark_ns", "commit.wal_append_ns",
                           "commit.fsync_wait_ns", "commit.total_ns"};
  for (const char* name : kStages) {
    const Histogram* h = db->metrics()->FindHistogram(name);
    ASSERT_NE(h, nullptr) << name;
    EXPECT_EQ(h->Snapshot().count, 64u) << name;
  }
  // Read path: every Get above hit in memory.
  const Histogram* hit = db->metrics()->FindHistogram("read.hit_ns");
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->Snapshot().count, 64u);

  // DumpMetrics carries them all in one JSON line.
  const std::string json = db->DumpMetrics();
  for (const char* name : kStages) {
    EXPECT_NE(json.find(std::string("\"") + name + "\""), std::string::npos)
        << name;
  }
  EXPECT_NE(json.find("\"abort.ssi_pivot\""), std::string::npos);
  EXPECT_NE(json.find("\"log.records\""), std::string::npos);
}

TEST(EngineMetricsTest, RegistrySnapshotsStayMonotoneUnderConcurrentLoad) {
  // The stats-invariant satellite at the registry level: cumulative
  // counters and histogram counts sampled while workers commit never
  // regress between snapshots.
  DBOptions opts;
  opts.metrics_sample_period = 1;
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(opts, &db).ok());
  TableId table = 0;
  ASSERT_TRUE(db->CreateTable("t", &table).ok());

  std::atomic<bool> stop{false};
  std::vector<std::thread> workers;
  for (int w = 0; w < 4; ++w) {
    workers.emplace_back([&, w] {
      Random rng(static_cast<uint64_t>(w) * 17 + 3);
      while (!stop.load(std::memory_order_relaxed)) {
        auto txn = db->Begin({IsolationLevel::kSerializableSSI});
        std::string v;
        txn->Get(table, EncodeU64Key(rng.Uniform(8)), &v);
        txn->Put(table, EncodeU64Key(rng.Uniform(8)), "x");
        txn->Commit();
      }
    });
  }

  std::map<std::string, uint64_t> last_counter;
  std::map<std::string, uint64_t> last_hist_count;
  for (int i = 0; i < 500; ++i) {
    const obs::MetricsSnapshot snap = db->metrics()->Collect();
    for (const auto& [name, value] : snap.counters) {
      auto it = last_counter.find(name);
      if (it != last_counter.end()) {
        EXPECT_GE(value, it->second) << "counter regressed: " << name;
        it->second = value;
      } else {
        last_counter.emplace(name, value);
      }
    }
    for (const auto& [name, hist] : snap.histograms) {
      auto it = last_hist_count.find(name);
      if (it != last_hist_count.end()) {
        EXPECT_GE(hist.count, it->second) << "histogram regressed: " << name;
        it->second = hist.count;
      } else {
        last_hist_count.emplace(name, hist.count);
      }
    }
  }
  stop.store(true);
  for (auto& t : workers) t.join();
}

TEST(EngineMetricsTest, AbortBreakdownFoldsIntoDBStats) {
  DBOptions opts;
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(opts, &db).ok());
  TableId table = 0;
  ASSERT_TRUE(db->CreateTable("t", &table).ok());
  {
    auto seed = db->Begin({IsolationLevel::kSnapshot});
    ASSERT_TRUE(seed->Put(table, "x", "50").ok());
    ASSERT_TRUE(seed->Put(table, "y", "50").ok());
    ASSERT_TRUE(seed->Commit().ok());
  }
  EXPECT_EQ(db->GetStats().abort_breakdown().total(), 0u);

  // An explicit rollback is the simplest taxonomy entry.
  {
    auto txn = db->Begin({IsolationLevel::kSnapshot});
    ASSERT_TRUE(txn->Put(table, "x", "1").ok());
    txn->Abort();
  }
  DBStats s = db->GetStats();
  EXPECT_EQ(s.abort_breakdown().Count(AbortReason::kExplicit), 1u);
  EXPECT_EQ(s.abort_breakdown().total(), 1u);

  // A write-skew SSI abort lands in an SSI taxonomy slot, and the same
  // counts surface through DumpMetrics as abort.* counters.
  {
    auto t1 = db->Begin({IsolationLevel::kSerializableSSI});
    auto t2 = db->Begin({IsolationLevel::kSerializableSSI});
    std::string v;
    ASSERT_TRUE(t1->Get(table, "x", &v).ok());
    ASSERT_TRUE(t1->Get(table, "y", &v).ok());
    ASSERT_TRUE(t2->Get(table, "x", &v).ok());
    ASSERT_TRUE(t2->Get(table, "y", &v).ok());
    ASSERT_TRUE(t1->Put(table, "x", "-20").ok());
    Status c1 = t1->Commit();
    Status c2 = t2->active() ? [&] {
      Status w = t2->Put(table, "y", "-30");
      return w.ok() ? t2->Commit() : w;
    }() : Status::Unsafe("marked");
    EXPECT_NE(c1.ok(), c2.ok());
    if (t1->active()) t1->Abort();
    if (t2->active()) t2->Abort();
  }
  s = db->GetStats();
  const uint64_t ssi_aborts =
      s.abort_breakdown().Count(AbortReason::kSsiPivot) +
      s.abort_breakdown().Count(AbortReason::kSsiInSide) +
      s.abort_breakdown().Count(AbortReason::kSsiOutSide);
  EXPECT_EQ(ssi_aborts, 1u);
  EXPECT_EQ(s.abort_breakdown().total(), 2u);
}

TEST(EngineMetricsTest, BackgroundDumperWritesSnapshots) {
  char tmpl[] = "/tmp/ssidb_metrics_XXXXXX";
  int fd = mkstemp(tmpl);
  ASSERT_GE(fd, 0);
  close(fd);
  const std::string path = tmpl;
  {
    DBOptions opts;
    opts.metrics_dump_interval_ms = 20;
    opts.metrics_dump_path = path;
    std::unique_ptr<DB> db;
    ASSERT_TRUE(DB::Open(opts, &db).ok());
    TableId table = 0;
    ASSERT_TRUE(db->CreateTable("t", &table).ok());
    auto txn = db->Begin({IsolationLevel::kSnapshot});
    ASSERT_TRUE(txn->Put(table, "k", "v").ok());
    ASSERT_TRUE(txn->Commit().ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }  // ~DB stops the dumper.
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  int lines = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    ++lines;
    EXPECT_EQ(line.front(), '{');
    EXPECT_NE(line.find("\"log.records\""), std::string::npos);
  }
  EXPECT_GE(lines, 1);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace ssidb
