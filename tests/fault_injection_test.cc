// Disk-failure hardening tests: the engine's behaviour when the Env lies.
//
// The contracts under test (ARCHITECTURE.md "Fault model & degradation"):
//   * a WAL fsync/write failure is handled fsyncgate-correctly — the log
//     never retries the fsync, the failure is sticky, and the DB degrades
//     to read-only mode: reads and read-only commits keep serving, writing
//     commits fail fast with kIOError, checkpoints refuse to run;
//   * a failed buffer-pool writeback never marks the frame clean or loses
//     the page content — retries are bounded, the dirty bit survives, and
//     clearing the fault lets the next flush land the original bytes;
//   * EIO mid-spill leaves every chain resident and readable;
//   * ENOSPC mid-checkpoint or mid-run-creation removes the partial .tmp,
//     leaves the previous durable chain loadable, and the next attempt
//     (after the disk heals) resumes cleanly;
//   * after a seeded multi-fault schedule, clearing the faults and
//     reopening recovers every acknowledged-OK commit with its original
//     commit timestamp.

#include <gtest/gtest.h>

#include <fcntl.h>

#include <cstdint>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/db/db.h"
#include "src/io/env.h"
#include "src/storage/buffer_pool.h"
#include "src/storage/storage_tier.h"
#include "tests/test_util.h"

namespace ssidb {
namespace {

namespace fs = std::filesystem;
using io::FaultInjectingEnv;
using FaultKind = FaultInjectingEnv::FaultKind;

DBOptions FaultOptions(const std::string& dir, io::Env* env,
                       bool with_tier = false) {
  DBOptions opts;
  opts.log.wal_dir = dir + "/wal";
  opts.log.flush_on_commit = true;
  opts.env = env;
  // Background sweeps off: the tests drive spills and checkpoints
  // explicitly so the scripted fault windows hit deterministic ops.
  opts.version_gc_interval_ms = 0;
  if (with_tier) {
    opts.buffer_pool_bytes = 1 << 16;
    opts.run_page_bytes = 4096;
    opts.data_dir = dir + "/runs";
  }
  return opts;
}

uint64_t GaugeValue(DB* db, const std::string& name) {
  for (const auto& [n, v] : db->metrics()->Collect().gauges) {
    if (n == name) return v;
  }
  ADD_FAILURE() << "gauge not registered: " << name;
  return 0;
}

uint64_t CounterValue(DB* db, const std::string& name) {
  for (const auto& [n, v] : db->metrics()->Collect().counters) {
    if (n == name) return v;
  }
  ADD_FAILURE() << "counter not registered: " << name;
  return 0;
}

bool DirHasTmpFile(const std::string& dir) {
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (entry.path().extension() == ".tmp") return true;
  }
  return false;
}

Status CommitPut(DB* db, TableId t, const std::string& key,
                 const std::string& value, Timestamp* cts = nullptr) {
  auto txn = db->Begin({IsolationLevel::kSnapshot});
  Status st = txn->Put(t, key, value);
  if (!st.ok()) return st;
  st = txn->Commit();
  if (st.ok() && cts != nullptr) *cts = txn->commit_ts();
  return st;
}

TEST(FaultInjectionTest, WalFsyncFailureFlipsReadOnly) {
  ScratchDir dir;
  FaultInjectingEnv env;
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(FaultOptions(dir.path, &env), &db).ok());
  TableId t = 0;
  ASSERT_TRUE(db->CreateTable("t", &t).ok());  // Flush (fsync #1) clean.

  // Two healthy commits, then every subsequent WAL fsync fails.
  std::map<std::string, Timestamp> acked;
  for (int i = 0; i < 2; ++i) {
    const std::string key = "pre" + std::to_string(i);
    Timestamp cts = 0;
    ASSERT_TRUE(CommitPut(db.get(), t, key, "v" + std::to_string(i), &cts).ok());
    acked[key] = cts;
  }
  EXPECT_FALSE(db->read_only());
  env.InjectFault(FaultKind::kFsyncError, "wal-");

  // The next writing commit's group-commit flush hits the failed fsync:
  // the in-memory commit stands but durability was not achieved, so the
  // ack carries kIOError — and the DB is read-only by the time it fires.
  Status st = CommitPut(db.get(), t, "poison", "x");
  ASSERT_TRUE(st.IsIOError()) << st.ToString();
  EXPECT_TRUE(db->read_only());

  // Degraded-mode contract. Reads keep serving...
  {
    auto txn = db->Begin({IsolationLevel::kSnapshot});
    std::string v;
    ASSERT_TRUE(txn->Get(t, "pre0", &v).ok());
    EXPECT_EQ(v, "v0");
    EXPECT_TRUE(txn->Commit().ok()) << "read-only commits still succeed";
  }
  // ...while writing commits fail fast with kIOError (no WAL append, no
  // timestamp allocated — the transaction is rolled back).
  {
    auto txn = db->Begin({IsolationLevel::kSnapshot});
    ASSERT_TRUE(txn->Put(t, "late", "x").ok());
    Status commit = txn->Commit();
    EXPECT_TRUE(commit.IsIOError()) << commit.ToString();
    EXPECT_FALSE(txn->active());
  }
  // Checkpoints refuse to extend the durable history.
  EXPECT_TRUE(db->Checkpoint().IsIOError());

  // Observability: the gauge, the WAL error counter, the injection count.
  EXPECT_EQ(GaugeValue(db.get(), "db.read_only"), 1u);
  EXPECT_GE(CounterValue(db.get(), "io.errors.wal"), 1u);
  EXPECT_GE(CounterValue(db.get(), "io.injected_faults"), 1u);

  // Fix the disk, reopen: every acked-OK commit is back with its original
  // commit timestamp. (The poisoned commit was acked kIOError — it made
  // no durability promise, so it may legitimately be absent.)
  db.reset();
  env.ClearFaults();
  ASSERT_TRUE(DB::Open(FaultOptions(dir.path, &env), &db).ok());
  ASSERT_TRUE(db->FindTable("t", &t).ok());
  EXPECT_FALSE(db->read_only());
  for (const auto& [key, cts] : acked) {
    std::string v;
    auto txn = db->Begin({IsolationLevel::kSnapshot});
    ASSERT_TRUE(txn->Get(t, key, &v).ok()) << key;
    txn->Commit();
    Timestamp recovered = 0;
    bool tomb = true;
    ASSERT_TRUE(db->table(t)->Find(key)->LatestCommitted(&recovered, &tomb));
    EXPECT_EQ(recovered, cts) << key;
  }
  // The healed engine accepts writes again.
  EXPECT_TRUE(CommitPut(db.get(), t, "after", "y").ok());
}

TEST(FaultInjectionTest, EIOMidSpillKeepsChainsResident) {
  ScratchDir dir;
  FaultInjectingEnv env;
  std::unique_ptr<DB> db;
  ASSERT_TRUE(
      DB::Open(FaultOptions(dir.path, &env, /*with_tier=*/true), &db).ok());
  TableId t = 0;
  ASSERT_TRUE(db->CreateTable("t", &t).ok());
  std::map<std::string, Timestamp> cts;
  for (int i = 0; i < 8; ++i) {
    const std::string key = "k" + std::to_string(i);
    Timestamp c = 0;
    ASSERT_TRUE(CommitPut(db.get(), t, key, "v" + std::to_string(i), &c).ok());
    cts[key] = c;
  }

  // Every write to a run file fails: the spill must leave each chain
  // resident with its versions intact (eviction is only legal once the
  // run is durable).
  env.InjectFault(FaultKind::kWriteError, "run-");
  db->SpillChains(t);
  EXPECT_EQ(db->SpillChains(t), 0u);
  EXPECT_GE(db->storage_tier()->io_errors(), 1u);
  EXPECT_GE(CounterValue(db.get(), "io.errors.tier"), 1u);
  for (const auto& [key, c] : cts) {
    VersionChain* chain = db->table(t)->Find(key);
    ASSERT_NE(chain, nullptr);
    EXPECT_FALSE(chain->evicted()) << key;
    Timestamp got = 0;
    bool tomb = true;
    ASSERT_TRUE(chain->LatestCommitted(&got, &tomb));
    EXPECT_EQ(got, c) << key;
  }

  // Disk healed: the sweep now evicts (the failed attempt already spent
  // the chains' second-chance bits, so the first pass can evict), and
  // faulting back preserves values and commit timestamps.
  env.ClearFaults();
  size_t evicted = db->SpillChains(t);
  evicted += db->SpillChains(t);
  EXPECT_EQ(evicted, cts.size());
  for (const auto& [key, c] : cts) {
    std::string v;
    auto txn = db->Begin({IsolationLevel::kSnapshot});
    ASSERT_TRUE(txn->Get(t, key, &v).ok()) << key;
    txn->Commit();
    Timestamp got = 0;
    bool tomb = true;
    ASSERT_TRUE(db->table(t)->Find(key)->LatestCommitted(&got, &tomb));
    EXPECT_EQ(got, c) << key;
  }
}

TEST(FaultInjectionTest, ENOSPCMidCheckpointLeavesPriorChainLoadable) {
  ScratchDir dir;
  FaultInjectingEnv env;
  const std::string wal_dir = dir.path + "/wal";
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(FaultOptions(dir.path, &env), &db).ok());
  TableId t = 0;
  ASSERT_TRUE(db->CreateTable("t", &t).ok());
  std::map<std::string, Timestamp> cts;
  auto put = [&](const std::string& key) {
    Timestamp c = 0;
    ASSERT_TRUE(CommitPut(db.get(), t, key, "v:" + key, &c).ok());
    cts[key] = c;
  };
  put("a");
  put("b");
  ASSERT_TRUE(db->Checkpoint().ok());  // Healthy base image.
  put("c");

  // ENOSPC mid-image: skip=1 lets the O_CREAT open of the .tmp through,
  // so the failure lands mid-write with a partial file on disk — which
  // the checkpoint writer must remove.
  env.InjectFault(FaultKind::kNoSpace, ".ckpt", /*skip=*/1, /*count=*/1);
  Status st = db->Checkpoint();
  ASSERT_TRUE(st.IsIOError()) << st.ToString();
  EXPECT_FALSE(DirHasTmpFile(wal_dir)) << "partial .tmp must be removed";
  EXPECT_GE(CounterValue(db.get(), "io.errors.checkpoint"), 1u);

  // The previous chain is untouched: reopening right now loads the base
  // image plus WAL replay and recovers everything acked.
  db.reset();
  env.ClearFaults();
  ASSERT_TRUE(DB::Open(FaultOptions(dir.path, &env), &db).ok());
  ASSERT_TRUE(db->FindTable("t", &t).ok());
  for (const auto& [key, c] : cts) {
    std::string v;
    auto txn = db->Begin({IsolationLevel::kSnapshot});
    ASSERT_TRUE(txn->Get(t, key, &v).ok()) << key;
    EXPECT_EQ(v, "v:" + key);
    txn->Commit();
    Timestamp got = 0;
    bool tomb = true;
    ASSERT_TRUE(db->table(t)->Find(key)->LatestCommitted(&got, &tomb));
    EXPECT_EQ(got, c) << key;
  }
  // The next checkpoint resumes the chain where the failed one left off.
  put("d");
  EXPECT_TRUE(db->Checkpoint().ok());
  EXPECT_GE(db->checkpoints_taken(), 1u);
}

TEST(FaultInjectionTest, ENOSPCRunCreationCleansUpTmp) {
  ScratchDir dir;
  FaultInjectingEnv env;
  const std::string run_dir = dir.path + "/runs";
  std::unique_ptr<DB> db;
  ASSERT_TRUE(
      DB::Open(FaultOptions(dir.path, &env, /*with_tier=*/true), &db).ok());
  TableId t = 0;
  ASSERT_TRUE(db->CreateTable("t", &t).ok());
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(
        CommitPut(db.get(), t, "k" + std::to_string(i), "v").ok());
  }
  // skip=1 lets the run .tmp be created, then the first page write fails.
  env.InjectFault(FaultKind::kNoSpace, "run-", /*skip=*/1, /*count=*/1);
  db->SpillChains(t);
  EXPECT_EQ(db->SpillChains(t), 0u);
  EXPECT_FALSE(DirHasTmpFile(run_dir)) << "failed run's .tmp must be removed";
  EXPECT_EQ(db->storage_tier()->run_count(t), 0u);

  // Chains stayed resident; the healed disk spills them on the next sweep
  // (second-chance bits were already spent by the failed attempt).
  env.ClearFaults();
  size_t evicted = db->SpillChains(t);
  evicted += db->SpillChains(t);
  EXPECT_EQ(evicted, 4u);
  EXPECT_EQ(db->storage_tier()->run_count(t), 1u);
  std::string v;
  auto txn = db->Begin({IsolationLevel::kSnapshot});
  EXPECT_TRUE(txn->Get(t, "k0", &v).ok());
  txn->Commit();
}

TEST(FaultInjectionTest, BufferPoolWritebackEIOKeepsPageContent) {
  ScratchDir dir;
  FaultInjectingEnv env;
  constexpr uint32_t kPage = 512;
  BufferPool pool(4 * kPage, kPage, &env);
  const std::string path = dir.path + "/run-pool-test";
  const int fd = env.Open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  ASSERT_GE(fd, 0);
  pool.RegisterFile(std::make_shared<PoolFile>(1, fd, &env));

  // Fill all four frames with dirty pages.
  auto fill = [&](uint8_t* page, uint32_t page_no) {
    for (uint32_t i = 0; i < kPage; ++i) {
      page[i] = static_cast<uint8_t>((page_no * 31 + i) & 0xFF);
    }
  };
  auto check = [&](const uint8_t* page, uint32_t page_no) {
    for (uint32_t i = 0; i < kPage; ++i) {
      if (page[i] != static_cast<uint8_t>((page_no * 31 + i) & 0xFF)) {
        return false;
      }
    }
    return true;
  };
  for (uint32_t p = 0; p < 4; ++p) {
    BufferPool::WritePin wp;
    ASSERT_TRUE(pool.PinForWrite(1, p, &wp).ok());
    fill(wp.data, p);
    pool.Unpin(wp.frame);
  }

  // A fifth page needs a victim; every victim is dirty and every write
  // fails. The claim must fail WITHOUT losing the victim's content: the
  // frame keeps its tag, its dirty bit and its bytes.
  env.InjectFault(FaultKind::kWriteError, "run-");
  BufferPool::WritePin wp;
  Status st = pool.PinForWrite(1, 4, &wp);
  ASSERT_TRUE(st.IsIOError()) << st.ToString();
  EXPECT_GE(pool.io_errors(), 1u);
  EXPECT_GE(pool.io_retries(), 2u) << "bounded retry ran";

  // Every original page is still readable from its frame, bytes intact.
  for (uint32_t p = 0; p < 4; ++p) {
    BufferPool::Pin pin;
    ASSERT_TRUE(pool.PinPage(1, p, &pin).ok());
    EXPECT_TRUE(check(pin.data, p)) << "page " << p;
    pool.Unpin(pin.frame);
  }

  // Heal the disk: the frames are still dirty (the failed writeback must
  // not have cleared the bit), so FlushFile lands the original bytes.
  env.ClearFaults();
  ASSERT_TRUE(pool.FlushFile(1).ok());
  const int rfd = env.Open(path.c_str(), O_RDONLY, 0);
  ASSERT_GE(rfd, 0);
  uint8_t page[kPage];
  for (uint32_t p = 0; p < 4; ++p) {
    ASSERT_EQ(env.Pread(rfd, page, kPage, static_cast<off_t>(p) * kPage),
              static_cast<ssize_t>(kPage));
    EXPECT_TRUE(check(page, p)) << "page " << p;
  }
  env.Close(rfd);
}

// The capstone: a seeded schedule injects an EIO mid-spill, an ENOSPC
// mid-checkpoint and a WAL fsync failure mid-run, in one process life.
// Every commit acknowledged OK must survive the subsequent heal + reopen
// with its original commit timestamp; the fsync failure must flip the DB
// read-only for the remainder of the run.
TEST(FaultInjectionTest, ScheduledMultiFaultRunRecoversAckedCommits) {
  ScratchDir dir;
  FaultInjectingEnv env;
  // Fsync ops on WAL segments: #1 is the table create, #2..#12 are
  // commits 1..11, #13 (commit 12) fails and poisons the log.
  env.InjectFault(FaultKind::kFsyncError, "wal-", /*skip=*/12, /*count=*/1);
  env.InjectFault(FaultKind::kWriteError, "run-", /*skip=*/2, /*count=*/1);
  env.InjectFault(FaultKind::kNoSpace, ".ckpt", /*skip=*/1, /*count=*/1);

  std::map<std::string, Timestamp> acked;
  {
    std::unique_ptr<DB> db;
    ASSERT_TRUE(
        DB::Open(FaultOptions(dir.path, &env, /*with_tier=*/true), &db).ok());
    TableId t = 0;
    ASSERT_TRUE(db->CreateTable("t", &t).ok());
    uint64_t io_failures = 0;
    for (int i = 1; i <= 20; ++i) {
      const std::string key = "k" + std::to_string(i);
      Timestamp cts = 0;
      Status st = CommitPut(db.get(), t, key, "v" + std::to_string(i), &cts);
      if (st.ok()) {
        acked[key] = cts;
      } else {
        ASSERT_TRUE(st.IsIOError()) << st.ToString();
        ++io_failures;
      }
      if (i % 6 == 0) {
        // Background-style maintenance mid-schedule: the spill hits the
        // scripted run EIO, the checkpoint hits the scripted ENOSPC.
        db->SpillChains(t);
        db->SpillChains(t);
        db->Checkpoint();
      }
    }
    EXPECT_EQ(acked.size(), 11u) << "commits 1..11 acked, 12+ failed";
    EXPECT_GE(io_failures, 9u);
    EXPECT_TRUE(db->read_only());
    EXPECT_GE(env.injected_faults(), 3u);
    // Reads of acked state keep working in degraded mode.
    std::string v;
    auto txn = db->Begin({IsolationLevel::kSnapshot});
    EXPECT_TRUE(txn->Get(t, "k1", &v).ok());
    EXPECT_EQ(v, "v1");
    txn->Commit();
  }

  // Heal and reopen: every acked commit is present, atomically, with its
  // original commit timestamp; no unacked write leaked in.
  env.ClearFaults();
  std::unique_ptr<DB> db;
  ASSERT_TRUE(
      DB::Open(FaultOptions(dir.path, &env, /*with_tier=*/true), &db).ok());
  TableId t = 0;
  ASSERT_TRUE(db->FindTable("t", &t).ok());
  EXPECT_FALSE(db->read_only());
  for (const auto& [key, cts] : acked) {
    std::string v;
    auto txn = db->Begin({IsolationLevel::kSnapshot});
    ASSERT_TRUE(txn->Get(t, key, &v).ok()) << key;
    EXPECT_EQ(v, "v" + key.substr(1));
    txn->Commit();
    Timestamp got = 0;
    bool tomb = true;
    ASSERT_TRUE(db->table(t)->Find(key)->LatestCommitted(&got, &tomb));
    EXPECT_EQ(got, cts) << key;
  }
  // Commits 13+ failed fast at the read-only gate: no WAL append, no
  // timestamp — they must be gone. (Commit 12 is indeterminate by design:
  // its record's write() landed before the failed fsync(), so without an
  // actual page-cache loss it may replay; kIOError only means the
  // durability *promise* was withdrawn.)
  for (int i = 13; i <= 20; ++i) {
    std::string v;
    auto txn = db->Begin({IsolationLevel::kSnapshot});
    Status st = txn->Get(t, "k" + std::to_string(i), &v);
    EXPECT_TRUE(st.IsNotFound()) << "unacked k" << i << " must not recover";
    txn->Commit();
  }
  EXPECT_TRUE(CommitPut(db.get(), t, "post", "heal").ok());
}

}  // namespace
}  // namespace ssidb
