// CommitCombiner tests: the differential property at the heart of the
// flat-combining certification stage — a batched combining pass must abort
// EXACTLY the transaction set the serial critical section (PR 5's
// window_mu_, preserved as the combiner's non-batching mode) aborts, and
// hand out identical commit timestamps — plus TSan-wired stress for the
// slot array under contended SSI commits.
//
// Three layers:
//   1. Randomized conflict graphs, certified twice at the unit level: once
//      serially in combiner processing order, once as one combined batch
//      (Post/Combine/Harvest pins the batch composition). Verdicts and
//      timestamps must match element-wise, in both conflict-tracking
//      representations.
//   2. Full-engine differential over every §4.7 interleaving: the same
//      replay with certification_batching on and off must commit the same
//      transactions for the same reasons.
//   3. Stress: contended SSI read-modify-writes hammer Certify from many
//      threads (the slot-claim / combine / harvest protocol), with the
//      engine's counters cross-checked after quiesce.

#include <gtest/gtest.h>

#include <atomic>
#include <barrier>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/common/encoding.h"
#include "src/common/random.h"
#include "src/db/db.h"
#include "src/lock/lock_manager.h"
#include "src/ssi/conflict_tracker.h"
#include "src/txn/commit_combiner.h"
#include "src/txn/commit_ring.h"
#include "src/txn/log_manager.h"
#include "src/txn/txn_manager.h"
#include "tests/interleaving_harness.h"

namespace ssidb {
namespace {

/// A candidate certification request in a randomized conflict graph.
struct Candidate {
  std::shared_ptr<TxnState> state;
  bool has_writes = false;
};

/// One twin engine: enough machinery to run real ConflictTracker commit
/// checks over hand-built conflict graphs.
struct TwinEngine {
  explicit TwinEngine(const DBOptions& opts)
      : log(opts.log), locks(LockManager::Config{}),
        mgr(opts, &locks, &log), tracker(opts, &mgr), ring(64) {}

  LogManager log;
  LockManager locks;
  TxnManager mgr;
  ConflictTracker tracker;
  CommitRing ring;
};

/// Mirror one randomized conflict graph into `eng`, returning the
/// candidates in construction order. The graph has `committed` already-
/// committed partners (ids 1000+) and `k` certification candidates whose
/// in/out conflict state is drawn from `rng` — including references to
/// fellow candidates in the same batch, the case batch atomicity is about.
std::vector<Candidate> BuildGraph(const DBOptions& opts, uint64_t seed,
                                  int committed, int k) {
  Random rng(seed);
  std::vector<std::shared_ptr<TxnState>> partners;
  for (int p = 0; p < committed; ++p) {
    auto t = std::make_shared<TxnState>(1000 + p,
                                        IsolationLevel::kSerializableSSI);
    t->commit_ts.store(2 + rng.Uniform(8));
    t->status.store(TxnStatus::kCommitted);
    partners.push_back(std::move(t));
  }
  std::vector<Candidate> out;
  for (int i = 0; i < k; ++i) {
    Candidate c;
    c.state =
        std::make_shared<TxnState>(1 + i, IsolationLevel::kSerializableSSI);
    c.state->read_ts.store(1);
    c.has_writes = rng.Bernoulli(0.7);
    out.push_back(std::move(c));
  }
  auto pick_ref = [&](ConflictRef* ref) {
    switch (rng.Uniform(5)) {
      case 0:
        break;  // kNone
      case 1:
        ref->SetSelf();
        break;
      case 2:  // Committed partner (or none if there are none).
        if (committed > 0) {
          ref->SetOther(partners[rng.Uniform(committed)]);
        }
        break;
      case 3:  // Same-batch candidate: the batch-atomicity case.
        ref->SetOther(out[rng.Uniform(k)].state);
        break;
      case 4:
        ref->Collapse(2 + rng.Uniform(8));
        break;
    }
  };
  for (Candidate& c : out) {
    if (opts.conflict_tracking == ConflictTracking::kFlags) {
      c.state->in_conflict_flag = rng.Bernoulli(0.5);
      c.state->out_conflict_flag = rng.Bernoulli(0.5);
    } else {
      pick_ref(&c.state->in_ref);
      pick_ref(&c.state->out_ref);
    }
  }
  return out;
}

/// Certify every candidate and return (verdict ok?, commit_ts) pairs in
/// candidate order. `serial` = the reference critical section: process in
/// `order`, check then allocate, one at a time. Otherwise: Post all in
/// candidate order, one Combine pass, Harvest — and emit the slot order
/// the combiner used through *order so the serial twin can mirror it.
std::vector<std::pair<bool, Timestamp>> CertifySerial(
    TwinEngine* eng, std::vector<Candidate>* cands,
    const std::vector<size_t>& order) {
  std::vector<std::pair<bool, Timestamp>> results(cands->size());
  for (size_t idx : order) {
    Candidate& c = (*cands)[idx];
    const Status v = eng->tracker.CommitCheck(c.state.get());
    Timestamp ts = 0;
    if (v.ok()) {
      ts = c.has_writes ? eng->ring.Allocate() : eng->ring.stable();
      c.state->commit_ts.store(ts, std::memory_order_release);
    }
    results[idx] = {v.ok(), ts};
  }
  return results;
}

std::vector<std::pair<bool, Timestamp>> CertifyBatched(
    TwinEngine* eng, std::vector<Candidate>* cands,
    std::vector<size_t>* order_out) {
  CommitCombiner combiner(&eng->ring, /*slots=*/16, /*batching=*/true);
  std::vector<CommitCombiner::CheckFn> checks;
  checks.reserve(cands->size());
  for (Candidate& c : *cands) {
    TxnState* raw = c.state.get();
    checks.emplace_back(
        [eng, raw](TxnState*) { return eng->tracker.CommitCheck(raw); });
  }
  std::vector<size_t> slots;
  for (size_t i = 0; i < cands->size(); ++i) {
    slots.push_back(
        combiner.Post((*cands)[i].state.get(), &checks[i],
                      (*cands)[i].has_writes));
  }
  EXPECT_EQ(combiner.Combine(), cands->size());
  EXPECT_EQ(combiner.combined_txns(), cands->size());
  EXPECT_EQ(combiner.max_batch(), cands->size());
  // The pass visits pending requests in ascending slot index: that is the
  // batch's certification order.
  std::vector<size_t> by_slot(cands->size());
  for (size_t i = 0; i < cands->size(); ++i) by_slot[i] = i;
  std::sort(by_slot.begin(), by_slot.end(),
            [&](size_t a, size_t b) { return slots[a] < slots[b]; });
  *order_out = by_slot;

  std::vector<std::pair<bool, Timestamp>> results(cands->size());
  for (size_t i = 0; i < cands->size(); ++i) {
    Timestamp ts = 0;
    const Status v = combiner.Harvest(slots[i], &ts);
    results[i] = {v.ok(), ts};
  }
  return results;
}

void RunDifferential(ConflictTracking mode) {
  for (uint64_t seed = 1; seed <= 200; ++seed) {
    DBOptions opts;
    opts.conflict_tracking = mode;
    Random shape(seed * 7919);
    const int committed = static_cast<int>(shape.Uniform(4));
    const int k = 2 + static_cast<int>(shape.Uniform(7));

    // Twin graphs: same seed => isomorphic conflict state.
    std::vector<Candidate> batched_g = BuildGraph(opts, seed, committed, k);
    std::vector<Candidate> serial_g = BuildGraph(opts, seed, committed, k);

    TwinEngine batched_e(opts);
    TwinEngine serial_e(opts);
    std::vector<size_t> order;
    const auto batched = CertifyBatched(&batched_e, &batched_g, &order);
    const auto serial = CertifySerial(&serial_e, &serial_g, order);

    for (int i = 0; i < k; ++i) {
      EXPECT_EQ(batched[i].first, serial[i].first)
          << "verdict diverged: seed=" << seed << " candidate=" << i;
      EXPECT_EQ(batched[i].second, serial[i].second)
          << "commit_ts diverged: seed=" << seed << " candidate=" << i;
    }
  }
}

TEST(CommitCombinerDifferentialTest, RandomConflictGraphsMatchSerialRefs) {
  RunDifferential(ConflictTracking::kReferences);
}

TEST(CommitCombinerDifferentialTest, RandomConflictGraphsMatchSerialFlags) {
  RunDifferential(ConflictTracking::kFlags);
}

/// Full-engine differential over the §4.7 interleaving space: batching on
/// vs off (the serial reference engine) must produce identical outcomes —
/// same committed transaction sets, same abort classes, same MVSG verdict.
TEST(CommitCombinerDifferentialTest, InterleavingsMatchSerialCertification) {
  using interleave::AllInterleavings;
  using interleave::Replay;
  using interleave::ReplayResult;

  struct Case {
    std::vector<std::vector<interleave::Op>> programs;
    int num_txns;
  };
  const Case cases[] = {{interleave::WriteSkewPrograms(), 2},
                        {interleave::TestSetPrograms(), 3}};
  for (const Case& c : cases) {
    for (const auto& interleaving : AllInterleavings(c.programs)) {
      DBOptions batched_opts;
      batched_opts.certification_batching = true;
      DBOptions serial_opts;
      serial_opts.certification_batching = false;
      const ReplayResult b = Replay(interleaving, c.num_txns,
                                    IsolationLevel::kSerializableSSI,
                                    batched_opts);
      const ReplayResult s = Replay(interleaving, c.num_txns,
                                    IsolationLevel::kSerializableSSI,
                                    serial_opts);
      EXPECT_EQ(b.committed_txns, s.committed_txns);
      EXPECT_EQ(b.unsafe_aborts, s.unsafe_aborts);
      EXPECT_EQ(b.other_aborts, s.other_aborts);
      EXPECT_EQ(b.history_serializable, s.history_serializable);
      EXPECT_TRUE(b.history_serializable);
    }
  }
}

/// TSan-wired stress for the combiner slot array: contended SSI
/// read-modify-writes drive many concurrent Certify calls (slot claims,
/// combining passes on behalf of peers, harvests) plus the conflict-free
/// fast path, all racing the epoch-based suspended-state reclamation.
///
/// Each round is barrier-synchronized so every transaction in it is
/// genuinely concurrent, and the access pattern is a ring (thread w reads
/// thread w+1's key, writes its own): that plants rw-antidependencies in
/// every round, so the combiner is guaranteed work even on a single-CPU
/// machine where free-running threads would rarely overlap.
TEST(CommitCombinerStressTest, ContendedSSICommitsUnderCombining) {
  DBOptions opts;
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(opts, &db).ok());
  TableId table = 0;
  ASSERT_TRUE(db->CreateTable("t", &table).ok());
  constexpr int kThreads = 8;
  {
    auto seed = db->Begin({IsolationLevel::kSnapshot});
    for (uint64_t i = 0; i < kThreads; ++i) {
      ASSERT_TRUE(seed->Insert(table, EncodeU64Key(i), "0").ok());
    }
    ASSERT_TRUE(seed->Commit().ok());
  }

  constexpr int kRounds = 150;
  std::barrier sync(kThreads);
  std::atomic<uint64_t> committed{0};
  std::atomic<uint64_t> aborted{0};
  std::vector<std::thread> workers;
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([&, w] {
      for (int round = 0; round < kRounds; ++round) {
        sync.arrive_and_wait();
        auto txn = db->Begin({IsolationLevel::kSerializableSSI});
        std::string value;
        txn->Get(table, EncodeU64Key((w + 1) % kThreads), &value);
        sync.arrive_and_wait();  // Everyone reads before anyone commits.
        txn->Put(table, EncodeU64Key(w), "x");
        if (txn->Commit().ok()) {
          committed.fetch_add(1, std::memory_order_relaxed);
        } else {
          aborted.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& t : workers) t.join();

  EXPECT_EQ(committed.load() + aborted.load(),
            static_cast<uint64_t>(kThreads) * kRounds);
  EXPECT_GT(committed.load(), 0u);

  DBStats s = db->GetStats();
  EXPECT_EQ(s.active_txns, 0u);
  // Every SSI commit either certified (combined) or took the fast path;
  // combined also counts certification failures, but not transactions the
  // tracker aborted on access before they ever reached Commit.
  EXPECT_GE(s.commit_combined_txns + s.commit_fastpath, committed.load());
  EXPECT_LE(s.commit_combined_txns + s.commit_fastpath,
            committed.load() + aborted.load());
  EXPECT_LE(s.commit_combine_batches, s.commit_combined_txns);
  // The ring pattern forces conflict state every round: certification must
  // actually have happened, not just the fast path.
  EXPECT_GT(s.commit_combined_txns, 0u);
  EXPECT_GE(s.commit_max_batch, 1u);
}

}  // namespace
}  // namespace ssidb
