#include "src/storage/version.h"

#include <cassert>

namespace ssidb {

VersionChain::~VersionChain() { FreeAllLocked(); }

void VersionChain::FreeAllLocked() {
  Version* v = newest_;
  while (v != nullptr) {
    Version* older = v->older;
    delete v;
    v = older;
  }
  newest_ = nullptr;
}

ReadResult VersionChain::Read(TxnId reader, Timestamp read_ts,
                              std::string* value) {
  ReadResult result;
  std::lock_guard<std::mutex> guard(latch_);
  accessed_ = true;
  for (Version* v = newest_; v != nullptr; v = v->older) {
    if (v->creator_txn_id == reader) {
      // A transaction always sees its own writes (§2.5).
      result.found = !v->tombstone;
      result.own_write = true;
      if (result.found && value != nullptr) *value = v->value;
      return result;
    }
    const Timestamp cts = v->commit_ts.load(std::memory_order_acquire);
    if (cts == 0) {
      // Uncommitted version of a concurrent writer. Invisible; the
      // rw-conflict with its creator is detected through the lock table
      // (Fig 3.4 line 3), not here, to close the §3.2 race.
      continue;
    }
    if (cts > read_ts) {
      result.newer.push_back(NewerVersionInfo{v->creator_txn_id, cts});
      continue;
    }
    result.found = !v->tombstone;
    result.version_cts = cts;
    if (result.found && value != nullptr) *value = v->value;
    return result;
  }
  // Nothing visible. If the chain's cold anchor was spilled to a run file
  // it IS visible to this snapshot (spilled cts <= prune horizon <=
  // read_ts), so the caller must fault it back and retry.
  result.evicted = evicted_;
  return result;
}

Version* VersionChain::InstallUncommitted(TxnId writer, Slice value,
                                          bool tombstone, bool* replaced_own) {
  std::lock_guard<std::mutex> guard(latch_);
  accessed_ = true;
  *replaced_own = false;
  if (newest_ != nullptr && newest_->creator_txn_id == writer &&
      newest_->commit_ts.load(std::memory_order_relaxed) == 0) {
    // Second write by the same transaction: overwrite in place.
    newest_->value = value.ToString();
    newest_->tombstone = tombstone;
    *replaced_own = true;
    return newest_;
  }
  // The exclusive lock held by the writer guarantees no other uncommitted
  // version exists at the head.
  assert(newest_ == nullptr ||
         newest_->commit_ts.load(std::memory_order_relaxed) != 0);
  Version* v = new Version(writer);
  v->value = value.ToString();
  v->tombstone = tombstone;
  v->older = newest_;
  newest_ = v;
  return v;
}

void VersionChain::InstallRecovered(Timestamp commit_ts, Slice value,
                                    bool tombstone) {
  assert(commit_ts != 0);
  std::lock_guard<std::mutex> guard(latch_);
  if (newest_ != nullptr &&
      newest_->commit_ts.load(std::memory_order_relaxed) >= commit_ts) {
    return;  // Already present (repeat replay) — keep the chain as is.
  }
  Version* v = new Version(/*creator=*/0);
  v->value = value.ToString();
  v->tombstone = tombstone;
  v->commit_ts.store(commit_ts, std::memory_order_release);
  v->older = newest_;
  newest_ = v;
}

void VersionChain::RemoveUncommitted(TxnId writer) {
  std::lock_guard<std::mutex> guard(latch_);
  if (newest_ != nullptr && newest_->creator_txn_id == writer &&
      newest_->commit_ts.load(std::memory_order_relaxed) == 0) {
    Version* dead = newest_;
    newest_ = dead->older;
    delete dead;
  }
}

bool VersionChain::HasCommittedVersionAfter(Timestamp since) {
  std::lock_guard<std::mutex> guard(latch_);
  for (Version* v = newest_; v != nullptr; v = v->older) {
    const Timestamp cts = v->commit_ts.load(std::memory_order_acquire);
    if (cts == 0) continue;
    // Versions are committed in timestamp order along the chain, so the
    // first committed version is the newest committed one.
    return cts > since;
  }
  return false;
}

bool VersionChain::LatestCommitted(Timestamp* commit_ts, bool* tombstone) {
  std::lock_guard<std::mutex> guard(latch_);
  for (Version* v = newest_; v != nullptr; v = v->older) {
    const Timestamp cts = v->commit_ts.load(std::memory_order_acquire);
    if (cts == 0) continue;
    if (commit_ts != nullptr) *commit_ts = cts;
    if (tombstone != nullptr) *tombstone = v->tombstone;
    return true;
  }
  return false;
}

size_t VersionChain::Prune(Timestamp min_read_ts) {
  std::lock_guard<std::mutex> guard(latch_);
  // Find the newest committed version visible at min_read_ts; everything
  // older is unreachable by any active or future snapshot.
  Version* anchor = nullptr;
  for (Version* v = newest_; v != nullptr; v = v->older) {
    const Timestamp cts = v->commit_ts.load(std::memory_order_acquire);
    if (cts != 0 && cts <= min_read_ts) {
      anchor = v;
      break;
    }
  }
  if (anchor == nullptr) return 0;
  size_t freed = 0;
  Version* v = anchor->older;
  anchor->older = nullptr;
  while (v != nullptr) {
    Version* older = v->older;
    delete v;
    v = older;
    ++freed;
  }
  return freed;
}

size_t VersionChain::size() const {
  std::lock_guard<std::mutex> guard(latch_);
  size_t n = 0;
  for (Version* v = newest_; v != nullptr; v = v->older) ++n;
  return n;
}

VersionChain::SpillAction VersionChain::SpillProbe(Timestamp horizon,
                                                   uint64_t max_value_bytes,
                                                   std::string* value,
                                                   Timestamp* commit_ts,
                                                   bool* tombstone) {
  std::lock_guard<std::mutex> guard(latch_);
  // Note: no evicted_ test — a chain can be evicted AND hold resident
  // versions (an upsert over an evicted chain installs at the head without
  // faulting the anchor in). Such a hybrid chain re-spills through the
  // normal path: its newest committed version becomes the new anchor and
  // shadows the stale run entry (newest-first lookup).
  if (newest_ == nullptr) return SpillAction::kSkip;
  if (accessed_) {
    accessed_ = false;  // Second chance: spill only if still cold next sweep.
    return SpillAction::kSkip;
  }
  const Timestamp cts = newest_->commit_ts.load(std::memory_order_acquire);
  if (cts == 0) return SpillAction::kSkip;  // Uncommitted head: in use.
  // Committed-at-head implies the whole chain is committed, and versions
  // commit in timestamp order, so `newest_` is the anchor.
  if (cts > horizon) return SpillAction::kSkip;  // Some snapshot may differ.
  if (cts == spilled_cts_) {
    // The anchor is already durable in a live run (an earlier CommitSpill
    // lost its re-verification race, or recovery kept a resident copy).
    FreeAllLocked();
    evicted_ = true;
    return SpillAction::kDropNow;
  }
  if (max_value_bytes == 0 || newest_->value.size() > max_value_bytes) {
    return SpillAction::kSkip;  // Oversized for a run page: stays resident.
  }
  *value = newest_->value;
  *commit_ts = cts;
  *tombstone = newest_->tombstone;
  return SpillAction::kWrite;
}

bool VersionChain::CommitSpill(Timestamp cts) {
  std::lock_guard<std::mutex> guard(latch_);
  // The run is durable regardless of what happened to the chain since the
  // probe; remember that so a skipped eviction retries as kDropNow.
  if (cts > spilled_cts_) spilled_cts_ = cts;
  if (newest_ == nullptr) return false;
  if (accessed_) return false;  // Touched since the probe: stay resident.
  const Timestamp head_cts = newest_->commit_ts.load(std::memory_order_acquire);
  if (head_cts != cts) return false;  // New write (committed or not) arrived.
  FreeAllLocked();
  evicted_ = true;
  return true;
}

void VersionChain::FaultInstall(Timestamp cts, Slice value, bool tombstone) {
  assert(cts != 0);
  std::lock_guard<std::mutex> guard(latch_);
  accessed_ = true;
  if (!evicted_) return;  // Another faulter won the race.
  // Every resident version was installed after eviction and committed (or
  // will commit) past the prune horizon, hence past `cts`: append at the
  // tail to keep the chain newest-first.
  Version* v = new Version(/*creator=*/0);
  v->value = value.ToString();
  v->tombstone = tombstone;
  v->commit_ts.store(cts, std::memory_order_release);
  if (newest_ == nullptr) {
    newest_ = v;
  } else {
    Version* tail = newest_;
    while (tail->older != nullptr) tail = tail->older;
    tail->older = v;
  }
  evicted_ = false;
}

void VersionChain::SetEvictedRecovered(Timestamp cts) {
  assert(cts != 0);
  std::lock_guard<std::mutex> guard(latch_);
  if (cts <= spilled_cts_) return;  // An older run entry; already covered.
  spilled_cts_ = cts;
  if (newest_ != nullptr &&
      newest_->commit_ts.load(std::memory_order_relaxed) >= cts) {
    // WAL/checkpoint replay installed this version (or a newer one): the
    // resident copy wins; the run entry is merely its durable twin.
    return;
  }
  // The run holds a newer version than anything replayed: the replayed
  // versions are stale prefixes of history nothing can read (recovery
  // admits no active snapshots). Evict the chain so the run stays its home.
  FreeAllLocked();
  evicted_ = true;
}

bool VersionChain::evicted() const {
  std::lock_guard<std::mutex> guard(latch_);
  return evicted_;
}

}  // namespace ssidb
