#include "src/storage/version.h"

#include <cassert>

namespace ssidb {

VersionChain::~VersionChain() {
  Version* v = newest_;
  while (v != nullptr) {
    Version* older = v->older;
    delete v;
    v = older;
  }
}

ReadResult VersionChain::Read(TxnId reader, Timestamp read_ts,
                              std::string* value) {
  ReadResult result;
  std::lock_guard<std::mutex> guard(latch_);
  for (Version* v = newest_; v != nullptr; v = v->older) {
    if (v->creator_txn_id == reader) {
      // A transaction always sees its own writes (§2.5).
      result.found = !v->tombstone;
      result.own_write = true;
      if (result.found && value != nullptr) *value = v->value;
      return result;
    }
    const Timestamp cts = v->commit_ts.load(std::memory_order_acquire);
    if (cts == 0) {
      // Uncommitted version of a concurrent writer. Invisible; the
      // rw-conflict with its creator is detected through the lock table
      // (Fig 3.4 line 3), not here, to close the §3.2 race.
      continue;
    }
    if (cts > read_ts) {
      result.newer.push_back(NewerVersionInfo{v->creator_txn_id, cts});
      continue;
    }
    result.found = !v->tombstone;
    result.version_cts = cts;
    if (result.found && value != nullptr) *value = v->value;
    return result;
  }
  return result;  // Key did not exist in this snapshot.
}

Version* VersionChain::InstallUncommitted(TxnId writer, Slice value,
                                          bool tombstone, bool* replaced_own) {
  std::lock_guard<std::mutex> guard(latch_);
  *replaced_own = false;
  if (newest_ != nullptr && newest_->creator_txn_id == writer &&
      newest_->commit_ts.load(std::memory_order_relaxed) == 0) {
    // Second write by the same transaction: overwrite in place.
    newest_->value = value.ToString();
    newest_->tombstone = tombstone;
    *replaced_own = true;
    return newest_;
  }
  // The exclusive lock held by the writer guarantees no other uncommitted
  // version exists at the head.
  assert(newest_ == nullptr ||
         newest_->commit_ts.load(std::memory_order_relaxed) != 0);
  Version* v = new Version(writer);
  v->value = value.ToString();
  v->tombstone = tombstone;
  v->older = newest_;
  newest_ = v;
  return v;
}

void VersionChain::InstallRecovered(Timestamp commit_ts, Slice value,
                                    bool tombstone) {
  assert(commit_ts != 0);
  std::lock_guard<std::mutex> guard(latch_);
  if (newest_ != nullptr &&
      newest_->commit_ts.load(std::memory_order_relaxed) >= commit_ts) {
    return;  // Already present (repeat replay) — keep the chain as is.
  }
  Version* v = new Version(/*creator=*/0);
  v->value = value.ToString();
  v->tombstone = tombstone;
  v->commit_ts.store(commit_ts, std::memory_order_release);
  v->older = newest_;
  newest_ = v;
}

void VersionChain::RemoveUncommitted(TxnId writer) {
  std::lock_guard<std::mutex> guard(latch_);
  if (newest_ != nullptr && newest_->creator_txn_id == writer &&
      newest_->commit_ts.load(std::memory_order_relaxed) == 0) {
    Version* dead = newest_;
    newest_ = dead->older;
    delete dead;
  }
}

bool VersionChain::HasCommittedVersionAfter(Timestamp since) {
  std::lock_guard<std::mutex> guard(latch_);
  for (Version* v = newest_; v != nullptr; v = v->older) {
    const Timestamp cts = v->commit_ts.load(std::memory_order_acquire);
    if (cts == 0) continue;
    // Versions are committed in timestamp order along the chain, so the
    // first committed version is the newest committed one.
    return cts > since;
  }
  return false;
}

bool VersionChain::LatestCommitted(Timestamp* commit_ts, bool* tombstone) {
  std::lock_guard<std::mutex> guard(latch_);
  for (Version* v = newest_; v != nullptr; v = v->older) {
    const Timestamp cts = v->commit_ts.load(std::memory_order_acquire);
    if (cts == 0) continue;
    if (commit_ts != nullptr) *commit_ts = cts;
    if (tombstone != nullptr) *tombstone = v->tombstone;
    return true;
  }
  return false;
}

size_t VersionChain::Prune(Timestamp min_read_ts) {
  std::lock_guard<std::mutex> guard(latch_);
  // Find the newest committed version visible at min_read_ts; everything
  // older is unreachable by any active or future snapshot.
  Version* anchor = nullptr;
  for (Version* v = newest_; v != nullptr; v = v->older) {
    const Timestamp cts = v->commit_ts.load(std::memory_order_acquire);
    if (cts != 0 && cts <= min_read_ts) {
      anchor = v;
      break;
    }
  }
  if (anchor == nullptr) return 0;
  size_t freed = 0;
  Version* v = anchor->older;
  anchor->older = nullptr;
  while (v != nullptr) {
    Version* older = v->older;
    delete v;
    v = older;
    ++freed;
  }
  return freed;
}

size_t VersionChain::size() const {
  std::lock_guard<std::mutex> guard(latch_);
  size_t n = 0;
  for (Version* v = newest_; v != nullptr; v = v->older) ++n;
  return n;
}

}  // namespace ssidb
