#include "src/storage/catalog.h"

namespace ssidb {

Catalog::~Catalog() {
  const uint32_t n = count_.load(std::memory_order_acquire);
  for (uint32_t i = 0; i < n; ++i) {
    delete slots_[i].load(std::memory_order_relaxed);
  }
}

Status Catalog::CreateTable(const std::string& name, TableId* id,
                            const std::function<void(TableId)>&
                                before_publish) {
  std::lock_guard<std::mutex> guard(create_mu_);
  if (names_.count(name) > 0) {
    return Status::InvalidArgument("table exists: " + name);
  }
  const uint32_t n = count_.load(std::memory_order_relaxed);
  if (n >= kMaxTables) {
    return Status::InvalidArgument("table limit reached");
  }
  const TableId tid = static_cast<TableId>(n);
  Table* table = new Table(tid, name);
  table->SetStorageTier(tier_);
  slots_[tid].store(table, std::memory_order_relaxed);
  if (before_publish) before_publish(tid);
  // The release publish orders the slot store (and the hook's side
  // effects) before any reader that observes the new count.
  count_.store(n + 1, std::memory_order_release);
  names_.emplace(name, tid);
  if (id != nullptr) *id = tid;
  return Status::OK();
}

Status Catalog::FindTable(const std::string& name, TableId* id) const {
  std::lock_guard<std::mutex> guard(create_mu_);
  auto it = names_.find(name);
  if (it == names_.end()) return Status::NotFound("no table " + name);
  *id = it->second;
  return Status::OK();
}

}  // namespace ssidb
