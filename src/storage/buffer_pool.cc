#include "src/storage/buffer_pool.h"

#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "src/obs/trace_ring.h"

namespace ssidb {

namespace {

/// Writeback retry budget: the first attempt plus this many retries, with
/// exponential backoff, before the failure is surfaced to the claimer.
constexpr int kWritebackRetries = 2;
constexpr uint32_t kWritebackBackoffUs = 50;

Status PreadFull(io::Env* env, int fd, void* buf, size_t n, uint64_t offset) {
  uint8_t* p = static_cast<uint8_t*>(buf);
  size_t done = 0;
  while (done < n) {
    const ssize_t r = env->Pread(fd, p + done, n - done,
                                 static_cast<off_t>(offset + done));
    if (r < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("pread: ") + strerror(errno));
    }
    if (r == 0) {
      // Short file: the tail of the page is zero (the writer pads pages,
      // so this only happens for a corrupt/truncated file — the page CRC
      // check downstream rejects it).
      memset(p + done, 0, n - done);
      return Status::OK();
    }
    done += static_cast<size_t>(r);
  }
  return Status::OK();
}

Status PwriteFull(io::Env* env, int fd, const void* buf, size_t n,
                  uint64_t offset) {
  const uint8_t* p = static_cast<const uint8_t*>(buf);
  size_t done = 0;
  while (done < n) {
    const ssize_t r = env->Pwrite(fd, p + done, n - done,
                                  static_cast<off_t>(offset + done));
    if (r < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("pwrite: ") + strerror(errno));
    }
    done += static_cast<size_t>(r);
  }
  return Status::OK();
}

}  // namespace

PoolFile::~PoolFile() {
  if (fd_ >= 0) env_->Close(fd_);
}

BufferPool::BufferPool(uint64_t pool_bytes, uint32_t page_bytes,
                       io::Env* env)
    : page_bytes_(page_bytes),
      env_(io::ResolveEnv(env)),
      arena_(new uint8_t[static_cast<size_t>(
          (pool_bytes / page_bytes < 4 ? 4 : pool_bytes / page_bytes) *
          page_bytes)]) {
  const size_t n = static_cast<size_t>(
      pool_bytes / page_bytes < 4 ? 4 : pool_bytes / page_bytes);
  frames_.reserve(n);
  free_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    frames_.push_back(std::make_unique<Frame>());
    free_.push_back(static_cast<uint32_t>(n - 1 - i));
  }
}

BufferPool::~BufferPool() = default;

void BufferPool::RegisterFile(const std::shared_ptr<PoolFile>& file) {
  std::lock_guard<std::mutex> guard(map_mu_);
  files_[file->id()] = file;
}

void BufferPool::Purge(uint64_t file_id) {
  std::lock_guard<std::mutex> guard(map_mu_);
  files_.erase(file_id);
  for (uint32_t i = 0; i < frames_.size(); ++i) {
    Frame& fr = *frames_[i];
    if (fr.state == FrameState::kFree || fr.file_id != file_id) continue;
    if (fr.pins.load(std::memory_order_acquire) != 0) {
      // A faulter still parses this page; it keeps the frame (and the
      // descriptor, via fr.file) until Unpin. The mapping stays — the
      // purged id is never looked up again, and the clock reclaims the
      // frame once unpinned.
      continue;
    }
    map_.erase(TagKey{fr.file_id, fr.page_no});
    fr.state = FrameState::kFree;
    fr.dirty = false;
    fr.referenced = false;
    fr.file.reset();
    free_.push_back(i);
  }
}

bool BufferPool::ClaimVictimLocked(uint32_t* idx) {
  if (!free_.empty()) {
    *idx = free_.back();
    free_.pop_back();
    return true;
  }
  // Clock scan, at most two full revolutions: the first clears reference
  // bits, the second takes the first unpinned frame.
  const size_t n = frames_.size();
  for (size_t step = 0; step < 2 * n; ++step) {
    Frame& fr = *frames_[clock_hand_];
    const uint32_t at = clock_hand_;
    clock_hand_ = (clock_hand_ + 1) % static_cast<uint32_t>(n);
    if (fr.pins.load(std::memory_order_acquire) != 0) continue;
    if (fr.state == FrameState::kLoading) continue;
    if (fr.referenced) {
      fr.referenced = false;  // Second chance.
      continue;
    }
    *idx = at;
    return true;
  }
  return false;  // Every frame pinned.
}

Status BufferPool::ClaimFrameLocked(uint64_t file_id, uint32_t page_no,
                                    const std::shared_ptr<PoolFile>& file,
                                    uint32_t* idx, Writeback* wb) {
  uint32_t victim = 0;
  if (!ClaimVictimLocked(&victim)) {
    return Status::IOError("buffer pool exhausted: every frame pinned");
  }
  Frame& fr = *frames_[victim];
  if (fr.state != FrameState::kFree && fr.dirty) {
    // Dirty victim: nothing is claimed. Pin it in place (it keeps its tag,
    // its mapping and its content) and hand the writeback to the caller —
    // the dirty bit only clears on a successful write, so a failure can
    // never lose the page; the frame just stays ineligible for reuse.
    fr.pins.fetch_add(1, std::memory_order_acq_rel);
    wb->needed = true;
    wb->file = fr.file;
    wb->file_id = fr.file_id;
    wb->page_no = fr.page_no;
    wb->frame = victim;
    return Status::OK();
  }
  if (fr.state != FrameState::kFree) {
    map_.erase(TagKey{fr.file_id, fr.page_no});
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
  fr.file_id = file_id;
  fr.page_no = page_no;
  fr.state = FrameState::kLoading;
  fr.dirty = false;
  fr.referenced = true;
  fr.file = file;
  fr.pins.store(1, std::memory_order_release);
  map_[TagKey{file_id, page_no}] = victim;
  *idx = victim;
  return Status::OK();
}

Status BufferPool::WritebackFrame(const Writeback& wb) {
  Status st;
  for (int attempt = 0; attempt <= kWritebackRetries; ++attempt) {
    if (attempt > 0) {
      io_retries_.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::sleep_for(
          std::chrono::microseconds(kWritebackBackoffUs << attempt));
    }
    const uint64_t t0 = obs::NowNanos();
    st = PwriteFull(env_, wb.file->fd(), frame_data(wb.frame), page_bytes_,
                    static_cast<uint64_t>(wb.page_no) * page_bytes_);
    write_io_ns_.Record(obs::NowNanos() - t0);
    if (st.ok()) break;
  }
  if (!st.ok()) {
    io_errors_.fetch_add(1, std::memory_order_relaxed);
    if (obs::TraceRing* trace = trace_.load(std::memory_order_acquire)) {
      trace->Emit(obs::TraceEvent::kIOError, 0, /*arg16=*/3,
                  /*arg32=*/wb.page_no, /*payload=*/wb.file_id);
    }
    return st;  // Frame stays dirty + mapped: nothing lost.
  }
  {
    // The caller's pin keeps the tag stable; the re-check is belt and
    // braces against a future claim-path change.
    std::lock_guard<std::mutex> guard(map_mu_);
    Frame& fr = *frames_[wb.frame];
    if (fr.file_id == wb.file_id && fr.page_no == wb.page_no &&
        fr.state == FrameState::kValid) {
      fr.dirty = false;
    }
  }
  writebacks_.fetch_add(1, std::memory_order_relaxed);
  return st;
}

Status BufferPool::PinPage(uint64_t file_id, uint32_t page_no, Pin* out) {
  for (int attempt = 0;; ++attempt) {
    std::shared_ptr<PoolFile> file;
    uint32_t idx = 0;
    Writeback wb;
    bool loader = false;
    {
      std::lock_guard<std::mutex> guard(map_mu_);
      auto it = map_.find(TagKey{file_id, page_no});
      if (it != map_.end()) {
        Frame& fr = *frames_[it->second];
        fr.pins.fetch_add(1, std::memory_order_acq_rel);
        fr.referenced = true;
        idx = it->second;
        hits_.fetch_add(1, std::memory_order_relaxed);
      } else {
        auto fit = files_.find(file_id);
        if (fit == files_.end()) {
          return Status::IOError("buffer pool: unregistered file");
        }
        file = fit->second;
        Status st = ClaimFrameLocked(file_id, page_no, file, &idx, &wb);
        if (!st.ok()) {
          if (attempt < 1024) {
            // Transient: every frame pinned. Release the mutex and retry;
            // pins are short (parse one page), so this resolves quickly
            // even for a 4-frame test pool.
            goto retry;
          }
          return st;
        }
        if (!wb.needed) {
          loader = true;
          misses_.fetch_add(1, std::memory_order_relaxed);
        }
      }
    }

    if (wb.needed) {
      // The victim was dirty: write it back in place (outside map_mu_),
      // then try the claim again — only a clean frame is ever retagged.
      Status st = WritebackFrame(wb);
      Unpin(wb.frame);
      if (!st.ok()) return st;
      continue;
    }

    if (loader) {
      // Read the page outside map_mu_, while the frame is exclusively
      // ours (one pin, state kLoading keeps waiters parked and the clock
      // away).
      Frame& fr = *frames_[idx];
      Status st;
      {
        const uint64_t t0 = obs::NowNanos();
        st = PreadFull(env_, file->fd(), frame_data(idx), page_bytes_,
                       static_cast<uint64_t>(page_no) * page_bytes_);
        read_io_ns_.Record(obs::NowNanos() - t0);
      }
      {
        std::lock_guard<std::mutex> io_guard(fr.io_mu);
        std::lock_guard<std::mutex> guard(map_mu_);
        fr.state = st.ok() ? FrameState::kValid : FrameState::kFailed;
        if (!st.ok()) {
          // Unmap so a later retry reloads instead of caching the failure.
          map_.erase(TagKey{file_id, page_no});
        }
      }
      fr.io_cv.notify_all();
      if (!st.ok()) {
        Unpin(idx);
        return st;
      }
      out->data = frame_data(idx);
      out->frame = idx;
      return Status::OK();
    }

    {
      // Found in the map: wait out a concurrent loader, then check how the
      // load ended.
      Frame& fr = *frames_[idx];
      FrameState state;
      bool tag_matches;
      {
        std::unique_lock<std::mutex> io_guard(fr.io_mu);
        fr.io_cv.wait(io_guard, [&] {
          std::lock_guard<std::mutex> guard(map_mu_);
          return fr.state != FrameState::kLoading;
        });
        std::lock_guard<std::mutex> guard(map_mu_);
        state = fr.state;
        // Our pin (taken under map_mu_ at lookup) blocks any retag, so the
        // tag must still be ours; re-validate anyway — returning another
        // page's bytes on a mismatch would be silent corruption.
        tag_matches = fr.file_id == file_id && fr.page_no == page_no;
      }
      if (state == FrameState::kValid && tag_matches) {
        out->data = frame_data(idx);
        out->frame = idx;
        return Status::OK();
      }
      Unpin(idx);  // Load failed (or frame recycled): retry from the map.
      if (attempt >= 1024) {
        return Status::IOError("buffer pool: page load failed");
      }
    }
  retry:
    std::this_thread::yield();
  }
}

Status BufferPool::PinForWrite(uint64_t file_id, uint32_t page_no,
                               WritePin* out) {
  for (;;) {
    uint32_t idx = 0;
    Writeback wb;
    {
      std::lock_guard<std::mutex> guard(map_mu_);
      auto fit = files_.find(file_id);
      if (fit == files_.end()) {
        return Status::IOError("buffer pool: unregistered file");
      }
      Status st = ClaimFrameLocked(file_id, page_no, fit->second, &idx, &wb);
      if (!st.ok()) return st;
    }
    if (wb.needed) {
      // Dirty victim: write it back in place first. A failure surfaces
      // here (run creation fails, caller cleans up) while the victim's
      // page survives, dirty and mapped.
      Status st = WritebackFrame(wb);
      Unpin(wb.frame);
      if (!st.ok()) return st;
      continue;
    }
    Frame& fr = *frames_[idx];
    memset(frame_data(idx), 0, page_bytes_);
    {
      std::lock_guard<std::mutex> io_guard(fr.io_mu);
      std::lock_guard<std::mutex> guard(map_mu_);
      fr.state = FrameState::kValid;
      fr.dirty = true;
    }
    fr.io_cv.notify_all();
    out->data = frame_data(idx);
    out->frame = idx;
    return Status::OK();
  }
}

void BufferPool::Unpin(uint32_t frame) {
  frames_[frame]->pins.fetch_sub(1, std::memory_order_acq_rel);
}

Status BufferPool::FlushFile(uint64_t file_id) {
  // Collect the dirty pages under the mutex, pinning each so the clock
  // cannot steal a frame mid-write; write outside. The dirty bit clears
  // only when WritebackFrame's write succeeds — a failed flush leaves
  // every unwritten page dirty and mapped, so a retried FlushFile (or the
  // eviction path) finds exactly the pages that still need the disk.
  std::vector<Writeback> work;
  {
    std::lock_guard<std::mutex> guard(map_mu_);
    for (uint32_t i = 0; i < frames_.size(); ++i) {
      Frame& fr = *frames_[i];
      if (fr.state != FrameState::kValid || !fr.dirty ||
          fr.file_id != file_id) {
        continue;
      }
      fr.pins.fetch_add(1, std::memory_order_acq_rel);
      Writeback wb;
      wb.needed = true;
      wb.file = fr.file;
      wb.file_id = fr.file_id;
      wb.page_no = fr.page_no;
      wb.frame = i;
      work.push_back(std::move(wb));
    }
  }
  Status st;
  for (const Writeback& w : work) {
    if (st.ok()) st = WritebackFrame(w);
    Unpin(w.frame);
  }
  return st;
}

void BufferPool::RegisterMetrics(obs::MetricsRegistry* registry,
                                 obs::TraceRing* trace) {
  registry->RegisterHistogram("pool.read_io_ns", &read_io_ns_);
  registry->RegisterHistogram("pool.write_io_ns", &write_io_ns_);
  if (trace != nullptr) trace_.store(trace, std::memory_order_release);
}

}  // namespace ssidb
