// RunFile: an immutable sorted run — the on-disk home of spilled version
// chains.
//
// A run holds one committed version per key (the chain's anchor at spill
// time: key, commit_ts, tombstone flag, value), sorted by key, packed into
// fixed-size CRC-framed pages, with a fence-key sparse index in the footer
// so a point lookup touches exactly one data page through the buffer pool.
// A key may appear in several runs of a table (respilled after new
// commits); lookups probe runs newest-first and stop at the first hit, and
// compaction merges a table's runs keeping the newest commit_ts per key.
//
// File layout (all integers big-endian via encoding.h):
//   page 0                        header: magic8 "SSIDBRUN", u32 table_id,
//                                 u32 page_bytes, u64 seq, zero padding
//   pages 1..page_count           data pages (format below)
//   footer (after the last page)  magic8 "SSIDBRIX", u32 page_count,
//                                 u32 entry_count_total,
//                                 page_count x { lp first_key },
//                                 u32 crc of the footer bytes above
//   trailer (last 16 bytes)       u64 footer_offset, magic8 "SSIDBEND"
//
// Data page (page_bytes long, zero-padded):
//   u32 crc          CRC32C of bytes [4, 12 + payload_bytes)
//   u32 payload_bytes
//   u32 entry_count
//   entry_count x { lp key, u64 commit_ts, u8 tombstone, lp value }
//
// Durability: the writer serializes into "<name>.tmp", writes data pages
// through the buffer pool (dirty frames, flushed back before the fsync so
// the pool's writeback path is the real write path), fsyncs, renames and
// fsyncs the directory — the checkpoint writers' protocol. A run is only
// opened if its header, trailer and footer CRC validate; data pages are
// CRC-checked on every pool load parse.

#ifndef SSIDB_STORAGE_RUN_FILE_H_
#define SSIDB_STORAGE_RUN_FILE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/storage/buffer_pool.h"
#include "src/storage/version.h"

namespace ssidb {

/// One spilled key: the version-chain anchor at spill time.
struct RunEntry {
  std::string key;
  std::string value;
  Timestamp commit_ts = 0;
  bool tombstone = false;
};

class RunFile {
 public:
  /// Largest entry a page can hold; larger entries are never spilled.
  static uint64_t MaxEntryBytes(uint32_t page_bytes);

  /// Write a run of `entries` (sorted by key, non-empty) for table `table`
  /// into `path` and open it: the data pages flow through `pool` (written
  /// back by FlushFile before the fsync) under the pool file id `file_id`,
  /// so the new run's pages are warm. On success *out holds the opened,
  /// pool-registered run. On any failure (ENOSPC, EIO, writeback) the
  /// partial "<path>.tmp" is removed and the pool purged of the file id —
  /// the directory never accumulates garbage and the caller may retry.
  /// `env` (nullptr = real filesystem) carries every byte.
  static Status Create(const std::string& path, uint32_t table_id,
                       uint64_t seq, uint64_t file_id, uint32_t page_bytes,
                       const std::vector<RunEntry>& entries, BufferPool* pool,
                       bool fsync, std::shared_ptr<RunFile>* out,
                       io::Env* env = nullptr);

  /// Open an existing run (recovery): validate header/footer, load the
  /// fence index, register the descriptor with the pool under `file_id`.
  static Status Open(const std::string& path, uint64_t file_id,
                     BufferPool* pool, std::shared_ptr<RunFile>* out,
                     io::Env* env = nullptr);

  ~RunFile();

  RunFile(const RunFile&) = delete;
  RunFile& operator=(const RunFile&) = delete;

  uint32_t table_id() const { return table_id_; }
  uint64_t seq() const { return seq_; }
  uint64_t file_id() const { return file_->id(); }
  const std::string& path() const { return path_; }
  uint32_t page_count() const { return page_count_; }
  uint64_t entry_count() const { return entry_count_; }

  /// Point lookup through the buffer pool: fence binary search picks the
  /// data page, the pinned page is CRC-checked and searched. *found=false
  /// (OK status) when the key is not in this run.
  Status Lookup(BufferPool* pool, Slice key, RunEntry* out, bool* found) const;

  /// Sequential scan with direct pread — compaction and recovery bypass
  /// the pool so a full-file pass cannot thrash resident hot pages.
  Status ForEachEntry(
      const std::function<void(const RunEntry&)>& fn) const;

 private:
  RunFile(std::string path, std::shared_ptr<PoolFile> file, uint32_t table_id,
          uint64_t seq, uint32_t page_bytes, uint32_t page_count,
          uint64_t entry_count, std::vector<std::string> fences,
          BufferPool* pool, io::Env* env);

  /// Parse one CRC-framed data page; search for `key` if non-null.
  static Status SearchPage(const uint8_t* page, uint32_t page_bytes,
                           const Slice* key, RunEntry* out, bool* found,
                           const std::function<void(const RunEntry&)>& fn);

  const std::string path_;
  const std::shared_ptr<PoolFile> file_;
  const uint32_t table_id_;
  const uint64_t seq_;
  const uint32_t page_bytes_;
  const uint32_t page_count_;
  const uint64_t entry_count_;
  /// fences_[i] = first key of data page i (file page i + 1).
  const std::vector<std::string> fences_;
  /// The pool this run is registered with (for unregistration on destroy).
  BufferPool* const pool_;
  /// Carries ForEachEntry's direct preads.
  io::Env* const env_;
};

}  // namespace ssidb

#endif  // SSIDB_STORAGE_RUN_FILE_H_
