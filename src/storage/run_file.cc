#include "src/storage/run_file.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cassert>
#include <cerrno>
#include <cstring>
#include <filesystem>

#include "src/common/crc32c.h"
#include "src/common/encoding.h"
#include "src/recovery/fs_util.h"

namespace ssidb {

namespace {

constexpr char kRunMagic[] = "SSIDBRUN";
constexpr char kIndexMagic[] = "SSIDBRIX";
constexpr char kEndMagic[] = "SSIDBEND";
constexpr size_t kMagicLen = 8;
constexpr size_t kTrailerLen = 8 + kMagicLen;  // u64 footer_offset + magic.
/// Data-page header: u32 crc, u32 payload_bytes, u32 entry_count.
constexpr uint32_t kPageHeaderLen = 12;

Status PreadFull(io::Env* env, int fd, void* buf, size_t n, uint64_t offset) {
  uint8_t* p = static_cast<uint8_t*>(buf);
  size_t done = 0;
  while (done < n) {
    const ssize_t r =
        env->Pread(fd, p + done, n - done, static_cast<off_t>(offset + done));
    if (r < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("pread run: ") + strerror(errno));
    }
    if (r == 0) return Status::Corruption("run file truncated");
    done += static_cast<size_t>(r);
  }
  return Status::OK();
}

Status PwriteFull(io::Env* env, int fd, const void* buf, size_t n,
                  uint64_t offset) {
  const uint8_t* p = static_cast<const uint8_t*>(buf);
  size_t done = 0;
  while (done < n) {
    const ssize_t r =
        env->Pwrite(fd, p + done, n - done, static_cast<off_t>(offset + done));
    if (r < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("pwrite run: ") + strerror(errno));
    }
    done += static_cast<size_t>(r);
  }
  return Status::OK();
}

uint64_t EntryEncodedBytes(const RunEntry& e) {
  return 4 + e.key.size() + 8 + 1 + 4 + e.value.size();
}

void EncodeEntry(std::string* dst, const RunEntry& e) {
  PutLengthPrefixed(dst, e.key);
  PutBig64(dst, e.commit_ts);
  dst->push_back(e.tombstone ? 1 : 0);
  PutLengthPrefixed(dst, e.value);
}

bool DecodeEntry(Slice page, size_t* offset, RunEntry* e) {
  if (!GetLengthPrefixed(page, offset, &e->key)) return false;
  if (!GetBig64(page, offset, &e->commit_ts)) return false;
  if (*offset >= page.size()) return false;
  e->tombstone = page[*offset] != 0;
  ++*offset;
  return GetLengthPrefixed(page, offset, &e->value);
}

}  // namespace

uint64_t RunFile::MaxEntryBytes(uint32_t page_bytes) {
  return page_bytes > kPageHeaderLen ? page_bytes - kPageHeaderLen : 0;
}

RunFile::RunFile(std::string path, std::shared_ptr<PoolFile> file,
                 uint32_t table_id, uint64_t seq, uint32_t page_bytes,
                 uint32_t page_count, uint64_t entry_count,
                 std::vector<std::string> fences, BufferPool* pool,
                 io::Env* env)
    : path_(std::move(path)),
      file_(std::move(file)),
      table_id_(table_id),
      seq_(seq),
      page_bytes_(page_bytes),
      page_count_(page_count),
      entry_count_(entry_count),
      fences_(std::move(fences)),
      pool_(pool),
      env_(env) {}

RunFile::~RunFile() { pool_->Purge(file_->id()); }

Status RunFile::Create(const std::string& path, uint32_t table_id,
                       uint64_t seq, uint64_t file_id, uint32_t page_bytes,
                       const std::vector<RunEntry>& entries, BufferPool* pool,
                       bool fsync, std::shared_ptr<RunFile>* out,
                       io::Env* env) {
  env = io::ResolveEnv(env);
  assert(!entries.empty());
  assert(pool->page_bytes() == page_bytes);
  const std::string tmp = path + ".tmp";
  const int fd = env->Open(tmp.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return recovery::ErrnoStatus("open", tmp);
  auto file = std::make_shared<PoolFile>(file_id, fd, env);
  pool->RegisterFile(file);

  // Header page.
  std::string header;
  header.append(kRunMagic, kMagicLen);
  PutBig32(&header, table_id);
  PutBig32(&header, page_bytes);
  PutBig64(&header, seq);
  header.resize(page_bytes, '\0');
  Status st = PwriteFull(env, fd, header.data(), header.size(), 0);

  // Data pages, through the pool: build each page's payload, frame it with
  // its CRC, and hand the bytes to a dirty frame. FlushFile below performs
  // the actual pwrites (the pool's writeback path — also exercised early
  // by clock evictions when the pool is smaller than the run).
  std::vector<std::string> fences;
  std::string payload;
  uint32_t entry_count_in_page = 0;
  uint32_t page_no = 0;  // Data page index; file page is page_no + 1.
  std::string first_key_in_page;
  auto emit_page = [&]() -> Status {
    if (entry_count_in_page == 0) return Status::OK();
    std::string framed;
    framed.reserve(kPageHeaderLen + payload.size());
    PutBig32(&framed, 0);  // CRC placeholder.
    PutBig32(&framed, static_cast<uint32_t>(payload.size()));
    PutBig32(&framed, entry_count_in_page);
    framed += payload;
    const uint32_t crc =
        Crc32c(0, framed.data() + 4, framed.size() - 4);
    std::string crc_be;
    PutBig32(&crc_be, crc);
    framed.replace(0, 4, crc_be);
    BufferPool::WritePin pin;
    Status s = pool->PinForWrite(file_id, page_no + 1, &pin);
    if (!s.ok()) return s;
    memcpy(pin.data, framed.data(), framed.size());
    pool->Unpin(pin.frame);
    fences.push_back(std::move(first_key_in_page));
    ++page_no;
    payload.clear();
    entry_count_in_page = 0;
    return Status::OK();
  };
  const uint64_t max_payload = page_bytes - kPageHeaderLen;
  for (const RunEntry& e : entries) {
    if (!st.ok()) break;
    const uint64_t need = EntryEncodedBytes(e);
    assert(need <= max_payload);  // StorageTier filters oversized entries.
    if (payload.size() + need > max_payload) st = emit_page();
    if (!st.ok()) break;
    if (entry_count_in_page == 0) first_key_in_page = e.key;
    EncodeEntry(&payload, e);
    ++entry_count_in_page;
  }
  if (st.ok()) st = emit_page();
  if (st.ok()) st = pool->FlushFile(file_id);

  // Footer + trailer.
  if (st.ok()) {
    std::string footer;
    footer.append(kIndexMagic, kMagicLen);
    PutBig32(&footer, page_no);
    PutBig32(&footer, static_cast<uint32_t>(entries.size()));
    for (const std::string& f : fences) PutLengthPrefixed(&footer, f);
    PutBig32(&footer, Crc32c(0, footer.data(), footer.size()));
    const uint64_t footer_offset =
        static_cast<uint64_t>(page_no + 1) * page_bytes;
    PutBig64(&footer, footer_offset);
    footer.append(kEndMagic, kMagicLen);
    st = PwriteFull(env, fd, footer.data(), footer.size(), footer_offset);
    if (st.ok() && fsync && env->Fsync(fd) != 0) {
      st = recovery::ErrnoStatus("fsync", tmp);
    }
    if (st.ok()) {
      st = env->Rename(tmp, path);
    }
    if (st.ok() && fsync) {
      st = recovery::SyncDir(
          std::filesystem::path(path).parent_path().string(), env);
    }
    if (st.ok()) {
      out->reset(new RunFile(path, std::move(file), table_id, seq,
                             page_bytes, page_no,
                             static_cast<uint64_t>(entries.size()),
                             std::move(fences), pool, env));
      return Status::OK();
    }
  }
  pool->Purge(file_id);
  env->RemoveFile(tmp);
  return st;
}

Status RunFile::Open(const std::string& path, uint64_t file_id,
                     BufferPool* pool, std::shared_ptr<RunFile>* out,
                     io::Env* env) {
  env = io::ResolveEnv(env);
  const int fd = env->Open(path.c_str(), O_RDONLY, 0);
  if (fd < 0) return recovery::ErrnoStatus("open", path);
  auto file = std::make_shared<PoolFile>(file_id, fd, env);

  std::error_code ec;
  const uint64_t size = std::filesystem::file_size(path, ec);
  if (ec || size < kTrailerLen + kMagicLen) {
    return Status::Corruption("run too small: " + path);
  }
  // Trailer → footer offset → footer (fence index).
  char trailer[kTrailerLen];
  Status st = PreadFull(env, fd, trailer, kTrailerLen, size - kTrailerLen);
  if (!st.ok()) return st;
  if (memcmp(trailer + 8, kEndMagic, kMagicLen) != 0) {
    return Status::Corruption("bad run trailer: " + path);
  }
  uint64_t footer_offset = 0;
  {
    size_t off = 0;
    GetBig64(Slice(trailer, 8), &off, &footer_offset);
  }
  if (footer_offset + kTrailerLen > size) {
    return Status::Corruption("bad run footer offset: " + path);
  }
  std::string footer(size - kTrailerLen - footer_offset, '\0');
  st = PreadFull(env, fd, footer.data(), footer.size(), footer_offset);
  if (!st.ok()) return st;
  if (footer.size() < kMagicLen + 12 ||
      memcmp(footer.data(), kIndexMagic, kMagicLen) != 0) {
    return Status::Corruption("bad run index magic: " + path);
  }
  const uint32_t stored_crc_off = static_cast<uint32_t>(footer.size() - 4);
  uint32_t stored_crc = 0;
  {
    size_t off = stored_crc_off;
    GetBig32(footer, &off, &stored_crc);
  }
  if (Crc32c(0, footer.data(), stored_crc_off) != stored_crc) {
    return Status::Corruption("run index crc mismatch: " + path);
  }
  size_t off = kMagicLen;
  uint32_t page_count = 0, entry_count = 0;
  GetBig32(footer, &off, &page_count);
  GetBig32(footer, &off, &entry_count);
  std::vector<std::string> fences;
  fences.reserve(page_count);
  for (uint32_t i = 0; i < page_count; ++i) {
    std::string fence;
    if (!GetLengthPrefixed(footer, &off, &fence)) {
      return Status::Corruption("run fence truncated: " + path);
    }
    fences.push_back(std::move(fence));
  }

  // Header.
  std::string header(kMagicLen + 16, '\0');
  st = PreadFull(env, fd, header.data(), header.size(), 0);
  if (!st.ok()) return st;
  if (memcmp(header.data(), kRunMagic, kMagicLen) != 0) {
    return Status::Corruption("bad run magic: " + path);
  }
  size_t hoff = kMagicLen;
  uint32_t table_id = 0, page_bytes = 0;
  uint64_t seq = 0;
  GetBig32(header, &hoff, &table_id);
  GetBig32(header, &hoff, &page_bytes);
  GetBig64(header, &hoff, &seq);
  if (page_bytes != pool->page_bytes()) {
    return Status::Corruption("run page size mismatch: " + path);
  }
  if (footer_offset != static_cast<uint64_t>(page_count + 1) * page_bytes) {
    return Status::Corruption("run page count mismatch: " + path);
  }

  pool->RegisterFile(file);
  out->reset(new RunFile(path, std::move(file), table_id, seq, page_bytes,
                         page_count, entry_count, std::move(fences), pool,
                         env));
  return Status::OK();
}

Status RunFile::SearchPage(const uint8_t* page, uint32_t page_bytes,
                           const Slice* key, RunEntry* out, bool* found,
                           const std::function<void(const RunEntry&)>& fn) {
  const Slice raw(reinterpret_cast<const char*>(page), page_bytes);
  size_t off = 0;
  uint32_t stored_crc = 0, payload_bytes = 0, entry_count = 0;
  if (!GetBig32(raw, &off, &stored_crc) ||
      !GetBig32(raw, &off, &payload_bytes) ||
      !GetBig32(raw, &off, &entry_count) ||
      payload_bytes > page_bytes - kPageHeaderLen) {
    return Status::Corruption("run page header damaged");
  }
  if (Crc32c(0, raw.data() + 4, 8 + payload_bytes) != stored_crc) {
    return Status::Corruption("run page crc mismatch");
  }
  const Slice body(raw.data(), kPageHeaderLen + payload_bytes);
  RunEntry e;
  for (uint32_t i = 0; i < entry_count; ++i) {
    if (!DecodeEntry(body, &off, &e)) {
      return Status::Corruption("run page entry damaged");
    }
    if (key != nullptr) {
      const int cmp = Slice(e.key).compare(*key);
      if (cmp == 0) {
        *out = std::move(e);
        *found = true;
        return Status::OK();
      }
      if (cmp > 0) return Status::OK();  // Sorted: key absent.
    } else if (fn) {
      fn(e);
    }
  }
  return Status::OK();
}

Status RunFile::Lookup(BufferPool* pool, Slice key, RunEntry* out,
                       bool* found) const {
  *found = false;
  if (fences_.empty()) return Status::OK();
  // Last fence <= key; fences_[0] is the run's smallest key.
  if (Slice(fences_[0]).compare(key) > 0) return Status::OK();
  size_t lo = 0, hi = fences_.size();
  while (hi - lo > 1) {
    const size_t mid = lo + (hi - lo) / 2;
    if (Slice(fences_[mid]).compare(key) <= 0) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  BufferPool::Pin pin;
  Status st = pool->PinPage(file_->id(), static_cast<uint32_t>(lo) + 1, &pin);
  if (!st.ok()) return st;
  st = SearchPage(pin.data, page_bytes_, &key, out, found, nullptr);
  pool->Unpin(pin.frame);
  return st;
}

Status RunFile::ForEachEntry(
    const std::function<void(const RunEntry&)>& fn) const {
  std::string page(page_bytes_, '\0');
  for (uint32_t p = 0; p < page_count_; ++p) {
    Status st = PreadFull(env_, file_->fd(), page.data(), page.size(),
                          static_cast<uint64_t>(p + 1) * page_bytes_);
    if (!st.ok()) return st;
    st = SearchPage(reinterpret_cast<const uint8_t*>(page.data()),
                    page_bytes_, nullptr, nullptr, nullptr, fn);
    if (!st.ok()) return st;
  }
  return Status::OK();
}

}  // namespace ssidb
