// StorageTier: the disk-backed half of the storage layer — owns the buffer
// pool, the run-file directory and each table's run list, and implements
// the spill / fault / compaction protocols Table delegates to.
//
// Enablement: DB::Open constructs a tier only when
// DBOptions::buffer_pool_bytes > 0 and a run directory is resolvable
// (DBOptions::data_dir, defaulting to "<wal_dir>/runs"). With no tier,
// Table's hot paths are bit-for-bit the memory-only engine.
//
// Durability contract: a version chain is marked evicted only after the
// run holding its anchor version is durably on disk (tmp + fsync + rename
// + directory fsync). Checkpoint base images skip evicted chains (their
// sweep read observes nothing), so the run files ARE the durable home of
// spilled keys: they are deleted only when a merged replacement run is
// durable (compaction), never by checkpoint GC.
//
// Lookup order: a key may appear in several runs (respilled after new
// commits); Lookup probes newest-first (descending seq) and stops at the
// first hit, so the newest spilled version wins. Compaction merges a
// table's runs into one, keeping the highest commit_ts per key.
//
// Locking: runs_mu_ (shared_mutex) guards the per-table run lists; held
// shared for lookups (copying shared_ptrs out before any I/O), exclusive
// for publish/replace. Never held while a chain latch or table shard latch
// is held, and vice versa — see the lock-order rules in ARCHITECTURE.md.

#ifndef SSIDB_STORAGE_STORAGE_TIER_H_
#define SSIDB_STORAGE_STORAGE_TIER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/options.h"
#include "src/common/status.h"
#include "src/storage/buffer_pool.h"
#include "src/storage/run_file.h"

namespace ssidb {

class Catalog;

class StorageTier {
 public:
  /// All run-file I/O (and the pool's page I/O) routes through
  /// `options.env` (nullptr = real filesystem).
  StorageTier(const DBOptions& options, std::string dir);
  ~StorageTier();

  StorageTier(const StorageTier&) = delete;
  StorageTier& operator=(const StorageTier&) = delete;

  /// Create the run directory. `wipe` (in-memory engines: the WAL is not
  /// durable so stale runs must not resurrect state) removes existing
  /// run files first.
  Status Init(bool wipe);

  BufferPool* pool() { return &pool_; }

  /// Largest value the spill path accepts (bigger chains stay resident).
  uint64_t max_entry_bytes() const {
    return RunFile::MaxEntryBytes(options_.run_page_bytes);
  }

  /// Durably write `entries` (sorted by key, non-empty) as table `table`'s
  /// newest run and publish it for lookups.
  Status WriteRun(uint32_t table_id, const std::vector<RunEntry>& entries);

  /// Probe table `table_id`'s runs newest-first for `key`.
  Status Lookup(uint32_t table_id, Slice key, RunEntry* out, bool* found);

  /// Merge all of `table_id`'s runs into one when at least
  /// run_compaction_min_runs have accumulated (newest commit_ts per key
  /// wins); delete the inputs once the replacement is durable. Called from
  /// the DB sweeper thread — the background merge daemon.
  Status MaybeCompact(uint32_t table_id);

  /// Recovery: open every run file in the directory, publish each under
  /// its table, and re-mark the covered chains evicted (Table::
  /// RecoverEvicted) so spilled values stay on disk instead of being
  /// replayed into RAM. Returns the highest commit_ts seen in any run.
  Status RecoverRuns(Catalog* catalog, Timestamp* max_commit_ts);

  size_t run_count(uint32_t table_id) const;

  // Spill/fault counters (relaxed; DBStats contract). The pool owns
  // hits/misses/evictions/writebacks.
  uint64_t spilled_chains() const {
    return spilled_chains_.load(std::memory_order_relaxed);
  }
  uint64_t faulted_chains() const {
    return faulted_chains_.load(std::memory_order_relaxed);
  }
  void AddSpilled(uint64_t n) {
    spilled_chains_.fetch_add(n, std::memory_order_relaxed);
  }
  void AddFaulted(uint64_t n) {
    faulted_chains_.fetch_add(n, std::memory_order_relaxed);
  }

  /// Run creations/compactions that failed on I/O (io.errors.tier).
  uint64_t io_errors() const {
    return io_errors_.load(std::memory_order_relaxed);
  }

  /// Receive a kIOError trace event per failed run write/compaction.
  void SetTraceRing(obs::TraceRing* trace) {
    trace_.store(trace, std::memory_order_release);
  }

 private:
  std::string RunPath(uint32_t table_id, uint64_t seq) const;

  /// Count + trace a failed durable-run operation; returns `st` through.
  Status NoteIOError(const Status& st, uint32_t table_id);

  const DBOptions options_;
  const std::string dir_;
  io::Env* const env_;
  BufferPool pool_;

  std::atomic<uint64_t> next_file_id_{1};
  std::atomic<uint64_t> next_seq_{1};

  mutable std::shared_mutex runs_mu_;
  /// Newest run first (descending seq).
  std::unordered_map<uint32_t, std::vector<std::shared_ptr<RunFile>>> runs_;

  std::atomic<uint64_t> spilled_chains_{0};
  std::atomic<uint64_t> faulted_chains_{0};
  std::atomic<uint64_t> io_errors_{0};
  std::atomic<obs::TraceRing*> trace_{nullptr};
};

}  // namespace ssidb

#endif  // SSIDB_STORAGE_STORAGE_TIER_H_
