// Catalog: table directory of the storage layer.
//
// Owns every Table and maps names to ids. Extracted from the DB monolith
// so the executor layer can resolve tables without depending on the
// public façade — and so the per-operation id→Table lookup is lock-free:
// the seed took a mutex on every Get/Put/Scan just to index the table
// vector, which serializes otherwise independent operations. Tables are
// append-only (no DROP yet), published through an atomic slot array.

#ifndef SSIDB_STORAGE_CATALOG_H_
#define SSIDB_STORAGE_CATALOG_H_

#include <array>
#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "src/common/status.h"
#include "src/storage/table.h"

namespace ssidb {

class Catalog {
 public:
  /// Upper bound on tables per engine; CreateTable fails beyond it.
  static constexpr size_t kMaxTables = 4096;

  Catalog() = default;
  ~Catalog();

  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  /// Attach the disk tier: every table created afterwards gets it. Called
  /// once at DB::Open, before any CreateTable.
  void SetStorageTier(StorageTier* tier) { tier_ = tier; }

  /// Create a table. kInvalidArgument on duplicate name or table overflow.
  /// `before_publish`, if set, runs with the id assigned but the table not
  /// yet visible to any other thread (still inside the creation critical
  /// section). The durability layer hooks this to append the table-create
  /// WAL record: creates serialize under the catalog's mutex (so the
  /// records land in id order) and the record provably precedes any
  /// commit record that references the table — no commit can touch a
  /// table before the publication that follows the hook.
  Status CreateTable(const std::string& name, TableId* id,
                     const std::function<void(TableId)>& before_publish =
                         nullptr);

  /// Look up a table id by name. kNotFound if absent.
  Status FindTable(const std::string& name, TableId* id) const;

  /// Resolve an id to its table, or nullptr. Lock-free: a relaxed slot
  /// load ordered by an acquire load of the published count.
  Table* table(TableId id) const {
    if (id >= count_.load(std::memory_order_acquire)) return nullptr;
    return slots_[id].load(std::memory_order_relaxed);
  }

  size_t table_count() const {
    return count_.load(std::memory_order_acquire);
  }

 private:
  /// Slot array: slots_[i] is written once (before count_ publishes i+1)
  /// and never changes afterwards.
  std::array<std::atomic<Table*>, kMaxTables> slots_{};
  std::atomic<uint32_t> count_{0};

  /// Guards creation (name map + slot append); readers never take it.
  mutable std::mutex create_mu_;
  std::unordered_map<std::string, TableId> names_;

  /// Disk tier handed to new tables; nullptr = memory-only.
  StorageTier* tier_ = nullptr;
};

}  // namespace ssidb

#endif  // SSIDB_STORAGE_CATALOG_H_
