// BufferPool: the fixed frame array between run files and the version
// store — the piece that lets tables exceed RAM.
//
// Discipline follows PostgreSQL's bufmgr: a page is addressed by a
// (file, page) tag, looked up in a hash table, and pinned before use; an
// unpinned frame is fair game for the clock (second-chance) victim scan,
// which clears a reference bit on the first pass and reuses the frame on
// the second. Dirty frames (pages of a run being written) are written back
// to their file before the frame is reused.
//
// Writeback failure policy: a dirty victim is written back *in place* —
// still mapped under its own tag, pinned, state kValid — and only a
// successful write clears the dirty bit; the frame is retagged on a later
// claim attempt, once clean. A failed writeback (bounded retry with
// backoff) therefore never loses the page: the frame stays dirty, mapped
// and readable, and the pin/claim that needed the frame fails with
// kIOError instead. Every durable byte moves through an io::Env, so tests
// can script the failures.
//
// Concurrency:
//   * map_mu_ guards the tag map, the free list, the clock hand and each
//     frame's tag/state transitions. It is never held across I/O: a miss
//     claims the victim frame (pinning it and publishing the new tag in
//     state kLoading) under the mutex, then performs the writeback + read
//     outside it.
//   * Frame::io_mu + io_cv serialize the load of one frame: concurrent
//     requesters of the same (file, page) find the kLoading frame in the
//     map, pin it, and wait on io_cv until the loader publishes kValid (or
//     kFailed).
//   * pin_count is atomic so Unpin is lock-free; a pinned frame is never
//     chosen as a victim (checked under map_mu_, and Pin only raises the
//     count under map_mu_, so the victim check cannot race a new pin).
//
// Lock order: a frame's io_mu is acquired before map_mu_ when both are
// needed (load publication); map_mu_ is otherwise a leaf and is never held
// across I/O. No pool mutex ever nests inside a chain latch or a table
// shard latch — the fault/spill paths do all pool I/O outside them (see
// table.cc).
//
// The pool is content-agnostic: frames hold raw page bytes; run_file.cc
// owns the page format and its CRC.

#ifndef SSIDB_STORAGE_BUFFER_POOL_H_
#define SSIDB_STORAGE_BUFFER_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "src/common/status.h"
#include "src/io/env.h"
#include "src/obs/metrics.h"

namespace ssidb {

namespace obs {
class TraceRing;  // src/obs/trace_ring.h
}  // namespace obs

/// A registered backing file: the pool reads (pread) and writes back
/// (pwrite) through the owned descriptor. Shared ownership keeps the
/// descriptor alive while any in-flight I/O or mapped frame still needs it,
/// even after the file is purged from the pool (compaction deletes a run
/// while a faulter is mid-read; POSIX keeps the unlinked inode readable).
class PoolFile {
 public:
  /// `env` must be the Env the descriptor was opened through (nullptr =
  /// the real filesystem), so the close balances the open.
  PoolFile(uint64_t id, int fd, io::Env* env = nullptr)
      : id_(id), fd_(fd), env_(io::ResolveEnv(env)) {}
  ~PoolFile();

  PoolFile(const PoolFile&) = delete;
  PoolFile& operator=(const PoolFile&) = delete;

  uint64_t id() const { return id_; }
  int fd() const { return fd_; }

 private:
  const uint64_t id_;
  const int fd_;
  io::Env* const env_;
};

class BufferPool {
 public:
  /// `pool_bytes / page_bytes` frames, floored at 4 so a tiny test pool
  /// still admits concurrent pins. `env` (nullptr = real filesystem)
  /// carries every pread/pwrite.
  BufferPool(uint64_t pool_bytes, uint32_t page_bytes,
             io::Env* env = nullptr);
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  uint32_t page_bytes() const { return page_bytes_; }
  size_t frame_count() const { return frames_.size(); }

  /// Register a backing file under a pool-wide unique id. The pool shares
  /// ownership; Purge (or pool destruction) drops the pool's reference.
  void RegisterFile(const std::shared_ptr<PoolFile>& file);

  /// Drop every frame of `file_id` (pinned frames are skipped — they stay
  /// until evicted, harmless because a purged file id is never looked up
  /// again) and forget the file registration.
  void Purge(uint64_t file_id);

  /// A pinned page. data points at the frame's page_bytes-sized buffer and
  /// is valid until Unpin.
  struct Pin {
    const uint8_t* data = nullptr;
    uint32_t frame = 0;
  };

  /// Pin (file, page): hash-table hit pins in place; a miss claims a clock
  /// victim, writes it back if dirty, and reads the page from the file.
  /// Counts hits/misses. Fails with kIOError when the read fails or every
  /// frame stays pinned past a bounded retry.
  Status PinPage(uint64_t file_id, uint32_t page_no, Pin* out);

  /// Pin a fresh all-zero frame for (file, page) and mark it dirty — the
  /// run writer's path. The caller fills the buffer through `data` before
  /// Unpin. The page must not already be mapped.
  struct WritePin {
    uint8_t* data = nullptr;
    uint32_t frame = 0;
  };
  Status PinForWrite(uint64_t file_id, uint32_t page_no, WritePin* out);

  void Unpin(uint32_t frame);

  /// Write back every dirty frame of `file_id` (pwrite; the caller fsyncs
  /// the descriptor). Pages stay valid in the pool, so freshly written
  /// runs serve their first faults without touching disk.
  Status FlushFile(uint64_t file_id);

  // Counters (relaxed; DBStats contract).
  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  uint64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }
  uint64_t writebacks() const {
    return writebacks_.load(std::memory_order_relaxed);
  }
  /// Writeback attempts retried after a failure (io.retries).
  uint64_t io_retries() const {
    return io_retries_.load(std::memory_order_relaxed);
  }
  /// Writebacks that failed even after the bounded retries (io.errors.pool).
  uint64_t io_errors() const {
    return io_errors_.load(std::memory_order_relaxed);
  }

  /// Register pool I/O latency histograms (pread of a faulted page,
  /// pwrite of a writeback). Always-on timing: every sample is a real
  /// disk I/O, so the clock reads are noise. `trace` (optional) receives a
  /// kIOError event per exhausted writeback.
  void RegisterMetrics(obs::MetricsRegistry* registry,
                       obs::TraceRing* trace = nullptr);

 private:
  enum class FrameState : uint8_t { kFree, kLoading, kValid, kFailed };

  struct Frame {
    /// Tag + state + dirty are guarded by map_mu_; the loader additionally
    /// publishes state under io_mu for waiter wakeup.
    uint64_t file_id = 0;
    uint32_t page_no = 0;
    FrameState state = FrameState::kFree;
    bool dirty = false;
    /// Clock reference bit: set on every pin, cleared by the victim scan's
    /// first pass (second chance).
    bool referenced = false;
    /// Keeps the backing descriptor alive for writeback after a purge.
    std::shared_ptr<PoolFile> file;
    std::atomic<uint32_t> pins{0};
    std::mutex io_mu;
    std::condition_variable io_cv;
  };

  struct TagKey {
    uint64_t file_id;
    uint32_t page_no;
    bool operator==(const TagKey& o) const {
      return file_id == o.file_id && page_no == o.page_no;
    }
  };
  struct TagHash {
    size_t operator()(const TagKey& k) const {
      // 64-bit mix of (file, page); files are pool-unique so collisions
      // only cost probes.
      uint64_t h = k.file_id * 0x9E3779B97F4A7C15ULL + k.page_no;
      h ^= h >> 29;
      h *= 0xBF58476D1CE4E5B9ULL;
      h ^= h >> 32;
      return static_cast<size_t>(h);
    }
  };

  uint8_t* frame_data(uint32_t idx) {
    return arena_.get() + static_cast<size_t>(idx) * page_bytes_;
  }

  /// Claim an unpinned frame: free list first, then the clock scan.
  /// Returns false when every frame is pinned. Does NOT unmap the chosen
  /// occupant — ClaimFrameLocked decides that (a dirty occupant stays
  /// mapped for in-place writeback). Caller holds map_mu_.
  bool ClaimVictimLocked(uint32_t* idx);

  /// One dirty frame to write back in place: still mapped under its own
  /// (file_id, page_no) tag, pinned by the filler of this struct.
  struct Writeback {
    std::shared_ptr<PoolFile> file;
    uint64_t file_id = 0;
    uint32_t page_no = 0;
    uint32_t frame = 0;
    bool needed = false;
  };

  /// Claim + retag a frame for (file, page) in state kLoading with one pin
  /// held. When the chosen victim is dirty, nothing is claimed: the victim
  /// is pinned in place and returned through `wb` — the caller must
  /// WritebackFrame + Unpin it outside map_mu_, then try again (the frame
  /// is only retagged once clean). Caller holds map_mu_.
  Status ClaimFrameLocked(uint64_t file_id, uint32_t page_no,
                          const std::shared_ptr<PoolFile>& file, uint32_t* idx,
                          Writeback* wb);

  /// Write one dirty frame back to its file (bounded retry with backoff),
  /// clearing the dirty bit only on success. The caller holds a pin on
  /// wb.frame, so the tag cannot change underneath. On exhausted retries
  /// the frame stays dirty and mapped — the page is never lost.
  Status WritebackFrame(const Writeback& wb);

  const uint32_t page_bytes_;
  io::Env* const env_;
  const std::unique_ptr<uint8_t[]> arena_;
  std::vector<std::unique_ptr<Frame>> frames_;

  std::mutex map_mu_;
  std::unordered_map<TagKey, uint32_t, TagHash> map_;
  std::vector<uint32_t> free_;
  std::unordered_map<uint64_t, std::shared_ptr<PoolFile>> files_;
  uint32_t clock_hand_ = 0;

  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> writebacks_{0};
  std::atomic<uint64_t> io_retries_{0};
  std::atomic<uint64_t> io_errors_{0};
  std::atomic<obs::TraceRing*> trace_{nullptr};
  obs::Histogram read_io_ns_;
  obs::Histogram write_io_ns_;
};

}  // namespace ssidb

#endif  // SSIDB_STORAGE_BUFFER_POOL_H_
