// Table: an ordered index from key to version chain, range-partitioned
// into shards.
//
// The index models a B+Tree leaf level: entries are never physically
// removed during normal operation (deletes leave tombstone versions, §3.5),
// so the key space seen by next-key/gap locking is stable.
//
// Sharding: the key space is partitioned into contiguous ranges, one shard
// per range, each with its own shared_mutex and std::map. Because ranges
// are contiguous and ordered, the concatenation of the shards *is* the
// ordered index: Scan, NextKey and gap locking observe exactly the total
// order of a single map. A table starts as one shard and splits a shard at
// its median key once it exceeds a threshold, so hot tables spread across
// latches without any a-priori knowledge of the key distribution (small
// tables pay nothing).
//
// Latching protocol (never held across lock-manager calls — scans collect
// (key, chain) batches first, avoiding latch/lock deadlocks):
//   * routing_mu_ (shared_mutex): guards the shard directory. Every
//     operation holds it SHARED for its whole duration; only a split takes
//     it EXCLUSIVE. Splits are rare (amortized O(1/threshold) per insert),
//     so the shared acquisition is effectively uncontended.
//   * Shard::mu (shared_mutex): guards one shard's map. Reads take it
//     shared, inserts exclusive. Acquired only while routing_mu_ is held
//     shared; at most one shard latch is held at a time (range scans lock
//     shards strictly left to right, one by one).
// Version chains are heap-allocated and never freed, so chain pointers
// remain valid across splits (only the owning map node moves).

#ifndef SSIDB_STORAGE_TABLE_H_
#define SSIDB_STORAGE_TABLE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/storage/version.h"

namespace ssidb {

class StorageTier;

using TableId = uint32_t;

/// An index entry surfaced to the scan protocol.
struct ScanEntry {
  std::string key;
  VersionChain* chain;
};

/// Per-shard counters surfaced to benchmarks: how balanced the partition
/// is and where latch traffic lands. Counters are relaxed atomics — each
/// individually exact, mutually unordered.
struct TableShardStats {
  std::string lower_bound;  ///< Inclusive lower key of the shard's range.
  size_t entries = 0;
  uint64_t reads = 0;   ///< Shared-latch acquisitions.
  uint64_t writes = 0;  ///< Exclusive-latch acquisitions.
};

class Table {
 public:
  /// `split_threshold`: shard entry count that triggers a median split.
  Table(TableId id, std::string name, size_t split_threshold = 1024);
  ~Table();

  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;

  TableId id() const { return id_; }
  const std::string& name() const { return name_; }

  /// Find the chain for a key, or nullptr. The pointer stays valid for the
  /// table's lifetime (chains are heap-allocated and never freed).
  VersionChain* Find(Slice key) const;

  /// Find the chain for a key, creating an empty one if absent.
  VersionChain* GetOrCreate(Slice key);

  /// Smallest index key strictly greater than `key`, or nullopt if `key`
  /// is the last (the caller then uses the table's supremum lock key).
  /// This is next(x) of Figs 3.6/3.7.
  std::optional<std::string> NextKey(Slice key) const;

  /// Smallest index key >= lo, or nullopt.
  std::optional<std::string> SeekCeil(Slice lo) const;

  /// Collect every index entry with lo <= key <= hi (visible or not — the
  /// scan protocol applies the modified read to each, §3.5), plus the
  /// successor key after hi in *successor (nullopt => supremum). Shards are
  /// visited in range order, one latch at a time.
  void CollectRange(Slice lo, Slice hi, std::vector<ScanEntry>* entries,
                    std::optional<std::string>* successor) const;

  /// Number of index entries (including tombstoned keys).
  size_t EntryCount() const;

  /// Visit every index entry in key order (GC sweeps, consistency checks).
  /// The callback must not re-enter the table.
  void ForEachChain(
      const std::function<void(const std::string&, VersionChain*)>& fn) const;

  /// Filtered overload for incremental sweeps: visit only entries of
  /// shards whose per-shard max-commit-ts hint is > `since` — a shard no
  /// commit has touched past `since` is skipped without taking its latch,
  /// so a delta checkpoint over a cold table costs one routing-latch
  /// acquisition. The hint is maintained by NoteCommit/RecoverVersion and
  /// is conservative (splits copy it to both halves), so a skipped shard
  /// provably holds no version with commit_ts > since; a visited shard may
  /// still contain only older entries — the callback filters per chain.
  void ForEachChain(
      Timestamp since,
      const std::function<void(const std::string&, VersionChain*)>& fn) const;

  /// Record that a version of `key` committed at `commit_ts`: raises the
  /// owning shard's max-commit-ts hint. Called by the transaction manager
  /// during commit-time version stamping, *before* the stable watermark
  /// can cover `commit_ts`, so any sweep at watermark >= commit_ts is
  /// guaranteed to see the raised hint.
  void NoteCommit(Slice key, Timestamp commit_ts);

  /// Per-shard version-prune sweep: for each shard in turn (one latch at a
  /// time), drop versions unreachable by any snapshot >= min_read_ts.
  /// Returns the number of versions freed.
  size_t PruneShards(Timestamp min_read_ts);

  /// Recovery bulk reload: install a committed version with its original
  /// commit timestamp (checkpoint load / WAL replay). Idempotent — see
  /// VersionChain::InstallRecovered.
  void RecoverVersion(Slice key, Slice value, bool tombstone,
                      Timestamp commit_ts);

  // --- Disk tier hooks (no-ops when no tier is attached) ---

  /// Attach the disk tier. Called once at DB::Open, before any traffic.
  void SetStorageTier(StorageTier* tier) { tier_ = tier; }
  StorageTier* storage_tier() const { return tier_; }

  /// Fault an evicted chain's spilled anchor back from the run files.
  /// Corruption if no run holds the key (the durability contract says one
  /// must). Racing faulters are fine: FaultInstall keeps the first winner.
  Status FaultChain(Slice key, VersionChain* chain);

  /// Two-phase spill sweep (DB sweeper thread, after PruneShards): probe
  /// every chain under the shard latch (phase A, collecting cold anchors
  /// below `horizon` in key order), durably write them as one run, then
  /// re-verify and evict each chain (phase B). Returns chains evicted.
  size_t SpillShards(Timestamp horizon);

  /// Recovery: a run file durably holds `key` at `commit_ts`. Marks the
  /// chain evicted unless WAL/checkpoint replay installed something newer
  /// (see VersionChain::SetEvictedRecovered).
  void RecoverEvicted(Slice key, Timestamp commit_ts);

  /// Number of shards the key space is currently partitioned into.
  size_t ShardCount() const;

  /// Snapshot of the per-shard counters (benchmarks, balance diagnostics).
  std::vector<TableShardStats> ShardStats() const;

  /// Page number of a key under kPage granularity. Keys produced by
  /// EncodeU64Key map contiguously (id / rows_per_page), modelling B+Tree
  /// leaf adjacency; other keys fall back to a coarse hash.
  static uint64_t PageOf(Slice key, uint32_t rows_per_page);

 private:
  struct Shard {
    explicit Shard(std::string lower_in) : lower(std::move(lower_in)) {}
    /// Inclusive lower bound of this shard's key range. Immutable after
    /// construction (a split creates a new shard; it never rewrites an
    /// existing bound), so it is readable under the shared routing latch.
    const std::string lower;
    mutable std::shared_mutex mu;
    std::map<std::string, std::unique_ptr<VersionChain>, std::less<>> index;
    mutable std::atomic<uint64_t> reads{0};
    mutable std::atomic<uint64_t> writes{0};
    /// Largest commit_ts ever stamped into this shard's range (0 = none).
    /// Conservative upper bound (splits copy it), consulted by the
    /// filtered ForEachChain to skip cold shards latch-free.
    std::atomic<Timestamp> max_commit_ts{0};
  };

  /// Index of the shard whose range contains `key`: the last shard whose
  /// lower bound is <= key. Caller holds routing_mu_ (any mode).
  size_t RouteLocked(std::string_view key) const;

  /// Split shard-containing-`hint_key` at its median if it still exceeds
  /// the threshold (re-checked under the exclusive routing latch).
  void MaybeSplit(const std::string& hint_key);

  const TableId id_;
  const std::string name_;
  const size_t split_threshold_;
  /// Disk tier, or nullptr (memory-only). Set once before traffic.
  StorageTier* tier_ = nullptr;

  mutable std::shared_mutex routing_mu_;
  /// Shards ordered by lower bound; shards_[0].lower is always "".
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace ssidb

#endif  // SSIDB_STORAGE_TABLE_H_
