// Table: an ordered index from key to version chain.
//
// The index models a B+Tree leaf level: entries are never physically removed
// during normal operation (deletes leave tombstone versions, §3.5), so the
// key space seen by next-key/gap locking is stable. A shared_mutex protects
// index structure; version chains carry their own latches. The index latch
// is never held across lock-manager calls (scans collect (key, chain)
// batches first), avoiding latch/lock deadlocks.

#ifndef SSIDB_STORAGE_TABLE_H_
#define SSIDB_STORAGE_TABLE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <string>
#include <vector>

#include "src/storage/version.h"

namespace ssidb {

using TableId = uint32_t;

/// An index entry surfaced to the scan protocol.
struct ScanEntry {
  std::string key;
  VersionChain* chain;
};

class Table {
 public:
  Table(TableId id, std::string name) : id_(id), name_(std::move(name)) {}

  TableId id() const { return id_; }
  const std::string& name() const { return name_; }

  /// Find the chain for a key, or nullptr. The pointer stays valid for the
  /// table's lifetime (chains are heap-allocated and never freed).
  VersionChain* Find(Slice key) const;

  /// Find the chain for a key, creating an empty one if absent.
  VersionChain* GetOrCreate(Slice key);

  /// Smallest index key strictly greater than `key`, or nullopt if `key`
  /// is the last (the caller then uses the table's supremum lock key).
  /// This is next(x) of Figs 3.6/3.7.
  std::optional<std::string> NextKey(Slice key) const;

  /// Smallest index key >= lo, or nullopt.
  std::optional<std::string> SeekCeil(Slice lo) const;

  /// Collect every index entry with lo <= key <= hi (visible or not — the
  /// scan protocol applies the modified read to each, §3.5), plus the
  /// successor key after hi in *successor (nullopt => supremum).
  void CollectRange(Slice lo, Slice hi, std::vector<ScanEntry>* entries,
                    std::optional<std::string>* successor) const;

  /// Number of index entries (including tombstoned keys).
  size_t EntryCount() const;

  /// Visit every index entry in key order (GC sweeps, consistency checks).
  /// The callback must not re-enter the table.
  void ForEachChain(
      const std::function<void(const std::string&, VersionChain*)>& fn) const;

  /// Page number of a key under kPage granularity. Keys produced by
  /// EncodeU64Key map contiguously (id / rows_per_page), modelling B+Tree
  /// leaf adjacency; other keys fall back to a coarse hash.
  static uint64_t PageOf(Slice key, uint32_t rows_per_page);

 private:
  TableId id_;
  std::string name_;
  mutable std::shared_mutex mutex_;
  std::map<std::string, std::unique_ptr<VersionChain>, std::less<>> index_;
};

}  // namespace ssidb

#endif  // SSIDB_STORAGE_TABLE_H_
