#include "src/storage/table.h"

#include <algorithm>
#include <cassert>

#include "src/common/encoding.h"
#include "src/storage/storage_tier.h"

namespace ssidb {

Table::Table(TableId id, std::string name, size_t split_threshold)
    : id_(id),
      name_(std::move(name)),
      split_threshold_(split_threshold < 2 ? 2 : split_threshold) {
  shards_.push_back(std::make_unique<Shard>(""));
}

Table::~Table() = default;

size_t Table::RouteLocked(std::string_view key) const {
  // Last shard with lower <= key. shards_[0].lower == "" so the search
  // always succeeds.
  size_t lo = 0;
  size_t hi = shards_.size();
  while (hi - lo > 1) {
    const size_t mid = lo + (hi - lo) / 2;
    if (shards_[mid]->lower <= key) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

VersionChain* Table::Find(Slice key) const {
  std::shared_lock<std::shared_mutex> route(routing_mu_);
  const Shard& shard = *shards_[RouteLocked(key.view())];
  shard.reads.fetch_add(1, std::memory_order_relaxed);
  std::shared_lock<std::shared_mutex> guard(shard.mu);
  auto it = shard.index.find(key.view());
  return it == shard.index.end() ? nullptr : it->second.get();
}

VersionChain* Table::GetOrCreate(Slice key) {
  size_t shard_size = 0;
  VersionChain* chain = nullptr;
  {
    std::shared_lock<std::shared_mutex> route(routing_mu_);
    Shard& shard = *shards_[RouteLocked(key.view())];
    {
      shard.reads.fetch_add(1, std::memory_order_relaxed);
      std::shared_lock<std::shared_mutex> guard(shard.mu);
      auto it = shard.index.find(key.view());
      if (it != shard.index.end()) return it->second.get();
    }
    shard.writes.fetch_add(1, std::memory_order_relaxed);
    std::unique_lock<std::shared_mutex> guard(shard.mu);
    auto [it, inserted] = shard.index.try_emplace(
        key.ToString(), std::make_unique<VersionChain>());
    (void)inserted;
    chain = it->second.get();
    shard_size = shard.index.size();
  }
  if (shard_size > split_threshold_) {
    MaybeSplit(key.ToString());
  }
  return chain;
}

void Table::MaybeSplit(const std::string& hint_key) {
  // Exclusive routing latch: no operation holds any shard latch without
  // the shared routing latch, so we have exclusive access to every shard.
  std::unique_lock<std::shared_mutex> route(routing_mu_);
  const size_t idx = RouteLocked(hint_key);
  Shard& shard = *shards_[idx];
  if (shard.index.size() <= split_threshold_) return;  // Raced; resolved.

  auto mid = shard.index.begin();
  std::advance(mid, shard.index.size() / 2);
  auto right = std::make_unique<Shard>(mid->first);
  // Both halves inherit the parent's commit hint: an overstated hint only
  // costs a visit, an understated one would hide commits from delta sweeps.
  right->max_commit_ts.store(
      shard.max_commit_ts.load(std::memory_order_relaxed),
      std::memory_order_relaxed);
  // Move [median, end) into the new right shard; node handles keep the
  // heap-allocated chains (and their addresses) intact.
  while (mid != shard.index.end()) {
    auto next = std::next(mid);
    right->index.insert(shard.index.extract(mid));
    mid = next;
  }
  shards_.insert(shards_.begin() + static_cast<ptrdiff_t>(idx) + 1,
                 std::move(right));
}

std::optional<std::string> Table::NextKey(Slice key) const {
  std::shared_lock<std::shared_mutex> route(routing_mu_);
  for (size_t idx = RouteLocked(key.view()); idx < shards_.size(); ++idx) {
    const Shard& shard = *shards_[idx];
    shard.reads.fetch_add(1, std::memory_order_relaxed);
    std::shared_lock<std::shared_mutex> guard(shard.mu);
    auto it = shard.index.upper_bound(key.view());
    if (it != shard.index.end()) return it->first;
  }
  return std::nullopt;
}

std::optional<std::string> Table::SeekCeil(Slice lo) const {
  std::shared_lock<std::shared_mutex> route(routing_mu_);
  for (size_t idx = RouteLocked(lo.view()); idx < shards_.size(); ++idx) {
    const Shard& shard = *shards_[idx];
    shard.reads.fetch_add(1, std::memory_order_relaxed);
    std::shared_lock<std::shared_mutex> guard(shard.mu);
    auto it = shard.index.lower_bound(lo.view());
    if (it != shard.index.end()) return it->first;
  }
  return std::nullopt;
}

void Table::CollectRange(Slice lo, Slice hi, std::vector<ScanEntry>* entries,
                         std::optional<std::string>* successor) const {
  entries->clear();
  *successor = std::nullopt;
  std::shared_lock<std::shared_mutex> route(routing_mu_);
  // Left-to-right over the contiguous shard ranges; the shared routing
  // latch pins the partition, so the concatenation of per-shard segments
  // is exactly the single-map iteration of the unsharded index.
  const size_t start = RouteLocked(lo.view());
  for (size_t idx = start; idx < shards_.size(); ++idx) {
    const Shard& shard = *shards_[idx];
    shard.reads.fetch_add(1, std::memory_order_relaxed);
    std::shared_lock<std::shared_mutex> guard(shard.mu);
    auto it = idx == start ? shard.index.lower_bound(lo.view())
                           : shard.index.begin();
    for (; it != shard.index.end(); ++it) {
      if (Slice(it->first).compare(hi) > 0) {
        *successor = it->first;
        return;
      }
      entries->push_back(ScanEntry{it->first, it->second.get()});
    }
  }
}

void Table::ForEachChain(
    const std::function<void(const std::string&, VersionChain*)>& fn) const {
  std::shared_lock<std::shared_mutex> route(routing_mu_);
  for (const auto& shard_ptr : shards_) {
    const Shard& shard = *shard_ptr;
    shard.reads.fetch_add(1, std::memory_order_relaxed);
    std::shared_lock<std::shared_mutex> guard(shard.mu);
    for (const auto& [key, chain] : shard.index) {
      fn(key, chain.get());
    }
  }
}

void Table::ForEachChain(
    Timestamp since,
    const std::function<void(const std::string&, VersionChain*)>& fn) const {
  std::shared_lock<std::shared_mutex> route(routing_mu_);
  for (const auto& shard_ptr : shards_) {
    const Shard& shard = *shard_ptr;
    if (shard.max_commit_ts.load(std::memory_order_relaxed) <= since) {
      continue;  // Cold shard: skipped without touching its latch.
    }
    shard.reads.fetch_add(1, std::memory_order_relaxed);
    std::shared_lock<std::shared_mutex> guard(shard.mu);
    for (const auto& [key, chain] : shard.index) {
      fn(key, chain.get());
    }
  }
}

void Table::NoteCommit(Slice key, Timestamp commit_ts) {
  std::shared_lock<std::shared_mutex> route(routing_mu_);
  Shard& shard = *shards_[RouteLocked(key.view())];
  Timestamp cur = shard.max_commit_ts.load(std::memory_order_relaxed);
  while (cur < commit_ts &&
         !shard.max_commit_ts.compare_exchange_weak(
             cur, commit_ts, std::memory_order_relaxed)) {
  }
}

void Table::RecoverVersion(Slice key, Slice value, bool tombstone,
                           Timestamp commit_ts) {
  GetOrCreate(key)->InstallRecovered(commit_ts, value, tombstone);
  NoteCommit(key, commit_ts);
}

Status Table::FaultChain(Slice key, VersionChain* chain) {
  if (tier_ == nullptr) {
    return Status::Corruption("evicted chain in table '" + name_ +
                              "' but no storage tier attached");
  }
  RunEntry entry;
  bool found = false;
  Status st = tier_->Lookup(id_, key, &entry, &found);
  if (!st.ok()) return st;
  if (!found) {
    // Violates the durability contract: evicted => durable in a live run.
    return Status::Corruption("evicted key missing from runs: " +
                              key.ToString());
  }
  chain->FaultInstall(entry.commit_ts, entry.value, entry.tombstone);
  tier_->AddFaulted(1);
  return Status::OK();
}

size_t Table::SpillShards(Timestamp horizon) {
  if (tier_ == nullptr || horizon == 0) return 0;
  const uint64_t max_entry = tier_->max_entry_bytes();
  // Phase A: probe under the shard latches (lock order shard -> chain, the
  // same as every reader). ForEachChain walks shards in range order, so
  // `entries` comes out sorted by key — ready for RunFile::Create.
  std::vector<RunEntry> entries;
  std::vector<VersionChain*> chains;
  size_t evicted = 0;
  ForEachChain([&](const std::string& key, VersionChain* chain) {
    // Conservative per-entry encoding overhead (two varint32 length
    // prefixes, u64 commit_ts, tombstone byte): 32 bytes covers it.
    const uint64_t overhead = key.size() + 32;
    const uint64_t max_value = overhead >= max_entry ? 0 : max_entry - overhead;
    RunEntry e;
    switch (chain->SpillProbe(horizon, max_value, &e.value, &e.commit_ts,
                              &e.tombstone)) {
      case VersionChain::SpillAction::kSkip:
        break;
      case VersionChain::SpillAction::kDropNow:
        ++evicted;  // Anchor already durable; freed inline.
        break;
      case VersionChain::SpillAction::kWrite:
        e.key = key;
        entries.push_back(std::move(e));
        chains.push_back(chain);
        break;
    }
  });
  // Phase B: no latches held. Persist the run, then re-verify and evict
  // each chain; a chain touched since its probe stays resident and retries
  // as kDropNow on a later sweep (its anchor is durable now).
  if (!entries.empty()) {
    if (tier_->WriteRun(id_, entries).ok()) {
      for (size_t i = 0; i < entries.size(); ++i) {
        if (chains[i]->CommitSpill(entries[i].commit_ts)) ++evicted;
      }
    }
  }
  if (evicted != 0) tier_->AddSpilled(evicted);
  return evicted;
}

void Table::RecoverEvicted(Slice key, Timestamp commit_ts) {
  GetOrCreate(key)->SetEvictedRecovered(commit_ts);
  NoteCommit(key, commit_ts);
}

size_t Table::PruneShards(Timestamp min_read_ts) {
  size_t freed = 0;
  ForEachChain([&](const std::string&, VersionChain* chain) {
    freed += chain->Prune(min_read_ts);
  });
  return freed;
}

size_t Table::EntryCount() const {
  std::shared_lock<std::shared_mutex> route(routing_mu_);
  size_t n = 0;
  for (const auto& shard_ptr : shards_) {
    std::shared_lock<std::shared_mutex> guard(shard_ptr->mu);
    n += shard_ptr->index.size();
  }
  return n;
}

size_t Table::ShardCount() const {
  std::shared_lock<std::shared_mutex> route(routing_mu_);
  return shards_.size();
}

std::vector<TableShardStats> Table::ShardStats() const {
  std::shared_lock<std::shared_mutex> route(routing_mu_);
  std::vector<TableShardStats> out;
  out.reserve(shards_.size());
  for (const auto& shard_ptr : shards_) {
    TableShardStats s;
    s.lower_bound = shard_ptr->lower;
    {
      std::shared_lock<std::shared_mutex> guard(shard_ptr->mu);
      s.entries = shard_ptr->index.size();
    }
    s.reads = shard_ptr->reads.load(std::memory_order_relaxed);
    s.writes = shard_ptr->writes.load(std::memory_order_relaxed);
    out.push_back(std::move(s));
  }
  return out;
}

uint64_t Table::PageOf(Slice key, uint32_t rows_per_page) {
  if (rows_per_page == 0) rows_per_page = 1;
  if (key.size() == 8) {
    return DecodeU64Key(key) / rows_per_page;
  }
  // FNV-1a, truncated to a coarse page id space.
  uint64_t h = 1469598103934665603ULL;
  for (size_t i = 0; i < key.size(); ++i) {
    h ^= static_cast<unsigned char>(key[i]);
    h *= 1099511628211ULL;
  }
  return h % (1u << 20);
}

}  // namespace ssidb
