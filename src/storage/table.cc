#include "src/storage/table.h"

#include "src/common/encoding.h"

namespace ssidb {

VersionChain* Table::Find(Slice key) const {
  std::shared_lock<std::shared_mutex> guard(mutex_);
  auto it = index_.find(key.view());
  return it == index_.end() ? nullptr : it->second.get();
}

VersionChain* Table::GetOrCreate(Slice key) {
  {
    std::shared_lock<std::shared_mutex> guard(mutex_);
    auto it = index_.find(key.view());
    if (it != index_.end()) return it->second.get();
  }
  std::unique_lock<std::shared_mutex> guard(mutex_);
  auto [it, inserted] =
      index_.try_emplace(key.ToString(), std::make_unique<VersionChain>());
  (void)inserted;
  return it->second.get();
}

std::optional<std::string> Table::NextKey(Slice key) const {
  std::shared_lock<std::shared_mutex> guard(mutex_);
  auto it = index_.upper_bound(std::string(key.view()));
  if (it == index_.end()) return std::nullopt;
  return it->first;
}

std::optional<std::string> Table::SeekCeil(Slice lo) const {
  std::shared_lock<std::shared_mutex> guard(mutex_);
  auto it = index_.lower_bound(std::string(lo.view()));
  if (it == index_.end()) return std::nullopt;
  return it->first;
}

void Table::CollectRange(Slice lo, Slice hi, std::vector<ScanEntry>* entries,
                         std::optional<std::string>* successor) const {
  entries->clear();
  std::shared_lock<std::shared_mutex> guard(mutex_);
  auto it = index_.lower_bound(std::string(lo.view()));
  for (; it != index_.end(); ++it) {
    if (Slice(it->first).compare(hi) > 0) break;
    entries->push_back(ScanEntry{it->first, it->second.get()});
  }
  if (it == index_.end()) {
    *successor = std::nullopt;
  } else {
    *successor = it->first;
  }
}

void Table::ForEachChain(
    const std::function<void(const std::string&, VersionChain*)>& fn) const {
  std::shared_lock<std::shared_mutex> guard(mutex_);
  for (const auto& [key, chain] : index_) {
    fn(key, chain.get());
  }
}

size_t Table::EntryCount() const {
  std::shared_lock<std::shared_mutex> guard(mutex_);
  return index_.size();
}

uint64_t Table::PageOf(Slice key, uint32_t rows_per_page) {
  if (rows_per_page == 0) rows_per_page = 1;
  if (key.size() == 8) {
    return DecodeU64Key(key) / rows_per_page;
  }
  // FNV-1a, truncated to a coarse page id space.
  uint64_t h = 1469598103934665603ULL;
  for (size_t i = 0; i < key.size(); ++i) {
    h ^= static_cast<unsigned char>(key[i]);
    h *= 1099511628211ULL;
  }
  return h % (1u << 20);
}

}  // namespace ssidb
