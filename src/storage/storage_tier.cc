#include "src/storage/storage_tier.h"

#include <algorithm>
#include <filesystem>
#include <map>

#include "src/obs/trace_ring.h"
#include "src/recovery/fs_util.h"
#include "src/storage/catalog.h"

namespace ssidb {

namespace fs = std::filesystem;

StorageTier::StorageTier(const DBOptions& options, std::string dir)
    : options_(options),
      dir_(std::move(dir)),
      env_(io::ResolveEnv(options.env)),
      pool_(options.buffer_pool_bytes, options.run_page_bytes, options.env) {}

StorageTier::~StorageTier() {
  // Run lists drop first (each RunFile purges its pool pages), then the
  // pool — member order guarantees it; nothing to do here.
}

Status StorageTier::Init(bool wipe) {
  std::error_code ec;
  Status st = env_->CreateDirs(dir_);
  if (!st.ok()) return st;
  if (wipe) {
    for (const auto& entry : fs::directory_iterator(dir_, ec)) {
      if (entry.path().extension() == ".run" ||
          entry.path().extension() == ".tmp") {
        fs::remove(entry.path(), ec);
      }
    }
  }
  return Status::OK();
}

std::string StorageTier::RunPath(uint32_t table_id, uint64_t seq) const {
  char name[64];
  snprintf(name, sizeof(name), "run-%06u-%020llu.run", table_id,
           static_cast<unsigned long long>(seq));
  return dir_ + "/" + name;
}

Status StorageTier::NoteIOError(const Status& st, uint32_t table_id) {
  io_errors_.fetch_add(1, std::memory_order_relaxed);
  if (obs::TraceRing* trace = trace_.load(std::memory_order_acquire)) {
    trace->Emit(obs::TraceEvent::kIOError, 0, /*arg16=*/4,
                /*arg32=*/table_id, /*payload=*/0);
  }
  return st;
}

Status StorageTier::WriteRun(uint32_t table_id,
                             const std::vector<RunEntry>& entries) {
  const uint64_t seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
  const uint64_t file_id =
      next_file_id_.fetch_add(1, std::memory_order_relaxed);
  std::shared_ptr<RunFile> run;
  Status st = RunFile::Create(RunPath(table_id, seq), table_id, seq, file_id,
                              options_.run_page_bytes, entries, &pool_,
                              /*fsync=*/true, &run, env_);
  if (!st.ok()) return NoteIOError(st, table_id);
  std::unique_lock<std::shared_mutex> guard(runs_mu_);
  auto& list = runs_[table_id];
  list.insert(list.begin(), std::move(run));  // Newest first.
  return Status::OK();
}

Status StorageTier::Lookup(uint32_t table_id, Slice key, RunEntry* out,
                           bool* found) {
  *found = false;
  // Copy the shared_ptrs out before any I/O so a concurrent compaction's
  // replace cannot free a run under us (deleted files stay readable
  // through their open descriptors).
  std::vector<std::shared_ptr<RunFile>> snapshot;
  {
    std::shared_lock<std::shared_mutex> guard(runs_mu_);
    auto it = runs_.find(table_id);
    if (it == runs_.end()) return Status::OK();
    snapshot = it->second;
  }
  for (const std::shared_ptr<RunFile>& run : snapshot) {
    Status st = run->Lookup(&pool_, key, out, found);
    if (!st.ok()) return st;
    if (*found) return Status::OK();  // Newest-first: first hit wins.
  }
  return Status::OK();
}

Status StorageTier::MaybeCompact(uint32_t table_id) {
  const uint32_t min_runs = std::max<uint32_t>(
      2, options_.run_compaction_min_runs);
  std::vector<std::shared_ptr<RunFile>> inputs;
  {
    std::shared_lock<std::shared_mutex> guard(runs_mu_);
    auto it = runs_.find(table_id);
    if (it == runs_.end() || it->second.size() < min_runs) {
      return Status::OK();
    }
    inputs = it->second;
  }
  // Merge: direct sequential preads (bypassing the pool so a full-table
  // pass cannot evict hot pages), newest commit_ts per key wins.
  // Tombstones are kept — an evicted chain whose anchor is a tombstone
  // still faults it back as the §3.5 delete marker.
  std::map<std::string, RunEntry> merged;
  for (const std::shared_ptr<RunFile>& run : inputs) {
    Status st = run->ForEachEntry([&](const RunEntry& e) {
      auto it = merged.find(e.key);
      if (it == merged.end()) {
        merged.emplace(e.key, e);
      } else if (e.commit_ts > it->second.commit_ts) {
        it->second = e;
      }
    });
    if (!st.ok()) return st;
  }
  if (merged.empty()) return Status::OK();
  std::vector<RunEntry> entries;
  entries.reserve(merged.size());
  for (auto& [key, e] : merged) entries.push_back(std::move(e));

  const uint64_t seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
  const uint64_t file_id =
      next_file_id_.fetch_add(1, std::memory_order_relaxed);
  std::shared_ptr<RunFile> replacement;
  Status st = RunFile::Create(RunPath(table_id, seq), table_id, seq, file_id,
                              options_.run_page_bytes, entries, &pool_,
                              /*fsync=*/true, &replacement, env_);
  if (!st.ok()) return NoteIOError(st, table_id);

  // Publish the replacement and unlink the inputs. Only after the rename +
  // dir fsync above: a crash in between leaves both generations on disk,
  // which recovery resolves by commit_ts (the merged run carries the
  // newest per key). The sweeper thread is the only run producer per
  // table, so `inputs` is still exactly the list's tail.
  std::vector<std::shared_ptr<RunFile>> dead;
  {
    std::unique_lock<std::shared_mutex> guard(runs_mu_);
    auto& list = runs_[table_id];
    dead.assign(list.begin() + static_cast<ptrdiff_t>(list.size()) -
                    static_cast<ptrdiff_t>(inputs.size()),
                list.end());
    list.resize(list.size() - inputs.size());
    list.push_back(std::move(replacement));
    // Keep newest-first: the replacement's seq exceeds every survivor's
    // (runs that appeared since the snapshot sit at the front with lower
    // seqs than the replacement only if written before it — sort settles
    // it either way).
    std::sort(list.begin(), list.end(),
              [](const auto& a, const auto& b) { return a->seq() > b->seq(); });
  }
  for (const std::shared_ptr<RunFile>& run : dead) {
    env_->RemoveFile(run->path());  // In-flight faulters read the open fd.
  }
  return Status::OK();
}

Status StorageTier::RecoverRuns(Catalog* catalog, Timestamp* max_commit_ts) {
  *max_commit_ts = 0;
  std::error_code ec;
  std::vector<std::string> paths;
  for (const auto& entry : fs::directory_iterator(dir_, ec)) {
    if (entry.path().extension() == ".run") {
      paths.push_back(entry.path().string());
    }
  }
  std::sort(paths.begin(), paths.end());
  Timestamp max_cts = 0;
  std::unique_lock<std::shared_mutex> guard(runs_mu_);
  for (const std::string& path : paths) {
    const uint64_t file_id =
        next_file_id_.fetch_add(1, std::memory_order_relaxed);
    std::shared_ptr<RunFile> run;
    Status st = RunFile::Open(path, file_id, &pool_, &run, env_);
    if (!st.ok()) return st;
    Table* table = catalog->table(run->table_id());
    if (table == nullptr) {
      // A run for a table the checkpoint/WAL never saw cannot happen: the
      // table-create record is durable before any commit (hence any
      // spill) against the table. Treat it as corruption.
      return Status::Corruption("run for unknown table: " + path);
    }
    st = run->ForEachEntry([&](const RunEntry& e) {
      table->RecoverEvicted(e.key, e.commit_ts);
      max_cts = std::max(max_cts, e.commit_ts);
    });
    if (!st.ok()) return st;
    if (run->seq() >= next_seq_.load(std::memory_order_relaxed)) {
      next_seq_.store(run->seq() + 1, std::memory_order_relaxed);
    }
    runs_[run->table_id()].push_back(std::move(run));
  }
  for (auto& [tid, list] : runs_) {
    std::sort(list.begin(), list.end(),
              [](const auto& a, const auto& b) { return a->seq() > b->seq(); });
  }
  *max_commit_ts = max_cts;
  return Status::OK();
}

size_t StorageTier::run_count(uint32_t table_id) const {
  std::shared_lock<std::shared_mutex> guard(runs_mu_);
  auto it = runs_.find(table_id);
  return it == runs_.end() ? 0 : it->second.size();
}

}  // namespace ssidb
