// Multiversion record storage (paper §2.4, §2.5).
//
// Each key maps to a VersionChain: a latched, newest-first linked list of
// Versions. A version is uncommitted until its creator stamps a commit
// timestamp (before publishing its commit-ring slot), at which point it
// becomes atomically visible to snapshots taken at or after that
// timestamp. Deletes install tombstone versions (§3.5) so that the key keeps
// its slot in the index and the gap-lock keyspace stays stable.

#ifndef SSIDB_STORAGE_VERSION_H_
#define SSIDB_STORAGE_VERSION_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/inline_vec.h"
#include "src/common/slice.h"

namespace ssidb {

/// Transaction ids and commit/read timestamps are separate counter
/// domains (ids name transactions; timestamps order snapshots and
/// commits — see txn_manager.h) and are never compared across domains.
/// 0 is never a valid id or commit timestamp.
using TxnId = uint64_t;
using Timestamp = uint64_t;

inline constexpr Timestamp kMaxTimestamp = UINT64_MAX;

/// One version of one record. Immutable after commit except for pruning.
struct Version {
  explicit Version(TxnId creator) : creator_txn_id(creator) {}

  /// The transaction that produced this version (Fig 3.4's
  /// xNew.creator). Used to resolve the owner for rw-conflict marking.
  TxnId creator_txn_id;

  /// 0 while uncommitted; the creator's commit timestamp afterwards.
  /// Stamped by the committing transaction before its commit-ring slot is
  /// published, read by concurrent visibility checks.
  std::atomic<Timestamp> commit_ts{0};

  /// True for delete markers.
  bool tombstone = false;

  std::string value;

  /// Next older version, or nullptr.
  Version* older = nullptr;
};

/// A newer committed version that a read ignored: evidence of an
/// rw-antidependency from the reader to the creator (§3.2, Fig 3.4 lines
/// 8-9).
struct NewerVersionInfo {
  TxnId creator_txn_id;
  Timestamp commit_ts;
};

/// Result of a snapshot read against one chain.
struct ReadResult {
  /// True if a version was visible and is not a tombstone.
  bool found = false;
  /// True if the visible version is the reader's own uncommitted write.
  bool own_write = false;
  /// Commit timestamp of the version the read observed (including a
  /// tombstone); 0 if it was the reader's own write or nothing was
  /// visible. Feeds the MVSG history oracle's wr/rw edges.
  Timestamp version_cts = 0;
  /// Committed versions newer than the one read (possibly all of them, if
  /// nothing was visible). The SSI layer marks conflicts with each creator
  /// that overlaps the reader. Inline storage: the common chain depths
  /// report no allocation.
  InlineVec<NewerVersionInfo, 4> newer;
};

/// The version list for a single key. All operations latch the chain; the
/// latch is never held while calling into other subsystems.
class VersionChain {
 public:
  VersionChain() = default;
  ~VersionChain();

  VersionChain(const VersionChain&) = delete;
  VersionChain& operator=(const VersionChain&) = delete;

  /// Snapshot read: return the newest version with commit_ts <= read_ts,
  /// or the reader's own uncommitted version if it has one. Collects the
  /// creators of newer committed versions into result.newer. Pass
  /// read_ts == kMaxTimestamp for locking (S2PL) reads of the latest
  /// committed state.
  ReadResult Read(TxnId reader, Timestamp read_ts, std::string* value);

  /// Install (or overwrite) writer's uncommitted version at the head.
  /// Returns the version pointer for commit-time stamping, and sets
  /// *replaced_own if the writer already had an uncommitted version here
  /// (so callers do not double-register the chain in the write set).
  Version* InstallUncommitted(TxnId writer, Slice value, bool tombstone,
                              bool* replaced_own);

  /// Roll back: remove writer's uncommitted head version, if present.
  void RemoveUncommitted(TxnId writer);

  /// Recovery bulk load: install an already-committed version (creator 0,
  /// the reserved "recovered" id) carrying its original commit timestamp.
  /// Idempotent when replay proceeds in commit-timestamp order: a chain
  /// whose newest committed version is at or past `commit_ts` is left
  /// untouched, so replaying the same WAL twice cannot duplicate or
  /// reorder versions. Only for quiescent chains (DB::Open recovery).
  void InstallRecovered(Timestamp commit_ts, Slice value, bool tombstone);

  /// First-committer-wins check (§2.5): true if some committed version has
  /// commit_ts > since. Must be called while holding the write lock on the
  /// key so no new committed version can appear concurrently.
  bool HasCommittedVersionAfter(Timestamp since);

  /// True if the newest committed version exists and is not a tombstone;
  /// used by Insert duplicate checks. Also reports that newest commit ts.
  bool LatestCommitted(Timestamp* commit_ts, bool* tombstone);

  /// Drop versions that no active snapshot can reach: everything strictly
  /// older than the newest committed version with commit_ts <= min_read_ts.
  /// Returns the number of versions freed.
  size_t Prune(Timestamp min_read_ts);

  /// Number of versions currently in the chain (test/introspection).
  size_t size() const;

 private:
  mutable std::mutex latch_;
  Version* newest_ = nullptr;
};

}  // namespace ssidb

#endif  // SSIDB_STORAGE_VERSION_H_
