// Multiversion record storage (paper §2.4, §2.5).
//
// Each key maps to a VersionChain: a latched, newest-first linked list of
// Versions. A version is uncommitted until its creator stamps a commit
// timestamp (before publishing its commit-ring slot), at which point it
// becomes atomically visible to snapshots taken at or after that
// timestamp. Deletes install tombstone versions (§3.5) so that the key keeps
// its slot in the index and the gap-lock keyspace stays stable.

#ifndef SSIDB_STORAGE_VERSION_H_
#define SSIDB_STORAGE_VERSION_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/inline_vec.h"
#include "src/common/slice.h"

namespace ssidb {

/// Transaction ids and commit/read timestamps are separate counter
/// domains (ids name transactions; timestamps order snapshots and
/// commits — see txn_manager.h) and are never compared across domains.
/// 0 is never a valid id or commit timestamp.
using TxnId = uint64_t;
using Timestamp = uint64_t;

inline constexpr Timestamp kMaxTimestamp = UINT64_MAX;

/// One version of one record. Immutable after commit except for pruning.
struct Version {
  explicit Version(TxnId creator) : creator_txn_id(creator) {}

  /// The transaction that produced this version (Fig 3.4's
  /// xNew.creator). Used to resolve the owner for rw-conflict marking.
  TxnId creator_txn_id;

  /// 0 while uncommitted; the creator's commit timestamp afterwards.
  /// Stamped by the committing transaction before its commit-ring slot is
  /// published, read by concurrent visibility checks.
  std::atomic<Timestamp> commit_ts{0};

  /// True for delete markers.
  bool tombstone = false;

  std::string value;

  /// Next older version, or nullptr.
  Version* older = nullptr;
};

/// A newer committed version that a read ignored: evidence of an
/// rw-antidependency from the reader to the creator (§3.2, Fig 3.4 lines
/// 8-9).
struct NewerVersionInfo {
  TxnId creator_txn_id;
  Timestamp commit_ts;
};

/// Result of a snapshot read against one chain.
struct ReadResult {
  /// True if a version was visible and is not a tombstone.
  bool found = false;
  /// True if the visible version is the reader's own uncommitted write.
  bool own_write = false;
  /// Commit timestamp of the version the read observed (including a
  /// tombstone); 0 if it was the reader's own write or nothing was
  /// visible. Feeds the MVSG history oracle's wr/rw edges.
  Timestamp version_cts = 0;
  /// Committed versions newer than the one read (possibly all of them, if
  /// nothing was visible). The SSI layer marks conflicts with each creator
  /// that overlaps the reader. Inline storage: the common chain depths
  /// report no allocation.
  InlineVec<NewerVersionInfo, 4> newer;
  /// Nothing was visible AND the chain's cold suffix lives in a run file:
  /// the caller must fault the chain back (Table::FaultChain) and retry
  /// the read. Never set alongside a visible answer — a spilled version's
  /// commit_ts is at or below the prune horizon, hence at or below every
  /// active snapshot, so any resident visible version is the correct
  /// (newer) answer and the spilled one is unreachable.
  bool evicted = false;
};

/// The version list for a single key. All operations latch the chain; the
/// latch is never held while calling into other subsystems.
class VersionChain {
 public:
  VersionChain() = default;
  ~VersionChain();

  VersionChain(const VersionChain&) = delete;
  VersionChain& operator=(const VersionChain&) = delete;

  /// Snapshot read: return the newest version with commit_ts <= read_ts,
  /// or the reader's own uncommitted version if it has one. Collects the
  /// creators of newer committed versions into result.newer. Pass
  /// read_ts == kMaxTimestamp for locking (S2PL) reads of the latest
  /// committed state.
  ReadResult Read(TxnId reader, Timestamp read_ts, std::string* value);

  /// Install (or overwrite) writer's uncommitted version at the head.
  /// Returns the version pointer for commit-time stamping, and sets
  /// *replaced_own if the writer already had an uncommitted version here
  /// (so callers do not double-register the chain in the write set).
  Version* InstallUncommitted(TxnId writer, Slice value, bool tombstone,
                              bool* replaced_own);

  /// Roll back: remove writer's uncommitted head version, if present.
  void RemoveUncommitted(TxnId writer);

  /// Recovery bulk load: install an already-committed version (creator 0,
  /// the reserved "recovered" id) carrying its original commit timestamp.
  /// Idempotent when replay proceeds in commit-timestamp order: a chain
  /// whose newest committed version is at or past `commit_ts` is left
  /// untouched, so replaying the same WAL twice cannot duplicate or
  /// reorder versions. Only for quiescent chains (DB::Open recovery).
  void InstallRecovered(Timestamp commit_ts, Slice value, bool tombstone);

  /// First-committer-wins check (§2.5): true if some committed version has
  /// commit_ts > since. Must be called while holding the write lock on the
  /// key so no new committed version can appear concurrently.
  bool HasCommittedVersionAfter(Timestamp since);

  /// True if the newest committed version exists and is not a tombstone;
  /// used by Insert duplicate checks. Also reports that newest commit ts.
  bool LatestCommitted(Timestamp* commit_ts, bool* tombstone);

  /// Drop versions that no active snapshot can reach: everything strictly
  /// older than the newest committed version with commit_ts <= min_read_ts.
  /// Returns the number of versions freed.
  size_t Prune(Timestamp min_read_ts);

  /// Number of versions currently in the chain (test/introspection).
  size_t size() const;

  // --- Disk spill / fault protocol (storage tier; see storage_tier.h) ---
  //
  // A chain is "evicted" when its versions have been freed and its anchor
  // (newest committed version at spill time) lives durably in a run file.
  // spilled_cts_ records the anchor's commit timestamp and only grows —
  // it names the newest version that is durable in SOME live run, whether
  // or not the chain is currently resident. Invariant maintained by the
  // spiller: a version is only spilled when its commit_ts <= the prune
  // horizon, so it is invisible to FCW races and at-or-below every active
  // snapshot; and every resident version is newer than spilled_cts_ (new
  // installs commit past the horizon), so FaultInstall's tail append is
  // always order-correct.

  /// What the spill sweeper should do with this chain.
  enum class SpillAction {
    kSkip,     ///< Hot, uncommitted, too new, or empty — leave resident.
    kDropNow,  ///< Anchor already durable in a run: versions freed inline.
    kWrite,    ///< Anchor copied out; caller writes a run then CommitSpill.
  };

  /// Phase A of the two-phase spill. Cold test: skips (clearing the
  /// accessed bit — second-chance) if the chain was touched since the last
  /// probe, has an uncommitted head, or its newest committed version is
  /// newer than `horizon` or larger than `max_value_bytes`. If the anchor's
  /// commit_ts equals spilled_cts_ it is already durable and the chain is
  /// evicted inline (kDropNow). Otherwise copies the anchor out for the
  /// caller to persist (kWrite). A hybrid chain — evicted but carrying
  /// resident versions installed by an upsert that never faulted the old
  /// anchor in — re-spills the same way: its newest committed version
  /// becomes the new anchor and shadows the stale run entry.
  SpillAction SpillProbe(Timestamp horizon, uint64_t max_value_bytes,
                         std::string* value, Timestamp* commit_ts,
                         bool* tombstone);

  /// Phase B: called after the run holding the anchor (commit_ts `cts`) is
  /// durable. Re-verifies under the latch that the chain is still exactly
  /// as probed (same newest committed cts, no uncommitted head, not
  /// touched); if so frees all versions and marks the chain evicted.
  /// Either way records cts as durable (spilled_cts_), so a skipped
  /// commit retries as kDropNow next sweep. Returns true if evicted.
  bool CommitSpill(Timestamp cts);

  /// Fault the spilled anchor back in (tier lookup result). No-op if the
  /// chain is no longer evicted (lost race with another faulter). The
  /// version is appended at the TAIL: residents installed since eviction
  /// committed past the horizon, hence past `cts`.
  void FaultInstall(Timestamp cts, Slice value, bool tombstone);

  /// Recovery (single-threaded, quiescent): a run holds `cts` for this
  /// key. If the WAL/checkpoint replay already installed a version at or
  /// past `cts`, the resident copy wins and the run entry is just recorded
  /// as durable; otherwise the chain is emptied and marked evicted so the
  /// run stays its home (no RAM cost on open).
  void SetEvictedRecovered(Timestamp cts);

  /// True if the chain is currently evicted (test/introspection).
  bool evicted() const;

 private:
  /// Free every version in the chain. Caller holds latch_.
  void FreeAllLocked();

  mutable std::mutex latch_;
  Version* newest_ = nullptr;
  /// Spill state, all under latch_. accessed_ is the clock bit: set by
  /// Read and InstallUncommitted, cleared by SpillProbe.
  bool evicted_ = false;
  bool accessed_ = false;
  Timestamp spilled_cts_ = 0;
};

}  // namespace ssidb

#endif  // SSIDB_STORAGE_VERSION_H_
