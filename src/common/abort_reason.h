// AbortReason: the per-abort taxonomy behind DBStats::abort_breakdown().
//
// The paper evaluates SSI through aggregate abort *counts*; diagnosing a
// production engine needs the *cause*: which side of the dangerous
// structure a victim sat on (§3.4 victim selection), whether
// first-committer-wins fired at row or page granularity (§4.2), or
// whether the abort had nothing to do with SSI at all (S2PL deadlock,
// lock timeout, storage-tier I/O). PostgreSQL's SSI implementation grew
// the same per-cause accounting for operators (Ports & Grittner §6).
//
// The cause is recorded at the decision site — the conflict tracker under
// the pairwise latches, the executor at the FCW/deadlock/timeout checks —
// with first-writer-wins semantics (TxnState::SetAbortCause): the most
// specific classification is the one made where the verdict was reached,
// and later generic mappings (e.g. the executor's status-code fallback)
// cannot overwrite it. TxnManager::AbortInternal counts each abort
// exactly once, at the single place every abort path funnels through.

#ifndef SSIDB_COMMON_ABORT_REASON_H_
#define SSIDB_COMMON_ABORT_REASON_H_

#include <cstddef>
#include <cstdint>

namespace ssidb {

enum class AbortReason : uint8_t {
  /// Not aborted (or cause never classified; counted as kExplicit).
  kNone = 0,
  /// SSI: this transaction was the pivot of a dangerous structure — it
  /// carried both an in- and an out-rw-antidependency (§3.2 / Fig 3.10).
  kSsiPivot = 1,
  /// SSI: this transaction was the T_in side (the reader of an edge into
  /// a pivot that could no longer abort itself).
  kSsiInSide = 2,
  /// SSI: this transaction was the T_out side (the writer of an edge out
  /// of such a pivot).
  kSsiOutSide = 3,
  /// First-committer-wins at row granularity: a newer committed version
  /// of a written key postdates the snapshot (§2.2).
  kFcwRow = 4,
  /// First-committer-wins at page granularity (§4.2, Berkeley DB mode).
  kFcwPage = 5,
  /// S2PL wait-for cycle broken by the deadlock detector.
  kDeadlock = 6,
  /// Lock wait exceeded the configured timeout.
  kLockTimeout = 7,
  /// Storage-tier I/O failure (version fault retry limit, pool error).
  kTierIo = 8,
  /// Application called Abort(), or the cause was never classified.
  kExplicit = 9,
};

inline constexpr size_t kAbortReasonCount = 10;

inline const char* AbortReasonName(AbortReason r) {
  switch (r) {
    case AbortReason::kNone: return "none";
    case AbortReason::kSsiPivot: return "ssi_pivot";
    case AbortReason::kSsiInSide: return "ssi_in_side";
    case AbortReason::kSsiOutSide: return "ssi_out_side";
    case AbortReason::kFcwRow: return "fcw_row";
    case AbortReason::kFcwPage: return "fcw_page";
    case AbortReason::kDeadlock: return "deadlock";
    case AbortReason::kLockTimeout: return "lock_timeout";
    case AbortReason::kTierIo: return "tier_io";
    case AbortReason::kExplicit: return "explicit";
  }
  return "unknown";
}

}  // namespace ssidb

#endif  // SSIDB_COMMON_ABORT_REASON_H_
