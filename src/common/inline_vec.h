// InlineVec: a small vector with N elements of inline storage, used on the
// engine's hot paths (rw-conflict evidence, ignored-newer-version lists,
// SIREAD conflict buffers) so that the common case — a handful of elements
// or none — performs no heap allocation. Spills to a heap buffer beyond N
// and keeps that capacity across clear(), so pooled/reused containers stay
// allocation-free in steady state.
//
// Restricted to trivially copyable, trivially destructible element types:
// growth is a memcpy and clear() is a size reset, which is what makes the
// container cheap enough for per-operation use.

#ifndef SSIDB_COMMON_INLINE_VEC_H_
#define SSIDB_COMMON_INLINE_VEC_H_

#include <cstddef>
#include <cstring>
#include <type_traits>
#include <utility>

namespace ssidb {

template <typename T, size_t N>
class InlineVec {
  static_assert(N > 0, "inline capacity must be positive");
  static_assert(std::is_trivially_copyable_v<T>,
                "InlineVec elements must be trivially copyable");
  static_assert(std::is_trivially_destructible_v<T>,
                "InlineVec elements must be trivially destructible");

 public:
  InlineVec() : data_(inline_) {}

  InlineVec(const InlineVec& o) : data_(inline_) { CopyFrom(o); }
  InlineVec& operator=(const InlineVec& o) {
    if (this != &o) {
      size_ = 0;
      CopyFrom(o);
    }
    return *this;
  }

  InlineVec(InlineVec&& o) noexcept : data_(inline_) { MoveFrom(o); }
  InlineVec& operator=(InlineVec&& o) noexcept {
    if (this != &o) {
      if (data_ != inline_) delete[] data_;
      data_ = inline_;
      capacity_ = N;
      size_ = 0;
      MoveFrom(o);
    }
    return *this;
  }

  ~InlineVec() {
    if (data_ != inline_) delete[] data_;
  }

  /// By value: safe even when the argument aliases an element of this
  /// vector (Grow() would otherwise free the buffer it points into).
  void push_back(T v) {
    if (size_ == capacity_) Grow();
    data_[size_++] = v;
  }

  /// Keeps the current (possibly heap) capacity: a reused buffer stays
  /// allocation-free once it has grown to its working size.
  void clear() { size_ = 0; }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  size_t capacity() const { return capacity_; }
  /// True if the elements live in the inline buffer (no heap spill yet).
  bool is_inline() const { return data_ == inline_; }

  T& operator[](size_t i) { return data_[i]; }
  const T& operator[](size_t i) const { return data_[i]; }

  T* begin() { return data_; }
  T* end() { return data_ + size_; }
  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }
  T* data() { return data_; }
  const T* data() const { return data_; }

  /// Swap-remove the element at `i` (order not preserved); O(1).
  void unordered_erase(size_t i) {
    data_[i] = data_[--size_];
  }

 private:
  void Grow() {
    const size_t new_cap = capacity_ * 2;
    T* heap = new T[new_cap];
    std::memcpy(heap, data_, size_ * sizeof(T));
    if (data_ != inline_) delete[] data_;
    data_ = heap;
    capacity_ = new_cap;
  }

  void CopyFrom(const InlineVec& o) {
    if (o.size_ > capacity_) {
      if (data_ != inline_) delete[] data_;
      data_ = new T[o.capacity_];
      capacity_ = o.capacity_;
    }
    std::memcpy(data_, o.data_, o.size_ * sizeof(T));
    size_ = o.size_;
  }

  void MoveFrom(InlineVec& o) {
    if (o.data_ != o.inline_) {
      // Steal the heap buffer.
      data_ = o.data_;
      capacity_ = o.capacity_;
      size_ = o.size_;
      o.data_ = o.inline_;
      o.capacity_ = N;
      o.size_ = 0;
    } else {
      std::memcpy(inline_, o.inline_, o.size_ * sizeof(T));
      size_ = o.size_;
      o.size_ = 0;
    }
  }

  size_t size_ = 0;
  size_t capacity_ = N;
  T* data_;
  T inline_[N];
};

}  // namespace ssidb

#endif  // SSIDB_COMMON_INLINE_VEC_H_
