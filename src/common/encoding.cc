#include "src/common/encoding.h"

#include <cassert>
#include <cstring>

namespace ssidb {

void PutBig32(std::string* dst, uint32_t v) {
  char buf[4];
  buf[0] = static_cast<char>(v >> 24);
  buf[1] = static_cast<char>(v >> 16);
  buf[2] = static_cast<char>(v >> 8);
  buf[3] = static_cast<char>(v);
  dst->append(buf, 4);
}

void PutBig64(std::string* dst, uint64_t v) {
  PutBig32(dst, static_cast<uint32_t>(v >> 32));
  PutBig32(dst, static_cast<uint32_t>(v));
}

bool GetBig32(Slice s, size_t* offset, uint32_t* v) {
  if (*offset + 4 > s.size()) return false;
  const unsigned char* p =
      reinterpret_cast<const unsigned char*>(s.data() + *offset);
  *v = (uint32_t(p[0]) << 24) | (uint32_t(p[1]) << 16) |
       (uint32_t(p[2]) << 8) | uint32_t(p[3]);
  *offset += 4;
  return true;
}

bool GetBig64(Slice s, size_t* offset, uint64_t* v) {
  uint32_t hi, lo;
  if (!GetBig32(s, offset, &hi)) return false;
  if (!GetBig32(s, offset, &lo)) return false;
  *v = (uint64_t(hi) << 32) | lo;
  return true;
}

void PutI64(std::string* dst, int64_t v) {
  uint64_t u = static_cast<uint64_t>(v);
  char buf[8];
  for (int i = 0; i < 8; ++i) {
    buf[i] = static_cast<char>(u >> (8 * i));
  }
  dst->append(buf, 8);
}

bool GetI64(Slice s, size_t* offset, int64_t* v) {
  if (*offset + 8 > s.size()) return false;
  const unsigned char* p =
      reinterpret_cast<const unsigned char*>(s.data() + *offset);
  uint64_t u = 0;
  for (int i = 0; i < 8; ++i) {
    u |= uint64_t(p[i]) << (8 * i);
  }
  *v = static_cast<int64_t>(u);
  *offset += 8;
  return true;
}

void PutLengthPrefixed(std::string* dst, Slice v) {
  PutBig32(dst, static_cast<uint32_t>(v.size()));
  dst->append(v.data(), v.size());
}

bool GetLengthPrefixed(Slice s, size_t* offset, std::string* v) {
  uint32_t len;
  if (!GetBig32(s, offset, &len)) return false;
  if (*offset + len > s.size()) return false;
  v->assign(s.data() + *offset, len);
  *offset += len;
  return true;
}

std::string EncodeU64Key(uint64_t v) {
  std::string s;
  PutBig64(&s, v);
  return s;
}

uint64_t DecodeU64Key(Slice s) {
  size_t off = 0;
  uint64_t v = 0;
  const bool ok = GetBig64(s, &off, &v);
  assert(ok);
  (void)ok;
  return v;
}

}  // namespace ssidb
