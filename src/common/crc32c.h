// CRC32C (Castagnoli) — the checksum framing every durable artifact uses
// (WAL record frames, checkpoint footers). Software table-driven
// implementation: no hardware intrinsics, so the format is identical on
// every build the CI matrix covers.

#ifndef SSIDB_COMMON_CRC32C_H_
#define SSIDB_COMMON_CRC32C_H_

#include <cstddef>
#include <cstdint>

#include "src/common/slice.h"

namespace ssidb {

/// Extend `crc` (0 for a fresh checksum) with `data`. Streaming-friendly:
/// Crc32c(Crc32c(0, a), b) == Crc32c(0, a+b).
uint32_t Crc32c(uint32_t crc, const void* data, size_t n);

inline uint32_t Crc32c(Slice s) { return Crc32c(0, s.data(), s.size()); }

}  // namespace ssidb

#endif  // SSIDB_COMMON_CRC32C_H_
