// Configuration knobs for the engine. Every option corresponds to a design
// choice discussed in the paper; defaults follow the InnoDB prototype
// (row-level locking, precise conflict references, eager cleanup).

#ifndef SSIDB_COMMON_OPTIONS_H_
#define SSIDB_COMMON_OPTIONS_H_

#include <cstdint>
#include <string>

namespace ssidb {

namespace io {
class Env;  // src/io/env.h
}  // namespace io

/// Concurrency-control mode of a transaction (paper §2.2.1, §2.5, Ch. 3).
enum class IsolationLevel {
  /// Snapshot isolation with first-committer-wins; fast but admits write
  /// skew (§2.5). Under SSI systems this is the §3.8 "query at SI" mode:
  /// no SIREAD locks, no unsafe aborts.
  kSnapshot,
  /// The paper's contribution: SI plus rw-antidependency tracking (Ch. 3).
  kSerializableSSI,
  /// Strict two-phase locking with next-key locking (§2.2.1, §2.5.2).
  kSerializable2PL,
};

/// Granularity at which locks, FCW checks and SSI conflicts are detected.
enum class LockGranularity {
  /// InnoDB-style: per-row locks plus gap locks for phantom detection.
  kRow,
  /// Berkeley DB-style: keys map onto page buckets; all locking, conflict
  /// detection and first-committer-wins checks happen per page (§4.1-§4.3).
  /// Coarse granularity reproduces the paper's false-positive findings
  /// (§6.1.5). Gap locks are unnecessary: page locks subsume phantoms (§3.5).
  kPage,
};

/// How SSI records rw-antidependencies per transaction (§3.2 vs §3.6).
enum class ConflictTracking {
  /// Two booleans, inConflict/outConflict (Figs 3.1-3.5). Conservative:
  /// aborts on any consecutive pair of vulnerable edges.
  kFlags,
  /// Transaction references with commit-time comparison (Figs 3.9-3.10),
  /// avoiding aborts when the outgoing transaction provably did not commit
  /// first. Falls back to flag behaviour on multiple conflicts.
  kReferences,
};

/// Which transaction to abort when a dangerous structure is found (§3.7.2).
enum class VictimPolicy {
  /// Prefer the pivot (the transaction with both in- and out-conflicts),
  /// unless it already committed. The paper's default.
  kPivot,
  /// Prefer the younger transaction (larger transaction id) among the
  /// candidates that are still abortable.
  kYoungest,
};

/// S2PL deadlock detection strategy.
enum class DeadlockPolicy {
  /// Requesters search the waits-for graph before blocking; cycle => the
  /// requester aborts immediately.
  kImmediate,
  /// A background thread scans the waits-for graph periodically (Berkeley
  /// DB's db_perf ran the detector twice per second, §6.1.3, which the
  /// paper identifies as a drag on S2PL throughput).
  kPeriodic,
};

/// Durability configuration for the write-ahead log (§6.1.2 vs §6.1.3).
///
/// Two modes share the group-commit flusher:
///   * Simulated (wal_dir empty, the default): records are encoded, the
///     flusher sleeps flush_latency_us per batch and discards them — the
///     paper's I/O-bound regime without touching the filesystem.
///   * Durable (wal_dir set): records are appended to segmented WAL files
///     in wal_dir with a real write+fsync per batch; DB::Open replays them
///     (plus the latest checkpoint) to recover committed state after a
///     crash. flush_latency_us is ignored — the disk provides the latency.
struct LogOptions {
  /// If false, commits return without waiting for a flush ("no log flush"
  /// configuration of Fig 6.1: ~100us transactions). If true, each commit
  /// waits until a group-commit flush covers its LSN (Fig 6.2: I/O-bound).
  /// In durable mode, only flushed commits are guaranteed to survive a
  /// crash: flush_on_commit=false trades the crash-durability of the most
  /// recent commits for commit latency (innodb_flush_log_at_trx_commit=0).
  bool flush_on_commit = false;

  /// Simulated flush latency in microseconds, modelling the disk. The
  /// paper's SATA RAID gave ~10ms; we default to 1ms so laptop sweeps stay
  /// short. Group commit amortises this across concurrent committers.
  /// Simulated mode only (wal_dir empty).
  uint32_t flush_latency_us = 1000;

  /// InnoDB releases row locks *before* the commit flush (§4.4). The paper
  /// changed this to release after; we default to "after" and expose the
  /// original behaviour as an ablation.
  bool early_lock_release = false;

  /// Directory for WAL segments and checkpoints. Empty (default) keeps the
  /// engine fully in-memory with the simulated flush above. Created on
  /// first use if missing.
  std::string wal_dir;

  /// Size at which the WAL rotates to a new segment file (durable mode).
  uint64_t wal_segment_bytes = 4u << 20;

  /// fsync each group-commit batch (durable mode). Disabling leaves
  /// durability to the OS page cache — useful only for tests that exercise
  /// the file format without paying for fsync.
  bool wal_fsync = true;

  /// If nonzero, DB runs a background thread that calls DB::Checkpoint()
  /// every this-many milliseconds (durable mode only).
  uint32_t checkpoint_interval_ms = 0;

  /// Incremental checkpoints: after a full base image, up to this many
  /// delta images (each sweeping only versions committed since the
  /// previous checkpoint) are chained off it before the next checkpoint
  /// compacts the chain into a fresh full base. 0 = every checkpoint is a
  /// full sweep (the pre-delta behaviour).
  uint32_t checkpoint_max_deltas = 4;

  /// Adaptive group commit: when nonzero and flush_on_commit is set, the
  /// flusher briefly waits (up to this many microseconds) for straggler
  /// commits before flushing a batch that is small relative to the recent
  /// arrival rate — trading a bounded latency bump for larger fsync
  /// batches at high MPL. 0 (default) flushes whatever arrived during the
  /// previous flush, the classic group-commit policy.
  uint32_t group_commit_wait_us = 0;
};

/// Engine-wide options, fixed at DB::Open.
struct DBOptions {
  LockGranularity granularity = LockGranularity::kRow;
  ConflictTracking conflict_tracking = ConflictTracking::kReferences;
  VictimPolicy victim_policy = VictimPolicy::kPivot;
  DeadlockPolicy deadlock_policy = DeadlockPolicy::kImmediate;
  LogOptions log;

  /// Rows per simulated page in kPage granularity. ~20 rows/page with 2000
  /// accounts reproduces the paper's "about 100 leaf pages" SmallBank
  /// setup (§6.1.2).
  uint32_t rows_per_page = 20;

  /// Period of the kPeriodic deadlock detector, in milliseconds.
  uint32_t deadlock_scan_interval_ms = 500;

  /// Upper bound on any single lock wait; a safety net so misconfigured
  /// workloads fail with kTimedOut instead of hanging.
  uint32_t lock_timeout_ms = 10000;

  /// §3.7.1: abort a transaction as soon as an operation would give it both
  /// an in- and an out-conflict, instead of waiting for commit. Both paper
  /// prototypes enable this.
  bool abort_early = true;

  /// §3.7.3: when a transaction takes an EXCLUSIVE lock on an item it holds
  /// an SIREAD lock on, drop the SIREAD lock (the new version it creates
  /// detects conflicts instead). Both paper prototypes enable this.
  bool upgrade_siread_locks = true;

  /// §4.5: allocate the read snapshot lazily, after the first statement's
  /// locks are granted, so single-statement updates never abort under FCW.
  bool late_snapshot = true;

  /// If nonzero, DB runs a background sweep every this-many milliseconds
  /// that prunes committed versions unreachable by any active snapshot
  /// (Table::PruneShards at min_active_read_ts). Inline pruning only fires
  /// when the *same key* is written again, so without the sweep a
  /// read-mostly key's chain grows forever once versions pile up behind a
  /// long snapshot. Works in both in-memory and durable modes.
  uint32_t version_gc_interval_ms = 100;

  /// Record every operation into an in-memory history for the §3.1.1
  /// after-the-fact MVSG analyzer / test oracle. Costs memory; off in
  /// benchmarks, on in correctness tests.
  bool record_history = false;

  /// Commit-slot ring size (rounded up to a power of two): the maximum
  /// number of writing commits that may be between timestamp allocation
  /// and watermark coverage before a committer parks (ring-full
  /// backpressure). The default comfortably exceeds any realistic
  /// in-flight commit window; tiny values are for tests.
  uint64_t commit_ring_slots = 4096;

  /// Transaction-registry shard count (rounded up to a power of two).
  /// Begin/commit/abort touch one shard; Find probes one shard. 0 (the
  /// default) sizes the shard array from the runtime core topology
  /// (std::thread::hardware_concurrency); nonzero pins an explicit count
  /// (tests use tiny values to force collisions).
  uint32_t txn_registry_shards = 0;

  /// Disk-backed storage tier (buffer_pool.h / storage_tier.h). Nonzero
  /// enables it: cold version chains (newest commit at or below the prune
  /// horizon, not accessed since the previous sweep) are evicted to
  /// immutable sorted run files under data_dir, and a read that misses in
  /// memory faults the chain suffix back through a buffer pool of this
  /// many bytes (fixed frame array, clock second-chance eviction). 0 (the
  /// default) keeps every chain memory-resident — the pre-tier engine,
  /// bit-for-bit.
  uint64_t buffer_pool_bytes = 0;

  /// Directory for run files. Empty defaults to "<wal_dir>/runs" when
  /// LogOptions::wal_dir is set; with both empty the storage tier stays
  /// disabled regardless of buffer_pool_bytes (there is nowhere to spill).
  /// In-memory engines (wal_dir unset) wipe stale runs at Open — runs are
  /// part of the durable state only when the WAL is.
  std::string data_dir;

  /// Size of one run-file page: the buffer pool's frame size and the CRC
  /// framing unit of run files. Entries larger than a page's payload are
  /// never spilled (they stay memory-resident).
  uint32_t run_page_bytes = 16384;

  /// Background compaction trigger: when a table accumulates at least this
  /// many run files, the sweeper merges them into one (newest commit
  /// timestamp per key wins). Minimum 2.
  uint32_t run_compaction_min_runs = 4;

  /// Flat-combining SSI commit certification (commit_combiner.h): when a
  /// batch of transactions arrives at the certification stage together,
  /// one committer validates all of them under a single lock acquisition.
  /// false degrades the stage to a plain mutex, one commit per
  /// acquisition — the reference engine for differential tests; verdicts
  /// must be identical either way.
  bool certification_batching = true;

  /// Commit-pipeline stage timing samples every N-th commit per thread
  /// (rounded up to a power of two). The clock reads for a fully timed
  /// commit cost ~100ns; at the default 1-in-16 rate that is noise
  /// against the commit itself, which keeps metrics effectively free on
  /// the hot path. 1 times every commit (tests); the read-path fault/hit
  /// split uses the same period.
  uint32_t metrics_sample_period = 16;

  /// When nonzero (and metrics_dump_path is set), a background thread
  /// appends one DumpMetrics() JSON line to metrics_dump_path every
  /// this-many milliseconds — a flight-recorder time series for
  /// post-mortem analysis. 0 (default) disables the dumper.
  uint32_t metrics_dump_interval_ms = 0;

  /// Target file of the background metrics dumper (appended, JSON lines).
  std::string metrics_dump_path;

  /// I/O environment every durable artifact (WAL, checkpoints, run files,
  /// buffer-pool page I/O) routes through. nullptr (default) means the
  /// real filesystem (io::Env::Default()); tests install an
  /// io::FaultInjectingEnv to script disk failures. Borrowed — the caller
  /// keeps it alive for the life of the DB.
  io::Env* env = nullptr;
};

/// Per-transaction options.
struct TxnOptions {
  IsolationLevel isolation = IsolationLevel::kSerializableSSI;
};

}  // namespace ssidb

#endif  // SSIDB_COMMON_OPTIONS_H_
