#include "src/common/random.h"

#include <cmath>

namespace ssidb {

void Random::Seed(uint64_t seed) {
  // SplitMix64 to expand the seed into two non-zero state words.
  auto mix = [](uint64_t& z) {
    z += 0x9e3779b97f4a7c15ULL;
    uint64_t x = z;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
  };
  uint64_t z = seed;
  s_[0] = mix(z);
  s_[1] = mix(z);
  if (s_[0] == 0 && s_[1] == 0) s_[0] = 1;
}

uint64_t Random::Next() {
  uint64_t x = s_[0];
  const uint64_t y = s_[1];
  s_[0] = y;
  x ^= x << 23;
  s_[1] = x ^ y ^ (x >> 17) ^ (y >> 26);
  return s_[1] + y;
}

uint64_t Random::Uniform(uint64_t n) {
  assert(n > 0);
  // Rejection sampling to avoid modulo bias for large n.
  const uint64_t threshold = -n % n;
  for (;;) {
    const uint64_t r = Next();
    if (r >= threshold) return r % n;
  }
}

int64_t Random::UniformRange(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  return lo + static_cast<int64_t>(
                  Uniform(static_cast<uint64_t>(hi - lo) + 1));
}

bool Random::Bernoulli(double p) { return NextDouble() < p; }

double Random::NextDouble() {
  // 53 random mantissa bits.
  return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
}

uint64_t Random::NURand(uint64_t a, uint64_t x, uint64_t y) {
  // Constant C per TPC-C 2.1.6.1; any fixed value in [0, A] is valid for a
  // self-contained run.
  const uint64_t c = a / 3;
  const uint64_t part1 = Uniform(a + 1);
  const uint64_t part2 = x + Uniform(y - x + 1);
  return (((part1 | part2) + c) % (y - x + 1)) + x;
}

std::string Random::AlphaString(size_t min_len, size_t max_len) {
  static const char kChars[] =
      "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789";
  const size_t len = min_len + Uniform(max_len - min_len + 1);
  std::string out;
  out.reserve(len);
  for (size_t i = 0; i < len; ++i) {
    out.push_back(kChars[Uniform(sizeof(kChars) - 1)]);
  }
  return out;
}

namespace {
double Zeta(uint64_t n, double theta) {
  double sum = 0;
  for (uint64_t i = 1; i <= n; ++i) sum += 1.0 / std::pow(double(i), theta);
  return sum;
}
}  // namespace

ZipfGenerator::ZipfGenerator(uint64_t n, double theta)
    : n_(n), theta_(theta) {
  zetan_ = Zeta(n, theta);
  const double zeta2 = Zeta(2, theta);
  alpha_ = 1.0 / (1.0 - theta);
  eta_ = (1.0 - std::pow(2.0 / double(n), 1.0 - theta)) /
         (1.0 - zeta2 / zetan_);
}

uint64_t ZipfGenerator::Next(Random* rng) {
  const double u = rng->NextDouble();
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  const uint64_t v = static_cast<uint64_t>(
      double(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return v >= n_ ? n_ - 1 : v;
}

}  // namespace ssidb
