// Epoch-based reclamation and runtime core-topology sizing.
//
// EpochReclaimer retires items tagged with a monotonic epoch (here: commit
// timestamps) into per-thread slots and collects every item whose epoch is
// at or below a caller-supplied horizon. It replaces the TxnManager's
// previous suspended-transaction multimap, whose single mutex and ordered
// insert sat on the commit path of every retained SSI transaction:
//
//   * Retire is one slot mutex (keyed by a per-thread index, uncontended
//     in steady state) plus a lock-free global-minimum floor — no ordered
//     structure, no global lock.
//   * Collect has a lock-free fast path: when the cached global oldest
//     epoch exceeds the horizon, nothing can be collectible and no lock is
//     taken. The cache may lag a concurrent Retire; callers that collect
//     after every retire (as TxnManager::CleanupSuspended does) reap such
//     an entry on the next pass — the same "lags a beat, never leads"
//     contract the old multimap cache had.
//
// Why the oldest_ cache cannot leak an item (the subtle case: Collect
// raising the cache while a Retire is in flight): Retire stores the item
// into its slot (under the slot mutex, updating the slot minimum) BEFORE
// it CAS-lowers the global oldest_. Collect raises oldest_ only via a CAS
// whose expected value is what it read BEFORE scanning the slots, and then
// re-lowers it against every slot minimum it can see. Interleavings:
//   1. Retire's global CAS lands before Collect's raise-CAS: the raise
//      fails (oldest_ changed) and the cache keeps the retired floor.
//   2. Retire's global CAS lands after Collect's raise-CAS: the CAS-min
//      loop on the retire side re-lowers the cache below the raise.
//   3. Retire's slot store lands before Collect's scan of that slot: the
//      verification pass (and the scan itself) sees the slot minimum and
//      re-lowers the cache.
// In every case the cache ends at or below the retired epoch, so the fast
// path can defer — but never permanently skip — a retired item.
//
// TopologyShards sizes shard arrays from std::thread::hardware_concurrency
// instead of fixed pow2 constants, so slot counts track the machine the
// engine actually runs on.

#ifndef SSIDB_COMMON_EPOCH_H_
#define SSIDB_COMMON_EPOCH_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace ssidb {

/// Smallest power of two >= max(n, floor). Shared by the commit ring, the
/// registry shards and the epoch slots; saturates at 2^63 for absurd
/// inputs.
inline uint64_t RoundUpPow2(uint64_t n, uint64_t floor) {
  uint64_t p = floor;
  while (p < n && p < (uint64_t{1} << 63)) p <<= 1;
  return p;
}

/// Shard count matched to the runtime core topology: the smallest power of
/// two covering hardware_concurrency (with a sane fallback when the
/// runtime reports 0, which the standard permits).
inline uint32_t TopologyShards(uint32_t floor = 1) {
  uint32_t cores = std::thread::hardware_concurrency();
  if (cores == 0) cores = 8;
  return static_cast<uint32_t>(RoundUpPow2(cores, floor));
}

/// Process-wide dense thread index, for spreading threads across
/// topology-sized slot arrays (each structure masks it down to its own
/// size). Stable for the lifetime of the thread.
inline uint64_t ThreadTopologySlot() {
  static std::atomic<uint64_t> next{0};
  thread_local const uint64_t slot =
      next.fetch_add(1, std::memory_order_relaxed);
  return slot;
}

template <typename T>
class EpochReclaimer {
 public:
  static constexpr uint64_t kMaxEpoch = ~uint64_t{0};

  /// `slots` is rounded up to a power of two; 0 means "size from the core
  /// topology" (TopologyShards).
  explicit EpochReclaimer(uint32_t slots)
      : mask_(RoundUpPow2(slots != 0 ? slots : TopologyShards(), 1) - 1),
        slots_(new Slot[mask_ + 1]) {}

  EpochReclaimer(const EpochReclaimer&) = delete;
  EpochReclaimer& operator=(const EpochReclaimer&) = delete;

  /// Retire `item` at `epoch`: it becomes collectible once a Collect runs
  /// with horizon >= epoch. Epochs may repeat (read-only commits share
  /// timestamps). Thread-safe.
  void Retire(uint64_t epoch, T item) {
    Slot& slot = slots_[ThreadTopologySlot() & mask_];
    {
      std::lock_guard<std::mutex> guard(slot.mu);
      slot.items.push_back(Entry{epoch, std::move(item)});
      if (epoch < slot.min_epoch.load(std::memory_order_relaxed)) {
        slot.min_epoch.store(epoch, std::memory_order_seq_cst);
      }
    }
    size_.fetch_add(1, std::memory_order_relaxed);
    // Slot store FIRST, then the global floor (the header's leak-freedom
    // argument orders Collect's raise against exactly this sequence).
    LowerOldest(epoch);
  }

  /// Remove every item with epoch <= horizon and hand each to `fn` (called
  /// after all slot locks are released, so `fn` may take unrelated locks).
  /// Returns the number collected. Thread-safe; concurrent Collects may
  /// split the collectible set between them, each item is handed out once.
  template <typename Fn>
  size_t Collect(uint64_t horizon, Fn&& fn) {
    // Lock-free fast path. seq_cst: pairs with Retire's CAS-min so a
    // cleanup ordered after a retire (program order: Retire then Collect
    // on the committing thread) cannot miss its floor.
    const uint64_t start = oldest_.load(std::memory_order_seq_cst);
    if (start > horizon) return 0;

    std::vector<T> expired;
    uint64_t observed_min = kMaxEpoch;
    for (uint64_t i = 0; i <= mask_; ++i) {
      Slot& slot = slots_[i];
      std::lock_guard<std::mutex> guard(slot.mu);
      uint64_t slot_min = kMaxEpoch;
      size_t kept = 0;
      for (Entry& e : slot.items) {
        if (e.epoch <= horizon) {
          expired.push_back(std::move(e.item));
        } else {
          if (e.epoch < slot_min) slot_min = e.epoch;
          slot.items[kept++] = std::move(e);
        }
      }
      slot.items.resize(kept);
      slot.min_epoch.store(slot_min, std::memory_order_seq_cst);
      if (slot_min < observed_min) observed_min = slot_min;
    }

    // Raise the global floor to what this scan proved — but only from the
    // value read before the scan (a concurrent Retire that lowered it in
    // between must win) — then verify against every slot minimum so a
    // Retire whose slot store landed after our scan of its slot but whose
    // global CAS lost to our raise is re-lowered (header, case 3).
    if (observed_min > start) {
      uint64_t expected = start;
      oldest_.compare_exchange_strong(expected, observed_min,
                                      std::memory_order_seq_cst);
      for (uint64_t i = 0; i <= mask_; ++i) {
        LowerOldest(slots_[i].min_epoch.load(std::memory_order_seq_cst));
      }
    }

    size_.fetch_sub(expired.size(), std::memory_order_relaxed);
    for (T& item : expired) fn(std::move(item));
    return expired.size();
  }

  /// Retired-but-uncollected item count. O(1); coherent as a single
  /// counter (may be mid-flight relative to a concurrent Retire/Collect).
  size_t size() const { return size_.load(std::memory_order_relaxed); }

  /// The cached global floor (kMaxEpoch when provably empty); test hook.
  uint64_t oldest() const { return oldest_.load(std::memory_order_seq_cst); }

  uint64_t slots() const { return mask_ + 1; }

 private:
  struct Entry {
    uint64_t epoch;
    T item;
  };

  struct alignas(64) Slot {
    std::mutex mu;
    std::vector<Entry> items;
    /// Min epoch of `items` (kMaxEpoch when empty). Written under `mu`;
    /// read lock-free by Collect's verification pass.
    std::atomic<uint64_t> min_epoch{kMaxEpoch};
  };

  void LowerOldest(uint64_t epoch) {
    uint64_t cur = oldest_.load(std::memory_order_relaxed);
    while (epoch < cur && !oldest_.compare_exchange_weak(
                              cur, epoch, std::memory_order_seq_cst)) {
    }
  }

  const uint64_t mask_;
  const std::unique_ptr<Slot[]> slots_;
  /// Lower bound on every retired-but-uncollected epoch: the Collect fast
  /// path. May lag a concurrent Retire (never leads it — see header).
  std::atomic<uint64_t> oldest_{kMaxEpoch};
  std::atomic<size_t> size_{0};
};

}  // namespace ssidb

#endif  // SSIDB_COMMON_EPOCH_H_
