#include "src/common/crc32c.h"

#include <array>

namespace ssidb {
namespace {

// CRC32C polynomial, reflected representation.
constexpr uint32_t kPoly = 0x82f63b78u;

std::array<uint32_t, 256> BuildTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1) ? (c >> 1) ^ kPoly : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

const std::array<uint32_t, 256>& Table() {
  static const std::array<uint32_t, 256> table = BuildTable();
  return table;
}

}  // namespace

uint32_t Crc32c(uint32_t crc, const void* data, size_t n) {
  const auto& table = Table();
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint32_t c = crc ^ 0xffffffffu;
  for (size_t i = 0; i < n; ++i) {
    c = table[(c ^ p[i]) & 0xff] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

}  // namespace ssidb
