// Status: RocksDB-style error propagation without exceptions.
//
// The code taxonomy mirrors the error classes of the paper's evaluation
// (Chapter 6): kDeadlock for S2PL lock cycles, kUpdateConflict for the
// snapshot-isolation first-committer-wins rule (Berkeley DB's
// DB_SNAPSHOT_CONFLICT / InnoDB's DB_UPDATE_CONFLICT), and kUnsafe for the
// Serializable SI dangerous-structure aborts (DB_SNAPSHOT_UNSAFE /
// DB_UNSAFE_TRANSACTION).

#ifndef SSIDB_COMMON_STATUS_H_
#define SSIDB_COMMON_STATUS_H_

#include <string>

namespace ssidb {

/// Outcome of every fallible ssidb operation.
class Status {
 public:
  enum class Code {
    kOk = 0,
    /// Key not present (or not visible in this transaction's snapshot).
    kNotFound,
    /// Insert of a key that already has a live, visible row.
    kDuplicateKey,
    /// S2PL: this transaction was chosen as a deadlock victim.
    kDeadlock,
    /// SI first-committer-wins: a concurrent transaction committed a
    /// conflicting write first.
    kUpdateConflict,
    /// Serializable SI: committing would risk a non-serializable execution
    /// (two consecutive rw-antidependencies were detected).
    kUnsafe,
    /// Operation on a transaction that already committed or aborted.
    kTxnInvalid,
    /// Malformed argument (unknown table, empty key, bad option...).
    kInvalidArgument,
    /// Lock wait exceeded the configured timeout.
    kTimedOut,
    /// Durable data failed validation (CRC mismatch, malformed record or
    /// checkpoint). Distinct from kTruncated so the recovery tail-scan can
    /// tell "bytes damaged" from "bytes missing".
    kCorruption,
    /// Durable data ends mid-record (short read): the expected torn-tail
    /// shape after a crash. Recovery treats this as a clean end of log when
    /// it occurs at the tail of the newest WAL segment.
    kTruncated,
    /// A filesystem operation (open/write/fsync/rename) failed.
    kIOError,
  };

  Status() : code_(Code::kOk) {}

  static Status OK() { return Status(); }
  static Status NotFound(std::string msg = "") {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status DuplicateKey(std::string msg = "") {
    return Status(Code::kDuplicateKey, std::move(msg));
  }
  static Status Deadlock(std::string msg = "") {
    return Status(Code::kDeadlock, std::move(msg));
  }
  static Status UpdateConflict(std::string msg = "") {
    return Status(Code::kUpdateConflict, std::move(msg));
  }
  static Status Unsafe(std::string msg = "") {
    return Status(Code::kUnsafe, std::move(msg));
  }
  static Status TxnInvalid(std::string msg = "") {
    return Status(Code::kTxnInvalid, std::move(msg));
  }
  static Status InvalidArgument(std::string msg = "") {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status TimedOut(std::string msg = "") {
    return Status(Code::kTimedOut, std::move(msg));
  }
  static Status Corruption(std::string msg = "") {
    return Status(Code::kCorruption, std::move(msg));
  }
  static Status Truncated(std::string msg = "") {
    return Status(Code::kTruncated, std::move(msg));
  }
  static Status IOError(std::string msg = "") {
    return Status(Code::kIOError, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  bool IsNotFound() const { return code_ == Code::kNotFound; }
  bool IsDuplicateKey() const { return code_ == Code::kDuplicateKey; }
  bool IsDeadlock() const { return code_ == Code::kDeadlock; }
  bool IsUpdateConflict() const { return code_ == Code::kUpdateConflict; }
  bool IsUnsafe() const { return code_ == Code::kUnsafe; }
  bool IsTxnInvalid() const { return code_ == Code::kTxnInvalid; }
  bool IsInvalidArgument() const { return code_ == Code::kInvalidArgument; }
  bool IsTimedOut() const { return code_ == Code::kTimedOut; }
  bool IsCorruption() const { return code_ == Code::kCorruption; }
  bool IsTruncated() const { return code_ == Code::kTruncated; }
  bool IsIOError() const { return code_ == Code::kIOError; }

  /// True for the three error classes that abort the enclosing transaction
  /// (the ones the paper's benchmarks count and retry).
  bool IsAbort() const {
    return code_ == Code::kDeadlock || code_ == Code::kUpdateConflict ||
           code_ == Code::kUnsafe || code_ == Code::kTimedOut;
  }

  Code code() const { return code_; }
  const std::string& message() const { return msg_; }

  /// Human-readable "<code>: <message>" string.
  std::string ToString() const;

  bool operator==(const Status& other) const { return code_ == other.code_; }

 private:
  Status(Code code, std::string msg) : code_(code), msg_(std::move(msg)) {}

  Code code_;
  std::string msg_;
};

/// Short name for a status code ("ok", "deadlock", "unsafe", ...).
const char* StatusCodeName(Status::Code code);

}  // namespace ssidb

#endif  // SSIDB_COMMON_STATUS_H_
