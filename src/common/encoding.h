// Order-preserving key encoding and little-endian value packing.
//
// Workloads with composite primary keys (TPC-C: (w_id, d_id, o_id), ...)
// encode each component big-endian so that the byte-wise ordering of the
// table index matches the numeric ordering of the tuple — the property
// next-key locking relies on (§2.5.2).

#ifndef SSIDB_COMMON_ENCODING_H_
#define SSIDB_COMMON_ENCODING_H_

#include <cstdint>
#include <string>

#include "src/common/slice.h"

namespace ssidb {

/// Append a big-endian (order-preserving) 32-bit unsigned value.
void PutBig32(std::string* dst, uint32_t v);
/// Append a big-endian (order-preserving) 64-bit unsigned value.
void PutBig64(std::string* dst, uint64_t v);

/// Read back big-endian values; advances *offset. Returns false if the
/// slice is too short.
bool GetBig32(Slice s, size_t* offset, uint32_t* v);
bool GetBig64(Slice s, size_t* offset, uint64_t* v);

/// Fixed-point money helpers: amounts stored as signed 64-bit cents,
/// little-endian inside values (values need no ordering).
void PutI64(std::string* dst, int64_t v);
bool GetI64(Slice s, size_t* offset, int64_t* v);

/// Append a length-prefixed string (32-bit length).
void PutLengthPrefixed(std::string* dst, Slice v);
bool GetLengthPrefixed(Slice s, size_t* offset, std::string* v);

/// Convenience: one-shot big-endian u64 key.
std::string EncodeU64Key(uint64_t v);
/// Decode a key produced by EncodeU64Key. Asserts on malformed input.
uint64_t DecodeU64Key(Slice s);

}  // namespace ssidb

#endif  // SSIDB_COMMON_ENCODING_H_
