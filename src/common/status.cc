#include "src/common/status.h"

namespace ssidb {

const char* StatusCodeName(Status::Code code) {
  switch (code) {
    case Status::Code::kOk:
      return "ok";
    case Status::Code::kNotFound:
      return "not_found";
    case Status::Code::kDuplicateKey:
      return "duplicate_key";
    case Status::Code::kDeadlock:
      return "deadlock";
    case Status::Code::kUpdateConflict:
      return "update_conflict";
    case Status::Code::kUnsafe:
      return "unsafe";
    case Status::Code::kTxnInvalid:
      return "txn_invalid";
    case Status::Code::kInvalidArgument:
      return "invalid_argument";
    case Status::Code::kTimedOut:
      return "timed_out";
    case Status::Code::kCorruption:
      return "corruption";
    case Status::Code::kTruncated:
      return "truncated";
    case Status::Code::kIOError:
      return "io_error";
  }
  return "unknown";
}

std::string Status::ToString() const {
  std::string out = StatusCodeName(code_);
  if (!msg_.empty()) {
    out += ": ";
    out += msg_;
  }
  return out;
}

}  // namespace ssidb
