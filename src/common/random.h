// Pseudo-random utilities for workloads and tests: a fast xorshift generator
// plus the TPC-C NURand non-uniform distribution and a bounded Zipf sampler.

#ifndef SSIDB_COMMON_RANDOM_H_
#define SSIDB_COMMON_RANDOM_H_

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

namespace ssidb {

/// xorshift128+ generator; deterministic per seed, cheap enough to sit on a
/// benchmark worker's hot path.
class Random {
 public:
  explicit Random(uint64_t seed = 0x5bd1e995) { Seed(seed); }

  void Seed(uint64_t seed);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t Uniform(uint64_t n);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformRange(int64_t lo, int64_t hi);

  /// True with probability p (0 <= p <= 1).
  bool Bernoulli(double p);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// TPC-C NURand(A, x, y): non-uniform value in [x, y] (spec clause 2.1.6).
  uint64_t NURand(uint64_t a, uint64_t x, uint64_t y);

  /// Random alphanumeric string with length in [min_len, max_len].
  std::string AlphaString(size_t min_len, size_t max_len);

  /// Shuffle a vector in place (Fisher-Yates).
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      std::swap((*v)[i], (*v)[Uniform(i + 1)]);
    }
  }

 private:
  uint64_t s_[2];
};

/// Zipf-distributed sampler over [0, n) with parameter theta, using the
/// Gray et al. quick method (precomputed zeta). Used for skewed-contention
/// ablations.
class ZipfGenerator {
 public:
  ZipfGenerator(uint64_t n, double theta);

  uint64_t Next(Random* rng);

  uint64_t n() const { return n_; }

 private:
  uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
};

}  // namespace ssidb

#endif  // SSIDB_COMMON_RANDOM_H_
