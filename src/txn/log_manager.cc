#include "src/txn/log_manager.h"

#include <chrono>

#include "src/common/crc32c.h"
#include "src/common/encoding.h"
#include "src/io/env.h"
#include "src/recovery/wal.h"

namespace ssidb {

namespace {
/// Frames larger than this are rejected as corrupt before a bogus length
/// can drive a huge allocation (1 GiB dwarfs any real transaction).
constexpr uint32_t kMaxRecordBody = 1u << 30;
}  // namespace

std::string LogRecord::Encode() const {
  std::string body;
  body.push_back(static_cast<char>(type));
  PutBig64(&body, txn_id);
  PutBig64(&body, commit_ts);
  PutBig32(&body, static_cast<uint32_t>(redo.size()));
  for (const RedoEntry& e : redo) {
    PutBig32(&body, e.table);
    PutLengthPrefixed(&body, e.key);
    body.push_back(e.tombstone ? 1 : 0);
    PutLengthPrefixed(&body, e.value);
  }
  std::string out;
  PutBig32(&out, Crc32c(body));
  PutBig32(&out, static_cast<uint32_t>(body.size()));
  out += body;
  return out;
}

Status LogRecord::DecodeFrom(Slice in, size_t* offset, LogRecord* out) {
  size_t off = *offset;
  uint32_t crc = 0, len = 0;
  if (!GetBig32(in, &off, &crc) || !GetBig32(in, &off, &len)) {
    return Status::Truncated("frame header ends early");
  }
  if (len > kMaxRecordBody) {
    return Status::Corruption("frame length implausible");
  }
  if (off + len > in.size()) {
    return Status::Truncated("frame body ends early");
  }
  const Slice body(in.data() + off, len);
  if (Crc32c(body) != crc) {
    return Status::Corruption("crc mismatch");
  }
  // Body parse: any structural failure past a valid CRC is corruption (the
  // encoder never produces it).
  size_t boff = 0;
  if (body.size() < 1) return Status::Corruption("empty body");
  const uint8_t type_byte = static_cast<uint8_t>(body.data()[0]);
  boff = 1;
  if (type_byte > static_cast<uint8_t>(LogRecordType::kTableCreate)) {
    return Status::Corruption("unknown record type");
  }
  uint64_t txn = 0, cts = 0;
  uint32_t count = 0;
  if (!GetBig64(body, &boff, &txn) || !GetBig64(body, &boff, &cts) ||
      !GetBig32(body, &boff, &count)) {
    return Status::Corruption("body header short");
  }
  std::vector<RedoEntry> redo;
  redo.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    RedoEntry e;
    if (!GetBig32(body, &boff, &e.table)) {
      return Status::Corruption("redo table short");
    }
    if (!GetLengthPrefixed(body, &boff, &e.key)) {
      return Status::Corruption("redo key short");
    }
    if (boff + 1 > body.size()) {
      return Status::Corruption("redo tombstone short");
    }
    e.tombstone = body.data()[boff] != 0;
    ++boff;
    if (!GetLengthPrefixed(body, &boff, &e.value)) {
      return Status::Corruption("redo value short");
    }
    redo.push_back(std::move(e));
  }
  if (boff != body.size()) {
    return Status::Corruption("trailing bytes in body");
  }
  out->type = static_cast<LogRecordType>(type_byte);
  out->txn_id = txn;
  out->commit_ts = cts;
  out->redo = std::move(redo);
  *offset = off + len;
  return Status::OK();
}

Status LogRecord::Decode(Slice in, LogRecord* out) {
  size_t offset = 0;
  Status st = DecodeFrom(in, &offset, out);
  if (!st.ok()) return st;
  if (offset != in.size()) {
    return Status::Corruption("trailing bytes after frame");
  }
  return Status::OK();
}

LogManager::LogManager(const LogOptions& options, io::Env* env)
    : options_(options), env_(io::ResolveEnv(env)) {
  if (durable()) {
    wal_ = std::make_unique<recovery::WalWriter>(
        options_.wal_dir, options_.wal_segment_bytes, options_.wal_fsync,
        env_);
  }
  // The flusher runs whenever batches have somewhere to go: always in
  // durable mode (even without flush_on_commit, records drain to disk
  // asynchronously), only for the flush-latency simulation otherwise.
  if (durable() || options_.flush_on_commit) {
    flusher_ = std::thread([this] { FlusherLoop(); });
  }
}

LogManager::~LogManager() { Quiesce(); }

void LogManager::Quiesce() {
  {
    std::lock_guard<std::mutex> guard(mu_);
    stop_.store(true);
  }
  work_cv_.notify_all();
  // Joining drains pending_: a clean shutdown leaves every appended record
  // in the WAL. Idempotent — a second call finds the flusher already
  // joined and the subscription list empty.
  if (flusher_.joinable()) flusher_.join();
  // The final batch fired every subscription it covered; anything left
  // subscribed past the last appended LSN (API misuse, but survivable)
  // fires now with the sticky status so no completion is ever dropped.
  std::vector<FlushSub> leftover;
  Status sticky;
  {
    std::lock_guard<std::mutex> guard(mu_);
    leftover.swap(flush_subs_);
    sticky = io_status_;
  }
  for (FlushSub& sub : leftover) sub.cb(sticky);
}

Lsn LogManager::Append(LogRecord record) {
  if (!durable() && !options_.flush_on_commit &&
      !retain_.load(std::memory_order_acquire)) {
    // "No flush" regime: the buffer is durable by decree, nothing reads
    // the record again, and WaitFlushed returns without consulting
    // flushed_lsn_. Two fetch-adds — no encode, no mutex — so the commit
    // pipeline's log step is free of global serialization.
    appended_records_.fetch_add(1, std::memory_order_relaxed);
    return next_lsn_.fetch_add(1, std::memory_order_relaxed);
  }
  recovery::WalFrame frame = recovery::MakeWalFrame(record);
  std::lock_guard<std::mutex> guard(mu_);
  const Lsn lsn = next_lsn_.fetch_add(1, std::memory_order_relaxed);
  appended_records_.fetch_add(1, std::memory_order_relaxed);
  if (retain_.load(std::memory_order_relaxed)) {
    retained_.push_back(frame.bytes);
  }
  if (durable() || options_.flush_on_commit) {
    pending_.push_back(std::move(frame));
    work_cv_.notify_one();
  } else {
    flushed_lsn_ = lsn;
  }
  return lsn;
}

Status LogManager::WaitFlushed(Lsn lsn) {
  if (!options_.flush_on_commit) return Status::OK();
  std::unique_lock<std::mutex> guard(mu_);
  flushed_cv_.wait(guard, [&] { return flushed_lsn_ >= lsn || stop_.load(); });
  return io_status_;
}

void LogManager::SetIOErrorCallback(IOErrorCallback cb) {
  Status already_failed;
  {
    std::lock_guard<std::mutex> guard(mu_);
    if (io_status_.ok()) {
      io_error_cb_ = std::move(cb);
      return;
    }
    already_failed = io_status_;
  }
  // The flusher failed before registration (it starts in the constructor,
  // so the window is real): the transition already happened — fire inline
  // so the owner still observes it.
  cb(already_failed);
}

void LogManager::OnFlushed(Lsn lsn, FlushCallback cb) {
  // Same satisfaction condition as WaitFlushed's wake predicate; when it
  // already holds, fire inline with the sticky status — the subscriber
  // never learns whether it raced the flush or followed it.
  if (!options_.flush_on_commit) {
    cb(Status::OK());
    return;
  }
  Status st;
  {
    std::unique_lock<std::mutex> guard(mu_);
    if (flushed_lsn_ < lsn && !stop_.load()) {
      flush_subs_.push_back(FlushSub{lsn, std::move(cb)});
      return;
    }
    st = io_status_;
  }
  cb(st);
}

std::vector<std::string> LogManager::RetainedRecords() const {
  std::lock_guard<std::mutex> guard(mu_);
  return retained_;
}

uint64_t LogManager::wal_bytes_written() const {
  std::lock_guard<std::mutex> guard(mu_);
  return wal_ != nullptr ? wal_->bytes_written() : 0;
}

std::map<uint64_t, recovery::WalSegmentMeta> LogManager::WalSegmentMetadata()
    const {
  return wal_ != nullptr ? wal_->SegmentMetadata()
                         : std::map<uint64_t, recovery::WalSegmentMeta>{};
}

void LogManager::SeedWalSegmentMeta(
    const std::vector<recovery::WalSegmentMeta>& metas) {
  if (wal_ != nullptr) wal_->SeedSegmentMeta(metas);
}

void LogManager::ForgetWalSegment(uint64_t seq) {
  if (wal_ != nullptr) wal_->ForgetSegment(seq);
}

void LogManager::RegisterMetrics(obs::MetricsRegistry* registry) {
  registry->RegisterHistogram("log.flush_batch_ns", &flush_batch_ns_);
}

void LogManager::FlusherLoop() {
  for (;;) {
    Lsn batch_end;
    std::vector<recovery::WalFrame> batch;
    {
      std::unique_lock<std::mutex> guard(mu_);
      work_cv_.wait(guard,
                    [&] { return !pending_.empty() || stop_.load(); });
      if (stop_.load() && pending_.empty()) return;
      // Adaptive group commit (LogOptions::group_commit_wait_us): when
      // the batch on hand is small relative to the recent arrival rate —
      // commits trickling in one fsync each while more are clearly on
      // the way — a brief straggler wait coalesces them into one flush.
      // The wait is bounded by the knob, exits early once the expected
      // batch materializes, and is skipped when waiting cannot at least
      // double the batch, when commits do not wait on flushes (no one's
      // latency to trade), or during shutdown.
      const uint32_t wait_us = options_.group_commit_wait_us;
      if (wait_us > 0 && options_.flush_on_commit && !stop_.load()) {
        const double expected =
            arrival_rate_per_us_ * static_cast<double>(wait_us);
        if (expected >= 2.0 &&
            expected >= 2.0 * static_cast<double>(pending_.size())) {
          const size_t target = static_cast<size_t>(expected);
          work_cv_.wait_for(guard, std::chrono::microseconds(wait_us),
                            [&] {
                              return pending_.size() >= target ||
                                     stop_.load();
                            });
        }
      }
      // Take everything appended so far as one batch: commits arriving
      // while we write join the next batch (group commit).
      batch.swap(pending_);
      batch_end = next_lsn_.load(std::memory_order_relaxed) - 1;
      // Arrival-rate EWMA update (records/us between batch takes).
      const auto now = std::chrono::steady_clock::now();
      const uint64_t total =
          appended_records_.load(std::memory_order_relaxed);
      if (last_take_time_.time_since_epoch().count() != 0) {
        const double us =
            std::chrono::duration<double, std::micro>(now - last_take_time_)
                .count();
        if (us > 0) {
          const double rate =
              static_cast<double>(total - last_take_records_) / us;
          arrival_rate_per_us_ = arrival_rate_per_us_ == 0.0
                                     ? rate
                                     : 0.75 * arrival_rate_per_us_ +
                                           0.25 * rate;
        }
      }
      last_take_time_ = now;
      last_take_records_ = total;
    }
    Status io = Status::OK();
    const uint64_t t0 = obs::NowNanos();
    if (wal_ != nullptr) {
      io = wal_->AppendBatch(batch);
    } else if (options_.flush_latency_us > 0) {
      std::this_thread::sleep_for(
          std::chrono::microseconds(options_.flush_latency_us));
    }
    flush_batch_ns_.Record(obs::NowNanos() - t0);
    if (!io.ok()) io_errors_.fetch_add(1, std::memory_order_relaxed);
    std::vector<FlushSub> matured;
    Status sticky;
    IOErrorCallback fire_io_cb;
    {
      std::lock_guard<std::mutex> guard(mu_);
      // Advance even on failure so waiters wake; the sticky io_status_
      // tells them their commit did not reach the disk.
      if (batch_end > flushed_lsn_) flushed_lsn_ = batch_end;
      if (!io.ok() && io_status_.ok()) {
        io_status_ = io;
        // First failure: the log just became permanently non-durable.
        // Fire the owner's transition callback below, outside mu_.
        fire_io_cb = std::move(io_error_cb_);
        io_error_cb_ = nullptr;
      }
      flush_batches_.fetch_add(1, std::memory_order_relaxed);
      flushed_records_.fetch_add(batch.size(), std::memory_order_relaxed);
      // Pull out the flush subscriptions this batch covered; they fire
      // below, after blocking waiters are notified and mu_ is released.
      for (size_t i = 0; i < flush_subs_.size();) {
        if (flush_subs_[i].lsn <= flushed_lsn_) {
          matured.push_back(std::move(flush_subs_[i]));
          flush_subs_[i] = std::move(flush_subs_.back());
          flush_subs_.pop_back();
        } else {
          ++i;
        }
      }
      sticky = io_status_;
    }
    flushed_cv_.notify_all();
    // Enter read-only *before* the covered commits learn their fate, so a
    // subscriber observing kIOError can rely on the gate already being up.
    if (fire_io_cb) fire_io_cb(io);
    for (FlushSub& sub : matured) sub.cb(sticky);
  }
}

}  // namespace ssidb
