#include "src/txn/log_manager.h"

#include <chrono>

#include "src/common/encoding.h"

namespace ssidb {

std::string LogRecord::Encode() const {
  std::string out;
  PutBig64(&out, txn_id);
  PutBig64(&out, commit_ts);
  PutLengthPrefixed(&out, payload);
  return out;
}

bool LogRecord::Decode(Slice in, LogRecord* out) {
  size_t off = 0;
  uint64_t id = 0, cts = 0;
  if (!GetBig64(in, &off, &id)) return false;
  if (!GetBig64(in, &off, &cts)) return false;
  std::string payload;
  if (!GetLengthPrefixed(in, &off, &payload)) return false;
  out->txn_id = id;
  out->commit_ts = cts;
  out->payload = std::move(payload);
  return true;
}

LogManager::LogManager(const LogOptions& options) : options_(options) {
  if (options_.flush_on_commit) {
    flusher_ = std::thread([this] { FlusherLoop(); });
  }
}

LogManager::~LogManager() {
  {
    std::lock_guard<std::mutex> guard(mu_);
    stop_.store(true);
  }
  work_cv_.notify_all();
  if (flusher_.joinable()) flusher_.join();
}

Lsn LogManager::Append(LogRecord record) {
  std::string encoded = record.Encode();
  std::lock_guard<std::mutex> guard(mu_);
  const Lsn lsn = next_lsn_++;
  appended_records_.fetch_add(1, std::memory_order_relaxed);
  if (retain_) retained_.push_back(encoded);
  if (options_.flush_on_commit) {
    pending_.push_back(std::move(encoded));
    work_cv_.notify_one();
  } else {
    // "No flush" regime: the buffer is considered durable immediately.
    flushed_lsn_ = lsn;
  }
  return lsn;
}

void LogManager::WaitFlushed(Lsn lsn) {
  if (!options_.flush_on_commit) return;
  std::unique_lock<std::mutex> guard(mu_);
  flushed_cv_.wait(guard, [&] { return flushed_lsn_ >= lsn || stop_.load(); });
}

std::vector<std::string> LogManager::RetainedRecords() const {
  std::lock_guard<std::mutex> guard(mu_);
  return retained_;
}

void LogManager::FlusherLoop() {
  for (;;) {
    Lsn batch_end;
    {
      std::unique_lock<std::mutex> guard(mu_);
      work_cv_.wait(guard,
                    [&] { return !pending_.empty() || stop_.load(); });
      if (stop_.load() && pending_.empty()) return;
      // Take everything appended so far as one batch: commits arriving
      // while we "write" join the next batch (group commit).
      pending_.clear();
      batch_end = next_lsn_ - 1;
    }
    if (options_.flush_latency_us > 0) {
      std::this_thread::sleep_for(
          std::chrono::microseconds(options_.flush_latency_us));
    }
    {
      std::lock_guard<std::mutex> guard(mu_);
      if (batch_end > flushed_lsn_) flushed_lsn_ = batch_end;
      flush_batches_.fetch_add(1, std::memory_order_relaxed);
    }
    flushed_cv_.notify_all();
  }
}

}  // namespace ssidb
