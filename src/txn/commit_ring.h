// CommitRing: the lock-free commit pipeline — timestamp allocation, the
// commit-slot ring that orders version stamping against snapshot
// publication, and sharded parking for commit-acknowledgment waits.
//
// The problem it solves: a commit stamps its versions *after* allocating
// its timestamp, so a snapshot taken from the raw clock could observe a
// half-stamped commit. The previous design kept a `std::set` of in-flight
// commit timestamps under a mutex and recomputed the stable watermark on
// every retire, waking every waiter through one condition variable with an
// unconditional notify_all. At high MPL that mutex + thundering herd *is*
// the commit pipeline. This structure replaces it:
//
//   * The commit clock is dedicated: every allocated timestamp belongs to
//     exactly one writing commit (transaction ids live in a separate id
//     counter). Consequently the timestamp sequence has no gaps, and
//     "which commits are still unstamped" needs no set — it is exactly the
//     suffix of timestamps whose ring slot is not yet stamped.
//   * Slots: `slot[ts % N]` is an atomic that the owner of `ts` stores
//     `ts` into once its versions are fully stamped. The stable watermark
//     advances by scanning consecutive stamped slots from the current
//     watermark and CAS-maxing it forward — any retiring committer can
//     drive the scan; no lock, no notify-all.
//   * Slot reuse (the ring-full case): the owner of `ts` may overwrite
//     `slot[ts % N]` only once the watermark has covered the previous
//     occupant `ts - N` — i.e. `stable() >= ts - N`. Until then it parks
//     (bounded backpressure, counted in full_stalls). Progress is
//     guaranteed: the oldest in-flight commit is `stable()+1` and its
//     reuse condition `stable() >= stable()+1-N` holds for any N >= 1, so
//     it always publishes, which advances the watermark and unblocks the
//     rest in timestamp order.
//   * Waiting (commit acknowledgment, `stable() >= ts`) parks on one of
//     kWaiterShards {mutex, condvar} pairs keyed by `ts`; a successful
//     watermark advance from `s` to `e` wakes only the shards owning
//     timestamps in (s, e] — waiters for uncovered timestamps stay asleep.
//
// Memory-ordering contract:
//   * The slot store is a release; the scan loads acquire; the watermark
//     CAS is seq_cst. A snapshot reader that observes `stable() >= ts`
//     therefore observes every version stamp (and every storage-shard
//     max-commit-ts hint) the owner of `ts` performed before Publish.
//   * stable() loads are seq_cst: the checkpoint prune-floor protocol
//     (TxnManager::BeginCheckpointSweep) depends on a single total order
//     over watermark advances, floor publication and min-active
//     publication — see the proof sketch there. seq_cst loads cost the
//     same as acquire loads on x86 and the extra fence elsewhere is paid
//     on begin/commit paths, never per read.
//
// Missed-wakeup freedom (waiter vs driver): the waiter increments its
// shard's count (seq_cst) and only then checks the watermark; the driver
// CASes the watermark (seq_cst) and only then reads the count (seq_cst).
// In the seq_cst total order, a waiter that decided to sleep ordered its
// increment before the driver's CAS, so the driver's count read sees it
// and the driver notifies — taking the shard mutex first, so the notify
// cannot slip between the waiter's final predicate check and its sleep.
//
// Completions (asynchronous acknowledgment): the waiter registry doubles
// as a completion registry — OnCovered(ts, fn) parks {ts, fn} on the
// shard keyed by ts and the watermark-advance path drains every entry the
// advance covered, running callbacks outside all ring mutexes. Exactly
// the blocking-waiter protocol, with registration in place of parking:
// the registrant inserts under the shard mutex, bumps the shard's
// completion count (seq_cst), and only then re-checks the watermark; the
// driver CASes (seq_cst) and only then reads the count. If the driver's
// drain ran before the insert was visible, the registrant's re-check is
// ordered after the CAS in the seq_cst total order, sees coverage, and
// drains its own shard. Removal happens under the shard mutex, so every
// completion runs exactly once no matter how many drains race. Liveness
// matches the blocking path's caveat: coverage itself may require a
// re-drive if every committer goes idle with a stale scan (the abstract
// machine only promises finite-time visibility) — blocking waiters
// re-drive on a 1ms tick; pure-async hosts get the same backstop from
// Drive() being public (TxnManager::DriveCommitPipeline) plus a re-drive
// after every acknowledgment.

#ifndef SSIDB_TXN_COMMIT_RING_H_
#define SSIDB_TXN_COMMIT_RING_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "src/common/epoch.h"  // RoundUpPow2, TopologyShards
#include "src/obs/trace_ring.h"
#include "src/storage/version.h"

namespace ssidb {

class CommitRing {
 public:
  /// `slots` is rounded up to a power of two (minimum 2). Larger rings
  /// tolerate more concurrently-unstamped commits before backpressure.
  explicit CommitRing(uint64_t slots);

  CommitRing(const CommitRing&) = delete;
  CommitRing& operator=(const CommitRing&) = delete;

  /// Allocate the next commit timestamp: one fetch-add, callable lock-free
  /// (the conflict-free fast path and SI/S2PL writers allocate directly;
  /// certifying SSI committers allocate inside the CommitCombiner's pass,
  /// which orders allocation against the dangerous-structure checks).
  /// Every allocated timestamp MUST be published (allocation happens only
  /// after the commit decision is final).
  Timestamp Allocate();

  /// Declare `ts`'s versions fully stamped. May park briefly when the
  /// ring is full (see header comment); drives the watermark forward.
  void Publish(Timestamp ts);

  /// Block until the watermark covers `ts`. Fast path is one load; the
  /// slow path self-drives before parking (see WaitUntilCovered) and
  /// counts the park in waits_parked().
  void WaitCovered(Timestamp ts);

  /// Coverage completion: runs exactly once, after `stable() >= ts`. Fires
  /// on whichever thread drives the covering watermark advance (usually a
  /// later committer's Publish), or inline here when already covered.
  /// Callbacks run outside every ring mutex but on a shared commit-path
  /// thread: keep them short, and never block them on ring coverage.
  using Completion = std::function<void()>;

  /// Register `fn` against `ts` (see the completion protocol in the file
  /// header for the exactly-once + missed-drain argument).
  void OnCovered(Timestamp ts, Completion fn);

  /// Advance the watermark over consecutive stamped slots, wake newly
  /// covered waiter shards and drain newly covered completions. Lock-free
  /// scan; any thread may call. Public as the visibility backstop for
  /// hosts with no blocking waiter left to re-drive (an async client
  /// draining its last in-flight acknowledgments calls this on a timeout
  /// tick, exactly as WaitUntilCovered does internally).
  void Drive();

  /// The snapshot watermark: every commit with commit_ts <= stable() has
  /// fully stamped its versions.
  Timestamp stable() const {
    return stable_.load(std::memory_order_seq_cst);
  }

  /// Last allocated commit timestamp.
  Timestamp clock() const { return clock_.load(std::memory_order_relaxed); }

  /// Jump clock and watermark to at least `ts`. Quiescent use only
  /// (recovery at DB::Open, before any commit is in flight).
  void AdvanceTo(Timestamp ts);

  uint64_t slots() const { return mask_ + 1; }

  /// Number of waiter shards (power of two). Sized from the runtime core
  /// topology (TopologyShards, floored at the previous fixed 16): on big
  /// machines more commit-ack waiters park and wake without sharing a
  /// mutex/condvar line; small machines keep the old footprint.
  uint64_t waiter_shards() const { return waiter_mask_ + 1; }

  // --- Commit-pipeline counters (relaxed; DBStats contract). ---
  /// Acknowledgment waits that actually parked on a condvar.
  uint64_t waits_parked() const {
    return waits_parked_.load(std::memory_order_relaxed);
  }
  /// Waiter-shard notifications issued by watermark advances.
  uint64_t wakeups_issued() const {
    return wakeups_issued_.load(std::memory_order_relaxed);
  }
  /// Publishes that had to park because the ring was full.
  uint64_t full_stalls() const {
    return full_stalls_.load(std::memory_order_relaxed);
  }
  /// High-water mark of (allocated clock - watermark) observed at
  /// allocation: the deepest the in-flight commit window ever got.
  uint64_t max_depth() const {
    return max_depth_.load(std::memory_order_relaxed);
  }

  /// Hook the trace ring: ring-full stalls emit kRingStall events
  /// (payload = reuse floor, arg32 = ring size). Set once at DB::Open,
  /// before commits flow.
  void set_trace(obs::TraceRing* trace) { trace_ = trace; }

 private:
  struct WaiterShard;

  /// Wake waiter shards owning timestamps in (from, to] and move that
  /// span's covered completions into `ready` (the caller runs them once
  /// every shard is notified, outside all ring mutexes).
  void WakeCovered(Timestamp from, Timestamp to,
                   std::vector<Completion>* ready);
  /// Move completions of `w` covered at `cover` into `ready`. Caller
  /// holds w.mu.
  void TakeCoveredLocked(WaiterShard* w, Timestamp cover,
                         std::vector<Completion>* ready);
  /// Drain one shard against the current watermark and run what matured
  /// (the registrant's self-drain in OnCovered's re-check path).
  void DrainShard(WaiterShard* w);
  /// WaitCovered body. `park_counter` (may be null) is bumped once if the
  /// wait actually parks — commit-ack waits and ring-full backpressure
  /// keep separate books. Self-drives before parking and re-drives on a
  /// 1ms backstop tick while parked: release/acquire does not force a
  /// concurrent driver's scan to observe the newest slot store, so the
  /// newest committer must be able to finish the scan itself rather than
  /// depend on a later Publish that may never come.
  void WaitUntilCovered(Timestamp ts, std::atomic<uint64_t>* park_counter);

  /// One registered completion, homed on the shard keyed by its ts.
  struct PendingCompletion {
    Timestamp ts = 0;
    Completion fn;
  };

  struct alignas(64) WaiterShard {
    std::mutex mu;
    std::condition_variable cv;
    /// Parked-or-parking waiters; lets drivers skip the mutex when the
    /// shard is empty (the common case).
    std::atomic<uint32_t> count{0};
    /// Registered-not-yet-covered completions; mirrors completions.size()
    /// so drivers skip the mutex when none is parked here. seq_cst for the
    /// same missed-drain pairing as `count` (file header).
    std::atomic<uint32_t> comp_count{0};
    /// Guarded by mu. Unordered (a drain compares every entry's ts).
    std::vector<PendingCompletion> completions;
  };

  const uint64_t mask_;
  /// slot[ts & mask_] == ts  <=>  commit `ts` is fully stamped.
  const std::unique_ptr<std::atomic<Timestamp>[]> slots_;

  /// Commit clock: the last allocated commit timestamp.
  std::atomic<Timestamp> clock_{1};
  /// Watermark; trails the oldest unstamped commit.
  std::atomic<Timestamp> stable_{1};

  /// waiter_mask_ + 1 shards; waiters for ts park on ts & waiter_mask_.
  const uint64_t waiter_mask_;
  const std::unique_ptr<WaiterShard[]> waiters_;

  std::atomic<uint64_t> waits_parked_{0};
  std::atomic<uint64_t> wakeups_issued_{0};
  std::atomic<uint64_t> full_stalls_{0};
  std::atomic<uint64_t> max_depth_{0};
  obs::TraceRing* trace_ = nullptr;
};

}  // namespace ssidb

#endif  // SSIDB_TXN_COMMIT_RING_H_
