#include "src/txn/commit_combiner.h"

#include <cassert>
#include <thread>

#include "src/common/epoch.h"

namespace ssidb {

CommitCombiner::CommitCombiner(CommitRing* ring, uint32_t slots,
                               bool batching)
    : ring_(ring),
      mask_(RoundUpPow2(slots != 0 ? slots : TopologyShards(/*floor=*/4),
                        /*floor=*/4) -
            1),
      batching_(batching),
      slots_(new Slot[mask_ + 1]) {}

Status CommitCombiner::Certify(TxnState* txn, const CheckFn& check,
                               bool has_writes, Timestamp* commit_ts) {
  if (!batching_) {
    // Reference mode: the PR 5 critical section, one request per
    // acquisition. Kept for differential testing (the combiner must abort
    // exactly the set this path aborts) and as an escape hatch.
    std::lock_guard<std::mutex> guard(combine_mu_);
    if (check) {
      const Status verdict = check(txn);
      if (!verdict.ok()) return verdict;
    }
    const Timestamp ts = has_writes ? ring_->Allocate() : ring_->stable();
    txn->commit_ts.store(ts, std::memory_order_release);
    *commit_ts = ts;
    batches_.fetch_add(1, std::memory_order_relaxed);
    combined_.fetch_add(1, std::memory_order_relaxed);
    uint64_t cur = max_batch_.load(std::memory_order_relaxed);
    while (cur < 1 && !max_batch_.compare_exchange_weak(
                          cur, 1, std::memory_order_relaxed)) {
    }
    return Status::OK();
  }

  const size_t idx = Post(txn, &check, has_writes);
  Slot& slot = slots_[idx];
  // Spin on our own slot; opportunistically become the combiner. We never
  // block on combine_mu_: if it is held, the holder is certifying our
  // request (or will be the moment it reaches our slot), so waiting on
  // the verdict IS waiting on the lock — without the handoff.
  uint32_t spins = 0;
  for (;;) {
    if (slot.state.load(std::memory_order_acquire) == kDone) break;
    if (combine_mu_.try_lock()) {
      CombineLocked();
      combine_mu_.unlock();
      // Our request was pending before the pass started, so it is done
      // now — either by us or by the combiner that beat us to the lock.
      break;
    }
    // Single-core friendliness: the combiner may need our timeslice.
    if ((++spins & 63) == 0) std::this_thread::yield();
  }
  return Harvest(idx, commit_ts);
}

size_t CommitCombiner::Post(TxnState* txn, const CheckFn* check,
                            bool has_writes) {
  const uint64_t start = ThreadTopologySlot() & mask_;
  uint32_t sweeps = 0;
  for (uint64_t i = start;; i = (i + 1) & mask_) {
    Slot& slot = slots_[i];
    uint32_t expected = kFree;
    if (slot.state.load(std::memory_order_relaxed) == kFree &&
        slot.state.compare_exchange_strong(expected, kClaimed,
                                           std::memory_order_acq_rel)) {
      slot.txn = txn;
      slot.check = check;
      slot.has_writes = has_writes;
      slot.verdict = Status::OK();
      slot.commit_ts = 0;
      slot.state.store(kPending, std::memory_order_release);
      return i;
    }
    if (i == ((start + mask_) & mask_)) {
      // A full sweep found no free slot: more certifiers than slots.
      // Correct, just slower — yield until a harvest frees one.
      if ((++sweeps & 3) == 0) std::this_thread::yield();
    }
  }
}

size_t CommitCombiner::Combine() {
  std::lock_guard<std::mutex> guard(combine_mu_);
  return CombineLocked();
}

size_t CommitCombiner::CombineLocked() {
  size_t n = 0;
  for (uint64_t i = 0; i <= mask_; ++i) {
    Slot& slot = slots_[i];
    if (slot.state.load(std::memory_order_acquire) != kPending) continue;
    Status verdict;
    if (slot.check != nullptr && *slot.check) {
      // Fig 3.2 / Fig 3.10: the dangerous-structure test. Runs before
      // this request's timestamp exists and after every earlier-in-pass
      // request's verdict is final — the serial order (header).
      verdict = (*slot.check)(slot.txn);
    }
    if (verdict.ok()) {
      const Timestamp ts =
          slot.has_writes ? ring_->Allocate() : ring_->stable();
      slot.commit_ts = ts;
      slot.txn->commit_ts.store(ts, std::memory_order_release);
    }
    slot.verdict = std::move(verdict);
    slot.state.store(kDone, std::memory_order_release);
    ++n;
  }
  if (n != 0) {
    batches_.fetch_add(1, std::memory_order_relaxed);
    combined_.fetch_add(n, std::memory_order_relaxed);
    uint64_t cur = max_batch_.load(std::memory_order_relaxed);
    while (cur < n && !max_batch_.compare_exchange_weak(
                          cur, n, std::memory_order_relaxed)) {
    }
  }
  return n;
}

Status CommitCombiner::Harvest(size_t slot_index, Timestamp* commit_ts) {
  Slot& slot = slots_[slot_index];
  // The acquire pairs with the combiner's kDone release store and carries
  // the verdict/timestamp (kept outside the assert: NDEBUG must not drop
  // the fence).
  const uint32_t observed = slot.state.load(std::memory_order_acquire);
  assert(observed == kDone);
  (void)observed;
  Status verdict = std::move(slot.verdict);
  if (commit_ts != nullptr) *commit_ts = slot.commit_ts;
  slot.txn = nullptr;
  slot.check = nullptr;
  slot.state.store(kFree, std::memory_order_release);
  return verdict;
}

}  // namespace ssidb
