// Write-ahead log with group commit: simulated flush latency or a real
// file-backed segmented WAL.
//
// The paper's Berkeley DB evaluation contrasts two regimes: commits that
// return without waiting for the disk (~100us transactions, Fig 6.1) and
// commits that flush the log (~10ms, Fig 6.2). We reproduce the regimes
// with a background flusher thread that batches commit records — group
// commit exactly as both Berkeley DB and InnoDB implement it (§4.4).
//
// What the flusher does with a batch depends on LogOptions::wal_dir:
//   * empty: sleep for the configured latency and discard the records (the
//     simulated regime — format exercised, nothing persists);
//   * set: append the CRC-framed records to segment files in wal_dir and
//     fsync, so acknowledged (flushed) commits survive a process crash and
//     src/recovery replays them at DB::Open.
//
// Records carry per-key redo (table, key, value/tombstone) rather than an
// opaque blob, so replay can rebuild version chains with the original
// commit timestamps.

#ifndef SSIDB_TXN_LOG_MANAGER_H_
#define SSIDB_TXN_LOG_MANAGER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/common/options.h"
#include "src/common/status.h"
#include "src/obs/metrics.h"
#include "src/storage/version.h"

namespace ssidb {

namespace recovery {
class WalWriter;
struct WalFrame;
struct WalSegmentMeta;
}  // namespace recovery

using Lsn = uint64_t;

/// One key's redo in a commit record: enough to reinstall the committed
/// version at replay (table id, key, value or tombstone).
struct RedoEntry {
  uint32_t table = 0;  // TableId; plain uint32_t to avoid a storage include.
  std::string key;
  std::string value;
  bool tombstone = false;
};

enum class LogRecordType : uint8_t {
  /// A transaction commit: redo holds the write set.
  kCommit = 0,
  /// A table creation: redo holds one entry whose `table` is the assigned
  /// id and whose `key` is the table name. Replayed idempotently so the
  /// id→table mapping of commit records stays valid across restarts.
  kTableCreate = 1,
};

/// One log record. On-disk frame (also what Encode returns):
///
///   u32 crc      CRC32C of `body`
///   u32 len      length of `body` in bytes
///   body:
///     u8  type
///     u64 txn_id
///     u64 commit_ts
///     u32 redo_count
///     redo_count x { u32 table, len-prefixed key, u8 tombstone,
///                    len-prefixed value }
///
/// Decode distinguishes bytes *missing* (kTruncated — the shape a crash
/// leaves at the WAL tail) from bytes *damaged* (kCorruption — CRC or
/// structural mismatch); the recovery tail-scan relies on the distinction.
struct LogRecord {
  LogRecordType type = LogRecordType::kCommit;
  TxnId txn_id = 0;
  Timestamp commit_ts = 0;
  std::vector<RedoEntry> redo;

  /// Serialize the full frame (header + body).
  std::string Encode() const;

  /// Parse the frame starting at *offset, advancing *offset past it on
  /// success. kTruncated if `in` ends mid-frame (*offset unchanged);
  /// kCorruption on CRC mismatch or malformed body.
  static Status DecodeFrom(Slice in, size_t* offset, LogRecord* out);

  /// Whole-slice convenience: the frame must consume `in` exactly.
  static Status Decode(Slice in, LogRecord* out);
};

class LogManager {
 public:
  /// `env` (nullptr = real filesystem) carries all WAL file I/O in durable
  /// mode; ignored otherwise.
  explicit LogManager(const LogOptions& options, io::Env* env = nullptr);
  ~LogManager();

  /// Stop and join the group-commit flusher, then fire every remaining
  /// flush subscription with the sticky I/O status. Idempotent; the
  /// destructor calls it. TxnManager's destructor quiesces the log first
  /// so no flusher-thread callback (flush subscription -> FinalizeAcked ->
  /// ring drive) can run concurrently with its teardown — the flusher
  /// outlives the TxnManager in every owner (DB members, test fixtures)
  /// because the log must be constructed first.
  void Quiesce();

  LogManager(const LogManager&) = delete;
  LogManager& operator=(const LogManager&) = delete;

  /// Append a record; returns its LSN. Never blocks on the flusher. In
  /// the in-memory "no flush" regime (not durable, flush_on_commit unset,
  /// no retain) this is entirely lock-free: two fetch-adds, no encode, no
  /// mutex — the commit pipeline pays nothing for the log it discards.
  Lsn Append(LogRecord record);

  /// Block until a flush covering `lsn` completed and report whether it
  /// actually reached the disk. No-op (OK) unless flush_on_commit is set.
  /// kIOError is sticky: once a WAL write or fsync fails, every subsequent
  /// wait reports it — the in-memory commit stands, but it is not durable.
  Status WaitFlushed(Lsn lsn);

  /// Flush-subscription callback: receives the sticky I/O status as of the
  /// covering flush (WaitFlushed's return value, without the block).
  using FlushCallback = std::function<void(Status)>;

  /// Asynchronous WaitFlushed: run `cb(status)` exactly once, as soon as a
  /// flush covering `lsn` has completed. Mirrors WaitFlushed's contract:
  /// fires immediately (inline, on the calling thread) when commits do not
  /// wait on flushes (!flush_on_commit), when the covering flush already
  /// happened, or during shutdown. Otherwise the group-commit flusher
  /// fires it right after the covering batch's bookkeeping, with mu_
  /// released — the callback may take engine locks and block briefly, but
  /// every subscriber behind it in the same batch waits for it, so keep it
  /// short.
  void OnFlushed(Lsn lsn, FlushCallback cb);

  /// Callback fired exactly once, at the *first* WAL write/fsync failure
  /// (the io_status_ OK -> failed transition), from the flusher thread
  /// with mu_ released. DB uses it to enter read-only mode. If the log is
  /// already poisoned when the callback is registered, it fires inline on
  /// the registering thread — the owner never misses the transition.
  using IOErrorCallback = std::function<void(const Status&)>;
  void SetIOErrorCallback(IOErrorCallback cb);

  /// Sticky WAL I/O status: OK until the first write/fsync failure, that
  /// failure forever after (the WAL never heals — see WalWriter's policy).
  Status io_status() const {
    std::lock_guard<std::mutex> guard(mu_);
    return io_status_;
  }

  /// Group-commit batches that failed to reach the disk (io.errors.wal).
  uint64_t io_errors() const {
    return io_errors_.load(std::memory_order_relaxed);
  }

  /// Retain encoded records in memory for test inspection. Set before any
  /// concurrent appends (flips Append off its lock-free fast path).
  void set_retain(bool retain) {
    retain_.store(retain, std::memory_order_release);
  }
  std::vector<std::string> RetainedRecords() const;

  uint64_t appended_records() const {
    return appended_records_.load(std::memory_order_relaxed);
  }
  uint64_t flush_batches() const {
    return flush_batches_.load(std::memory_order_relaxed);
  }
  /// Mean records per group-commit flush batch (0 before the first
  /// flush). The adaptive straggler wait (LogOptions::group_commit_wait_us)
  /// exists to push this up at high MPL; the durable-regime bench JSON
  /// records it per point.
  double mean_flush_batch() const {
    const uint64_t batches = flush_batches();
    return batches == 0
               ? 0.0
               : static_cast<double>(flushed_records_.load(
                     std::memory_order_relaxed)) /
                     static_cast<double>(batches);
  }
  /// Bytes written to WAL segment files (0 in simulated mode).
  uint64_t wal_bytes_written() const;

  /// Per-segment metadata registry (empty map in simulated mode): the
  /// input to metadata-driven WAL GC. See recovery::WalSegmentMeta.
  std::map<uint64_t, recovery::WalSegmentMeta> WalSegmentMetadata() const;
  /// Install metadata recovery reconstructed for pre-crash segments.
  void SeedWalSegmentMeta(const std::vector<recovery::WalSegmentMeta>& metas);
  /// Drop a GC'd segment's registry entry.
  void ForgetWalSegment(uint64_t seq);

  bool durable() const { return !options_.wal_dir.empty(); }

  /// Register the flush-batch latency histogram (the write+fsync — or
  /// simulated sleep — of one group-commit batch). Always-on timing: the
  /// flusher runs off the commit path and each sample covers a whole
  /// batch, so the clock reads are free relative to the I/O they measure.
  void RegisterMetrics(obs::MetricsRegistry* registry);

 private:
  void FlusherLoop();

  const LogOptions options_;
  io::Env* const env_;
  /// Non-null in durable mode; written to only by the flusher thread.
  std::unique_ptr<recovery::WalWriter> wal_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable flushed_cv_;
  /// Atomic so the no-flush fast path can allocate LSNs without mu_; the
  /// flusher still reads it under mu_ when computing batch coverage.
  std::atomic<Lsn> next_lsn_{1};
  Lsn flushed_lsn_ = 0;
  std::vector<recovery::WalFrame> pending_;
  std::atomic<bool> retain_{false};
  std::vector<std::string> retained_;
  /// First WAL write/fsync failure, sticky (guarded by mu_).
  Status io_status_;
  /// Fired on io_status_'s OK -> failed transition (guarded by mu_; called
  /// with mu_ released).
  IOErrorCallback io_error_cb_;
  /// Failed flush batches.
  std::atomic<uint64_t> io_errors_{0};
  /// Flush subscriptions not yet covered by flushed_lsn_ (guarded by mu_;
  /// unordered — the flusher compares every entry against the batch end).
  struct FlushSub {
    Lsn lsn = 0;
    FlushCallback cb;
  };
  std::vector<FlushSub> flush_subs_;

  // Adaptive group-commit state (flusher thread only): EWMA of the
  // record arrival rate (records per microsecond, measured between batch
  // takes). The straggler wait fires when the batch on hand is small
  // relative to what that rate says a bounded wait would add.
  double arrival_rate_per_us_ = 0.0;
  uint64_t last_take_records_ = 0;
  std::chrono::steady_clock::time_point last_take_time_{};

  std::atomic<uint64_t> appended_records_{0};
  std::atomic<uint64_t> flush_batches_{0};
  /// Records covered by completed flush batches (mean_flush_batch).
  std::atomic<uint64_t> flushed_records_{0};
  /// Wall time of one group-commit flush (flusher thread only records).
  obs::Histogram flush_batch_ns_;

  std::atomic<bool> stop_{false};
  std::thread flusher_;
};

}  // namespace ssidb

#endif  // SSIDB_TXN_LOG_MANAGER_H_
