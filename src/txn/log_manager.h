// Write-ahead log with group commit and simulated flush latency.
//
// The paper's Berkeley DB evaluation contrasts two regimes: commits that
// return without waiting for the disk (~100us transactions, Fig 6.1) and
// commits that flush the log (~10ms, Fig 6.2). We reproduce the regimes
// with a background flusher thread that batches commit records and sleeps
// for the configured latency per batch — group commit exactly as both
// Berkeley DB and InnoDB implement it (§4.4).
//
// Records are really serialized (so the format is exercised and testable)
// and discarded after the simulated flush; in-memory retention can be
// enabled for inspection in tests.

#ifndef SSIDB_TXN_LOG_MANAGER_H_
#define SSIDB_TXN_LOG_MANAGER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/common/options.h"
#include "src/storage/version.h"

namespace ssidb {

using Lsn = uint64_t;

/// One commit-time log record (all of a transaction's redo in one blob).
struct LogRecord {
  TxnId txn_id = 0;
  Timestamp commit_ts = 0;
  std::string payload;

  /// Serialize/parse the on-"disk" format (tests round-trip this).
  std::string Encode() const;
  static bool Decode(Slice in, LogRecord* out);
};

class LogManager {
 public:
  explicit LogManager(const LogOptions& options);
  ~LogManager();

  LogManager(const LogManager&) = delete;
  LogManager& operator=(const LogManager&) = delete;

  /// Append a commit record; returns its LSN. Never blocks on the flusher.
  Lsn Append(LogRecord record);

  /// Block until a flush covering `lsn` completed. No-op unless
  /// flush_on_commit is set.
  void WaitFlushed(Lsn lsn);

  /// Retain encoded records in memory for test inspection.
  void set_retain(bool retain) { retain_ = retain; }
  std::vector<std::string> RetainedRecords() const;

  uint64_t appended_records() const {
    return appended_records_.load(std::memory_order_relaxed);
  }
  uint64_t flush_batches() const {
    return flush_batches_.load(std::memory_order_relaxed);
  }

 private:
  void FlusherLoop();

  const LogOptions options_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable flushed_cv_;
  Lsn next_lsn_ = 1;
  Lsn flushed_lsn_ = 0;
  std::vector<std::string> pending_;
  bool retain_ = false;
  std::vector<std::string> retained_;

  std::atomic<uint64_t> appended_records_{0};
  std::atomic<uint64_t> flush_batches_{0};

  std::atomic<bool> stop_{false};
  std::thread flusher_;
};

}  // namespace ssidb

#endif  // SSIDB_TXN_LOG_MANAGER_H_
