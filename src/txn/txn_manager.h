// TxnManager: transaction lifecycle, timestamps, suspension and cleanup.
//
// The seed faithfully mirrored the paper's single "system mutex" (§3.2's
// atomic blocks; §4.4's InnoDB kernel mutex): every begin, snapshot and
// commit-timestamp assignment, and conflict-flag mutation serialized
// through one lock — the bottleneck the paper itself observes bounds
// InnoDB's scalability (§6.4). That mutex is now split into three
// independent pieces, so no Get/Put/Scan ever takes a global lock:
//
//   * Timestamps: a lock-free atomic counter (`clock_`). Transaction ids
//     and commit timestamps are single fetch-adds.
//   * Snapshot consistency: commits publish their versions *before*
//     becoming visible to new snapshots via a stable-timestamp watermark
//     (`stable_ts_`). A committing transaction enters a small in-flight
//     window, stamps its versions, then retires; `stable_ts_` always
//     trails the oldest unstamped commit, and snapshots read `stable_ts_`,
//     so a snapshot can never observe a half-stamped commit. The window is
//     guarded by the narrow `window_mu_` (commit path only).
//   * Registry: the transaction table, active set and suspended list keep
//     a narrow `registry_mu_`, touched once per begin / first statement /
//     commit / abort — never per read or write.
//   * SSI conflict state: per-TxnState latches (TxnState::ssi_mu),
//     acquired pairwise in txn-id order by the ConflictTracker; the
//     commit-time dangerous-structure check runs under the committing
//     transaction's own latch (see transaction.h).
//
// Committed transactions are not forgotten immediately: their TxnState
// remains registered (the paper's *suspended* state, §3.3) until no active
// transaction overlaps them, at which point their retained SIREAD locks are
// released and the state is dropped — the eager cleanup of the InnoDB
// prototype (§4.6.1).

#ifndef SSIDB_TXN_TXN_MANAGER_H_
#define SSIDB_TXN_TXN_MANAGER_H_

#include <condition_variable>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "src/common/options.h"
#include "src/common/status.h"
#include "src/lock/lock_manager.h"
#include "src/txn/log_manager.h"
#include "src/txn/transaction.h"

namespace ssidb {

class TxnManager {
 public:
  TxnManager(const DBOptions& options, LockManager* lock_manager,
             LogManager* log_manager);

  /// Start a transaction. S2PL transactions get their begin timestamp
  /// immediately; SI/SSI transactions defer it when late_snapshot is set
  /// (§4.5) until EnsureSnapshot. The transaction id is a lock-free
  /// fetch-add; only registration takes the registry mutex.
  std::shared_ptr<TxnState> Begin(IsolationLevel isolation);

  /// Assign the read snapshot if not yet assigned. Called by the operation
  /// layer *after* the first statement's locks are granted, implementing
  /// the §4.5 optimization that lets single-statement updates never abort
  /// under first-committer-wins. The snapshot is the stable watermark (all
  /// commits at or below it are fully stamped).
  void EnsureSnapshot(TxnState* txn);

  /// Hook run under the committing transaction's ssi_mu latch *and*
  /// window_mu_, just before the commit timestamp is assigned — one atomic
  /// unit per committing transaction, so the dangerous-structure test and
  /// the commit-order it reasons about can never diverge (Fig 3.2 lines
  /// 3-5 / Fig 3.10 lines 3-6 live here, provided by the SSI tracker).
  using CommitCheck = std::function<Status(TxnState*)>;

  /// Commit: check hook, timestamp + version stamping, log append (+ group
  /// commit wait), lock release or suspension, cleanup. `redo` is the
  /// transaction's per-key redo, captured by the executor; it lands in the
  /// commit's WAL record so recovery can reinstall the write set.
  /// Returns kIOError if the commit succeeded in memory but its log flush
  /// failed (durable mode): the transaction is visible but not durable.
  Status Commit(const std::shared_ptr<TxnState>& txn,
                const CommitCheck& check, std::vector<RedoEntry> redo);

  /// Abort: roll back installed versions, release all locks (including
  /// SIREAD — aborted transactions never participate in conflicts), drop
  /// registration.
  void Abort(const std::shared_ptr<TxnState>& txn);

  /// Resolve a transaction id to its state, if still registered (active or
  /// suspended). Thread-safe (registry mutex inside); the returned
  /// shared_ptr keeps the state alive past deregistration.
  std::shared_ptr<TxnState> Find(TxnId id) const;

  /// Oldest snapshot among active transactions (stable watermark if none);
  /// versions older than this are unreachable (prune threshold).
  Timestamp min_active_read_ts() const {
    return min_active_read_ts_.load(std::memory_order_relaxed);
  }

  /// Enter a checkpoint sweep: publishes the sweep watermark as a floor on
  /// version pruning and returns it. Floor publication and the watermark
  /// read share one window_mu_ critical section, so any stable-watermark
  /// value above the returned one is stored strictly after the floor —
  /// which is what makes prune_horizon() airtight (see there). Sweeps are
  /// serialized by the caller (DB::checkpoint_write_mu_).
  Timestamp BeginCheckpointSweep();
  /// Leave the sweep: lifts the floor.
  void EndCheckpointSweep();

  /// Horizon for version pruning: min_active_read_ts capped by an
  /// in-progress checkpoint sweep's watermark. Without the cap, a pruner
  /// whose horizon ran past the sweep watermark W could delete a key's
  /// newest version <= W (because a newer one exists) before the sweep
  /// reads that chain — silently dropping a committed key from the image
  /// whose cut claims to cover it. Why the cap is race-free: a checkpoint
  /// that begins *after* this call has W >= the returned horizon (the
  /// stable watermark is monotonic and min_active_read_ts never exceeds
  /// it), so pruning below the horizon cannot touch what that sweep reads;
  /// and if an in-progress sweep's W is *below* our min_active value, that
  /// min was derived from a stable value stored after the floor (same
  /// window_mu_), so the acquire chain min -> stable -> floor guarantees
  /// the floor load below observes it.
  Timestamp prune_horizon() const {
    const Timestamp min = min_active_read_ts_.load(std::memory_order_acquire);
    const Timestamp floor =
        checkpoint_floor_.load(std::memory_order_acquire);
    return min < floor ? min : floor;
  }

  Timestamp clock_now() const {
    return clock_.load(std::memory_order_relaxed);
  }

  /// Recovery hook (DB::Open, before any transaction begins): advance the
  /// clock and the stable watermark to at least `ts`, so every new
  /// transaction gets an id above — and a snapshot that covers — all
  /// recovered commit timestamps.
  void AdvanceClockTo(Timestamp ts);

  /// The snapshot watermark: every commit with commit_ts <= stable_ts() has
  /// fully stamped its versions. New snapshots read at this timestamp.
  Timestamp stable_ts() const {
    return stable_ts_.load(std::memory_order_acquire);
  }

  /// Page-granularity first-committer-wins (§4.2): the commit timestamp of
  /// the last committed write to a page lock unit. Returns 0 if never
  /// written. Thread-safe.
  Timestamp PageLastWriteTs(const LockKey& page_key) const;

  /// As above, but also reports the committing transaction — the "creator"
  /// of the newest page version, needed to mark the rw-conflict when a
  /// page-granularity read ignores it (§4.2 + Fig 3.4 lines 8-9). Returns
  /// false if the page was never written.
  bool PageLastWrite(const LockKey& page_key, Timestamp* ts, TxnId* txn) const;

  size_t active_count() const;
  size_t suspended_count() const;

  /// Live entries in the page first-committer-wins map (kPage mode; 0
  /// otherwise). Bounded: CleanupSuspended periodically erases entries at
  /// or below min_active_read_ts.
  size_t page_write_entries() const;
  /// Total page-FCW entries reclaimed by those sweeps.
  uint64_t page_entries_pruned() const;

  const DBOptions& options() const { return options_; }
  LockManager* lock_manager() { return lock_manager_; }

 private:
  /// Recompute the prune threshold. Caller holds registry_mu_. The base is
  /// the stable watermark (not the raw clock): a still-unassigned snapshot
  /// will later read stable_ts_, which is monotonic, so the stored minimum
  /// can never overtake a future snapshot.
  void RecomputeMinLocked();

  /// Minimum snapshot constraint over the active set, based at the stable
  /// watermark. Caller holds registry_mu_.
  Timestamp MinActiveSnapshotLocked() const;

  /// Recompute the watermark from the in-flight window; true if it moved.
  /// Caller holds window_mu_ (and notifies window_cv_ on true).
  bool AdvanceStableLocked();
  /// Retire a fully stamped commit and advance the watermark. The
  /// timestamp fetch-add and the window insert happen together under
  /// window_mu_ (in Commit) so the watermark can never advance past an
  /// unstamped commit.
  void RetireCommit(Timestamp commit_ts);
  /// Pull the watermark up to the clock when nothing is in flight; called
  /// by cleanup so window-bypassing (read-only) commits still become
  /// droppable from the suspended list.
  void TryAdvanceStable();
  /// Block until the watermark covers `commit_ts`. Commit acknowledgment
  /// (and lock release) waits for this so that every transaction that
  /// begins after a commit returned — or that locks a key the committer
  /// wrote — gets a snapshot that includes it. Waits are bounded by the
  /// pure-memory stamping of earlier in-flight commits (no I/O inside the
  /// window; the log flush happens after).
  void WaitStable(Timestamp commit_ts);

  /// Abort body shared by Abort() and failed commits. The caller must NOT
  /// hold the transaction's ssi_mu latch.
  void AbortInternal(const std::shared_ptr<TxnState>& txn);

  /// Release suspended transactions no longer overlapping anything active.
  void CleanupSuspended();

  const DBOptions options_;
  LockManager* const lock_manager_;
  LogManager* const log_manager_;

  /// Global logical clock: txn ids and commit timestamps. Lock-free.
  std::atomic<Timestamp> clock_{1};
  /// Snapshot watermark: max timestamp with all commits <= it stamped.
  std::atomic<Timestamp> stable_ts_{1};
  std::atomic<Timestamp> min_active_read_ts_{1};
  /// Prune floor of the in-progress checkpoint sweep (kMaxTimestamp when
  /// none). Written by Begin/EndCheckpointSweep.
  std::atomic<Timestamp> checkpoint_floor_{kMaxTimestamp};

  /// Commit window: timestamps allocated but whose versions may not all be
  /// stamped yet. Narrow: held for O(log inflight) on the commit path only.
  mutable std::mutex window_mu_;
  std::condition_variable window_cv_;
  std::set<Timestamp> inflight_commits_;

  /// Registry mutex: guards the three containers below (and TxnState::
  /// suspended). Never held while acquiring a TxnState latch or any lock
  /// manager mutex.
  mutable std::mutex registry_mu_;
  /// All registered transactions: active + suspended committed.
  std::unordered_map<TxnId, std::shared_ptr<TxnState>> registry_;
  std::unordered_set<TxnState*> active_;
  /// Committed, retained transactions ordered by commit timestamp.
  std::map<Timestamp, std::shared_ptr<TxnState>> suspended_;

  /// Page-level FCW bookkeeping (kPage granularity only).
  struct PageWrite {
    Timestamp ts = 0;
    TxnId txn = 0;
  };
  mutable std::mutex page_mu_;
  std::unordered_map<LockKey, PageWrite, LockKeyHash> page_write_ts_;
  /// Cleanup invocations since start; every kPageSweepPeriod-th sweeps the
  /// map. Guarded by page_mu_.
  uint64_t page_sweep_tick_ = 0;
  uint64_t page_entries_pruned_ = 0;
};

}  // namespace ssidb

#endif  // SSIDB_TXN_TXN_MANAGER_H_
