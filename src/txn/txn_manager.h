// TxnManager: transaction lifecycle, timestamps, suspension and cleanup.
//
// One global "system mutex" plays the role the paper assigns to the
// DBMS-internal latches (§3.2: the atomic blocks; §4.4: InnoDB's kernel
// mutex): it serializes snapshot allocation, commit-timestamp assignment
// with version stamping, conflict-flag manipulation and the commit-time
// dangerous-structure check. Coarse but faithful — the paper explicitly
// observes that InnoDB's single kernel mutex bounds lock-manager
// scalability (§6.4).
//
// Committed transactions are not forgotten immediately: their TxnState
// remains registered (the paper's *suspended* state, §3.3) until no active
// transaction overlaps them, at which point their retained SIREAD locks are
// released and the state is dropped — the eager cleanup of the InnoDB
// prototype (§4.6.1).

#ifndef SSIDB_TXN_TXN_MANAGER_H_
#define SSIDB_TXN_TXN_MANAGER_H_

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <unordered_set>

#include "src/common/options.h"
#include "src/common/status.h"
#include "src/lock/lock_manager.h"
#include "src/txn/log_manager.h"
#include "src/txn/transaction.h"

namespace ssidb {

class TxnManager {
 public:
  TxnManager(const DBOptions& options, LockManager* lock_manager,
             LogManager* log_manager);

  /// Start a transaction. S2PL transactions get their begin timestamp
  /// immediately; SI/SSI transactions defer it when late_snapshot is set
  /// (§4.5) until EnsureSnapshot.
  std::shared_ptr<TxnState> Begin(IsolationLevel isolation);

  /// Assign the read snapshot if not yet assigned. Called by the operation
  /// layer *after* the first statement's locks are granted, implementing
  /// the §4.5 optimization that lets single-statement updates never abort
  /// under first-committer-wins.
  void EnsureSnapshot(TxnState* txn);

  /// Hook run under the system mutex just before the commit timestamp is
  /// assigned. Returning a non-OK status aborts the transaction with that
  /// status (Fig 3.2 lines 3-5 / Fig 3.10 lines 3-6 live here, provided by
  /// the SSI conflict tracker).
  using CommitCheck = std::function<Status(TxnState*)>;

  /// Commit: check hook, timestamp + version stamping, log append (+ group
  /// commit wait), lock release or suspension, cleanup. `log_payload` is
  /// the transaction's redo blob.
  Status Commit(const std::shared_ptr<TxnState>& txn,
                const CommitCheck& check, std::string log_payload);

  /// Abort: roll back installed versions, release all locks (including
  /// SIREAD — aborted transactions never participate in conflicts), drop
  /// registration.
  void Abort(const std::shared_ptr<TxnState>& txn);

  /// Resolve a transaction id to its state, if still registered (active or
  /// suspended). Caller must hold the system mutex.
  std::shared_ptr<TxnState> FindLocked(TxnId id) const;

  /// The system mutex for the SSI tracker's atomic blocks.
  std::mutex& system_mutex() { return system_mu_; }

  /// Oldest snapshot among active transactions (current clock if none);
  /// versions older than this are unreachable (prune threshold).
  Timestamp min_active_read_ts() const {
    return min_active_read_ts_.load(std::memory_order_relaxed);
  }

  Timestamp clock_now() const {
    return clock_.load(std::memory_order_relaxed);
  }

  /// Page-granularity first-committer-wins (§4.2): the commit timestamp of
  /// the last committed write to a page lock unit. Returns 0 if never
  /// written. Thread-safe.
  Timestamp PageLastWriteTs(const LockKey& page_key) const;

  /// As above, but also reports the committing transaction — the "creator"
  /// of the newest page version, needed to mark the rw-conflict when a
  /// page-granularity read ignores it (§4.2 + Fig 3.4 lines 8-9). Returns
  /// false if the page was never written.
  bool PageLastWrite(const LockKey& page_key, Timestamp* ts, TxnId* txn) const;

  size_t active_count() const;
  size_t suspended_count() const;

  const DBOptions& options() const { return options_; }
  LockManager* lock_manager() { return lock_manager_; }

 private:
  /// Remove from the active set, recompute the min snapshot. Caller holds
  /// the system mutex.
  void DeactivateLocked(TxnState* txn);
  Timestamp MinActiveBeginLocked() const;

  /// Abort body shared by Abort() and failed commits. The caller must NOT
  /// hold the system mutex.
  void AbortInternal(const std::shared_ptr<TxnState>& txn);

  /// Release suspended transactions no longer overlapping anything active.
  void CleanupSuspended();

  const DBOptions options_;
  LockManager* const lock_manager_;
  LogManager* const log_manager_;

  mutable std::mutex system_mu_;
  std::atomic<Timestamp> clock_{1};
  std::atomic<Timestamp> min_active_read_ts_{1};

  /// All registered transactions: active + suspended committed.
  std::unordered_map<TxnId, std::shared_ptr<TxnState>> registry_;
  std::unordered_set<TxnState*> active_;
  /// Committed, retained transactions ordered by commit timestamp.
  std::map<Timestamp, std::shared_ptr<TxnState>> suspended_;

  /// Page-level FCW bookkeeping (kPage granularity only).
  struct PageWrite {
    Timestamp ts = 0;
    TxnId txn = 0;
  };
  mutable std::mutex page_mu_;
  std::unordered_map<LockKey, PageWrite, LockKeyHash> page_write_ts_;
};

}  // namespace ssidb

#endif  // SSIDB_TXN_TXN_MANAGER_H_
