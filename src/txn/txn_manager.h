// TxnManager: transaction lifecycle, timestamps, suspension and cleanup.
//
// The seed faithfully mirrored the paper's single "system mutex" (§3.2's
// atomic blocks; §4.4's InnoDB kernel mutex): every begin, snapshot and
// commit-timestamp assignment, and conflict-flag mutation serialized
// through one lock — the bottleneck the paper itself observes bounds
// InnoDB's scalability (§6.4). PR 1 split that mutex; PR 5 narrowed the
// remainder to one commit-window mutex (PostgreSQL's
// SerializableXactHashLock role); this layer now has NO global mutex on
// the commit path at all:
//
//   * Timestamps: two lock-free counters. Transaction ids come from
//     `id_clock_`; commit timestamps from the CommitRing's dedicated
//     commit clock. Splitting the domains is what makes the commit
//     pipeline ring-indexable: every commit timestamp belongs to exactly
//     one writing commit, so "which commits are unstamped" is a gap-free
//     suffix — no set, no mutex (see commit_ring.h). The two domains are
//     never compared: overlap and visibility tests all use read/commit
//     timestamps (commit domain); ids only name transactions.
//   * Certification (the dangerous-structure check made atomic with
//     commit-timestamp publication) runs in a flat-combining stage
//     (commit_combiner.h): committers that need it publish a request and
//     one combiner-of-the-moment certifies the whole batch under a single
//     lock acquisition. Committers that provably don't need it skip the
//     stage entirely and allocate lock-free — see "Certification triage"
//     below for the soundness argument.
//   * Snapshot consistency: commits publish their versions *before*
//     becoming visible to new snapshots via the CommitRing's stable
//     watermark. A committing transaction allocates its timestamp (in
//     certification order for certifying commits; lock-free otherwise),
//     stamps its versions, then publishes its ring slot; the watermark
//     advances by a lock-free scan of consecutive stamped slots, and
//     snapshots read the watermark — a snapshot can never observe a
//     half-stamped commit. Retiring and waiting take no lock;
//     acknowledgment waits park on sharded condvars keyed by commit
//     timestamp and are woken only when the watermark actually covers
//     them (no thundering herd).
//   * Registry: the transaction table and active set are sharded by
//     transaction id; the shard count follows the runtime core topology
//     (DBOptions::txn_registry_shards = 0) instead of a fixed constant.
//     Begin / first statement / commit / abort touch one shard, `Find`
//     probes one shard. `min_active_read_ts` is maintained from per-shard
//     cached minima, aggregated lock-free (see PublishMinActive) instead
//     of an O(active) rescan under a global lock.
//   * SSI conflict state: per-TxnState latches (TxnState::ssi_mu),
//     acquired pairwise in txn-id order by the ConflictTracker; the
//     commit-time dangerous-structure check runs under the committing
//     transaction's own latch (see transaction.h).
//
// Certification triage (who must enter the combiner, and why skipping it
// is sound). The check and commit-timestamp publication must be atomic
// across certifying committers or a pivot's check could observe its
// out-partner as "not committed" while that partner wins a *smaller*
// timestamp — an undetected dangerous structure. Under its own ssi_mu a
// committer classifies itself:
//
//   1. No check hook (SI/S2PL): the transaction records no
//      rw-antidependency edges and the ConflictTracker filters it out of
//      every partner's state (Participates()), so no concurrent check's
//      verdict mentions it. Its timestamp allocation is invisible to
//      certification — lock-free ring_.Allocate().
//   2. SSI with ALL conflict state clear (both flags false and both
//      references kNone, read under its own latch): edges are recorded
//      bilaterally under pairwise latches (conflict_tracker.h), so "we
//      have no edge" implies "no partner has an edge to us" at this
//      instant, and any edge recorded later happens-after our latch
//      releases — by which time our committed status and timestamp are
//      published together, exactly what a later serial certification
//      would observe. A transaction with no edge can neither be a pivot
//      nor complete a partner's structure — fast path, lock-free
//      allocation.
//   3. SSI with ANY conflict state: a partner's in-flight certification
//      may reason about our commit time; ordering our allocation against
//      their check requires the combiner. This is the only class that
//      enters the certification stage.
//
// Batch atomicity (why one combined pass == N serial critical sections):
// the combiner holds one lock and processes requests strictly in slot
// order; request i's check runs after every earlier request's verdict and
// timestamp are final and before any later request's exist — a serial
// schedule with that arrival order. Same-batch successors hold LARGER
// timestamps, so the §3.6 "out-partner committed first" comparison is
// decided identically to the serial run. And a certifying committer still
// holds its ssi_mu across the whole stage, so markings serialize against
// the check + status transition exactly as before (transaction.h). The
// per-pass details live in commit_combiner.h.
//
// Committed SSI transactions are not forgotten immediately: their TxnState
// remains registered (the paper's *suspended* state, §3.3) until no active
// transaction overlaps them, at which point their retained SIREAD locks
// are released and the state is dropped — the eager cleanup of the InnoDB
// prototype (§4.6.1). The retained states park in an epoch reclaimer
// keyed by commit timestamp (src/common/epoch.h): retiring is one
// per-thread slot touch instead of an ordered-multimap insert under a
// global mutex, and the "nothing to release" case stays lock-free. SI and
// S2PL transactions never participate in SSI conflict tracking (nothing
// ever resolves them after commit), so they are deregistered at commit
// and skip suspension entirely.
//
// Read-only commits (nothing to stamp) bypass the ring: their commit
// timestamp is the current stable watermark — they are "committed at" the
// snapshot boundary they already read at. Timestamps of distinct read-only
// commits may therefore collide (the epoch reclaimer permits duplicate
// epochs); a read-only commit never blocks on, and never blocks, the
// watermark.
//
// Submit/finalize split (asynchronous commit): a commit's verdict is final
// at stamp-publish, long before the fsync-bound acknowledgment, so the
// pipeline is cut there. CommitAsync runs the *submit* half on the calling
// thread — triage/certify, status transition, version stamping, WAL
// append, ring publication — and registers the *finalize* half as a
// CommitRing coverage completion: registry departure, SSI suspension and
// min-active publication once the watermark covers the commit
// (FinalizeCovered), then a LogManager flush subscription whose firing
// releases locks, records the ack histograms, runs the client callback
// and re-drives the pipeline (FinalizeAcked). The WAL append deliberately
// moves BEFORE ring publication: records reach the group-commit flusher at
// submit, so a deep async pipeline batches into one fsync instead of one
// per blocked thread. That ordering is admissible because WAL durability
// order only needs to respect dependency order, and a reader of commit A's
// writes began after A's coverage — hence after A's append — so its own
// record lands at a higher LSN and prefix-durable flushes can never keep
// the dependent while dropping A. Lock release keeps the §4.5 invariant
// (below) because it stays strictly after coverage in FinalizeAcked; the
// early_lock_release knob moves it to FinalizeCovered (after coverage,
// before the flush — InnoDB's original §4.4 ordering). Blocking Commit()
// is a thin wrapper: submit + park until `done`, with a 1ms re-drive
// backstop mirroring the ring's blocking waiters.

#ifndef SSIDB_TXN_TXN_MANAGER_H_
#define SSIDB_TXN_TXN_MANAGER_H_

#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/common/epoch.h"
#include "src/common/options.h"
#include "src/common/status.h"
#include "src/lock/lock_manager.h"
#include "src/obs/metrics.h"
#include "src/obs/trace_ring.h"
#include "src/txn/commit_combiner.h"
#include "src/txn/commit_ring.h"
#include "src/txn/log_manager.h"
#include "src/txn/transaction.h"

namespace ssidb {

class TxnManager {
 public:
  TxnManager(const DBOptions& options, LockManager* lock_manager,
             LogManager* log_manager);

  /// Quiesces the log's group-commit flusher before teardown: an
  /// acknowledged async commit's pipeline tail (flush subscription ->
  /// FinalizeAcked -> cleanup + ring re-drive) runs on the flusher thread
  /// and may still be touching this object after the client saw its
  /// `done` fire — the destructor must not race it.
  ~TxnManager();

  /// Start a transaction. S2PL transactions get their begin timestamp
  /// immediately; SI/SSI transactions defer it when late_snapshot is set
  /// (§4.5) until EnsureSnapshot. The transaction id is a lock-free
  /// fetch-add; only registration takes the (sharded) registry mutex.
  std::shared_ptr<TxnState> Begin(IsolationLevel isolation);

  /// Assign the read snapshot if not yet assigned. Called by the operation
  /// layer *after* the first statement's locks are granted, implementing
  /// the §4.5 optimization that lets single-statement updates never abort
  /// under first-committer-wins. The snapshot is the stable watermark (all
  /// commits at or below it are fully stamped).
  void EnsureSnapshot(TxnState* txn);

  /// Hook run under the committing transaction's ssi_mu latch, just
  /// before the commit timestamp is assigned (Fig 3.2 lines 3-5 /
  /// Fig 3.10 lines 3-6, provided by the SSI tracker). Consulted ONLY for
  /// transactions with recorded conflict state — a conflict-free SSI
  /// commit takes the fast path and never calls it (see the certification
  /// triage argument in the file header). When it does run, it runs
  /// inside the flat-combining certification stage, atomically-in-order
  /// with every other certifying commit's check and timestamp.
  using CommitCheck = std::function<Status(TxnState*)>;

  /// Commit acknowledgment callback: fires exactly once with the commit's
  /// final status — OK; the abort cause if certification (or a pending
  /// abort mark) killed the transaction during submit; kIOError if the
  /// commit stands in memory but its log flush failed (visible, not
  /// durable). Runs on an internal thread: whichever commit thread drives
  /// the covering watermark advance, or the group-commit flusher when the
  /// commit waits on a flush (or inline in CommitAsync for commits
  /// acknowledged at submit). It runs with no engine locks held, but on a
  /// shared pipeline thread — keep it short, and do not submit new
  /// transactions from inside it (signal the owning worker instead).
  using CommitCallback = std::function<void(Status)>;

  /// Commit, blocking: a thin wrapper over CommitAsync that parks until
  /// the completion pipeline acknowledges — submit and finalize share one
  /// code path with the asynchronous form (differentially tested).
  /// `redo` is the transaction's per-key redo, captured by the executor;
  /// it lands in the commit's WAL record so recovery can reinstall the
  /// write set. Returns kIOError if the commit succeeded in memory but its
  /// log flush failed (durable mode).
  Status Commit(const std::shared_ptr<TxnState>& txn,
                const CommitCheck& check, std::vector<RedoEntry> redo);

  /// Commit, asynchronous: submit on the calling thread, acknowledge via
  /// `done`. The submit half — certification triage (flat combiner or
  /// fast path), version stamping, WAL append, ring publication — runs
  /// here, so when CommitAsync returns the verdict is final and the
  /// commit is ordered; only watermark coverage and the group-commit
  /// flush complete off-thread (the finalize half, driven by the
  /// CommitRing completion registry and the LogManager flush
  /// subscriptions). A certification failure aborts and fires `done` with
  /// the cause before returning. Ring-full backpressure may briefly park
  /// the submitting thread: commit_ring_slots bounds the in-flight
  /// window, so an async client can keep at most that many unacknowledged
  /// commits open.
  void CommitAsync(const std::shared_ptr<TxnState>& txn,
                   const CommitCheck& check, std::vector<RedoEntry> redo,
                   CommitCallback done);

  /// Abort: roll back installed versions, release all locks (including
  /// SIREAD — aborted transactions never participate in conflicts), drop
  /// registration.
  void Abort(const std::shared_ptr<TxnState>& txn);

  /// Resolve a transaction id to its state, if still registered (active,
  /// or committed-SSI-and-suspended). Thread-safe (one registry shard
  /// probed); the returned shared_ptr keeps the state alive past
  /// deregistration. Committed SI/S2PL transactions are not resolvable —
  /// nothing in the engine asks for them (the conflict tracker filters to
  /// SSI participants before use).
  std::shared_ptr<TxnState> Find(TxnId id) const;

  /// Oldest snapshot among active transactions (stable watermark if none);
  /// versions older than this are unreachable (prune threshold).
  /// Maintained as a monotonic CAS-max of lock-free aggregates over the
  /// registry shards' cached minima (see PublishMinActive).
  Timestamp min_active_read_ts() const {
    return min_active_read_ts_.load(std::memory_order_seq_cst);
  }

  /// Enter a checkpoint sweep: publishes the sweep watermark as a floor on
  /// version pruning and returns it. The watermark now advances lock-free,
  /// so floor publication cannot ride a mutex; instead the floor is
  /// store/re-read confirmed: publish the floor at the observed watermark,
  /// re-read the watermark, and repeat until it did not move past the
  /// floor (see BeginCheckpointSweep for the seq_cst ordering argument
  /// that makes prune_horizon() airtight). Sweeps are serialized by the
  /// caller (DB::checkpoint_write_mu_).
  Timestamp BeginCheckpointSweep();
  /// Leave the sweep: lifts the floor.
  void EndCheckpointSweep();

  /// Horizon for version pruning: min_active_read_ts capped by an
  /// in-progress checkpoint sweep's watermark. Without the cap, a pruner
  /// whose horizon ran past the sweep watermark W could delete a key's
  /// newest version <= W (because a newer one exists) before the sweep
  /// reads that chain — silently dropping a committed key from the image
  /// whose cut claims to cover it. Why the cap is race-free: every
  /// watermark advance, floor store, and min-active store/load involved is
  /// seq_cst, so they have one total order S. BeginCheckpointSweep returns
  /// W only after a floor(W) store F followed by a watermark load that
  /// still read W — hence any advance C past W is ordered after F in S. A
  /// min_active value above W can only come from an aggregate whose
  /// watermark load saw > W (ordered after C, hence after F), so a pruner
  /// that reads such a value reads the floor afterwards and sees F's W.
  /// And a sweep that begins after a horizon was computed has W' >= that
  /// horizon (the watermark is monotonic and min_active never exceeds it).
  Timestamp prune_horizon() const {
    const Timestamp min = min_active_read_ts();
    const Timestamp floor =
        checkpoint_floor_.load(std::memory_order_seq_cst);
    return min < floor ? min : floor;
  }

  /// Current commit-domain time: the last allocated commit timestamp.
  /// (S2PL reads latest-committed state; the history oracle records their
  /// scans at this bound.)
  Timestamp clock_now() const { return ring_.clock(); }

  /// Recovery hook (DB::Open, before any transaction begins): advance the
  /// commit clock and the stable watermark to at least `ts`, so every new
  /// transaction gets a snapshot that covers — and every new commit a
  /// timestamp above — all recovered commit timestamps.
  void AdvanceClockTo(Timestamp ts);

  /// The snapshot watermark: every commit with commit_ts <= stable_ts() has
  /// fully stamped its versions. New snapshots read at this timestamp.
  Timestamp stable_ts() const { return ring_.stable(); }

  /// Page-granularity first-committer-wins (§4.2): the commit timestamp of
  /// the last committed write to a page lock unit. Returns 0 if never
  /// written. Thread-safe.
  Timestamp PageLastWriteTs(const LockKey& page_key) const;

  /// As above, but also reports the committing transaction — the "creator"
  /// of the newest page version, needed to mark the rw-conflict when a
  /// page-granularity read ignores it (§4.2 + Fig 3.4 lines 8-9). Returns
  /// false if the page was never written.
  bool PageLastWrite(const LockKey& page_key, Timestamp* ts, TxnId* txn) const;

  size_t active_count() const;
  size_t suspended_count() const;

  /// Live entries in the page first-committer-wins map (kPage mode; 0
  /// otherwise). Bounded: CleanupSuspended periodically erases entries at
  /// or below min_active_read_ts.
  size_t page_write_entries() const;
  /// Total page-FCW entries reclaimed by those sweeps.
  uint64_t page_entries_pruned() const;

  // --- Commit-pipeline counters (DBStats). ---
  /// Commit-acknowledgment waits that parked on a condvar: blocking
  /// Commit() calls that parked on their completion (the wrapper's sync
  /// waiter) plus ring-internal coverage parks.
  uint64_t commit_waits() const {
    return ring_.waits_parked() +
           ack_parks_.load(std::memory_order_relaxed);
  }
  /// Waiter-shard notifications issued by watermark advances.
  uint64_t commit_wakeups() const { return ring_.wakeups_issued(); }
  /// Commits that stalled on a full commit-slot ring.
  uint64_t ring_full_stalls() const { return ring_.full_stalls(); }
  /// Deepest observed in-flight commit window (allocated - stable).
  uint64_t max_commit_window_depth() const { return ring_.max_depth(); }
  /// Commit-ack waiter shards (topology-sized; tests assert the sizing).
  uint64_t commit_waiter_shards() const { return ring_.waiter_shards(); }
  /// Combining passes that certified at least one commit.
  uint64_t commit_combine_batches() const {
    return combiner_.combine_batches();
  }
  /// Commits certified by those passes.
  uint64_t commit_combined_txns() const { return combiner_.combined_txns(); }
  /// Largest single combining pass.
  uint64_t commit_max_batch() const { return combiner_.max_batch(); }
  /// SSI commits that skipped certification (conflict-free fast path).
  uint64_t commit_fastpath() const {
    return fastpath_commits_.load(std::memory_order_relaxed);
  }
  /// Writing commits submitted but not yet acknowledged (published to the
  /// ring, completion not yet fired) — the live async pipeline depth.
  uint64_t commits_inflight() const {
    return commits_inflight_.load(std::memory_order_relaxed);
  }

  /// One watermark-drive + completion-drain pass. The acknowledgment
  /// backstop for purely asynchronous clients: a host whose commit
  /// threads all went idle after submitting (nobody left inside Publish
  /// or a blocking wait to rescan the ring) calls this on its timeout
  /// tick while draining, exactly as the ring's blocking waiters re-drive
  /// internally. Cheap when there is nothing to do.
  void DriveCommitPipeline() { ring_.Drive(); }

  /// Aborts whose TxnState carried this taxonomy class (abort_reason.h).
  /// Counted exactly once per abort, in AbortInternal; an unclassified
  /// abort counts as kExplicit.
  uint64_t abort_count(AbortReason r) const {
    return abort_counts_[static_cast<size_t>(r)].load(
        std::memory_order_relaxed);
  }

  /// Register the commit-pipeline stage histograms and hook the trace ring
  /// (abort + ring-stall events). Called once by the DB façade, before any
  /// transaction begins.
  void RegisterMetrics(obs::MetricsRegistry* registry, obs::TraceRing* trace);

  /// Degraded mode: once the WAL reports an unrecoverable I/O failure
  /// (LogManager::SetIOErrorCallback fires), every subsequent writing
  /// commit fails fast with kIOError before certification or timestamp
  /// allocation — nothing new may claim durability. Read-only transactions
  /// keep committing. One-way for the process lifetime; a restart against
  /// healthy storage clears it.
  void EnterReadOnly() {
    read_only_.store(true, std::memory_order_release);
  }
  bool read_only() const {
    return read_only_.load(std::memory_order_acquire);
  }

  const DBOptions& options() const { return options_; }
  LockManager* lock_manager() { return lock_manager_; }

 private:
  struct alignas(64) RegistryShard {
    mutable std::mutex mu;
    /// Registered transactions homed here: active, plus committed SSI
    /// transactions retained for conflict resolution (§3.3).
    std::unordered_map<TxnId, std::shared_ptr<TxnState>> txns;
    std::unordered_set<TxnState*> active;
    /// Exact min over the assigned read_ts of `active` members
    /// (kMaxTimestamp when none is assigned) — except for the bounded
    /// instant inside ClaimSnapshotLocked where a pre-claim holds it one
    /// watermark step low. Maintained under `mu`: assignments store
    /// min(previous, snapshot), removals of the minimum holder recompute;
    /// read lock-free by PublishMinActive.
    std::atomic<Timestamp> min_read_ts{kMaxTimestamp};
  };

  RegistryShard& ShardFor(TxnId id) const {
    return shards_[id & shard_mask_];
  }

  /// Recompute shard.min_read_ts from its members — but only when the
  /// departing transaction's snapshot could have been the cached minimum.
  /// The cache is exact (see RegistryShard::min_read_ts), so a departing
  /// read_ts above it cannot change the minimum and the O(active) rescan
  /// is skipped; an unassigned snapshot (0) never constrained it. Caller
  /// holds shard.mu.
  static void NoteDepartureLocked(RegistryShard* shard,
                                  Timestamp departed_read_ts);

  /// Assign a snapshot: pre-claim the shard minimum at a watermark lower
  /// bound, take the snapshot from a second watermark read (the
  /// claim-then-read protocol that keeps PublishMinActive's lock-free
  /// aggregate from overshooting a registrant paused mid-registration —
  /// see the implementation comment), then settle the cache at the exact
  /// min(previous, snapshot). Caller holds shard->mu.
  Timestamp ClaimSnapshotLocked(RegistryShard* shard);

  /// Aggregate the per-shard minima (floored at the stable watermark) and
  /// CAS-max the result into min_active_read_ts_. Lock-free. Safe against
  /// concurrent registration via the claim-then-read protocol
  /// (ClaimSnapshotLocked): an aggregate that misses a registrant's
  /// pre-claim is ordered before that registrant's snapshot-defining
  /// watermark read, so the snapshot is >= the aggregate's base; one it
  /// sees bounds the aggregate directly. The true minimum is monotonic
  /// (snapshots are watermark-based and the watermark is monotonic), so
  /// CAS-max converges on it. Called after removals and watermark-raising
  /// events; registrations never need it (they cannot raise the minimum).
  void PublishMinActive();

  /// Abort body shared by Abort() and failed commits. The caller must NOT
  /// hold the transaction's ssi_mu latch.
  void AbortInternal(const std::shared_ptr<TxnState>& txn);

  /// Per-commit state that travels from submit to acknowledgment.
  /// Ownership is linear — exactly one stage (submit, coverage completion,
  /// flush subscription) holds the record at a time — so the deferred path
  /// passes a raw heap pointer between std::function stages (a raw pointer
  /// is trivially copyable and fits the small-buffer store, so the
  /// hand-offs never allocate), and a commit whose whole pipeline runs
  /// inline on the submitting thread lives on its stack and never touches
  /// the heap. FinalizeAcked frees heap instances (`heap` flag) at the
  /// same point the old shared_ptr release sat: after `done` is extracted,
  /// before it fires.
  struct AsyncCommit {
    TxnManager* mgr = nullptr;
    std::shared_ptr<TxnState> txn;
    CommitCallback done;
    Timestamp commit_ts = 0;
    /// True for deferred commits (new'd at the OnCovered hand-off).
    bool heap = false;
    /// 0 = nothing appended (read-only commit): no flush subscription.
    Lsn lsn = 0;
    /// Sampled stage timing (obs::SampleTick at submit; the flag travels
    /// so every stage of a sampled commit records, across threads).
    bool sampled = false;
    uint64_t t_entry = 0;    ///< CommitAsync entry (ack lag + total).
    uint64_t t_publish = 0;  ///< Ring publication (watermark stage).
    uint64_t t_flush = 0;    ///< Flush-subscription start (fsync stage).
  };

  /// Finalize, first half — runs once the watermark covers commit_ts
  /// (CommitRing completion; inline at submit for read-only commits and
  /// for writes covered at publish in the non-durable regime): registry
  /// departure, SSI suspension, then the acknowledgment whenever the
  /// flush ack is unconditional. Returns true when the commit was fully
  /// acknowledged; false when the caller must subscribe it to the
  /// group-commit flusher (FinalizeCovered does exactly that).
  bool FinalizeCoveredStep(AsyncCommit* ac);
  /// FinalizeCoveredStep + the flush subscription, for deferred (heap)
  /// commits arriving from the ring's completion registry.
  void FinalizeCovered(AsyncCommit* ac);
  /// Finalize, second half — the acknowledgment: stage/ack histograms,
  /// the client callback, cleanup, and a pipeline re-drive. Frees heap
  /// instances.
  void FinalizeAcked(AsyncCommit* ac, Status flush_status);
  /// Post-commit lock release: SSI keeps SIREAD locks (Fig 3.2 line 9).
  void ReleaseCommitLocks(TxnState* txn);

  /// Release suspended transactions no longer overlapping anything active.
  /// Fast path: one atomic compare inside the epoch reclaimer (oldest
  /// retired commit_ts vs the maintained min_active_read_ts) — no lock
  /// when nothing can be released.
  void CleanupSuspended();

  const DBOptions options_;
  LockManager* const lock_manager_;
  LogManager* const log_manager_;

  /// Transaction ids. Lock-free; a separate domain from commit timestamps
  /// (see file header).
  std::atomic<Timestamp> id_clock_{1};

  /// The commit pipeline: commit clock, slot ring, watermark, parking.
  CommitRing ring_;

  /// The certification stage (file header: certification triage / batch
  /// atomicity). Only SSI commits with recorded conflict state enter it;
  /// everything else allocates straight from ring_.
  CommitCombiner combiner_;

  /// SSI commits that skipped certification (triage class 2).
  std::atomic<uint64_t> fastpath_commits_{0};

  /// Degraded (read-only) mode flag — see EnterReadOnly().
  std::atomic<bool> read_only_{false};

  /// Writing commits published but not yet acknowledged (commit.inflight).
  std::atomic<uint64_t> commits_inflight_{0};
  /// Blocking Commit() wrappers that parked on their completion.
  std::atomic<uint64_t> ack_parks_{0};

  // --- Observability (src/obs). Stage timing is sampled 1-in-N per
  // thread (DBOptions::metrics_sample_period); a sampled commit records
  // every stage it executes, so per-stage counts stay comparable. ---
  obs::Histogram certify_ns_;        // Begin of submit -> timestamp final.
  obs::Histogram stamp_publish_ns_;  // Version stamping -> ring publish.
  obs::Histogram watermark_ns_;      // Ring publish -> watermark coverage.
  obs::Histogram wal_append_ns_;     // Encoding + flusher hand-off.
  obs::Histogram fsync_wait_ns_;     // Group-commit flush wait.
  obs::Histogram total_ns_;          // Submit entry -> acknowledgment.
  obs::Histogram ack_lag_ns_;        // Ring publication (submit complete)
                                     // -> `done` fired: how long an async
                                     // client's submitted commit dangles
                                     // before acknowledgment (coverage +
                                     // group-commit flush). Writes only.
  const uint32_t sample_mask_;
  /// Per-reason abort counts (DBStats::abort_breakdown).
  std::atomic<uint64_t> abort_counts_[kAbortReasonCount] = {};
  obs::TraceRing* trace_ = nullptr;

  std::atomic<Timestamp> min_active_read_ts_{1};
  /// Prune floor of the in-progress checkpoint sweep (kMaxTimestamp when
  /// none). Written by Begin/EndCheckpointSweep.
  std::atomic<Timestamp> checkpoint_floor_{kMaxTimestamp};

  const uint64_t shard_mask_;
  const std::unique_ptr<RegistryShard[]> shards_;
  /// Exact live-transaction count (a per-shard sum would not be a
  /// coherent cut; DBStats promises individually coherent counters).
  std::atomic<size_t> active_count_{0};

  /// Committed, retained SSI transactions, keyed by commit timestamp
  /// (duplicates allowed: read-only commit timestamps may collide).
  /// Collected by CleanupSuspended once min_active_read_ts passes them.
  EpochReclaimer<std::shared_ptr<TxnState>> suspended_;

  /// Page-level FCW bookkeeping (kPage granularity only), sharded by lock
  /// key hash: page commits from disjoint pages touch disjoint mutexes.
  struct PageWrite {
    Timestamp ts = 0;
    TxnId txn = 0;
  };
  struct alignas(64) PageShard {
    mutable std::mutex mu;
    std::unordered_map<LockKey, PageWrite, LockKeyHash> writes;
  };
  PageShard& PageShardFor(const LockKey& key) const {
    return page_shards_[LockKeyHash{}(key) & page_shard_mask_];
  }
  const uint64_t page_shard_mask_;
  const std::unique_ptr<PageShard[]> page_shards_;
  /// Live entries across all page shards (page_write_entries must be one
  /// coherent counter, not a per-shard sum).
  std::atomic<size_t> page_entries_{0};
  /// Cleanup invocations since start; every kPageSweepPeriod-th sweeps the
  /// shards.
  std::atomic<uint64_t> page_sweep_tick_{0};
  std::atomic<uint64_t> page_entries_pruned_{0};
};

}  // namespace ssidb

#endif  // SSIDB_TXN_TXN_MANAGER_H_
