// Executor: the operation protocols of the three concurrency-control
// modes, extracted from the DB monolith.
//
// Every operation follows the paper's modified pseudocode:
//   read   - Fig 3.4: SIREAD lock, probe EXCLUSIVE holders, snapshot read,
//            mark conflicts with creators of ignored newer versions.
//   write  - Fig 3.5: EXCLUSIVE lock, probe SIREAD holders, then the
//            first-committer-wins check and version install.
//   scan   - Fig 3.6: the modified read applied to every index entry in
//            range plus gap locks (phantom detection).
//   insert/delete - Fig 3.7: gap EXCLUSIVE on next(key) plus the write.
//   commit - Fig 3.2/3.10 via the ConflictTracker hook.
//
// S2PL uses the same code paths with blocking kShared/kExclusive locks and
// latest-committed reads; SI takes no read locks at all.
//
// The executor is a stateless per-engine service over the lower layers
// (catalog/storage, lock manager, transaction manager, SSI tracker,
// history oracle) — it does not know the DB façade. Per-transaction
// client-side state travels in a TxnCtx owned by the façade's Transaction
// handle; one TxnCtx is driven by a single thread.

#ifndef SSIDB_TXN_EXECUTOR_H_
#define SSIDB_TXN_EXECUTOR_H_

#include <atomic>
#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "src/common/options.h"
#include "src/common/slice.h"
#include "src/common/status.h"
#include "src/lock/lock_manager.h"
#include "src/obs/metrics.h"
#include "src/obs/trace_ring.h"
#include "src/sgt/history.h"
#include "src/ssi/conflict_tracker.h"
#include "src/storage/catalog.h"
#include "src/txn/txn_manager.h"

namespace ssidb {

/// Predicate-read callback: receives each visible key/value; returning
/// false stops the iteration early (locks already taken are kept).
using ScanCallback = std::function<bool(Slice key, Slice value)>;

class Executor {
 public:
  /// Client-side transaction context: the engine state handle plus the
  /// single-threaded bookkeeping the public Transaction object carries.
  struct TxnCtx {
    std::shared_ptr<TxnState> state;
    bool finished = false;
    bool history_begin_recorded = false;
    /// Scratch lock keys, reused across operations so the blocking-lock
    /// path never constructs a fresh LockKey (the std::string buffers are
    /// recycled). One TxnCtx is driven by a single thread, so reuse is
    /// race-free. scratch_row_key holds the row/page key of the current
    /// operation; scratch_gap_key the gap key (they can be live at once
    /// on the insert path).
    LockKey scratch_row_key;
    LockKey scratch_gap_key;
  };

  /// `history` may be null (DBOptions::record_history unset).
  Executor(const DBOptions& options, Catalog* catalog, TxnManager* txns,
           LockManager* locks, ConflictTracker* tracker,
           sgt::HistoryRecorder* history);

  Status Get(TxnCtx& txn, TableId table, Slice key, std::string* value);
  Status GetForUpdate(TxnCtx& txn, TableId table, Slice key,
                      std::string* value);
  Status Put(TxnCtx& txn, TableId table, Slice key, Slice value);
  Status Insert(TxnCtx& txn, TableId table, Slice key, Slice value);
  Status Delete(TxnCtx& txn, TableId table, Slice key);
  Status Scan(TxnCtx& txn, TableId table, Slice lo, Slice hi,
              const ScanCallback& fn);
  Status Commit(TxnCtx& txn);

  /// Asynchronous Commit: submit on the calling thread (certification,
  /// version stamping, WAL append — the same TxnManager path Commit takes)
  /// and return with the commit in flight; `done(status)` runs exactly
  /// once when it is acknowledged (watermark coverage plus, for writers,
  /// the covering log flush). The TxnCtx is finished at submit — it may be
  /// destroyed as soon as this returns; the engine-side state the
  /// acknowledgment needs travels in the callback. `done` runs on
  /// whichever thread drives the completion (the group-commit flusher,
  /// another committer's watermark advance, or this thread inline) and
  /// must not touch the TxnCtx. An abort verdict also arrives through
  /// `done`; it may fire before this returns.
  void CommitAsync(TxnCtx& txn, TxnManager::CommitCallback done);

  Status Abort(TxnCtx& txn);

  /// Versions reclaimed by the inline write-path prune (one slice of
  /// DBStats::versions_pruned; the background sweep is the other).
  uint64_t versions_pruned() const {
    return versions_pruned_.load(std::memory_order_relaxed);
  }

  /// Register the read-latency split (hit vs storage-tier fault) and hook
  /// the trace ring for kFault events. Called once by the DB façade.
  void RegisterMetrics(obs::MetricsRegistry* registry, obs::TraceRing* trace);

 private:
  /// Pre-flight for every operation: reject finished transactions, honour
  /// an asynchronous victim mark (§3.7.2) by aborting now.
  Status CheckUsable(TxnCtx& txn);

  /// Assign the read snapshot if still unassigned, per the §4.5 rule
  /// (after the first statement's locks), and record history Begin once.
  void EnsureSnapshot(TxnCtx& txn);

  /// Abort and return `cause` (the paper's "abort as soon as the problem
  /// is discovered", §3.7.1).
  Status AbortWith(TxnCtx& txn, const Status& cause);

  /// Fill txn.scratch_row_key with the lock key of a row operation under
  /// the configured granularity — the row itself (kRow) or its page
  /// bucket (kPage, §4.1) — and return it. Computed once per operation;
  /// under kPage the same key is reused by the §4.2 page-conflict check
  /// in ReadChainAndMark instead of being re-encoded.
  const LockKey& RowLockKeyInto(TxnCtx& txn, TableId table, Slice key) const;
  /// Fill txn.scratch_gap_key with the gap key protecting the open
  /// interval below `next_key`; nullopt means the table's supremum gap
  /// (Fig 3.6/3.7).
  const LockKey& GapLockKeyInto(TxnCtx& txn, TableId table,
                                const std::optional<std::string>& next_key)
      const;

  /// Acquire a *blocking* mode (kShared/kExclusive) on `lk` and route any
  /// rw-conflict evidence to the SSI tracker (Fig 3.5 line 4). Aborts this
  /// transaction on deadlock/timeout/unsafe and returns the cause.
  Status AcquireAndMark(TxnCtx& txn, const LockKey& lk, LockMode mode);

  /// The SSI read fast lane: publish the SIREAD on (table, kind, key) and
  /// mark rw-conflicts with the EXCLUSIVE holders found (Fig 3.4 line 3).
  /// The key travels as a Slice: no owning LockKey, no heap allocation on
  /// the no-conflict path.
  Status AcquireSIReadAndMark(TxnCtx& txn, TableId table, LockKind kind,
                              Slice key);

  /// The paper's modified read applied to one chain: snapshot-read (or
  /// latest-committed for S2PL) and mark rw-conflicts with creators of
  /// ignored newer versions (Fig 3.4 lines 8-9). `page_lk` is the
  /// operation's page lock key, required (non-null) when granularity is
  /// kPage and the caller is an SSI transaction — the §4.2 page-conflict
  /// check consults it instead of recomputing the page key.
  Status ReadChainAndMark(TxnCtx& txn, const LockKey* page_lk,
                          VersionChain* chain, std::string* value,
                          ReadResult* out);

  /// ReadChainAndMark plus the storage-tier fault path: when the read
  /// reports an evicted chain (nothing resident visible but the cold
  /// anchor lives in a run file), fault the anchor back through the buffer
  /// pool and retry. Memory-only engines never set `evicted`, so the hot
  /// path is a single extra branch. Conflict re-marking across retries is
  /// idempotent. Aborts on tier I/O failure or retry exhaustion.
  Status ReadChainFaulting(TxnCtx& txn, Table* t, Slice key,
                           const LockKey* page_lk, VersionChain* chain,
                           std::string* value, ReadResult* out);

  /// First-committer-wins check (§2.5/§4.2) for a write to `chain`; in
  /// page mode also consults the page write table. Call with the exclusive
  /// lock held and the snapshot assigned.
  Status CheckFirstCommitterWins(TxnCtx& txn, VersionChain* chain,
                                 const LockKey& row_lk);

  /// Shared body of Put/Insert/Delete.
  enum class WriteKind { kUpsert, kInsert, kDelete };
  Status WriteImpl(TxnCtx& txn, TableId table, Slice key, Slice value,
                   WriteKind kind);

  const DBOptions options_;
  Catalog* const catalog_;
  TxnManager* const txns_;
  LockManager* const locks_;
  ConflictTracker* const tracker_;
  sgt::HistoryRecorder* const history_;

  std::atomic<uint64_t> versions_pruned_{0};

  /// Read-path latency, split by whether the chain had to be faulted back
  /// from the storage tier. Hits are sampled (metrics_sample_period);
  /// faults are always timed — the I/O dwarfs the clock reads.
  obs::Histogram read_hit_ns_;
  obs::Histogram read_fault_ns_;
  const uint32_t sample_mask_;
  obs::TraceRing* trace_ = nullptr;
};

}  // namespace ssidb

#endif  // SSIDB_TXN_EXECUTOR_H_
