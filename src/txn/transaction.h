// TxnState: the engine-internal transaction record.
//
// Mirrors the paper's transaction object: begin/commit timestamps, status,
// and the Serializable SI book-keeping — inConflict/outConflict as either
// booleans (Fig 3.1, basic algorithm) or transaction references
// (Fig 3.9/3.10, the precise variant). Conflict fields and the
// active→committed/aborted status transition are guarded by the
// per-transaction `ssi_mu` latch. The paper's global "atomic begin/end"
// blocks (§3.2/§4.4) are realized *pairwise*: conflict marking locks the
// latches of both endpoints in transaction-id order, and the commit-time
// dangerous-structure check runs under the committing transaction's own
// latch, so every marking serializes with every status transition it can
// observe — without a system-wide mutex (the PostgreSQL SSI partitioning
// strategy, Ports & Grittner VLDB 2012).
//
// A committed transaction that still holds SIREAD locks is *suspended*
// (§3.3): its TxnState stays registered so later conflicts can be detected,
// until no concurrent transaction remains.

#ifndef SSIDB_TXN_TRANSACTION_H_
#define SSIDB_TXN_TRANSACTION_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <vector>

#include "src/common/abort_reason.h"
#include "src/common/options.h"
#include "src/common/status.h"
#include "src/lock/lock_key.h"
#include "src/storage/version.h"

namespace ssidb {

class Table;

enum class TxnStatus : uint8_t { kActive, kCommitted, kAborted };

struct TxnState;

/// inConflict/outConflict in the precise (kReferences) representation
/// (Fig 3.9/3.10).
///
/// kNone/kSelf play the thesis's NULL / self-pointer roles. Where the
/// thesis replaces references to committed partners by self-references at
/// commit time (to avoid dangling pointers after cleanup), we instead
/// *collapse* them: drop the shared_ptr and keep the partner's commit
/// timestamp (kCollapsed). This is strictly more precise than the thesis's
/// replacement (the real commit time survives) while still breaking
/// reference chains so memory stays bounded by the overlap window.
///
/// kSelf (multiple conflicts of one polarity) is evaluated conservatively:
/// as an out-conflict it means "some partner may have committed first"
/// (commit time 0); as an in-conflict it means "some partner may still be
/// active" (commit time +inf). See DESIGN.md for why the thesis's literal
/// self-commit-time evaluation can be unsound on the out side.
struct ConflictRef {
  enum class Kind : uint8_t { kNone, kSelf, kOther, kCollapsed };
  Kind kind = Kind::kNone;
  std::shared_ptr<TxnState> other;
  /// Partner commit timestamp; valid when kind == kCollapsed.
  Timestamp collapsed_cts = 0;

  bool IsSet() const { return kind != Kind::kNone; }
  void Clear() {
    kind = Kind::kNone;
    other.reset();
    collapsed_cts = 0;
  }
  void SetSelf() {
    kind = Kind::kSelf;
    other.reset();
  }
  void SetOther(std::shared_ptr<TxnState> t) {
    kind = Kind::kOther;
    other = std::move(t);
  }
  void Collapse(Timestamp cts) {
    kind = Kind::kCollapsed;
    other.reset();
    collapsed_cts = cts;
  }
};

struct TxnState {
  explicit TxnState(TxnId id_in, IsolationLevel iso)
      : id(id_in), isolation(iso) {}

  const TxnId id;
  const IsolationLevel isolation;

  /// Snapshot timestamp. 0 until assigned; with late_snapshot (§4.5) the
  /// assignment happens after the first statement's locks are granted.
  std::atomic<Timestamp> read_ts{0};

  /// 0 until commit. Writing commits: allocated from the commit ring —
  /// inside the flat-combining certification stage when the transaction
  /// has recorded conflict state (atomic-in-order with the
  /// dangerous-structure checks; commit_combiner.h), lock-free on the
  /// conflict-free fast path (txn_manager.h "Certification triage").
  /// Read-only commits: the stable watermark at commit (may tie with
  /// other read-only commits; see txn_manager.h).
  std::atomic<Timestamp> commit_ts{0};

  std::atomic<TxnStatus> status{TxnStatus::kActive};

  /// Set (under this transaction's ssi_mu) when another transaction's
  /// conflict processing selected this transaction as a victim; honoured at
  /// the next operation or at commit.
  std::atomic<bool> marked_for_abort{false};
  /// Why the mark was set; written before the release store of
  /// marked_for_abort, read only after an acquire load observes true.
  Status abort_reason;

  /// Abort forensics (abort_reason.h): the taxonomy class of this abort
  /// and, when the cause was an rw-antidependency, the conflicting
  /// transaction's id. First writer wins — the classification made at the
  /// decision site sticks; later generic fallbacks cannot overwrite it.
  /// TxnManager::AbortInternal reads these exactly once per abort.
  std::atomic<uint8_t> abort_cause{0};
  std::atomic<TxnId> abort_conflict_txn{0};

  /// Classify this abort (no-op if already classified).
  void SetAbortCause(AbortReason r, TxnId conflict) {
    uint8_t expected = 0;
    if (abort_cause.compare_exchange_strong(expected,
                                            static_cast<uint8_t>(r),
                                            std::memory_order_relaxed)) {
      if (conflict != 0) {
        abort_conflict_txn.store(conflict, std::memory_order_relaxed);
      }
    }
  }

  /// Per-transaction latch: guards the conflict state below and the
  /// active→committed/aborted transition of `status`. Lock ordering: when
  /// two transactions' latches are needed (pairwise conflict marking),
  /// acquire in ascending txn-id order; ssi_mu is acquired before the
  /// CommitCombiner's lock and the TxnManager's registry mutexes, never
  /// after — and the combiner never takes any latch (checks read partner
  /// state through atomics), so a combining committer holds only its own.
  std::mutex ssi_mu;

  // --- Serializable SI conflict state (guarded by ssi_mu). ---
  /// Basic algorithm (Fig 3.1): booleans.
  bool in_conflict_flag = false;
  bool out_conflict_flag = false;
  /// Precise algorithm (Fig 3.9): references.
  ConflictRef in_ref;
  ConflictRef out_ref;

  /// True once the transaction was retired to the suspended-state epoch
  /// reclaimer (§3.3). Written by the committing thread just before
  /// Retire publishes the state (epoch.h slot handoff).
  bool suspended = false;

  // --- Write set (owned by the executing client thread). ---
  struct WriteRecord {
    TableId table;
    std::string key;
    VersionChain* chain;
    Version* version;
    /// The owning table, for commit-time shard hint maintenance
    /// (Table::NoteCommit). Tables live for the engine's lifetime.
    Table* table_ref = nullptr;
  };
  std::vector<WriteRecord> write_set;

  /// In kPage granularity, the page lock keys this transaction wrote;
  /// used for page-level first-committer-wins bookkeeping (§4.2).
  std::vector<LockKey> page_writes;

  bool IsActive() const { return status.load() == TxnStatus::kActive; }
  bool IsCommitted() const { return status.load() == TxnStatus::kCommitted; }

  /// The paper's begin(T) for overlap tests: the snapshot timestamp.
  Timestamp BeginTs() const { return read_ts.load(); }
};

}  // namespace ssidb

#endif  // SSIDB_TXN_TRANSACTION_H_
