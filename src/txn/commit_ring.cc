#include "src/txn/commit_ring.h"

#include <algorithm>
#include <chrono>

namespace ssidb {

CommitRing::CommitRing(uint64_t slots)
    : mask_(RoundUpPow2(slots, /*floor=*/2) - 1),
      slots_(new std::atomic<Timestamp>[mask_ + 1]()),
      waiter_mask_(TopologyShards(/*floor=*/16) - 1),
      waiters_(new WaiterShard[waiter_mask_ + 1]) {}

Timestamp CommitRing::Allocate() {
  const Timestamp ts = clock_.fetch_add(1, std::memory_order_relaxed) + 1;
  // Window-depth high-water mark. The watermark load is seq_cst: a stale
  // (relaxed) read could lawfully run many commits behind and inflate the
  // sampled depth past the true uncovered window, which stats consumers
  // bound by the concurrent-writer count.
  const Timestamp s = stable_.load(std::memory_order_seq_cst);
  const uint64_t depth = ts - s;
  uint64_t prev = max_depth_.load(std::memory_order_relaxed);
  while (prev < depth &&
         !max_depth_.compare_exchange_weak(prev, depth,
                                           std::memory_order_relaxed)) {
  }
  return ts;
}

void CommitRing::Publish(Timestamp ts) {
  const uint64_t n = mask_ + 1;
  if (ts > n) {
    // Slot reuse: the previous occupant (ts - N) must be covered before
    // its slot value may be destroyed, or the watermark scan could no
    // longer prove that older commit stamped. The oldest in-flight commit
    // always passes this test (see header), so the pipeline cannot wedge.
    const Timestamp reuse_floor = ts - n;
    if (stable_.load(std::memory_order_acquire) < reuse_floor) {
      full_stalls_.fetch_add(1, std::memory_order_relaxed);
      if (trace_ != nullptr) {
        trace_->Emit(obs::TraceEvent::kRingStall, /*txn=*/0, /*arg16=*/0,
                     /*arg32=*/static_cast<uint32_t>(n), reuse_floor);
      }
      // Backpressure parks are counted by full_stalls_ alone — never as
      // commit-ack waits, so DBStats keeps the two distinguishable.
      WaitUntilCovered(reuse_floor, nullptr);
    }
  }
  // Release: a scanner that reads this slot value acquires every version
  // stamp (and shard max-commit-ts hint) performed before Publish.
  slots_[ts & mask_].store(ts, std::memory_order_release);
  Drive();
}

void CommitRing::Drive() {
  // Completions drain into a local list and run only after the CAS loop
  // exhausts: callbacks see the watermark as far forward as this drive
  // could push it, and they run with no ring mutex held, so a completion
  // may itself re-enter Drive (the acknowledgment backstop does).
  std::vector<Completion> ready;
  for (;;) {
    Timestamp s = stable_.load(std::memory_order_acquire);
    // Collect the run of consecutively stamped slots, then advance the
    // watermark over the whole run with one CAS. Bounded by the in-flight
    // window (<= ring size).
    Timestamp end = s;
    while (slots_[(end + 1) & mask_].load(std::memory_order_acquire) ==
           end + 1) {
      ++end;
    }
    if (end == s) break;
    if (stable_.compare_exchange_strong(s, end, std::memory_order_seq_cst,
                                        std::memory_order_acquire)) {
      WakeCovered(s, end, &ready);
      // A slot just past `end` may have been stamped while we scanned;
      // loop to pick it up (otherwise its owner — who saw our CAS in
      // flight — could be left waiting with no later driver).
      continue;
    }
    // Lost the CAS to a concurrent driver that advanced past s; rescan
    // from the new watermark.
  }
  for (Completion& fn : ready) fn();
}

void CommitRing::WakeCovered(Timestamp from, Timestamp to,
                             std::vector<Completion>* ready) {
  // Waiters for ts park on shard ts & waiter_mask_; only shards owning a
  // newly covered timestamp can hold a waiter (or completion) this
  // advance releases. If the advance spans every shard, every shard
  // qualifies.
  const uint64_t span = std::min<uint64_t>(to - from, waiter_mask_ + 1);
  for (uint64_t i = 1; i <= span; ++i) {
    WaiterShard& w = waiters_[(from + i) & waiter_mask_];
    const bool waiters = w.count.load(std::memory_order_seq_cst) != 0;
    const bool completions =
        w.comp_count.load(std::memory_order_seq_cst) != 0;
    if (!waiters && !completions) continue;
    {
      // With no completions to take this is the empty critical section
      // that serializes with a waiter between its final predicate check
      // and its sleep, so the notify cannot be lost.
      std::lock_guard<std::mutex> guard(w.mu);
      if (completions) TakeCoveredLocked(&w, to, ready);
    }
    if (waiters) {
      wakeups_issued_.fetch_add(1, std::memory_order_relaxed);
      w.cv.notify_all();
    }
  }
}

void CommitRing::TakeCoveredLocked(WaiterShard* w, Timestamp cover,
                                   std::vector<Completion>* ready) {
  // `cover` may trail the live watermark; entries it leaves behind belong
  // to a later advance (whose WakeCovered span includes this shard) or to
  // the registrant's own re-check drain.
  auto& list = w->completions;
  size_t taken = 0;
  for (size_t i = 0; i < list.size();) {
    if (list[i].ts <= cover) {
      ready->push_back(std::move(list[i].fn));
      list[i] = std::move(list.back());
      list.pop_back();
      ++taken;
    } else {
      ++i;
    }
  }
  if (taken != 0) {
    w->comp_count.fetch_sub(static_cast<uint32_t>(taken),
                            std::memory_order_seq_cst);
  }
}

void CommitRing::DrainShard(WaiterShard* w) {
  const Timestamp cover = stable_.load(std::memory_order_seq_cst);
  std::vector<Completion> ready;
  {
    std::lock_guard<std::mutex> guard(w->mu);
    TakeCoveredLocked(w, cover, &ready);
  }
  for (Completion& fn : ready) fn();
}

void CommitRing::OnCovered(Timestamp ts, Completion fn) {
  if (stable_.load(std::memory_order_seq_cst) >= ts) {
    fn();
    return;
  }
  WaiterShard& w = waiters_[ts & waiter_mask_];
  {
    std::lock_guard<std::mutex> guard(w.mu);
    w.completions.push_back(PendingCompletion{ts, std::move(fn)});
    w.comp_count.fetch_add(1, std::memory_order_seq_cst);
  }
  // Registration re-check, mirroring the blocking waiter's count-then-
  // check: if a driver CASed past ts before our insert was visible to its
  // drain, this seq_cst load is ordered after that CAS and sees coverage,
  // so we drain our own shard. Exactly-once holds because removal happens
  // under w.mu (a racing drain and this one split the list, never share
  // an entry).
  if (stable_.load(std::memory_order_seq_cst) >= ts) {
    DrainShard(&w);
  }
}

void CommitRing::WaitCovered(Timestamp ts) {
  WaitUntilCovered(ts, &waits_parked_);
}

void CommitRing::WaitUntilCovered(Timestamp ts,
                                  std::atomic<uint64_t>* park_counter) {
  if (stable_.load(std::memory_order_seq_cst) >= ts) return;
  WaiterShard& w = waiters_[ts & waiter_mask_];
  // Count first (seq_cst), then re-check: see the missed-wakeup argument
  // in the header.
  w.count.fetch_add(1, std::memory_order_seq_cst);
  // Self-drive before parking. Release/acquire alone does not force a
  // concurrent driver's scan to observe our just-published slot store; if
  // that driver was the last one (we are the newest commit), no later
  // Publish would ever rescan and we would park forever. Our own store is
  // visible to our own scan by program order, so driving here closes the
  // last-publisher case outright.
  Drive();
  if (stable_.load(std::memory_order_seq_cst) >= ts) {
    w.count.fetch_sub(1, std::memory_order_release);
    return;
  }
  if (park_counter != nullptr) {
    park_counter->fetch_add(1, std::memory_order_relaxed);
  }
  {
    std::unique_lock<std::mutex> guard(w.mu);
    for (;;) {
      const bool covered =
          w.cv.wait_for(guard, std::chrono::milliseconds(1), [&] {
            return stable_.load(std::memory_order_seq_cst) >= ts;
          });
      if (covered) break;
      // Timed out: re-drive as a visibility backstop (the abstract
      // machine only promises stores become visible in *finite* time, so
      // a bounded re-scan guarantees liveness no matter which driver's
      // scan went stale). Never taken on the wakeup fast path.
      guard.unlock();
      Drive();
      guard.lock();
      if (stable_.load(std::memory_order_seq_cst) >= ts) break;
    }
  }
  w.count.fetch_sub(1, std::memory_order_release);
}

void CommitRing::AdvanceTo(Timestamp ts) {
  Timestamp cur = clock_.load(std::memory_order_relaxed);
  while (cur < ts &&
         !clock_.compare_exchange_weak(cur, ts, std::memory_order_relaxed)) {
  }
  cur = stable_.load(std::memory_order_relaxed);
  while (cur < ts &&
         !stable_.compare_exchange_weak(cur, ts, std::memory_order_seq_cst)) {
  }
}

}  // namespace ssidb
