#include "src/txn/executor.h"

#include <cassert>
#include <unordered_set>
#include <vector>

#include "src/common/encoding.h"

namespace ssidb {

Executor::Executor(const DBOptions& options, Catalog* catalog,
                   TxnManager* txns, LockManager* locks,
                   ConflictTracker* tracker, sgt::HistoryRecorder* history)
    : options_(options),
      catalog_(catalog),
      txns_(txns),
      locks_(locks),
      tracker_(tracker),
      history_(history),
      sample_mask_(obs::SampleMask(options.metrics_sample_period)) {}

void Executor::RegisterMetrics(obs::MetricsRegistry* registry,
                               obs::TraceRing* trace) {
  registry->RegisterHistogram("read.hit_ns", &read_hit_ns_);
  registry->RegisterHistogram("read.fault_ns", &read_fault_ns_);
  trace_ = trace;
}

Status Executor::CheckUsable(TxnCtx& txn) {
  if (txn.finished) {
    return Status::TxnInvalid("transaction already finished");
  }
  if (txn.state->marked_for_abort.load(std::memory_order_acquire)) {
    // §3.7.2: another transaction's conflict processing chose us as the
    // victim; honour the mark at the next operation.
    const Status reason = txn.state->abort_reason;
    return AbortWith(txn, reason.ok() ? Status::Unsafe("marked for abort")
                                      : reason);
  }
  return Status::OK();
}

void Executor::EnsureSnapshot(TxnCtx& txn) {
  txns_->EnsureSnapshot(txn.state.get());
  if (!txn.history_begin_recorded && history_ != nullptr) {
    history_->Begin(txn.state->id, txn.state->read_ts.load());
    txn.history_begin_recorded = true;
  }
}

Status Executor::AbortWith(TxnCtx& txn, const Status& cause) {
  // Taxonomy fallback from the status code. SetAbortCause is
  // first-writer-wins, so a more specific classification made at the
  // decision site (conflict tracker, FCW check) survives this mapping.
  TxnState* state = txn.state.get();
  if (cause.IsDeadlock()) {
    state->SetAbortCause(AbortReason::kDeadlock, 0);
  } else if (cause.IsTimedOut()) {
    state->SetAbortCause(AbortReason::kLockTimeout, 0);
  } else if (cause.IsUpdateConflict()) {
    state->SetAbortCause(AbortReason::kFcwRow, 0);
  } else if (cause.IsIOError()) {
    state->SetAbortCause(AbortReason::kTierIo, 0);
  } else if (cause.IsUnsafe()) {
    state->SetAbortCause(AbortReason::kSsiPivot, 0);
  }
  txns_->Abort(txn.state);
  if (!txn.finished && history_ != nullptr) {
    history_->Abort(txn.state->id);
  }
  txn.finished = true;
  return cause;
}

const LockKey& Executor::RowLockKeyInto(TxnCtx& txn, TableId table,
                                        Slice key) const {
  if (options_.granularity == LockGranularity::kPage) {
    txn.scratch_row_key.Assign(
        table, LockKind::kPage,
        EncodeU64Key(Table::PageOf(key, options_.rows_per_page)));
  } else {
    txn.scratch_row_key.Assign(table, LockKind::kRow, key);
  }
  return txn.scratch_row_key;
}

const LockKey& Executor::GapLockKeyInto(
    TxnCtx& txn, TableId table,
    const std::optional<std::string>& next_key) const {
  if (!next_key.has_value()) {
    txn.scratch_gap_key.Assign(table, LockKind::kSupremum, Slice());
  } else {
    txn.scratch_gap_key.Assign(table, LockKind::kGap, *next_key);
  }
  return txn.scratch_gap_key;
}

Status Executor::AcquireAndMark(TxnCtx& txn, const LockKey& lk,
                                LockMode mode) {
  assert(mode != LockMode::kSIRead);  // SIREAD uses AcquireSIReadAndMark.
  TxnState* state = txn.state.get();
  AcquireResult r = locks_->Acquire(state->id, lk, mode);
  if (!r.status.ok()) {
    return AbortWith(txn, r.status);
  }
  if (state->isolation == IsolationLevel::kSerializableSSI &&
      mode == LockMode::kExclusive) {
    for (TxnId other : r.rw_conflicts) {
      // Fig 3.5 line 4: the writer found SIREAD holders.
      Status st = tracker_->OnWriterSawSIReadHolder(state, other);
      if (!st.ok()) {
        return AbortWith(txn, st);
      }
    }
  }
  if (state->marked_for_abort.load(std::memory_order_acquire)) {
    const Status reason = state->abort_reason;
    return AbortWith(txn, reason.ok() ? Status::Unsafe("marked for abort")
                                      : reason);
  }
  return Status::OK();
}

Status Executor::AcquireSIReadAndMark(TxnCtx& txn, TableId table,
                                      LockKind kind, Slice key) {
  TxnState* state = txn.state.get();
  RwConflicts writers;
  locks_->AcquireSIRead(state->id, table, kind, key, &writers);
  for (TxnId other : writers) {
    // Fig 3.4 line 3: the reader found an EXCLUSIVE holder.
    Status st = tracker_->OnReaderSawExclusiveHolder(state, other);
    if (!st.ok()) {
      return AbortWith(txn, st);
    }
  }
  if (state->marked_for_abort.load(std::memory_order_acquire)) {
    const Status reason = state->abort_reason;
    return AbortWith(txn, reason.ok() ? Status::Unsafe("marked for abort")
                                      : reason);
  }
  return Status::OK();
}

Status Executor::ReadChainAndMark(TxnCtx& txn, const LockKey* page_lk,
                                  VersionChain* chain, std::string* value,
                                  ReadResult* out) {
  TxnState* state = txn.state.get();
  const bool locking_read =
      state->isolation == IsolationLevel::kSerializable2PL;
  const Timestamp read_ts =
      locking_read ? kMaxTimestamp : state->read_ts.load();
  if (chain != nullptr) {
    *out = chain->Read(state->id, read_ts, value);
  } else {
    *out = ReadResult{};
  }
  if (state->isolation != IsolationLevel::kSerializableSSI) {
    return Status::OK();
  }
  // Fig 3.4 lines 8-9: every ignored newer committed version is an
  // rw-antidependency from this reader to its creator.
  for (const NewerVersionInfo& n : out->newer) {
    Status st =
        tracker_->MarkReadOfNewerVersion(state, n.creator_txn_id, n.commit_ts);
    if (!st.ok()) {
      return AbortWith(txn, st);
    }
  }
  if (options_.granularity == LockGranularity::kPage) {
    // §4.2: Berkeley DB versions whole pages, so reading any row of a page
    // whose newest committed page version postdates the snapshot is a
    // conflict with that version's creator — even if the row itself is
    // unchanged. This is the source of the paper's page-level false
    // positives (§6.1.5). The page key was computed once by the caller
    // (it is the operation's lock key) and flows through here.
    assert(page_lk != nullptr && page_lk->kind == LockKind::kPage);
    Timestamp ts = 0;
    TxnId creator = 0;
    if (txns_->PageLastWrite(*page_lk, &ts, &creator) && ts > read_ts &&
        creator != state->id) {
      Status st = tracker_->MarkReadOfNewerVersion(state, creator, ts);
      if (!st.ok()) {
        return AbortWith(txn, st);
      }
    }
  }
  return Status::OK();
}

Status Executor::ReadChainFaulting(TxnCtx& txn, Table* t, Slice key,
                                   const LockKey* page_lk,
                                   VersionChain* chain, std::string* value,
                                   ReadResult* out) {
  // Hit latency is sampled; once a fault fires the I/O dominates, so an
  // unsampled read starts its clock at the first fault and the fault
  // histogram stays complete either way.
  const bool sampled = obs::SampleTick(sample_mask_);
  uint64_t t0 = sampled ? obs::NowNanos() : 0;
  int attempt = 0;
  // A faulted chain can in principle be re-evicted by the sweeper between
  // our install and the re-read; the bound turns a pathological loop into
  // an abort the application can retry.
  for (;; ++attempt) {
    Status st = ReadChainAndMark(txn, page_lk, chain, value, out);
    if (!st.ok()) return st;
    if (!out->evicted) break;
    if (attempt >= 8) {
      return AbortWith(txn, Status::IOError("version fault retry limit"));
    }
    if (attempt == 0 && !sampled) t0 = obs::NowNanos();
    st = t->FaultChain(key, chain);
    if (!st.ok()) return AbortWith(txn, st);
  }
  if (attempt > 0) {
    const uint64_t ns = obs::NowNanos() - t0;
    read_fault_ns_.Record(ns);
    if (trace_ != nullptr) {
      trace_->Emit(obs::TraceEvent::kFault, txn.state->id,
                   /*arg16=*/0, /*arg32=*/static_cast<uint32_t>(attempt), ns);
    }
  } else if (sampled) {
    read_hit_ns_.Record(obs::NowNanos() - t0);
  }
  return Status::OK();
}

Status Executor::Get(TxnCtx& txn, TableId table, Slice key,
                     std::string* value) {
  Status st = CheckUsable(txn);
  if (!st.ok()) return st;
  Table* t = catalog_->table(table);
  if (t == nullptr) return Status::InvalidArgument("unknown table");
  TxnState* state = txn.state.get();

  const bool page_mode = options_.granularity == LockGranularity::kPage;
  const LockKey* page_lk = nullptr;
  switch (state->isolation) {
    case IsolationLevel::kSerializable2PL:
      EnsureSnapshot(txn);
      st = AcquireAndMark(txn, RowLockKeyInto(txn, table, key),
                          LockMode::kShared);
      break;
    case IsolationLevel::kSerializableSSI:
      EnsureSnapshot(txn);
      if (page_mode) {
        // The page key is materialized once (scratch) and shared with the
        // §4.2 page-conflict check below.
        const LockKey& lk = RowLockKeyInto(txn, table, key);
        page_lk = &lk;
        st = AcquireSIReadAndMark(txn, table, LockKind::kPage, lk.key);
      } else {
        // Hot path: the SIREAD publication and the EXCLUSIVE-holder probe
        // take the key as a Slice — no LockKey, no copy, no allocation.
        st = AcquireSIReadAndMark(txn, table, LockKind::kRow, key);
      }
      break;
    case IsolationLevel::kSnapshot:
      EnsureSnapshot(txn);
      break;
  }
  if (!st.ok()) return st;

  VersionChain* chain = t->Find(key);
  ReadResult rr;
  st = ReadChainFaulting(txn, t, key, page_lk, chain, value, &rr);
  if (!st.ok()) return st;

  if (history_ != nullptr) {
    history_->Read(state->id, table, key, rr.version_cts, rr.own_write);
  }
  return rr.found ? Status::OK() : Status::NotFound();
}

Status Executor::GetForUpdate(TxnCtx& txn, TableId table, Slice key,
                              std::string* value) {
  Status st = CheckUsable(txn);
  if (!st.ok()) return st;
  Table* t = catalog_->table(table);
  if (t == nullptr) return Status::InvalidArgument("unknown table");
  TxnState* state = txn.state.get();

  // The write protocol's front half (§2.6.2 promotion semantics): lock
  // first, snapshot after (§4.5), then verify first-committer-wins. The
  // exclusive lock is held to commit, so the read "promotes" to an update
  // from every concurrent transaction's point of view.
  const LockKey& row_lk = RowLockKeyInto(txn, table, key);
  st = AcquireAndMark(txn, row_lk, LockMode::kExclusive);
  if (!st.ok()) return st;
  EnsureSnapshot(txn);

  const bool page_mode = options_.granularity == LockGranularity::kPage;
  const LockKey* page_lk = page_mode ? &row_lk : nullptr;

  VersionChain* chain = t->Find(key);
  if (chain != nullptr &&
      state->isolation != IsolationLevel::kSerializable2PL) {
    st = CheckFirstCommitterWins(txn, chain, row_lk);
    if (!st.ok()) return AbortWith(txn, st);
  }

  std::string local;
  if (value == nullptr) value = &local;
  ReadResult rr;
  st = ReadChainFaulting(txn, t, key, page_lk, chain, value, &rr);
  if (!st.ok()) return st;
  if (history_ != nullptr) {
    history_->Read(state->id, table, key, rr.version_cts, rr.own_write);
  }
  if (rr.found && !rr.own_write) {
    // Oracle semantics (§2.6.2): the locking read is "treated for
    // concurrency control exactly like an update" — install an identity
    // version so a concurrent writer's first-committer-wins check sees
    // this transaction's commit. Without it, the PostgreSQL interleaving
    // the paper documents (SFU commits, concurrent write slips through)
    // would be admitted.
    bool replaced_own = false;
    Version* v = chain->InstallUncommitted(state->id, *value,
                                           /*tombstone=*/false,
                                           &replaced_own);
    if (!replaced_own) {
      state->write_set.push_back(
          TxnState::WriteRecord{table, key.ToString(), chain, v, t});
    }
    if (page_mode && !replaced_own) {
      state->page_writes.push_back(row_lk);
    }
    if (history_ != nullptr) {
      history_->Write(state->id, table, key, /*tombstone=*/false);
    }
  }
  return rr.found ? Status::OK() : Status::NotFound();
}

Status Executor::CheckFirstCommitterWins(TxnCtx& txn, VersionChain* chain,
                                         const LockKey& row_lk) {
  const Timestamp read_ts = txn.state->read_ts.load();
  if (chain->HasCommittedVersionAfter(read_ts)) {
    txn.state->SetAbortCause(AbortReason::kFcwRow, 0);
    return Status::UpdateConflict("newer committed version");
  }
  if (options_.granularity == LockGranularity::kPage &&
      txns_->PageLastWriteTs(row_lk) > read_ts) {
    // §4.2: Berkeley DB applies first-committer-wins per page.
    txn.state->SetAbortCause(AbortReason::kFcwPage, 0);
    return Status::UpdateConflict("page modified since snapshot");
  }
  return Status::OK();
}

Status Executor::WriteImpl(TxnCtx& txn, TableId table, Slice key, Slice value,
                           WriteKind kind) {
  Status st = CheckUsable(txn);
  if (!st.ok()) return st;
  Table* t = catalog_->table(table);
  if (t == nullptr) return Status::InvalidArgument("unknown table");
  if (key.empty()) return Status::InvalidArgument("empty key");
  TxnState* state = txn.state.get();

  const bool new_index_entry = t->Find(key) == nullptr;
  const LockKey& row_lk = RowLockKeyInto(txn, table, key);

  // §4.5: the exclusive lock is acquired *before* the snapshot is chosen,
  // so a single-statement update always sees the latest committed version
  // and never aborts under first-committer-wins.
  st = AcquireAndMark(txn, row_lk, LockMode::kExclusive);
  if (!st.ok()) return st;

  if (new_index_entry && options_.granularity == LockGranularity::kRow) {
    // Fig 3.7: inserts take the gap lock on next(key) — an insert-intention
    // exclusive that conflicts with scanners' gap locks but not with other
    // inserts into the same gap (InnoDB semantics). Page locks subsume
    // phantoms in kPage mode (§3.5).
    st = AcquireAndMark(txn, GapLockKeyInto(txn, table, t->NextKey(key)),
                        LockMode::kExclusive);
    if (!st.ok()) return st;
  }

  EnsureSnapshot(txn);

  VersionChain* chain = t->GetOrCreate(key);

  if (state->isolation != IsolationLevel::kSerializable2PL) {
    st = CheckFirstCommitterWins(txn, chain, row_lk);
    if (!st.ok()) return AbortWith(txn, st);
  }

  // Visibility-dependent semantics: duplicate detection for Insert,
  // existence for Delete. These return without aborting — statement-level
  // errors the application may handle (SmallBank rolls back explicitly on
  // unknown customer names, §2.8.3).
  if (kind != WriteKind::kUpsert) {
    const Timestamp read_ts =
        state->isolation == IsolationLevel::kSerializable2PL
            ? kMaxTimestamp
            : state->read_ts.load();
    ReadResult rr = chain->Read(state->id, read_ts, nullptr);
    for (int attempt = 0; rr.evicted; ++attempt) {
      // The duplicate/existence verdict may hinge on the spilled anchor
      // (e.g. its tombstone): fault it back before deciding.
      if (attempt >= 8) {
        return AbortWith(txn, Status::IOError("version fault retry limit"));
      }
      st = t->FaultChain(key, chain);
      if (!st.ok()) return AbortWith(txn, st);
      rr = chain->Read(state->id, read_ts, nullptr);
    }
    if (kind == WriteKind::kInsert && rr.found) {
      return Status::DuplicateKey();
    }
    if (kind == WriteKind::kDelete && !rr.found) {
      return Status::NotFound();
    }
  }

  bool replaced_own = false;
  Version* v = chain->InstallUncommitted(
      state->id, value, kind == WriteKind::kDelete, &replaced_own);
  if (!replaced_own) {
    state->write_set.push_back(
        TxnState::WriteRecord{table, key.ToString(), chain, v, t});
    // Inline GC: drop versions no active snapshot (nor any in-progress
    // checkpoint sweep) can reach.
    const size_t freed = chain->Prune(txns_->prune_horizon());
    if (freed > 0) {
      versions_pruned_.fetch_add(freed, std::memory_order_relaxed);
    }
  }
  if (options_.granularity == LockGranularity::kPage && !replaced_own) {
    state->page_writes.push_back(row_lk);
  }

  if (history_ != nullptr) {
    history_->Write(state->id, table, key, kind == WriteKind::kDelete);
  }
  return Status::OK();
}

Status Executor::Put(TxnCtx& txn, TableId table, Slice key, Slice value) {
  return WriteImpl(txn, table, key, value, WriteKind::kUpsert);
}

Status Executor::Insert(TxnCtx& txn, TableId table, Slice key, Slice value) {
  return WriteImpl(txn, table, key, value, WriteKind::kInsert);
}

Status Executor::Delete(TxnCtx& txn, TableId table, Slice key) {
  return WriteImpl(txn, table, key, Slice(), WriteKind::kDelete);
}

Status Executor::Scan(TxnCtx& txn, TableId table, Slice lo, Slice hi,
                      const ScanCallback& fn) {
  Status st = CheckUsable(txn);
  if (!st.ok()) return st;
  Table* t = catalog_->table(table);
  if (t == nullptr) return Status::InvalidArgument("unknown table");
  if (hi.compare(lo) < 0) return Status::InvalidArgument("hi < lo");
  TxnState* state = txn.state.get();

  const IsolationLevel iso = state->isolation;
  EnsureSnapshot(txn);

  std::vector<ScanEntry> entries;
  std::optional<std::string> successor;
  t->CollectRange(lo, hi, &entries, &successor);

  const bool take_locks = iso != IsolationLevel::kSnapshot;
  const bool ssi = iso == IsolationLevel::kSerializableSSI;
  const bool page_mode = options_.granularity == LockGranularity::kPage;

  // One visited entry: row (or page) lock plus the gap below it. SSI
  // scans ride the allocation-free SIREAD lane; S2PL scans take blocking
  // shared locks through reused scratch keys.
  auto lock_entry = [&](Slice entry_key) {
    if (ssi) {
      Status s = AcquireSIReadAndMark(txn, table, LockKind::kRow, entry_key);
      if (!s.ok()) return s;
      return AcquireSIReadAndMark(txn, table, LockKind::kGap, entry_key);
    }
    Status s = AcquireAndMark(txn, RowLockKeyInto(txn, table, entry_key),
                              LockMode::kShared);
    if (!s.ok()) return s;
    txn.scratch_gap_key.Assign(table, LockKind::kGap, entry_key);
    return AcquireAndMark(txn, txn.scratch_gap_key, LockMode::kShared);
  };
  auto lock_successor_gap = [&](const std::optional<std::string>& next) {
    if (ssi) {
      return next.has_value()
                 ? AcquireSIReadAndMark(txn, table, LockKind::kGap, *next)
                 : AcquireSIReadAndMark(txn, table, LockKind::kSupremum,
                                        Slice());
    }
    return AcquireAndMark(txn, GapLockKeyInto(txn, table, next),
                          LockMode::kShared);
  };

  if (take_locks) {
    if (!page_mode) {
      // Next-key locking (§2.5.2 / Fig 3.6): each visited entry gets a row
      // lock plus the gap below it; the gap below the successor protects
      // (last entry, successor), so inserts anywhere in [lo, hi] conflict.
      for (const ScanEntry& e : entries) {
        st = lock_entry(e.key);
        if (!st.ok()) return st;
      }
      st = lock_successor_gap(successor);
      if (!st.ok()) return st;
    } else {
      // Page granularity: every page overlapping [lo, hi] must be read-
      // locked, or an insert into an *empty interior page* — one no
      // current entry occupies — would slip past phantom detection: the
      // writer locks only its own page, and none of our entry-derived
      // page locks collide with it. For 8-byte keys the page image of
      // [lo, hi] is the contiguous interval [PageOf(lo), PageOf(hi)]
      // (PageOf divides the decoded key), so lock exactly that interval.
      // Bounded by kMaxScanPageInterval so an unbounded range (the whole
      // key space is ~2^61 pages) degrades to the entry+bounds cover
      // rather than locking forever; non-8-byte keys hash to pages, so
      // the range has no contiguous page image and also keeps the
      // entry+bounds cover. In both fallback cases the residual hole is
      // exactly the empty interior buckets (non-empty ones are locked
      // via their entries).
      auto lock_page = [&](uint64_t p) {
        txn.scratch_row_key.Assign(table, LockKind::kPage, EncodeU64Key(p));
        if (ssi) {
          return AcquireSIReadAndMark(txn, table, LockKind::kPage,
                                      txn.scratch_row_key.key);
        }
        return AcquireAndMark(txn, txn.scratch_row_key, LockMode::kShared);
      };
      const uint64_t lo_page = Table::PageOf(lo, options_.rows_per_page);
      const uint64_t hi_page = Table::PageOf(hi, options_.rows_per_page);
      constexpr uint64_t kMaxScanPageInterval = 4096;
      if (lo.size() == 8 && hi.size() == 8 && lo_page <= hi_page &&
          hi_page - lo_page <= kMaxScanPageInterval) {
        for (uint64_t p = lo_page; p <= hi_page; ++p) {
          st = lock_page(p);
          if (!st.ok()) return st;
        }
      } else {
        std::unordered_set<uint64_t> pages;
        pages.insert(lo_page);
        pages.insert(hi_page);
        for (const ScanEntry& e : entries) {
          pages.insert(Table::PageOf(e.key, options_.rows_per_page));
        }
        for (uint64_t p : pages) {
          st = lock_page(p);
          if (!st.ok()) return st;
        }
      }
    }

    // Close the collect/lock race: an insert that committed and released
    // its gap lock between CollectRange and our acquisitions is invisible
    // to the lock table, but its version's commit timestamp postdates our
    // snapshot, so a second collection plus the modified read detects the
    // rw-conflict. Inserts *after* our gap locks are caught by the lock
    // table (the writer's probe sees our SIREAD/S locks).
    std::vector<ScanEntry> recheck;
    std::optional<std::string> successor2;
    t->CollectRange(lo, hi, &recheck, &successor2);
    if (recheck.size() != entries.size()) {
      if (!page_mode) {
        std::unordered_set<std::string_view> known;
        for (const ScanEntry& e : entries) known.insert(e.key);
        for (const ScanEntry& e : recheck) {
          if (known.count(e.key) > 0) continue;
          st = lock_entry(e.key);
          if (!st.ok()) return st;
        }
      }
      entries = std::move(recheck);
    }
  }

  const Timestamp scan_snapshot = iso == IsolationLevel::kSerializable2PL
                                      ? txns_->clock_now()
                                      : state->read_ts.load();

  std::string value;
  for (const ScanEntry& e : entries) {
    const LockKey* page_lk = nullptr;
    if (ssi && page_mode) {
      // Reuse the scratch key for each entry's §4.2 page check.
      page_lk = &RowLockKeyInto(txn, table, e.key);
    }
    ReadResult rr;
    st = ReadChainFaulting(txn, t, e.key, page_lk, e.chain, &value, &rr);
    if (!st.ok()) return st;
    if (history_ != nullptr) {
      history_->Read(state->id, table, e.key, rr.version_cts, rr.own_write);
    }
    if (rr.found) {
      if (!fn(e.key, value)) break;
    }
  }

  if (history_ != nullptr) {
    history_->Scan(state->id, table, lo, hi, scan_snapshot);
  }
  return Status::OK();
}

Status Executor::Commit(TxnCtx& txn) {
  if (txn.finished) {
    return Status::TxnInvalid("transaction already finished");
  }
  TxnState* state = txn.state.get();
  // Capture per-key redo from the write set: enough for WAL replay to
  // reinstall each committed version (table, key, value/tombstone).
  std::vector<RedoEntry> redo;
  redo.reserve(state->write_set.size());
  for (const TxnState::WriteRecord& w : state->write_set) {
    redo.push_back(RedoEntry{w.table, w.key, w.version->value,
                             w.version->tombstone});
  }

  TxnManager::CommitCheck check;
  if (state->isolation == IsolationLevel::kSerializableSSI) {
    ConflictTracker* tracker = tracker_;
    check = [tracker](TxnState* t) { return tracker->CommitCheck(t); };
  }

  const Status st = txns_->Commit(txn.state, check, std::move(redo));
  txn.finished = true;
  if (history_ != nullptr) {
    // kIOError means committed-in-memory but not durable: the history
    // oracle reasons about the in-memory execution, so it is a commit.
    if (st.ok() || st.IsIOError()) {
      history_->Commit(state->id, state->commit_ts.load());
    } else {
      history_->Abort(state->id);
    }
  }
  return st;
}

void Executor::CommitAsync(TxnCtx& txn, TxnManager::CommitCallback done) {
  if (txn.finished) {
    done(Status::TxnInvalid("transaction already finished"));
    return;
  }
  // Everything the acknowledgment path needs outlives the TxnCtx: the
  // TxnState travels by shared_ptr, the redo by value, the recorder by
  // pointer (it is engine-lifetime and mutex-guarded).
  std::shared_ptr<TxnState> state = txn.state;
  std::vector<RedoEntry> redo;
  redo.reserve(state->write_set.size());
  for (const TxnState::WriteRecord& w : state->write_set) {
    redo.push_back(RedoEntry{w.table, w.key, w.version->value,
                             w.version->tombstone});
  }

  TxnManager::CommitCheck check;
  if (state->isolation == IsolationLevel::kSerializableSSI) {
    ConflictTracker* tracker = tracker_;
    check = [tracker](TxnState* t) { return tracker->CommitCheck(t); };
  }

  // Finished at submit: the handle's job ends here, the outcome arrives
  // via `done`. Set before the call because an inline acknowledgment
  // (read-only, non-durable, or abort) fires inside it.
  txn.finished = true;
  sgt::HistoryRecorder* history = history_;
  txns_->CommitAsync(
      state, check, std::move(redo),
      [history, state, done = std::move(done)](Status st) {
        if (history != nullptr) {
          // kIOError means committed-in-memory but not durable: the
          // history oracle reasons about the in-memory execution, so it
          // is a commit.
          if (st.ok() || st.IsIOError()) {
            history->Commit(state->id, state->commit_ts.load());
          } else {
            history->Abort(state->id);
          }
        }
        done(st);
      });
}

Status Executor::Abort(TxnCtx& txn) {
  if (txn.finished) {
    return Status::OK();
  }
  txn.state->SetAbortCause(AbortReason::kExplicit, 0);
  txns_->Abort(txn.state);
  if (history_ != nullptr) {
    history_->Abort(txn.state->id);
  }
  txn.finished = true;
  return Status::OK();
}

}  // namespace ssidb
