#include "src/txn/txn_manager.h"

#include <cassert>

#include "src/storage/table.h"

namespace ssidb {

namespace {
/// CleanupSuspended sweeps the page first-committer-wins shards every this
/// many invocations (kPage granularity only): O(map/period) amortized per
/// commit, and a test that wants a sweep just commits this many times.
constexpr uint64_t kPageSweepPeriod = 16;
}  // namespace

TxnManager::TxnManager(const DBOptions& options, LockManager* lock_manager,
                       LogManager* log_manager)
    : options_(options),
      lock_manager_(lock_manager),
      log_manager_(log_manager),
      ring_(options.commit_ring_slots),
      combiner_(&ring_, /*slots=*/0, options.certification_batching),
      sample_mask_(obs::SampleMask(options.metrics_sample_period)),
      shard_mask_(RoundUpPow2(options.txn_registry_shards != 0
                                  ? options.txn_registry_shards
                                  : TopologyShards(),
                              /*floor=*/1) -
                  1),
      shards_(new RegistryShard[shard_mask_ + 1]),
      suspended_(/*slots=*/0),
      // kRow engines never touch the page-FCW map; one token shard.
      page_shard_mask_(options.granularity == LockGranularity::kPage
                           ? TopologyShards(/*floor=*/4) - 1
                           : 0),
      page_shards_(new PageShard[page_shard_mask_ + 1]) {}

TxnManager::~TxnManager() {
  // Join the group-commit flusher before any member is torn down: a flush
  // subscription registered by FinalizeCovered runs FinalizeAcked (ring
  // drive, suspended cleanup) on the flusher thread, and that tail can
  // still be running after the client's `done` callback already fired.
  if (log_manager_ != nullptr) log_manager_->Quiesce();
}

void TxnManager::RegisterMetrics(obs::MetricsRegistry* registry,
                                 obs::TraceRing* trace) {
  registry->RegisterHistogram("commit.certify_ns", &certify_ns_);
  registry->RegisterHistogram("commit.stamp_publish_ns", &stamp_publish_ns_);
  registry->RegisterHistogram("commit.watermark_ns", &watermark_ns_);
  registry->RegisterHistogram("commit.wal_append_ns", &wal_append_ns_);
  registry->RegisterHistogram("commit.fsync_wait_ns", &fsync_wait_ns_);
  registry->RegisterHistogram("commit.ack_lag_ns", &ack_lag_ns_);
  registry->RegisterHistogram("commit.total_ns", &total_ns_);
  registry->RegisterGauge("commit.inflight", [this] {
    return commits_inflight_.load(std::memory_order_relaxed);
  });
  trace_ = trace;
  ring_.set_trace(trace);
}

std::shared_ptr<TxnState> TxnManager::Begin(IsolationLevel isolation) {
  // Lock-free id allocation. Ids are a separate domain from commit
  // timestamps (the ring's commit clock); nothing compares across them.
  const TxnId id = id_clock_.fetch_add(1, std::memory_order_relaxed) + 1;
  auto txn = std::make_shared<TxnState>(id, isolation);
  const bool defer_snapshot =
      options_.late_snapshot && isolation != IsolationLevel::kSerializable2PL;
  RegistryShard& shard = ShardFor(id);
  std::lock_guard<std::mutex> guard(shard.mu);
  if (!defer_snapshot) {
    txn->read_ts.store(ClaimSnapshotLocked(&shard),
                       std::memory_order_release);
  }
  shard.txns.emplace(id, txn);
  shard.active.insert(txn.get());
  active_count_.fetch_add(1, std::memory_order_relaxed);
  // No PublishMinActive: a registration adds a constraint at or above the
  // current watermark, which can never raise the stored minimum.
  return txn;
}

void TxnManager::EnsureSnapshot(TxnState* txn) {
  if (txn->read_ts.load(std::memory_order_acquire) != 0) return;
  // The snapshot is the stable watermark: every commit at or below it has
  // finished stamping its versions, so the snapshot is consistent without
  // any global lock. The shard mutex only covers the cached-minimum
  // maintenance (a new, older snapshot may lower the shard's minimum).
  RegistryShard& shard = ShardFor(txn->id);
  std::lock_guard<std::mutex> guard(shard.mu);
  if (txn->read_ts.load(std::memory_order_relaxed) != 0) return;
  txn->read_ts.store(ClaimSnapshotLocked(&shard), std::memory_order_release);
}

Timestamp TxnManager::ClaimSnapshotLocked(RegistryShard* shard) {
  // Claim-then-read: pre-claim the shard minimum at a watermark lower
  // bound, THEN take the snapshot from a second watermark read. This is
  // what makes the lock-free aggregate in PublishMinActive safe against a
  // registrant paused mid-registration: if an aggregator's shard load
  // misses the pre-claim store, that store — and therefore the second
  // watermark read after it — is ordered after the aggregator's own
  // watermark read in the seq_cst total order, so the snapshot returned
  // here is >= the aggregator's base, and its aggregate (<= base) cannot
  // overshoot this transaction. If the shard load sees the pre-claim, the
  // aggregate is <= s0 <= the snapshot. Either way min_active_read_ts_
  // never exceeds a live snapshot.
  const Timestamp prev = shard->min_read_ts.load(std::memory_order_relaxed);
  const Timestamp s0 = ring_.stable();
  if (s0 < prev) {
    shard->min_read_ts.store(s0, std::memory_order_seq_cst);
  }
  const Timestamp snapshot = ring_.stable();
  // Settle the cache at the exact minimum: `prev` bounds every other
  // member (the cache was exact before the pre-claim), `snapshot` bounds
  // this registrant. Without this, a conservative pre-claim (s0 below
  // every member) would stick — NoteDepartureLocked's rescan-skip could
  // then never raise it again and version pruning would stall forever.
  const Timestamp exact = prev < snapshot ? prev : snapshot;
  if (exact != shard->min_read_ts.load(std::memory_order_relaxed)) {
    shard->min_read_ts.store(exact, std::memory_order_seq_cst);
  }
  return snapshot;
}

std::shared_ptr<TxnState> TxnManager::Find(TxnId id) const {
  RegistryShard& shard = ShardFor(id);
  std::lock_guard<std::mutex> guard(shard.mu);
  auto it = shard.txns.find(id);
  return it == shard.txns.end() ? nullptr : it->second;
}

void TxnManager::NoteDepartureLocked(RegistryShard* shard,
                                     Timestamp departed_read_ts) {
  // Skip the O(active) rescan unless the departing snapshot was (at or
  // below) the cached minimum. Sound because the cache is exact outside
  // ClaimSnapshotLocked's critical section (which this call, holding the
  // same shard mutex, cannot interleave with): a member above the minimum
  // leaving cannot change the minimum. An unassigned snapshot (0) never
  // constrained it.
  if (departed_read_ts != 0 &&
      departed_read_ts >
          shard->min_read_ts.load(std::memory_order_relaxed)) {
    return;
  }
  // Transactions with an unassigned (late) snapshot do not constrain the
  // minimum: their eventual read_ts will be >= the stable watermark at
  // assignment time, which is monotonic and floors the aggregate.
  Timestamp min_ts = kMaxTimestamp;
  for (const TxnState* t : shard->active) {
    const Timestamp ts = t->read_ts.load(std::memory_order_relaxed);
    if (ts != 0 && ts < min_ts) min_ts = ts;
  }
  shard->min_read_ts.store(min_ts, std::memory_order_release);
}

void TxnManager::PublishMinActive() {
  // Watermark FIRST (seq_cst — part of the checkpoint-floor total order),
  // then the shard minima (seq_cst loads, pairing with the pre-claim
  // stores): a registrant whose pre-claim a shard load misses performed
  // its snapshot-defining watermark read after ours (ClaimSnapshotLocked
  // re-reads the watermark after the claim), so its snapshot is >= `base`
  // >= the aggregate; a pre-claim a shard load sees bounds the aggregate
  // directly. So the aggregate never exceeds any live or future snapshot,
  // and CAS-max keeps the stored value monotonic.
  const Timestamp base = ring_.stable();
  Timestamp m = base;
  for (uint64_t i = 0; i <= shard_mask_; ++i) {
    const Timestamp v = shards_[i].min_read_ts.load(std::memory_order_seq_cst);
    if (v < m) m = v;
  }
  Timestamp cur = min_active_read_ts_.load(std::memory_order_relaxed);
  while (cur < m && !min_active_read_ts_.compare_exchange_weak(
                        cur, m, std::memory_order_seq_cst)) {
  }
}

Timestamp TxnManager::BeginCheckpointSweep() {
  // The watermark advances lock-free, so the floor cannot be made atomic
  // with the watermark read by a mutex. Instead: publish the floor at the
  // observed watermark and confirm by re-reading — if the watermark moved,
  // raise the floor and repeat. On return, floor(W) was stored BEFORE a
  // watermark load that still returned W; in the seq_cst total order every
  // advance past W is therefore ordered after the floor store, which is
  // what the prune_horizon() argument needs (see txn_manager.h). The loop
  // converges as soon as one store/load pair straddles no advance — at
  // most a handful of iterations even under a commit storm.
  Timestamp w = ring_.stable();
  for (;;) {
    checkpoint_floor_.store(w, std::memory_order_seq_cst);
    const Timestamp w2 = ring_.stable();
    if (w2 == w) return w;
    w = w2;
  }
}

void TxnManager::EndCheckpointSweep() {
  checkpoint_floor_.store(kMaxTimestamp, std::memory_order_seq_cst);
}

void TxnManager::AdvanceClockTo(Timestamp ts) {
  // Recovery-time only: nothing is in flight, so the commit clock and the
  // watermark jump together.
  ring_.AdvanceTo(ts);
  PublishMinActive();
}

Status TxnManager::Commit(const std::shared_ptr<TxnState>& txn,
                          const CommitCheck& check,
                          std::vector<RedoEntry> redo) {
  // Blocking commit IS the async path: submit, then park until the
  // completion pipeline acknowledges. No certification, stamping, or
  // acknowledgment logic lives here — one commit code path (file header).
  // The waiter lives on this stack frame, so a callback arriving from
  // another thread (ring driver or group-commit flusher) must make its
  // LAST touch of it ordered before Commit can return: everything —
  // status, flag, notify — happens under w.mu, and the notify stays under
  // the lock (the waiter cannot re-acquire mu and observe `done` until
  // the callback has left the critical section, so it cannot destroy cv
  // mid-notify). The common case, though, acknowledges inline on THIS
  // thread before CommitAsync returns (coverage at publish + non-durable
  // flush ack); that is ordinary program order and takes no lock —
  // `done_inline` is written and read by this thread only.
  struct SyncWaiter {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;         // Guarded by mu (cross-thread acks).
    bool done_inline = false;  // Submitting-thread acks only.
    Status status;
  } w;
  const std::thread::id self = std::this_thread::get_id();
  CommitAsync(txn, check, std::move(redo), [&w, self](Status st) {
    if (std::this_thread::get_id() == self) {
      w.status = std::move(st);
      w.done_inline = true;
      return;
    }
    std::lock_guard<std::mutex> guard(w.mu);
    w.status = std::move(st);
    w.done = true;
    w.cv.notify_one();
  });
  if (w.done_inline) return w.status;
  // Not acknowledged inline: self-drive once before parking, exactly as
  // the ring's own WaitUntilCovered does — our slot store is visible to
  // our own scan by program order, which closes the last-publisher case,
  // and when this Drive drains our completion the whole finalize chain
  // (including the ack callback's same-thread branch) runs right here,
  // lock free. Completions drain exactly once, so the inline and
  // cross-thread branches are mutually exclusive per commit.
  ring_.Drive();
  if (w.done_inline) return w.status;
  std::unique_lock<std::mutex> guard(w.mu);
  if (!w.done) {
    ack_parks_.fetch_add(1, std::memory_order_relaxed);
    while (!w.cv.wait_for(guard, std::chrono::milliseconds(1),
                          [&] { return w.done; })) {
      // Timed out: re-drive as a visibility backstop, exactly as the
      // ring's blocking waiters do (WaitUntilCovered) — with this thread
      // parked here instead of inside the ring, it must not depend on a
      // later Publish rescanning on its behalf. That drive may run our
      // own completion on THIS thread, which acknowledges through
      // done_inline rather than done, so check both flags.
      guard.unlock();
      ring_.Drive();
      if (w.done_inline) return w.status;
      guard.lock();
    }
  }
  return w.status;
}

void TxnManager::CommitAsync(const std::shared_ptr<TxnState>& txn,
                             const CommitCheck& check,
                             std::vector<RedoEntry> redo,
                             CommitCallback done) {
  Timestamp commit_ts = 0;
  Status abort_cause;
  bool must_abort = false;
  // Stage timing (sampled): a sampled commit records every stage it
  // executes — entry..timestamp-final is "certify" whether it took the
  // combiner or the fast path.
  const bool sampled = obs::SampleTick(sample_mask_);
  const uint64_t t_entry = sampled ? obs::NowNanos() : 0;
  // A commit with nothing to stamp never enters the ring and never waits
  // on the watermark: read-only transactions publish nothing. Their commit
  // timestamp is the watermark itself — the snapshot boundary they read
  // at (file header).
  const bool has_writes =
      !txn->write_set.empty() || !txn->page_writes.empty();
  {
    // The transaction's own latch makes the commit decision atomic with
    // the committed transition: concurrent conflict marking locks both
    // endpoints' latches, so it either completes before the triage below
    // (and is seen) or observes the committed status afterwards.
    std::lock_guard<std::mutex> latch(txn->ssi_mu);
    if (txn->status.load(std::memory_order_relaxed) != TxnStatus::kActive) {
      done(Status::TxnInvalid("commit of finished transaction"));
      return;
    }
    if (txn->marked_for_abort.load(std::memory_order_acquire)) {
      const Status reason = txn->abort_reason;
      abort_cause = reason.ok() ? Status::Unsafe("marked for abort") : reason;
      must_abort = true;
    } else if (has_writes && read_only_.load(std::memory_order_acquire)) {
      // Degraded mode (WAL I/O failure): writing commits fail fast before
      // certification or timestamp allocation — nothing new may claim to
      // be durable. Read-only transactions fall through and commit.
      abort_cause = Status::IOError("database is read-only: WAL I/O failure");
      must_abort = true;
    } else {
      // Certification triage (txn_manager.h): only an SSI commit with
      // recorded conflict state must order its check and timestamp
      // against other certifying commits. Everything else — SI/S2PL
      // (no check hook, invisible to certification) and conflict-free
      // SSI (nobody's partner: edges are bilateral and we hold our own
      // latch) — allocates lock-free.
      const bool needs_certification =
          check && (txn->in_conflict_flag || txn->out_conflict_flag ||
                    txn->in_ref.IsSet() || txn->out_ref.IsSet());
      if (!needs_certification) {
        if (check) fastpath_commits_.fetch_add(1, std::memory_order_relaxed);
        commit_ts = has_writes ? ring_.Allocate() : ring_.stable();
        txn->commit_ts.store(commit_ts, std::memory_order_release);
      } else {
        // Flat-combining certification: the check (Fig 3.2 / Fig 3.10)
        // runs atomically-in-order with the timestamp allocation across
        // every certifying commit (commit_combiner.h).
        const Status st =
            combiner_.Certify(txn.get(), check, has_writes, &commit_ts);
        if (!st.ok()) {
          abort_cause = st;
          must_abort = true;
        }
      }
    }
    if (!must_abort) {
      txn->status.store(TxnStatus::kCommitted, std::memory_order_release);
    }
  }
  if (must_abort) {
    AbortInternal(txn);
    done(abort_cause);
    return;
  }
  uint64_t t_stage = 0;
  if (sampled) {
    t_stage = obs::NowNanos();
    certify_ns_.Record(t_stage - t_entry);
  }

  // The per-commit record starts on this stack frame; it moves to the
  // heap only if the pipeline actually defers (coverage or flush), so the
  // common inline commit never allocates.
  AsyncCommit acs;
  acs.mgr = this;
  acs.txn = txn;
  acs.done = std::move(done);
  acs.commit_ts = commit_ts;
  acs.sampled = sampled;
  acs.t_entry = t_entry;

  if (!has_writes) {
    // Read-only: nothing to stamp, publish, or log — covered by
    // construction at its watermark timestamp. Finalize (and acknowledge)
    // inline on the submitting thread.
    FinalizeCoveredStep(&acs);
    return;
  }

  // Stamp the new versions. The row EXCLUSIVE locks are still held, so
  // no first-committer-wins check can interleave with the stamping of
  // any individual chain; the watermark keeps snapshots away from the
  // commit as a whole until its ring slot is published.
  for (const TxnState::WriteRecord& w : txn->write_set) {
    w.version->commit_ts.store(commit_ts, std::memory_order_release);
    // Raise the storage shard's max-commit-ts hint before this commit's
    // slot is published: once the stable watermark covers commit_ts, an
    // incremental checkpoint sweeping at that watermark must find the
    // hint raised, or it would skip the shard and lose the write from
    // the delta image. The slot store is a release and the watermark
    // scan acquires it, so coverage implies hint visibility.
    if (w.table_ref != nullptr) {
      w.table_ref->NoteCommit(w.key, commit_ts);
    }
  }
  for (const LockKey& pk : txn->page_writes) {
    PageShard& ps = PageShardFor(pk);
    std::lock_guard<std::mutex> page_guard(ps.mu);
    auto inserted = ps.writes.emplace(pk, PageWrite{commit_ts, txn->id});
    if (inserted.second) {
      page_entries_.fetch_add(1, std::memory_order_relaxed);
    } else if (commit_ts > inserted.first->second.ts) {
      inserted.first->second = PageWrite{commit_ts, txn->id};
    }
  }

  // Durability: append the redo record BEFORE publishing the ring slot,
  // so it reaches the group-commit flusher at submit time and a deep
  // async pipeline coalesces into one fsync (admissibility argument in
  // the file header: dependency order is preserved because a dependent
  // reader begins only after this commit's coverage, hence appends at a
  // higher LSN). Read-only commits skip the log entirely: nothing to
  // redo, and in the durable regime an empty record would still cost a
  // group-commit fsync and permanent log bytes.
  LogRecord record;
  record.type = LogRecordType::kCommit;
  record.txn_id = txn->id;
  record.commit_ts = commit_ts;
  record.redo = std::move(redo);
  const uint64_t t_append = sampled ? obs::NowNanos() : 0;
  acs.lsn = log_manager_->Append(std::move(record));
  if (sampled) wal_append_ns_.Record(obs::NowNanos() - t_append);

  commits_inflight_.fetch_add(1, std::memory_order_relaxed);
  // Publish the ring slot (lock-free watermark advance; may park briefly
  // on ring-full backpressure) and hand the rest of the commit to the
  // completion pipeline. Nothing is acknowledged — and none of this
  // commit's locks are released — before the watermark covers it: once
  // `done` fires, any transaction the client starts, and any writer that
  // acquires a lock this commit held, must get a snapshot that includes
  // it. This is what keeps the §4.5 "single-statement updates never abort
  // under first-committer-wins" invariant true with watermark snapshots:
  // a key's exclusive lock is only released once every committed version
  // of it is below the watermark, so lock-then-snapshot always sees the
  // newest version.
  ring_.Publish(commit_ts);
  if (sampled) {
    const uint64_t now = obs::NowNanos();
    stamp_publish_ns_.Record(now - t_stage);
    acs.t_publish = now;
  }
  if (!options_.log.flush_on_commit) {
    // Self-drive once after publishing: in steady state our own Drive
    // advances stable past our ts (our slot store is visible to our own
    // scan by program order), making the inline finalize below the common
    // case. Other commits' completions drained by this Drive run their
    // finalize chains here, exactly as on any driver thread.
    if (ring_.stable() < commit_ts) ring_.Drive();
    if (ring_.stable() >= commit_ts) {
      // Covered, and the flush ack is unconditional in this regime: the
      // whole finalize chain runs inline on this stack frame — no
      // completion registration, no heap. Exactly-once holds trivially
      // (the record was never handed to the ring).
      FinalizeCoveredStep(&acs);
      return;
    }
  }
  AsyncCommit* ac = new AsyncCommit(std::move(acs));
  ac->heap = true;
  ring_.OnCovered(commit_ts, [ac] { ac->mgr->FinalizeCovered(ac); });
}

void TxnManager::FinalizeCovered(AsyncCommit* ac) {
  if (FinalizeCoveredStep(ac)) return;
  // Must wait on the group-commit flusher: hand the record to the flush
  // subscription. The raw-pointer capture is trivially copyable, so the
  // std::function stays in its small buffer — no allocation on this edge.
  log_manager_->OnFlushed(ac->lsn, [ac](Status st) {
    TxnManager* mgr = ac->mgr;
    if (!mgr->options_.log.early_lock_release) {
      mgr->ReleaseCommitLocks(ac->txn.get());
    }
    mgr->FinalizeAcked(ac, st);
  });
}

bool TxnManager::FinalizeCoveredStep(AsyncCommit* ac) {
  const std::shared_ptr<TxnState>& txn = ac->txn;
  if (ac->sampled && ac->t_publish != 0) {
    watermark_ns_.Record(obs::NowNanos() - ac->t_publish);
  }
  // Deregister from the active set. Only SSI transactions are retained
  // past commit (§3.3): they may still be resolved by conflict marking
  // against their retained SIREAD state. SI/S2PL transactions are
  // unreachable after commit (the tracker filters to SSI participants),
  // so they leave the registry immediately.
  const bool retain = txn->isolation == IsolationLevel::kSerializableSSI;
  const Timestamp departed_read_ts =
      txn->read_ts.load(std::memory_order_relaxed);
  {
    RegistryShard& shard = ShardFor(txn->id);
    std::lock_guard<std::mutex> guard(shard.mu);
    shard.active.erase(txn.get());
    if (!retain) shard.txns.erase(txn->id);
    NoteDepartureLocked(&shard, departed_read_ts);
  }
  active_count_.fetch_sub(1, std::memory_order_relaxed);
  if (retain) {
    txn->suspended = true;  // Published by the Retire slot release.
    suspended_.Retire(ac->commit_ts, txn);
  }
  PublishMinActive();

  if (ac->lsn == 0) {
    // Nothing was appended (read-only): acknowledge straight away.
    ReleaseCommitLocks(txn.get());
    FinalizeAcked(ac, Status::OK());
    return true;
  }
  if (options_.log.early_lock_release) {
    // InnoDB's original ordering (§4.4): locks released before the flush
    // (but still after coverage — the §4.5 invariant holds either way).
    ReleaseCommitLocks(txn.get());
  }
  if (ac->sampled) ac->t_flush = obs::NowNanos();
  if (!options_.log.flush_on_commit) {
    // The flush ack is unconditional in this regime — LogManager::
    // OnFlushed's first branch would fire inline with OK — so skip the
    // subscription machinery and acknowledge here.
    if (!options_.log.early_lock_release) ReleaseCommitLocks(txn.get());
    FinalizeAcked(ac, Status::OK());
    return true;
  }
  return false;
}

void TxnManager::FinalizeAcked(AsyncCommit* ac, Status flush_status) {
  if (ac->lsn != 0) {
    commits_inflight_.fetch_sub(1, std::memory_order_relaxed);
  }
  if (ac->sampled) {
    const uint64_t now = obs::NowNanos();
    if (ac->t_flush != 0) fsync_wait_ns_.Record(now - ac->t_flush);
    if (ac->t_publish != 0) ack_lag_ns_.Record(now - ac->t_publish);
    total_ns_.Record(now - ac->t_entry);
  }
  // The acknowledgment is the latency-critical edge: fire it first, then
  // amortize cleanup on this thread. A failed flush cannot be rolled back
  // — the commit is already visible; surface the I/O error so the client
  // knows durability was not achieved.
  CommitCallback done = std::move(ac->done);
  if (ac->heap) delete ac;  // Stack instances are owned by CommitAsync.
  ac = nullptr;
  done(flush_status);
  CleanupSuspended();
  // Re-drive the pipeline after each acknowledgment: in the durable
  // regime acks fire on the group-commit flusher thread, which thereby
  // becomes a periodic driver for completions whose covering advance went
  // stale — the pure-async analogue of the blocking waiters' 1ms re-drive
  // backstop. Guarded against unbounded recursion (a drive can run a
  // completion whose inline-satisfied flush subscription re-enters here).
  static thread_local bool driving = false;
  if (!driving) {
    driving = true;
    ring_.Drive();
    driving = false;
  }
}

void TxnManager::ReleaseCommitLocks(TxnState* txn) {
  if (txn->isolation == IsolationLevel::kSerializableSSI) {
    // Fig 3.2 line 9: keep SIREAD locks active past commit.
    lock_manager_->ReleaseAllExceptSIRead(txn->id);
  } else {
    lock_manager_->ReleaseAll(txn->id);
  }
}

void TxnManager::Abort(const std::shared_ptr<TxnState>& txn) {
  AbortInternal(txn);
}

void TxnManager::AbortInternal(const std::shared_ptr<TxnState>& txn) {
  {
    // Status transitions happen under the latch so conflict marking never
    // races with them (a marker holding this latch sees either kActive or
    // the final state, never a torn transition).
    std::lock_guard<std::mutex> latch(txn->ssi_mu);
    if (txn->status.load(std::memory_order_relaxed) != TxnStatus::kActive) {
      return;
    }
    txn->status.store(TxnStatus::kAborted, std::memory_order_release);
  }
  // Forensics: the kActive->kAborted transition above happens exactly once
  // per transaction, so this is the single counting point for the abort
  // taxonomy. Unclassified aborts (client rollback without a recorded
  // cause) fold into kExplicit.
  uint8_t cause = txn->abort_cause.load(std::memory_order_relaxed);
  if (cause == 0 || cause >= kAbortReasonCount) {
    cause = static_cast<uint8_t>(AbortReason::kExplicit);
  }
  abort_counts_[cause].fetch_add(1, std::memory_order_relaxed);
  if (trace_ != nullptr) {
    trace_->Emit(obs::TraceEvent::kAbort, txn->id, cause, /*arg32=*/0,
                 txn->abort_conflict_txn.load(std::memory_order_relaxed));
  }
  const Timestamp departed_read_ts =
      txn->read_ts.load(std::memory_order_relaxed);
  {
    RegistryShard& shard = ShardFor(txn->id);
    std::lock_guard<std::mutex> guard(shard.mu);
    shard.active.erase(txn.get());
    shard.txns.erase(txn->id);
    NoteDepartureLocked(&shard, departed_read_ts);
  }
  active_count_.fetch_sub(1, std::memory_order_relaxed);
  PublishMinActive();
  // Roll back uncommitted versions while still holding the write locks, so
  // no concurrent writer can observe or interleave with the removal.
  for (const TxnState::WriteRecord& w : txn->write_set) {
    w.chain->RemoveUncommitted(txn->id);
  }
  lock_manager_->ReleaseAll(txn->id);
  CleanupSuspended();
}

void TxnManager::CleanupSuspended() {
  // A suspended transaction is released once every active transaction's
  // snapshot (and every future snapshot: >= the stable watermark, the
  // base of the maintained minimum) is at or past its commit — no overlap
  // remains. The epoch reclaimer's Collect has the lock-free "nothing
  // collectible" fast path and hands out each expired state exactly once
  // (epoch.h); the registry erase and SIREAD release run after its slot
  // locks are dropped (lock-ordering leaf rule).
  const Timestamp cutoff = min_active_read_ts();
  SIReadIndex* sireads = lock_manager_->siread_index();
  suspended_.Collect(cutoff, [&](std::shared_ptr<TxnState> t) {
    {
      RegistryShard& shard = ShardFor(t->id);
      std::lock_guard<std::mutex> guard(shard.mu);
      shard.txns.erase(t->id);
    }
    // A suspended transaction's blocking locks were released at its own
    // commit; only the retained SIREAD entries remain (§3.3). Drop them
    // straight from the SIREAD index — O(held) per transaction, no
    // lock-table sweep.
    sireads->ReleaseAll(t->id);
  });

  // Page-granularity FCW bookkeeping (§4.2) would otherwise grow without
  // bound: entries are inserted at commit and were never erased. An entry
  // with ts <= min_active_read_ts can never again fail the FCW test or
  // mark an rw-conflict — every current snapshot, and every future one
  // (>= the stable watermark, the base of the minimum), is at or past it,
  // and a missing entry already reads as "never written". Swept
  // periodically rather than per cleanup to amortize the shard walk; kRow
  // engines never populate the shards and skip them entirely.
  if (options_.granularity == LockGranularity::kPage &&
      page_entries_.load(std::memory_order_relaxed) != 0 &&
      page_sweep_tick_.fetch_add(1, std::memory_order_relaxed) %
              kPageSweepPeriod ==
          kPageSweepPeriod - 1) {
    for (uint64_t i = 0; i <= page_shard_mask_; ++i) {
      PageShard& ps = page_shards_[i];
      std::lock_guard<std::mutex> page_guard(ps.mu);
      for (auto it = ps.writes.begin(); it != ps.writes.end();) {
        if (it->second.ts <= cutoff) {
          it = ps.writes.erase(it);
          page_entries_.fetch_sub(1, std::memory_order_relaxed);
          page_entries_pruned_.fetch_add(1, std::memory_order_relaxed);
        } else {
          ++it;
        }
      }
    }
  }
}

Timestamp TxnManager::PageLastWriteTs(const LockKey& page_key) const {
  PageShard& ps = PageShardFor(page_key);
  std::lock_guard<std::mutex> guard(ps.mu);
  auto it = ps.writes.find(page_key);
  return it == ps.writes.end() ? 0 : it->second.ts;
}

bool TxnManager::PageLastWrite(const LockKey& page_key, Timestamp* ts,
                               TxnId* txn) const {
  PageShard& ps = PageShardFor(page_key);
  std::lock_guard<std::mutex> guard(ps.mu);
  auto it = ps.writes.find(page_key);
  if (it == ps.writes.end()) return false;
  *ts = it->second.ts;
  *txn = it->second.txn;
  return true;
}

size_t TxnManager::page_write_entries() const {
  return page_entries_.load(std::memory_order_relaxed);
}

uint64_t TxnManager::page_entries_pruned() const {
  return page_entries_pruned_.load(std::memory_order_relaxed);
}

size_t TxnManager::active_count() const {
  return active_count_.load(std::memory_order_relaxed);
}

size_t TxnManager::suspended_count() const { return suspended_.size(); }

}  // namespace ssidb
