#include "src/txn/txn_manager.h"

#include <cassert>

#include "src/storage/table.h"

namespace ssidb {

namespace {
/// CleanupSuspended sweeps the page first-committer-wins map every this
/// many invocations (kPage granularity only): O(map/period) amortized per
/// commit, and a test that wants a sweep just commits this many times.
constexpr uint64_t kPageSweepPeriod = 16;
}  // namespace

TxnManager::TxnManager(const DBOptions& options, LockManager* lock_manager,
                       LogManager* log_manager)
    : options_(options),
      lock_manager_(lock_manager),
      log_manager_(log_manager) {}

std::shared_ptr<TxnState> TxnManager::Begin(IsolationLevel isolation) {
  // Lock-free id allocation; ids and commit timestamps share the clock
  // domain so a transaction id doubles as a begin event.
  const TxnId id = clock_.fetch_add(1, std::memory_order_relaxed) + 1;
  auto txn = std::make_shared<TxnState>(id, isolation);
  const bool defer_snapshot =
      options_.late_snapshot && isolation != IsolationLevel::kSerializable2PL;
  std::lock_guard<std::mutex> guard(registry_mu_);
  if (!defer_snapshot) {
    txn->read_ts.store(stable_ts(), std::memory_order_release);
  }
  registry_.emplace(id, txn);
  active_.insert(txn.get());
  RecomputeMinLocked();
  return txn;
}

void TxnManager::EnsureSnapshot(TxnState* txn) {
  if (txn->read_ts.load(std::memory_order_acquire) != 0) return;
  // The snapshot is the stable watermark: every commit at or below it has
  // finished stamping its versions, so the snapshot is consistent without
  // any global lock. The registry mutex only covers the prune-threshold
  // recomputation (a new, older snapshot may lower it).
  std::lock_guard<std::mutex> guard(registry_mu_);
  if (txn->read_ts.load(std::memory_order_relaxed) != 0) return;
  txn->read_ts.store(stable_ts(), std::memory_order_release);
  RecomputeMinLocked();
}

std::shared_ptr<TxnState> TxnManager::Find(TxnId id) const {
  std::lock_guard<std::mutex> guard(registry_mu_);
  auto it = registry_.find(id);
  return it == registry_.end() ? nullptr : it->second;
}

Timestamp TxnManager::MinActiveSnapshotLocked() const {
  // Transactions with an unassigned (late) snapshot do not constrain the
  // minimum: their eventual read_ts will be >= the current stable
  // watermark, which is the base and is monotonic.
  Timestamp min_ts = stable_ts();
  for (const TxnState* t : active_) {
    const Timestamp ts = t->read_ts.load(std::memory_order_relaxed);
    if (ts != 0 && ts < min_ts) min_ts = ts;
  }
  return min_ts;
}

void TxnManager::RecomputeMinLocked() {
  // Release pairs with prune_horizon()'s acquire: a pruner that observes a
  // minimum above an in-progress sweep's watermark inherits visibility of
  // the sweep's floor through min -> stable -> floor.
  min_active_read_ts_.store(MinActiveSnapshotLocked(),
                            std::memory_order_release);
}

Timestamp TxnManager::BeginCheckpointSweep() {
  std::lock_guard<std::mutex> guard(window_mu_);
  const Timestamp wm = stable_ts_.load(std::memory_order_relaxed);
  checkpoint_floor_.store(wm, std::memory_order_release);
  return wm;
}

void TxnManager::EndCheckpointSweep() {
  checkpoint_floor_.store(kMaxTimestamp, std::memory_order_release);
}

bool TxnManager::AdvanceStableLocked() {
  const Timestamp new_stable =
      inflight_commits_.empty() ? clock_.load(std::memory_order_relaxed)
                                : *inflight_commits_.begin() - 1;
  // Monotonic: a concurrent retire may already have advanced further.
  if (new_stable > stable_ts_.load(std::memory_order_relaxed)) {
    stable_ts_.store(new_stable, std::memory_order_release);
    return true;
  }
  return false;
}

void TxnManager::RetireCommit(Timestamp commit_ts) {
  {
    std::lock_guard<std::mutex> guard(window_mu_);
    inflight_commits_.erase(commit_ts);
    AdvanceStableLocked();
  }
  window_cv_.notify_all();
}

void TxnManager::TryAdvanceStable() {
  // Read-only commits bypass the in-flight window, so nothing retires on
  // their behalf and the watermark would lag their timestamps forever —
  // pinning them on the suspended list. Cleanup pulls the watermark up to
  // the clock whenever no unstamped commit bounds it.
  bool advanced;
  {
    std::lock_guard<std::mutex> guard(window_mu_);
    advanced = AdvanceStableLocked();
  }
  if (advanced) window_cv_.notify_all();
}

void TxnManager::WaitStable(Timestamp commit_ts) {
  if (stable_ts() >= commit_ts) return;
  std::unique_lock<std::mutex> guard(window_mu_);
  window_cv_.wait(guard, [&] {
    return stable_ts_.load(std::memory_order_relaxed) >= commit_ts;
  });
}

void TxnManager::AdvanceClockTo(Timestamp ts) {
  Timestamp cur = clock_.load(std::memory_order_relaxed);
  while (cur < ts &&
         !clock_.compare_exchange_weak(cur, ts, std::memory_order_relaxed)) {
  }
  // Nothing is in flight this early, so the watermark follows the clock.
  TryAdvanceStable();
  std::lock_guard<std::mutex> guard(registry_mu_);
  RecomputeMinLocked();
}

Status TxnManager::Commit(const std::shared_ptr<TxnState>& txn,
                          const CommitCheck& check,
                          std::vector<RedoEntry> redo) {
  Timestamp commit_ts = 0;
  Status abort_cause;
  bool must_abort = false;
  // A commit with nothing to stamp never enters the in-flight window and
  // never waits on the watermark: read-only transactions publish nothing.
  const bool has_writes =
      !txn->write_set.empty() || !txn->page_writes.empty();
  {
    // The transaction's own latch makes the dangerous-structure check
    // atomic with the committed transition: concurrent conflict marking
    // locks both endpoints' latches, so it either completes before the
    // check (and is seen) or observes the committed status afterwards.
    std::lock_guard<std::mutex> latch(txn->ssi_mu);
    if (txn->status.load(std::memory_order_relaxed) != TxnStatus::kActive) {
      return Status::TxnInvalid("commit of finished transaction");
    }
    if (txn->marked_for_abort.load(std::memory_order_acquire)) {
      const Status reason = txn->abort_reason;
      abort_cause = reason.ok() ? Status::Unsafe("marked for abort") : reason;
      must_abort = true;
    } else {
      // The check and the commit-timestamp publication must be one atomic
      // unit with respect to every other committing transaction, or a
      // pivot's check could observe its out-partner as "not committed"
      // while that partner wins a *smaller* timestamp — the dangerous
      // structure would go undetected (the seed's system mutex gave this
      // for free; PostgreSQL's SSI serializes commits the same way with
      // SerializableXactHashLock). window_mu_ is that unit: a partner's
      // commit_ts is either already published here, or will be allocated
      // after ours and cannot have committed first.
      std::unique_lock<std::mutex> window(window_mu_, std::defer_lock);
      if (check || has_writes) window.lock();
      if (check) {
        // Fig 3.2 / Fig 3.10: the dangerous-structure test, atomic with
        // the transition to the committed state.
        const Status st = check(txn.get());
        if (!st.ok()) {
          abort_cause = st;
          must_abort = true;
        }
      }
      if (!must_abort) {
        commit_ts = clock_.fetch_add(1, std::memory_order_relaxed) + 1;
        if (has_writes) inflight_commits_.insert(commit_ts);
        txn->commit_ts.store(commit_ts, std::memory_order_release);
      }
    }
    if (!must_abort) {
      txn->status.store(TxnStatus::kCommitted, std::memory_order_release);
    }
  }
  if (must_abort) {
    AbortInternal(txn);
    return abort_cause;
  }

  if (has_writes) {
    // Stamp the new versions. The row EXCLUSIVE locks are still held, so
    // no first-committer-wins check can interleave with the stamping of
    // any individual chain; the watermark keeps snapshots away from the
    // commit as a whole until it retires from the window.
    for (const TxnState::WriteRecord& w : txn->write_set) {
      w.version->commit_ts.store(commit_ts, std::memory_order_release);
      // Raise the storage shard's max-commit-ts hint before this commit
      // retires from the window: once the stable watermark covers
      // commit_ts, an incremental checkpoint sweeping at that watermark
      // must find the hint raised, or it would skip the shard and lose
      // the write from the delta image.
      if (w.table_ref != nullptr) {
        w.table_ref->NoteCommit(w.key, commit_ts);
      }
    }
    if (!txn->page_writes.empty()) {
      std::lock_guard<std::mutex> page_guard(page_mu_);
      for (const LockKey& pk : txn->page_writes) {
        PageWrite& slot = page_write_ts_[pk];
        if (commit_ts > slot.ts) slot = PageWrite{commit_ts, txn->id};
      }
    }
    RetireCommit(commit_ts);
    // Do not acknowledge (or release this commit's locks) before the
    // watermark covers it: once Commit returns, any transaction the
    // client starts — and any writer that acquires a lock this commit
    // held — must get a snapshot that includes it. This is what keeps the
    // §4.5 "single-statement updates never abort under
    // first-committer-wins" invariant true with watermark snapshots: a
    // key's exclusive lock is only released once every committed version
    // of it is below the watermark, so lock-then-snapshot always sees the
    // newest version.
    WaitStable(commit_ts);
  }

  {
    std::lock_guard<std::mutex> guard(registry_mu_);
    active_.erase(txn.get());
    RecomputeMinLocked();
    // Retain the transaction until nothing concurrent remains (§3.3); its
    // versions and conflict state may be consulted by overlapping
    // transactions. Cleanup releases it.
    txn->suspended = true;
    suspended_.emplace(commit_ts, txn);
  }

  auto release_locks = [&] {
    if (txn->isolation == IsolationLevel::kSerializableSSI) {
      // Fig 3.2 line 9: keep SIREAD locks active past commit.
      lock_manager_->ReleaseAllExceptSIRead(txn->id);
    } else {
      lock_manager_->ReleaseAll(txn->id);
    }
  };

  Status flush_status;
  if (has_writes) {
    // Durability: append the redo record; under flush_on_commit the wait
    // rides the group-commit flusher (§6.1.3 regime — simulated latency
    // or a real WAL write+fsync, per LogOptions::wal_dir). Read-only
    // commits skip the log entirely: they have nothing to redo, and in
    // the durable regime an empty record would still cost a group-commit
    // fsync wait and permanent log bytes.
    LogRecord record;
    record.type = LogRecordType::kCommit;
    record.txn_id = txn->id;
    record.commit_ts = commit_ts;
    record.redo = std::move(redo);
    const Lsn lsn = log_manager_->Append(std::move(record));

    if (options_.log.early_lock_release) {
      // InnoDB's original ordering (§4.4): locks released before the
      // flush.
      release_locks();
      flush_status = log_manager_->WaitFlushed(lsn);
    } else {
      flush_status = log_manager_->WaitFlushed(lsn);
      release_locks();
    }
  } else {
    release_locks();
  }

  CleanupSuspended();
  // A failed flush cannot be rolled back — the commit is already visible.
  // Surface the I/O error so the client knows durability was not achieved.
  return flush_status;
}

void TxnManager::Abort(const std::shared_ptr<TxnState>& txn) {
  AbortInternal(txn);
}

void TxnManager::AbortInternal(const std::shared_ptr<TxnState>& txn) {
  {
    // Status transitions happen under the latch so conflict marking never
    // races with them (a marker holding this latch sees either kActive or
    // the final state, never a torn transition).
    std::lock_guard<std::mutex> latch(txn->ssi_mu);
    if (txn->status.load(std::memory_order_relaxed) != TxnStatus::kActive) {
      return;
    }
    txn->status.store(TxnStatus::kAborted, std::memory_order_release);
  }
  {
    std::lock_guard<std::mutex> guard(registry_mu_);
    active_.erase(txn.get());
    RecomputeMinLocked();
    registry_.erase(txn->id);
  }
  // Roll back uncommitted versions while still holding the write locks, so
  // no concurrent writer can observe or interleave with the removal.
  for (const TxnState::WriteRecord& w : txn->write_set) {
    w.chain->RemoveUncommitted(txn->id);
  }
  lock_manager_->ReleaseAll(txn->id);
  CleanupSuspended();
}

void TxnManager::CleanupSuspended() {
  TryAdvanceStable();
  std::vector<std::shared_ptr<TxnState>> expired;
  {
    std::lock_guard<std::mutex> guard(registry_mu_);
    // A suspended transaction is released once every active transaction's
    // snapshot (and every future snapshot: >= the stable watermark, the
    // base of the minimum) is at or past its commit — no overlap remains.
    const Timestamp cutoff = MinActiveSnapshotLocked();
    auto it = suspended_.begin();
    while (it != suspended_.end() && it->first <= cutoff) {
      expired.push_back(it->second);
      registry_.erase(it->second->id);
      it = suspended_.erase(it);
    }
  }
  // A suspended transaction's blocking locks were released at its own
  // commit; only the retained SIREAD entries remain (§3.3). Drop them
  // straight from the SIREAD index — O(held) per transaction, no
  // lock-table sweep.
  SIReadIndex* sireads = lock_manager_->siread_index();
  for (const auto& t : expired) {
    sireads->ReleaseAll(t->id);
  }

  // Page-granularity FCW bookkeeping (§4.2) would otherwise grow without
  // bound: entries are inserted at commit and were never erased. An entry
  // with ts <= min_active_read_ts can never again fail the FCW test or
  // mark an rw-conflict — every current snapshot, and every future one
  // (>= the stable watermark, the base of the minimum), is at or past it,
  // and a missing entry already reads as "never written". Swept
  // periodically rather than per cleanup to amortize the map walk.
  const Timestamp page_cutoff = min_active_read_ts();
  {
    std::lock_guard<std::mutex> page_guard(page_mu_);
    if (!page_write_ts_.empty() &&
        ++page_sweep_tick_ % kPageSweepPeriod == 0) {
      for (auto it = page_write_ts_.begin(); it != page_write_ts_.end();) {
        if (it->second.ts <= page_cutoff) {
          it = page_write_ts_.erase(it);
          ++page_entries_pruned_;
        } else {
          ++it;
        }
      }
    }
  }
}

Timestamp TxnManager::PageLastWriteTs(const LockKey& page_key) const {
  std::lock_guard<std::mutex> guard(page_mu_);
  auto it = page_write_ts_.find(page_key);
  return it == page_write_ts_.end() ? 0 : it->second.ts;
}

bool TxnManager::PageLastWrite(const LockKey& page_key, Timestamp* ts,
                               TxnId* txn) const {
  std::lock_guard<std::mutex> guard(page_mu_);
  auto it = page_write_ts_.find(page_key);
  if (it == page_write_ts_.end()) return false;
  *ts = it->second.ts;
  *txn = it->second.txn;
  return true;
}

size_t TxnManager::page_write_entries() const {
  std::lock_guard<std::mutex> guard(page_mu_);
  return page_write_ts_.size();
}

uint64_t TxnManager::page_entries_pruned() const {
  std::lock_guard<std::mutex> guard(page_mu_);
  return page_entries_pruned_;
}

size_t TxnManager::active_count() const {
  std::lock_guard<std::mutex> guard(registry_mu_);
  return active_.size();
}

size_t TxnManager::suspended_count() const {
  std::lock_guard<std::mutex> guard(registry_mu_);
  return suspended_.size();
}

}  // namespace ssidb
