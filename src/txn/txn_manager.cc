#include "src/txn/txn_manager.h"

#include <cassert>

namespace ssidb {

TxnManager::TxnManager(const DBOptions& options, LockManager* lock_manager,
                       LogManager* log_manager)
    : options_(options),
      lock_manager_(lock_manager),
      log_manager_(log_manager) {}

std::shared_ptr<TxnState> TxnManager::Begin(IsolationLevel isolation) {
  std::lock_guard<std::mutex> guard(system_mu_);
  const TxnId id = clock_.fetch_add(1, std::memory_order_relaxed) + 1;
  auto txn = std::make_shared<TxnState>(id, isolation);
  const bool defer_snapshot =
      options_.late_snapshot && isolation != IsolationLevel::kSerializable2PL;
  if (!defer_snapshot) {
    txn->read_ts.store(clock_.load(std::memory_order_relaxed));
  }
  registry_.emplace(id, txn);
  active_.insert(txn.get());
  min_active_read_ts_.store(MinActiveBeginLocked(),
                            std::memory_order_relaxed);
  return txn;
}

void TxnManager::EnsureSnapshot(TxnState* txn) {
  if (txn->read_ts.load(std::memory_order_acquire) != 0) return;
  std::lock_guard<std::mutex> guard(system_mu_);
  if (txn->read_ts.load(std::memory_order_relaxed) != 0) return;
  txn->read_ts.store(clock_.load(std::memory_order_relaxed),
                     std::memory_order_release);
  min_active_read_ts_.store(MinActiveBeginLocked(),
                            std::memory_order_relaxed);
}

std::shared_ptr<TxnState> TxnManager::FindLocked(TxnId id) const {
  auto it = registry_.find(id);
  return it == registry_.end() ? nullptr : it->second;
}

Timestamp TxnManager::MinActiveBeginLocked() const {
  // Transactions with an unassigned (late) snapshot do not constrain the
  // minimum: their eventual read_ts will be >= the current clock.
  Timestamp min_ts = clock_.load(std::memory_order_relaxed);
  for (const TxnState* t : active_) {
    const Timestamp ts = t->read_ts.load(std::memory_order_relaxed);
    if (ts != 0 && ts < min_ts) min_ts = ts;
  }
  return min_ts;
}

void TxnManager::DeactivateLocked(TxnState* txn) {
  active_.erase(txn);
  min_active_read_ts_.store(MinActiveBeginLocked(),
                            std::memory_order_relaxed);
}

Status TxnManager::Commit(const std::shared_ptr<TxnState>& txn,
                          const CommitCheck& check, std::string log_payload) {
  Timestamp commit_ts = 0;
  {
    std::unique_lock<std::mutex> guard(system_mu_);
    if (txn->status.load(std::memory_order_relaxed) != TxnStatus::kActive) {
      return Status::TxnInvalid("commit of finished transaction");
    }
    if (txn->marked_for_abort.load(std::memory_order_relaxed)) {
      const Status reason = txn->abort_reason;
      guard.unlock();
      AbortInternal(txn);
      return reason.ok() ? Status::Unsafe("marked for abort") : reason;
    }
    if (check) {
      // Fig 3.2 / Fig 3.10: the dangerous-structure test, atomic with the
      // transition to the committed state.
      const Status st = check(txn.get());
      if (!st.ok()) {
        guard.unlock();
        AbortInternal(txn);
        return st;
      }
    }
    commit_ts = clock_.fetch_add(1, std::memory_order_relaxed) + 1;
    txn->commit_ts.store(commit_ts, std::memory_order_release);
    for (const TxnState::WriteRecord& w : txn->write_set) {
      w.version->commit_ts.store(commit_ts, std::memory_order_release);
    }
    txn->status.store(TxnStatus::kCommitted, std::memory_order_release);
    if (!txn->page_writes.empty()) {
      std::lock_guard<std::mutex> page_guard(page_mu_);
      for (const LockKey& pk : txn->page_writes) {
        PageWrite& slot = page_write_ts_[pk];
        if (commit_ts > slot.ts) slot = PageWrite{commit_ts, txn->id};
      }
    }
    DeactivateLocked(txn.get());
    // Retain the transaction until nothing concurrent remains (§3.3); its
    // versions and conflict state may be consulted by overlapping
    // transactions. Cleanup releases it.
    txn->suspended = true;
    suspended_.emplace(commit_ts, txn);
  }

  // Durability: append the redo blob; under flush_on_commit the wait rides
  // the group-commit flusher (§6.1.3 regime).
  LogRecord record;
  record.txn_id = txn->id;
  record.commit_ts = commit_ts;
  record.payload = std::move(log_payload);
  const Lsn lsn = log_manager_->Append(std::move(record));

  auto release_locks = [&] {
    if (txn->isolation == IsolationLevel::kSerializableSSI) {
      // Fig 3.2 line 9: keep SIREAD locks active past commit.
      lock_manager_->ReleaseAllExceptSIRead(txn->id);
    } else {
      lock_manager_->ReleaseAll(txn->id);
    }
  };

  if (options_.log.early_lock_release) {
    // InnoDB's original ordering (§4.4): locks released before the flush.
    release_locks();
    log_manager_->WaitFlushed(lsn);
  } else {
    log_manager_->WaitFlushed(lsn);
    release_locks();
  }

  CleanupSuspended();
  return Status::OK();
}

void TxnManager::Abort(const std::shared_ptr<TxnState>& txn) {
  AbortInternal(txn);
}

void TxnManager::AbortInternal(const std::shared_ptr<TxnState>& txn) {
  {
    std::lock_guard<std::mutex> guard(system_mu_);
    if (txn->status.load(std::memory_order_relaxed) != TxnStatus::kActive) {
      return;
    }
    txn->status.store(TxnStatus::kAborted, std::memory_order_release);
    DeactivateLocked(txn.get());
    registry_.erase(txn->id);
  }
  // Roll back uncommitted versions while still holding the write locks, so
  // no concurrent writer can observe or interleave with the removal.
  for (const TxnState::WriteRecord& w : txn->write_set) {
    w.chain->RemoveUncommitted(txn->id);
  }
  lock_manager_->ReleaseAll(txn->id);
  CleanupSuspended();
}

void TxnManager::CleanupSuspended() {
  std::vector<std::shared_ptr<TxnState>> expired;
  {
    std::lock_guard<std::mutex> guard(system_mu_);
    const Timestamp cutoff = MinActiveBeginLocked();
    auto it = suspended_.begin();
    while (it != suspended_.end() && it->first <= cutoff) {
      expired.push_back(it->second);
      registry_.erase(it->second->id);
      it = suspended_.erase(it);
    }
  }
  for (const auto& t : expired) {
    lock_manager_->ReleaseAll(t->id);
  }
}

Timestamp TxnManager::PageLastWriteTs(const LockKey& page_key) const {
  std::lock_guard<std::mutex> guard(page_mu_);
  auto it = page_write_ts_.find(page_key);
  return it == page_write_ts_.end() ? 0 : it->second.ts;
}

bool TxnManager::PageLastWrite(const LockKey& page_key, Timestamp* ts,
                               TxnId* txn) const {
  std::lock_guard<std::mutex> guard(page_mu_);
  auto it = page_write_ts_.find(page_key);
  if (it == page_write_ts_.end()) return false;
  *ts = it->second.ts;
  *txn = it->second.txn;
  return true;
}

size_t TxnManager::active_count() const {
  std::lock_guard<std::mutex> guard(system_mu_);
  return active_.size();
}

size_t TxnManager::suspended_count() const {
  std::lock_guard<std::mutex> guard(system_mu_);
  return suspended_.size();
}

}  // namespace ssidb
