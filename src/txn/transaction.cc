// TxnState is a plain data holder; see txn_manager.cc for the lifecycle
// logic. This file exists to give the target a translation unit and to
// anchor the vtable-free type for debuggers.

#include "src/txn/transaction.h"

namespace ssidb {}  // namespace ssidb
