// CommitCombiner: flat-combining SSI commit certification.
//
// The problem: the dangerous-structure check (Fig 3.2 / Fig 3.10) must be
// one atomic unit with commit-timestamp allocation across every certifying
// committer, or a pivot's check could observe its out-partner as "not
// committed" while that partner wins a *smaller* timestamp — the structure
// would go undetected. PR 5 provided that unit with a plain mutex
// (`window_mu_`, PostgreSQL's SerializableXactHashLock role); under
// contention N committers paid N serialized lock handoffs and N cache-miss
// storms on the same line. Flat combining keeps the serialization but
// amortizes the handoffs: committers publish a certification request into
// a topology-sized slot array; whichever committer acquires the combiner
// lock certifies EVERY pending request in one pass — one acquisition, one
// walk, N verdicts — and the rest just spin on their own (cache-local)
// slot until their verdict appears.
//
// Batch atomicity (why one combined pass equals N serial critical
// sections): the combiner processes requests strictly sequentially under
// one lock acquisition. Request i's check runs after requests processed
// before it in the pass have either allocated their commit timestamp
// (published with a release store the check's partner reads go through)
// or been refused — exactly the state a serial run with that arrival
// order would show — and before requests after it have touched anything.
// Timestamps are allocated in pass order, so a same-batch partner
// processed later holds a LARGER timestamp: "partner committed first"
// (the §3.6 commit-time comparison) can never be satisfied by a
// same-batch successor, just as it cannot be by a later serial committer.
// The full certification-order proof, including the conflict-free fast
// path that bypasses this stage entirely, lives in txn_manager.h.
//
// The combiner lock is a leaf: the combiner runs check functions that
// take NO locks (the ConflictTracker's commit check reads partner state
// through atomics and the caller-held latch only — see
// conflict_tracker.h), and requesters spin while holding only their own
// TxnState latch. ssi_mu -> combiner lock is therefore the only nesting,
// and only for the requester's own latch, which the combiner never takes.

#ifndef SSIDB_TXN_COMMIT_COMBINER_H_
#define SSIDB_TXN_COMMIT_COMBINER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>

#include "src/common/status.h"
#include "src/txn/commit_ring.h"
#include "src/txn/transaction.h"

namespace ssidb {

class CommitCombiner {
 public:
  /// The commit-time dangerous-structure check, run under the requesting
  /// transaction's ssi_mu (held across Certify) by whichever thread
  /// combines the request.
  using CheckFn = std::function<Status(TxnState*)>;

  /// `slots` bounds the number of concurrently-certifying committers
  /// served without waiting (rounded up to a power of two; 0 sizes from
  /// the core topology). `batching` = false degrades to a plain mutex
  /// (one request per acquisition) — the PR 5 semantics, kept as the
  /// reference engine for differential tests.
  CommitCombiner(CommitRing* ring, uint32_t slots, bool batching);

  CommitCombiner(const CommitCombiner&) = delete;
  CommitCombiner& operator=(const CommitCombiner&) = delete;

  /// Certify one commit: run `check` (may be empty) atomically-in-order
  /// with commit-timestamp allocation across all concurrent Certify
  /// calls. On success stores the allocated timestamp (write commits) or
  /// the stable watermark (read-only commits) into *commit_ts AND
  /// publishes it in txn->commit_ts (release). On failure returns the
  /// check's verdict and leaves txn->commit_ts untouched. The caller must
  /// hold txn->ssi_mu.
  Status Certify(TxnState* txn, const CheckFn& check, bool has_writes,
                 Timestamp* commit_ts);

  // --- Deterministic decomposition of Certify (tests). Production code
  // uses Certify; tests Post several requests, run one Combine, then
  // Harvest each verdict, which pins the batch composition exactly. ---

  /// Publish a request without combining; returns its slot index. `check`
  /// must stay valid until Harvest.
  size_t Post(TxnState* txn, const CheckFn* check, bool has_writes);
  /// Run one combining pass over all currently pending requests (blocks
  /// on the combiner lock). Requests are processed in slot-index order.
  /// Returns the number certified.
  size_t Combine();
  /// Collect the verdict of a completed request and free its slot.
  Status Harvest(size_t slot_index, Timestamp* commit_ts);

  // --- Counters (relaxed; DBStats contract). ---
  /// Combining passes that certified at least one request.
  uint64_t combine_batches() const {
    return batches_.load(std::memory_order_relaxed);
  }
  /// Requests certified by those passes (combined/batches = mean batch).
  uint64_t combined_txns() const {
    return combined_.load(std::memory_order_relaxed);
  }
  /// Largest single combining pass.
  uint64_t max_batch() const {
    return max_batch_.load(std::memory_order_relaxed);
  }

  uint64_t slots() const { return mask_ + 1; }
  bool batching() const { return batching_; }

 private:
  /// Slot protocol: kFree -CAS by requester-> kClaimed -(fields written,
  /// release)-> kPending -(combiner: verdict written, release)-> kDone
  /// -(requester harvests, release)-> kFree. The release/acquire pairs on
  /// `state` carry the request fields to the combiner and the verdict
  /// back; no other synchronization touches a slot.
  enum SlotState : uint32_t { kFree, kClaimed, kPending, kDone };

  struct alignas(64) Slot {
    std::atomic<uint32_t> state{kFree};
    TxnState* txn = nullptr;
    const CheckFn* check = nullptr;
    bool has_writes = false;
    Status verdict;
    Timestamp commit_ts = 0;
  };

  /// The combining pass body. Caller holds combine_mu_.
  size_t CombineLocked();

  CommitRing* const ring_;
  const uint64_t mask_;
  const bool batching_;
  const std::unique_ptr<Slot[]> slots_;

  /// The certification critical section. Never contended by fast-path
  /// committers (they bypass Certify entirely); requesters that find it
  /// held do not block on it — they spin on their own slot and retry
  /// try_lock, so the holder combines on their behalf.
  std::mutex combine_mu_;

  std::atomic<uint64_t> batches_{0};
  std::atomic<uint64_t> combined_{0};
  std::atomic<uint64_t> max_batch_{0};
};

}  // namespace ssidb

#endif  // SSIDB_TXN_COMMIT_COMBINER_H_
