// Public API of ssidb: an embedded, in-memory, multiversion transactional
// key-value engine whose concurrency control runs in the three modes the
// paper evaluates — strict two-phase locking (S2PL), snapshot isolation
// (SI), and the paper's contribution, Serializable Snapshot Isolation (SSI).
//
//   ssidb::DBOptions opts;
//   std::unique_ptr<ssidb::DB> db;
//   ssidb::DB::Open(opts, &db);
//   ssidb::TableId accounts;
//   db->CreateTable("accounts", &accounts);
//   auto txn = db->Begin({.isolation = ssidb::IsolationLevel::kSerializableSSI});
//   std::string v;
//   ssidb::Status s = txn->Get(accounts, "alice", &v);
//   s = txn->Put(accounts, "alice", "42");
//   s = txn->Commit();   // may fail kUnsafe / kUpdateConflict / kDeadlock
//
// A Transaction is used by a single thread. Any operation returning a
// status for which Status::IsAbort() is true has already rolled the
// transaction back; the caller simply retries with a fresh transaction
// (every benchmark in Chapter 6 follows this retry discipline).

#ifndef SSIDB_DB_DB_H_
#define SSIDB_DB_DB_H_

#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/options.h"
#include "src/common/slice.h"
#include "src/common/status.h"
#include "src/lock/lock_manager.h"
#include "src/sgt/history.h"
#include "src/ssi/conflict_tracker.h"
#include "src/storage/table.h"
#include "src/txn/log_manager.h"
#include "src/txn/txn_manager.h"

namespace ssidb {

class DB;

/// A single client transaction. Obtained from DB::Begin; one thread only.
class Transaction {
 public:
  ~Transaction();

  Transaction(const Transaction&) = delete;
  Transaction& operator=(const Transaction&) = delete;

  /// Point read. kNotFound if the key has no visible, live version.
  /// Under S2PL/SSI the read also locks the *absence* of the key, so later
  /// inserts of `key` by concurrent transactions conflict.
  Status Get(TableId table, Slice key, std::string* value);

  /// Locking read — the paper's SELECT ... FOR UPDATE (§2.6.2), with the
  /// Oracle/InnoDB semantics the paper endorses for promotion: acquires
  /// the EXCLUSIVE lock *before* the snapshot is chosen (§4.5), then
  /// applies the first-committer-wins check, so a transaction whose first
  /// statement is GetForUpdate always reads the latest committed value and
  /// a later conflicting writer cannot slip between read and write.
  /// Returns kUpdateConflict if a version newer than this transaction's
  /// snapshot has already committed (the unsafe-promotion case the paper
  /// shows PostgreSQL admits, §2.6.2).
  Status GetForUpdate(TableId table, Slice key, std::string* value);

  /// Upsert: update the key if its index entry exists, insert otherwise
  /// (the insert path takes the Fig 3.7 gap lock).
  Status Put(TableId table, Slice key, Slice value);

  /// Insert; kDuplicateKey if a live version is already committed or the
  /// transaction itself already wrote the key.
  Status Insert(TableId table, Slice key, Slice value);

  /// Delete by installing a tombstone version (§3.5). kNotFound if no
  /// visible live version exists.
  Status Delete(TableId table, Slice key);

  /// Predicate read over the inclusive range [lo, hi] (Fig 3.6's scanRead
  /// applied to every index entry in range). `fn` receives each visible
  /// key/value; returning false stops the iteration early (locks already
  /// taken are kept). Keys are visited in ascending order.
  using ScanCallback = std::function<bool(Slice key, Slice value)>;
  Status Scan(TableId table, Slice lo, Slice hi, const ScanCallback& fn);

  /// Commit. For SSI transactions runs the dangerous-structure check
  /// (Fig 3.2 / Fig 3.10) atomically with the committed transition; on
  /// kUnsafe the transaction has been rolled back. Waits for the group
  /// commit flush when LogOptions::flush_on_commit is set.
  Status Commit();

  /// Roll back. Idempotent; safe after a failed operation.
  Status Abort();

  TxnId id() const { return state_->id; }
  IsolationLevel isolation() const { return state_->isolation; }
  /// The transaction's snapshot timestamp (0 before late allocation, §4.5).
  Timestamp snapshot_ts() const { return state_->read_ts.load(); }
  /// Commit timestamp (0 unless committed).
  Timestamp commit_ts() const { return state_->commit_ts.load(); }
  bool active() const { return !finished_; }

 private:
  friend class DB;
  Transaction(DB* db, std::shared_ptr<TxnState> state);

  /// Pre-flight for every operation: reject finished transactions, honour
  /// an asynchronous victim mark (§3.7.2) by aborting now.
  Status CheckUsable();

  /// Assign the read snapshot if still unassigned, per the §4.5 rule
  /// (after the first statement's locks), and record history Begin once.
  void EnsureSnapshot();

  /// Abort and return `cause` (the paper's "abort as soon as the problem
  /// is discovered", §3.7.1).
  Status AbortWith(const Status& cause);

  /// Lock key for a row operation under the configured granularity:
  /// the row itself (kRow) or its page bucket (kPage, §4.1).
  LockKey RowLockKey(TableId table, Slice key) const;
  /// Gap lock key protecting the open interval below `next_key`;
  /// `next_key` == nullopt means the table's supremum gap (Fig 3.6/3.7).
  LockKey GapLockKey(TableId table,
                     const std::optional<std::string>& next_key) const;

  /// Acquire `mode` on `lk` and route any rw-conflict evidence to the SSI
  /// tracker (Fig 3.4 line 3 / Fig 3.5 line 4). Aborts this transaction on
  /// deadlock/timeout/unsafe and returns the cause.
  Status AcquireAndMark(const LockKey& lk, LockMode mode);

  /// The paper's modified read applied to one chain: snapshot-read (or
  /// latest-committed for S2PL) and mark rw-conflicts with creators of
  /// ignored newer versions (Fig 3.4 lines 8-9).
  Status ReadChainAndMark(TableId table, Slice key, VersionChain* chain,
                          std::string* value, ReadResult* out);

  /// First-committer-wins check (§2.5/§4.2) for a write to `chain`; in
  /// page mode also consults the page write table. Call with the exclusive
  /// lock held and the snapshot assigned.
  Status CheckFirstCommitterWins(VersionChain* chain, const LockKey& row_lk);

  /// Shared body of Put/Insert/Delete.
  enum class WriteKind { kUpsert, kInsert, kDelete };
  Status WriteImpl(TableId table, Slice key, Slice value, WriteKind kind);

  DB* const db_;
  std::shared_ptr<TxnState> state_;
  bool finished_ = false;
  bool history_begin_recorded_ = false;
};

/// Aggregate engine counters surfaced to benchmarks and tests.
struct DBStats {
  uint64_t unsafe_aborts = 0;      ///< SSI dangerous structures detected.
  uint64_t deadlocks = 0;          ///< Lock cycles detected.
  uint64_t lock_waits = 0;         ///< Blocking lock acquisitions.
  uint64_t log_records = 0;        ///< Commit records appended.
  uint64_t log_flush_batches = 0;  ///< Group-commit flushes.
  size_t active_txns = 0;
  size_t suspended_txns = 0;       ///< Committed-but-retained (§3.3).
  size_t lock_grants = 0;          ///< Live (txn, key, mode) grants.
};

class DB {
 public:
  /// Open a fresh in-memory engine. Never fails today, but keeps the
  /// fallible signature so callers are ready for persistent variants.
  static Status Open(const DBOptions& options, std::unique_ptr<DB>* db);

  ~DB();

  DB(const DB&) = delete;
  DB& operator=(const DB&) = delete;

  /// Create a table. kInvalidArgument on duplicate name.
  Status CreateTable(const std::string& name, TableId* id);
  /// Look up a table id by name. kNotFound if absent.
  Status FindTable(const std::string& name, TableId* id) const;

  std::unique_ptr<Transaction> Begin(const TxnOptions& options = {});

  DBStats GetStats() const;
  const DBOptions& options() const { return options_; }

  /// The §3.1.1 after-the-fact history oracle; non-null only when
  /// DBOptions::record_history was set.
  sgt::HistoryRecorder* history() { return history_.get(); }

  /// Reclaim versions unreachable by any active snapshot in `table`
  /// (inline pruning is driven by writes; this is the full sweep).
  /// Returns the number of versions freed.
  size_t PruneVersions(TableId table);

  // Internal subsystem access (tests, benchmarks).
  TxnManager* txn_manager() { return txn_manager_.get(); }
  LockManager* lock_manager() { return lock_manager_.get(); }
  ConflictTracker* conflict_tracker() { return tracker_.get(); }
  Table* table(TableId id);

 private:
  friend class Transaction;
  explicit DB(const DBOptions& options);

  const DBOptions options_;
  std::unique_ptr<LogManager> log_manager_;
  std::unique_ptr<LockManager> lock_manager_;
  std::unique_ptr<TxnManager> txn_manager_;
  std::unique_ptr<ConflictTracker> tracker_;
  std::unique_ptr<sgt::HistoryRecorder> history_;

  mutable std::mutex tables_mu_;
  std::vector<std::unique_ptr<Table>> tables_;
  std::unordered_map<std::string, TableId> table_names_;
};

}  // namespace ssidb

#endif  // SSIDB_DB_DB_H_
