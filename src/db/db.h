// Public API of ssidb: an embedded, in-memory, multiversion transactional
// key-value engine whose concurrency control runs in the three modes the
// paper evaluates — strict two-phase locking (S2PL), snapshot isolation
// (SI), and the paper's contribution, Serializable Snapshot Isolation (SSI).
//
//   ssidb::DBOptions opts;
//   std::unique_ptr<ssidb::DB> db;
//   ssidb::DB::Open(opts, &db);
//   ssidb::TableId accounts;
//   db->CreateTable("accounts", &accounts);
//   auto txn = db->Begin({.isolation = ssidb::IsolationLevel::kSerializableSSI});
//   std::string v;
//   ssidb::Status s = txn->Get(accounts, "alice", &v);
//   s = txn->Put(accounts, "alice", "42");
//   s = txn->Commit();   // may fail kUnsafe / kUpdateConflict / kDeadlock
//
// A Transaction is used by a single thread. Any operation returning a
// status for which Status::IsAbort() is true has already rolled the
// transaction back; the caller simply retries with a fresh transaction
// (every benchmark in Chapter 6 follows this retry discipline).
//
// DB is a thin façade: it owns the subsystems (catalog/storage, lock
// manager, transaction manager, SSI tracker, log, history oracle) and
// wires them into an Executor; all operation protocols live in
// src/txn/executor.{h,cc} (see ARCHITECTURE.md for the layer diagram).

#ifndef SSIDB_DB_DB_H_
#define SSIDB_DB_DB_H_

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "src/common/abort_reason.h"
#include "src/common/options.h"
#include "src/common/slice.h"
#include "src/common/status.h"
#include "src/lock/lock_manager.h"
#include "src/obs/exporter.h"
#include "src/obs/metrics.h"
#include "src/obs/trace_ring.h"
#include "src/recovery/recovery.h"
#include "src/sgt/history.h"
#include "src/ssi/conflict_tracker.h"
#include "src/storage/catalog.h"
#include "src/storage/storage_tier.h"
#include "src/storage/table.h"
#include "src/txn/executor.h"
#include "src/txn/log_manager.h"
#include "src/txn/txn_manager.h"

namespace ssidb {

class DB;
class Session;  // src/db/session.h

/// A single client transaction. Obtained from DB::Begin; one thread only.
class Transaction {
 public:
  ~Transaction();

  Transaction(const Transaction&) = delete;
  Transaction& operator=(const Transaction&) = delete;

  /// Point read. kNotFound if the key has no visible, live version.
  /// Under S2PL/SSI the read also locks the *absence* of the key, so later
  /// inserts of `key` by concurrent transactions conflict.
  Status Get(TableId table, Slice key, std::string* value);

  /// Locking read — the paper's SELECT ... FOR UPDATE (§2.6.2), with the
  /// Oracle/InnoDB semantics the paper endorses for promotion: acquires
  /// the EXCLUSIVE lock *before* the snapshot is chosen (§4.5), then
  /// applies the first-committer-wins check, so a transaction whose first
  /// statement is GetForUpdate always reads the latest committed value and
  /// a later conflicting writer cannot slip between read and write.
  /// Returns kUpdateConflict if a version newer than this transaction's
  /// snapshot has already committed (the unsafe-promotion case the paper
  /// shows PostgreSQL admits, §2.6.2).
  Status GetForUpdate(TableId table, Slice key, std::string* value);

  /// Upsert: update the key if its index entry exists, insert otherwise
  /// (the insert path takes the Fig 3.7 gap lock).
  Status Put(TableId table, Slice key, Slice value);

  /// Insert; kDuplicateKey if a live version is already committed or the
  /// transaction itself already wrote the key.
  Status Insert(TableId table, Slice key, Slice value);

  /// Delete by installing a tombstone version (§3.5). kNotFound if no
  /// visible live version exists.
  Status Delete(TableId table, Slice key);

  /// Predicate read over the inclusive range [lo, hi] (Fig 3.6's scanRead
  /// applied to every index entry in range). `fn` receives each visible
  /// key/value; returning false stops the iteration early (locks already
  /// taken are kept). Keys are visited in ascending order.
  using ScanCallback = ssidb::ScanCallback;
  Status Scan(TableId table, Slice lo, Slice hi, const ScanCallback& fn);

  /// Commit. For SSI transactions runs the dangerous-structure check
  /// (Fig 3.2 / Fig 3.10) atomically with the committed transition; on
  /// kUnsafe the transaction has been rolled back. Waits for the group
  /// commit flush when LogOptions::flush_on_commit is set.
  Status Commit();

  /// Roll back. Idempotent; safe after a failed operation.
  Status Abort();

  TxnId id() const { return ctx_.state->id; }
  IsolationLevel isolation() const { return ctx_.state->isolation; }
  /// The transaction's snapshot timestamp (0 before late allocation, §4.5).
  Timestamp snapshot_ts() const { return ctx_.state->read_ts.load(); }
  /// Commit timestamp (0 unless committed).
  Timestamp commit_ts() const { return ctx_.state->commit_ts.load(); }
  bool active() const { return !ctx_.finished; }
  /// Abort forensics: why this transaction aborted (kNone while active or
  /// after a successful commit; abort_reason.h taxonomy otherwise).
  AbortReason abort_cause() const {
    return static_cast<AbortReason>(
        ctx_.state->abort_cause.load(std::memory_order_relaxed));
  }
  /// The conflicting transaction recorded with the cause, when the abort
  /// came from an rw-antidependency (0 otherwise).
  TxnId abort_conflict_txn() const {
    return ctx_.state->abort_conflict_txn.load(std::memory_order_relaxed);
  }

 private:
  friend class DB;
  Transaction(Executor* executor, std::shared_ptr<TxnState> state);

  Executor* const executor_;
  Executor::TxnCtx ctx_;
};

/// Aggregate engine counters surfaced to benchmarks and tests.
///
/// Consistency contract: every counter is maintained as a relaxed atomic
/// (or read under its subsystem's narrow mutex) and is individually
/// coherent — GetStats() never tears a single counter and may be called
/// from any thread at any time, including under full concurrent load. No
/// ordering is promised *across* counters: a snapshot may show a commit's
/// log record but not yet its lock release, because the engine no longer
/// has any global lock under which a cross-subsystem cut could be taken.
struct DBStats {
  uint64_t unsafe_aborts = 0;      ///< SSI dangerous structures detected.
  uint64_t deadlocks = 0;          ///< Lock cycles detected.
  uint64_t lock_waits = 0;         ///< Blocking lock acquisitions.
  uint64_t log_records = 0;  ///< Commit records appended (write txns only).
  uint64_t log_flush_batches = 0;  ///< Group-commit flushes.
  /// Mean records per group-commit flush batch (0 before the first
  /// flush). The adaptive straggler wait (LogOptions::group_commit_wait_us)
  /// exists to raise this at high MPL.
  double log_mean_flush_batch = 0;
  size_t active_txns = 0;
  size_t suspended_txns = 0;       ///< Committed-but-retained (§3.3).
  size_t lock_grants = 0;          ///< Live (txn, key, mode) grants.

  // Durability + storage-GC counters (one coherent record for benches and
  // the recovery-smoke JSON; zero for in-memory engines where durable).
  uint64_t checkpoints_taken = 0;  ///< Base + delta images written.
  uint64_t checkpoint_bytes_written = 0;  ///< Image bytes, incl. deltas.
  uint64_t wal_segments_deleted = 0;      ///< Segments reclaimed by GC.
  /// Committed versions reclaimed: inline write-path prunes plus the
  /// background sweep plus manual PruneVersions calls.
  uint64_t versions_pruned = 0;
  /// Live entries in the kPage first-committer-wins map (bounded by the
  /// CleanupSuspended sweep; 0 under kRow granularity).
  size_t page_fcw_entries = 0;

  // Commit-pipeline counters (the lock-free commit-slot ring + sharded
  // waiter parking; see src/txn/commit_ring.h).
  /// Commit acknowledgments that parked waiting for watermark coverage.
  uint64_t commit_waits = 0;
  /// Waiter-shard notifications issued by watermark advances (targeted
  /// wakeups — the old design issued one notify_all per retire).
  uint64_t commit_wakeups = 0;
  /// Commits that stalled on a full commit-slot ring (backpressure;
  /// should stay 0 unless DBOptions::commit_ring_slots is tiny).
  uint64_t ring_full_stalls = 0;
  /// Deepest observed in-flight commit window (allocated commit clock
  /// minus stable watermark, sampled at allocation).
  uint64_t max_commit_window_depth = 0;

  // Certification-stage counters (flat-combining SSI commit validation +
  // the conflict-free fast path; see src/txn/commit_combiner.h and the
  // "Certification triage" argument in src/txn/txn_manager.h).
  /// Combining passes that certified at least one commit.
  uint64_t commit_combine_batches = 0;
  /// Commits certified by those passes (combined/batches = mean batch;
  /// > batches under contention means combining actually amortized).
  uint64_t commit_combined_txns = 0;
  /// Largest single combining pass.
  uint64_t commit_max_batch = 0;
  /// SSI commits that skipped certification entirely because both
  /// conflict sides were clear under their own latch.
  uint64_t commit_fastpath = 0;

  // Disk-tier counters (buffer pool + spill/fault protocol; see
  // src/storage/storage_tier.h). All zero when the tier is disabled
  // (DBOptions::buffer_pool_bytes == 0).
  /// Run-file page reads served from a resident pool frame.
  uint64_t buffer_pool_hits = 0;
  /// Run-file page reads that went to disk (pool frame load).
  uint64_t buffer_pool_misses = 0;
  /// Valid frames reclaimed by the clock (second-chance) scan.
  uint64_t buffer_pool_evictions = 0;
  /// Dirty frames written back to their run file.
  uint64_t buffer_pool_writebacks = 0;
  /// Cold version chains evicted to runs by the spill sweep.
  uint64_t spilled_chains = 0;
  /// Evicted chains faulted back in from runs by reads.
  uint64_t faulted_chains = 0;

  /// Abort forensics: per-reason taxonomy counts (abort_reason.h), counted
  /// exactly once per abort at its kActive->kAborted transition. The
  /// classification is made at the decision site (conflict tracker, FCW
  /// check, deadlock detector), so e.g. kSsiInSide vs kSsiOutSide tells
  /// which side of a dangerous structure the victim sat on.
  struct AbortBreakdown {
    uint64_t by_reason[kAbortReasonCount] = {};
    uint64_t Count(AbortReason r) const {
      return by_reason[static_cast<size_t>(r)];
    }
    uint64_t total() const {
      uint64_t t = 0;
      for (uint64_t v : by_reason) t += v;
      return t;
    }
  };
  AbortBreakdown aborts;
  const AbortBreakdown& abort_breakdown() const { return aborts; }
};

class DB {
 public:
  /// Open the engine. With LogOptions::wal_dir unset this is a fresh
  /// in-memory database and never fails. With wal_dir set, Open first runs
  /// crash recovery against the directory — loads the newest complete
  /// checkpoint and replays the WAL segments past it (tolerating a torn
  /// tail record) — so every previously flushed commit is visible again
  /// with its original commit timestamp. Fails with kCorruption/kIOError
  /// when the directory's durable state is damaged beyond a torn tail.
  static Status Open(const DBOptions& options, std::unique_ptr<DB>* db);

  ~DB();

  DB(const DB&) = delete;
  DB& operator=(const DB&) = delete;

  /// Create a table. kInvalidArgument on duplicate name. In durable mode
  /// the creation is logged (and, under flush_on_commit, flushed) so the
  /// table — and the id its commit records refer to — survives a crash.
  Status CreateTable(const std::string& name, TableId* id);
  /// Look up a table id by name. kNotFound if absent. After a recovered
  /// Open, this is how clients rebind ids for pre-crash tables.
  Status FindTable(const std::string& name, TableId* id) const;

  std::unique_ptr<Transaction> Begin(const TxnOptions& options = {});

  /// Create a session: handle-keyed ownership of many open transactions,
  /// the multiplexing alternative to one Transaction object per in-flight
  /// transaction (src/db/session.h — include it to use the result). The
  /// session must not outlive the DB.
  std::unique_ptr<Session> CreateSession();
  /// Sessions currently alive (created, not yet destroyed).
  size_t sessions_open() const {
    return sessions_open_.load(std::memory_order_relaxed);
  }

  /// Write a checkpoint of committed state at the current stable watermark
  /// into wal_dir (durable mode only; kInvalidArgument otherwise). With
  /// LogOptions::checkpoint_max_deltas > 0 and a base image already on
  /// disk, this writes a *delta* image sweeping only versions committed
  /// since the previous checkpoint (cold storage shards are skipped via
  /// their max-commit-ts hints); every checkpoint_max_deltas-th image —
  /// and the first one — is a full base that compacts the chain. Runs
  /// concurrently with transactions — the sweep holds one storage-shard
  /// latch at a time and never blocks the commit path. A call that finds
  /// nothing committed since the previous image returns OK without
  /// writing. After a base image, sealed WAL segments it covers are
  /// garbage-collected from per-segment metadata counters alone — no
  /// segment is ever re-read from disk.
  Status Checkpoint();

  /// Number of checkpoint images written (manual + background, base +
  /// delta).
  uint64_t checkpoints_taken() const {
    return checkpoints_taken_.load(std::memory_order_relaxed);
  }

  /// Total bytes of checkpoint images written (a delta after touching k of
  /// N keys is O(k) of this while a base is O(N)).
  uint64_t checkpoint_bytes_written() const {
    return checkpoint_bytes_written_.load(std::memory_order_relaxed);
  }

  /// WAL segments garbage-collected by checkpoints (covered by a base
  /// image per their metadata; replay time and disk stay bounded by the
  /// base cadence).
  uint64_t wal_segments_deleted() const {
    return wal_segments_deleted_.load(std::memory_order_relaxed);
  }

  /// What recovery found at Open (zeroed for in-memory engines).
  const recovery::RecoveryStats& recovery_stats() const {
    return recovery_stats_;
  }

  /// Degraded (read-only) mode: set when the WAL flusher reports an
  /// unrecoverable I/O failure (fsync or append). Reads and read-only
  /// commits keep serving from memory; writing commits fail fast with
  /// kIOError before certification; checkpoints, spills and compactions
  /// halt. One-way for the process lifetime — reopen against healthy
  /// storage to clear it. Surfaced as the db.read_only gauge.
  bool read_only() const {
    return read_only_.load(std::memory_order_acquire);
  }

  DBStats GetStats() const;
  const DBOptions& options() const { return options_; }

  /// Render a full metrics snapshot — every registered counter, gauge and
  /// histogram (commit stages, read hit/fault split, pool I/O, abort
  /// taxonomy) — as a single JSON line or Prometheus text.
  std::string DumpMetrics(
      obs::MetricsFormat format = obs::MetricsFormat::kJson);

  /// Dump the in-memory trace ring (aborts, ring stalls, tier faults,
  /// checkpoints) to `path`, one timestamp-sorted text line per event.
  Status DumpTrace(const std::string& path) const;

  /// The metrics registry (tests/benches fold snapshots into their own
  /// output; the eventual network front-end serves it from /metrics).
  obs::MetricsRegistry* metrics() { return &metrics_; }
  obs::TraceRing* trace_ring() { return &trace_; }

  /// The §3.1.1 after-the-fact history oracle; non-null only when
  /// DBOptions::record_history was set.
  sgt::HistoryRecorder* history() { return history_.get(); }

  /// Reclaim versions unreachable by any active snapshot in `table`
  /// (inline pruning is driven by writes; this is the full per-shard
  /// sweep). Returns the number of versions freed.
  size_t PruneVersions(TableId table);

  /// One spill sweep over `table` at the current prune horizon (tests):
  /// cold committed chains move to a run file. Chains touched since the
  /// previous probe only have their clock bit cleared — call twice to
  /// spill a chain that was just written. Returns chains evicted; 0 when
  /// the tier is disabled.
  size_t SpillChains(TableId table);

  // Internal subsystem access (tests, benchmarks).
  TxnManager* txn_manager() { return txn_manager_.get(); }
  LockManager* lock_manager() { return lock_manager_.get(); }
  ConflictTracker* conflict_tracker() { return tracker_.get(); }
  Catalog* catalog() { return &catalog_; }
  Table* table(TableId id) { return catalog_.table(id); }
  /// Disk tier, or nullptr when disabled.
  StorageTier* storage_tier() { return tier_.get(); }

 private:
  friend class Session;  // Sessions wire directly to executor_/txn_manager_.
  explicit DB(const DBOptions& options);

  /// Rebuild state from wal_dir (Open calls this before the first Begin)
  /// and advance the clock past every recovered commit timestamp.
  Status RecoverOnOpen();
  /// Start/stop the background checkpointer (checkpoint_interval_ms).
  void StartCheckpointer();
  void StopCheckpointer();
  /// Start/stop the background version sweep (version_gc_interval_ms):
  /// prunes versions unreachable by any active snapshot so cold (never
  /// rewritten) chains stop leaking. Runs in durable and in-memory modes.
  void StartVersionSweeper();
  void StopVersionSweeper();
  /// One sweep over every table; adds to versions_pruned_.
  void SweepVersions();
  /// Hook every subsystem's histograms into metrics_ and register callback
  /// readers over the existing flat counters (recording cost unchanged:
  /// the registry only adds names at collection time).
  void RegisterAllMetrics();
  /// Start/stop the background metrics dumper (metrics_dump_interval_ms +
  /// metrics_dump_path): appends one DumpMetrics() JSON line per tick.
  void StartMetricsDumper();
  void StopMetricsDumper();
  /// The LogManager I/O-failure callback target: flip the DB-wide
  /// read-only gate (first caller wins), tell the TxnManager to fail
  /// writing commits fast, and trace the transition.
  void EnterReadOnlyMode(const Status& cause);

  const DBOptions options_;
  /// Observability primitives. Declared before every subsystem (destroyed
  /// after them): subsystems hold raw pointers to the trace ring, and the
  /// registry holds pointers to subsystem-owned histograms that must not
  /// dangle while a dumper tick could still collect.
  obs::MetricsRegistry metrics_;
  obs::TraceRing trace_;
  /// Declared before catalog_ (destroyed after it): tables hold raw tier
  /// pointers, and the tier's run files purge their buffer-pool pages on
  /// destruction. Null when the tier is disabled.
  std::unique_ptr<StorageTier> tier_;
  Catalog catalog_;
  std::unique_ptr<LogManager> log_manager_;
  std::unique_ptr<LockManager> lock_manager_;
  std::unique_ptr<TxnManager> txn_manager_;
  std::unique_ptr<ConflictTracker> tracker_;
  std::unique_ptr<sgt::HistoryRecorder> history_;
  std::unique_ptr<Executor> executor_;

  recovery::RecoveryStats recovery_stats_;
  /// Live Session count (the session.open gauge); sessions decrement on
  /// destruction.
  std::atomic<size_t> sessions_open_{0};
  std::atomic<uint64_t> checkpoints_taken_{0};
  std::atomic<uint64_t> checkpoint_bytes_written_{0};
  std::atomic<uint64_t> wal_segments_deleted_{0};
  std::atomic<uint64_t> versions_pruned_{0};
  /// Degraded-mode gate — see read_only().
  std::atomic<bool> read_only_{false};
  /// Checkpoint images that failed on I/O (io.errors.checkpoint).
  std::atomic<uint64_t> checkpoint_io_errors_{0};
  /// Serializes Checkpoint() calls (manual vs background interval) and
  /// guards the chain bookkeeping below.
  std::mutex checkpoint_write_mu_;
  /// Watermark + captured table count of the newest base image: the
  /// coverage cut for metadata-driven WAL GC (seeded from recovery).
  Timestamp last_base_watermark_ = 0;
  uint32_t last_base_table_count_ = 0;
  /// Watermark of the newest image of any kind (the next delta's prev).
  Timestamp last_checkpoint_watermark_ = 0;
  /// Delta links written since the last base; at checkpoint_max_deltas the
  /// next image compacts the chain into a fresh base.
  uint32_t deltas_since_base_ = 0;

  std::mutex checkpointer_mu_;
  std::condition_variable checkpointer_cv_;
  bool checkpointer_stop_ = false;
  std::thread checkpointer_;

  std::mutex sweeper_mu_;
  std::condition_variable sweeper_cv_;
  bool sweeper_stop_ = false;
  std::thread sweeper_;

  std::mutex dumper_mu_;
  std::condition_variable dumper_cv_;
  bool dumper_stop_ = false;
  std::thread dumper_;
};

}  // namespace ssidb

#endif  // SSIDB_DB_DB_H_
