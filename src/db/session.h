// Session: handle-keyed ownership of many open transactions.
//
// The Transaction handle (db.h) binds one transaction to one C++ object
// driven by one thread — fine for the paper's MPL-style benchmarks, where
// every in-flight transaction has a dedicated thread parked inside it, but
// the wrong shape for a network front-end or a pipelined client, where a
// few worker threads multiplex thousands of open transactions. A Session
// is the multiplexing shape: transactions are begun into the session,
// addressed by opaque TxnHandle values, and their engine state (an
// Executor::TxnCtx) lives on the session's heap until commit/abort
// retires it. Paired with Session::CommitAsync, one thread can keep
// thousands of commits in flight — the completion-driven commit core
// (txn_manager.h "Submit/finalize split") acknowledges each one as its
// group-commit flush lands.
//
// Threading: a Session may be shared by threads (the handle map is
// mutex-guarded), but each individual transaction follows the engine-wide
// rule — one handle is driven by at most one thread at a time, and a
// handle must not be used concurrently with its own Commit/Abort. After
// CommitAsync returns, the handle is retired even though the
// acknowledgment is still in flight; the outcome arrives via the
// callback.

#ifndef SSIDB_DB_SESSION_H_
#define SSIDB_DB_SESSION_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "src/db/db.h"

namespace ssidb {

/// Addresses one open transaction within a Session. Opaque, never reused
/// within a session; 0 is never a valid handle.
using TxnHandle = uint64_t;

class Session {
 public:
  /// Aborts every transaction still open in the session.
  ~Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Begin a transaction owned by this session. Never fails; the returned
  /// handle stays valid until Commit/CommitAsync/Abort retires it.
  TxnHandle Begin(const TxnOptions& options = {});

  // Operations, mirroring Transaction (db.h) with the handle in place of
  // `this`. kTxnInvalid when the handle is unknown or already retired. A
  // status with IsAbort() true means the transaction rolled back AND the
  // handle was retired (the session reaps aborted transactions so a
  // pipelined client never leaks contexts it will not revisit).
  Status Get(TxnHandle h, TableId table, Slice key, std::string* value);
  Status GetForUpdate(TxnHandle h, TableId table, Slice key,
                      std::string* value);
  Status Put(TxnHandle h, TableId table, Slice key, Slice value);
  Status Insert(TxnHandle h, TableId table, Slice key, Slice value);
  Status Delete(TxnHandle h, TableId table, Slice key);
  Status Scan(TxnHandle h, TableId table, Slice lo, Slice hi,
              const ScanCallback& fn);

  /// Blocking commit; retires the handle regardless of outcome.
  Status Commit(TxnHandle h);

  /// Asynchronous commit (Executor::CommitAsync): the handle is retired at
  /// submit, before this returns; `done(status)` fires exactly once on the
  /// acknowledging thread when the commit is covered and flushed (or
  /// immediately, on this thread, for an abort verdict or an unknown
  /// handle). `done` may Begin/submit new work on this session — the
  /// session holds no lock while it runs — but must not block on another
  /// commit's acknowledgment.
  void CommitAsync(TxnHandle h, TxnManager::CommitCallback done);

  /// Roll back and retire the handle. OK even if the handle is unknown
  /// (mirrors Transaction::Abort's idempotence).
  Status Abort(TxnHandle h);

  /// Transactions currently open in this session (begun, not yet retired).
  size_t open_transactions() const;

  /// Forensics for an open transaction: 0 / kNone when the handle is
  /// unknown (retired handles keep no state in the session).
  TxnId id(TxnHandle h) const;
  Timestamp snapshot_ts(TxnHandle h) const;

 private:
  friend class DB;
  explicit Session(DB* db);

  /// Look up an open context. The returned pointer is stable across map
  /// rehash (contexts are heap-allocated) and valid until the handle is
  /// retired — which, per the threading contract, cannot race an
  /// in-progress operation on the same handle.
  Executor::TxnCtx* Find(TxnHandle h) const;
  /// Remove and return the context (nullptr if unknown).
  std::unique_ptr<Executor::TxnCtx> Take(TxnHandle h);

  DB* const db_;
  Executor* const executor_;

  mutable std::mutex mu_;
  TxnHandle next_handle_ = 1;
  std::unordered_map<TxnHandle, std::unique_ptr<Executor::TxnCtx>> open_;
};

}  // namespace ssidb

#endif  // SSIDB_DB_SESSION_H_
