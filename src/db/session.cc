#include "src/db/session.h"

namespace ssidb {

Session::Session(DB* db) : db_(db), executor_(db->executor_.get()) {}

Session::~Session() {
  // Swap the map out first: an Abort below must not run under mu_ (it
  // takes engine locks), and nothing else can touch the session once its
  // destructor runs.
  std::unordered_map<TxnHandle, std::unique_ptr<Executor::TxnCtx>> open;
  {
    std::lock_guard<std::mutex> guard(mu_);
    open.swap(open_);
  }
  for (auto& entry : open) {
    if (!entry.second->finished) {
      executor_->Abort(*entry.second);
    }
  }
  db_->sessions_open_.fetch_sub(1, std::memory_order_relaxed);
}

TxnHandle Session::Begin(const TxnOptions& options) {
  auto ctx = std::make_unique<Executor::TxnCtx>();
  ctx->state = db_->txn_manager_->Begin(options.isolation);
  std::lock_guard<std::mutex> guard(mu_);
  const TxnHandle h = next_handle_++;
  open_.emplace(h, std::move(ctx));
  return h;
}

Executor::TxnCtx* Session::Find(TxnHandle h) const {
  std::lock_guard<std::mutex> guard(mu_);
  auto it = open_.find(h);
  return it == open_.end() ? nullptr : it->second.get();
}

std::unique_ptr<Executor::TxnCtx> Session::Take(TxnHandle h) {
  std::lock_guard<std::mutex> guard(mu_);
  auto it = open_.find(h);
  if (it == open_.end()) return nullptr;
  std::unique_ptr<Executor::TxnCtx> ctx = std::move(it->second);
  open_.erase(it);
  return ctx;
}

namespace {
Status UnknownHandle() {
  return Status::TxnInvalid("unknown transaction handle");
}
}  // namespace

// Each operation runs outside mu_ on the stable heap context; an abort
// outcome retires the handle (the executor already rolled the transaction
// back, so the context holds nothing a client may legally revisit).

Status Session::Get(TxnHandle h, TableId table, Slice key,
                    std::string* value) {
  Executor::TxnCtx* ctx = Find(h);
  if (ctx == nullptr) return UnknownHandle();
  const Status st = executor_->Get(*ctx, table, key, value);
  if (st.IsAbort()) Take(h);
  return st;
}

Status Session::GetForUpdate(TxnHandle h, TableId table, Slice key,
                             std::string* value) {
  Executor::TxnCtx* ctx = Find(h);
  if (ctx == nullptr) return UnknownHandle();
  const Status st = executor_->GetForUpdate(*ctx, table, key, value);
  if (st.IsAbort()) Take(h);
  return st;
}

Status Session::Put(TxnHandle h, TableId table, Slice key, Slice value) {
  Executor::TxnCtx* ctx = Find(h);
  if (ctx == nullptr) return UnknownHandle();
  const Status st = executor_->Put(*ctx, table, key, value);
  if (st.IsAbort()) Take(h);
  return st;
}

Status Session::Insert(TxnHandle h, TableId table, Slice key, Slice value) {
  Executor::TxnCtx* ctx = Find(h);
  if (ctx == nullptr) return UnknownHandle();
  const Status st = executor_->Insert(*ctx, table, key, value);
  if (st.IsAbort()) Take(h);
  return st;
}

Status Session::Delete(TxnHandle h, TableId table, Slice key) {
  Executor::TxnCtx* ctx = Find(h);
  if (ctx == nullptr) return UnknownHandle();
  const Status st = executor_->Delete(*ctx, table, key);
  if (st.IsAbort()) Take(h);
  return st;
}

Status Session::Scan(TxnHandle h, TableId table, Slice lo, Slice hi,
                     const ScanCallback& fn) {
  Executor::TxnCtx* ctx = Find(h);
  if (ctx == nullptr) return UnknownHandle();
  const Status st = executor_->Scan(*ctx, table, lo, hi, fn);
  if (st.IsAbort()) Take(h);
  return st;
}

Status Session::Commit(TxnHandle h) {
  std::unique_ptr<Executor::TxnCtx> ctx = Take(h);
  if (ctx == nullptr) return UnknownHandle();
  return executor_->Commit(*ctx);
}

void Session::CommitAsync(TxnHandle h, TxnManager::CommitCallback done) {
  std::unique_ptr<Executor::TxnCtx> ctx = Take(h);
  if (ctx == nullptr) {
    done(UnknownHandle());
    return;
  }
  executor_->CommitAsync(*ctx, std::move(done));
  // The context dies here — Executor::CommitAsync finishes it at submit;
  // everything the in-flight acknowledgment needs travels in the callback.
}

Status Session::Abort(TxnHandle h) {
  std::unique_ptr<Executor::TxnCtx> ctx = Take(h);
  if (ctx == nullptr) return Status::OK();
  return executor_->Abort(*ctx);
}

size_t Session::open_transactions() const {
  std::lock_guard<std::mutex> guard(mu_);
  return open_.size();
}

TxnId Session::id(TxnHandle h) const {
  std::lock_guard<std::mutex> guard(mu_);
  auto it = open_.find(h);
  return it == open_.end() ? 0 : it->second->state->id;
}

Timestamp Session::snapshot_ts(TxnHandle h) const {
  std::lock_guard<std::mutex> guard(mu_);
  auto it = open_.find(h);
  return it == open_.end() ? 0 : it->second->state->read_ts.load();
}

}  // namespace ssidb
