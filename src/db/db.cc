// The DB façade: subsystem ownership and wiring. All operation protocols
// (read/write/scan/commit for the three concurrency-control modes) live in
// the executor layer, src/txn/executor.cc.

#include "src/db/db.h"

#include <chrono>
#include <cstdio>

#include "src/db/session.h"
#include "src/io/env.h"
#include "src/recovery/checkpoint.h"
#include "src/recovery/wal.h"

namespace ssidb {

// --------------------------------------------------------------------------
// Transaction: a thin handle forwarding to the executor.
// --------------------------------------------------------------------------

Transaction::Transaction(Executor* executor, std::shared_ptr<TxnState> state)
    : executor_(executor) {
  ctx_.state = std::move(state);
}

Transaction::~Transaction() {
  if (!ctx_.finished) {
    executor_->Abort(ctx_);
  }
}

Status Transaction::Get(TableId table, Slice key, std::string* value) {
  return executor_->Get(ctx_, table, key, value);
}

Status Transaction::GetForUpdate(TableId table, Slice key,
                                 std::string* value) {
  return executor_->GetForUpdate(ctx_, table, key, value);
}

Status Transaction::Put(TableId table, Slice key, Slice value) {
  return executor_->Put(ctx_, table, key, value);
}

Status Transaction::Insert(TableId table, Slice key, Slice value) {
  return executor_->Insert(ctx_, table, key, value);
}

Status Transaction::Delete(TableId table, Slice key) {
  return executor_->Delete(ctx_, table, key);
}

Status Transaction::Scan(TableId table, Slice lo, Slice hi,
                         const ScanCallback& fn) {
  return executor_->Scan(ctx_, table, lo, hi, fn);
}

Status Transaction::Commit() { return executor_->Commit(ctx_); }

Status Transaction::Abort() { return executor_->Abort(ctx_); }

// --------------------------------------------------------------------------
// DB
// --------------------------------------------------------------------------

DB::DB(const DBOptions& options)
    : options_(options),
      log_manager_(std::make_unique<LogManager>(options.log, options.env)),
      lock_manager_(std::make_unique<LockManager>(LockManager::Config{
          options.deadlock_policy, options.deadlock_scan_interval_ms,
          options.lock_timeout_ms, options.upgrade_siread_locks})),
      txn_manager_(std::make_unique<TxnManager>(options, lock_manager_.get(),
                                                log_manager_.get())),
      tracker_(std::make_unique<ConflictTracker>(options, txn_manager_.get())) {
  if (options.buffer_pool_bytes > 0 &&
      (!options.data_dir.empty() || !options.log.wal_dir.empty())) {
    // Tier enabled: runs live in data_dir, defaulting to a subdirectory of
    // the WAL directory. A pool size with nowhere to put runs (both dirs
    // empty) leaves the tier off — the engine stays memory-only.
    const std::string dir = options.data_dir.empty()
                                ? options.log.wal_dir + "/runs"
                                : options.data_dir;
    tier_ = std::make_unique<StorageTier>(options, dir);
    catalog_.SetStorageTier(tier_.get());
  }
  if (options.record_history) {
    history_ = std::make_unique<sgt::HistoryRecorder>();
  }
  executor_ = std::make_unique<Executor>(options_, &catalog_,
                                         txn_manager_.get(),
                                         lock_manager_.get(), tracker_.get(),
                                         history_.get());
  // Degraded-mode wiring: the WAL flusher's first unrecoverable I/O
  // failure flips the DB read-only. Registered after txn_manager_ exists
  // (the callback targets it); fires inline if the flusher already failed.
  log_manager_->SetIOErrorCallback(
      [this](const Status& cause) { EnterReadOnlyMode(cause); });
  RegisterAllMetrics();
}

void DB::EnterReadOnlyMode(const Status& cause) {
  (void)cause;
  if (read_only_.exchange(true, std::memory_order_acq_rel)) return;
  // Gate up before any commit can observe the WAL failure status: the
  // LogManager fires this callback before waking matured flush waiters.
  txn_manager_->EnterReadOnly();
  trace_.Emit(obs::TraceEvent::kIOError, /*txn=*/0, /*arg16=*/1,
              /*arg32=*/0, /*payload=*/0);
}

DB::~DB() {
  StopMetricsDumper();
  StopCheckpointer();
  StopVersionSweeper();
}

void DB::RegisterAllMetrics() {
  obs::MetricsRegistry* r = &metrics_;
  // Histograms live in their subsystems; each registers its own and hooks
  // the trace ring where it emits events.
  txn_manager_->RegisterMetrics(r, &trace_);
  executor_->RegisterMetrics(r, &trace_);
  log_manager_->RegisterMetrics(r);
  if (tier_ != nullptr) {
    tier_->pool()->RegisterMetrics(r, &trace_);
    tier_->SetTraceRing(&trace_);
  }

  // Counters and gauges read through the subsystems' existing relaxed
  // accessors: the recording site stays a single fetch-add (or narrow
  // mutex), and the registry only attaches names at collection time.
  ConflictTracker* tracker = tracker_.get();
  r->RegisterCounter("ssi.unsafe_aborts",
                     [tracker] { return tracker->unsafe_aborts(); });
  LockManager* locks = lock_manager_.get();
  r->RegisterCounter("lock.waits", [locks] { return locks->waits(); });
  r->RegisterCounter("lock.deadlocks",
                     [locks] { return locks->deadlocks_detected(); });
  r->RegisterGauge("lock.grants", [locks] {
    return static_cast<uint64_t>(locks->GrantCount());
  });
  LogManager* log = log_manager_.get();
  r->RegisterCounter("log.records",
                     [log] { return log->appended_records(); });
  r->RegisterCounter("log.flush_batches",
                     [log] { return log->flush_batches(); });
  TxnManager* txns = txn_manager_.get();
  r->RegisterGauge("engine.active_txns", [txns] {
    return static_cast<uint64_t>(txns->active_count());
  });
  r->RegisterGauge("engine.suspended_txns", [txns] {
    return static_cast<uint64_t>(txns->suspended_count());
  });
  r->RegisterGauge("session.open", [this] {
    return static_cast<uint64_t>(
        sessions_open_.load(std::memory_order_relaxed));
  });
  r->RegisterCounter("commit.waits", [txns] { return txns->commit_waits(); });
  r->RegisterCounter("commit.wakeups",
                     [txns] { return txns->commit_wakeups(); });
  r->RegisterCounter("commit.ring_full_stalls",
                     [txns] { return txns->ring_full_stalls(); });
  r->RegisterGauge("commit.max_window_depth",
                   [txns] { return txns->max_commit_window_depth(); });
  r->RegisterCounter("commit.combine_batches",
                     [txns] { return txns->commit_combine_batches(); });
  r->RegisterCounter("commit.combined_txns",
                     [txns] { return txns->commit_combined_txns(); });
  r->RegisterCounter("commit.fastpath",
                     [txns] { return txns->commit_fastpath(); });
  r->RegisterGauge("txn.page_fcw_entries", [txns] {
    return static_cast<uint64_t>(txns->page_write_entries());
  });
  r->RegisterCounter("ckpt.taken", [this] {
    return checkpoints_taken_.load(std::memory_order_relaxed);
  });
  r->RegisterCounter("ckpt.bytes_written", [this] {
    return checkpoint_bytes_written_.load(std::memory_order_relaxed);
  });
  r->RegisterCounter("wal.segments_deleted", [this] {
    return wal_segments_deleted_.load(std::memory_order_relaxed);
  });
  Executor* exec = executor_.get();
  r->RegisterCounter("gc.versions_pruned", [this, exec] {
    return versions_pruned_.load(std::memory_order_relaxed) +
           exec->versions_pruned();
  });
  // Fault model / degraded mode (ARCHITECTURE.md "Fault model &
  // degradation"): the read-only gate plus per-subsystem I/O failure
  // counters, one per failure domain so forensics can tell which artifact
  // the disk hurt.
  r->RegisterGauge("db.read_only",
                   [this] { return read_only() ? uint64_t{1} : uint64_t{0}; });
  r->RegisterCounter("io.errors.wal", [log] { return log->io_errors(); });
  r->RegisterCounter("io.errors.checkpoint", [this] {
    return checkpoint_io_errors_.load(std::memory_order_relaxed);
  });
  if (io::Env* env = options_.env; env != nullptr) {
    r->RegisterCounter("io.injected_faults",
                       [env] { return env->injected_faults(); });
  }
  if (tier_ != nullptr) {
    BufferPool* pool = tier_->pool();
    StorageTier* tier = tier_.get();
    r->RegisterCounter("pool.hits", [pool] { return pool->hits(); });
    r->RegisterCounter("pool.misses", [pool] { return pool->misses(); });
    r->RegisterCounter("pool.evictions",
                       [pool] { return pool->evictions(); });
    r->RegisterCounter("pool.writebacks",
                       [pool] { return pool->writebacks(); });
    r->RegisterCounter("tier.spilled_chains",
                       [tier] { return tier->spilled_chains(); });
    r->RegisterCounter("tier.faulted_chains",
                       [tier] { return tier->faulted_chains(); });
    r->RegisterCounter("io.retries", [pool] { return pool->io_retries(); });
    r->RegisterCounter("io.errors.pool",
                       [pool] { return pool->io_errors(); });
    r->RegisterCounter("io.errors.tier",
                       [tier] { return tier->io_errors(); });
  }
  // One counter per abort-taxonomy reason (kNone excluded: it is never
  // counted — unclassified aborts fold into kExplicit).
  for (size_t i = 1; i < kAbortReasonCount; ++i) {
    const AbortReason reason = static_cast<AbortReason>(i);
    r->RegisterCounter(std::string("abort.") + AbortReasonName(reason),
                       [txns, reason] { return txns->abort_count(reason); });
  }
}

std::string DB::DumpMetrics(obs::MetricsFormat format) {
  return obs::Render(metrics_.Collect(), format);
}

Status DB::DumpTrace(const std::string& path) const {
  return trace_.DumpTo(path);
}

void DB::StartMetricsDumper() {
  if (options_.metrics_dump_interval_ms == 0 ||
      options_.metrics_dump_path.empty()) {
    return;
  }
  dumper_ = std::thread([this] {
    const auto interval =
        std::chrono::milliseconds(options_.metrics_dump_interval_ms);
    std::unique_lock<std::mutex> guard(dumper_mu_);
    while (!dumper_stop_) {
      if (dumper_cv_.wait_for(guard, interval,
                              [this] { return dumper_stop_; })) {
        return;
      }
      guard.unlock();
      // Append one JSON line per tick — a flight-recorder time series.
      // Best effort: an unwritable path just skips the tick.
      const std::string line = DumpMetrics(obs::MetricsFormat::kJson);
      if (FILE* f = std::fopen(options_.metrics_dump_path.c_str(), "a")) {
        std::fwrite(line.data(), 1, line.size(), f);
        std::fputc('\n', f);
        std::fclose(f);
      }
      guard.lock();
    }
  });
}

void DB::StopMetricsDumper() {
  {
    std::lock_guard<std::mutex> guard(dumper_mu_);
    dumper_stop_ = true;
  }
  dumper_cv_.notify_all();
  if (dumper_.joinable()) dumper_.join();
}

Status DB::Open(const DBOptions& options, std::unique_ptr<DB>* db) {
  if (options.rows_per_page == 0) {
    return Status::InvalidArgument("rows_per_page must be positive");
  }
  db->reset(new DB(options));
  if ((*db)->tier_ != nullptr) {
    // Without a WAL the runs cannot be reconciled with any recovered
    // state, so a fresh in-memory engine wipes leftovers from a previous
    // process instead of resurrecting them.
    Status st = (*db)->tier_->Init(/*wipe=*/options.log.wal_dir.empty());
    if (!st.ok()) {
      db->reset();
      return st;
    }
  }
  if (!options.log.wal_dir.empty()) {
    // Crash recovery runs before the first transaction — and before the
    // engine's own WAL writer creates its first segment, so the newest
    // on-disk segment is exactly the pre-crash tail.
    Status st = (*db)->RecoverOnOpen();
    if (!st.ok()) {
      db->reset();
      return st;
    }
    (*db)->StartCheckpointer();
  }
  (*db)->StartVersionSweeper();
  (*db)->StartMetricsDumper();
  return Status::OK();
}

Status DB::RecoverOnOpen() {
  Status st = recovery::Recover(options_.log.wal_dir, &catalog_,
                                &recovery_stats_, options_.env);
  if (!st.ok()) return st;
  // New transactions must draw ids/snapshots above every recovered commit.
  txn_manager_->AdvanceClockTo(recovery_stats_.max_commit_ts);
  if (tier_ != nullptr) {
    // Open the run files and re-mark their chains evicted: spilled state
    // stays on disk across restarts instead of being replayed into RAM.
    // A run may hold commits newer than anything in the WAL/checkpoint
    // cut only if that cut was damaged; the clock still must clear them.
    Timestamp max_run_cts = 0;
    st = tier_->RecoverRuns(&catalog_, &max_run_cts);
    if (!st.ok()) return st;
    txn_manager_->AdvanceClockTo(max_run_cts);
  }
  // Seed the WAL writer's per-segment metadata from recovery's scan, so
  // checkpoint GC can judge pre-crash segments without re-reading them.
  log_manager_->SeedWalSegmentMeta(recovery_stats_.wal_segments);
  // Resume the checkpoint chain where the recovered one ends: the next
  // delta hangs off the chain tip, and WAL GC keeps using the recovered
  // base as its coverage cut. No lock needed — no checkpointer runs yet.
  last_base_watermark_ = recovery_stats_.base_watermark;
  last_base_table_count_ = recovery_stats_.base_table_count;
  last_checkpoint_watermark_ = recovery_stats_.checkpoint_ts;
  deltas_since_base_ =
      static_cast<uint32_t>(recovery_stats_.delta_links_applied);
  return Status::OK();
}

void DB::StartCheckpointer() {
  if (options_.log.checkpoint_interval_ms == 0) return;
  checkpointer_ = std::thread([this] {
    const auto interval =
        std::chrono::milliseconds(options_.log.checkpoint_interval_ms);
    std::unique_lock<std::mutex> guard(checkpointer_mu_);
    while (!checkpointer_stop_) {
      if (checkpointer_cv_.wait_for(guard, interval,
                                    [this] { return checkpointer_stop_; })) {
        return;
      }
      guard.unlock();
      Checkpoint();  // Best effort; failures retried next interval.
      guard.lock();
    }
  });
}

void DB::StopCheckpointer() {
  {
    std::lock_guard<std::mutex> guard(checkpointer_mu_);
    checkpointer_stop_ = true;
  }
  checkpointer_cv_.notify_all();
  if (checkpointer_.joinable()) checkpointer_.join();
}

void DB::StartVersionSweeper() {
  if (options_.version_gc_interval_ms == 0) return;
  sweeper_ = std::thread([this] {
    const auto interval =
        std::chrono::milliseconds(options_.version_gc_interval_ms);
    std::unique_lock<std::mutex> guard(sweeper_mu_);
    while (!sweeper_stop_) {
      if (sweeper_cv_.wait_for(guard, interval,
                               [this] { return sweeper_stop_; })) {
        return;
      }
      guard.unlock();
      SweepVersions();
      guard.lock();
    }
  });
}

void DB::StopVersionSweeper() {
  {
    std::lock_guard<std::mutex> guard(sweeper_mu_);
    sweeper_stop_ = true;
  }
  sweeper_cv_.notify_all();
  if (sweeper_.joinable()) sweeper_.join();
}

void DB::SweepVersions() {
  // Inline pruning only fires when the same key is written again, so a
  // chain that stops being written keeps every version that piled up
  // behind a since-finished snapshot. This sweep is the backstop: one
  // shard latch at a time, per chain O(dropped). The horizon is capped by
  // any in-progress checkpoint sweep (prune_horizon), so the sweep can
  // never delete a version a concurrent image still has to serialize.
  const Timestamp horizon = txn_manager_->prune_horizon();
  const size_t tables = catalog_.table_count();
  size_t freed = 0;
  for (TableId id = 0; id < tables; ++id) {
    Table* t = catalog_.table(id);
    if (t != nullptr) freed += t->PruneShards(horizon);
  }
  if (freed > 0) {
    versions_pruned_.fetch_add(freed, std::memory_order_relaxed);
  }
  if (tier_ != nullptr && !read_only()) {
    // Spill the cold tail the prune left behind: chains whose anchor is at
    // or below the horizon and that stayed untouched for two sweeps move
    // to a run file; the merge daemon then keeps each table's run count
    // bounded. Best effort — a failed run write just retries next sweep.
    // Skipped entirely in degraded mode: spills and compactions write new
    // durable artifacts, and the chains they would evict are safer
    // resident (pruning above still runs — it only frees memory).
    for (TableId id = 0; id < tables; ++id) {
      Table* t = catalog_.table(id);
      if (t == nullptr) continue;
      t->SpillShards(horizon);
      tier_->MaybeCompact(id);
    }
  }
}

Status DB::Checkpoint() {
  if (options_.log.wal_dir.empty()) {
    return Status::InvalidArgument("checkpoint requires LogOptions::wal_dir");
  }
  if (read_only()) {
    // Degraded mode: the WAL can no longer extend the durable history, so
    // a new image would cover commits whose log records may be lost.
    return Status::IOError("database is read-only: WAL I/O failure");
  }
  // One checkpoint at a time: a manual call racing the background tick
  // would interleave writes into the same image file.
  std::lock_guard<std::mutex> guard(checkpoint_write_mu_);
  // Every commit at or below the stable watermark has fully stamped its
  // versions (txn_manager.h), so the sweep observes a consistent cut.
  // BeginCheckpointSweep also floors version pruning at the watermark for
  // the duration of the sweep, so no pruner can delete a key's newest
  // version <= watermark out from under the image.
  const Timestamp watermark = txn_manager_->BeginCheckpointSweep();
  if (watermark == last_checkpoint_watermark_) {
    txn_manager_->EndCheckpointSweep();
    return Status::OK();  // Nothing committed since the previous image.
  }
  // Delta when a base exists and the chain has room; otherwise a full
  // base that compacts the chain (and the very first image is a base).
  const bool full = options_.log.checkpoint_max_deltas == 0 ||
                    last_base_watermark_ == 0 ||
                    deltas_since_base_ >= options_.log.checkpoint_max_deltas;
  const Timestamp prev = full ? 0 : last_checkpoint_watermark_;
  recovery::CheckpointWriteResult written;
  Status st = recovery::WriteCheckpoint(catalog_, watermark, prev,
                                        options_.log.wal_dir,
                                        options_.log.wal_fsync, &written,
                                        options_.env);
  txn_manager_->EndCheckpointSweep();
  if (!st.ok()) {
    // WriteCheckpoint removed its tmp file; the previous chain on disk is
    // untouched and stays loadable. The next call (or background tick)
    // simply retries the same image.
    checkpoint_io_errors_.fetch_add(1, std::memory_order_relaxed);
    trace_.Emit(obs::TraceEvent::kIOError, /*txn=*/0, /*arg16=*/2,
                /*arg32=*/0, /*payload=*/watermark);
    return st;
  }
  checkpoints_taken_.fetch_add(1, std::memory_order_relaxed);
  checkpoint_bytes_written_.fetch_add(written.bytes,
                                      std::memory_order_relaxed);
  trace_.Emit(obs::TraceEvent::kCheckpoint, /*txn=*/0,
              /*arg16=*/full ? 1 : 0, /*arg32=*/written.table_count,
              /*payload=*/watermark);
  if (full) {
    last_base_watermark_ = watermark;
    last_base_table_count_ = written.table_count;
    deltas_since_base_ = 0;
  } else {
    ++deltas_since_base_;
  }
  last_checkpoint_watermark_ = watermark;

  // WAL GC, decided from per-segment metadata counters — zero segment
  // re-reads. The coverage cut is the newest *base* image: recovery may
  // discard any damaged delta link and fall back to the base plus WAL
  // replay, so segments past the base watermark must survive even when a
  // delta covers them. A segment goes when every commit it holds is at or
  // below the base watermark AND any table-create it holds binds an id the
  // base image captured (ids are dense: id < base table count — the
  // create-watermark rule). The highest-sequence segment always stays (it
  // may be the flusher's live file), as does any segment the registry does
  // not know (never the case in practice: this session's segments are
  // registered at append time, pre-crash ones by recovery's scan). Best
  // effort: a kept segment just replays idempotently.
  std::vector<std::string> segments;
  if (last_base_watermark_ > 0 &&
      recovery::ListWalSegments(options_.log.wal_dir, &segments).ok()) {
    const std::map<uint64_t, recovery::WalSegmentMeta> meta =
        log_manager_->WalSegmentMetadata();
    for (size_t i = 0; i + 1 < segments.size(); ++i) {
      uint64_t seq = 0;
      if (!recovery::ParseWalSegmentSeq(segments[i], &seq)) continue;
      auto it = meta.find(seq);
      if (it == meta.end()) continue;  // Unknown provenance: keep.
      const recovery::WalSegmentMeta& m = it->second;
      if (m.max_commit_ts > last_base_watermark_) continue;
      if (m.has_table_create &&
          m.max_table_id_created >= last_base_table_count_) {
        continue;
      }
      if (io::ResolveEnv(options_.env)->RemoveFile(segments[i]).ok()) {
        wal_segments_deleted_.fetch_add(1, std::memory_order_relaxed);
        log_manager_->ForgetWalSegment(seq);
      }
    }
  }
  return Status::OK();
}

Status DB::CreateTable(const std::string& name, TableId* id) {
  TableId created = 0;
  Lsn lsn = 0;
  const bool durable = log_manager_->durable();
  // The (id, name) binding is logged through the catalog's pre-publish
  // hook: still inside the creation critical section, so concurrent
  // creates append their records in id order, and no transaction can
  // commit against the table before its create record is in the log —
  // replay never meets a commit whose table-create is missing or
  // misordered.
  Status st = catalog_.CreateTable(name, &created, [&](TableId tid) {
    if (!durable) return;
    LogRecord record;
    record.type = LogRecordType::kTableCreate;
    record.redo.push_back(RedoEntry{tid, name, std::string(), false});
    lsn = log_manager_->Append(std::move(record));
  });
  if (!st.ok()) return st;
  if (id != nullptr) *id = created;
  if (durable && options_.log.flush_on_commit) {
    // The durability wait happens outside the catalog lock.
    return log_manager_->WaitFlushed(lsn);
  }
  return Status::OK();
}

Status DB::FindTable(const std::string& name, TableId* id) const {
  return catalog_.FindTable(name, id);
}

std::unique_ptr<Transaction> DB::Begin(const TxnOptions& options) {
  return std::unique_ptr<Transaction>(new Transaction(
      executor_.get(), txn_manager_->Begin(options.isolation)));
}

std::unique_ptr<Session> DB::CreateSession() {
  sessions_open_.fetch_add(1, std::memory_order_relaxed);
  return std::unique_ptr<Session>(new Session(this));
}

size_t DB::SpillChains(TableId id) {
  // Read-only gate: a spill evicts chains to a new run file, and in
  // degraded mode that run could durably capture in-memory commits whose
  // WAL records never reached the disk — recovery would then resurrect
  // unacknowledged writes. No new durable artifacts past the failure.
  if (tier_ == nullptr || read_only()) return 0;
  Table* t = catalog_.table(id);
  if (t == nullptr) return 0;
  return t->SpillShards(txn_manager_->prune_horizon());
}

size_t DB::PruneVersions(TableId id) {
  Table* t = catalog_.table(id);
  if (t == nullptr) return 0;
  const size_t freed = t->PruneShards(txn_manager_->prune_horizon());
  if (freed > 0) {
    versions_pruned_.fetch_add(freed, std::memory_order_relaxed);
  }
  return freed;
}

DBStats DB::GetStats() const {
  DBStats s;
  s.unsafe_aborts = tracker_->unsafe_aborts();
  s.deadlocks = lock_manager_->deadlocks_detected();
  s.lock_waits = lock_manager_->waits();
  s.log_records = log_manager_->appended_records();
  s.log_flush_batches = log_manager_->flush_batches();
  s.log_mean_flush_batch = log_manager_->mean_flush_batch();
  s.active_txns = txn_manager_->active_count();
  s.suspended_txns = txn_manager_->suspended_count();
  s.lock_grants = lock_manager_->GrantCount();
  s.checkpoints_taken = checkpoints_taken_.load(std::memory_order_relaxed);
  s.checkpoint_bytes_written =
      checkpoint_bytes_written_.load(std::memory_order_relaxed);
  s.wal_segments_deleted =
      wal_segments_deleted_.load(std::memory_order_relaxed);
  s.versions_pruned = versions_pruned_.load(std::memory_order_relaxed) +
                      executor_->versions_pruned();
  s.page_fcw_entries = txn_manager_->page_write_entries();
  s.commit_waits = txn_manager_->commit_waits();
  s.commit_wakeups = txn_manager_->commit_wakeups();
  s.ring_full_stalls = txn_manager_->ring_full_stalls();
  s.max_commit_window_depth = txn_manager_->max_commit_window_depth();
  s.commit_combine_batches = txn_manager_->commit_combine_batches();
  s.commit_combined_txns = txn_manager_->commit_combined_txns();
  s.commit_max_batch = txn_manager_->commit_max_batch();
  s.commit_fastpath = txn_manager_->commit_fastpath();
  if (tier_ != nullptr) {
    const BufferPool* pool = tier_->pool();
    s.buffer_pool_hits = pool->hits();
    s.buffer_pool_misses = pool->misses();
    s.buffer_pool_evictions = pool->evictions();
    s.buffer_pool_writebacks = pool->writebacks();
    s.spilled_chains = tier_->spilled_chains();
    s.faulted_chains = tier_->faulted_chains();
  }
  for (size_t i = 0; i < kAbortReasonCount; ++i) {
    s.aborts.by_reason[i] =
        txn_manager_->abort_count(static_cast<AbortReason>(i));
  }
  return s;
}

}  // namespace ssidb
