// The DB façade: subsystem ownership and wiring. All operation protocols
// (read/write/scan/commit for the three concurrency-control modes) live in
// the executor layer, src/txn/executor.cc.

#include "src/db/db.h"

#include <chrono>
#include <filesystem>

#include "src/recovery/checkpoint.h"
#include "src/recovery/wal.h"

namespace ssidb {

// --------------------------------------------------------------------------
// Transaction: a thin handle forwarding to the executor.
// --------------------------------------------------------------------------

Transaction::Transaction(Executor* executor, std::shared_ptr<TxnState> state)
    : executor_(executor) {
  ctx_.state = std::move(state);
}

Transaction::~Transaction() {
  if (!ctx_.finished) {
    executor_->Abort(ctx_);
  }
}

Status Transaction::Get(TableId table, Slice key, std::string* value) {
  return executor_->Get(ctx_, table, key, value);
}

Status Transaction::GetForUpdate(TableId table, Slice key,
                                 std::string* value) {
  return executor_->GetForUpdate(ctx_, table, key, value);
}

Status Transaction::Put(TableId table, Slice key, Slice value) {
  return executor_->Put(ctx_, table, key, value);
}

Status Transaction::Insert(TableId table, Slice key, Slice value) {
  return executor_->Insert(ctx_, table, key, value);
}

Status Transaction::Delete(TableId table, Slice key) {
  return executor_->Delete(ctx_, table, key);
}

Status Transaction::Scan(TableId table, Slice lo, Slice hi,
                         const ScanCallback& fn) {
  return executor_->Scan(ctx_, table, lo, hi, fn);
}

Status Transaction::Commit() { return executor_->Commit(ctx_); }

Status Transaction::Abort() { return executor_->Abort(ctx_); }

// --------------------------------------------------------------------------
// DB
// --------------------------------------------------------------------------

DB::DB(const DBOptions& options)
    : options_(options),
      log_manager_(std::make_unique<LogManager>(options.log)),
      lock_manager_(std::make_unique<LockManager>(LockManager::Config{
          options.deadlock_policy, options.deadlock_scan_interval_ms,
          options.lock_timeout_ms, options.upgrade_siread_locks})),
      txn_manager_(std::make_unique<TxnManager>(options, lock_manager_.get(),
                                                log_manager_.get())),
      tracker_(std::make_unique<ConflictTracker>(options, txn_manager_.get())) {
  if (options.record_history) {
    history_ = std::make_unique<sgt::HistoryRecorder>();
  }
  executor_ = std::make_unique<Executor>(options_, &catalog_,
                                         txn_manager_.get(),
                                         lock_manager_.get(), tracker_.get(),
                                         history_.get());
}

DB::~DB() { StopCheckpointer(); }

Status DB::Open(const DBOptions& options, std::unique_ptr<DB>* db) {
  if (options.rows_per_page == 0) {
    return Status::InvalidArgument("rows_per_page must be positive");
  }
  db->reset(new DB(options));
  if (!options.log.wal_dir.empty()) {
    // Crash recovery runs before the first transaction — and before the
    // engine's own WAL writer creates its first segment, so the newest
    // on-disk segment is exactly the pre-crash tail.
    Status st = (*db)->RecoverOnOpen();
    if (!st.ok()) {
      db->reset();
      return st;
    }
    (*db)->StartCheckpointer();
  }
  return Status::OK();
}

Status DB::RecoverOnOpen() {
  Status st = recovery::Recover(options_.log.wal_dir, &catalog_,
                                &recovery_stats_);
  if (!st.ok()) return st;
  // New transactions must draw ids/snapshots above every recovered commit.
  txn_manager_->AdvanceClockTo(recovery_stats_.max_commit_ts);
  return Status::OK();
}

void DB::StartCheckpointer() {
  if (options_.log.checkpoint_interval_ms == 0) return;
  checkpointer_ = std::thread([this] {
    const auto interval =
        std::chrono::milliseconds(options_.log.checkpoint_interval_ms);
    std::unique_lock<std::mutex> guard(checkpointer_mu_);
    while (!checkpointer_stop_) {
      if (checkpointer_cv_.wait_for(guard, interval,
                                    [this] { return checkpointer_stop_; })) {
        return;
      }
      guard.unlock();
      Checkpoint();  // Best effort; failures retried next interval.
      guard.lock();
    }
  });
}

void DB::StopCheckpointer() {
  {
    std::lock_guard<std::mutex> guard(checkpointer_mu_);
    checkpointer_stop_ = true;
  }
  checkpointer_cv_.notify_all();
  if (checkpointer_.joinable()) checkpointer_.join();
}

Status DB::Checkpoint() {
  if (options_.log.wal_dir.empty()) {
    return Status::InvalidArgument("checkpoint requires LogOptions::wal_dir");
  }
  // One checkpoint at a time: a manual call racing the background tick
  // would interleave writes into the same image file.
  std::lock_guard<std::mutex> guard(checkpoint_write_mu_);
  // Every commit at or below the stable watermark has fully stamped its
  // versions (txn_manager.h), so the sweep observes a consistent cut.
  const Timestamp watermark = txn_manager_->stable_ts();
  Status st = recovery::WriteCheckpoint(catalog_, watermark,
                                        options_.log.wal_dir,
                                        options_.log.wal_fsync);
  if (!st.ok()) return st;
  checkpoints_taken_.fetch_add(1, std::memory_order_relaxed);

  // WAL GC: the image supersedes sealed segments it fully covers, so
  // recovery stops paying for (and disk stops holding) the whole history.
  // A segment is dropped only when it scans clean and every record is a
  // commit with 0 < commit_ts <= watermark; segments holding
  // table-create records stay (a create racing the sweep could postdate
  // the image), and the highest-sequence segment always stays — it may
  // be the flusher's live file. Best effort: a kept segment just replays
  // idempotently.
  std::vector<std::string> segments;
  if (recovery::ListWalSegments(options_.log.wal_dir, &segments).ok()) {
    for (size_t i = 0; i + 1 < segments.size(); ++i) {
      recovery::WalScanResult scan;
      if (!recovery::ScanWalSegment(segments[i], &scan).ok() ||
          !scan.tail.ok()) {
        continue;
      }
      bool covered = true;
      for (const LogRecord& r : scan.records) {
        if (r.type != LogRecordType::kCommit || r.commit_ts == 0 ||
            r.commit_ts > watermark) {
          covered = false;
          break;
        }
      }
      if (!covered) continue;
      std::error_code ec;
      std::filesystem::remove(segments[i], ec);
      if (!ec) {
        wal_segments_deleted_.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
  return Status::OK();
}

Status DB::CreateTable(const std::string& name, TableId* id) {
  TableId created = 0;
  Lsn lsn = 0;
  const bool durable = log_manager_->durable();
  // The (id, name) binding is logged through the catalog's pre-publish
  // hook: still inside the creation critical section, so concurrent
  // creates append their records in id order, and no transaction can
  // commit against the table before its create record is in the log —
  // replay never meets a commit whose table-create is missing or
  // misordered.
  Status st = catalog_.CreateTable(name, &created, [&](TableId tid) {
    if (!durable) return;
    LogRecord record;
    record.type = LogRecordType::kTableCreate;
    record.redo.push_back(RedoEntry{tid, name, std::string(), false});
    lsn = log_manager_->Append(std::move(record));
  });
  if (!st.ok()) return st;
  if (id != nullptr) *id = created;
  if (durable && options_.log.flush_on_commit) {
    // The durability wait happens outside the catalog lock.
    return log_manager_->WaitFlushed(lsn);
  }
  return Status::OK();
}

Status DB::FindTable(const std::string& name, TableId* id) const {
  return catalog_.FindTable(name, id);
}

std::unique_ptr<Transaction> DB::Begin(const TxnOptions& options) {
  return std::unique_ptr<Transaction>(new Transaction(
      executor_.get(), txn_manager_->Begin(options.isolation)));
}

size_t DB::PruneVersions(TableId id) {
  Table* t = catalog_.table(id);
  if (t == nullptr) return 0;
  return t->PruneShards(txn_manager_->min_active_read_ts());
}

DBStats DB::GetStats() const {
  DBStats s;
  s.unsafe_aborts = tracker_->unsafe_aborts();
  s.deadlocks = lock_manager_->deadlocks_detected();
  s.lock_waits = lock_manager_->waits();
  s.log_records = log_manager_->appended_records();
  s.log_flush_batches = log_manager_->flush_batches();
  s.active_txns = txn_manager_->active_count();
  s.suspended_txns = txn_manager_->suspended_count();
  s.lock_grants = lock_manager_->GrantCount();
  return s;
}

}  // namespace ssidb
