// The DB façade: subsystem ownership and wiring. All operation protocols
// (read/write/scan/commit for the three concurrency-control modes) live in
// the executor layer, src/txn/executor.cc.

#include "src/db/db.h"

namespace ssidb {

// --------------------------------------------------------------------------
// Transaction: a thin handle forwarding to the executor.
// --------------------------------------------------------------------------

Transaction::Transaction(Executor* executor, std::shared_ptr<TxnState> state)
    : executor_(executor) {
  ctx_.state = std::move(state);
}

Transaction::~Transaction() {
  if (!ctx_.finished) {
    executor_->Abort(ctx_);
  }
}

Status Transaction::Get(TableId table, Slice key, std::string* value) {
  return executor_->Get(ctx_, table, key, value);
}

Status Transaction::GetForUpdate(TableId table, Slice key,
                                 std::string* value) {
  return executor_->GetForUpdate(ctx_, table, key, value);
}

Status Transaction::Put(TableId table, Slice key, Slice value) {
  return executor_->Put(ctx_, table, key, value);
}

Status Transaction::Insert(TableId table, Slice key, Slice value) {
  return executor_->Insert(ctx_, table, key, value);
}

Status Transaction::Delete(TableId table, Slice key) {
  return executor_->Delete(ctx_, table, key);
}

Status Transaction::Scan(TableId table, Slice lo, Slice hi,
                         const ScanCallback& fn) {
  return executor_->Scan(ctx_, table, lo, hi, fn);
}

Status Transaction::Commit() { return executor_->Commit(ctx_); }

Status Transaction::Abort() { return executor_->Abort(ctx_); }

// --------------------------------------------------------------------------
// DB
// --------------------------------------------------------------------------

DB::DB(const DBOptions& options)
    : options_(options),
      log_manager_(std::make_unique<LogManager>(options.log)),
      lock_manager_(std::make_unique<LockManager>(LockManager::Config{
          options.deadlock_policy, options.deadlock_scan_interval_ms,
          options.lock_timeout_ms, options.upgrade_siread_locks})),
      txn_manager_(std::make_unique<TxnManager>(options, lock_manager_.get(),
                                                log_manager_.get())),
      tracker_(std::make_unique<ConflictTracker>(options, txn_manager_.get())) {
  if (options.record_history) {
    history_ = std::make_unique<sgt::HistoryRecorder>();
  }
  executor_ = std::make_unique<Executor>(options_, &catalog_,
                                         txn_manager_.get(),
                                         lock_manager_.get(), tracker_.get(),
                                         history_.get());
}

DB::~DB() = default;

Status DB::Open(const DBOptions& options, std::unique_ptr<DB>* db) {
  if (options.rows_per_page == 0) {
    return Status::InvalidArgument("rows_per_page must be positive");
  }
  db->reset(new DB(options));
  return Status::OK();
}

Status DB::CreateTable(const std::string& name, TableId* id) {
  return catalog_.CreateTable(name, id);
}

Status DB::FindTable(const std::string& name, TableId* id) const {
  return catalog_.FindTable(name, id);
}

std::unique_ptr<Transaction> DB::Begin(const TxnOptions& options) {
  return std::unique_ptr<Transaction>(new Transaction(
      executor_.get(), txn_manager_->Begin(options.isolation)));
}

size_t DB::PruneVersions(TableId id) {
  Table* t = catalog_.table(id);
  if (t == nullptr) return 0;
  return t->PruneShards(txn_manager_->min_active_read_ts());
}

DBStats DB::GetStats() const {
  DBStats s;
  s.unsafe_aborts = tracker_->unsafe_aborts();
  s.deadlocks = lock_manager_->deadlocks_detected();
  s.lock_waits = lock_manager_->waits();
  s.log_records = log_manager_->appended_records();
  s.log_flush_batches = log_manager_->flush_batches();
  s.active_txns = txn_manager_->active_count();
  s.suspended_txns = txn_manager_->suspended_count();
  s.lock_grants = lock_manager_->GrantCount();
  return s;
}

}  // namespace ssidb
