// Operation protocols for the three concurrency-control modes.
//
// Every operation follows the paper's modified pseudocode:
//   read   - Fig 3.4: SIREAD lock, probe EXCLUSIVE holders, snapshot read,
//            mark conflicts with creators of ignored newer versions.
//   write  - Fig 3.5: EXCLUSIVE lock, probe SIREAD holders, then the
//            first-committer-wins check and version install.
//   scan   - Fig 3.6: the modified read applied to every index entry in
//            range plus gap locks (phantom detection).
//   insert/delete - Fig 3.7: gap EXCLUSIVE on next(key) plus the write.
//   commit - Fig 3.2/3.10 via the ConflictTracker hook.
//
// S2PL uses the same code paths with blocking kShared/kExclusive locks and
// latest-committed reads; SI takes no read locks at all.

#include "src/db/db.h"

#include <cassert>
#include <unordered_set>

#include "src/common/encoding.h"

namespace ssidb {

// --------------------------------------------------------------------------
// Transaction
// --------------------------------------------------------------------------

Transaction::Transaction(DB* db, std::shared_ptr<TxnState> state)
    : db_(db), state_(std::move(state)) {}

Transaction::~Transaction() {
  if (!finished_) {
    Abort();
  }
}

Status Transaction::CheckUsable() {
  if (finished_) {
    return Status::TxnInvalid("transaction already finished");
  }
  if (state_->marked_for_abort.load(std::memory_order_acquire)) {
    // §3.7.2: another transaction's conflict processing chose us as the
    // victim; honour the mark at the next operation.
    const Status reason = state_->abort_reason;
    return AbortWith(reason.ok() ? Status::Unsafe("marked for abort")
                                 : reason);
  }
  return Status::OK();
}

void Transaction::EnsureSnapshot() {
  db_->txn_manager_->EnsureSnapshot(state_.get());
  if (!history_begin_recorded_ && db_->history_ != nullptr) {
    db_->history_->Begin(state_->id, state_->read_ts.load());
    history_begin_recorded_ = true;
  }
}

Status Transaction::AbortWith(const Status& cause) {
  db_->txn_manager_->Abort(state_);
  if (!finished_ && db_->history_ != nullptr) {
    db_->history_->Abort(state_->id);
  }
  finished_ = true;
  return cause;
}

LockKey Transaction::RowLockKey(TableId table, Slice key) const {
  if (db_->options_.granularity == LockGranularity::kPage) {
    return LockKey{table, LockKind::kPage,
                   EncodeU64Key(Table::PageOf(key, db_->options_.rows_per_page))};
  }
  return LockKey{table, LockKind::kRow, key.ToString()};
}

LockKey Transaction::GapLockKey(
    TableId table, const std::optional<std::string>& next_key) const {
  if (!next_key.has_value()) {
    return LockKey{table, LockKind::kSupremum, ""};
  }
  return LockKey{table, LockKind::kGap, *next_key};
}

Status Transaction::AcquireAndMark(const LockKey& lk, LockMode mode) {
  AcquireResult r = db_->lock_manager_->Acquire(state_->id, lk, mode);
  if (!r.status.ok()) {
    return AbortWith(r.status);
  }
  if (state_->isolation == IsolationLevel::kSerializableSSI) {
    for (TxnId other : r.rw_conflicts) {
      Status st;
      if (mode == LockMode::kExclusive) {
        // Fig 3.5 line 4: the writer found SIREAD holders.
        st = db_->tracker_->OnWriterSawSIReadHolder(state_.get(), other);
      } else if (mode == LockMode::kSIRead) {
        // Fig 3.4 line 3: the reader found an EXCLUSIVE holder.
        st = db_->tracker_->OnReaderSawExclusiveHolder(state_.get(), other);
      }
      if (!st.ok()) {
        return AbortWith(st);
      }
    }
  }
  if (state_->marked_for_abort.load(std::memory_order_acquire)) {
    const Status reason = state_->abort_reason;
    return AbortWith(reason.ok() ? Status::Unsafe("marked for abort")
                                 : reason);
  }
  return Status::OK();
}

Status Transaction::ReadChainAndMark(TableId table, Slice key,
                                     VersionChain* chain, std::string* value,
                                     ReadResult* out) {
  const bool locking_read =
      state_->isolation == IsolationLevel::kSerializable2PL;
  const Timestamp read_ts =
      locking_read ? kMaxTimestamp : state_->read_ts.load();
  if (chain != nullptr) {
    *out = chain->Read(state_->id, read_ts, value);
  } else {
    *out = ReadResult{};
  }
  if (state_->isolation != IsolationLevel::kSerializableSSI) {
    return Status::OK();
  }
  // Fig 3.4 lines 8-9: every ignored newer committed version is an
  // rw-antidependency from this reader to its creator.
  for (const NewerVersionInfo& n : out->newer) {
    Status st = db_->tracker_->MarkReadOfNewerVersion(state_.get(),
                                                      n.creator_txn_id, n.commit_ts);
    if (!st.ok()) {
      return AbortWith(st);
    }
  }
  if (db_->options_.granularity == LockGranularity::kPage) {
    // §4.2: Berkeley DB versions whole pages, so reading any row of a page
    // whose newest committed page version postdates the snapshot is a
    // conflict with that version's creator — even if the row itself is
    // unchanged. This is the source of the paper's page-level false
    // positives (§6.1.5).
    const LockKey page = RowLockKey(table, key);
    Timestamp ts = 0;
    TxnId creator = 0;
    if (db_->txn_manager_->PageLastWrite(page, &ts, &creator) &&
        ts > read_ts && creator != state_->id) {
      Status st =
          db_->tracker_->MarkReadOfNewerVersion(state_.get(), creator, ts);
      if (!st.ok()) {
        return AbortWith(st);
      }
    }
  }
  return Status::OK();
}

Status Transaction::Get(TableId table, Slice key, std::string* value) {
  Status st = CheckUsable();
  if (!st.ok()) return st;
  Table* t = db_->table(table);
  if (t == nullptr) return Status::InvalidArgument("unknown table");

  switch (state_->isolation) {
    case IsolationLevel::kSerializable2PL:
      EnsureSnapshot();
      st = AcquireAndMark(RowLockKey(table, key), LockMode::kShared);
      break;
    case IsolationLevel::kSerializableSSI:
      EnsureSnapshot();
      st = AcquireAndMark(RowLockKey(table, key), LockMode::kSIRead);
      break;
    case IsolationLevel::kSnapshot:
      EnsureSnapshot();
      break;
  }
  if (!st.ok()) return st;

  VersionChain* chain = t->Find(key);
  ReadResult rr;
  st = ReadChainAndMark(table, key, chain, value, &rr);
  if (!st.ok()) return st;

  if (db_->history_ != nullptr) {
    db_->history_->Read(state_->id, table, key, rr.version_cts, rr.own_write);
  }
  return rr.found ? Status::OK() : Status::NotFound();
}

Status Transaction::GetForUpdate(TableId table, Slice key,
                                 std::string* value) {
  Status st = CheckUsable();
  if (!st.ok()) return st;
  Table* t = db_->table(table);
  if (t == nullptr) return Status::InvalidArgument("unknown table");

  // The write protocol's front half (§2.6.2 promotion semantics): lock
  // first, snapshot after (§4.5), then verify first-committer-wins. The
  // exclusive lock is held to commit, so the read "promotes" to an update
  // from every concurrent transaction's point of view.
  const LockKey row_lk = RowLockKey(table, key);
  st = AcquireAndMark(row_lk, LockMode::kExclusive);
  if (!st.ok()) return st;
  EnsureSnapshot();

  VersionChain* chain = t->Find(key);
  if (chain != nullptr &&
      state_->isolation != IsolationLevel::kSerializable2PL) {
    st = CheckFirstCommitterWins(chain, row_lk);
    if (!st.ok()) return AbortWith(st);
  }

  std::string local;
  if (value == nullptr) value = &local;
  ReadResult rr;
  st = ReadChainAndMark(table, key, chain, value, &rr);
  if (!st.ok()) return st;
  if (db_->history_ != nullptr) {
    db_->history_->Read(state_->id, table, key, rr.version_cts, rr.own_write);
  }
  if (rr.found && !rr.own_write) {
    // Oracle semantics (§2.6.2): the locking read is "treated for
    // concurrency control exactly like an update" — install an identity
    // version so a concurrent writer's first-committer-wins check sees
    // this transaction's commit. Without it, the PostgreSQL interleaving
    // the paper documents (SFU commits, concurrent write slips through)
    // would be admitted.
    bool replaced_own = false;
    Version* v = chain->InstallUncommitted(state_->id, *value,
                                           /*tombstone=*/false,
                                           &replaced_own);
    if (!replaced_own) {
      state_->write_set.push_back(
          TxnState::WriteRecord{table, key.ToString(), chain, v});
    }
    if (db_->options_.granularity == LockGranularity::kPage &&
        !replaced_own) {
      state_->page_writes.push_back(row_lk);
    }
    if (db_->history_ != nullptr) {
      db_->history_->Write(state_->id, table, key, /*tombstone=*/false);
    }
  }
  return rr.found ? Status::OK() : Status::NotFound();
}

Status Transaction::CheckFirstCommitterWins(VersionChain* chain,
                                            const LockKey& row_lk) {
  const Timestamp read_ts = state_->read_ts.load();
  if (chain->HasCommittedVersionAfter(read_ts)) {
    return Status::UpdateConflict("newer committed version");
  }
  if (db_->options_.granularity == LockGranularity::kPage &&
      db_->txn_manager_->PageLastWriteTs(row_lk) > read_ts) {
    // §4.2: Berkeley DB applies first-committer-wins per page.
    return Status::UpdateConflict("page modified since snapshot");
  }
  return Status::OK();
}

Status Transaction::WriteImpl(TableId table, Slice key, Slice value,
                              WriteKind kind) {
  Status st = CheckUsable();
  if (!st.ok()) return st;
  Table* t = db_->table(table);
  if (t == nullptr) return Status::InvalidArgument("unknown table");
  if (key.empty()) return Status::InvalidArgument("empty key");

  const bool new_index_entry = t->Find(key) == nullptr;
  const LockKey row_lk = RowLockKey(table, key);

  // §4.5: the exclusive lock is acquired *before* the snapshot is chosen,
  // so a single-statement update always sees the latest committed version
  // and never aborts under first-committer-wins.
  st = AcquireAndMark(row_lk, LockMode::kExclusive);
  if (!st.ok()) return st;

  if (new_index_entry &&
      db_->options_.granularity == LockGranularity::kRow) {
    // Fig 3.7: inserts take the gap lock on next(key) — an insert-intention
    // exclusive that conflicts with scanners' gap locks but not with other
    // inserts into the same gap (InnoDB semantics). Page locks subsume
    // phantoms in kPage mode (§3.5).
    st = AcquireAndMark(GapLockKey(table, t->NextKey(key)),
                        LockMode::kExclusive);
    if (!st.ok()) return st;
  }

  EnsureSnapshot();

  VersionChain* chain = t->GetOrCreate(key);

  if (state_->isolation != IsolationLevel::kSerializable2PL) {
    st = CheckFirstCommitterWins(chain, row_lk);
    if (!st.ok()) return AbortWith(st);
  }

  // Visibility-dependent semantics: duplicate detection for Insert,
  // existence for Delete. These return without aborting — statement-level
  // errors the application may handle (SmallBank rolls back explicitly on
  // unknown customer names, §2.8.3).
  if (kind != WriteKind::kUpsert) {
    const Timestamp read_ts =
        state_->isolation == IsolationLevel::kSerializable2PL
            ? kMaxTimestamp
            : state_->read_ts.load();
    ReadResult rr = chain->Read(state_->id, read_ts, nullptr);
    if (kind == WriteKind::kInsert && rr.found) {
      return Status::DuplicateKey();
    }
    if (kind == WriteKind::kDelete && !rr.found) {
      return Status::NotFound();
    }
  }

  bool replaced_own = false;
  Version* v = chain->InstallUncommitted(
      state_->id, value, kind == WriteKind::kDelete, &replaced_own);
  if (!replaced_own) {
    state_->write_set.push_back(
        TxnState::WriteRecord{table, key.ToString(), chain, v});
    // Inline GC: drop versions no active snapshot can reach.
    chain->Prune(db_->txn_manager_->min_active_read_ts());
  }
  if (db_->options_.granularity == LockGranularity::kPage && !replaced_own) {
    state_->page_writes.push_back(row_lk);
  }

  if (db_->history_ != nullptr) {
    db_->history_->Write(state_->id, table, key, kind == WriteKind::kDelete);
  }
  return Status::OK();
}

Status Transaction::Put(TableId table, Slice key, Slice value) {
  return WriteImpl(table, key, value, WriteKind::kUpsert);
}

Status Transaction::Insert(TableId table, Slice key, Slice value) {
  return WriteImpl(table, key, value, WriteKind::kInsert);
}

Status Transaction::Delete(TableId table, Slice key) {
  return WriteImpl(table, key, Slice(), WriteKind::kDelete);
}

Status Transaction::Scan(TableId table, Slice lo, Slice hi,
                         const ScanCallback& fn) {
  Status st = CheckUsable();
  if (!st.ok()) return st;
  Table* t = db_->table(table);
  if (t == nullptr) return Status::InvalidArgument("unknown table");
  if (hi.compare(lo) < 0) return Status::InvalidArgument("hi < lo");

  const IsolationLevel iso = state_->isolation;
  EnsureSnapshot();

  std::vector<ScanEntry> entries;
  std::optional<std::string> successor;
  t->CollectRange(lo, hi, &entries, &successor);

  const bool take_locks = iso != IsolationLevel::kSnapshot;
  const LockMode mode = iso == IsolationLevel::kSerializable2PL
                            ? LockMode::kShared
                            : LockMode::kSIRead;

  if (take_locks) {
    if (db_->options_.granularity == LockGranularity::kRow) {
      // Next-key locking (§2.5.2 / Fig 3.6): each visited entry gets a row
      // lock plus the gap below it; the gap below the successor protects
      // (last entry, successor), so inserts anywhere in [lo, hi] conflict.
      for (const ScanEntry& e : entries) {
        st = AcquireAndMark(RowLockKey(table, e.key), mode);
        if (!st.ok()) return st;
        st = AcquireAndMark(LockKey{table, LockKind::kGap, e.key}, mode);
        if (!st.ok()) return st;
      }
      st = AcquireAndMark(GapLockKey(table, successor), mode);
      if (!st.ok()) return st;
    } else {
      // Page granularity: lock every page that holds an entry, plus the
      // pages of the range bounds (covers empty ranges).
      std::unordered_set<uint64_t> pages;
      pages.insert(Table::PageOf(lo, db_->options_.rows_per_page));
      pages.insert(Table::PageOf(hi, db_->options_.rows_per_page));
      for (const ScanEntry& e : entries) {
        pages.insert(Table::PageOf(e.key, db_->options_.rows_per_page));
      }
      for (uint64_t p : pages) {
        st = AcquireAndMark(
            LockKey{table, LockKind::kPage, EncodeU64Key(p)}, mode);
        if (!st.ok()) return st;
      }
    }

    // Close the collect/lock race: an insert that committed and released
    // its gap lock between CollectRange and our acquisitions is invisible
    // to the lock table, but its version's commit timestamp postdates our
    // snapshot, so a second collection plus the modified read detects the
    // rw-conflict. Inserts *after* our gap locks are caught by the lock
    // table (the writer's probe sees our SIREAD/S locks).
    std::vector<ScanEntry> recheck;
    std::optional<std::string> successor2;
    t->CollectRange(lo, hi, &recheck, &successor2);
    if (recheck.size() != entries.size()) {
      if (db_->options_.granularity == LockGranularity::kRow) {
        std::unordered_set<std::string_view> known;
        for (const ScanEntry& e : entries) known.insert(e.key);
        for (const ScanEntry& e : recheck) {
          if (known.count(e.key) > 0) continue;
          st = AcquireAndMark(RowLockKey(table, e.key), mode);
          if (!st.ok()) return st;
          st = AcquireAndMark(LockKey{table, LockKind::kGap, e.key}, mode);
          if (!st.ok()) return st;
        }
      }
      entries = std::move(recheck);
    }
  }

  const Timestamp scan_snapshot = iso == IsolationLevel::kSerializable2PL
                                      ? db_->txn_manager_->clock_now()
                                      : state_->read_ts.load();

  std::string value;
  for (const ScanEntry& e : entries) {
    ReadResult rr;
    st = ReadChainAndMark(table, e.key, e.chain, &value, &rr);
    if (!st.ok()) return st;
    if (db_->history_ != nullptr) {
      db_->history_->Read(state_->id, table, e.key, rr.version_cts,
                          rr.own_write);
    }
    if (rr.found) {
      if (!fn(e.key, value)) break;
    }
  }

  if (db_->history_ != nullptr) {
    db_->history_->Scan(state_->id, table, lo, hi, scan_snapshot);
  }
  return Status::OK();
}

Status Transaction::Commit() {
  if (finished_) {
    return Status::TxnInvalid("transaction already finished");
  }
  // Serialize the redo blob: the write set in table/key/value form.
  std::string payload;
  PutBig32(&payload, static_cast<uint32_t>(state_->write_set.size()));
  for (const TxnState::WriteRecord& w : state_->write_set) {
    PutBig32(&payload, w.table);
    PutLengthPrefixed(&payload, w.key);
    payload.push_back(w.version->tombstone ? 1 : 0);
    PutLengthPrefixed(&payload, w.version->value);
  }

  TxnManager::CommitCheck check;
  if (state_->isolation == IsolationLevel::kSerializableSSI) {
    ConflictTracker* tracker = db_->tracker_.get();
    check = [tracker](TxnState* t) { return tracker->CommitCheck(t); };
  }

  const Status st =
      db_->txn_manager_->Commit(state_, check, std::move(payload));
  finished_ = true;
  if (db_->history_ != nullptr) {
    if (st.ok()) {
      db_->history_->Commit(state_->id, state_->commit_ts.load());
    } else {
      db_->history_->Abort(state_->id);
    }
  }
  return st;
}

Status Transaction::Abort() {
  if (finished_) {
    return Status::OK();
  }
  db_->txn_manager_->Abort(state_);
  if (db_->history_ != nullptr) {
    db_->history_->Abort(state_->id);
  }
  finished_ = true;
  return Status::OK();
}

// --------------------------------------------------------------------------
// DB
// --------------------------------------------------------------------------

DB::DB(const DBOptions& options)
    : options_(options),
      log_manager_(std::make_unique<LogManager>(options.log)),
      lock_manager_(std::make_unique<LockManager>(LockManager::Config{
          options.deadlock_policy, options.deadlock_scan_interval_ms,
          options.lock_timeout_ms, options.upgrade_siread_locks})),
      txn_manager_(std::make_unique<TxnManager>(options, lock_manager_.get(),
                                                log_manager_.get())),
      tracker_(std::make_unique<ConflictTracker>(options, txn_manager_.get())) {
  if (options.record_history) {
    history_ = std::make_unique<sgt::HistoryRecorder>();
  }
}

DB::~DB() = default;

Status DB::Open(const DBOptions& options, std::unique_ptr<DB>* db) {
  if (options.rows_per_page == 0) {
    return Status::InvalidArgument("rows_per_page must be positive");
  }
  db->reset(new DB(options));
  return Status::OK();
}

Status DB::CreateTable(const std::string& name, TableId* id) {
  std::lock_guard<std::mutex> guard(tables_mu_);
  if (table_names_.count(name) > 0) {
    return Status::InvalidArgument("table exists: " + name);
  }
  const TableId tid = static_cast<TableId>(tables_.size());
  tables_.push_back(std::make_unique<Table>(tid, name));
  table_names_.emplace(name, tid);
  if (id != nullptr) *id = tid;
  return Status::OK();
}

Status DB::FindTable(const std::string& name, TableId* id) const {
  std::lock_guard<std::mutex> guard(tables_mu_);
  auto it = table_names_.find(name);
  if (it == table_names_.end()) return Status::NotFound("no table " + name);
  *id = it->second;
  return Status::OK();
}

Table* DB::table(TableId id) {
  std::lock_guard<std::mutex> guard(tables_mu_);
  if (id >= tables_.size()) return nullptr;
  return tables_[id].get();
}

std::unique_ptr<Transaction> DB::Begin(const TxnOptions& options) {
  return std::unique_ptr<Transaction>(
      new Transaction(this, txn_manager_->Begin(options.isolation)));
}

size_t DB::PruneVersions(TableId id) {
  Table* t = table(id);
  if (t == nullptr) return 0;
  const Timestamp min_ts = txn_manager_->min_active_read_ts();
  size_t freed = 0;
  t->ForEachChain([&](const std::string&, VersionChain* chain) {
    freed += chain->Prune(min_ts);
  });
  return freed;
}

DBStats DB::GetStats() const {
  DBStats s;
  s.unsafe_aborts = tracker_->unsafe_aborts();
  s.deadlocks = lock_manager_->deadlocks_detected();
  s.lock_waits = lock_manager_->waits();
  s.log_records = log_manager_->appended_records();
  s.log_flush_batches = log_manager_->flush_batches();
  s.active_txns = txn_manager_->active_count();
  s.suspended_txns = txn_manager_->suspended_count();
  s.lock_grants = lock_manager_->GrantCount();
  return s;
}

}  // namespace ssidb
