// Exporters: render a MetricsSnapshot as compact JSON (one object per
// line — greppable, appendable, the bench-artifact format) or as
// Prometheus text exposition (the format the eventual network front-end
// will serve from a /metrics endpoint).

#ifndef SSIDB_OBS_EXPORTER_H_
#define SSIDB_OBS_EXPORTER_H_

#include <string>

#include "src/obs/metrics.h"

namespace ssidb {
namespace obs {

enum class MetricsFormat {
  kJson,
  kPrometheus,
};

/// One single-line JSON object:
///   {"counters":{"name":v,...},"gauges":{...},
///    "histograms":{"name":{"count":c,"sum":s,"max":m,"mean":x,
///                          "p50":v,"p95":v,"p99":v},...}}
std::string ToJson(const MetricsSnapshot& snapshot);

/// Prometheus text format. Metric names are prefixed with "ssidb_" and
/// sanitized ('.' and '-' become '_'); histograms emit quantile-labeled
/// summary samples plus _count/_sum/_max.
std::string ToPrometheus(const MetricsSnapshot& snapshot);

std::string Render(const MetricsSnapshot& snapshot, MetricsFormat format);

}  // namespace obs
}  // namespace ssidb

#endif  // SSIDB_OBS_EXPORTER_H_
