// TraceRing: a bounded in-memory event ring for post-mortem forensics.
//
// Fixed-size per-thread-shard slot arrays of binary records (timestamp,
// txn id, event code, two small args, one payload word). Writers claim a
// slot with one fetch-add on their shard's cursor and publish through a
// per-slot seqlock (seq odd while writing, even when stable); every field
// is an atomic, so concurrent Snapshot() readers are race-free under TSan
// and simply discard records whose seq changed mid-read. Old records are
// overwritten in ring order — the ring is a flight recorder, not a log.
//
// Emit cost: one fetch-add, one CAS, five relaxed stores, one release
// store — cheap enough for abort paths and stall paths, which are the
// events worth recording (per-commit tracing belongs to the sampled
// histograms, not the ring).

#ifndef SSIDB_OBS_TRACE_RING_H_
#define SSIDB_OBS_TRACE_RING_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/common/epoch.h"  // RoundUpPow2, TopologyShards, ThreadTopologySlot
#include "src/common/status.h"

namespace ssidb {
namespace obs {

enum class TraceEvent : uint16_t {
  kNone = 0,
  /// A transaction aborted. arg16 = AbortReason, payload = conflicting
  /// transaction id (0 if none/unknown).
  kAbort = 1,
  /// The commit ring backpressured a publisher. payload = the reuse floor
  /// the publisher had to wait for, arg32 = ring slots.
  kRingStall = 2,
  /// A read faulted an evicted version chain back from the storage tier.
  /// arg32 = fault attempts, payload = nanoseconds spent.
  kFault = 3,
  /// A checkpoint completed. payload = watermark covered.
  kCheckpoint = 4,
  /// A durable-artifact I/O operation failed. arg16 = subsystem (1 = WAL,
  /// 2 = checkpoint, 3 = buffer pool, 4 = storage tier), arg32 =
  /// subsystem-specific detail (pool: page number; tier: table id).
  kIOError = 5,
};

inline const char* TraceEventName(TraceEvent e) {
  switch (e) {
    case TraceEvent::kNone: return "none";
    case TraceEvent::kAbort: return "abort";
    case TraceEvent::kRingStall: return "ring_stall";
    case TraceEvent::kFault: return "fault";
    case TraceEvent::kCheckpoint: return "checkpoint";
    case TraceEvent::kIOError: return "io_error";
  }
  return "unknown";
}

class TraceRing {
 public:
  /// One decoded record (Snapshot output, ordered by timestamp).
  struct Record {
    uint64_t ts_ns = 0;
    uint64_t txn = 0;
    uint64_t payload = 0;
    uint32_t arg32 = 0;
    uint16_t arg16 = 0;
    TraceEvent event = TraceEvent::kNone;
  };

  /// `slots_per_shard` is rounded up to a power of two; one shard per
  /// topology slot (capped), so total capacity is shards * slots.
  explicit TraceRing(uint32_t slots_per_shard = 1024);

  TraceRing(const TraceRing&) = delete;
  TraceRing& operator=(const TraceRing&) = delete;

  /// Record one event on the calling thread's shard. Never blocks; drops
  /// the event if it loses a (cross-thread shard-sharing) slot race.
  void Emit(TraceEvent event, uint64_t txn, uint16_t arg16, uint32_t arg32,
            uint64_t payload);

  /// Every stable record currently in the ring, sorted by timestamp.
  /// Safe concurrently with writers.
  std::vector<Record> Snapshot() const;

  /// Dump Snapshot() as one text line per record:
  ///   ts_ns event txn arg16 arg32 payload
  Status DumpTo(const std::string& path) const;

  size_t shards() const { return shard_mask_ + 1; }
  size_t slots_per_shard() const { return slot_mask_ + 1; }

  /// Events dropped to a lost slot race (diagnostic; relaxed).
  uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

 private:
  struct Slot {
    /// Seqlock: odd while a writer owns the slot, even when stable;
    /// >= 2 means the slot has been written at least once.
    std::atomic<uint64_t> seq{0};
    std::atomic<uint64_t> ts_ns{0};
    std::atomic<uint64_t> txn{0};
    /// event | arg16 << 16 | arg32 << 32.
    std::atomic<uint64_t> packed{0};
    std::atomic<uint64_t> payload{0};
  };

  struct alignas(64) Shard {
    std::atomic<uint64_t> next{0};
    std::unique_ptr<Slot[]> slots;
  };

  const size_t shard_mask_;
  const size_t slot_mask_;
  const std::unique_ptr<Shard[]> shards_;
  std::atomic<uint64_t> dropped_{0};
};

}  // namespace obs
}  // namespace ssidb

#endif  // SSIDB_OBS_TRACE_RING_H_
