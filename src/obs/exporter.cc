#include "src/obs/exporter.h"

#include <cinttypes>
#include <cstdio>

namespace ssidb {
namespace obs {

namespace {

void AppendU64(std::string* out, uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out->append(buf);
}

void AppendDouble(std::string* out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", v);
  out->append(buf);
}

std::string PromName(const std::string& name) {
  std::string out = "ssidb_";
  for (char c : name) {
    out.push_back(c == '.' || c == '-' ? '_' : c);
  }
  return out;
}

}  // namespace

std::string ToJson(const MetricsSnapshot& snapshot) {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : snapshot.counters) {
    if (!first) out.push_back(',');
    first = false;
    out.append("\"").append(name).append("\":");
    AppendU64(&out, value);
  }
  out.append("},\"gauges\":{");
  first = true;
  for (const auto& [name, value] : snapshot.gauges) {
    if (!first) out.push_back(',');
    first = false;
    out.append("\"").append(name).append("\":");
    AppendU64(&out, value);
  }
  out.append("},\"histograms\":{");
  first = true;
  for (const auto& [name, h] : snapshot.histograms) {
    if (!first) out.push_back(',');
    first = false;
    out.append("\"").append(name).append("\":{\"count\":");
    AppendU64(&out, h.count);
    out.append(",\"sum\":");
    AppendU64(&out, h.sum);
    out.append(",\"max\":");
    AppendU64(&out, h.max);
    out.append(",\"mean\":");
    AppendDouble(&out, h.mean());
    out.append(",\"p50\":");
    AppendU64(&out, h.Quantile(0.50));
    out.append(",\"p95\":");
    AppendU64(&out, h.Quantile(0.95));
    out.append(",\"p99\":");
    AppendU64(&out, h.Quantile(0.99));
    out.push_back('}');
  }
  out.append("}}");
  return out;
}

std::string ToPrometheus(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const auto& [name, value] : snapshot.counters) {
    const std::string p = PromName(name);
    out.append("# TYPE ").append(p).append(" counter\n");
    out.append(p).append(" ");
    AppendU64(&out, value);
    out.push_back('\n');
  }
  for (const auto& [name, value] : snapshot.gauges) {
    const std::string p = PromName(name);
    out.append("# TYPE ").append(p).append(" gauge\n");
    out.append(p).append(" ");
    AppendU64(&out, value);
    out.push_back('\n');
  }
  for (const auto& [name, h] : snapshot.histograms) {
    const std::string p = PromName(name);
    out.append("# TYPE ").append(p).append(" summary\n");
    for (const auto& [label, q] :
         {std::pair<const char*, double>{"0.5", 0.50},
          std::pair<const char*, double>{"0.95", 0.95},
          std::pair<const char*, double>{"0.99", 0.99}}) {
      out.append(p).append("{quantile=\"").append(label).append("\"} ");
      AppendU64(&out, h.Quantile(q));
      out.push_back('\n');
    }
    out.append(p).append("_count ");
    AppendU64(&out, h.count);
    out.push_back('\n');
    out.append(p).append("_sum ");
    AppendU64(&out, h.sum);
    out.push_back('\n');
    out.append(p).append("_max ");
    AppendU64(&out, h.max);
    out.push_back('\n');
  }
  return out;
}

std::string Render(const MetricsSnapshot& snapshot, MetricsFormat format) {
  return format == MetricsFormat::kJson ? ToJson(snapshot)
                                        : ToPrometheus(snapshot);
}

}  // namespace obs
}  // namespace ssidb
