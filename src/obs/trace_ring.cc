#include "src/obs/trace_ring.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "src/obs/metrics.h"  // NowNanos

namespace ssidb {
namespace obs {

namespace {

size_t TraceShards() {
  const uint64_t t = TopologyShards(/*floor=*/1);
  return static_cast<size_t>(t < 16 ? t : 16);
}

}  // namespace

TraceRing::TraceRing(uint32_t slots_per_shard)
    : shard_mask_(RoundUpPow2(TraceShards(), 1) - 1),
      slot_mask_(RoundUpPow2(slots_per_shard, 8) - 1),
      shards_(new Shard[shard_mask_ + 1]) {
  for (size_t i = 0; i <= shard_mask_; ++i) {
    shards_[i].slots.reset(new Slot[slot_mask_ + 1]);
  }
}

void TraceRing::Emit(TraceEvent event, uint64_t txn, uint16_t arg16,
                     uint32_t arg32, uint64_t payload) {
  Shard& shard = shards_[ThreadTopologySlot() & shard_mask_];
  const uint64_t idx =
      shard.next.fetch_add(1, std::memory_order_relaxed) & slot_mask_;
  Slot& slot = shard.slots[idx];
  // Threads beyond the shard count share a shard; CAS-claim the seqlock so
  // two writers landing on the same slot cannot interleave (the loser
  // drops its event — a flight recorder prefers losing one record to
  // publishing a torn one).
  uint64_t seq = slot.seq.load(std::memory_order_relaxed);
  if ((seq & 1) != 0 ||
      !slot.seq.compare_exchange_strong(seq, seq + 1,
                                        std::memory_order_acquire)) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  slot.ts_ns.store(NowNanos(), std::memory_order_relaxed);
  slot.txn.store(txn, std::memory_order_relaxed);
  slot.packed.store(static_cast<uint64_t>(event) |
                        (static_cast<uint64_t>(arg16) << 16) |
                        (static_cast<uint64_t>(arg32) << 32),
                    std::memory_order_relaxed);
  slot.payload.store(payload, std::memory_order_relaxed);
  slot.seq.store(seq + 2, std::memory_order_release);
}

std::vector<TraceRing::Record> TraceRing::Snapshot() const {
  std::vector<Record> out;
  for (size_t s = 0; s <= shard_mask_; ++s) {
    const Shard& shard = shards_[s];
    for (size_t i = 0; i <= slot_mask_; ++i) {
      const Slot& slot = shard.slots[i];
      const uint64_t seq1 = slot.seq.load(std::memory_order_acquire);
      if (seq1 < 2 || (seq1 & 1) != 0) continue;  // Empty or mid-write.
      Record r;
      r.ts_ns = slot.ts_ns.load(std::memory_order_relaxed);
      r.txn = slot.txn.load(std::memory_order_relaxed);
      const uint64_t packed = slot.packed.load(std::memory_order_relaxed);
      r.payload = slot.payload.load(std::memory_order_relaxed);
      const uint64_t seq2 = slot.seq.load(std::memory_order_acquire);
      if (seq2 != seq1) continue;  // Overwritten mid-read: discard.
      r.event = static_cast<TraceEvent>(packed & 0xffff);
      r.arg16 = static_cast<uint16_t>((packed >> 16) & 0xffff);
      r.arg32 = static_cast<uint32_t>(packed >> 32);
      out.push_back(r);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const Record& a, const Record& b) { return a.ts_ns < b.ts_ns; });
  return out;
}

Status TraceRing::DumpTo(const std::string& path) const {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IOError("trace ring: cannot open " + path);
  }
  for (const Record& r : Snapshot()) {
    std::fprintf(f, "%" PRIu64 " %s %" PRIu64 " %u %u %" PRIu64 "\n", r.ts_ns,
                 TraceEventName(r.event), r.txn,
                 static_cast<unsigned>(r.arg16), r.arg32, r.payload);
  }
  if (std::fclose(f) != 0) {
    return Status::IOError("trace ring: close failed for " + path);
  }
  return Status::OK();
}

}  // namespace obs
}  // namespace ssidb
