// Lock-free metrics: counters, gauges and log-linear latency histograms
// behind a named registry, plus the sampling tick that keeps stage timing
// affordable on the commit hot path.
//
// Recording-cost contract: recording on a hot path is one relaxed
// fetch-add (counters, histogram bucket slots) — never a mutex, never an
// allocation. Histograms shard their bucket arrays by the recording
// thread's topology slot (the same dense thread index the epoch reclaimer
// and registry shards use), so concurrent recorders touch distinct cache
// lines; Snapshot() merges the shards. The registry's mutex guards only
// registration and collection — both cold.
//
// Histogram layout (log-linear, HdrHistogram-style): 8 sub-buckets per
// power of two (kSubBucketBits = 3). Values below 16 get exact unit-width
// buckets; a value v >= 16 lands in bucket
//   ((h - 3) << 3) + (v >> (h - 3)),  h = bit_width(v) - 1,
// whose width is 2^(h-3): the relative quantile error from reporting the
// bucket midpoint is bounded by half a bucket width over the bucket's
// lower bound, i.e. <= 1/16 (the metrics test asserts <= 12.5% with
// slack). 496 buckets cover the full uint64 range — ~4 KiB per shard.

#ifndef SSIDB_OBS_METRICS_H_
#define SSIDB_OBS_METRICS_H_

#include <atomic>
#include <bit>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/epoch.h"  // RoundUpPow2, TopologyShards, ThreadTopologySlot

namespace ssidb {
namespace obs {

/// Monotonic nanoseconds (steady clock); the time base of every histogram
/// and trace record.
inline uint64_t NowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Per-thread sampling tick: true on every (mask+1)-th call from this
/// thread. `mask` must be (power of two - 1); 0 samples every call.
/// Stage timing on the commit path costs ~7 clock reads per sampled
/// commit — at the default 1-in-16 rate that is noise against a ~1.5us
/// commit, which is what keeps the BM_MTUpdateDisjoint criterion intact.
inline bool SampleTick(uint32_t mask) {
  if (mask == 0) return true;
  thread_local uint32_t tick = 0;
  return (tick++ & mask) == 0;
}

/// Round a sample period from DBOptions into the mask SampleTick wants.
inline uint32_t SampleMask(uint32_t period) {
  if (period <= 1) return 0;
  return static_cast<uint32_t>(RoundUpPow2(period, 1)) - 1;
}

/// Merged, immutable view of one histogram; also the unit of window-delta
/// arithmetic (benchlib subtracts a start snapshot from an end snapshot
/// to get per-measurement-window quantiles — bucket counts are monotone,
/// so the difference is itself a valid histogram).
struct HistogramSnapshot {
  static constexpr uint32_t kSubBucketBits = 3;
  static constexpr uint32_t kSubBuckets = 1u << kSubBucketBits;
  static constexpr uint32_t kBuckets = 62 * kSubBuckets;  // 496

  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t max = 0;
  std::vector<uint64_t> buckets;  // kBuckets entries; empty => all zero.

  double mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }

  /// Value at quantile q in [0,1]: the midpoint of the bucket holding the
  /// ceil(q*count)-th recorded value (exact for unit-width buckets),
  /// clamped to the recorded max. 0 when empty.
  uint64_t Quantile(double q) const;

  /// This snapshot minus `since` (counts, sum, buckets; max kept from
  /// *this — the window max is not recoverable, the cumulative max is the
  /// only sound bound). `since` must be an earlier snapshot of the same
  /// histogram.
  HistogramSnapshot Delta(const HistogramSnapshot& since) const;
};

/// Sharded log-linear histogram. Record() is wait-free: one bucket index
/// computation plus three relaxed atomic adds on this thread's shard.
class Histogram {
 public:
  static constexpr uint32_t kSubBucketBits = HistogramSnapshot::kSubBucketBits;
  static constexpr uint32_t kSubBuckets = HistogramSnapshot::kSubBuckets;
  static constexpr uint32_t kBuckets = HistogramSnapshot::kBuckets;

  Histogram();

  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  /// Bucket index of value v (exact for v < 16; log-linear above).
  static uint32_t BucketOf(uint64_t v) {
    if (v < 2 * kSubBuckets) return static_cast<uint32_t>(v);
    const uint32_t h = static_cast<uint32_t>(std::bit_width(v)) - 1;
    const uint32_t shift = h - kSubBucketBits;
    return (shift << kSubBucketBits) +
           static_cast<uint32_t>(v >> shift);
  }

  /// Smallest value mapping to bucket b (inverse of BucketOf).
  static uint64_t BucketLower(uint32_t b) {
    const uint32_t e = b >> kSubBucketBits;
    const uint32_t m = b & (kSubBuckets - 1);
    if (e == 0) return m;
    return static_cast<uint64_t>(kSubBuckets + m) << (e - 1);
  }

  /// Width of bucket b (1 for the exact low buckets).
  static uint64_t BucketWidth(uint32_t b) {
    const uint32_t e = b >> kSubBucketBits;
    return e == 0 ? 1 : uint64_t{1} << (e - 1);
  }

  /// Record one value on the calling thread's shard.
  void Record(uint64_t v) { RecordAt(ThreadTopologySlot(), v); }

  /// Record on an explicit shard slot (tests pin shard placement with
  /// this; `slot` is reduced modulo the shard count).
  void RecordAt(size_t slot, uint64_t v);

  /// Merge every shard into one snapshot. Safe concurrently with
  /// recorders; each shard counter is individually coherent (same
  /// contract as DBStats).
  HistogramSnapshot Snapshot() const;

  size_t shards() const { return shard_mask_ + 1; }

 private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> count{0};
    std::atomic<uint64_t> sum{0};
    std::atomic<uint64_t> max{0};
    std::atomic<uint64_t> buckets[kBuckets] = {};
  };

  const size_t shard_mask_;
  const std::unique_ptr<Shard[]> shards_;
};

/// One collected view of every registered metric, sorted by name.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, uint64_t>> gauges;
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;
};

/// Named registry. Registration stores a *reader* for each metric — a
/// callback over the owning subsystem's existing atomic counter (the
/// DBStats accessors keep their contract; the registry is the one metrics
/// system layered over the same storage) or a pointer to a Histogram the
/// subsystem records into directly. The mutex is registration/collection
/// only; no hot path ever takes it.
class MetricsRegistry {
 public:
  using ValueFn = std::function<uint64_t()>;

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// A monotone cumulative counter (Prometheus counter semantics).
  void RegisterCounter(std::string name, ValueFn fn);
  /// A point-in-time value that may move both ways (gauge semantics).
  void RegisterGauge(std::string name, ValueFn fn);
  /// A histogram the owner records into; must outlive the registry user.
  void RegisterHistogram(std::string name, const Histogram* histogram);

  /// Evaluate every reader and merge every histogram.
  MetricsSnapshot Collect() const;

  /// Lookup for window-delta consumers (benchlib); nullptr if absent.
  const Histogram* FindHistogram(std::string_view name) const;

 private:
  mutable std::mutex mu_;
  std::vector<std::pair<std::string, ValueFn>> counters_;
  std::vector<std::pair<std::string, ValueFn>> gauges_;
  std::vector<std::pair<std::string, const Histogram*>> histograms_;
};

}  // namespace obs
}  // namespace ssidb

#endif  // SSIDB_OBS_METRICS_H_
