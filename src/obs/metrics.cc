#include "src/obs/metrics.h"

#include <algorithm>
#include <cmath>

namespace ssidb {
namespace obs {

namespace {

/// Histogram shards cost ~4 KiB each, so size from the topology but cap
/// the footprint: 16 shards already give distinct cache lines to every
/// hardware thread this container will realistically run.
size_t HistogramShards() {
  const uint64_t t = TopologyShards(/*floor=*/1);
  return static_cast<size_t>(t < 16 ? t : 16);
}

}  // namespace

uint64_t HistogramSnapshot::Quantile(double q) const {
  if (count == 0 || buckets.empty()) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  uint64_t target = static_cast<uint64_t>(
      std::ceil(q * static_cast<double>(count)));
  if (target == 0) target = 1;
  if (target > count) target = count;
  uint64_t seen = 0;
  for (uint32_t b = 0; b < kBuckets && b < buckets.size(); ++b) {
    seen += buckets[b];
    if (seen >= target) {
      const uint64_t lower = Histogram::BucketLower(b);
      const uint64_t width = Histogram::BucketWidth(b);
      const uint64_t mid = width <= 1 ? lower : lower + width / 2;
      return mid < max ? mid : max;
    }
  }
  return max;
}

HistogramSnapshot HistogramSnapshot::Delta(
    const HistogramSnapshot& since) const {
  HistogramSnapshot d;
  d.count = count >= since.count ? count - since.count : 0;
  d.sum = sum >= since.sum ? sum - since.sum : 0;
  d.max = max;  // Cumulative max: the only sound bound for the window.
  if (!buckets.empty()) {
    d.buckets.resize(kBuckets, 0);
    for (uint32_t b = 0; b < kBuckets; ++b) {
      const uint64_t before =
          b < since.buckets.size() ? since.buckets[b] : 0;
      const uint64_t now = b < buckets.size() ? buckets[b] : 0;
      d.buckets[b] = now >= before ? now - before : 0;
    }
  }
  return d;
}

Histogram::Histogram()
    : shard_mask_(RoundUpPow2(HistogramShards(), 1) - 1),
      shards_(new Shard[shard_mask_ + 1]) {}

void Histogram::RecordAt(size_t slot, uint64_t v) {
  Shard& s = shards_[slot & shard_mask_];
  s.buckets[BucketOf(v)].fetch_add(1, std::memory_order_relaxed);
  s.count.fetch_add(1, std::memory_order_relaxed);
  s.sum.fetch_add(v, std::memory_order_relaxed);
  uint64_t seen = s.max.load(std::memory_order_relaxed);
  while (v > seen &&
         !s.max.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
  }
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot out;
  out.buckets.assign(kBuckets, 0);
  for (size_t i = 0; i <= shard_mask_; ++i) {
    const Shard& s = shards_[i];
    out.count += s.count.load(std::memory_order_relaxed);
    out.sum += s.sum.load(std::memory_order_relaxed);
    const uint64_t m = s.max.load(std::memory_order_relaxed);
    if (m > out.max) out.max = m;
    for (uint32_t b = 0; b < kBuckets; ++b) {
      out.buckets[b] += s.buckets[b].load(std::memory_order_relaxed);
    }
  }
  return out;
}

void MetricsRegistry::RegisterCounter(std::string name, ValueFn fn) {
  std::lock_guard<std::mutex> guard(mu_);
  counters_.emplace_back(std::move(name), std::move(fn));
}

void MetricsRegistry::RegisterGauge(std::string name, ValueFn fn) {
  std::lock_guard<std::mutex> guard(mu_);
  gauges_.emplace_back(std::move(name), std::move(fn));
}

void MetricsRegistry::RegisterHistogram(std::string name,
                                        const Histogram* histogram) {
  std::lock_guard<std::mutex> guard(mu_);
  histograms_.emplace_back(std::move(name), histogram);
}

MetricsSnapshot MetricsRegistry::Collect() const {
  MetricsSnapshot out;
  {
    std::lock_guard<std::mutex> guard(mu_);
    out.counters.reserve(counters_.size());
    for (const auto& [name, fn] : counters_) {
      out.counters.emplace_back(name, fn());
    }
    out.gauges.reserve(gauges_.size());
    for (const auto& [name, fn] : gauges_) {
      out.gauges.emplace_back(name, fn());
    }
    out.histograms.reserve(histograms_.size());
    for (const auto& [name, h] : histograms_) {
      out.histograms.emplace_back(name, h->Snapshot());
    }
  }
  auto by_name = [](const auto& a, const auto& b) { return a.first < b.first; };
  std::sort(out.counters.begin(), out.counters.end(), by_name);
  std::sort(out.gauges.begin(), out.gauges.end(), by_name);
  std::sort(out.histograms.begin(), out.histograms.end(), by_name);
  return out;
}

const Histogram* MetricsRegistry::FindHistogram(std::string_view name) const {
  std::lock_guard<std::mutex> guard(mu_);
  for (const auto& [n, h] : histograms_) {
    if (n == name) return h;
  }
  return nullptr;
}

}  // namespace obs
}  // namespace ssidb
