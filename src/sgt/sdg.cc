#include "src/sgt/sdg.h"

#include <algorithm>
#include <map>
#include <queue>
#include <sstream>

namespace ssidb::sgt {

namespace {

/// First item class in both sets, or empty.
std::string FirstShared(const std::set<std::string>& a,
                        const std::set<std::string>& b) {
  for (const std::string& x : a) {
    if (b.count(x) > 0) return x;
  }
  return "";
}

}  // namespace

std::vector<std::string> SdgAnalysis::Pivots() const {
  std::vector<std::string> out;
  for (const SdgDangerousStructure& d : dangerous_structures) {
    if (std::find(out.begin(), out.end(), d.pivot) == out.end()) {
      out.push_back(d.pivot);
    }
  }
  return out;
}

SdgAnalysis AnalyzeSdg(const std::vector<Program>& programs) {
  SdgAnalysis result;

  // Edges. Self-edges (P with itself) count: the paper's TPC-C++ SDG shows
  // CCHECK's ww self-loop, and Definition 1 allows P == Q == R cases.
  for (const Program& p1 : programs) {
    for (const Program& p2 : programs) {
      // ww: both write a class. Recorded once per ordered pair.
      const std::string ww = FirstShared(p1.writes, p2.writes);
      if (!ww.empty()) {
        result.edges.push_back(
            SdgEdge{p1.name, p2.name, SdgEdgeType::kWW, false, ww});
      }
      if (p1.name == p2.name) continue;
      // wr: p1 writes a class p2 reads.
      const std::string wr = FirstShared(p1.writes, p2.reads);
      if (!wr.empty()) {
        result.edges.push_back(
            SdgEdge{p1.name, p2.name, SdgEdgeType::kWR, false, wr});
      }
      // rw: p1 reads a class p2 writes. Vulnerable unless every such
      // conflict is accompanied by a write-write conflict (§2.6: "some
      // item is written in both, in all cases where a read-write conflict
      // exists"), which first-committer-wins then serializes.
      const std::string rw = FirstShared(p1.reads, p2.writes);
      if (!rw.empty()) {
        const bool shielded = !FirstShared(p1.writes, p2.writes).empty();
        result.edges.push_back(
            SdgEdge{p1.name, p2.name, SdgEdgeType::kRW, !shielded, rw});
      }
    }
  }

  // Reachability over ALL edges (Definition 1(c): "path in the graph").
  std::map<std::string, std::set<std::string>> adj;
  for (const SdgEdge& e : result.edges) adj[e.from].insert(e.to);
  auto reaches = [&adj](const std::string& from, const std::string& to) {
    std::set<std::string> seen{from};
    std::queue<std::string> frontier;
    frontier.push(from);
    while (!frontier.empty()) {
      const std::string node = frontier.front();
      frontier.pop();
      if (node == to) return true;
      for (const std::string& next : adj[node]) {
        if (seen.insert(next).second) frontier.push(next);
      }
    }
    return false;
  };

  // Dangerous structures: vulnerable R->P and P->Q with Q ->* R (or Q==R).
  std::map<std::string, std::vector<std::string>> vuln_in, vuln_out;
  for (const SdgEdge& e : result.edges) {
    if (e.type == SdgEdgeType::kRW && e.vulnerable) {
      vuln_in[e.to].push_back(e.from);
      vuln_out[e.from].push_back(e.to);
    }
  }
  for (const auto& [pivot, ins] : vuln_in) {
    auto out_it = vuln_out.find(pivot);
    if (out_it == vuln_out.end()) continue;
    for (const std::string& r : ins) {
      for (const std::string& q : out_it->second) {
        if (q == r || reaches(q, r)) {
          result.dangerous_structures.push_back(
              SdgDangerousStructure{r, pivot, q});
        }
      }
    }
  }
  return result;
}

std::string DescribeSdg(const std::vector<Program>& programs,
                        const SdgAnalysis& analysis) {
  std::ostringstream os;
  os << "programs:\n";
  for (const Program& p : programs) {
    os << "  " << p.name << (p.read_only() ? " (RO)" : "") << "\n";
  }
  os << "edges:\n";
  for (const SdgEdge& e : analysis.edges) {
    const char* type = e.type == SdgEdgeType::kWW   ? "ww"
                       : e.type == SdgEdgeType::kWR ? "wr"
                                                    : "rw";
    os << "  " << e.from << " --" << type
       << (e.vulnerable ? "! " : "  ") << "--> " << e.to << "  [" << e.item
       << "]\n";
  }
  if (analysis.serializable_under_si()) {
    os << "no dangerous structure: serializable under plain SI "
          "(Theorem 3)\n";
  } else {
    for (const SdgDangerousStructure& d : analysis.dangerous_structures) {
      os << "dangerous: " << d.in << " --rw!--> " << d.pivot << " --rw!--> "
         << d.out << " (pivot: " << d.pivot << ")\n";
    }
  }
  return os.str();
}

}  // namespace ssidb::sgt
